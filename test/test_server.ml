(* Serving daemon: the Core batcher must reproduce the offline replay
   byte-for-byte (including across kill-and-resume), overload must shed
   visibly, the journal appender must survive torn tails, and the
   socket daemon must run a full lifecycle in-process. *)

open Dmn_prelude
module I = Dmn_core.Instance
module P = Dmn_core.Placement
module Trace = Dmn_core.Serial.Trace
module St = Dmn_dynamic.Stream
module En = Dmn_engine.Engine
module Srv = Dmn_server.Server

let tmp_file =
  let counter = ref 0 in
  fun suffix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dmnet-test-server-%d-%d-%s" (Unix.getpid ()) !counter suffix)

let with_tmp suffix f =
  let path = tmp_file suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let with_tmp_dir suffix f =
  let path = tmp_file suffix in
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let small_instance ?(objects = 2) ?(n = 12) seed =
  let rng = Rng.create seed in
  let g = Dmn_graph.Gen.random_geometric rng n 0.5 in
  let nn = Dmn_graph.Wgraph.n g in
  let cs = Array.init nn (fun _ -> Rng.float_in rng 1.0 5.0) in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.mix rng ~objects ~n:nn ~total:(6 * nn) ~write_fraction:0.25
  in
  I.of_graph g ~cs ~fr ~fw

let placement_for inst =
  P.make (Array.init (I.objects inst) (fun x -> Dmn_baselines.Naive.best_single inst ~x))

let items_for inst ~length seed =
  let rng = Rng.create seed in
  List.of_seq (St.items_of_events (St.stationary_seq rng inst ~length))

(* ---------- the Core batcher reproduces the replay ---------- *)

let core_matches_replay () =
  let inst = small_instance 11 in
  let placement = placement_for inst in
  let items = items_for inst ~length:700 31 in
  let config = { En.default_config with En.policy = En.Resolve; epoch = 64 } in
  let reference = En.metrics_json inst (En.run_items ~config inst placement (List.to_seq items)) in
  let at domains =
    Pool.with_pool ~domains (fun pool ->
        let core =
          Srv.Core.create ~pool { Srv.default_config with Srv.engine = config } inst placement
        in
        (* push in awkward chunk sizes; serve whenever a batch is ready *)
        List.iteri
          (fun i item ->
            (match Srv.Core.push core item with
            | `Accepted -> ()
            | `Shed -> Alcotest.fail "shed below the queue bound");
            if i mod 37 = 0 then Srv.Core.maybe_step core)
          items;
        Srv.Core.maybe_step core;
        (* the partial tail is served as one final epoch, as run_items does *)
        Srv.Core.flush core;
        En.metrics_json inst (Srv.Core.result core))
  in
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Printf.sprintf "core == replay at %d domains" d)
        reference (at d))
    [ 1; 2; 4 ]

(* ---------- kill and resume, byte-identical ---------- *)

let kill_resume_identical () =
  let inst = small_instance 17 in
  let placement = placement_for inst in
  let items = items_for inst ~length:900 43 in
  let config = { En.default_config with En.policy = En.Resolve; epoch = 100 } in
  let reference = En.metrics_json inst (En.run_items ~config inst placement (List.to_seq items)) in
  let at domains =
    with_tmp_dir "journal.dir" @@ fun journal ->
    with_tmp_dir "resume.ckptdir" @@ fun ckpt_path ->
    Pool.with_pool ~domains (fun pool ->
        let ckpt = Some { En.dir = ckpt_path; every = 2; keep = 3 } in
        let cfg =
          { Srv.default_config with Srv.engine = config; ckpt; journal = Some journal }
        in
        (* phase 1: accept a prefix, serve what batches, then stop the
           way SIGTERM does — partial tail journaled but unserved *)
        let cut = 537 in
        let first = Srv.Core.create ~pool cfg inst placement in
        List.iteri (fun i item -> if i < cut then ignore (Srv.Core.push first item)) items;
        Srv.Core.maybe_step first;
        Srv.Core.shutdown first;
        Alcotest.(check bool) "tail left unserved" true (Srv.Core.queue_depth first > 0);
        (* phase 2: resume from the checkpoint + journal, feed the rest *)
        let resumed =
          Srv.Core.create ~pool { cfg with Srv.resume = Some ckpt_path } inst placement
        in
        Alcotest.(check int) "resume rebuilds the unserved tail"
          (Srv.Core.queue_depth first) (Srv.Core.queue_depth resumed);
        List.iteri (fun i item -> if i >= cut then ignore (Srv.Core.push resumed item)) items;
        Srv.Core.maybe_step resumed;
        Srv.Core.flush resumed;
        En.metrics_json inst (Srv.Core.result resumed))
  in
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Printf.sprintf "kill+resume == uninterrupted at %d domains" d)
        reference (at d))
    [ 1; 4 ]

(* ---------- pipelined re-solve: overlap without divergence ---------- *)

(* With --pipeline the dirty-set solve of each closed epoch runs on a
   spare domain while the next batch queues; the application barrier
   must keep the result byte-identical to the plain replay. *)
let pipelined_core_matches_replay () =
  let inst = small_instance 19 in
  let placement = placement_for inst in
  let items = items_for inst ~length:800 37 in
  let config =
    { En.default_config with En.policy = En.Resolve; epoch = 64; dirty_eps = 0.3 }
  in
  let reference = En.metrics_json inst (En.run_items ~config inst placement (List.to_seq items)) in
  let at domains =
    Pool.with_pool ~domains (fun pool ->
        let core =
          Srv.Core.create ~pool
            { Srv.default_config with Srv.engine = config; pipeline = true }
            inst placement
        in
        List.iteri
          (fun i item ->
            ignore (Srv.Core.push core item);
            if i mod 53 = 0 then Srv.Core.maybe_step core)
          items;
        Srv.Core.maybe_step core;
        Srv.Core.flush core;
        let json = En.metrics_json inst (Srv.Core.result core) in
        Srv.Core.shutdown core;
        json)
  in
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Printf.sprintf "pipelined core == replay at %d domains" d)
        reference (at d))
    [ 1; 2; 4 ]

(* A crash landing while a pipelined solve is in flight loses only the
   uncommitted epoch: the journal holds its items, so a resume replays
   it and lands byte-identical to an uninterrupted run. *)
let pipelined_kill_mid_flight_resumes () =
  let inst = small_instance 29 in
  let placement = placement_for inst in
  let items = items_for inst ~length:900 53 in
  let config =
    { En.default_config with En.policy = En.Resolve; epoch = 100; dirty_eps = 0.3 }
  in
  let reference = En.metrics_json inst (En.run_items ~config inst placement (List.to_seq items)) in
  let at domains =
    with_tmp_dir "pipe-journal.dir" @@ fun journal ->
    with_tmp_dir "pipe-ckpt.dir" @@ fun ckpt_path ->
    Pool.with_pool ~domains (fun pool ->
        let cfg =
          {
            Srv.default_config with
            Srv.engine = config;
            ckpt = Some { En.dir = ckpt_path; every = 2; keep = 3 };
            journal = Some journal;
            pipeline = true;
          }
        in
        (* phase 1: push a prefix and stop abruptly right after a step —
           the last epoch's solve is still in flight on the spare
           domain, and [kill] discards it uncommitted *)
        let cut = 641 in
        let first = Srv.Core.create ~pool cfg inst placement in
        List.iteri (fun i item -> if i < cut then ignore (Srv.Core.push first item)) items;
        Srv.Core.maybe_step first;
        let committed = Srv.Core.epochs first in
        Srv.Core.kill first;
        Alcotest.(check int) "kill commits nothing" committed (Srv.Core.epochs first);
        (* phase 2: resume replays the journaled in-flight epoch *)
        let resumed =
          Srv.Core.create ~pool { cfg with Srv.resume = Some ckpt_path } inst placement
        in
        List.iteri (fun i item -> if i >= cut then ignore (Srv.Core.push resumed item)) items;
        Srv.Core.maybe_step resumed;
        Srv.Core.flush resumed;
        let json = En.metrics_json inst (Srv.Core.result resumed) in
        Srv.Core.shutdown resumed;
        json)
  in
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Printf.sprintf "kill mid-pipeline + resume == uninterrupted at %d domains" d)
        reference (at d))
    [ 1; 4 ]

(* ---------- overload sheds visibly ---------- *)

let overload_sheds () =
  let inst = small_instance 5 in
  let placement = placement_for inst in
  let config = { En.default_config with En.policy = En.Static; epoch = 1000 } in
  let core =
    Srv.Core.create { Srv.default_config with Srv.engine = config; queue_cap = 8 } inst placement
  in
  let req i = St.Req { St.node = i mod I.n inst; x = 0; kind = St.Read } in
  let outcomes = List.init 50 (fun i -> Srv.Core.push core (req i)) in
  let count o = List.length (List.filter (( = ) o) outcomes) in
  Alcotest.(check int) "accepted up to the bound" 8 (count `Accepted);
  Alcotest.(check int) "the rest shed" 42 (count `Shed);
  Alcotest.(check int) "shed counter" 42 (Srv.Core.shed core);
  (* topology events are state, not load: never shed *)
  (match Srv.Core.push core (St.Topo (Dmn_paths.Churn.Node_down 0)) with
  | `Accepted -> ()
  | `Shed -> Alcotest.fail "topology event shed");
  (* shed events never reach the engine *)
  Srv.Core.flush core;
  Alcotest.(check int) "only accepted requests served" 8 (Srv.Core.served core);
  Srv.Core.shutdown core

(* ---------- wire-line classification ---------- *)

let push_line_classifies () =
  let inst = small_instance 7 in
  let core = Srv.Core.create Srv.default_config inst (placement_for inst) in
  let kind line =
    match Srv.Core.push_line core line with
    | `Accepted -> "accepted"
    | `Shed -> "shed"
    | `Ignored -> "ignored"
    | `Malformed _ -> "malformed"
  in
  Alcotest.(check string) "request line" "accepted" (kind "r 0 0");
  Alcotest.(check string) "write line" "accepted" (kind "w 1 1");
  Alcotest.(check string) "topology line" "accepted" (kind "ew 0 1 2.5");
  Alcotest.(check string) "blank" "ignored" (kind "");
  Alcotest.(check string) "comment" "ignored" (kind "# comment");
  Alcotest.(check string) "matching magic" "ignored" (kind "dmnet-trace v1");
  Alcotest.(check string) "matching count line" "ignored"
    (kind (Printf.sprintf "%d %d" (I.n inst) (I.objects inst)));
  Alcotest.(check string) "foreign count line" "malformed" (kind "99 99");
  Alcotest.(check string) "garbage" "malformed" (kind "frobnicate 1 2");
  Alcotest.(check string) "truncated item" "malformed" (kind "r 0");
  Alcotest.(check int) "malformed not auto-counted by push_line" 0 (Srv.Core.malformed core);
  Srv.Core.count_malformed core;
  Alcotest.(check int) "count_malformed counts" 1 (Srv.Core.malformed core);
  Srv.Core.shutdown core

(* ---------- journal appender: torn tails repaired ---------- *)

let appender_repairs_torn_tail () =
  with_tmp "appender.v1" @@ fun path ->
  let header = { Trace.nodes = 4; objects = 2 } in
  let a = Trace.Appender.create path header in
  Trace.Appender.add a (Trace.Req { Trace.node = 0; x = 0; write = false });
  Trace.Appender.add a (Trace.Req { Trace.node = 1; x = 1; write = true });
  Trace.Appender.close a;
  (* simulate a crash mid-append: a torn final line without newline *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "w 3";
  close_out oc;
  let b = Trace.Appender.create ~append:true path header in
  Trace.Appender.add b (Trace.Req { Trace.node = 2; x = 0; write = false });
  Trace.Appender.close b;
  Trace.with_items path (fun h items ->
      Alcotest.(check int) "header nodes" 4 h.Trace.nodes;
      let got = List.of_seq items in
      Alcotest.(check int) "torn line dropped, tail appended" 3 (List.length got));
  (* appending under a different shape is refused *)
  match Trace.Appender.create_res ~append:true path { Trace.nodes = 9; objects = 9 } with
  | Ok _ -> Alcotest.fail "header mismatch accepted"
  | Error e ->
      if e.Err.kind <> Err.Validation then
        Alcotest.failf "expected a validation error, got %s" (Err.to_string e)

(* ---------- full daemon lifecycle over a socket ---------- *)

let send_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* line reader with a persistent buffer: consecutive replies may land
   in one read, so leftovers must survive between calls *)
let line_reader fd =
  let pending = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  fun () ->
    let rec go () =
      if not (String.contains (Buffer.contents pending) '\n') then
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | r ->
            Buffer.add_subbytes pending chunk 0 r;
            go ()
    in
    go ();
    let s = Buffer.contents pending in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear pending;
        if i + 1 < String.length s then
          Buffer.add_substring pending s (i + 1) (String.length s - i - 1);
        String.sub s 0 i
    | None -> s

let daemon_lifecycle () =
  let inst = small_instance 23 in
  let placement = placement_for inst in
  let items = items_for inst ~length:400 51 in
  let config = { En.default_config with En.policy = En.Resolve; epoch = 50 } in
  let reference = En.metrics_json inst (En.run_items ~config inst placement (List.to_seq items)) in
  with_tmp "daemon.sock" @@ fun sock_path ->
  with_tmp "daemon-metrics.json" @@ fun metrics_path ->
  (try Sys.remove sock_path with Sys_error _ -> ());
  let cfg =
    { Srv.default_config with Srv.engine = config; metrics_out = Some metrics_path }
  in
  let daemon =
    Thread.create (fun () -> Srv.run_daemon cfg inst placement ~socket:(Some sock_path) ~use_stdin:false) ()
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Sys.file_exists sock_path)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX sock_path);
      let recv_line = line_reader fd in
      (* health answers before any traffic *)
      send_all fd "health\n";
      let h = recv_line () in
      Alcotest.(check bool) "health starts with ok" true
        (String.length h >= 2 && String.sub h 0 2 = "ok");
      (* stream the whole workload as wire lines, plus noise *)
      let buf = Buffer.create 4096 in
      Buffer.add_string buf "# a comment\n";
      List.iter
        (fun item ->
          let line =
            match item with
            | St.Req { St.node; x; kind } ->
                Printf.sprintf "%s %d %d" (if kind = St.Write then "w" else "r") node x
            | St.Topo t -> (
                let module Ch = Dmn_paths.Churn in
                match t with
                | Ch.Edge_weight { u; v; w } -> Printf.sprintf "ew %d %d %.17g" u v w
                | Ch.Edge_up { u; v; w } -> Printf.sprintf "eu %d %d %.17g" u v w
                | Ch.Edge_down { u; v } -> Printf.sprintf "ed %d %d" u v
                | Ch.Node_down n -> Printf.sprintf "nd %d" n
                | Ch.Node_up n -> Printf.sprintf "nu %d" n)
          in
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
        items;
      Buffer.add_string buf "not a trace line\n";
      send_all fd (Buffer.contents buf);
      (* the malformed line is answered with an error on this connection *)
      let e = recv_line () in
      Alcotest.(check bool) "malformed line answered with err:" true
        (String.length e >= 4 && String.sub e 0 4 = "err:");
      (* live metrics must parse while the daemon is serving *)
      send_all fd "metrics\n";
      let rec settle tries =
        let m = recv_line () in
        let v =
          match Jsonx.parse m with
          | Ok v -> v
          | Error e -> Alcotest.failf "live metrics dump unparseable: %s" (Err.to_string e)
        in
        match Option.bind (Jsonx.member "server" v) (fun s -> Option.bind (Jsonx.member "accepted_total" s) Jsonx.to_int) with
        | Some n when n >= List.length items -> v
        | _ when tries > 0 ->
            Thread.delay 0.05;
            send_all fd "metrics\n";
            settle (tries - 1)
        | got ->
            Alcotest.failf "daemon never ingested the stream (accepted=%s)"
              (match got with Some n -> string_of_int n | None -> "?")
      in
      let m = settle 100 in
      Alcotest.(check (option string)) "dump is a serve-metrics document"
        (Some "serve-metrics")
        (match Jsonx.member "dmnet" m with Some (Jsonx.Str s) -> Some s | _ -> None);
      (* graceful shutdown over the control socket *)
      send_all fd "shutdown\n";
      Alcotest.(check string) "shutdown acknowledged" "bye" (recv_line ()));
  Thread.join daemon;
  Alcotest.(check bool) "socket removed on exit" false (Sys.file_exists sock_path);
  (* graceful stop leaves a partial tail for resume — but 400 events at
     epoch 50 divide evenly, so the final metrics equal the replay *)
  let written = In_channel.with_open_bin metrics_path In_channel.input_all in
  Alcotest.(check string) "daemon metrics == replay metrics" (reference ^ "\n") written

let suite =
  [
    Alcotest.test_case "core batcher matches replay (1/2/4 domains)" `Quick core_matches_replay;
    Alcotest.test_case "kill+resume byte-identical (1/4 domains)" `Quick kill_resume_identical;
    Alcotest.test_case "pipelined core matches replay (1/2/4 domains)" `Quick
      pipelined_core_matches_replay;
    Alcotest.test_case "kill mid-pipeline resumes byte-identical" `Quick
      pipelined_kill_mid_flight_resumes;
    Alcotest.test_case "overload sheds visibly" `Quick overload_sheds;
    Alcotest.test_case "wire lines classified" `Quick push_line_classifies;
    Alcotest.test_case "journal appender repairs torn tails" `Quick appender_repairs_torn_tail;
    Alcotest.test_case "daemon lifecycle over a socket" `Quick daemon_lifecycle;
  ]
