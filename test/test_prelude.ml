open Dmn_prelude

let rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let b = 1 + Rng.int rng 1000 in
    let v = Rng.int rng b in
    if v < 0 || v >= b then Alcotest.failf "Rng.int out of range: %d not in [0,%d)" v b
  done

let rng_int_in_bounds () =
  let rng = Rng.create 8 in
  for _ = 1 to 10_000 do
    let v = Rng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "Rng.int_in out of range: %d" v
  done

let rng_float_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.5 in
    if v < 0.0 || v >= 3.5 then Alcotest.failf "Rng.float out of range: %f" v
  done

let rng_int_roughly_uniform () =
  let rng = Rng.create 10 in
  let buckets = Array.make 10 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = samples / 10 in
      if abs (c - expected) > expected / 5 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    buckets

let rng_shuffle_permutes () =
  let rng = Rng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let rng_sample_distinct () =
  let rng = Rng.create 12 in
  for _ = 1 to 200 do
    let a = Array.init 20 (fun i -> i) in
    let s = Rng.sample rng a 7 in
    Alcotest.(check int) "size" 7 (Array.length s);
    let l = Array.to_list s in
    Alcotest.(check int) "distinct" 7 (List.length (List.sort_uniq compare l))
  done

let rng_zipf_range_and_skew () =
  let rng = Rng.create 13 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let v = Rng.zipf rng ~n:10 ~s:1.0 in
    if v < 1 || v > 10 then Alcotest.failf "zipf out of range: %d" v;
    counts.(v - 1) <- counts.(v - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 most popular" true (counts.(0) > counts.(4));
  Alcotest.(check bool) "rank 5 beats rank 10" true (counts.(4) > counts.(9))

let rng_split_independent () =
  let a = Rng.create 77 in
  let b = Rng.split a in
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  Alcotest.(check bool) "split streams differ" true (va <> vb)

let stats_basics () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Util.check_float "mean" 2.5 (Stats.mean a);
  Util.check_float "variance" 1.25 (Stats.variance a);
  Util.check_float "min" 1.0 (Stats.min a);
  Util.check_float "max" 4.0 (Stats.max a);
  Util.check_float "median" 2.5 (Stats.median a)

let stats_percentile () =
  let a = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  Util.check_float "p0" 10.0 (Stats.percentile a 0.0);
  Util.check_float "p100" 50.0 (Stats.percentile a 100.0);
  Util.check_float "p50" 30.0 (Stats.percentile a 50.0);
  Util.check_float "p25" 20.0 (Stats.percentile a 25.0)

let stats_geo_mean () =
  Util.check_float "geo" 2.0 (Stats.geo_mean [| 1.0; 2.0; 4.0 |])

let stats_empty_raises () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Stats.mean [||]))

let floatx_approx () =
  Alcotest.(check bool) "equal" true (Floatx.approx 1.0 1.0);
  Alcotest.(check bool) "close" true (Floatx.approx 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "far" false (Floatx.approx 1.0 1.1);
  Alcotest.(check bool) "relative" true (Floatx.approx 1e12 (1e12 +. 1.0))

let floatx_sum_stable () =
  (* compensated sum of many tiny values plus a big one *)
  let a = Array.make 10_001 1e-10 in
  a.(0) <- 1e10;
  let s = Floatx.sum a in
  Util.check_float "compensated" (1e10 +. 1e-6) s

let tbl_renders () =
  let t = Tbl.create [ "name"; "value" ] in
  Tbl.add_row t [ "alpha"; "1.5" ];
  Tbl.add_row t [ "beta"; "20" ];
  let s = Tbl.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  Alcotest.(check bool) "contains alpha" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 0));
  (* all lines same width *)
  let widths = String.split_on_char '\n' s |> List.map String.length in
  Alcotest.(check bool) "rectangular" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let tbl_arity_check () =
  let t = Tbl.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Tbl.add_row: arity mismatch") (fun () ->
      Tbl.add_row t [ "only-one" ])

let qcheck_rng_bounds =
  QCheck.Test.make ~name:"Rng.int always in range" ~count:1000
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let qcheck_stats_mean_bounds =
  QCheck.Test.make ~name:"mean between min and max" ~count:500
    QCheck.(array_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun a ->
      let m = Stats.mean a in
      m >= Stats.min a -. 1e-9 && m <= Stats.max a +. 1e-9)

(* ---------- Metrics ---------- *)

let metrics_counter_gauge () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "served" in
  let g = Metrics.gauge reg "load" in
  Metrics.incr c;
  Metrics.add c 4;
  Metrics.set g 2.5;
  Metrics.set g 1.25;
  Alcotest.(check int) "counter accumulates" 5 (Metrics.counter_value c);
  Util.check_float "gauge keeps last value" 1.25 (Metrics.gauge_value g);
  Alcotest.check_raises "counters are monotonic"
    (Invalid_argument "Metrics.add: counters are monotonic (negative increment)") (fun () ->
      Metrics.add c (-1))

let metrics_duplicate_name_rejected () =
  let reg = Metrics.create () in
  let _ = Metrics.counter reg "x" in
  (match Metrics.gauge reg "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate instrument name accepted");
  (* a second registry is independent *)
  let reg2 = Metrics.create () in
  ignore (Metrics.counter reg2 "x")

let metrics_histogram_buckets_and_quantile () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~lo:1.0 ~base:2.0 ~buckets:8 reg "h" in
  List.iter (Metrics.observe h) [ 0.0; 0.5; 1.5; 3.0; 3.9; 100.0 ];
  Alcotest.(check int) "count" 6 (Metrics.hist_count h);
  Util.check_float "sum" 108.9 (Metrics.hist_sum h);
  (* q=0.5 -> 3rd sample (1.5), in bucket [1,2) whose upper bound is 2 *)
  Util.check_float "median upper bound" 2.0 (Metrics.quantile h 0.5);
  (* top sample lands in a finite bucket upper bound *)
  Alcotest.(check bool) "p100 finite or inf consistent" true (Metrics.quantile h 1.0 > 2.0);
  (match Metrics.observe h Float.nan with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN observation accepted");
  match List.assoc "h" (Metrics.snapshot reg) with
  | Metrics.Hist { count; sum; buckets } ->
      Alcotest.(check int) "snapshot count" 6 count;
      Util.check_float "snapshot sum" 108.9 sum;
      let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 buckets in
      Alcotest.(check int) "bucket counts partition the samples" 6 total;
      List.iter (fun (lo, hi, n) -> if n > 0 && lo >= hi then Alcotest.fail "bad bucket bounds") buckets
  | _ -> Alcotest.fail "expected a histogram snapshot"

let metrics_snapshot_order_and_json () =
  let mk () =
    let reg = Metrics.create () in
    let c = Metrics.counter reg "first" in
    let g = Metrics.gauge reg "second" in
    let h = Metrics.histogram ~lo:1.0 ~base:2.0 ~buckets:4 reg "third" in
    Metrics.add c 3;
    Metrics.set g 0.5;
    Metrics.observe h 1.5;
    reg
  in
  let snap = Metrics.snapshot (mk ()) in
  Alcotest.(check (list string)) "registration order" [ "first"; "second"; "third" ]
    (List.map fst snap);
  (* same operations -> byte-identical JSON (the engine's determinism
     contract) *)
  Alcotest.(check string) "deterministic JSON" (Metrics.to_json (mk ())) (Metrics.to_json (mk ()));
  let json = Metrics.to_json (mk ()) in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter rendered" true (contains "\"first\": 3" json);
  Alcotest.(check bool) "histogram rendered" true (contains "\"count\": 1" json)

let metrics_json_floats () =
  Alcotest.(check string) "integral floats compact" "42" (Metrics.json_float 42.0);
  Alcotest.(check string) "negative integral" "-3" (Metrics.json_float (-3.0));
  let pi = Metrics.json_float 3.125 in
  Alcotest.(check bool) "non-integral round-trips" true (float_of_string pi = 3.125)

let metrics_counter_hammered_from_domains () =
  (* counters are Atomic-backed: 4 domains incrementing concurrently
     must lose nothing *)
  let reg = Metrics.create () in
  let c = Metrics.counter reg "hits" in
  let per_domain = 25_000 in
  let workers =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              if (i + d) land 1 = 0 then Metrics.incr c else Metrics.add c 1
            done))
  in
  Array.iter Domain.join workers;
  Alcotest.(check int) "exact total" (4 * per_domain) (Metrics.counter_value c)

let metrics_hist_dump_restore () =
  let mk () =
    let reg = Metrics.create () in
    (reg, Metrics.histogram ~lo:1.0 ~base:2.0 ~buckets:10 reg "h")
  in
  let reg, h = mk () in
  let rng = Rng.create 31 in
  for _ = 1 to 500 do
    Metrics.observe h (Rng.float rng 100.0)
  done;
  let lo, base, nb = Metrics.hist_params h in
  Util.check_float "lo" 1.0 lo;
  Util.check_float "base" 2.0 base;
  Alcotest.(check int) "buckets" 10 nb;
  let reg2, h2 = mk () in
  Metrics.hist_restore h2 ~counts:(Metrics.hist_buckets h) ~sum:(Metrics.hist_sum h);
  Alcotest.(check int) "count restored" (Metrics.hist_count h) (Metrics.hist_count h2);
  Util.check_float "sum restored" (Metrics.hist_sum h) (Metrics.hist_sum h2);
  List.iter
    (fun q -> Util.check_float (Printf.sprintf "q%.2f" q) (Metrics.quantile h q) (Metrics.quantile h2 q))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ];
  Alcotest.(check string) "snapshot JSON identical" (Metrics.to_json reg) (Metrics.to_json reg2);
  (match Metrics.hist_restore h2 ~counts:[| 1 |] ~sum:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bucket-count mismatch accepted");
  match Metrics.hist_restore h2 ~counts:(Array.make 10 (-1)) ~sum:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative bucket count accepted"

let crc32_known_values () =
  (* the standard CRC-32 check value, plus structure properties the
     checkpoint format relies on *)
  Alcotest.(check int32) "check value" 0xCBF43926l (Crc32.digest "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.digest "");
  Alcotest.(check int32) "streaming = one-shot" (Crc32.digest "hello world")
    (Crc32.update (Crc32.digest "hello ") "world");
  Alcotest.(check string) "hex rendering" "cbf43926" (Crc32.to_hex (Crc32.digest "123456789"));
  Alcotest.(check (option int32)) "hex roundtrip" (Some 0xCBF43926l) (Crc32.of_hex_opt "cbf43926");
  Alcotest.(check (option int32)) "short rejected" None (Crc32.of_hex_opt "cbf4392");
  Alcotest.(check (option int32)) "long rejected" None (Crc32.of_hex_opt "cbf439261");
  Alcotest.(check (option int32)) "non-hex rejected" None (Crc32.of_hex_opt "cbf4392g");
  (* single-bit damage is detected *)
  let s = "section meta 8 deadbeef" in
  let flipped = Bytes.of_string s in
  Bytes.set flipped 3 (Char.chr (Char.code (Bytes.get flipped 3) lxor 1));
  Alcotest.(check bool) "bit flip changes digest" false
    (Crc32.digest s = Crc32.digest (Bytes.to_string flipped))

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick rng_seeds_differ;
    Alcotest.test_case "rng int bounds" `Quick rng_int_bounds;
    Alcotest.test_case "rng int_in bounds" `Quick rng_int_in_bounds;
    Alcotest.test_case "rng float bounds" `Quick rng_float_bounds;
    Alcotest.test_case "rng uniformity" `Quick rng_int_roughly_uniform;
    Alcotest.test_case "rng shuffle permutes" `Quick rng_shuffle_permutes;
    Alcotest.test_case "rng sample distinct" `Quick rng_sample_distinct;
    Alcotest.test_case "rng zipf skew" `Quick rng_zipf_range_and_skew;
    Alcotest.test_case "rng split" `Quick rng_split_independent;
    Alcotest.test_case "stats basics" `Quick stats_basics;
    Alcotest.test_case "stats percentile" `Quick stats_percentile;
    Alcotest.test_case "stats geo mean" `Quick stats_geo_mean;
    Alcotest.test_case "stats empty raises" `Quick stats_empty_raises;
    Alcotest.test_case "floatx approx" `Quick floatx_approx;
    Alcotest.test_case "floatx compensated sum" `Quick floatx_sum_stable;
    Alcotest.test_case "tbl renders rectangular" `Quick tbl_renders;
    Alcotest.test_case "tbl arity check" `Quick tbl_arity_check;
    Alcotest.test_case "metrics counter/gauge" `Quick metrics_counter_gauge;
    Alcotest.test_case "metrics duplicate name" `Quick metrics_duplicate_name_rejected;
    Alcotest.test_case "metrics histogram buckets" `Quick metrics_histogram_buckets_and_quantile;
    Alcotest.test_case "metrics snapshot order + json" `Quick metrics_snapshot_order_and_json;
    Alcotest.test_case "metrics json floats" `Quick metrics_json_floats;
    Alcotest.test_case "metrics counter 4-domain hammer" `Quick metrics_counter_hammered_from_domains;
    Alcotest.test_case "metrics histogram dump/restore" `Quick metrics_hist_dump_restore;
    Alcotest.test_case "crc32 known values" `Quick crc32_known_values;
    Util.qtest qcheck_rng_bounds;
    Util.qtest qcheck_stats_mean_bounds;
  ]
