open Dmn_prelude
open Dmn_graph
open Dmn_paths

let binheap_sorts () =
  let rng = Rng.create 21 in
  let h = Binheap.create () in
  let values = Array.init 500 (fun _ -> Rng.float rng 100.0) in
  Array.iter (fun v -> Binheap.push h v ()) values;
  Alcotest.(check int) "size" 500 (Binheap.size h);
  let sorted = Array.copy values in
  Array.sort compare sorted;
  Array.iter (fun expected -> Util.check_float "pop order" expected (fst (Binheap.pop_min h))) sorted;
  Alcotest.(check bool) "empty" true (Binheap.is_empty h)

let binheap_empty_raises () =
  let h : unit Binheap.t = Binheap.create () in
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Binheap.pop_min h))

let idx_heap_decrease_key () =
  let h = Idx_heap.create 10 in
  Idx_heap.insert h 3 5.0;
  Idx_heap.insert h 7 2.0;
  Idx_heap.insert h 1 9.0;
  Idx_heap.decrease h 1 1.0;
  Alcotest.(check (pair int (float 1e-9))) "min after decrease" (1, 1.0) (Idx_heap.pop_min h);
  Alcotest.(check (pair int (float 1e-9))) "next" (7, 2.0) (Idx_heap.pop_min h);
  Idx_heap.insert_or_decrease h 3 10.0 (* no-op: not lower *);
  Alcotest.(check (pair int (float 1e-9))) "unchanged" (3, 5.0) (Idx_heap.pop_min h)

let idx_heap_sorts_random () =
  let rng = Rng.create 22 in
  for _ = 1 to 20 do
    let n = 1 + Rng.int rng 200 in
    let h = Idx_heap.create n in
    let prio = Array.init n (fun _ -> Rng.float rng 1000.0) in
    Array.iteri (fun k p -> Idx_heap.insert h k p) prio;
    (* random decreases *)
    for _ = 1 to n / 2 do
      let k = Rng.int rng n in
      if Idx_heap.mem h k then begin
        let p = Idx_heap.priority h k /. 2.0 in
        Idx_heap.decrease h k p;
        prio.(k) <- p
      end
    done;
    let last = ref neg_infinity in
    while not (Idx_heap.is_empty h) do
      let k, p = Idx_heap.pop_min h in
      Util.check_float "priority recorded" prio.(k) p;
      Util.check_leq "monotone pops" !last p;
      last := p
    done
  done

let dijkstra_line () =
  let g = Gen.path 5 in
  let r = Dijkstra.run g 0 in
  Array.iteri (fun v d -> Util.check_float "line dist" (float_of_int v) d) r.Dijkstra.dist;
  Alcotest.(check (list int)) "path" [ 0; 1; 2; 3 ] (Dijkstra.path r 3)

let dijkstra_vs_floyd () =
  let rng = Rng.create 23 in
  for _ = 1 to 15 do
    let n = 2 + Rng.int rng 25 in
    let g = Gen.erdos_renyi rng n 0.3 in
    let m1 = Metric.of_graph g and m2 = Metric.of_graph_floyd g in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        Util.check_cost "dijkstra == floyd" (Metric.d m2 u v) (Metric.d m1 u v)
      done
    done
  done

let dijkstra_multi_source () =
  let rng = Rng.create 24 in
  for _ = 1 to 15 do
    let n = 3 + Rng.int rng 25 in
    let g = Gen.erdos_renyi rng n 0.3 in
    let k = 1 + Rng.int rng (n - 1) in
    let sources = Array.to_list (Rng.sample rng (Array.init n (fun i -> i)) k) in
    let multi = Dijkstra.multi g sources in
    let singles = List.map (fun s -> (Dijkstra.run g s).Dijkstra.dist) sources in
    for v = 0 to n - 1 do
      let expected = List.fold_left (fun acc d -> Float.min acc d.(v)) infinity singles in
      Util.check_cost "multi = min of singles" expected multi.Dijkstra.dist.(v);
      (* the serving source must actually achieve the distance *)
      let s = multi.Dijkstra.source.(v) in
      Alcotest.(check bool) "source is a source" true (List.mem s sources)
    done
  done

let dijkstra_path_valid () =
  let rng = Rng.create 25 in
  for _ = 1 to 15 do
    let n = 2 + Rng.int rng 20 in
    let g = Gen.erdos_renyi rng n 0.3 in
    let r = Dijkstra.run g 0 in
    for v = 0 to n - 1 do
      let p = Dijkstra.path r v in
      (* consecutive nodes joined by edges; weights sum to dist *)
      let rec walk acc = function
        | a :: (b :: _ as rest) -> walk (acc +. Wgraph.edge_weight g a b) rest
        | _ -> acc
      in
      Util.check_cost "path weight = dist" r.Dijkstra.dist.(v) (walk 0.0 p);
      Alcotest.(check int) "starts at source" 0 (List.hd p)
    done
  done

let bfs_hops_match () =
  let g = Gen.grid 3 3 in
  let h = Bfs.hops g 0 in
  Alcotest.(check int) "corner to corner" 4 h.(8);
  Alcotest.(check int) "eccentricity" 4 (Bfs.eccentricity g 0);
  Alcotest.(check int) "component size" 9 (List.length (Bfs.component g 0))

let metric_axioms () =
  let rng = Rng.create 26 in
  for _ = 1 to 10 do
    let n = 2 + Rng.int rng 20 in
    let g = Gen.erdos_renyi rng n 0.3 in
    let m = Metric.of_graph g in
    let mat = Metric.to_matrix m in
    (match Metric.is_metric mat with
    | Ok () -> ()
    | Error e -> Alcotest.failf "closure not a metric: %s" e);
    (* closure distances never exceed direct edges *)
    List.iter
      (fun (u, v, w) -> Util.check_leq "closure <= edge" (Metric.d m u v) w)
      (Wgraph.edges g)
  done

let metric_of_matrix_validates () =
  let bad = [| [| 0.0; 1.0 |]; [| 2.0; 0.0 |] |] in
  (match Metric.is_metric bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "asymmetric matrix accepted");
  let triangle_bad = [| [| 0.0; 1.0; 5.0 |]; [| 1.0; 0.0; 1.0 |]; [| 5.0; 1.0; 0.0 |] |] in
  match Metric.is_metric triangle_bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "triangle violation accepted"

let metric_of_points () =
  let m = Metric.of_points [| (0.0, 0.0); (3.0, 4.0); (0.0, 1.0) |] in
  Util.check_float "euclid" 5.0 (Metric.d m 0 1);
  Util.check_float "euclid2" 1.0 (Metric.d m 0 2);
  let u, d = Metric.nearest m 0 [ 1; 2 ] in
  Alcotest.(check int) "nearest" 2 u;
  Util.check_float "nearest dist" 1.0 d

let metric_of_points_rejects_nonfinite () =
  Alcotest.check_raises "nan coordinate"
    (Invalid_argument "Metric.of_points: point 1 has non-finite coordinates (nan, 0)") (fun () ->
      ignore (Metric.of_points [| (0.0, 0.0); (Float.nan, 0.0) |]));
  Alcotest.check_raises "infinite coordinate"
    (Invalid_argument "Metric.of_points: point 0 has non-finite coordinates (0, inf)") (fun () ->
      ignore (Metric.of_points [| (0.0, infinity); (1.0, 0.0) |]))

let metric_scale () =
  let m = Metric.of_points [| (0.0, 0.0); (1.0, 0.0) |] in
  let m2 = Metric.scale 3.0 m in
  Util.check_float "scaled" 3.0 (Metric.d m2 0 1)

let qcheck_triangle =
  QCheck.Test.make ~name:"closure satisfies triangle inequality" ~count:60
    QCheck.(pair small_int (int_range 2 25))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n 0.2 in
      let m = Metric.of_graph g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if Metric.d m i j > Metric.d m i k +. Metric.d m k j +. 1e-9 then ok := false
          done
        done
      done;
      !ok)

(* Flat row-major storage must hold exactly what the matrix interface
   reports: every accessor — d, unsafe_d, the row view, and a matrix
   round-trip — agrees bit for bit on random closures. *)
let qcheck_flat_matrix =
  QCheck.Test.make ~name:"flat storage == matrix metric, entry for entry" ~count:60
    QCheck.(pair small_int (int_range 2 25))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Gen.erdos_renyi rng n 0.25 in
      let m = Metric.of_graph g in
      let m2 = Metric.of_matrix (Metric.to_matrix m) in
      let ok = ref true in
      for v = 0 to n - 1 do
        let r = Metric.row m v in
        for u = 0 to n - 1 do
          let d = Metric.d m v u in
          if
            not
              (Float.equal d (Metric.d m2 v u)
              && Float.equal d (Metric.unsafe_d m v u)
              && Float.equal d (Metric.row_get r u))
          then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "binheap sorts" `Quick binheap_sorts;
    Alcotest.test_case "binheap empty raises" `Quick binheap_empty_raises;
    Alcotest.test_case "idx heap decrease-key" `Quick idx_heap_decrease_key;
    Alcotest.test_case "idx heap random" `Quick idx_heap_sorts_random;
    Alcotest.test_case "dijkstra line" `Quick dijkstra_line;
    Alcotest.test_case "dijkstra vs floyd-warshall" `Quick dijkstra_vs_floyd;
    Alcotest.test_case "multi-source dijkstra" `Quick dijkstra_multi_source;
    Alcotest.test_case "dijkstra paths valid" `Quick dijkstra_path_valid;
    Alcotest.test_case "bfs hops" `Quick bfs_hops_match;
    Alcotest.test_case "metric axioms" `Quick metric_axioms;
    Alcotest.test_case "metric validation" `Quick metric_of_matrix_validates;
    Alcotest.test_case "euclidean metric" `Quick metric_of_points;
    Alcotest.test_case "of_points rejects non-finite" `Quick metric_of_points_rejects_nonfinite;
    Alcotest.test_case "metric scale" `Quick metric_scale;
    Util.qtest qcheck_triangle;
    Util.qtest qcheck_flat_matrix;
  ]
