(* Replay engine: trace round-trips, cross-domain determinism, policy
   accounting, and streaming behaviour. *)

open Dmn_prelude
module I = Dmn_core.Instance
module P = Dmn_core.Placement
module A = Dmn_core.Approx
module Trace = Dmn_core.Serial.Trace
module St = Dmn_dynamic.Stream
module Sg = Dmn_dynamic.Strategy
module Sim = Dmn_dynamic.Sim
module En = Dmn_engine.Engine

let tmp_file =
  let counter = ref 0 in
  fun suffix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dmnet-test-engine-%d-%d-%s" (Unix.getpid ()) !counter suffix)

let with_tmp suffix f =
  let path = tmp_file suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* a fresh path for a checkpoint/journal directory (created by the code
   under test), recursively removed afterwards *)
let with_tmp_dir suffix f =
  let path = tmp_file suffix in
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let load_ckpt dir = (Dmn_core.Ckpt_store.load dir).Dmn_core.Ckpt_store.ckpt

let small_instance ?(objects = 3) ?(n = 14) seed =
  let rng = Rng.create seed in
  let g = Dmn_graph.Gen.random_geometric rng n 0.45 in
  let nn = Dmn_graph.Wgraph.n g in
  let cs = Array.init nn (fun _ -> Rng.float_in rng 1.0 6.0) in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.mix rng ~objects ~n:nn ~total:(8 * nn) ~write_fraction:0.25
  in
  I.of_graph g ~cs ~fr ~fw

(* ---------- Serial.Trace ---------- *)

let trace_roundtrip () =
  let header = { Trace.nodes = 5; objects = 2 } in
  let events =
    [
      { Trace.node = 0; x = 0; write = false };
      { Trace.node = 4; x = 1; write = true };
      { Trace.node = 2; x = 0; write = false };
    ]
  in
  with_tmp "roundtrip.trace" @@ fun path ->
  let written = Trace.write path header (List.to_seq events) in
  Alcotest.(check int) "event count" 3 written;
  Trace.with_reader path (fun h evs ->
      Alcotest.(check int) "nodes" 5 h.Trace.nodes;
      Alcotest.(check int) "objects" 2 h.Trace.objects;
      Alcotest.(check bool) "events round-trip" true (List.of_seq evs = events))

let trace_streaming_is_lazy () =
  (* the reader must not materialize the file: events arrive as forced *)
  let header = { Trace.nodes = 3; objects = 1 } in
  let events = List.init 1000 (fun i -> { Trace.node = i mod 3; x = 0; write = i mod 7 = 0 }) in
  with_tmp "lazy.trace" @@ fun path ->
  ignore (Trace.write path header (List.to_seq events));
  Trace.with_reader path (fun _ evs ->
      (* forcing only the first 10 elements must not fail or drain *)
      let taken = List.of_seq (Seq.take 10 evs) in
      Alcotest.(check int) "partial force" 10 (List.length taken);
      Alcotest.(check bool) "prefix matches" true
        (taken = List.filteri (fun i _ -> i < 10) events))

let trace_malformed_rejected () =
  let check_fails name contents expected_kind =
    with_tmp "bad.trace" @@ fun path ->
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    match Trace.with_reader path (fun _ evs -> Seq.iter ignore evs) with
    | exception Err.Error e ->
        if e.Err.kind <> expected_kind then
          Alcotest.failf "%s: expected %s error, got %s" name (Err.kind_name expected_kind)
            (Err.kind_name e.Err.kind)
    | _ -> Alcotest.failf "%s: malformed trace accepted" name
  in
  check_fails "wrong magic" "dmnet-oops v1\n3 1\n" Err.Parse;
  check_fails "wrong version" "dmnet-trace v9\n3 1\n" Err.Parse;
  check_fails "truncated header" "dmnet-trace v1\n" Err.Parse;
  check_fails "non-positive shape" "dmnet-trace v1\n0 1\n" Err.Validation;
  check_fails "bad kind token" "dmnet-trace v1\n3 1\nq 0 0\n" Err.Parse;
  check_fails "non-integer node" "dmnet-trace v1\n3 1\nr zero 0\n" Err.Parse;
  check_fails "node out of range" "dmnet-trace v1\n3 1\nr 3 0\n" Err.Validation;
  check_fails "object out of range" "dmnet-trace v1\n3 1\nw 0 1\n" Err.Validation;
  check_fails "trailing junk on line" "dmnet-trace v1\n3 1\nr 0 0 9\n" Err.Parse

let trace_write_validates_events () =
  with_tmp "invalid-ev.trace" @@ fun path ->
  let header = { Trace.nodes = 2; objects = 1 } in
  match Trace.write path header (List.to_seq [ { Trace.node = 2; x = 0; write = false } ]) with
  | exception Err.Error e ->
      Alcotest.(check bool) "validation kind" true (e.Err.kind = Err.Validation);
      Alcotest.(check bool) "no partial file left" true (not (Sys.file_exists path))
  | _ -> Alcotest.fail "out-of-range event written"

(* ---------- engine basics ---------- *)

let engine_rejects_bad_inputs () =
  let inst = small_instance 10 in
  let placement = A.solve inst in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: accepted" name
  in
  expect_invalid "non-positive epoch" (fun () ->
      En.run ~config:{ En.default_config with En.epoch = 0 } inst placement Seq.empty);
  expect_invalid "non-positive period" (fun () ->
      En.run ~config:{ En.default_config with En.storage_period = Some 0 } inst placement Seq.empty);
  expect_invalid "out-of-range event node" (fun () ->
      En.run inst placement (List.to_seq [ { St.node = I.n inst; x = 0; kind = St.Read } ]));
  expect_invalid "out-of-range event object" (fun () ->
      En.run inst placement
        (List.to_seq [ { St.node = 0; x = I.objects inst; kind = St.Read } ]));
  expect_invalid "foreign placement" (fun () ->
      En.run inst (P.uniform ~objects:(I.objects inst + 1) [ 0 ]) Seq.empty);
  (* zero-volume instance: no default period, but an explicit one works *)
  let g = Dmn_graph.Gen.path 3 in
  let zero = [| Array.make 3 0 |] in
  let zinst = I.of_graph g ~cs:(Array.make 3 1.0) ~fr:zero ~fw:zero in
  let zp = P.uniform ~objects:1 [ 0 ] in
  expect_invalid "zero-volume default period" (fun () -> En.run zinst zp Seq.empty);
  let r = En.run ~config:{ En.default_config with En.storage_period = Some 4 } zinst zp Seq.empty in
  Alcotest.(check int) "no epochs on an empty stream" 0 (List.length r.En.epochs);
  Alcotest.(check int) "totals empty" 0 r.En.totals.En.events

let engine_consumes_stream_once () =
  let inst = small_instance 11 in
  let placement = A.solve inst in
  let forced = ref 0 in
  let events =
    Seq.map
      (fun e ->
        incr forced;
        e)
      (List.to_seq (St.stationary (Rng.create 3) inst ~length:750))
  in
  let r =
    En.run ~config:{ En.default_config with En.policy = En.Static; En.epoch = 100 } inst
      placement events
  in
  Alcotest.(check int) "every event forced exactly once" 750 !forced;
  Alcotest.(check int) "every event served" 750 r.En.totals.En.events;
  Alcotest.(check int) "ceil(750/100) epochs" 8 (List.length r.En.epochs);
  (* last epoch is the partial one *)
  let last = List.nth r.En.epochs 7 in
  Alcotest.(check int) "partial epoch length" 50 last.En.events

(* ---------- determinism across domain counts ---------- *)

let engine_deterministic_across_domains () =
  let inst = small_instance ~objects:4 12 in
  let placement = A.solve inst in
  let stream () = St.drifting_seq (Rng.create 9) inst ~phases:5 ~phase_length:300 ~write_fraction:0.2 in
  let run_at policy domains =
    Pool.with_pool ~domains (fun pool ->
        let config = { En.default_config with En.policy; En.epoch = 250 } in
        En.metrics_json inst (En.run ~pool ~config inst placement (stream ())))
  in
  List.iter
    (fun policy ->
      let j1 = run_at policy 1 in
      List.iter
        (fun d ->
          Alcotest.(check string)
            (Printf.sprintf "%s: domains %d == domains 1" (En.policy_name policy) d)
            j1 (run_at policy d))
        [ 2; 4 ])
    [ En.Static; En.Resolve; En.Cache ]

(* Memoization is pure: the versioned serve caches must not move a
   single bit of the metrics JSON relative to the recompute-everything
   baseline, for any policy at any domain count. *)
let engine_cached_matches_uncached () =
  let inst = small_instance ~objects:4 17 in
  let placement = A.solve inst in
  let stream () =
    St.drifting_seq (Rng.create 12) inst ~phases:5 ~phase_length:300 ~write_fraction:0.3
  in
  let run_at policy domains serve_cache =
    Pool.with_pool ~domains (fun pool ->
        let config = { En.default_config with En.policy; En.epoch = 250; En.serve_cache } in
        En.metrics_json inst (En.run ~pool ~config inst placement (stream ())))
  in
  List.iter
    (fun policy ->
      let uncached = run_at policy 1 false in
      List.iter
        (fun d ->
          Alcotest.(check string)
            (Printf.sprintf "%s: cached at %d domains == uncached" (En.policy_name policy) d)
            uncached (run_at policy d true))
        [ 1; 2; 4 ])
    [ En.Static; En.Resolve; En.Cache ]

(* ---------- accounting ---------- *)

let engine_static_matches_simulator () =
  (* the engine's static policy and the list simulator charge the same
     serving costs and the same pro-rated rent *)
  let inst = small_instance ~objects:2 13 in
  let placement = A.solve inst in
  let events = St.stationary (Rng.create 21) inst ~length:900 in
  let sim = Sim.run ~storage_period:400 inst (Sg.static inst placement) events in
  let r =
    En.run
      ~config:
        { En.default_config with En.policy = En.Static; En.epoch = 400; En.storage_period = Some 400 }
      inst placement (List.to_seq events)
  in
  Util.check_cost "serving matches Sim.run" sim.Sim.serving r.En.totals.En.serving;
  Util.check_cost "storage matches Sim.run" sim.Sim.storage r.En.totals.En.storage;
  Util.check_cost "no migration under static" 0.0 r.En.totals.En.migration;
  Alcotest.(check int) "final copies match" sim.Sim.final_copies r.En.totals.En.final_copies

let engine_epoch_stats_consistent () =
  let inst = small_instance ~objects:3 14 in
  let placement = A.solve inst in
  let events = St.stationary (Rng.create 31) inst ~length:1000 in
  let r =
    En.run ~config:{ En.default_config with En.epoch = 300 } inst placement (List.to_seq events)
  in
  let t = r.En.totals in
  let sum f = List.fold_left (fun acc (e : En.epoch_stats) -> acc +. f e) 0.0 r.En.epochs in
  let sumi f = List.fold_left (fun acc (e : En.epoch_stats) -> acc + f e) 0 r.En.epochs in
  Alcotest.(check int) "events partition into epochs" t.En.events (sumi (fun e -> e.En.events));
  Alcotest.(check int) "reads + writes = events" t.En.events (t.En.reads + t.En.writes);
  Util.check_cost "serving totals" t.En.serving (sum (fun e -> e.En.serving));
  Util.check_cost "storage totals" t.En.storage (sum (fun e -> e.En.storage));
  Util.check_cost "migration totals" t.En.migration (sum (fun e -> e.En.migration));
  List.iter
    (fun (e : En.epoch_stats) ->
      Util.check_leq "p50 <= p95" e.En.p50 e.En.p95;
      Util.check_leq "p95 <= p99" e.En.p95 e.En.p99;
      if e.En.copies <= 0 then Alcotest.fail "copy count must stay positive")
    r.En.epochs;
  (* snapshots: one per epoch, counters cumulative and monotonic *)
  Alcotest.(check int) "one snapshot per epoch" (List.length r.En.epochs)
    (List.length r.En.snapshots);
  let counter_of snap name =
    match List.assoc name snap with Metrics.Counter c -> c | _ -> Alcotest.fail "not a counter"
  in
  let rec monotonic last = function
    | [] -> ()
    | snap :: rest ->
        let c = counter_of snap "events_total" in
        Util.check_leq "events_total monotonic" (float_of_int last) (float_of_int c);
        monotonic c rest
  in
  monotonic 0 r.En.snapshots;
  Alcotest.(check int) "final counter = all events" t.En.events (counter_of r.En.final "events_total")

let engine_resolve_beats_static_on_drift () =
  let inst = small_instance ~objects:3 ~n:20 15 in
  let placement = A.solve inst in
  let stream () = St.drifting_seq (Rng.create 4) inst ~phases:8 ~phase_length:500 ~write_fraction:0.15 in
  let total policy =
    let config = { En.default_config with En.policy; En.epoch = 250 } in
    En.total_cost (En.run ~config inst placement (stream ())).En.totals
  in
  let s = total En.Static and r = total En.Resolve in
  Util.check_leq "epoch re-solve beats the stale static placement" r s

(* ---------- trace-driven runs ---------- *)

let engine_run_trace_and_metrics_file () =
  let inst = small_instance ~objects:2 16 in
  let placement = A.solve inst in
  let events = St.stationary (Rng.create 41) inst ~length:600 in
  with_tmp "run.trace" @@ fun trace_path ->
  let header = { Trace.nodes = I.n inst; objects = I.objects inst } in
  let written =
    Trace.write trace_path header
      (Seq.map
         (fun { St.node; x; kind } -> { Trace.node; x; write = kind = St.Write })
         (List.to_seq events))
  in
  Alcotest.(check int) "trace length" 600 written;
  let config = { En.default_config with En.epoch = 200 } in
  let from_trace = En.run_trace ~config inst placement trace_path in
  let from_seq = En.run ~config inst placement (List.to_seq events) in
  Alcotest.(check string) "trace replay == in-memory replay"
    (En.metrics_json inst from_seq)
    (En.metrics_json inst from_trace);
  (* metrics file lands atomically and parses back as the same bytes *)
  with_tmp "metrics.json" @@ fun mpath ->
  En.write_metrics mpath inst from_trace;
  let ic = open_in_bin mpath in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "file contents" (En.metrics_json inst from_trace ^ "\n") contents

let engine_run_trace_rejects_mismatched_header () =
  let inst = small_instance ~objects:2 17 in
  let placement = A.solve inst in
  with_tmp "mismatch.trace" @@ fun path ->
  let header = { Trace.nodes = I.n inst + 1; objects = I.objects inst } in
  ignore (Trace.write path header (List.to_seq [ { Trace.node = 0; x = 0; write = false } ]));
  match En.run_trace inst placement path with
  | exception Err.Error e ->
      Alcotest.(check bool) "validation kind" true (e.Err.kind = Err.Validation)
  | _ -> Alcotest.fail "mismatched trace header accepted"

(* ---------- checkpoint / resume ---------- *)

let write_trace inst path events =
  let header = { Trace.nodes = I.n inst; objects = I.objects inst } in
  ignore
    (Trace.write path header
       (Seq.map
          (fun { St.node; x; kind } -> { Trace.node; x; write = kind = St.Write })
          (List.to_seq events)))

let engine_resume_is_byte_identical () =
  let inst = small_instance ~objects:3 18 in
  let placement = A.solve inst in
  let events = St.stationary (Rng.create 51) inst ~length:1200 in
  with_tmp "resume.trace" @@ fun trace_path ->
  write_trace inst trace_path events;
  with_tmp_dir "resume.ckptdir" @@ fun ckpt_path ->
  let config = { En.default_config with En.epoch = 150 } in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains @@ fun pool ->
      let uninterrupted =
        En.metrics_json inst (En.run_trace ~pool ~config inst placement trace_path)
      in
      (* first leg: checkpoint every other epoch, stop after 5 of 8 by
         truncating the stream the way a crash would *)
      let prefix = List.filteri (fun i _ -> i < 750) events in
      let _ =
        En.run ~pool ~config ~ckpt:{ En.dir = ckpt_path; every = 2; keep = 3 } inst placement
          (List.to_seq prefix)
      in
      let c = load_ckpt ckpt_path in
      Alcotest.(check int) "checkpoint at epoch boundary 4" 4
        c.Dmn_core.Serial.Checkpoint.next_epoch;
      (* second leg: resume against the full trace *)
      let resumed =
        En.run_trace ~pool ~config ~resume:c inst placement trace_path
      in
      Alcotest.(check string)
        (Printf.sprintf "resumed == uninterrupted at %d domains" domains)
        uninterrupted
        (En.metrics_json inst resumed);
      (* the ops registry records the resume *)
      (match List.assoc "resumes" resumed.En.ops with
      | Metrics.Counter 1 -> ()
      | _ -> Alcotest.fail "resume not recorded in ops");
      (* resuming a checkpoint that already covers the whole trace is a
         no-op run with identical output *)
      let full =
        En.run ~pool ~config ~ckpt:{ En.dir = ckpt_path; every = 1; keep = 3 } inst placement
          (List.to_seq events)
      in
      let c_full = load_ckpt ckpt_path in
      Alcotest.(check int) "final checkpoint covers all epochs" 8
        c_full.Dmn_core.Serial.Checkpoint.next_epoch;
      let resumed_full = En.run_trace ~pool ~config ~resume:c_full inst placement trace_path in
      Alcotest.(check string) "zero-remaining-events resume identical"
        (En.metrics_json inst full)
        (En.metrics_json inst resumed_full))
    [ 1; 4 ]

let engine_resume_rejects_mismatches () =
  let inst = small_instance ~objects:2 19 in
  let placement = A.solve inst in
  let events = St.stationary (Rng.create 61) inst ~length:400 in
  with_tmp "reject.trace" @@ fun trace_path ->
  write_trace inst trace_path events;
  with_tmp_dir "reject.ckptdir" @@ fun ckpt_path ->
  let config = { En.default_config with En.epoch = 100 } in
  let _ =
    En.run ~config ~ckpt:{ En.dir = ckpt_path; every = 1; keep = 3 } inst placement (List.to_seq events)
  in
  let c = load_ckpt ckpt_path in
  let expect_validation name f =
    match f () with
    | exception Err.Error e ->
        if e.Err.kind <> Err.Validation then
          Alcotest.failf "%s: wrong kind %s" name (Err.kind_name e.Err.kind)
    | _ -> Alcotest.failf "%s: accepted" name
  in
  (* policy mismatch *)
  expect_validation "policy mismatch" (fun () ->
      En.run_trace
        ~config:{ config with En.policy = En.Static }
        ~resume:c inst placement trace_path);
  (* epoch-size mismatch *)
  expect_validation "epoch size mismatch" (fun () ->
      En.run_trace ~config:{ config with En.epoch = 99 } ~resume:c inst placement trace_path);
  (* dirty-eps mismatch: the filter threshold is part of the run
     geometry (it shapes every epoch's dirty set) *)
  expect_validation "dirty-eps mismatch" (fun () ->
      En.run_trace ~config:{ config with En.dirty_eps = 0.5 } ~resume:c inst placement trace_path);
  (* a different trace: same shape, different events *)
  (let other = St.stationary (Rng.create 62) inst ~length:400 in
   with_tmp "other.trace" @@ fun other_path ->
   write_trace inst other_path other;
   expect_validation "fingerprint mismatch" (fun () ->
       En.run_trace ~config ~resume:c inst placement other_path));
  (* a shorter trace than the checkpoint consumed *)
  (let short = List.filteri (fun i _ -> i < 100) events in
   with_tmp "short.trace" @@ fun short_path ->
   write_trace inst short_path short;
   expect_validation "short trace" (fun () ->
       En.run_trace ~config ~resume:c inst placement short_path));
  (* cache policy refuses both sides *)
  let cache_config = { config with En.policy = En.Cache } in
  expect_validation "cache + ckpt" (fun () ->
      En.run_trace ~config:cache_config
        ~ckpt:{ En.dir = ckpt_path; every = 1; keep = 3 }
        inst placement trace_path);
  expect_validation "cache + resume" (fun () ->
      En.run_trace ~config:cache_config ~resume:c inst placement trace_path)

(* ---------- graceful degradation under injected re-solve faults ---------- *)

let engine_degrades_when_resolve_fails () =
  let inst = small_instance ~objects:3 20 in
  let placement = A.solve inst in
  let events = St.drifting (Rng.create 71) inst ~phases:4 ~phase_length:250 ~write_fraction:0.2 in
  let config = { En.default_config with En.epoch = 200 } in
  (* rate 1.0 on the re-solve point: every attempt of every re-solve
     fails, every epoch falls back, the run still completes *)
  Fault.configure ~seed:1 ~rate:1.0 ~points:[ "engine.resolve" ] ();
  let degraded =
    Fun.protect ~finally:Fault.disable (fun () ->
        En.run ~config inst placement (List.to_seq events))
  in
  Alcotest.(check int) "all events served" 1000 degraded.En.totals.En.events;
  Alcotest.(check int) "no successful re-solves" 0 degraded.En.totals.En.resolves;
  Alcotest.(check bool) "fallbacks recorded" true (degraded.En.totals.En.solve_fallbacks > 0);
  Alcotest.(check bool) "retries recorded" true (degraded.En.totals.En.solve_retries > 0);
  Util.check_cost "no migration when every re-solve falls back" 0.0
    degraded.En.totals.En.migration;
  (* with every re-solve failing, resolve degrades to exactly static *)
  let static =
    En.run ~config:{ config with En.policy = En.Static } inst placement (List.to_seq events)
  in
  Util.check_cost "serving equals the static policy" static.En.totals.En.serving
    degraded.En.totals.En.serving;
  (* partial rate: outcomes must still be domain-independent *)
  let at domains =
    Fault.configure ~seed:9 ~rate:0.4 ~points:[ "engine.resolve" ] ();
    Fun.protect ~finally:Fault.disable (fun () ->
        Pool.with_pool ~domains (fun pool ->
            let r = En.run ~pool ~config inst placement (List.to_seq events) in
            ( En.metrics_json inst r,
              r.En.totals.En.solve_retries,
              r.En.totals.En.solve_fallbacks )))
  in
  let j1 = at 1 in
  List.iter
    (fun d ->
      if at d <> j1 then Alcotest.failf "degraded run diverged at %d domains" d)
    [ 2; 4 ]

(* ---------- incremental re-solve: dirty filtering ---------- *)

(* --dirty-eps 0 {e is} the full-resolve path: nothing is ever skipped,
   and the output stays a pure function of the trace — identical at
   every domain count even under topology churn and injected solver
   faults (the supervisor retries draw order-independent coins). *)
let qcheck_dirty_eps_zero_identity =
  QCheck.Test.make ~name:"dirty-eps 0: byte-identical across domains under churn+faults"
    ~count:5
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1000))
    (fun seed ->
      let inst = small_instance ~objects:3 (100 + seed) in
      let placement = A.solve inst in
      let items () =
        Dmn_workload.Adversary.failure_repair (Rng.create (seed + 1)) inst ~phases:3
          ~phase_length:200 ~write_fraction:0.2
      in
      let config =
        { En.default_config with En.policy = En.Resolve; En.epoch = 150; En.dirty_eps = 0.0 }
      in
      let run domains =
        Fault.configure ~seed:(seed + 7) ~rate:0.3 ~points:[ "engine.resolve" ] ();
        Fun.protect ~finally:Fault.disable (fun () ->
            Pool.with_pool ~domains (fun pool ->
                let r = En.run_items ~pool ~config inst placement (items ()) in
                (En.metrics_json inst r, r.En.totals.En.solve_skipped)))
      in
      let j1, sk1 = run 1 in
      if sk1 <> 0 then QCheck.Test.fail_reportf "eps 0 skipped %d objects" sk1;
      List.for_all (fun d -> run d = (j1, 0)) [ 2; 4 ])

let engine_dirty_filter_deterministic_and_skips () =
  let inst = small_instance ~objects:4 22 in
  let placement = A.solve inst in
  let stream () =
    St.drifting_seq (Rng.create 5) inst ~phases:4 ~phase_length:600 ~write_fraction:0.2
  in
  let config =
    { En.default_config with En.policy = En.Resolve; En.epoch = 200; En.dirty_eps = 0.3 }
  in
  let run domains =
    Pool.with_pool ~domains (fun pool ->
        En.run ~pool ~config inst placement (stream ()))
  in
  let r1 = run 1 in
  let j1 = En.metrics_json inst r1 in
  List.iter
    (fun d ->
      Alcotest.(check string)
        (Printf.sprintf "dirty filtering at %d domains == 1 domain" d)
        j1
        (En.metrics_json inst (run d)))
    [ 2; 4 ];
  (* a long dwell inside each phase means most epochs have little drift:
     the filter must actually skip work *)
  Alcotest.(check bool) "some epochs skip re-solves" true (r1.En.totals.En.solve_skipped > 0);
  (* per-epoch accounting: every dirty object either re-solved or fell
     back, and dirty + skipped covers every counted outcome *)
  List.iter
    (fun (e : En.epoch_stats) ->
      Alcotest.(check int) "dirty = resolves + fallbacks" e.En.dirty
        (e.En.resolves + e.En.solve_fallbacks);
      Alcotest.(check int) "no cache traffic with the cache off" 0
        (e.En.cache_hits + e.En.cache_misses + e.En.cache_evictions))
    r1.En.epochs;
  (* the filter only skips stable objects: the re-solve policy must
     still track the drift better than never replanning at all *)
  let static =
    En.run
      ~config:{ config with En.policy = En.Static }
      inst placement (stream ())
  in
  Util.check_leq "incremental resolve still beats static on drift"
    (En.total_cost r1.En.totals)
    (En.total_cost static.En.totals)

(* ---------- the per-object solve cache ---------- *)

let qcheck_cache_key_stable =
  let module C = Dmn_core.Solve_cache in
  QCheck.Test.make ~name:"solve-cache key: quantization monotone, zero-preserving, stable"
    ~count:300
    (QCheck.make
       ~print:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b)
       QCheck.Gen.(pair (int_range 0 50_000) (int_range 0 50_000)))
    (fun (a, b) ->
      let qa = C.quantize a and qb = C.quantize b in
      (* two vectors agreeing bucket-by-bucket produce the same key;
         differing buckets produce different keys *)
      let key fr fw = C.key ~mhash:42L ~solver:"fp" ~epoch_events:100 ~period:400 ~fr ~fw in
      let k1 = key [| a; 0 |] [| 0; b |] and k2 = key [| a; 0 |] [| 0; b |] in
      (* monotone and zero-preserving *)
      (if a <= b then qa <= qb else qb <= qa)
      && (qa = 0) = (a = 0)
      && C.quantize a = qa (* deterministic *)
      && k1 = k2
      && (key [| b; 0 |] [| 0; a |] = k1) = (qa = qb))

let solve_cache_lru_behaviour () =
  let module C = Dmn_core.Solve_cache in
  let c = C.create ~capacity:2 in
  (match C.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted");
  Alcotest.(check (option (list int))) "miss on empty" None (C.find c "k1");
  C.add c "k1" [ 1 ];
  C.add c "k2" [ 2 ];
  Alcotest.(check (option (list int))) "hit k1" (Some [ 1 ]) (C.find c "k1");
  (* k2 is now least recently used; adding k3 evicts it *)
  C.add c "k3" [ 3 ];
  Alcotest.(check (option (list int))) "k2 evicted" None (C.find c "k2");
  Alcotest.(check (option (list int))) "k1 survives" (Some [ 1 ]) (C.find c "k1");
  Alcotest.(check (option (list int))) "k3 cached" (Some [ 3 ]) (C.find c "k3");
  Alcotest.(check int) "length bounded" 2 (C.length c);
  let s = C.stats c in
  Alcotest.(check int) "hits" 3 s.C.hits;
  Alcotest.(check int) "misses" 2 s.C.misses;
  Alcotest.(check int) "evictions" 1 s.C.evictions

let engine_solve_cache_hits_on_recurring_regimes () =
  let inst = small_instance ~objects:3 23 in
  let placement = A.solve inst in
  (* the same 150-event block four times: epochs 2-4 present exactly the
     frequency vectors epoch 1 solved, so with eps 0 every dirty object
     after the first epoch is a guaranteed cache hit *)
  let block = St.stationary (Rng.create 77) inst ~length:150 in
  let events = block @ block @ block @ block in
  let config =
    {
      En.default_config with
      En.policy = En.Resolve;
      En.epoch = 150;
      En.storage_period = Some 600;
      En.dirty_eps = 0.0;
      En.solve_cache = 16;
    }
  in
  let r = En.run ~config inst placement (List.to_seq events) in
  let k = I.objects inst in
  Alcotest.(check int) "first epoch misses once per object" k
    (match r.En.epochs with e :: _ -> e.En.cache_misses | [] -> -1);
  Alcotest.(check int) "every later epoch hits for every object" (3 * k)
    r.En.totals.En.cache_hits;
  List.iter
    (fun (e : En.epoch_stats) ->
      Alcotest.(check int) "hits + misses = dirty" e.En.dirty (e.En.cache_hits + e.En.cache_misses))
    r.En.epochs;
  (* cache hits count as resolves (the placement row was recomputed,
     just not via the solver), so the invariant holds cache on or off *)
  Alcotest.(check int) "dirty accounting with cache on"
    r.En.totals.En.resolves
    (r.En.totals.En.cache_hits + r.En.totals.En.cache_misses
    - r.En.totals.En.solve_fallbacks);
  (* cache results must be identical across domain counts too *)
  let j1 = En.metrics_json inst r in
  List.iter
    (fun d ->
      Pool.with_pool ~domains:d (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "solve cache deterministic at %d domains" d)
            j1
            (En.metrics_json inst (En.run ~pool ~config inst placement (List.to_seq events)))))
    [ 2; 4 ]

let engine_solve_cache_refuses_checkpointing () =
  let inst = small_instance ~objects:2 24 in
  let placement = A.solve inst in
  let config = { En.default_config with En.solve_cache = 8 } in
  with_tmp_dir "cache-ckpt.dir" @@ fun dir ->
  (match En.create ~config ~ckpt:{ En.dir; every = 1; keep = 3 } inst placement with
  | exception Err.Error e ->
      Alcotest.(check bool) "validation kind" true (e.Err.kind = Err.Validation)
  | _ -> Alcotest.fail "solve cache + checkpointing accepted");
  match En.create ~config:{ config with En.solve_cache = -1 } inst placement with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative solve cache accepted"

(* ---------- scratch reuse: clean epochs allocate little ---------- *)

let engine_scratch_reuse_bounds_allocation () =
  let inst = small_instance ~objects:3 ~n:20 31 in
  let placement = A.solve inst in
  let block = List.map (fun e -> St.Req e) (St.stationary (Rng.create 88) inst ~length:100) in
  let measure eps =
    let config =
      {
        En.default_config with
        En.policy = En.Resolve;
        En.epoch = 100;
        En.storage_period = Some 400;
        En.dirty_eps = eps;
      }
    in
    let eng = En.create ~config inst placement in
    (* two warm-up epochs populate the last-solved vectors and any
       lazily-built serve state *)
    En.step eng block;
    En.step eng block;
    let before = Gc.allocated_bytes () in
    En.step eng block;
    Gc.allocated_bytes () -. before
  in
  let full = measure 0.0 in
  (* identical blocks never drift, so at eps 1.0 the third epoch is
     entirely clean: no instance rebuild, no solver, reused scratch *)
  let clean = measure 1.0 in
  Util.check_leq "clean epoch allocates at most half of a full re-solve epoch" clean
    (full /. 2.0)

(* ---------- incremental step API ---------- *)

let engine_step_matches_run () =
  (* driving the engine epoch by epoch through [create]/[step]/[finish]
     must reproduce [run_items] byte-for-byte, partial tail included *)
  let inst = small_instance 29 in
  let placement = A.solve inst in
  let events = St.stationary (Rng.create 61) inst ~length:730 in
  let items = List.map (fun e -> St.Req e) events in
  let config = { En.default_config with En.policy = En.Resolve; epoch = 100 } in
  let reference =
    En.metrics_json inst (En.run_items ~config inst placement (List.to_seq items))
  in
  let eng = En.create ~config inst placement in
  let rec batches = function
    | [] -> []
    | rest ->
        let chunk = List.filteri (fun i _ -> i < 100) rest in
        let tail = List.filteri (fun i _ -> i >= 100) rest in
        chunk :: batches tail
  in
  List.iter
    (fun batch ->
      En.step eng batch;
      (* live accessors stay coherent between steps *)
      Alcotest.(check bool) "snapshot parses" true
        (Jsonx.parse (Metrics.snapshot_to_json (En.live_snapshot eng)) |> Result.is_ok))
    (batches items);
  Alcotest.(check int) "epochs done" 8 (En.epochs_done eng);
  Alcotest.(check int) "events consumed" 730 (En.events_consumed eng);
  let stepped = En.finish eng in
  Alcotest.(check string) "step == run_items" reference (En.metrics_json inst stepped);
  (* finish is idempotent *)
  Alcotest.(check string) "finish idempotent" reference (En.metrics_json inst (En.finish eng))

let engine_step_rejects_unforwarded_resume () =
  let inst = small_instance 3 in
  let placement = A.solve inst in
  let events = St.stationary (Rng.create 5) inst ~length:200 in
  let config = { En.default_config with En.epoch = 50 } in
  with_tmp_dir "step-resume.ckptdir" @@ fun ckpt_path ->
  let ckpt = { En.dir = ckpt_path; every = 1; keep = 3 } in
  ignore
    (En.run_items ~config ~ckpt inst placement
       (List.to_seq (List.map (fun e -> St.Req e) events)));
  let c = load_ckpt ckpt_path in
  let eng = En.create ~config ~resume:c inst placement in
  match En.step eng [ St.Req (List.hd events) ] with
  | () -> Alcotest.fail "step accepted a resumed engine without fast_forward"
  | exception Err.Error e ->
      if e.Err.kind <> Err.Validation then
        Alcotest.failf "expected a validation error, got %s" (Err.to_string e)

let suite =
  [
    Alcotest.test_case "trace roundtrip" `Quick trace_roundtrip;
    Alcotest.test_case "trace reader is lazy" `Quick trace_streaming_is_lazy;
    Alcotest.test_case "trace malformed inputs rejected" `Quick trace_malformed_rejected;
    Alcotest.test_case "trace write validates events" `Quick trace_write_validates_events;
    Alcotest.test_case "engine input validation" `Quick engine_rejects_bad_inputs;
    Alcotest.test_case "engine consumes stream once" `Quick engine_consumes_stream_once;
    Alcotest.test_case "engine deterministic across domains" `Quick
      engine_deterministic_across_domains;
    Alcotest.test_case "cached serving == uncached, all policies" `Quick
      engine_cached_matches_uncached;
    Alcotest.test_case "engine static matches simulator" `Quick engine_static_matches_simulator;
    Alcotest.test_case "engine epoch stats consistent" `Quick engine_epoch_stats_consistent;
    Alcotest.test_case "resolve beats static on drift" `Quick engine_resolve_beats_static_on_drift;
    Alcotest.test_case "trace-driven run + metrics file" `Quick engine_run_trace_and_metrics_file;
    Alcotest.test_case "trace header mismatch rejected" `Quick
      engine_run_trace_rejects_mismatched_header;
    Alcotest.test_case "resume is byte-identical (1/4 domains)" `Quick
      engine_resume_is_byte_identical;
    Alcotest.test_case "resume rejects mismatches" `Quick engine_resume_rejects_mismatches;
    Alcotest.test_case "resolve failure degrades gracefully" `Quick
      engine_degrades_when_resolve_fails;
    Alcotest.test_case "incremental step matches one-shot run" `Quick engine_step_matches_run;
    Alcotest.test_case "step rejects an unforwarded resume" `Quick
      engine_step_rejects_unforwarded_resume;
    Util.qtest qcheck_dirty_eps_zero_identity;
    Alcotest.test_case "dirty filter deterministic and skips on dwell" `Quick
      engine_dirty_filter_deterministic_and_skips;
    Util.qtest qcheck_cache_key_stable;
    Alcotest.test_case "solve cache LRU behaviour" `Quick solve_cache_lru_behaviour;
    Alcotest.test_case "solve cache hits on recurring regimes" `Quick
      engine_solve_cache_hits_on_recurring_regimes;
    Alcotest.test_case "solve cache refuses checkpointing" `Quick
      engine_solve_cache_refuses_checkpointing;
    Alcotest.test_case "clean epochs reuse scratch (allocation pinned)" `Quick
      engine_scratch_reuse_bounds_allocation;
  ]
