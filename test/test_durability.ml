(* Generational durability: checkpoint-directory manifests, fallback
   past a corrupt newest generation, journal segment rotation with
   torn-tail repair at a segment boundary, tmp-file hygiene of the
   atomic writer under injected faults, and the disk-chaos property —
   kill at an injected fault, resume, byte-identical to offline replay
   of the surviving journal at 1 and 4 domains. *)

open Dmn_prelude
module I = Dmn_core.Instance
module A = Dmn_core.Approx
module S = Dmn_core.Serial
module Trace = Dmn_core.Serial.Trace
module J = Dmn_core.Serial.Trace.Journal
module Cs = Dmn_core.Ckpt_store
module Ck = Dmn_core.Serial.Checkpoint
module St = Dmn_dynamic.Stream
module En = Dmn_engine.Engine
module Srv = Dmn_server.Server

let tmp_name =
  let counter = ref 0 in
  fun suffix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dmnet-test-durability-%d-%d-%s" (Unix.getpid ()) !counter suffix)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* a fresh directory path — created by the code under test *)
let with_tmp_dir suffix f =
  let path = tmp_name suffix in
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let small_instance ?(objects = 2) ?(n = 12) seed =
  let rng = Rng.create seed in
  let g = Dmn_graph.Gen.random_geometric rng n 0.5 in
  let nn = Dmn_graph.Wgraph.n g in
  let cs = Array.init nn (fun _ -> Rng.float_in rng 1.0 5.0) in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.mix rng ~objects ~n:nn ~total:(6 * nn) ~write_fraction:0.25
  in
  I.of_graph g ~cs ~fr ~fw

let sample_checkpoint ~events_consumed ~next_epoch =
  {
    Ck.policy = "resolve"; epoch_size = 100; period = 400; next_epoch; events_consumed;
    topo_consumed = 0; topo_applied = 0;
    fingerprint = Int64.of_int (events_consumed * 7919); nodes = 5; objects = 2;
    placements = [| [ 0; 3 ]; [ 2 ] |];
    epochs =
      List.init next_epoch (fun index ->
          {
            Ck.index; events = 100; reads = 80; writes = 20; resolves = 1; solve_retries = 0;
            solve_fallbacks = 0; copies = 3; dropped = 0; emergency = 0; topo_events = 0;
            serving = 12.5; storage = 3.25; migration = 0.5;
            p50 = 1.0; p95 = 2.0; p99 = 4.0;
            solve_skipped = 0; dirty = 1; cache_hits = 0; cache_misses = 0; cache_evictions = 0;
          });
    dirty_eps = 0.0;
    resolve_state = [| Ck.no_obj_state; Ck.no_obj_state |];
    hist = { Ck.h_lo = 1.0; h_base = 2.0; h_buckets = 8; h_sum = 0.0; h_counts = [] };
    topo = Ck.no_topo;
    checkpoints_written = next_epoch; serve_retries = 0;
  }

(* ---------- manifest grammar ---------- *)

let qcheck_manifest_roundtrip =
  let open QCheck.Gen in
  let gen_manifest =
    let* keep = int_range 1 9 in
    let* first = int_range 0 1000 in
    let* steps = list_size (int_range 0 5) (int_range 1 9) in
    let gens =
      List.rev
        (List.fold_left (fun acc step -> (List.hd acc + step) :: acc) [ first ] steps)
    in
    return { Cs.keep; latest = List.hd (List.rev gens); gens }
  in
  QCheck.Test.make ~name:"Ckpt_store manifest round-trips through its grammar" ~count:200
    (QCheck.make ~print:Cs.manifest_to_string gen_manifest)
    (fun m ->
      match Cs.manifest_of_string_res (Cs.manifest_to_string m) with
      | Ok m' -> m' = m
      | Error e -> QCheck.Test.fail_reportf "rejected its own output: %s" (Err.to_string e))

let manifest_corruption_detected () =
  let m = { Cs.keep = 3; latest = 12; gens = [ 10; 11; 12 ] } in
  let s = Cs.manifest_to_string m in
  let flip i =
    let b = Bytes.of_string s in
    Bytes.set b i (if Bytes.get b i = '1' then '2' else '1');
    Bytes.to_string b
  in
  (* flip a digit inside the body: the crc line must catch it *)
  let body_digit = String.index_from s (String.length Cs.magic) '1' in
  (match Cs.manifest_of_string_res (flip body_digit) with
  | Error e -> Alcotest.(check bool) "parse kind" true (e.Err.kind = Err.Parse)
  | Ok _ -> Alcotest.fail "flipped manifest body accepted");
  (* a torn manifest (truncated mid-file) is rejected, not trusted *)
  match Cs.manifest_of_string_res (String.sub s 0 (String.length s / 2)) with
  | Error e -> Alcotest.(check bool) "torn manifest rejected" true (e.Err.kind = Err.Parse)
  | Ok _ -> Alcotest.fail "torn manifest accepted"

(* ---------- generation retention and fallback ---------- *)

let store_keeps_k_and_falls_back () =
  with_tmp_dir "ckptdir" @@ fun dir ->
  let gens =
    List.map
      (fun i -> Cs.save dir ~keep:3 (sample_checkpoint ~events_consumed:(100 * i) ~next_epoch:i))
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check (list int)) "generation numbers are sequential" [ 0; 1; 2; 3; 4 ] gens;
  let m = Err.get_ok (Cs.read_manifest_res dir) in
  Alcotest.(check (list int)) "only the last keep=3 survive" [ 2; 3; 4 ] m.Cs.gens;
  Alcotest.(check bool) "pruned generation gone" false
    (Sys.file_exists (Filename.concat dir (Cs.gen_name 0)));
  let l = Cs.load dir in
  Alcotest.(check int) "clean load picks the newest" 4 l.Cs.generation;
  Alcotest.(check int) "no fallbacks on a clean load" 0 l.Cs.fallbacks;
  Alcotest.(check int) "payload is the newest" 500 l.Cs.ckpt.Ck.events_consumed;
  (* corrupt the newest generation: a torn write leaves half a file *)
  let latest = Filename.concat dir (Cs.gen_name 4) in
  let body = In_channel.with_open_bin latest In_channel.input_all in
  Out_channel.with_open_bin latest (fun oc ->
      Out_channel.output_string oc (String.sub body 0 (String.length body / 2)));
  let l = Cs.load dir in
  Alcotest.(check int) "falls back one generation" 3 l.Cs.generation;
  Alcotest.(check int) "fallback counted" 1 l.Cs.fallbacks;
  Alcotest.(check int) "previous payload served" 400 l.Cs.ckpt.Ck.events_consumed;
  (* fsck sees the damage; repair rewrites the directory over the valid set *)
  let r = Err.get_ok (Cs.fsck_res dir) in
  Alcotest.(check int) "fsck counts the corrupt generation" 1 r.Cs.f_corrupt;
  let r = Err.get_ok (Cs.fsck_res ~repair:true dir) in
  Alcotest.(check bool) "repair rewrote" true r.Cs.f_repaired;
  let r = Err.get_ok (Cs.fsck_res dir) in
  Alcotest.(check int) "healthy after repair" 0 r.Cs.f_corrupt;
  Alcotest.(check bool) "manifest ok after repair" true r.Cs.f_manifest_ok;
  Alcotest.(check int) "latest is the fallback generation" 3 r.Cs.f_latest;
  (* destroying every generation is the unrecoverable case *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  match Cs.load_res dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "an empty directory loaded"

(* ---------- journal: torn tail at a segment boundary ---------- *)

let journal_repairs_torn_tail_at_boundary () =
  with_tmp_dir "journal" @@ fun dir ->
  let header = { Trace.nodes = 4; objects = 2 } in
  let item k = Trace.Req { Trace.node = k mod 4; x = k mod 2; write = k mod 3 = 0 } in
  let j = J.create ~rotate_items:4 dir header in
  (* exactly two full segments: the active one ends on the boundary *)
  for k = 0 to 7 do
    J.add j (item k)
  done;
  J.close j;
  let segs = Err.get_ok (J.list_segments_res dir) in
  Alcotest.(check int) "two segments" 2 (List.length segs);
  let _, last_seg = List.nth segs 1 in
  (* crash mid-append: torn bytes land at the tail of a full segment *)
  let oc = open_out_gen [ Open_append ] 0o644 last_seg in
  output_string oc "w 3";
  close_out oc;
  (* reopen for append: the torn tail is truncated, the boundary is
     honoured — the next durable item starts a fresh segment *)
  let j = J.create ~append:true ~rotate_items:4 dir header in
  Alcotest.(check int) "no durable item lost to the repair" 8 (J.items_total j);
  for k = 8 to 10 do
    J.add j (item k)
  done;
  J.close j;
  let segs = Err.get_ok (J.list_segments_res dir) in
  Alcotest.(check (list int)) "segment starts" [ 0; 4; 8 ] (List.map fst segs);
  let chain = J.read_chain dir in
  Alcotest.(check int) "base" 0 chain.J.base;
  Alcotest.(check bool) "every item exactly once, in order" true
    (chain.J.chain_items = List.init 11 item);
  let r = Err.get_ok (J.fsck_res dir) in
  Alcotest.(check int) "fsck items" 11 r.J.f_items;
  Alcotest.(check bool) "no torn tail after repair" false r.J.f_torn_tail

(* ---------- pruning: covered segments go, the chain stays valid ---------- *)

let journal_prunes_covered_segments () =
  with_tmp_dir "journal-prune" @@ fun dir ->
  let header = { Trace.nodes = 4; objects = 2 } in
  let item k = Trace.Req { Trace.node = k mod 4; x = 0; write = false } in
  let j = J.create ~rotate_items:5 dir header in
  for k = 0 to 16 do
    J.add j (item k)
  done;
  J.sync j;
  Alcotest.(check int) "segments before" 4 (J.segments j);
  (* covered = 11: segments [0,5) and [5,10) go, [10,15) survives *)
  Alcotest.(check int) "two segments pruned" 2 (J.prune j ~covered:11);
  Alcotest.(check int) "segments after" 2 (J.segments j);
  Alcotest.(check int) "absolute total unchanged" 17 (J.items_total j);
  J.close j;
  let chain = J.read_chain dir in
  Alcotest.(check int) "base advanced to the first survivor" 10 chain.J.base;
  Alcotest.(check bool) "surviving items intact" true
    (chain.J.chain_items = List.init 7 (fun k -> item (k + 10)));
  (* the pruned prefix is only reachable through a checkpoint *)
  let inst = small_instance 3 in
  match
    En.run_items ~base:chain.J.base inst (A.solve inst)
      (List.to_seq (List.map En.of_trace_item chain.J.chain_items))
  with
  | exception Err.Error e ->
      Alcotest.(check bool) "resume-required error" true (e.Err.kind = Err.Validation)
  | _ -> Alcotest.fail "a pruned chain replayed without a checkpoint"

(* ---------- atomic writer hygiene under injected faults ---------- *)

let write_file_unlinks_tmp_on_failure () =
  with_tmp_dir "writer" @@ fun dir ->
  Unix.mkdir dir 0o755;
  let target = Filename.concat dir "out.txt" in
  Fun.protect ~finally:Fault.disable @@ fun () ->
  List.iter
    (fun point ->
      Fault.configure ~seed:1 ~rate:1.0 ~points:[ point ] ();
      Fault.reset_counters ();
      (match S.write_file_res target "payload\n" with
      | Ok () -> Alcotest.failf "%s: write succeeded under rate-1.0 injection" point
      | Error _ -> ());
      Fault.disable ();
      (* no target, and — the regression — no orphaned tmp file either *)
      Alcotest.(check bool)
        (point ^ ": target absent") false (Sys.file_exists target);
      Alcotest.(check (array string)) (point ^ ": directory empty") [||] (Sys.readdir dir))
    [
      "serial.write.open"; "serial.write.write"; "serial.write.short"; "serial.write.enospc";
      "serial.write.fsync"; "serial.write.rename";
    ];
  (* and with injection off the same call lands atomically *)
  S.write_file target "payload\n";
  Alcotest.(check bool) "clean write lands" true (Sys.file_exists target);
  Alcotest.(check (array string)) "no droppings" [| "out.txt" |] (Sys.readdir dir)

(* ---------- disk chaos: kill at a fault, resume byte-identically ---------- *)

let fault_points =
  [
    "trace.append.write"; "trace.append.sync"; "trace.append.short"; "serial.write.write";
    "serial.write.fsync"; "serial.write.rename";
  ]

let chaos_kill_resume_identical () =
  let inst = small_instance 17 in
  let placement = A.solve inst in
  let items =
    List.of_seq (St.items_of_events (St.stationary_seq (Rng.create 43) inst ~length:3000))
  in
  let config = { En.default_config with En.policy = En.Resolve; epoch = 50 } in
  let clean_prefix = 800 in
  let run_at domains =
    with_tmp_dir "chaos-journal" @@ fun journal ->
    with_tmp_dir "chaos-ckpt" @@ fun ckpt ->
    Fun.protect ~finally:Fault.disable @@ fun () ->
    Pool.with_pool ~domains @@ fun pool ->
    let cfg =
      {
        Srv.default_config with
        Srv.engine = config;
        journal = Some journal;
        ckpt = Some { En.dir = ckpt; every = 2; keep = 3 };
        queue_cap = 65536;
      }
    in
    let core = Srv.Core.create ~pool cfg inst placement in
    let fed = ref 0 in
    let crashed = ref false in
    (try
       List.iter
         (fun it ->
           incr fed;
           (* arm the faults only past a clean prefix, so a durable
              checkpoint exists at the kill *)
           if !fed = clean_prefix then begin
             Fault.configure ~seed:7 ~rate:0.004 ~points:fault_points ();
             Fault.reset_counters ()
           end;
           ignore (Srv.Core.push core it);
           if !fed mod 200 = 0 then Srv.Core.maybe_step core)
         items;
       Srv.Core.maybe_step core
     with Err.Error _ -> crashed := true);
    Fault.disable ();
    Alcotest.(check bool) "a disk fault killed the daemon" true !crashed;
    (* the core is abandoned without shutdown — a kill -9. Only what
       reached the journal and checkpoint directory survives. *)
    let loaded = Cs.load ckpt in
    let offline =
      En.metrics_json inst
        (En.run_trace ~pool ~config ~resume:loaded.Cs.ckpt inst placement journal)
    in
    let resumed = Srv.Core.create ~pool { cfg with Srv.resume = Some ckpt } inst placement in
    Srv.Core.maybe_step resumed;
    Srv.Core.flush resumed;
    let daemon = En.metrics_json inst (Srv.Core.result resumed) in
    Srv.Core.shutdown resumed;
    Alcotest.(check string)
      (Printf.sprintf "resumed daemon == offline replay at %d domains" domains)
      offline daemon;
    (* the surviving state passes fsck: torn tails and unreferenced
       generations are legal kill artifacts, not integrity damage *)
    (match Cs.fsck_res ckpt with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "checkpoint fsck failed: %s" (Err.to_string e));
    (match J.fsck_res journal with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "journal fsck failed: %s" (Err.to_string e));
    (!fed, daemon)
  in
  let fed1, json1 = run_at 1 in
  let fed4, json4 = run_at 4 in
  Alcotest.(check int) "same deterministic kill point at 1 and 4 domains" fed1 fed4;
  Alcotest.(check string) "identical metrics at 1 and 4 domains" json1 json4

(* ---------- fallback is surfaced by the serving daemon ---------- *)

let server_counts_ckpt_fallbacks () =
  let inst = small_instance 29 in
  let placement = A.solve inst in
  let items =
    List.of_seq (St.items_of_events (St.stationary_seq (Rng.create 19) inst ~length:900))
  in
  let config = { En.default_config with En.policy = En.Resolve; epoch = 100 } in
  let reference = En.metrics_json inst (En.run_items ~config inst placement (List.to_seq items)) in
  with_tmp_dir "fallback-journal" @@ fun journal ->
  with_tmp_dir "fallback-ckpt" @@ fun ckpt ->
  let cfg =
    {
      Srv.default_config with
      Srv.engine = config;
      journal = Some journal;
      ckpt = Some { En.dir = ckpt; every = 1; keep = 3 };
    }
  in
  let first = Srv.Core.create cfg inst placement in
  List.iteri (fun i it -> if i < 537 then ignore (Srv.Core.push first it)) items;
  Srv.Core.maybe_step first;
  Srv.Core.shutdown first;
  (* torn write: the newest generation survives only as half a file *)
  let m = Err.get_ok (Cs.read_manifest_res ckpt) in
  let latest = Filename.concat ckpt (Cs.gen_name m.Cs.latest) in
  let body = In_channel.with_open_bin latest In_channel.input_all in
  Out_channel.with_open_bin latest (fun oc ->
      Out_channel.output_string oc (String.sub body 0 (String.length body / 2)));
  let resumed = Srv.Core.create { cfg with Srv.resume = Some ckpt } inst placement in
  Alcotest.(check int) "fallback counted" 1 (Srv.Core.ckpt_fallbacks resumed);
  let has_needle ~needle s =
    let n = String.length needle and l = String.length s in
    let rec go i = i + n <= l && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "health surfaces the fallback" true
    (has_needle ~needle:"ckpt_fallbacks=1" (Srv.Core.health resumed));
  Alcotest.(check bool) "stats surfaces the fallback" true
    (has_needle ~needle:"\"ckpt_fallbacks\":1" (Srv.Core.stats resumed));
  (* and the degraded resume still reproduces the uninterrupted run *)
  List.iteri (fun i it -> if i >= 537 then ignore (Srv.Core.push resumed it)) items;
  Srv.Core.maybe_step resumed;
  Srv.Core.flush resumed;
  Alcotest.(check string) "metrics byte-identical despite the fallback" reference
    (En.metrics_json inst (Srv.Core.result resumed));
  Srv.Core.shutdown resumed

let suite =
  [
    Util.qtest qcheck_manifest_roundtrip;
    Alcotest.test_case "manifest corruption detected" `Quick manifest_corruption_detected;
    Alcotest.test_case "store keeps K generations, falls back" `Quick
      store_keeps_k_and_falls_back;
    Alcotest.test_case "torn tail repaired at a segment boundary" `Quick
      journal_repairs_torn_tail_at_boundary;
    Alcotest.test_case "covered segments pruned, chain stays valid" `Quick
      journal_prunes_covered_segments;
    Alcotest.test_case "write_file unlinks tmp on every failure path" `Quick
      write_file_unlinks_tmp_on_failure;
    Alcotest.test_case "disk chaos: kill+resume == offline replay (1/4 domains)" `Quick
      chaos_kill_resume_identical;
    Alcotest.test_case "daemon counts and survives a ckpt fallback" `Quick
      server_counts_ckpt_fallbacks;
  ]
