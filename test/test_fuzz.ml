(* Parser fuzzing: every mutilated input must come back as a structured
   [Err.t] (or parse fine) — never as a raw stdlib exception such as
   [Failure "int_of_string"] or an [Invalid_argument] escaping from a
   constructor, and never as a runaway allocation from a tampered
   header. *)

open Dmn_prelude
module I = Dmn_core.Instance
module P = Dmn_core.Placement
module S = Dmn_core.Serial

let corpus_seed = 20260806

(* ---------- mutations ---------- *)

let truncate rng s =
  if String.length s = 0 then s else String.sub s 0 (Rng.int rng (String.length s))

let bit_flip rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8) land 0xff));
    Bytes.to_string b
  end

(* Swap two whitespace-separated tokens in place, keeping the line
   structure intact otherwise. *)
let token_swap rng s =
  let lines = String.split_on_char '\n' s in
  let toks =
    List.concat_map (fun l -> String.split_on_char ' ' l |> List.filter (( <> ) "")) lines
  in
  match Array.of_list toks with
  | [||] -> s
  | a ->
      let i = Rng.int rng (Array.length a) and j = Rng.int rng (Array.length a) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t;
      (* re-join with the original per-line token counts *)
      let k = ref 0 in
      lines
      |> List.map (fun l ->
             let cnt = String.split_on_char ' ' l |> List.filter (( <> ) "") |> List.length in
             let row = Array.sub a !k (min cnt (Array.length a - !k)) in
             k := !k + Array.length row;
             String.concat " " (Array.to_list row))
      |> String.concat "\n"

let header_tamper rng s =
  let lines = String.split_on_char '\n' s in
  let tampered =
    match Rng.int rng 5 with
    | 0 -> [ "dmnet-instance v2" ]
    | 1 -> [ "dmnet-Instance v1" ]
    | 2 -> [ "totally-not-dmnet" ]
    | 3 -> [ "dmnet-instance v1"; "999999999 999999999 999999999" ]
    | _ -> []
  in
  match lines with
  | _ :: rest when Rng.int rng 2 = 0 -> String.concat "\n" (tampered @ rest)
  | _ :: _ :: rest -> String.concat "\n" (tampered @ rest)
  | _ -> String.concat "\n" tampered

let mutate rng s =
  match Rng.int rng 4 with
  | 0 -> truncate rng s
  | 1 -> bit_flip rng s
  | 2 -> token_swap rng s
  | _ -> header_tamper rng s

(* ---------- the property ---------- *)

let shown s = if String.length s <= 120 then s else String.sub s 0 120 ^ "..."

let well_behaved what parse s =
  match parse s with
  | Ok _ -> ()
  | Error (_ : Err.t) -> ()
  | exception e ->
      Alcotest.failf "%s: raw exception %s on input %S" what (Printexc.to_string e) (shown s)

let instance_corpus rng =
  List.init 12 (fun i ->
      let n = 2 + Rng.int rng 10 in
      S.instance_to_string (Util.random_graph_instance ~objects:(1 + (i mod 3)) rng n))

let placement_corpus rng =
  List.init 12 (fun _ ->
      let objects = 1 + Rng.int rng 4 in
      let copies =
        Array.init objects (fun _ -> List.init (1 + Rng.int rng 3) (fun _ -> Rng.int rng 12))
      in
      S.placement_to_string (P.make copies))

(* 1000 mutated files through the two parsers: 600 instances, 400
   placements. Each input gets 1-3 stacked mutations. *)
let fuzz_structured_errors () =
  let rng = Rng.create corpus_seed in
  let run what parse corpus count =
    let corpus = Array.of_list corpus in
    for _ = 1 to count do
      let s = ref (Rng.pick rng corpus) in
      for _ = 0 to Rng.int rng 3 do
        s := mutate rng !s
      done;
      well_behaved what parse !s
    done
  in
  run "instance" (fun s -> S.instance_of_string_res s) (instance_corpus rng) 600;
  run "placement" (fun s -> S.placement_of_string_res s) (placement_corpus rng) 400

(* Pure garbage (random bytes) should also only yield structured
   errors. *)
let fuzz_random_bytes () =
  let rng = Rng.create (corpus_seed + 1) in
  for _ = 1 to 100 do
    let len = Rng.int rng 200 in
    let s = String.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    well_behaved "instance" (fun s -> S.instance_of_string_res s) s;
    well_behaved "placement" (fun s -> S.placement_of_string_res s) s
  done

(* ---------- round-trip properties ---------- *)

let instance_roundtrip_property =
  QCheck.Test.make ~name:"instance round-trips through Serial" ~count:40
    QCheck.(pair (int_range 2 14) (int_range 1 3))
    (fun (n, objects) ->
      let rng = Rng.create ((n * 1009) + objects) in
      let inst = Util.random_graph_instance ~objects rng n in
      let inst2 = S.instance_of_string (S.instance_to_string inst) in
      I.n inst = I.n inst2
      && I.objects inst = I.objects inst2
      && List.for_all
           (fun v ->
             I.cs inst v = I.cs inst2 v
             && List.for_all
                  (fun x ->
                    I.reads inst ~x v = I.reads inst2 ~x v
                    && I.writes inst ~x v = I.writes inst2 ~x v)
                  (List.init objects Fun.id))
           (List.init n Fun.id))

let placement_roundtrip_property =
  QCheck.Test.make ~name:"placement round-trips through Serial" ~count:60
    QCheck.(list_of_size (Gen.int_range 1 6) (list_of_size (Gen.int_range 1 5) (int_range 0 30)))
    (fun rows ->
      let p = P.make (Array.of_list rows) in
      let p2 = S.placement_of_string (S.placement_to_string p) in
      P.objects p = P.objects p2
      && List.for_all (fun x -> P.copies p ~x = P.copies p2 ~x) (List.init (P.objects p) Fun.id))

let suite =
  [
    Alcotest.test_case "1000 mutated files yield structured errors" `Quick fuzz_structured_errors;
    Alcotest.test_case "random bytes yield structured errors" `Quick fuzz_random_bytes;
    Util.qtest instance_roundtrip_property;
    Util.qtest placement_roundtrip_property;
  ]
