open Dmn_prelude
module I = Dmn_core.Instance
module S = Dmn_core.Serial

let instance_roundtrip () =
  let rng = Rng.create 91 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 15 in
    let inst = Util.random_graph_instance ~objects:(1 + Rng.int rng 3) rng n in
    let inst2 = S.instance_of_string (S.instance_to_string inst) in
    Alcotest.(check int) "n" (I.n inst) (I.n inst2);
    Alcotest.(check int) "objects" (I.objects inst) (I.objects inst2);
    for v = 0 to n - 1 do
      Util.check_float "cs" (I.cs inst v) (I.cs inst2 v);
      for x = 0 to I.objects inst - 1 do
        Alcotest.(check int) "fr" (I.reads inst ~x v) (I.reads inst2 ~x v);
        Alcotest.(check int) "fw" (I.writes inst ~x v) (I.writes inst2 ~x v)
      done
    done;
    (* metrics agree *)
    let m1 = I.metric inst and m2 = I.metric inst2 in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        Util.check_cost "metric preserved" (Dmn_paths.Metric.d m1 u v) (Dmn_paths.Metric.d m2 u v)
      done
    done
  done

let placement_roundtrip () =
  let p = Dmn_core.Placement.make [| [ 3; 1 ]; [ 0 ]; [ 2; 4; 5 ] |] in
  let p2 = S.placement_of_string (S.placement_to_string p) in
  Alcotest.(check int) "objects" 3 (Dmn_core.Placement.objects p2);
  for x = 0 to 2 do
    Alcotest.(check (list int)) "copies"
      (Dmn_core.Placement.copies p ~x)
      (Dmn_core.Placement.copies p2 ~x)
  done

let rejects_garbage () =
  (match S.instance_of_string "not an instance" with
  | exception Err.Error { Err.kind = Err.Parse; _ } -> ()
  | _ -> Alcotest.fail "garbage accepted");
  match S.placement_of_string "dmnet-instance v1" with
  | exception Err.Error { Err.kind = Err.Parse; _ } -> ()
  | _ -> Alcotest.fail "wrong header accepted"

let expect_err what pred = function
  | Error (e : Err.t) ->
      if not (pred e) then
        Alcotest.failf "%s: wrong error: %s (%s)" what (Err.to_string e) (Err.kind_name e.Err.kind)
  | Ok _ -> Alcotest.failf "%s: accepted" what

let structured_errors_carry_context () =
  let inst = Util.random_graph_instance (Rng.create 3) 5 in
  let good = S.instance_to_string inst in
  (* version mismatch names the version *)
  let v9 = "dmnet-instance v9\n1 1 0\n1\n1\n0\n" in
  expect_err "version" (fun e ->
      e.Err.kind = Err.Parse && e.Err.token = Some "v9" && e.Err.line = Some 1)
    (S.instance_of_string_res v9);
  (* a non-numeric token is named with its line *)
  let mangled = String.concat "x" [ String.sub good 0 25; String.sub good 26 (String.length good - 26) ] in
  (match S.instance_of_string_res mangled with
  | Error e ->
      if e.Err.line = None then Alcotest.fail "no line context"
  | Ok _ -> () (* the mangled byte may still parse; accept *));
  (* file name is attached by load_instance *)
  let path = Filename.temp_file "dmnet" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.write_file path "dmnet-instance v1\n2 1 1\n0 1 oops\n1 1\n1 1\n0 0\n";
      expect_err "file context" (fun e ->
          e.Err.file = Some path && e.Err.token = Some "oops" && e.Err.line = Some 3)
        (S.load_instance path))

let rejects_invalid_values () =
  let parse = S.instance_of_string_res in
  let is_validation (e : Err.t) = e.Err.kind = Err.Validation in
  expect_err "infinite weight" is_validation
    (parse "dmnet-instance v1\n2 1 1\n0 1 inf\n1 1\n1 1\n0 0\n");
  expect_err "nan cs" is_validation
    (parse "dmnet-instance v1\n2 1 1\n0 1 1.0\nnan 1\n1 1\n0 0\n");
  expect_err "infinite cs" is_validation
    (parse "dmnet-instance v1\n2 1 1\n0 1 1.0\ninf 1\n1 1\n0 0\n");
  expect_err "negative count" is_validation
    (parse "dmnet-instance v1\n2 1 1\n0 1 1.0\n1 1\n-1 1\n0 0\n");
  expect_err "endpoint range" is_validation
    (parse "dmnet-instance v1\n2 1 1\n0 7 1.0\n1 1\n1 1\n0 0\n");
  expect_err "self loop" is_validation
    (parse "dmnet-instance v1\n2 1 1\n0 0 1.0\n1 1\n1 1\n0 0\n");
  expect_err "duplicate edge" is_validation
    (parse "dmnet-instance v1\n2 1 2\n0 1 1.0\n1 0 2.0\n1 1\n1 1\n0 0\n");
  expect_err "disconnected names a node" (fun e ->
      is_validation e
      && (let s = Err.to_string e in
          let has sub =
            let n = String.length sub in
            let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          has "unreachable"))
    (parse "dmnet-instance v1\n4 1 2\n0 1 1.0\n2 3 1.0\n1 1 1 1\n1 1 1 1\n0 0 0 0\n");
  (* a huge declared count errors out instead of allocating *)
  expect_err "huge n" is_validation (parse "dmnet-instance v1\n999999999 1 0\n1\n1\n0\n");
  expect_err "trailing" (fun e -> e.Err.kind = Err.Parse)
    (parse "dmnet-instance v1\n1 1 0\n1\n1\n0\n7\n")

let placement_count_checked () =
  expect_err "row count" (fun e -> e.Err.kind = Err.Validation)
    (S.placement_of_string_res "dmnet-placement v1\n3\n0 1\n2\n");
  expect_err "placement version" (fun e -> e.Err.kind = Err.Parse && e.Err.token = Some "v2")
    (S.placement_of_string_res "dmnet-placement v2\n1\n0\n");
  match S.placement_of_string_res "dmnet-placement v1\n2\n0 1\n2\n" with
  | Ok p -> Alcotest.(check int) "objects" 2 (Dmn_core.Placement.objects p)
  | Error e -> Alcotest.failf "valid placement rejected: %s" (Err.to_string e)

let comments_ignored () =
  let inst = Util.random_graph_instance (Rng.create 1) 4 in
  let s = "# a comment\n" ^ S.instance_to_string inst in
  let inst2 = S.instance_of_string s in
  Alcotest.(check int) "n" (I.n inst) (I.n inst2)

let file_io () =
  let path = Filename.temp_file "dmnet" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.write_file path "hello\nworld";
      Alcotest.(check string) "roundtrip" "hello\nworld" (S.read_file path);
      (* atomic replace overwrites in place *)
      S.write_file path "second";
      Alcotest.(check string) "replace" "second" (S.read_file path));
  (* structured I/O errors *)
  (match S.read_file_res "/nonexistent/dmnet/file" with
  | Error e -> Alcotest.(check string) "io kind" "i/o" (Err.kind_name e.Err.kind)
  | Ok _ -> Alcotest.fail "missing file read");
  match S.write_file_res "/nonexistent/dmnet/file" "x" with
  | Error e -> Alcotest.(check string) "io kind" "i/o" (Err.kind_name e.Err.kind)
  | Ok _ -> Alcotest.fail "impossible write succeeded"

(* ---------- truncated traces ---------- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let trace_truncated_final_line () =
  let path = Filename.temp_file "dmnet" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let header = { S.Trace.nodes = 4; objects = 2 } in
      let events =
        List.init 10 (fun i -> { S.Trace.node = i mod 4; x = i mod 2; write = i mod 3 = 0 })
      in
      let n = S.Trace.write path header (List.to_seq events) in
      Alcotest.(check int) "written" 10 n;
      (* cut the final line mid-event: a crash mid-append *)
      let whole = S.read_file path in
      let cut = String.length whole - 3 in
      let oc = open_out_bin path in
      output_string oc (String.sub whole 0 cut);
      close_out oc;
      (* default: a structured parse error naming line and byte offset *)
      (match S.Trace.with_reader_res path (fun _ evs -> List.of_seq evs) with
      | Error e ->
          Alcotest.(check bool) "parse kind" true (e.Err.kind = Err.Parse);
          Alcotest.(check (option string)) "file" (Some path) e.Err.file;
          Alcotest.(check (option int)) "line" (Some 12) e.Err.line;
          Alcotest.(check bool) "names the byte offset" true
            (contains "byte offset" e.Err.msg && contains "truncated final line" e.Err.msg)
      | Ok _ -> Alcotest.fail "truncated trace accepted by default");
      (* opted in: stop cleanly at the last complete event *)
      match
        S.Trace.with_reader_res ~tolerate_truncation:true path (fun _ evs -> List.of_seq evs)
      with
      | Ok got ->
          Alcotest.(check int) "complete prefix" 9 (List.length got);
          List.iteri
            (fun i (e : S.Trace.event) ->
              let w = List.nth events i in
              if e <> w then Alcotest.failf "event %d corrupted" i)
            got
      | Error e -> Alcotest.failf "tolerant reader failed: %s" (Err.to_string e))

let trace_header_truncation_never_tolerated () =
  let path = Filename.temp_file "dmnet" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "dmnet-trace v1\n4";
      close_out oc;
      match
        S.Trace.with_reader_res ~tolerate_truncation:true path (fun _ evs -> List.of_seq evs)
      with
      | Error e -> Alcotest.(check bool) "parse kind" true (e.Err.kind = Err.Parse)
      | Ok _ -> Alcotest.fail "truncated header accepted")

(* ---------- checkpoints ---------- *)

module Ck = S.Checkpoint

let gen_checkpoint : Ck.t QCheck.Gen.t =
  let open QCheck.Gen in
  (* floats restricted to exact dyadic values so structural equality is
     the right roundtrip check (%.17g roundtrips any float; the
     restriction just keeps counterexamples readable) *)
  let dyadic = map (fun k -> float_of_int k /. 8.0) (int_range 0 8000) in
  let* nodes = int_range 1 12 in
  let* objects = int_range 1 5 in
  let* placements =
    array_repeat objects (list_size (int_range 1 3) (int_range 0 (nodes - 1)))
  in
  let* next_epoch = int_range 0 6 in
  let* epochs =
    flatten_l
      (List.init next_epoch (fun index ->
           let* events = int_range 0 50 in
           let* reads = int_range 0 50 in
           let* resolves = int_range 0 5 in
           let* solve_retries = int_range 0 5 in
           let* solve_fallbacks = int_range 0 5 in
           let* copies = int_range 0 20 in
           let* serving = dyadic in
           let* storage = dyadic in
           let* migration = dyadic in
           let* p50 = dyadic in
           let* p95 = dyadic in
           let* p99 = dyadic in
           let* dropped = int_range 0 10 in
           let* emergency = int_range 0 3 in
           let* topo_events = int_range 0 4 in
           let* solve_skipped = int_range 0 5 in
           let* dirty = int_range 0 5 in
           let* cache_hits = int_range 0 5 in
           let* cache_misses = int_range 0 5 in
           let* cache_evictions = int_range 0 5 in
           return
             {
               Ck.index; events; reads; writes = events - reads; resolves; solve_retries;
               solve_fallbacks; copies; dropped; emergency; topo_events; serving; storage;
               migration; p50; p95; p99; solve_skipped; dirty; cache_hits; cache_misses;
               cache_evictions;
             }))
  in
  (* writes may come out negative above; clamp rows to stay valid *)
  let epochs =
    List.map (fun (r : Ck.epoch_row) -> { r with Ck.writes = max 0 r.Ck.writes }) epochs
  in
  let events_consumed = List.fold_left (fun a (r : Ck.epoch_row) -> a + r.Ck.events) 0 epochs in
  let topo_applied = List.fold_left (fun a (r : Ck.epoch_row) -> a + r.Ck.topo_events) 0 epochs in
  let* topo_pending = int_range 0 3 in
  let* metric_version = int_range 1 50 in
  let* metric_hash = map Int64.of_int int in
  let* down_flags = array_repeat nodes bool in
  let down =
    List.filter_map
      (fun (z, f) -> if f then Some z else None)
      (Array.to_list (Array.mapi (fun z f -> (z, f)) down_flags))
  in
  let* n_ov = int_range 0 4 in
  let* edge_overrides =
    flatten_l
      (List.init
         (if nodes < 2 then 0 else n_ov)
         (fun _ ->
           let* u = int_range 0 (nodes - 2) in
           let* v = int_range (u + 1) (nodes - 1) in
           let* removed = bool in
           let* w = dyadic in
           return ((u, v), if removed then None else Some w)))
  in
  let* h_buckets = int_range 2 10 in
  let* picks = array_repeat h_buckets (int_range 0 9) in
  let h_counts =
    List.filter_map
      (fun (i, c) -> if c > 0 then Some (i, c) else None)
      (Array.to_list (Array.mapi (fun i c -> (i, c)) picks))
  in
  let* h_sum = dyadic in
  let* fingerprint = map Int64.of_int int in
  let* policy = oneofl [ "static"; "resolve" ] in
  let* epoch_size = int_range 1 1000 in
  let* period = int_range 1 1000 in
  let* checkpoints_written = int_range 0 50 in
  let* serve_retries = int_range 0 50 in
  let* dirty_eps = oneofl [ 0.0; 0.25; 0.375; 0.5 ] in
  let sparse =
    let* picks = array_repeat nodes (int_range 0 3) in
    return
      (List.filter_map
         (fun (v, c) -> if c > 0 then Some (v, c) else None)
         (Array.to_list (Array.mapi (fun v c -> (v, c)) picks)))
  in
  let* resolve_state =
    flatten_a
      (Array.init objects (fun _ ->
           let* valid = bool in
           if not valid then return Ck.no_obj_state
           else
             let* o_mhash = map Int64.of_int int in
             let* o_fr = sparse in
             let* o_fw = sparse in
             return { Ck.o_valid = true; o_mhash; o_fr; o_fw }))
  in
  return
    {
      Ck.policy; epoch_size; period; next_epoch; events_consumed;
      topo_consumed = topo_applied + topo_pending; topo_applied; fingerprint; nodes; objects;
      placements; epochs; dirty_eps; resolve_state;
      hist = { Ck.h_lo = 1.0; h_base = 2.0; h_buckets; h_sum; h_counts };
      topo = { Ck.metric_version; metric_hash; down; edge_overrides };
      checkpoints_written; serve_retries;
    }

let qcheck_checkpoint_roundtrip =
  QCheck.Test.make ~name:"Checkpoint.of_string (to_string t) = t" ~count:200
    (QCheck.make ~print:(fun t -> Ck.to_string t) gen_checkpoint)
    (fun t ->
      match Ck.of_string_res (Ck.to_string t) with
      | Ok t' -> t' = t
      | Error e -> QCheck.Test.fail_reportf "rejected its own output: %s" (Err.to_string e))

let sample_checkpoint () =
  {
    Ck.policy = "resolve"; epoch_size = 100; period = 400; next_epoch = 2; events_consumed = 200;
    topo_consumed = 3; topo_applied = 2;
    fingerprint = 0x0123456789abcdefL; nodes = 5; objects = 2;
    placements = [| [ 0; 3 ]; [ 2 ] |];
    epochs =
      List.init 2 (fun index ->
          {
            Ck.index; events = 100; reads = 80; writes = 20; resolves = 2; solve_retries = 1;
            solve_fallbacks = 0; copies = 3; dropped = 4; emergency = 1; topo_events = 1;
            serving = 12.5; storage = 3.25; migration = 0.5;
            p50 = 1.0; p95 = 2.0; p99 = 4.0;
            solve_skipped = 1; dirty = 2; cache_hits = 1; cache_misses = 1; cache_evictions = 0;
          });
    dirty_eps = 0.25;
    resolve_state =
      [|
        { Ck.o_valid = true; o_mhash = 0x00000000cafef00dL; o_fr = [ (0, 3); (3, 1) ]; o_fw = [ (2, 5) ] };
        Ck.no_obj_state;
      |];
    hist = { Ck.h_lo = 1.0; h_base = 2.0; h_buckets = 8; h_sum = 150.0; h_counts = [ (0, 120); (3, 80) ] };
    topo =
      {
        Ck.metric_version = 4; metric_hash = 0x00000000deadbeefL; down = [ 1 ];
        edge_overrides = [ ((0, 3), Some 2.5); ((1, 2), None) ];
      };
    checkpoints_written = 2; serve_retries = 1;
  }

let checkpoint_corruption_detected () =
  let t = sample_checkpoint () in
  let s = Ck.to_string t in
  (* flip one digit inside a section body: the CRC must catch it *)
  let flip_at i =
    let b = Bytes.of_string s in
    let c = Bytes.get b i in
    Bytes.set b i (if c = '0' then '1' else '0');
    Bytes.to_string b
  in
  let body_pos =
    let p = ref (-1) in
    String.iteri (fun i c -> if !p < 0 && c = '.' then p := i + 1) s;
    (* a digit right after the first float's point sits inside the
       epochs section body *)
    !p
  in
  (match Ck.of_string_res (flip_at body_pos) with
  | Error e ->
      Alcotest.(check bool) "validation kind" true (e.Err.kind = Err.Validation);
      Alcotest.(check int) "CLI exit code" 65 (Err.exit_code e);
      Alcotest.(check bool) "names the section and CRC" true
        (contains "CRC mismatch" e.Err.msg && contains "section" e.Err.msg)
  | Ok _ -> Alcotest.fail "flipped byte accepted");
  (* damaging the stored CRC itself is equally fatal *)
  let hdr = "section meta " in
  let hdr_pos = ref 0 in
  String.iteri
    (fun i _ ->
      if i + String.length hdr <= String.length s && String.sub s i (String.length hdr) = hdr
      then hdr_pos := i)
    s;
  (match Ck.of_string_res (flip_at (!hdr_pos + String.length hdr + 2)) with
  | Error e -> Alcotest.(check bool) "header damage detected" true (e.Err.kind <> Err.Internal)
  | Ok _ -> Alcotest.fail "damaged section header accepted");
  (* truncation: dropping the final section is a parse error *)
  let cut =
    let p = ref 0 in
    String.iteri
      (fun i _ ->
        let k = "section ops" in
        if i + String.length k <= String.length s && String.sub s i (String.length k) = k then
          p := i)
      s;
    String.sub s 0 !p
  in
  match Ck.of_string_res cut with
  | Error e -> Alcotest.(check bool) "truncation is a parse error" true (e.Err.kind = Err.Parse)
  | Ok _ -> Alcotest.fail "truncated checkpoint accepted"

let checkpoint_save_load () =
  let path = Filename.temp_file "dmnet" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let t = sample_checkpoint () in
      Ck.save path t;
      let t' = Ck.load path in
      Alcotest.(check bool) "file roundtrip" true (t' = t);
      (* load errors carry the path *)
      match Ck.load_res "/nonexistent/dmnet/ckpt" with
      | Error e -> Alcotest.(check bool) "io kind" true (e.Err.kind = Err.Io)
      | Ok _ -> Alcotest.fail "missing checkpoint loaded")

let checkpoint_fingerprint_is_order_sensitive () =
  let e1 = { S.Trace.node = 1; x = 0; write = false }
  and e2 = { S.Trace.node = 2; x = 1; write = true } in
  let fold evs =
    List.fold_left Ck.fingerprint_event (Ck.fingerprint_init ~nodes:4 ~objects:2) evs
  in
  Alcotest.(check bool) "order matters" false (fold [ e1; e2 ] = fold [ e2; e1 ]);
  Alcotest.(check bool) "header matters" false
    (Ck.fingerprint_init ~nodes:4 ~objects:2 = Ck.fingerprint_init ~nodes:2 ~objects:4);
  Alcotest.(check bool) "write bit matters" false
    (fold [ e2 ] = fold [ { e2 with S.Trace.write = false } ])

let suite =
  [
    Alcotest.test_case "instance round trip" `Quick instance_roundtrip;
    Alcotest.test_case "placement round trip" `Quick placement_roundtrip;
    Alcotest.test_case "rejects garbage" `Quick rejects_garbage;
    Alcotest.test_case "errors carry context" `Quick structured_errors_carry_context;
    Alcotest.test_case "rejects invalid values" `Quick rejects_invalid_values;
    Alcotest.test_case "placement count checked" `Quick placement_count_checked;
    Alcotest.test_case "comments ignored" `Quick comments_ignored;
    Alcotest.test_case "file io" `Quick file_io;
    Alcotest.test_case "trace truncated final line" `Quick trace_truncated_final_line;
    Alcotest.test_case "trace header truncation fatal" `Quick
      trace_header_truncation_never_tolerated;
    Alcotest.test_case "checkpoint corruption detected" `Quick checkpoint_corruption_detected;
    Alcotest.test_case "checkpoint save/load" `Quick checkpoint_save_load;
    Alcotest.test_case "checkpoint fingerprint order-sensitive" `Quick
      checkpoint_fingerprint_is_order_sensitive;
    Util.qtest qcheck_checkpoint_roundtrip;
  ]
