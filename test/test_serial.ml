open Dmn_prelude
module I = Dmn_core.Instance
module S = Dmn_core.Serial

let instance_roundtrip () =
  let rng = Rng.create 91 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 15 in
    let inst = Util.random_graph_instance ~objects:(1 + Rng.int rng 3) rng n in
    let inst2 = S.instance_of_string (S.instance_to_string inst) in
    Alcotest.(check int) "n" (I.n inst) (I.n inst2);
    Alcotest.(check int) "objects" (I.objects inst) (I.objects inst2);
    for v = 0 to n - 1 do
      Util.check_float "cs" (I.cs inst v) (I.cs inst2 v);
      for x = 0 to I.objects inst - 1 do
        Alcotest.(check int) "fr" (I.reads inst ~x v) (I.reads inst2 ~x v);
        Alcotest.(check int) "fw" (I.writes inst ~x v) (I.writes inst2 ~x v)
      done
    done;
    (* metrics agree *)
    let m1 = I.metric inst and m2 = I.metric inst2 in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        Util.check_cost "metric preserved" (Dmn_paths.Metric.d m1 u v) (Dmn_paths.Metric.d m2 u v)
      done
    done
  done

let placement_roundtrip () =
  let p = Dmn_core.Placement.make [| [ 3; 1 ]; [ 0 ]; [ 2; 4; 5 ] |] in
  let p2 = S.placement_of_string (S.placement_to_string p) in
  Alcotest.(check int) "objects" 3 (Dmn_core.Placement.objects p2);
  for x = 0 to 2 do
    Alcotest.(check (list int)) "copies"
      (Dmn_core.Placement.copies p ~x)
      (Dmn_core.Placement.copies p2 ~x)
  done

let rejects_garbage () =
  (match S.instance_of_string "not an instance" with
  | exception Err.Error { Err.kind = Err.Parse; _ } -> ()
  | _ -> Alcotest.fail "garbage accepted");
  match S.placement_of_string "dmnet-instance v1" with
  | exception Err.Error { Err.kind = Err.Parse; _ } -> ()
  | _ -> Alcotest.fail "wrong header accepted"

let expect_err what pred = function
  | Error (e : Err.t) ->
      if not (pred e) then
        Alcotest.failf "%s: wrong error: %s (%s)" what (Err.to_string e) (Err.kind_name e.Err.kind)
  | Ok _ -> Alcotest.failf "%s: accepted" what

let structured_errors_carry_context () =
  let inst = Util.random_graph_instance (Rng.create 3) 5 in
  let good = S.instance_to_string inst in
  (* version mismatch names the version *)
  let v9 = "dmnet-instance v9\n1 1 0\n1\n1\n0\n" in
  expect_err "version" (fun e ->
      e.Err.kind = Err.Parse && e.Err.token = Some "v9" && e.Err.line = Some 1)
    (S.instance_of_string_res v9);
  (* a non-numeric token is named with its line *)
  let mangled = String.concat "x" [ String.sub good 0 25; String.sub good 26 (String.length good - 26) ] in
  (match S.instance_of_string_res mangled with
  | Error e ->
      if e.Err.line = None then Alcotest.fail "no line context"
  | Ok _ -> () (* the mangled byte may still parse; accept *));
  (* file name is attached by load_instance *)
  let path = Filename.temp_file "dmnet" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.write_file path "dmnet-instance v1\n2 1 1\n0 1 oops\n1 1\n1 1\n0 0\n";
      expect_err "file context" (fun e ->
          e.Err.file = Some path && e.Err.token = Some "oops" && e.Err.line = Some 3)
        (S.load_instance path))

let rejects_invalid_values () =
  let parse = S.instance_of_string_res in
  let is_validation (e : Err.t) = e.Err.kind = Err.Validation in
  expect_err "infinite weight" is_validation
    (parse "dmnet-instance v1\n2 1 1\n0 1 inf\n1 1\n1 1\n0 0\n");
  expect_err "nan cs" is_validation
    (parse "dmnet-instance v1\n2 1 1\n0 1 1.0\nnan 1\n1 1\n0 0\n");
  expect_err "infinite cs" is_validation
    (parse "dmnet-instance v1\n2 1 1\n0 1 1.0\ninf 1\n1 1\n0 0\n");
  expect_err "negative count" is_validation
    (parse "dmnet-instance v1\n2 1 1\n0 1 1.0\n1 1\n-1 1\n0 0\n");
  expect_err "endpoint range" is_validation
    (parse "dmnet-instance v1\n2 1 1\n0 7 1.0\n1 1\n1 1\n0 0\n");
  expect_err "self loop" is_validation
    (parse "dmnet-instance v1\n2 1 1\n0 0 1.0\n1 1\n1 1\n0 0\n");
  expect_err "duplicate edge" is_validation
    (parse "dmnet-instance v1\n2 1 2\n0 1 1.0\n1 0 2.0\n1 1\n1 1\n0 0\n");
  expect_err "disconnected names a node" (fun e ->
      is_validation e
      && (let s = Err.to_string e in
          let has sub =
            let n = String.length sub in
            let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
            go 0
          in
          has "unreachable"))
    (parse "dmnet-instance v1\n4 1 2\n0 1 1.0\n2 3 1.0\n1 1 1 1\n1 1 1 1\n0 0 0 0\n");
  (* a huge declared count errors out instead of allocating *)
  expect_err "huge n" is_validation (parse "dmnet-instance v1\n999999999 1 0\n1\n1\n0\n");
  expect_err "trailing" (fun e -> e.Err.kind = Err.Parse)
    (parse "dmnet-instance v1\n1 1 0\n1\n1\n0\n7\n")

let placement_count_checked () =
  expect_err "row count" (fun e -> e.Err.kind = Err.Validation)
    (S.placement_of_string_res "dmnet-placement v1\n3\n0 1\n2\n");
  expect_err "placement version" (fun e -> e.Err.kind = Err.Parse && e.Err.token = Some "v2")
    (S.placement_of_string_res "dmnet-placement v2\n1\n0\n");
  match S.placement_of_string_res "dmnet-placement v1\n2\n0 1\n2\n" with
  | Ok p -> Alcotest.(check int) "objects" 2 (Dmn_core.Placement.objects p)
  | Error e -> Alcotest.failf "valid placement rejected: %s" (Err.to_string e)

let comments_ignored () =
  let inst = Util.random_graph_instance (Rng.create 1) 4 in
  let s = "# a comment\n" ^ S.instance_to_string inst in
  let inst2 = S.instance_of_string s in
  Alcotest.(check int) "n" (I.n inst) (I.n inst2)

let file_io () =
  let path = Filename.temp_file "dmnet" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.write_file path "hello\nworld";
      Alcotest.(check string) "roundtrip" "hello\nworld" (S.read_file path);
      (* atomic replace overwrites in place *)
      S.write_file path "second";
      Alcotest.(check string) "replace" "second" (S.read_file path));
  (* structured I/O errors *)
  (match S.read_file_res "/nonexistent/dmnet/file" with
  | Error e -> Alcotest.(check string) "io kind" "i/o" (Err.kind_name e.Err.kind)
  | Ok _ -> Alcotest.fail "missing file read");
  match S.write_file_res "/nonexistent/dmnet/file" "x" with
  | Error e -> Alcotest.(check string) "io kind" "i/o" (Err.kind_name e.Err.kind)
  | Ok _ -> Alcotest.fail "impossible write succeeded"

let suite =
  [
    Alcotest.test_case "instance round trip" `Quick instance_roundtrip;
    Alcotest.test_case "placement round trip" `Quick placement_roundtrip;
    Alcotest.test_case "rejects garbage" `Quick rejects_garbage;
    Alcotest.test_case "errors carry context" `Quick structured_errors_carry_context;
    Alcotest.test_case "rejects invalid values" `Quick rejects_invalid_values;
    Alcotest.test_case "placement count checked" `Quick placement_count_checked;
    Alcotest.test_case "comments ignored" `Quick comments_ignored;
    Alcotest.test_case "file io" `Quick file_io;
  ]
