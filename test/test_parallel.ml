(* The performance layer: domain pool, shared distance-profile cache,
   and the determinism guarantee of the parallel per-object solve. *)

open Dmn_prelude
open Dmn_graph
module I = Dmn_core.Instance
module P = Dmn_core.Placement
module C = Dmn_core.Cost
module R = Dmn_core.Radii
module A = Dmn_core.Approx

(* ---------- pool ---------- *)

let pool_matches_array_init () =
  Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun n ->
          Alcotest.(check (array int))
            (Printf.sprintf "parallel_init n=%d" n)
            (Array.init n (fun i -> (i * i) + 1))
            (Pool.parallel_init pool n (fun i -> (i * i) + 1)))
        [ 0; 1; 2; 3; 7; 64; 257 ])

let pool_map_and_iter () =
  Pool.with_pool ~domains:3 (fun pool ->
      let a = Array.init 100 (fun i -> i) in
      Alcotest.(check (array int)) "map" (Array.map (fun x -> 2 * x) a)
        (Pool.parallel_map pool (fun x -> 2 * x) a);
      let slots = Array.make 100 (-1) in
      Pool.parallel_iter pool 100 (fun i -> slots.(i) <- 3 * i);
      Alcotest.(check (array int)) "iter" (Array.init 100 (fun i -> 3 * i)) slots)

let pool_propagates_exceptions () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.check_raises "task exception" (Invalid_argument "boom") (fun () ->
          ignore
            (Pool.parallel_init pool 50 (fun i ->
                 if i = 17 then invalid_arg "boom" else i)));
      (* the pool survives a failed job *)
      Alcotest.(check (array int)) "reusable" (Array.init 10 (fun i -> i))
        (Pool.parallel_init pool 10 (fun i -> i)))

let pool_nested_calls_run_sequentially () =
  Pool.with_pool ~domains:4 (fun pool ->
      let got =
        Pool.parallel_init pool 6 (fun i ->
            (* a task calling back into a pool must not deadlock *)
            Array.fold_left ( + ) 0 (Pool.parallel_init pool 5 (fun j -> (10 * i) + j)))
      in
      Alcotest.(check (array int)) "nested"
        (Array.init 6 (fun i -> (50 * i) + 10))
        got)

let pool_single_domain () =
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check (array int)) "sequential pool" (Array.init 20 (fun i -> i))
        (Pool.parallel_init pool 20 (fun i -> i)))

let pool_rejects_bad_sizes () =
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Pool.create: need at least one domain") (fun () ->
      ignore (Pool.create ~domains:0))

(* ---------- chunked execution ---------- *)

let chunks_cover_range_once () =
  Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun n ->
          List.iter
            (fun chunks ->
              let visits = Array.make (max 1 n) 0 in
              Pool.parallel_chunks pool ~chunks n (fun lo hi ->
                  if lo < 0 || hi > n || lo >= hi then
                    Alcotest.failf "bad chunk [%d, %d) for n=%d" lo hi n;
                  for i = lo to hi - 1 do
                    visits.(i) <- visits.(i) + 1
                  done);
              for i = 0 to n - 1 do
                if visits.(i) <> 1 then
                  Alcotest.failf "n=%d chunks=%d: index %d visited %d times" n chunks i
                    visits.(i)
              done)
            [ 1; 2; 3; 7; 16; 64 ])
        [ 0; 1; 2; 3; 7; 64; 257 ])

let chunks_reject_bad_args () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.check_raises "negative n"
        (Invalid_argument "Pool.parallel_chunks: negative length") (fun () ->
          Pool.parallel_chunks pool (-1) (fun _ _ -> ()));
      Alcotest.check_raises "zero chunks"
        (Invalid_argument "Pool.parallel_chunks: chunks must be >= 1") (fun () ->
          Pool.parallel_chunks pool ~chunks:0 10 (fun _ _ -> ())))

(* Empty and singleton inputs must not round-trip through the pool: the
   body runs on the submitting domain (or not at all). *)
let empty_and_singleton_short_circuit () =
  Pool.with_pool ~domains:4 (fun pool ->
      let calls = ref 0 in
      Pool.parallel_chunks pool 0 (fun _ _ -> incr calls);
      Alcotest.(check int) "empty range runs nothing" 0 !calls;
      let self = Domain.self () in
      let ran_on = ref None in
      Pool.parallel_chunks pool 1 (fun lo hi ->
          ran_on := Some (Domain.self ());
          Alcotest.(check (pair int int)) "whole range" (0, 1) (lo, hi));
      Alcotest.(check bool) "singleton chunk on submitter" true (!ran_on = Some self);
      Alcotest.(check (array int)) "map []" [||] (Pool.parallel_map pool (fun x -> x) [||]);
      let where = ref None in
      let got =
        Pool.parallel_map pool
          (fun x ->
            where := Some (Domain.self ());
            x * 7)
          [| 6 |]
      in
      Alcotest.(check (array int)) "map singleton" [| 42 |] got;
      Alcotest.(check bool) "singleton map on submitter" true (!where = Some self))

let chunk_plan_reports_split () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (pair int int)) "empty" (0, 0) (Pool.chunk_plan pool 0);
      Alcotest.(check (pair int int)) "singleton" (1, 1) (Pool.chunk_plan pool 1);
      let chunks, chunk_size = Pool.chunk_plan pool 1000 in
      Alcotest.(check int) "default 4x domains" 16 chunks;
      Alcotest.(check int) "ceil split" 63 chunk_size;
      Alcotest.(check (pair int int)) "explicit" (5, 20) (Pool.chunk_plan pool ~chunks:5 100);
      (* more chunks than elements clamp to one element per chunk *)
      Alcotest.(check (pair int int)) "clamped" (3, 1) (Pool.chunk_plan pool ~chunks:64 3));
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check (pair int int)) "1 domain is sequential" (1, 1000)
        (Pool.chunk_plan pool 1000))

let pool_stats_observe_batching () =
  Pool.with_pool ~domains:4 (fun pool ->
      Pool.reset_stats pool;
      Pool.parallel_chunks pool ~chunks:8 64 (fun _ _ -> ());
      let s = Pool.stats pool in
      Alcotest.(check int) "chunks claimed" 8 s.Pool.chunks_claimed;
      Alcotest.(check int) "tasks run" 64 s.Pool.tasks_run;
      ignore (Pool.parallel_init pool 10 Fun.id);
      let s = Pool.stats pool in
      Alcotest.(check int) "tasks accumulate" 74 s.Pool.tasks_run;
      Alcotest.(check bool) "chunks accumulate" true (s.Pool.chunks_claimed > 8);
      Pool.reset_stats pool;
      let s = Pool.stats pool in
      Alcotest.(check int) "reset chunks" 0 s.Pool.chunks_claimed;
      Alcotest.(check int) "reset tasks" 0 s.Pool.tasks_run)

let qcheck_parallel_chunks =
  QCheck.Test.make ~name:"Pool.parallel_chunks = sequential fold" ~count:80
    QCheck.(triple (int_range 0 300) (int_range 1 24) (int_range 1 4))
    (fun (n, chunks, domains) ->
      Pool.with_pool ~domains (fun pool ->
          (* disjoint per-index writes: any interleaving of correct
             chunks reproduces the sequential fold exactly *)
          let got = Array.make (max 1 n) 0 in
          Pool.parallel_chunks pool ~chunks n (fun lo hi ->
              for i = lo to hi - 1 do
                got.(i) <- (i * i) + 1
              done);
          let expect = Array.make (max 1 n) 0 in
          for i = 0 to n - 1 do
            expect.(i) <- (i * i) + 1
          done;
          got = expect))

(* ---------- profile cache vs seed radii ---------- *)

let topologies rng n =
  [
    ("tree", Gen.random_tree rng n);
    ("ring", Gen.ring n);
    ("grid", Gen.grid 4 (n / 4));
    ("er", Gen.erdos_renyi rng n 0.4);
    ("geometric", Gen.random_geometric rng n 0.5);
  ]

let instance_on rng g ~objects =
  let n = Wgraph.n g in
  let cs =
    Array.init n (fun _ ->
        match Rng.int rng 10 with
        | 0 -> 0.0
        | 1 -> infinity
        | _ -> Rng.float_in rng 0.5 25.0)
  in
  let counts () = Array.init n (fun _ -> Rng.int rng 5) in
  let fr = Array.init objects (fun _ -> counts ()) in
  let fw = Array.init objects (fun _ -> counts ()) in
  I.of_graph g ~cs ~fr ~fw

let radii_equal msg a b =
  Alcotest.(check int) (msg ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun v (ra : R.node_radii) ->
      let rb = b.(v) in
      if not (ra.R.rw = rb.R.rw && ra.R.rs = rb.R.rs && ra.R.zs = rb.R.zs) then
        Alcotest.failf "%s: node %d: cached (rw=%.17g rs=%.17g zs=%d) <> reference (rw=%.17g rs=%.17g zs=%d)"
          msg v ra.R.rw ra.R.rs ra.R.zs rb.R.rw rb.R.rs rb.R.zs)
    a

let cached_radii_equal_reference () =
  for seed = 1 to 12 do
    let rng = Rng.create (seed * 613) in
    List.iter
      (fun (name, g) ->
        let inst = instance_on rng g ~objects:3 in
        for x = 0 to I.objects inst - 1 do
          let msg = Printf.sprintf "%s seed=%d x=%d" name seed x in
          radii_equal msg (R.compute inst ~x) (R.compute_reference inst ~x)
        done)
      (topologies rng 16)
  done

let cached_radii_pass_check () =
  let rng = Rng.create 99 in
  List.iter
    (fun (name, g) ->
      let inst = instance_on rng g ~objects:2 in
      for x = 0 to 1 do
        match R.check inst ~x (R.compute inst ~x) with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s x=%d: %s" name x e
      done)
    (topologies rng 16)

let profile_order_is_sorted () =
  let rng = Rng.create 7 in
  let inst = instance_on rng (Gen.erdos_renyi rng 24 0.3) ~objects:1 in
  let m = I.metric inst in
  for v = 0 to I.n inst - 1 do
    let order = I.profile_order inst v in
    Alcotest.(check int) "length" (I.n inst) (Array.length order);
    let sorted = Array.copy order in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "permutation" (Array.init (I.n inst) (fun i -> i)) sorted;
    for i = 1 to Array.length order - 1 do
      let a = order.(i - 1) and b = order.(i) in
      if
        Dmn_paths.Metric.d m v a > Dmn_paths.Metric.d m v b
        || (Dmn_paths.Metric.d m v a = Dmn_paths.Metric.d m v b && a >= b)
      then Alcotest.failf "node %d: order not (distance, id) ascending at %d" v i
    done
  done

(* ---------- parallel solve determinism ---------- *)

let serial_solve ?(config = A.default_config) inst =
  P.make (Array.init (I.objects inst) (fun x -> A.place_object ~config inst ~x))

let placements_equal msg a b =
  Alcotest.(check int) (msg ^ " objects") (P.objects a) (P.objects b);
  for x = 0 to P.objects a - 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "%s copies x=%d" msg x)
      (P.copies a ~x) (P.copies b ~x)
  done

let parallel_solve_matches_serial () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          for seed = 1 to 4 do
            let rng = Rng.create (seed * 271) in
            List.iter
              (fun (name, g) ->
                let inst = instance_on rng g ~objects:5 in
                let msg = Printf.sprintf "%s seed=%d domains=%d" name seed domains in
                let serial = serial_solve inst in
                let par = A.solve ~pool inst in
                placements_equal msg serial par;
                (* costs of byte-identical placements are byte-identical *)
                let bs = C.placement_mst inst serial and bp = C.placement_mst inst par in
                if C.total bs <> C.total bp then
                  Alcotest.failf "%s: cost %.17g <> %.17g" msg (C.total bs) (C.total bp))
              (topologies rng 16)
          done))
    [ 1; 2; 4 ]

let chunked_solve_matches_serial () =
  let rng = Rng.create 3117 in
  List.iter
    (fun (name, g) ->
      let inst = instance_on rng g ~objects:7 in
      let serial = serial_solve inst in
      List.iter
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              List.iter
                (fun chunks ->
                  placements_equal
                    (Printf.sprintf "%s domains=%d chunks=%d" name domains chunks)
                    serial
                    (A.solve ~pool ~chunks inst))
                [ 1; 2; 3; 7; 16 ]))
        [ 1; 2; 4 ])
    (topologies rng 16)

(* One scratch reused across every object of several instances must
   leave no state behind: results stay equal to the fresh-scratch run. *)
let scratch_reuse_is_stateless () =
  let rng = Rng.create 5150 in
  List.iter
    (fun (name, g) ->
      let inst = instance_on rng g ~objects:4 in
      let ws = R.workspace inst in
      let scratch = A.scratch inst in
      for x = 0 to I.objects inst - 1 do
        let msg = Printf.sprintf "%s x=%d" name x in
        radii_equal msg (R.compute_ws ws inst ~x) (R.compute inst ~x);
        Alcotest.(check (list int))
          (msg ^ " placement")
          (A.place_object inst ~x)
          (A.place_object ~scratch inst ~x)
      done)
    (topologies rng 16)

let metric_nearest_dists_into_matches () =
  let rng = Rng.create 808 in
  let g = Gen.erdos_renyi rng 20 0.4 in
  let m = Dmn_paths.Metric.of_graph g in
  let copies = [ 2; 13 ] in
  let out = Array.make 20 nan in
  Dmn_paths.Metric.nearest_dists_into m copies out;
  Alcotest.(check (array (float 0.0))) "into = fresh" (Dmn_paths.Metric.nearest_dists m copies) out;
  Alcotest.check_raises "small buffer"
    (Invalid_argument "Metric.nearest_dists_into: buffer too small") (fun () ->
      Dmn_paths.Metric.nearest_dists_into m copies (Array.make 5 0.0))

let parallel_metric_matches_floyd () =
  (* the parallel Dijkstra closure agrees with Floyd-Warshall *)
  let rng = Rng.create 4242 in
  let g = Gen.random_geometric rng 30 0.5 in
  let a = Dmn_paths.Metric.to_matrix (Dmn_paths.Metric.of_graph g) in
  let b = Dmn_paths.Metric.to_matrix (Dmn_paths.Metric.of_graph_floyd g) in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j x ->
          if not (Floatx.approx ~tol:1e-9 x b.(i).(j)) then
            Alcotest.failf "closure mismatch at (%d,%d)" i j)
        row)
    a

(* ---------- satellite fixes ---------- *)

let trivial_solver_all_infinite_raises () =
  let g = Gen.path 3 in
  let inst =
    I.of_graph g ~cs:[| infinity; infinity; infinity |] ~fr:[| [| 1; 1; 1 |] |]
      ~fw:[| [| 0; 0; 0 |] |]
  in
  let config = { A.default_config with A.solver = A.Trivial } in
  Alcotest.check_raises "all cs infinite"
    (Invalid_argument "Approx.phase1: every node has infinite storage cost, no copy can be placed")
    (fun () -> ignore (A.phase1 ~config inst ~x:0))

let trivial_solver_picks_cheapest_finite () =
  let g = Gen.path 3 in
  let inst =
    I.of_graph g ~cs:[| infinity; 7.0; 3.0 |] ~fr:[| [| 1; 1; 1 |] |] ~fw:[| [| 0; 0; 0 |] |]
  in
  let config = { A.default_config with A.solver = A.Trivial } in
  Alcotest.(check (list int)) "cheapest finite node" [ 2 ] (A.phase1 ~config inst ~x:0)

let metric_nearest_dists_matches_fold () =
  let rng = Rng.create 55 in
  let g = Gen.erdos_renyi rng 20 0.4 in
  let m = Dmn_paths.Metric.of_graph g in
  let copies = [ 3; 11; 17 ] in
  let got = Dmn_paths.Metric.nearest_dists m copies in
  Array.iteri
    (fun v dv ->
      let expect =
        List.fold_left (fun acc c -> Float.min acc (Dmn_paths.Metric.d m v c)) infinity copies
      in
      if dv <> expect then Alcotest.failf "node %d: %.17g <> %.17g" v dv expect)
    got;
  Alcotest.check_raises "empty" (Invalid_argument "Metric.nearest_dists: empty node list")
    (fun () -> ignore (Dmn_paths.Metric.nearest_dists m []))

let cost_fallback_uses_metric_nearest () =
  let rng = Rng.create 56 in
  let g = Gen.erdos_renyi rng 15 0.4 in
  let m = Dmn_paths.Metric.of_graph g in
  let n = 15 in
  let inst =
    I.of_metric m ~cs:(Array.make n 2.0)
      ~fr:[| Array.make n 1 |]
      ~fw:[| Array.make n 0 |]
  in
  let copies = [ 2; 9 ] in
  Alcotest.(check (array (float 0.0)))
    "metric fallback"
    (Dmn_paths.Metric.nearest_dists m copies)
    (C.nearest_dists inst copies)

(* ---------- supervised execution ---------- *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let supervised_passthrough () =
  Pool.with_pool ~domains:4 (fun pool ->
      let results, retries = Pool.supervised_init pool 50 (fun i -> i * i) in
      Alcotest.(check int) "no retries without faults" 0 retries;
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) (Printf.sprintf "task %d" i) (i * i) v
          | Error _ -> Alcotest.failf "task %d failed without faults" i)
        results;
      Alcotest.(check int) "n=0 ok" 0
        (fst (Pool.supervised_init pool 0 (fun i -> i)) |> Array.length))

let supervised_crash_becomes_error () =
  Pool.with_pool ~domains:2 (fun pool ->
      let supervision = { Pool.default_supervision with Pool.attempts = 2 } in
      let results, retries =
        Pool.supervised_init pool ~supervision 20 (fun i ->
            if i = 7 then failwith "kaboom" else i)
      in
      Alcotest.(check int) "crash retried once" 1 retries;
      (match results.(7) with
      | Error { Pool.index; attempts; timed_out; error } ->
          Alcotest.(check int) "index" 7 index;
          Alcotest.(check int) "attempts" 2 attempts;
          Alcotest.(check bool) "not a timeout" false timed_out;
          Alcotest.(check bool) "internal kind" true (error.Err.kind = Err.Internal);
          Alcotest.(check bool) "names the crash" true (contains "kaboom" error.Err.msg)
      | _ -> Alcotest.fail "crashing task did not surface as Error");
      (* the other 19 tasks are unaffected *)
      Array.iteri
        (fun i r -> if i <> 7 && r <> Ok i then Alcotest.failf "task %d corrupted" i)
        results)

let supervised_deadline_times_out () =
  Pool.with_pool ~domains:2 (fun pool ->
      let supervision =
        { Pool.default_supervision with Pool.attempts = 2; deadline_s = Some 0.0 }
      in
      let results, _ =
        Pool.supervised_init pool ~supervision 3 (fun i ->
            Unix.sleepf 0.002;
            i)
      in
      match results.(1) with
      | Error { Pool.timed_out; attempts; error; _ } ->
          Alcotest.(check bool) "timed_out" true timed_out;
          Alcotest.(check int) "both attempts used" 2 attempts;
          Alcotest.(check bool) "internal kind" true (error.Err.kind = Err.Internal)
      | Ok _ -> Alcotest.fail "a 0-second deadline cannot be met")

let supervised_retry_recovers_from_faults () =
  (* find a seed where task 0's attempt-0 coin fires but attempt 1's
     does not: the supervisor must absorb the fault *)
  let fires cfg a = Fault.would_fail cfg "pool.task" (Pool.attempt_salt 0 a) in
  let seed =
    let rec search s =
      if s > 10_000 then Alcotest.fail "no suitable fault seed found"
      else
        let cfg = { Fault.seed = s; rate = 0.5; points = [ "pool.task" ] } in
        if fires cfg 0 && not (fires cfg 1) then s else search (s + 1)
    in
    search 0
  in
  Fault.configure ~seed ~rate:0.5 ~points:[ "pool.task" ] ();
  Fun.protect ~finally:Fault.disable @@ fun () ->
  Pool.with_pool ~domains:2 (fun pool ->
      (* attempts = 1 reproduces the unsupervised failure exactly *)
      let supervision = { Pool.default_supervision with Pool.attempts = 1 } in
      let results, retries = Pool.supervised_init pool ~supervision 1 (fun i -> i) in
      Alcotest.(check int) "no retries at attempts=1" 0 retries;
      (match results.(0) with
      | Error { Pool.attempts = 1; error; _ } ->
          Alcotest.(check bool) "fault kind" true (error.Err.kind = Err.Fault)
      | _ -> Alcotest.fail "attempt-0 coin must fail the task at attempts=1");
      (* attempts = 2 retries through the same coin and succeeds *)
      let results, retries = Pool.supervised_init pool 1 (fun i -> i * 11) in
      Alcotest.(check int) "one retry" 1 retries;
      match results.(0) with
      | Ok 0 -> ()
      | Ok v -> Alcotest.failf "wrong value %d" v
      | Error _ -> Alcotest.fail "retry did not recover")

let supervised_outcomes_domain_independent () =
  let run domains =
    Fault.configure ~seed:0xFEED ~rate:0.3 ~points:[ "pool.task" ] ();
    Fun.protect ~finally:Fault.disable @@ fun () ->
    Pool.with_pool ~domains (fun pool ->
        let results, retries = Pool.supervised_init pool 80 (fun i -> 3 * i) in
        ( Array.map
            (function
              | Ok v -> `Ok v
              | Error { Pool.index; attempts; error; _ } -> `Err (index, attempts, error.Err.kind))
            results,
          retries ))
  in
  let r1 = run 1 in
  List.iter
    (fun d ->
      if run d <> r1 then Alcotest.failf "supervised outcomes differ at %d domains" d)
    [ 2; 4 ]

let supervised_rejects_bad_supervision () =
  Pool.with_pool ~domains:1 (fun pool ->
      (match
         Pool.supervised_init pool
           ~supervision:{ Pool.default_supervision with Pool.attempts = 0 }
           1 Fun.id
       with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "attempts = 0 accepted");
      match
        Pool.supervised_init pool
          ~supervision:{ Pool.default_supervision with Pool.backoff_s = -1.0 }
          1 Fun.id
      with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "negative backoff accepted")

let qcheck_pool_init =
  QCheck.Test.make ~name:"Pool.parallel_init = Array.init" ~count:60
    QCheck.(pair (int_range 0 200) (int_range 1 4))
    (fun (n, domains) ->
      Pool.with_pool ~domains (fun pool ->
          Pool.parallel_init pool n (fun i -> i * 3) = Array.init n (fun i -> i * 3)))

let suite =
  [
    Alcotest.test_case "pool matches Array.init" `Quick pool_matches_array_init;
    Alcotest.test_case "pool map and iter" `Quick pool_map_and_iter;
    Alcotest.test_case "pool propagates exceptions" `Quick pool_propagates_exceptions;
    Alcotest.test_case "pool nested calls" `Quick pool_nested_calls_run_sequentially;
    Alcotest.test_case "pool single domain" `Quick pool_single_domain;
    Alcotest.test_case "pool rejects bad sizes" `Quick pool_rejects_bad_sizes;
    Alcotest.test_case "chunks cover range once" `Quick chunks_cover_range_once;
    Alcotest.test_case "chunks reject bad args" `Quick chunks_reject_bad_args;
    Alcotest.test_case "empty/singleton short-circuit" `Quick empty_and_singleton_short_circuit;
    Alcotest.test_case "chunk plan" `Quick chunk_plan_reports_split;
    Alcotest.test_case "pool stats observe batching" `Quick pool_stats_observe_batching;
    Alcotest.test_case "cached radii = reference radii" `Quick cached_radii_equal_reference;
    Alcotest.test_case "cached radii pass check" `Quick cached_radii_pass_check;
    Alcotest.test_case "profile order sorted" `Quick profile_order_is_sorted;
    Alcotest.test_case "parallel solve = serial solve (1/2/4 domains)" `Slow
      parallel_solve_matches_serial;
    Alcotest.test_case "parallel closure = floyd" `Quick parallel_metric_matches_floyd;
    Alcotest.test_case "chunked solve = serial solve" `Slow chunked_solve_matches_serial;
    Alcotest.test_case "scratch reuse stateless" `Quick scratch_reuse_is_stateless;
    Alcotest.test_case "metric nearest_dists_into" `Quick metric_nearest_dists_into_matches;
    Alcotest.test_case "trivial solver raises when unplaceable" `Quick
      trivial_solver_all_infinite_raises;
    Alcotest.test_case "trivial solver picks cheapest" `Quick trivial_solver_picks_cheapest_finite;
    Alcotest.test_case "metric nearest_dists" `Quick metric_nearest_dists_matches_fold;
    Alcotest.test_case "cost fallback shares metric nearest" `Quick cost_fallback_uses_metric_nearest;
    Alcotest.test_case "supervised passthrough" `Quick supervised_passthrough;
    Alcotest.test_case "supervised crash -> structured error" `Quick
      supervised_crash_becomes_error;
    Alcotest.test_case "supervised deadline" `Quick supervised_deadline_times_out;
    Alcotest.test_case "supervised retry recovers" `Quick supervised_retry_recovers_from_faults;
    Alcotest.test_case "supervised outcomes domain-independent" `Quick
      supervised_outcomes_domain_independent;
    Alcotest.test_case "supervised rejects bad supervision" `Quick
      supervised_rejects_bad_supervision;
    Util.qtest qcheck_pool_init;
    Util.qtest qcheck_parallel_chunks;
  ]
