(* Topology churn: incremental metric repair against from-scratch
   recomputation, the churn state machine's validation, serve caches
   tracking in-place metric repair, topology items in traces and
   fingerprints, and the engine's degraded serving — drops, emergency
   re-replication, cross-domain identity and kill-free resume under
   churn. *)

open Dmn_prelude
module I = Dmn_core.Instance
module P = Dmn_core.Placement
module A = Dmn_core.Approx
module Trace = Dmn_core.Serial.Trace
module Ck = Dmn_core.Serial.Checkpoint
module Wgraph = Dmn_graph.Wgraph
module Mt = Dmn_paths.Metric
module Ch = Dmn_paths.Churn
module St = Dmn_dynamic.Stream
module Sc = Dmn_dynamic.Serve_cache
module Ad = Dmn_workload.Adversary
module En = Dmn_engine.Engine

let tmp_file =
  let counter = ref 0 in
  fun suffix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dmnet-test-churn-%d-%d-%s" (Unix.getpid ()) !counter suffix)

let with_tmp suffix f =
  let path = tmp_file suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let with_tmp_dir suffix f =
  let path = tmp_file suffix in
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

(* reference closure that tolerates disconnection ([Metric.of_graph]
   rejects unreachable pairs by design — the repaired metric is the only
   construction allowed to hold infinity) *)
let floyd_closure g =
  let n = Wgraph.n g in
  let mat = Array.make_matrix n n infinity in
  for v = 0 to n - 1 do
    mat.(v).(v) <- 0.0
  done;
  List.iter
    (fun (u, v, w) ->
      if w < mat.(u).(v) then begin
        mat.(u).(v) <- w;
        mat.(v).(u) <- w
      end)
    (Wgraph.edges g);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = mat.(i).(k) +. mat.(k).(j) in
        if via < mat.(i).(j) then mat.(i).(j) <- via
      done
    done
  done;
  mat

(* entrywise metric equality: same infinity pattern, finite entries
   within relative tolerance (repair and recompute order float ops
   differently) *)
let check_metric_matches what repaired reference =
  let n = Array.length reference in
  Alcotest.(check int) (what ^ ": size") n (Mt.size repaired);
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let a = Mt.d repaired i j and b = reference.(i).(j) in
      if Float.is_finite b then begin
        if not (Float.is_finite a && Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs b)) then
          Alcotest.failf "%s: d(%d,%d) repaired %g but recomputed %g" what i j a b
      end
      else if Float.is_finite a then
        Alcotest.failf "%s: d(%d,%d) repaired %g but recomputed infinite" what i j a
    done
  done

(* two triangles joined by one bridge: removing (2,3) or killing an
   endpoint partitions the network along a line the test can predict *)
let bridge_graph () =
  Wgraph.create 6
    [ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 1.0); (2, 3, 1.0); (3, 4, 1.0); (4, 5, 1.0); (3, 5, 1.0) ]

(* ---------- incremental repair vs recompute ---------- *)

let repair_matches_recompute () =
  let rng = Rng.create 97 in
  let g = Dmn_graph.Gen.random_geometric rng 24 0.42 in
  let m = Mt.of_graph g in
  let ch = Ch.create g m in
  let u, v, w0 =
    match Wgraph.edges g with e :: _ -> e | [] -> Alcotest.fail "no edges"
  in
  let steps =
    [
      ("surge", Ch.Edge_weight { u; v; w = w0 *. 4.0 });
      ("relax", Ch.Edge_weight { u; v; w = w0 *. 0.25 });
      ("restore", Ch.Edge_weight { u; v; w = w0 });
      ("edge down", Ch.Edge_down { u; v });
      ("edge back", Ch.Edge_up { u; v; w = w0 });
      ("node down", Ch.Node_down 7);
      ("second node down", Ch.Node_down 11);
      ("node back", Ch.Node_up 7);
      ("last node back", Ch.Node_up 11);
    ]
  in
  let last_version = ref (Mt.version (Ch.metric ch)) in
  List.iter
    (fun (what, ev) ->
      Ch.apply ch ev;
      let got = Mt.version (Ch.metric ch) in
      if got <= !last_version then
        Alcotest.failf "%s: metric version did not advance (%d -> %d)" what !last_version got;
      last_version := got;
      check_metric_matches what (Ch.metric ch) (floyd_closure (Ch.graph ch)))
    steps;
  (* after the full up/down cycle the network is pristine again *)
  Alcotest.(check (list int)) "no down nodes" [] (Ch.down_nodes ch);
  check_metric_matches "round trip" (Ch.metric ch) (floyd_closure g);
  Alcotest.(check int) "events counted" (List.length steps) (Ch.events_applied ch)

let partition_yields_infinity () =
  let g = bridge_graph () in
  let m = Mt.of_graph g in
  let ch = Ch.create g m in
  Ch.apply ch (Ch.Edge_down { u = 2; v = 3 });
  let cm = Ch.metric ch in
  Alcotest.(check bool) "0-5 partitioned" false (Float.is_finite (Mt.d cm 0 5));
  Alcotest.(check bool) "0-2 still near" true (Mt.d cm 0 2 = 1.0);
  Alcotest.(check bool) "4-5 still near" true (Mt.d cm 4 5 = 1.0);
  check_metric_matches "bridge cut" cm (floyd_closure (Ch.graph ch));
  Ch.apply ch (Ch.Edge_up { u = 2; v = 3; w = 1.0 });
  check_metric_matches "bridge restored" (Ch.metric ch) (floyd_closure g);
  (* a dead node's rows are infinite except the diagonal *)
  Ch.apply ch (Ch.Node_down 3);
  let cm = Ch.metric ch in
  Alcotest.(check bool) "dead row infinite" false (Float.is_finite (Mt.d cm 3 0));
  Alcotest.(check (float 0.0)) "dead diagonal" 0.0 (Mt.d cm 3 3);
  Alcotest.(check bool) "far side cut off" false (Float.is_finite (Mt.d cm 0 4));
  Alcotest.(check bool) "4-5 intact" true (Mt.d cm 4 5 = 1.0);
  Alcotest.(check (list int)) "down list" [ 3 ] (Ch.down_nodes ch);
  Alcotest.(check bool) "liveness" false (Ch.alive ch 3);
  check_metric_matches "node down" cm (floyd_closure (Ch.graph ch))

let churn_rejects_invalid_events () =
  let g = bridge_graph () in
  let ch = Ch.create g (Mt.of_graph g) in
  let expect name ev =
    match Ch.apply ch ev with
    | () -> Alcotest.failf "%s: accepted" name
    | exception Err.Error e ->
        if e.Err.kind <> Err.Validation then
          Alcotest.failf "%s: wrong kind %s" name (Err.kind_name e.Err.kind)
  in
  expect "absent edge reweighted" (Ch.Edge_weight { u = 0; v = 5; w = 1.0 });
  expect "absent edge downed" (Ch.Edge_down { u = 0; v = 5 });
  expect "present edge added" (Ch.Edge_up { u = 0; v = 1; w = 1.0 });
  expect "self-loop" (Ch.Edge_weight { u = 2; v = 2; w = 1.0 });
  expect "negative weight" (Ch.Edge_weight { u = 0; v = 1; w = -1.0 });
  expect "infinite weight" (Ch.Edge_up { u = 0; v = 4; w = infinity });
  expect "node out of range" (Ch.Node_down 6);
  expect "node up while live" (Ch.Node_up 0);
  Ch.apply ch (Ch.Node_down 0);
  expect "node down twice" (Ch.Node_down 0);
  (* events rejected by validation must not count as applied *)
  Alcotest.(check int) "only the valid event applied" 1 (Ch.events_applied ch)

(* ---------- serve caches under in-place repair ---------- *)

let serve_cache_tracks_metric_repair () =
  let g = bridge_graph () in
  let m = Mt.of_graph g in
  let ch = Ch.create g m in
  let cache = Sc.create (Ch.metric ch) ~x:0 [ 0 ] in
  let _, d0 = Sc.nearest cache 5 in
  Alcotest.(check (float 1e-9)) "pristine distance" 3.0 d0;
  let v0 = Sc.version cache in
  (* shorten the bridge: the memoized nearest table must be dropped *)
  Ch.apply ch (Ch.Edge_weight { u = 2; v = 3; w = 0.25 });
  let _, d1 = Sc.nearest cache 5 in
  Alcotest.(check (float 1e-9)) "repaired distance" 2.25 d1;
  Alcotest.(check bool) "version bumped by repair" true (Sc.version cache > v0);
  (* a partition turns the serve cost infinite rather than stale *)
  Ch.apply ch (Ch.Edge_down { u = 2; v = 3 });
  let _, d2 = Sc.nearest cache 5 in
  Alcotest.(check bool) "partitioned serve is infinite" false (Float.is_finite d2)

(* ---------- one-shot guard ---------- *)

let one_shot_guard_raises () =
  let s = St.one_shot "test.guard" (List.to_seq [ 1; 2; 3 ]) in
  Alcotest.(check (list int)) "first traversal intact" [ 1; 2; 3 ] (List.of_seq s);
  match List.of_seq s with
  | _ -> Alcotest.fail "second traversal accepted"
  | exception Err.Error e ->
      Alcotest.(check bool) "validation kind" true (e.Err.kind = Err.Validation);
      Alcotest.(check bool) "names the generator" true
        (let msg = e.Err.msg in
         let has s =
           let ls = String.length s and lm = String.length msg in
           let rec go i = i + ls <= lm && (String.sub msg i ls = s || go (i + 1)) in
           go 0
         in
         has "test.guard")

(* ---------- topology items in traces and fingerprints ---------- *)

let trace_topo_roundtrip () =
  let header = { Trace.nodes = 6; objects = 2 } in
  let items =
    [
      Trace.Req { Trace.node = 0; x = 0; write = false };
      Trace.Topo (Ch.Edge_weight { u = 2; v = 3; w = 2.5 });
      Trace.Req { Trace.node = 4; x = 1; write = true };
      Trace.Topo (Ch.Edge_down { u = 0; v = 1 });
      Trace.Topo (Ch.Edge_up { u = 0; v = 1; w = 0.5 });
      Trace.Topo (Ch.Node_down 5);
      Trace.Topo (Ch.Node_up 5);
      Trace.Req { Trace.node = 5; x = 0; write = false };
    ]
  in
  with_tmp "topo.trace" @@ fun path ->
  let written = Trace.write_items path header (List.to_seq items) in
  Alcotest.(check int) "item count" (List.length items) written;
  Trace.with_items path (fun h got ->
      Alcotest.(check int) "nodes" 6 h.Trace.nodes;
      Alcotest.(check bool) "items round-trip" true (List.of_seq got = items));
  (* the request-only reader refuses topology lines instead of
     silently skipping network changes *)
  match Trace.with_reader path (fun _ evs -> List.of_seq evs) with
  | _ -> Alcotest.fail "request-only reader accepted a topology line"
  | exception Err.Error _ -> ()

let fingerprint_topo_is_sensitive () =
  let seed = Ck.fingerprint_init ~nodes:6 ~objects:2 in
  let fp it = Ck.fingerprint_item seed it in
  let distinct what a b =
    Alcotest.(check bool) what false (fp a = fp b)
  in
  let ew = Trace.Topo (Ch.Edge_weight { u = 1; v = 2; w = 1.0 }) in
  distinct "constructor matters" ew (Trace.Topo (Ch.Edge_up { u = 1; v = 2; w = 1.0 }));
  distinct "weight matters" ew (Trace.Topo (Ch.Edge_weight { u = 1; v = 2; w = 1.5 }));
  distinct "endpoints matter" ew (Trace.Topo (Ch.Edge_weight { u = 1; v = 3; w = 1.0 }));
  distinct "node matters" (Trace.Topo (Ch.Node_down 1)) (Trace.Topo (Ch.Node_up 1));
  (* a topology item can never collide with a request *)
  distinct "disjoint from requests"
    (Trace.Topo (Ch.Node_down 1))
    (Trace.Req { Trace.node = 1; x = 0; write = false });
  (* order sensitivity across the mixed grammar *)
  let fold its = List.fold_left Ck.fingerprint_item seed its in
  let r = Trace.Req { Trace.node = 0; x = 0; write = true } in
  Alcotest.(check bool) "order matters" false (fold [ r; ew ] = fold [ ew; r ])

(* ---------- engine: degraded serving ---------- *)

let bridge_instance () =
  let g = bridge_graph () in
  let cs = Array.make 6 2.0 in
  let fr = [| Array.make 6 1 |] and fw = [| Array.make 6 0 |] in
  I.of_graph g ~cs ~fr ~fw

let static_config epoch = { En.default_config with En.policy = En.Static; epoch }

let engine_counts_drops_and_emergency () =
  let inst = bridge_instance () in
  let placement = P.make [| [ 5 ] |] in
  let req node = St.Req { St.node; x = 0; kind = St.Read } in
  let items =
    [
      (* epoch 0: all served from node 5 *)
      req 0; req 1; req 2;
      (* epoch 1 opens by killing node 5: the only copy dies (emergency
         re-replication) and node 5's own request is dropped *)
      St.Topo (Ch.Node_down 5);
      req 5; req 0; req 1;
      (* epoch 2: node 5 recovers; everyone is served again *)
      St.Topo (Ch.Node_up 5);
      req 2; req 0; req 4;
    ]
  in
  let r = En.run_items ~config:(static_config 3) inst placement (List.to_seq items) in
  Alcotest.(check int) "events" 9 r.En.totals.En.events;
  Alcotest.(check int) "dropped" 1 r.En.totals.En.dropped;
  Alcotest.(check int) "emergency" 1 r.En.totals.En.emergency;
  Alcotest.(check int) "topo" 2 r.En.totals.En.topo;
  (match r.En.epochs with
  | [ e0; e1; e2 ] ->
      Alcotest.(check int) "epoch 0 clean" 0 (e0.En.dropped + e0.En.emergency + e0.En.topo);
      Alcotest.(check int) "epoch 1 drop" 1 e1.En.dropped;
      Alcotest.(check int) "epoch 1 emergency" 1 e1.En.emergency;
      Alcotest.(check int) "epoch 1 topo" 1 e1.En.topo;
      Alcotest.(check int) "epoch 2 topo" 1 e2.En.topo;
      Alcotest.(check int) "epoch 2 serves everyone" 0 e2.En.dropped;
      (* the emergency copy is charged as migration at the boundary *)
      Alcotest.(check bool) "emergency charged" true (e1.En.migration > 0.0)
  | es -> Alcotest.failf "expected 3 epochs, got %d" (List.length es));
  Alcotest.(check bool) "serving stays finite" true (Float.is_finite r.En.totals.En.serving)

let engine_drops_partitioned_requesters () =
  let inst = bridge_instance () in
  let placement = P.make [| [ 0 ] |] in
  let req node = St.Req { St.node; x = 0; kind = St.Read } in
  let items =
    [
      req 1; req 4;
      (* cutting the bridge strands nodes 3-5 away from the only copy *)
      St.Topo (Ch.Edge_down { u = 2; v = 3 });
      req 1; req 4;
    ]
  in
  let r = En.run_items ~config:(static_config 2) inst placement (List.to_seq items) in
  Alcotest.(check int) "dropped" 1 r.En.totals.En.dropped;
  Alcotest.(check int) "no emergency" 0 r.En.totals.En.emergency;
  Alcotest.(check int) "topo" 1 r.En.totals.En.topo;
  (* reads and writes still count the dropped request *)
  Alcotest.(check int) "reads include dropped" 4 r.En.totals.En.reads

let engine_rejects_churn_without_graph () =
  let inst = bridge_instance () in
  let m = I.metric inst in
  let metric_only =
    I.of_metric m
      ~cs:(Array.make 6 2.0)
      ~fr:[| Array.make 6 1 |]
      ~fw:[| Array.make 6 0 |]
  in
  let items = [ St.Topo (Ch.Node_down 5); St.Req { St.node = 0; x = 0; kind = St.Read } ] in
  (match
     En.run_items ~config:(static_config 2) metric_only (P.make [| [ 0 ] |])
       (List.to_seq items)
   with
  | _ -> Alcotest.fail "metric-only instance accepted a topology event"
  | exception Err.Error e ->
      Alcotest.(check bool) "validation kind" true (e.Err.kind = Err.Validation));
  (* the cache policy cannot track a changing metric either *)
  match
    En.run_items
      ~config:{ (static_config 2) with En.policy = En.Cache }
      inst (P.make [| [ 0 ] |]) (List.to_seq items)
  with
  | _ -> Alcotest.fail "cache policy accepted a topology event"
  | exception Err.Error e ->
      Alcotest.(check bool) "validation kind" true (e.Err.kind = Err.Validation)

(* ---------- adversarial generators ---------- *)

let small_instance seed =
  let rng = Rng.create seed in
  let g = Dmn_graph.Gen.random_geometric rng 14 0.45 in
  let n = Wgraph.n g in
  let cs = Array.init n (fun _ -> Rng.float_in rng 1.0 6.0) in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.mix rng ~objects:3 ~n ~total:(8 * n) ~write_fraction:0.25
  in
  I.of_graph g ~cs ~fr ~fw

let adversary_streams_replay_cleanly () =
  let inst = small_instance 23 in
  let placement = A.solve inst in
  let scenarios =
    [
      ("diurnal", fun rng -> Ad.diurnal rng inst ~days:3 ~day_length:40 ~write_fraction:0.2);
      ( "flash",
        fun rng ->
          Ad.flash_crowd rng inst ~length:120 ~spike_at:30 ~spike_length:60 ~multiplier:100
            ~write_fraction:0.2 );
      ("birthdeath", fun rng -> Ad.birth_death rng inst ~length:120 ~write_fraction:0.2);
      ( "failures",
        fun rng -> Ad.failure_repair rng inst ~phases:4 ~phase_length:30 ~write_fraction:0.2 );
    ]
  in
  List.iter
    (fun (name, make) ->
      (* deterministic: the same seed materializes the same items *)
      let a = List.of_seq (make (Rng.create 5)) in
      let b = List.of_seq (make (Rng.create 5)) in
      if a <> b then Alcotest.failf "%s: not deterministic per seed" name;
      let requests =
        List.length (List.filter (function St.Req _ -> true | St.Topo _ -> false) a)
      in
      if requests = 0 then Alcotest.failf "%s: no requests generated" name;
      (* and the whole stream replays through the engine *)
      let r =
        En.run_items
          ~config:{ En.default_config with En.epoch = 25 }
          inst placement (List.to_seq a)
      in
      if r.En.totals.En.events <> requests then
        Alcotest.failf "%s: %d requests generated but %d consumed" name requests
          r.En.totals.En.events)
    scenarios;
  (* the failures scenario actually exercises churn *)
  let items =
    List.of_seq (Ad.failure_repair (Rng.create 5) inst ~phases:4 ~phase_length:30 ~write_fraction:0.2)
  in
  let topo = List.length (List.filter (function St.Topo _ -> true | St.Req _ -> false) items) in
  Alcotest.(check bool) "failures emits topology events" true (topo > 0)

(* ---------- cross-domain identity and resume under churn ---------- *)

let write_items_trace inst path items =
  let header = { Trace.nodes = I.n inst; objects = I.objects inst } in
  ignore
    (Trace.write_items path header
       (Seq.map
          (function
            | St.Req { St.node; x; kind } -> Trace.Req { Trace.node; x; write = kind = St.Write }
            | St.Topo t -> Trace.Topo t)
          (List.to_seq items)))

let engine_churn_resume_is_byte_identical () =
  let inst = small_instance 29 in
  let placement = A.solve inst in
  let items =
    List.of_seq (Ad.failure_repair (Rng.create 41) inst ~phases:5 ~phase_length:60 ~write_fraction:0.2)
  in
  with_tmp "churn-resume.trace" @@ fun trace_path ->
  write_items_trace inst trace_path items;
  with_tmp_dir "churn-resume.ckptdir" @@ fun ckpt_path ->
  let config = { En.default_config with En.epoch = 50 } in
  let reference = ref None in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains @@ fun pool ->
      let uninterrupted =
        En.metrics_json inst (En.run_trace ~pool ~config inst placement trace_path)
      in
      (* one json across every domain count *)
      (match !reference with
      | None -> reference := Some uninterrupted
      | Some j ->
          Alcotest.(check string)
            (Printf.sprintf "identical at %d domains" domains)
            j uninterrupted);
      (* crash mid-churn: consume a prefix that ends exactly at an
         epoch boundary (3 epochs of 50 requests) and includes topology
         events, checkpoint, then resume against the full trace *)
      let prefix =
        let acc = ref [] and reqs = ref 0 in
        List.iter
          (fun it ->
            if !reqs < 150 then begin
              acc := it :: !acc;
              match it with St.Req _ -> incr reqs | St.Topo _ -> ()
            end)
          items;
        List.rev !acc
      in
      let topo_in_prefix =
        List.exists (function St.Topo _ -> true | St.Req _ -> false) prefix
      in
      Alcotest.(check bool) "prefix includes churn" true topo_in_prefix;
      let _ =
        En.run_items ~pool ~config
          ~ckpt:{ En.dir = ckpt_path; every = 1; keep = 3 }
          inst placement (List.to_seq prefix)
      in
      let c = (Dmn_core.Ckpt_store.load ckpt_path).Dmn_core.Ckpt_store.ckpt in
      Alcotest.(check bool) "checkpoint recorded churn" true (c.Ck.topo_applied > 0);
      Alcotest.(check bool) "checkpoint carries the metric hash" true
        (c.Ck.topo.Ck.metric_hash <> 0L);
      let resumed = En.run_trace ~pool ~config ~resume:c inst placement trace_path in
      Alcotest.(check string)
        (Printf.sprintf "resumed == uninterrupted at %d domains" domains)
        uninterrupted
        (En.metrics_json inst resumed))
    [ 1; 4 ]

let suite =
  [
    Alcotest.test_case "repair matches recompute" `Quick repair_matches_recompute;
    Alcotest.test_case "partition infinity" `Quick partition_yields_infinity;
    Alcotest.test_case "churn validation" `Quick churn_rejects_invalid_events;
    Alcotest.test_case "serve cache tracks repair" `Quick serve_cache_tracks_metric_repair;
    Alcotest.test_case "one-shot guard" `Quick one_shot_guard_raises;
    Alcotest.test_case "trace topo round trip" `Quick trace_topo_roundtrip;
    Alcotest.test_case "fingerprint sensitivity" `Quick fingerprint_topo_is_sensitive;
    Alcotest.test_case "drops and emergency" `Quick engine_counts_drops_and_emergency;
    Alcotest.test_case "partition drops" `Quick engine_drops_partitioned_requesters;
    Alcotest.test_case "churn needs a graph" `Quick engine_rejects_churn_without_graph;
    Alcotest.test_case "adversary streams" `Quick adversary_streams_replay_cleanly;
    Alcotest.test_case "resume under churn" `Quick engine_churn_resume_is_byte_identical;
  ]
