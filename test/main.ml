let () =
  Alcotest.run "dmnet"
    [
      ("prelude", Test_prelude.suite);
      ("parallel", Test_parallel.suite);
      ("graph", Test_graph.suite);
      ("paths", Test_paths.suite);
      ("spanning", Test_span.suite);
      ("facility", Test_facility.suite);
      ("lp", Test_lp.suite);
      ("core", Test_core.suite);
      ("serial", Test_serial.suite);
      ("fuzz", Test_fuzz.suite);
      ("chaos", Test_chaos.suite);
      ("envelope", Test_envelope.suite);
      ("rtree", Test_rtree.suite);
      ("tree", Test_tree.suite);
      ("baselines", Test_baselines.suite);
      ("loadmodel", Test_loadmodel.suite);
      ("bnb", Test_bnb.suite);
      ("dynamic", Test_dynamic.suite);
      ("churn", Test_churn.suite);
      ("engine", Test_engine.suite);
      ("metrics", Test_metrics.suite);
      ("server", Test_server.suite);
      ("durability", Test_durability.suite);
      ("capacitated", Test_capacitated.suite);
      ("report", Test_report.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("workload", Test_workload.suite);
    ]
