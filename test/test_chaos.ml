(* Deterministic fault-injection (chaos) tests.

   The base seed defaults to a fixed value and can be randomized from
   the environment (CI's scheduled job exports DMNET_FAULT_SEED); it is
   printed so any failure is reproducible. Every test restores the
   disabled state on exit so the rest of the suite runs fault-free. *)

open Dmn_prelude
module I = Dmn_core.Instance
module P = Dmn_core.Placement
module A = Dmn_core.Approx
module S = Dmn_core.Serial

let base_seed =
  match Option.bind (Sys.getenv_opt "DMNET_FAULT_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 0xC0FFEE

let () = Printf.printf "chaos: DMNET_FAULT_SEED base %d\n%!" base_seed

let with_faults ?seed ?rate ?points f =
  Fault.configure ?seed ?rate ?points ();
  Fun.protect ~finally:Fault.disable f

let is_fault (e : Err.t) = e.Err.kind = Err.Fault

(* ---------- the coin itself ---------- *)

let coin_is_deterministic () =
  let cfg = { Fault.seed = base_seed; rate = 0.3; points = [] } in
  for salt = 0 to 200 do
    Alcotest.(check bool) "stable"
      (Fault.would_fail cfg "pool.task" salt)
      (Fault.would_fail cfg "pool.task" salt)
  done;
  (* roughly [rate] of the coins fire *)
  let fired = ref 0 in
  for salt = 0 to 9999 do
    if Fault.would_fail cfg "pool.task" salt then incr fired
  done;
  if !fired < 2000 || !fired > 4000 then
    Alcotest.failf "rate 0.3 fired %d / 10000 times" !fired;
  (* point filtering *)
  let only = { cfg with Fault.points = [ "serial.read" ] } in
  Alcotest.(check bool) "filtered out" false (Fault.would_fail only "pool.task" 0)

(* ---------- pool chaos at 1 / 2 / 4 domains ---------- *)

(* A job fails iff some task index rolls the injection coin; the
   failure surfaces exactly once in the submitter (as the job's result)
   and the pool stays usable. The outcome class must be identical at
   every domain count. *)
let pool_chaos () =
  let n = 60 in
  List.iter
    (fun trial ->
      let seed = base_seed + trial in
      let cfg = { Fault.seed; rate = 0.05; points = [ "pool.task" ] } in
      let expect_fail =
        List.exists (fun i -> Fault.would_fail cfg "pool.task" i) (List.init n Fun.id)
      in
      List.iter
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              let outcome =
                with_faults ~seed ~rate:0.05 ~points:[ "pool.task" ] (fun () ->
                    match Pool.parallel_init pool n (fun i -> 2 * i) with
                    | a -> Ok a
                    | exception Err.Error e when is_fault e -> Error e)
              in
              (match outcome with
              | Ok a ->
                  if expect_fail then
                    Alcotest.failf "trial %d domains %d: expected injected failure" trial domains;
                  Alcotest.(check (array int)) "payload" (Array.init n (fun i -> 2 * i)) a
              | Error _ ->
                  if not expect_fail then
                    Alcotest.failf "trial %d domains %d: unexpected injected failure" trial
                      domains);
              (* faults are now disabled: the pool must be fully usable *)
              Alcotest.(check (array int))
                (Printf.sprintf "pool reusable (trial %d, domains %d)" trial domains)
                (Array.init 10 Fun.id)
                (Pool.parallel_init pool 10 Fun.id)))
        [ 1; 2; 4 ])
    (List.init 8 Fun.id)

(* ---------- Approx.solve under injection ---------- *)

(* With faults at 10%, a solve either completes bit-identical to the
   fault-free serial result or fails cleanly with the injected error —
   and repeated runs with one seed give the same outcome class at every
   domain count. *)
let solve_under_injection () =
  let rng = Rng.create 424242 in
  let inst = Util.random_graph_instance ~objects:4 rng 14 in
  let baseline =
    P.make (Array.init (I.objects inst) (fun x -> A.place_object inst ~x))
  in
  let placements_equal a b =
    P.objects a = P.objects b
    && List.for_all (fun x -> P.copies a ~x = P.copies b ~x) (List.init (P.objects a) Fun.id)
  in
  List.iter
    (fun trial ->
      let seed = base_seed + (31 * trial) in
      let classes =
        List.map
          (fun domains ->
            Pool.with_pool ~domains (fun pool ->
                let run () =
                  with_faults ~seed ~rate:0.1 ~points:[ "pool.task" ] (fun () ->
                      match A.solve ~pool inst with
                      | p -> Ok p
                      | exception Err.Error e when is_fault e -> Error e)
                in
                let first = run () and second = run () in
                (match (first, second) with
                | Ok a, Ok b ->
                    if not (placements_equal a b) then
                      Alcotest.failf "trial %d domains %d: non-deterministic success" trial domains
                | Error _, Error _ -> ()
                | _ ->
                    Alcotest.failf "trial %d domains %d: outcome class changed between runs" trial
                      domains);
                match first with
                | Ok p ->
                    if not (placements_equal p baseline) then
                      Alcotest.failf
                        "trial %d domains %d: survived faults but differs from fault-free serial"
                        trial domains;
                    `Complete
                | Error _ -> `Fail))
          [ 1; 2; 4 ]
      in
      match classes with
      | [ a; b; c ] when a = b && b = c -> ()
      | _ -> Alcotest.failf "trial %d: outcome class depends on the domain count" trial)
    (List.init 6 Fun.id);
  (* boundary rates pin both outcome classes regardless of seed *)
  Pool.with_pool ~domains:4 (fun pool ->
      (match
         with_faults ~seed:base_seed ~rate:1.0 ~points:[ "pool.task" ] (fun () ->
             match A.solve ~pool inst with
             | p -> Ok p
             | exception Err.Error e when is_fault e -> Error e)
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "rate 1.0: solve survived total injection");
      match
        with_faults ~seed:base_seed ~rate:0.0 ~points:[ "pool.task" ] (fun () -> A.solve ~pool inst)
      with
      | p ->
          if not (placements_equal p baseline) then
            Alcotest.fail "rate 0.0: differs from fault-free serial baseline"
      | exception Err.Error e -> Alcotest.failf "rate 0.0 injected: %s" (Err.to_string e))

(* ---------- chunking independence ---------- *)

(* Fault coins are salted per element, not per chunk: at 10% injection
   the outcome class of a chunked solve must not depend on the chunk
   count or the domain count, and successes stay bit-identical to the
   fault-free serial baseline. *)
let chunking_preserves_fault_outcomes () =
  let rng = Rng.create 535353 in
  let inst = Util.random_graph_instance ~objects:12 rng 12 in
  let baseline =
    P.make (Array.init (I.objects inst) (fun x -> A.place_object inst ~x))
  in
  let placements_equal a b =
    P.objects a = P.objects b
    && List.for_all (fun x -> P.copies a ~x = P.copies b ~x) (List.init (P.objects a) Fun.id)
  in
  List.iter
    (fun trial ->
      let seed = base_seed + (97 * trial) in
      let classes =
        List.concat_map
          (fun domains ->
            Pool.with_pool ~domains (fun pool ->
                List.map
                  (fun chunks ->
                    match
                      with_faults ~seed ~rate:0.1 ~points:[ "pool.task" ] (fun () ->
                          A.solve ~pool ~chunks inst)
                    with
                    | p ->
                        if not (placements_equal p baseline) then
                          Alcotest.failf
                            "trial %d domains %d chunks %d: differs from fault-free serial"
                            trial domains chunks;
                        `Complete
                    | exception Err.Error e when is_fault e -> `Fail)
                  [ 1; 2; 5; 12 ]))
          [ 1; 2; 4 ]
      in
      match classes with
      | first :: rest ->
          if not (List.for_all (fun c -> c = first) rest) then
            Alcotest.failf "trial %d: outcome class depends on chunking or domain count" trial
      | [] -> assert false)
    (List.init 6 Fun.id)

(* ---------- crash-safe writes under injection ---------- *)

let in_dir f =
  let dir = Filename.temp_file "dmnet-chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let no_temp_leftovers dir =
  Array.iter
    (fun f ->
      let has sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length f && (String.sub f i n = sub || go (i + 1)) in
        go 0
      in
      if has ".tmp." then Alcotest.failf "temp file left behind: %s" f)
    (Sys.readdir dir)

(* Injecting a failure at each individual write stage must leave the
   previous contents intact and clean up the temp file. *)
let write_atomic_per_point () =
  in_dir (fun dir ->
      let path = Filename.concat dir "data.txt" in
      S.write_file path "generation-one";
      List.iter
        (fun point ->
          (match
             with_faults ~seed:base_seed ~rate:1.0 ~points:[ point ] (fun () ->
                 S.write_file_res path "generation-two")
           with
          | Error e when is_fault e -> ()
          | Error e -> Alcotest.failf "%s: wrong error kind: %s" point (Err.kind_name e.Err.kind)
          | Ok () -> Alcotest.failf "%s: write succeeded under rate-1.0 injection" point);
          Alcotest.(check string)
            (Printf.sprintf "contents intact after %s" point)
            "generation-one" (S.read_file path);
          no_temp_leftovers dir)
        [ "serial.write.open"; "serial.write.write"; "serial.write.fsync"; "serial.write.rename" ];
      (* and with faults off the replacement goes through *)
      S.write_file path "generation-two";
      Alcotest.(check string) "replacement lands" "generation-two" (S.read_file path))

(* Randomized write/read chaos: whatever is injected, a reader always
   sees a complete previous or complete next generation. *)
let write_chaos_randomized () =
  in_dir (fun dir ->
      let path = Filename.concat dir "gen.txt" in
      let contents g = Printf.sprintf "generation %d\n%s\n" g (String.make 256 'x') in
      S.write_file path (contents 0);
      let current = ref 0 in
      for step = 1 to 40 do
        let seed = base_seed + (977 * step) in
        (match
           with_faults ~seed ~rate:0.5
             ~points:[ "serial.write.open"; "serial.write.write"; "serial.write.fsync";
                       "serial.write.rename" ]
             (fun () -> S.write_file_res path (contents step))
         with
        | Ok () -> current := step
        | Error e when is_fault e -> ()
        | Error e -> Alcotest.failf "step %d: unexpected error %s" step (Err.to_string e));
        Alcotest.(check string)
          (Printf.sprintf "step %d reads a complete generation" step)
          (contents !current) (S.read_file path);
        no_temp_leftovers dir
      done)

let read_injection () =
  in_dir (fun dir ->
      let path = Filename.concat dir "r.txt" in
      S.write_file path "payload";
      match
        with_faults ~seed:base_seed ~rate:1.0 ~points:[ "serial.read" ] (fun () ->
            S.read_file_res path)
      with
      | Error e when is_fault e ->
          Alcotest.(check string) "readable after disable" "payload" (S.read_file path)
      | Error e -> Alcotest.failf "wrong error kind: %s" (Err.kind_name e.Err.kind)
      | Ok _ -> Alcotest.fail "read succeeded under rate-1.0 injection")

let suite =
  [
    Alcotest.test_case "fault coin deterministic" `Quick coin_is_deterministic;
    Alcotest.test_case "pool chaos (1/2/4 domains)" `Quick pool_chaos;
    Alcotest.test_case "solve under 10% injection" `Slow solve_under_injection;
    Alcotest.test_case "chunking preserves fault outcomes" `Slow chunking_preserves_fault_outcomes;
    Alcotest.test_case "atomic write per injection point" `Quick write_atomic_per_point;
    Alcotest.test_case "randomized write chaos" `Quick write_chaos_randomized;
    Alcotest.test_case "read injection" `Quick read_injection;
  ]
