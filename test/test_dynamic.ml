open Dmn_prelude
module I = Dmn_core.Instance
module St = Dmn_dynamic.Stream
module Sg = Dmn_dynamic.Strategy
module Sim = Dmn_dynamic.Sim
module Sc = Dmn_dynamic.Serve_cache

let stationary_respects_frequencies () =
  let rng = Rng.create 131 in
  let inst = Util.random_graph_instance ~objects:2 rng 8 in
  if I.total_requests inst ~x:0 + I.total_requests inst ~x:1 > 0 then begin
    let events = St.stationary rng inst ~length:20_000 in
    Alcotest.(check int) "length" 20_000 (List.length events);
    let fr, fw = St.frequencies inst events in
    (* empirical proportions track the table: nodes with zero frequency
       get zero events *)
    for x = 0 to 1 do
      for v = 0 to I.n inst - 1 do
        if I.reads inst ~x v = 0 then Alcotest.(check int) "no phantom reads" 0 fr.(x).(v);
        if I.writes inst ~x v = 0 then Alcotest.(check int) "no phantom writes" 0 fw.(x).(v)
      done
    done
  end

let static_strategy_replays_static_cost () =
  (* over one full period of the exact table, the static strategy's
     expected cost equals the static objective; with a deterministic
     enumeration of the table it matches exactly *)
  let rng = Rng.create 132 in
  for _ = 1 to 10 do
    let n = 3 + Rng.int rng 8 in
    let inst = Util.random_graph_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      (* enumerate the table exactly as a stream *)
      let events = ref [] in
      for v = 0 to n - 1 do
        for _ = 1 to I.reads inst ~x:0 v do
          events := { St.node = v; x = 0; kind = St.Read } :: !events
        done;
        for _ = 1 to I.writes inst ~x:0 v do
          events := { St.node = v; x = 0; kind = St.Write } :: !events
        done
      done;
      let copies = Dmn_core.Approx.place_object inst ~x:0 in
      let p = Dmn_core.Placement.make [| copies |] in
      let r = Sim.run inst (Sg.static inst p) !events in
      let b = Dmn_core.Cost.eval_mst inst ~x:0 copies in
      Util.check_cost "serving == read + update"
        (b.Dmn_core.Cost.read +. b.Dmn_core.Cost.update)
        r.Sim.serving;
      Util.check_cost "storage == rent over one period" b.Dmn_core.Cost.storage r.Sim.storage;
      Util.check_cost "totals" (Dmn_core.Cost.total b) r.Sim.total
    end
  done

let migrating_owner_follows_hotspot () =
  (* all requests from one node: the owner must migrate there *)
  let g = Dmn_graph.Gen.path 6 in
  let cs = [| 0.5; 1.0; 1.0; 1.0; 1.0; 1.0 |] in
  let inst = I.of_graph g ~cs ~fr:[| [| 0; 0; 0; 0; 0; 10 |] |] ~fw:[| Array.make 6 0 |] in
  let strat = Sg.migrating_owner ~threshold:3 inst in
  let events = List.init 20 (fun _ -> { St.node = 5; x = 0; kind = St.Read }) in
  let _ = Sim.run inst strat events in
  Alcotest.(check (list int)) "owner moved to the hotspot" [ 5 ] (strat.Sg.copies ~x:0)

let threshold_caching_replicates_and_drops () =
  let g = Dmn_graph.Gen.path 8 in
  let cs = Array.make 8 1.0 in
  cs.(0) <- 0.5;
  let inst = I.of_graph g ~cs ~fr:[| Array.make 8 1 |] ~fw:[| Array.make 8 1 |] in
  let strat = Sg.threshold_caching ~replicate_after:2 ~drop_after:3 inst in
  (* reads from node 7 force a replica there *)
  let reads = List.init 4 (fun _ -> { St.node = 7; x = 0; kind = St.Read }) in
  let _ = Sim.run inst strat reads in
  Alcotest.(check bool) "replicated at reader" true (List.mem 7 (strat.Sg.copies ~x:0));
  (* a write burst from node 0 evicts the idle replica *)
  let writes = List.init 6 (fun _ -> { St.node = 0; x = 0; kind = St.Write }) in
  let _ = Sim.run inst strat writes in
  Alcotest.(check bool) "idle replica dropped" true (not (List.mem 7 (strat.Sg.copies ~x:0)))

let static_wins_stationary_dynamic_wins_drifting () =
  let rng = Rng.create 134 in
  let n = 16 in
  let g = Dmn_graph.Gen.random_geometric rng n 0.4 in
  let cs = Array.make n 2.0 in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(8 * n) ~write_fraction:0.2
  in
  let inst = I.of_graph g ~cs ~fr ~fw in
  let static_placement = Dmn_core.Placement.make [| Dmn_baselines.Greedy_place.add inst ~x:0 |] in
  (* stationary: the tuned static placement should beat the adaptive
     caching strategy *)
  let stationary = St.stationary (Rng.create 7) inst ~length:(16 * n) in
  let s_static = Sim.run inst (Sg.static inst static_placement) stationary in
  let s_cache = Sim.run inst (Sg.threshold_caching inst) stationary in
  Util.check_leq "static wins on its own distribution" s_static.Sim.total
    (s_cache.Sim.total *. 1.05);
  (* drifting: the adaptive strategy must beat the stale static one *)
  let drift =
    St.drifting (Rng.create 8) inst ~phases:6 ~phase_length:(8 * n) ~write_fraction:0.1
  in
  let d_static = Sim.run inst (Sg.static inst static_placement) drift in
  let d_cache = Sim.run inst (Sg.threshold_caching inst) drift in
  Util.check_leq "adaptive wins under drift" d_cache.Sim.total (d_static.Sim.total *. 1.05)

let zero_volume_default_period_rejected () =
  (* an instance with no requests has no meaningful default storage
     period; the simulator must refuse instead of charging rent on
     every event (the seed's silent [max 1] fallback) *)
  let g = Dmn_graph.Gen.path 4 in
  let zero = [| Array.make 4 0 |] in
  let inst = I.of_graph g ~cs:(Array.make 4 1.0) ~fr:zero ~fw:zero in
  let p = Dmn_core.Placement.uniform ~objects:1 [ 0 ] in
  let strat = Sg.static inst p in
  (match Sim.run inst strat [] with
  | exception Invalid_argument msg ->
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message names the knob" true (contains "storage_period" msg)
  | _ -> Alcotest.fail "Sim.run accepted a zero-volume default period");
  (* an explicit period is still fine *)
  let r = Sim.run ~storage_period:5 inst strat [] in
  Util.check_cost "no events, no cost" 0.0 r.Sim.total;
  (* competitive_ratio shares the precondition *)
  match Sim.competitive_ratio inst strat [] ~phase_length:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "competitive_ratio accepted a zero-volume default period"

let partial_phase_charged_proportionally () =
  (* one full period of the exact table, phase_length longer than the
     stream: the whole stream is a single *partial* phase. With the
     offline planner's own placement driven by the same greedy-add
     baseline, online == offline, so the ratio must be exactly 1 -- it
     would be < 1 if the partial phase were charged a full period's
     rent, and degenerate if the phase were dropped. *)
  let rng = Rng.create 555 in
  for _ = 1 to 5 do
    let n = 4 + Rng.int rng 6 in
    let inst = Util.random_graph_instance rng n in
    if I.total_requests inst ~x:0 > 0 then begin
      let events = ref [] in
      for v = 0 to n - 1 do
        for _ = 1 to I.reads inst ~x:0 v do
          events := { St.node = v; x = 0; kind = St.Read } :: !events
        done;
        for _ = 1 to I.writes inst ~x:0 v do
          events := { St.node = v; x = 0; kind = St.Write } :: !events
        done
      done;
      let events = !events in
      let len = List.length events in
      let p = Dmn_core.Placement.make [| Dmn_baselines.Greedy_place.add inst ~x:0 |] in
      let strat = Sg.static inst p in
      (* storage_period = 2 * len: the stream is half a period, so both
         sides pay exactly half the rent; phase_length > len makes the
         offline side a single trailing partial phase *)
      let ratio =
        Sim.competitive_ratio ~storage_period:(2 * len) inst strat events
          ~phase_length:(len + 1)
      in
      Util.check_cost "partial phase scaled by actual length" 1.0 ratio
    end
  done

let threshold_caching_invariants () =
  (* copy set never empties, the write-serving copy survives the drop
     scan, and replication is charged exactly once at the promotion *)
  let g = Dmn_graph.Gen.path 6 in
  let cs = Array.make 6 1.0 in
  cs.(0) <- 0.5;
  let inst = I.of_graph g ~cs ~fr:[| Array.make 6 1 |] ~fw:[| Array.make 6 1 |] in
  (* (a) promotion accounting on a path with unit edges: copy at 0,
     reads from node 3 at distance 3 *)
  let strat = Sg.threshold_caching ~replicate_after:2 ~drop_after:100 inst in
  let d = 3.0 in
  Util.check_cost "read before promotion pays the distance" d
    (strat.Sg.serve ~x:0 ~node:3 St.Read);
  Util.check_cost "promoting read pays distance + transfer, once" (d +. d)
    (strat.Sg.serve ~x:0 ~node:3 St.Read);
  Alcotest.(check (list int)) "replica installed" [ 0; 3 ] (strat.Sg.copies ~x:0);
  Util.check_cost "later reads are local and free" 0.0 (strat.Sg.serve ~x:0 ~node:3 St.Read);
  (* (b) the copy serving a write survives even the most aggressive
     drop threshold; the set never empties *)
  let strat = Sg.threshold_caching ~replicate_after:1 ~drop_after:1 inst in
  ignore (strat.Sg.serve ~x:0 ~node:5 St.Read);
  (* copies now {0, 5}; a write near 5 is served by 5, drops 0 *)
  ignore (strat.Sg.serve ~x:0 ~node:5 St.Write);
  Alcotest.(check (list int)) "serving copy survives the drop scan" [ 5 ] (strat.Sg.copies ~x:0);
  ignore (strat.Sg.serve ~x:0 ~node:5 St.Write);
  Alcotest.(check bool) "copy set never empties" true (strat.Sg.copies ~x:0 <> []);
  (* (c) under a long random stream the set stays non-empty throughout *)
  let rng = Rng.create 99 in
  let strat = Sg.threshold_caching ~replicate_after:2 ~drop_after:2 inst in
  for _ = 1 to 2000 do
    let node = Rng.int rng 6 in
    let kind = if Rng.float rng 1.0 < 0.4 then St.Write else St.Read in
    let c = strat.Sg.serve ~x:0 ~node kind in
    if not (Float.is_finite c) || c < 0.0 then Alcotest.failf "bad serve cost %g" c;
    if strat.Sg.copies ~x:0 = [] then Alcotest.fail "copy set emptied mid-stream"
  done

let threshold_caching_seeded_initial () =
  let g = Dmn_graph.Gen.path 5 in
  let inst =
    I.of_graph g ~cs:(Array.make 5 1.0) ~fr:[| Array.make 5 1 |] ~fw:[| Array.make 5 0 |]
  in
  let p = Dmn_core.Placement.make [| [ 1; 4 ] |] in
  let strat = Sg.threshold_caching ~initial:p inst in
  Alcotest.(check (list int)) "starts from the placement" [ 1; 4 ] (strat.Sg.copies ~x:0);
  Util.check_cost "read served by the seeded nearest copy" 1.0
    (strat.Sg.serve ~x:0 ~node:0 St.Read)

let stream_stationary_zero_volume_structured () =
  let g = Dmn_graph.Gen.path 3 in
  let zero = [| Array.make 3 0 |] in
  let inst = I.of_graph g ~cs:(Array.make 3 1.0) ~fr:zero ~fw:zero in
  match St.stationary (Rng.create 1) inst ~length:5 with
  | exception Err.Error e ->
      Alcotest.(check bool) "validation kind" true (e.Err.kind = Err.Validation)
  | _ -> Alcotest.fail "stationary sampled from an empty distribution"

let stream_seq_generators_match_lists () =
  (* the Seq generators and the historical list generators draw the
     same events in the same order from equal seeds *)
  let rng = Rng.create 77 in
  let inst = Util.random_graph_instance ~objects:2 rng 10 in
  if I.total_requests inst ~x:0 + I.total_requests inst ~x:1 > 0 then begin
    let a = St.stationary (Rng.create 5) inst ~length:500 in
    let b = List.of_seq (St.stationary_seq (Rng.create 5) inst ~length:500) in
    Alcotest.(check bool) "stationary seq = list" true (a = b)
  end;
  let a = St.drifting (Rng.create 6) inst ~phases:4 ~phase_length:100 ~write_fraction:0.3 in
  let b =
    List.of_seq (St.drifting_seq (Rng.create 6) inst ~phases:4 ~phase_length:100 ~write_fraction:0.3)
  in
  Alcotest.(check bool) "drifting seq = list" true (a = b);
  Alcotest.(check int) "drifting length" 400 (List.length a)

let serve_cache_invalidates_on_change () =
  let g = Dmn_graph.Gen.path 6 in
  let m = Dmn_paths.Metric.of_graph g in
  let t = Sc.create m ~x:0 [ 0 ] in
  let s, d = Sc.nearest t 5 in
  Alcotest.(check int) "nearest before" 0 s;
  Util.check_cost "distance before" 5.0 d;
  Util.check_cost "singleton mst" 0.0 (Sc.mst_weight t);
  let v0 = Sc.version t in
  Sc.add_copy t 4;
  Alcotest.(check bool) "version bumped" true (Sc.version t > v0);
  let s, d = Sc.nearest t 5 in
  Alcotest.(check int) "nearest after replicate" 4 s;
  Util.check_cost "distance after replicate" 1.0 d;
  Util.check_cost "mst spans the new set" 4.0 (Sc.mst_weight t);
  Alcotest.(check (list int)) "sorted copy list" [ 0; 4 ] (Sc.copies t);
  Alcotest.(check bool) "mem present" true (Sc.mem t 4);
  Alcotest.(check bool) "mem absent" false (Sc.mem t 3);
  (* a confirming set_copies keeps the version (memo stays warm) *)
  let v1 = Sc.version t in
  Sc.set_copies t [ 0; 4 ];
  Alcotest.(check int) "no-op set keeps version" v1 (Sc.version t);
  Sc.set_copies t [ 2 ];
  let s, d = Sc.nearest t 0 in
  Alcotest.(check int) "nearest after re-solve" 2 s;
  Util.check_cost "distance after re-solve" 2.0 d

let serve_cache_cached_matches_uncached () =
  (* cached and uncached answers are bit-identical across a random
     mutation/query interleaving; ties go to the smallest node id *)
  let rng = Rng.create 404 in
  let g = Dmn_graph.Gen.random_geometric rng 14 0.5 in
  let m = Dmn_paths.Metric.of_graph g in
  let hot = Sc.create ~cached:true m ~x:3 [ 2; 7 ] in
  let cold = Sc.create ~cached:false m ~x:3 [ 2; 7 ] in
  for _ = 1 to 500 do
    let v = Rng.int rng 14 in
    (match Rng.int rng 10 with
    | 0 ->
        let c = Rng.int rng 14 in
        if not (Sc.mem hot c) then begin
          Sc.add_copy hot c;
          Sc.add_copy cold c
        end
    | 1 ->
        let keep = List.filter (fun c -> c mod 2 = 0) (Sc.copies hot) in
        let keep = if keep = [] then [ Rng.int rng 14 ] else keep in
        Sc.set_copies hot keep;
        Sc.set_copies cold keep
    | _ -> ());
    let sh, dh = Sc.nearest hot v and sc, dc = Sc.nearest cold v in
    Alcotest.(check int) "same serving copy" sc sh;
    if not (Float.equal dh dc) then Alcotest.failf "nearest dist diverged: %h vs %h" dh dc;
    let wh = Sc.mst_weight hot and wc = Sc.mst_weight cold in
    if not (Float.equal wh wc) then Alcotest.failf "mst diverged: %h vs %h" wh wc
  done

let serve_cache_empty_copies_structured () =
  let g = Dmn_graph.Gen.path 3 in
  let m = Dmn_paths.Metric.of_graph g in
  let t = Sc.create m ~x:7 [] in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  (match Sc.nearest t 0 with
  | exception Err.Error e ->
      Alcotest.(check bool) "internal kind" true (e.Err.kind = Err.Internal);
      Alcotest.(check bool) "names the object" true (contains "object 7" e.Err.msg)
  | _ -> Alcotest.fail "empty copy set served");
  let inst =
    I.of_graph g ~cs:(Array.make 3 1.0) ~fr:[| Array.make 3 1 |] ~fw:[| Array.make 3 0 |]
  in
  match Sg.serve_cost inst ~x:7 ~copies:[] ~node:0 St.Read with
  | exception Err.Error e ->
      Alcotest.(check bool) "serve_cost internal kind" true (e.Err.kind = Err.Internal)
  | _ -> Alcotest.fail "serve_cost accepted an empty copy set"

let suite =
  [
    Alcotest.test_case "stationary stream frequencies" `Quick stationary_respects_frequencies;
    Alcotest.test_case "static strategy replays static cost" `Quick
      static_strategy_replays_static_cost;
    Alcotest.test_case "migrating owner follows hotspot" `Quick migrating_owner_follows_hotspot;
    Alcotest.test_case "threshold caching replicates/drops" `Quick
      threshold_caching_replicates_and_drops;
    Alcotest.test_case "static vs dynamic crossover" `Quick
      static_wins_stationary_dynamic_wins_drifting;
    Alcotest.test_case "zero-volume default period rejected" `Quick
      zero_volume_default_period_rejected;
    Alcotest.test_case "partial phase charged proportionally" `Quick
      partial_phase_charged_proportionally;
    Alcotest.test_case "threshold caching invariants" `Quick threshold_caching_invariants;
    Alcotest.test_case "threshold caching seeded initial" `Quick threshold_caching_seeded_initial;
    Alcotest.test_case "stationary zero-volume is structured" `Quick
      stream_stationary_zero_volume_structured;
    Alcotest.test_case "seq generators match lists" `Quick stream_seq_generators_match_lists;
    Alcotest.test_case "serve cache invalidates on change" `Quick serve_cache_invalidates_on_change;
    Alcotest.test_case "serve cache cached == uncached" `Quick serve_cache_cached_matches_uncached;
    Alcotest.test_case "serve cache empty copies structured" `Quick
      serve_cache_empty_copies_structured;
  ]
