(* Metrics under concurrency: counters hammered from several domains
   while snapshots are taken live must never be torn or non-monotonic,
   and every JSON dump must round-trip through the canonical parser. *)

open Dmn_prelude

(* ---------- concurrent hammering ---------- *)

let hammer_at domains =
  let reg = Metrics.create () in
  let counters = Array.init 3 (fun i -> Metrics.counter reg (Printf.sprintf "c%d" i)) in
  let g = Metrics.gauge reg "g" in
  let per_domain = 20_000 in
  let start = Atomic.make false in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            while not (Atomic.get start) do
              Domain.cpu_relax ()
            done;
            for i = 1 to per_domain do
              Metrics.incr counters.(i mod 3);
              Metrics.add counters.((i + 1) mod 3) 2;
              if i land 1023 = 0 then Metrics.set g (float_of_int (d + i))
            done))
  in
  Atomic.set start true;
  (* snapshot continuously while the workers run: per-counter values
     must be monotonic across successive snapshots, and the dump must
     always parse *)
  let prev = Array.make 3 0 in
  let rounds = ref 0 in
  let all_done = ref false in
  while (not !all_done) && !rounds < 10_000 do
    incr rounds;
    let snap = Metrics.snapshot reg in
    List.iteri
      (fun i (name, v) ->
        if i < 3 then
          match v with
          | Metrics.Counter n ->
              if n < prev.(i) then
                Alcotest.failf "counter %s went backwards: %d -> %d" name prev.(i) n;
              prev.(i) <- n
          | _ -> Alcotest.failf "instrument %s changed kind" name)
      snap;
    (match Jsonx.parse (Metrics.snapshot_to_json snap) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "live dump unparseable: %s" (Err.to_string e));
    let total = Array.fold_left ( + ) 0 prev in
    if total >= 3 * domains * per_domain then all_done := true
  done;
  List.iter Domain.join workers;
  (* exact totals: per iteration one incr (+1) and one add (+2), spread
     over the three counters *)
  let expect = 3 * domains * per_domain in
  let final =
    Metrics.snapshot reg
    |> List.filter_map (function _, Metrics.Counter n -> Some n | _ -> None)
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int)
    (Printf.sprintf "no lost increments at %d domains" domains)
    expect final

let concurrent_counters () = List.iter hammer_at [ 1; 2; 4 ]

(* ---------- dump round-trips through the canonical parser ---------- *)

let dump_roundtrips () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "requests_total" in
  let g = Metrics.gauge reg "queue_depth" in
  let h = Metrics.histogram reg "latency" in
  Metrics.add c 41;
  Metrics.incr c;
  Metrics.set g (-2.5);
  List.iter (Metrics.observe h) [ 0.0; 1e-9; 0.5; 3.0; 1e20 (* overflow bucket *) ];
  let json = Metrics.to_json reg in
  let v = Jsonx.parse_exn json in
  Alcotest.(check (option int)) "counter" (Some 42)
    (Option.bind (Jsonx.member "requests_total" v) Jsonx.to_int);
  Alcotest.(check (option (float 1e-9))) "gauge" (Some (-2.5))
    (Option.bind (Jsonx.member "queue_depth" v) Jsonx.to_float);
  let hist = Jsonx.member_exn "latency" v in
  Alcotest.(check (option int)) "hist count" (Some 5)
    (Option.bind (Jsonx.member "count" hist) Jsonx.to_int);
  (match Jsonx.member_exn "buckets" hist with
  | Jsonx.Arr buckets ->
      Alcotest.(check bool) "some buckets" true (buckets <> []);
      (* the overflow bucket's upper bound serializes as the string "inf" *)
      let has_inf =
        List.exists
          (function Jsonx.Arr [ _; Jsonx.Str "inf"; _ ] -> true | _ -> false)
          buckets
      in
      Alcotest.(check bool) "overflow bucket rendered as \"inf\"" true has_inf
  | _ -> Alcotest.fail "buckets is not an array");
  (* printing the parsed document and re-parsing is a fixpoint *)
  let reprinted = Jsonx.to_string v in
  Alcotest.(check bool) "print/parse fixpoint" true
    (Jsonx.equal v (Jsonx.parse_exn reprinted))

(* ---------- the engine's metrics document (v4) ---------- *)

let engine_metrics_json_v4 () =
  let module En = Dmn_engine.Engine in
  let inst = Util.random_graph_instance ~objects:2 (Rng.create 7) 10 in
  let placement = Dmn_core.Approx.solve inst in
  let events = Dmn_dynamic.Stream.stationary (Rng.create 8) inst ~length:300 in
  let config = { En.default_config with En.epoch = 100; En.dirty_eps = 0.3 } in
  let r = En.run ~config inst placement (List.to_seq events) in
  let v = Jsonx.parse_exn (En.metrics_json inst r) in
  Alcotest.(check (option int)) "version bumped for the incremental-resolve fields" (Some 4)
    (Option.bind (Jsonx.member "version" v) Jsonx.to_int);
  let totals = Jsonx.member_exn "totals" v in
  List.iter
    (fun field ->
      if Jsonx.member field totals = None then Alcotest.failf "totals.%s missing" field)
    [ "solve_skipped"; "cache_hits"; "cache_misses"; "cache_evictions" ];
  (* every epoch snapshot carries the new counters and gauges *)
  (match Jsonx.member_exn "epochs" v with
  | Jsonx.Arr (e :: _) ->
      List.iter
        (fun field ->
          if Jsonx.member field e = None then Alcotest.failf "epoch field %s missing" field)
        [
          "solve_skipped_total"; "solve_cache_hits_total"; "solve_cache_misses_total";
          "solve_cache_evictions_total"; "epoch_solve_skipped"; "dirty_objects";
          "epoch_cache_hits"; "epoch_cache_misses"; "epoch_cache_evictions";
        ];
      (* the solve-latency histogram is wall-clock and must stay out of
         the deterministic document *)
      if Jsonx.member "solve_epoch_s" e <> None then
        Alcotest.fail "solve_epoch_s leaked into the deterministic epochs"
  | _ -> Alcotest.fail "epochs is not a non-empty array");
  if Jsonx.member "solve_epoch_s" v <> None then
    Alcotest.fail "solve_epoch_s leaked into the deterministic document";
  (* the whole document survives a print/parse round trip *)
  Alcotest.(check bool) "print/parse fixpoint" true
    (Jsonx.equal v (Jsonx.parse_exn (Jsonx.to_string v)))

(* ---------- Jsonx parser edge cases ---------- *)

let jsonx_parses_edge_cases () =
  let ok s v =
    match Jsonx.parse s with
    | Ok got ->
        if not (Jsonx.equal got v) then
          Alcotest.failf "%S parsed to %s" s (Jsonx.to_string got)
    | Error e -> Alcotest.failf "%S rejected: %s" s (Err.to_string e)
  in
  ok "null" Jsonx.Null;
  ok " [ 1 , -2.5e3 , true ] " (Jsonx.Arr [ Jsonx.Num 1.0; Jsonx.Num (-2500.0); Jsonx.Bool true ]);
  ok "{\"a\":{\"b\":[]},\"c\":\"\"}"
    (Jsonx.Obj [ ("a", Jsonx.Obj [ ("b", Jsonx.Arr []) ]); ("c", Jsonx.Str "") ]);
  ok "\"\\u0041\\n\\\\\"" (Jsonx.Str "A\n\\");
  (* astral plane via surrogate pair: U+1F600 *)
  ok "\"\\ud83d\\ude00\"" (Jsonx.Str "\xf0\x9f\x98\x80");
  let bad s =
    match Jsonx.parse s with
    | Ok v -> Alcotest.failf "%S accepted as %s" s (Jsonx.to_string v)
    | Error e ->
        if e.Err.kind <> Err.Parse then
          Alcotest.failf "%S: expected a parse error, got %s" s (Err.to_string e)
  in
  List.iter bad
    [ ""; "{"; "[1,]"; "{\"a\":1,}"; "nul"; "1 2"; "\"unterminated"; "\"\\q\"";
      "\"ctrl\n\""; "{\"a\" 1}"; "[1] tail" ]

let suite =
  [
    Alcotest.test_case "concurrent counters: monotonic, lossless, parseable" `Quick
      concurrent_counters;
    Alcotest.test_case "dump round-trips through Jsonx" `Quick dump_roundtrips;
    Alcotest.test_case "engine metrics document is v4" `Quick engine_metrics_json_v4;
    Alcotest.test_case "Jsonx edge cases" `Quick jsonx_parses_edge_cases;
  ]
