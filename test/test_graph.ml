open Dmn_prelude
open Dmn_graph

let create_rejects_bad_edges () =
  Alcotest.check_raises "self-loop" (Invalid_argument "Wgraph.create: self-loop") (fun () ->
      ignore (Wgraph.create 3 [ (1, 1, 1.0) ]));
  (* duplicates carry a structured error naming the offending pair *)
  (match Wgraph.create 3 [ (0, 1, 1.0); (1, 0, 2.0) ] with
  | _ -> Alcotest.fail "duplicate edge accepted"
  | exception Err.Error e ->
      Alcotest.(check bool) "duplicate kind" true (e.Err.kind = Err.Validation);
      Alcotest.(check bool) "duplicate names the pair" true
        (let msg = e.Err.msg in
         let has s =
           let ls = String.length s and lm = String.length msg in
           let rec go i = i + ls <= lm && (String.sub msg i ls = s || go (i + 1)) in
           go 0
         in
         has "duplicate edge" && has "0-1"));
  Alcotest.check_raises "range" (Invalid_argument "Wgraph.create: endpoint out of range")
    (fun () -> ignore (Wgraph.create 2 [ (0, 2, 1.0) ]));
  let bad_weight = Invalid_argument "Wgraph.create: edge weight must be finite and non-negative" in
  Alcotest.check_raises "negative" bad_weight (fun () ->
      ignore (Wgraph.create 2 [ (0, 1, -1.0) ]));
  Alcotest.check_raises "nan" bad_weight (fun () ->
      ignore (Wgraph.create 2 [ (0, 1, Float.nan) ]));
  Alcotest.check_raises "infinite" bad_weight (fun () ->
      ignore (Wgraph.create 2 [ (0, 1, infinity) ]))

let adjacency_symmetric () =
  let g = Wgraph.create 4 [ (0, 1, 1.5); (1, 2, 2.5); (0, 3, 3.0) ] in
  Alcotest.(check int) "n" 4 (Wgraph.n g);
  Alcotest.(check int) "m" 3 (Wgraph.m g);
  Util.check_float "weight" 1.5 (Wgraph.edge_weight g 1 0);
  Util.check_float "weight sym" 1.5 (Wgraph.edge_weight g 0 1);
  Alcotest.(check int) "degree 0" 2 (Wgraph.degree g 0);
  Alcotest.(check int) "max degree" 2 (Wgraph.max_degree g);
  Alcotest.(check bool) "has_edge" true (Wgraph.has_edge g 2 1);
  Alcotest.(check bool) "no edge" false (Wgraph.has_edge g 2 3)

let connectivity () =
  let g = Wgraph.create 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  Alcotest.(check bool) "disconnected" false (Wgraph.is_connected g);
  let g2 = Gen.path 5 in
  Alcotest.(check bool) "path connected" true (Wgraph.is_connected g2);
  Alcotest.(check bool) "path is tree" true (Wgraph.is_tree g2);
  Alcotest.(check bool) "cycle is not a tree" false (Wgraph.is_tree (Gen.ring 5))

let diameter () =
  Alcotest.(check int) "path diameter" 4 (Wgraph.unweighted_diameter (Gen.path 5));
  Alcotest.(check int) "ring diameter" 3 (Wgraph.unweighted_diameter (Gen.ring 6));
  Alcotest.(check int) "star diameter" 2 (Wgraph.unweighted_diameter (Gen.star 6));
  Alcotest.(check int) "complete diameter" 1 (Wgraph.unweighted_diameter (Gen.complete 6))

let generators_shapes () =
  let checks =
    [
      ("path", Gen.path 7, 7, 6);
      ("ring", Gen.ring 7, 7, 7);
      ("star", Gen.star 7, 7, 6);
      ("complete", Gen.complete 6, 6, 15);
      ("grid", Gen.grid 3 4, 12, 17);
      ("torus", Gen.torus 3 4, 12, 24);
      ("hypercube", Gen.hypercube 4, 16, 32);
    ]
  in
  List.iter
    (fun (name, g, n, m) ->
      Alcotest.(check int) (name ^ " n") n (Wgraph.n g);
      Alcotest.(check int) (name ^ " m") m (Wgraph.m g);
      Alcotest.(check bool) (name ^ " connected") true (Wgraph.is_connected g))
    checks

let balanced_tree_shape () =
  let g = Gen.balanced_tree ~arity:3 ~depth:2 in
  Alcotest.(check int) "nodes" 13 (Wgraph.n g);
  Alcotest.(check bool) "tree" true (Wgraph.is_tree g)

let random_generators_connected () =
  let rng = Rng.create 3 in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 30 in
    Alcotest.(check bool) "random tree" true (Wgraph.is_tree (Gen.random_tree rng n));
    Alcotest.(check bool) "er connected" true
      (Wgraph.is_connected (Gen.erdos_renyi rng n 0.1));
    Alcotest.(check bool) "geometric connected" true
      (Wgraph.is_connected (Gen.random_geometric rng n 0.3));
    Alcotest.(check bool) "caterpillar tree" true (Wgraph.is_tree (Gen.caterpillar rng n));
    Alcotest.(check bool) "clustered connected" true
      (Wgraph.is_connected (Gen.clustered rng ~clusters:3 ~per_cluster:4))
  done

let map_weights_rescale () =
  let g = Gen.path 4 in
  let g2 = Wgraph.map_weights (fun _ _ w -> 2.0 *. w) g in
  Util.check_float "doubled" (2.0 *. Wgraph.total_weight g) (Wgraph.total_weight g2)

let edge_list_roundtrip () =
  let rng = Rng.create 4 in
  for _ = 1 to 20 do
    let g = Gen.erdos_renyi rng (2 + Rng.int rng 20) 0.3 in
    let g2 = Dot.of_edge_list (Dot.to_edge_list g) in
    Alcotest.(check int) "n" (Wgraph.n g) (Wgraph.n g2);
    Alcotest.(check int) "m" (Wgraph.m g) (Wgraph.m g2);
    List.iter2
      (fun (u, v, w) (u', v', w') ->
        Alcotest.(check int) "u" u u';
        Alcotest.(check int) "v" v v';
        Util.check_float "w" w w')
      (List.sort compare (Wgraph.edges g))
      (List.sort compare (Wgraph.edges g2))
  done

let dot_output_contains_edges () =
  let g = Gen.path 3 in
  let s = Dot.to_dot g in
  Alcotest.(check bool) "graph keyword" true (String.length s > 10 && String.sub s 0 5 = "graph")

let with_edge_weight_patches_in_place () =
  let g = Wgraph.create 4 [ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 3.0) ] in
  let g' = Wgraph.with_edge_weight g 2 1 5.0 in
  (* the patched graph sees the new weight from both endpoints *)
  Alcotest.(check (float 0.0)) "u side" 5.0 (Wgraph.edge_weight g' 1 2);
  Alcotest.(check (float 0.0)) "v side" 5.0 (Wgraph.edge_weight g' 2 1);
  (* untouched edges and the original graph are unchanged *)
  Alcotest.(check (float 0.0)) "other edge" 3.0 (Wgraph.edge_weight g' 2 3);
  Alcotest.(check (float 0.0)) "original intact" 2.0 (Wgraph.edge_weight g 1 2);
  (* edge list stays canonical with the weight swapped in *)
  Alcotest.(check bool) "edge list updated" true
    (Wgraph.edges g' = [ (0, 1, 1.0); (1, 2, 5.0); (2, 3, 3.0) ]);
  Alcotest.check_raises "absent edge" Not_found (fun () ->
      ignore (Wgraph.with_edge_weight g 0 3 1.0));
  Alcotest.check_raises "self-loop"
    (Invalid_argument "Wgraph.with_edge_weight: self-loop") (fun () ->
      ignore (Wgraph.with_edge_weight g 1 1 1.0));
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Wgraph.with_edge_weight: edge weight must be finite and non-negative")
    (fun () -> ignore (Wgraph.with_edge_weight g 0 1 (-1.0)))

let qcheck_er_connected =
  QCheck.Test.make ~name:"erdos_renyi always connected" ~count:100
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      Wgraph.is_connected (Gen.erdos_renyi rng n 0.05))

let qcheck_tree_edge_count =
  QCheck.Test.make ~name:"random_tree has n-1 edges" ~count:200
    QCheck.(pair small_int (int_range 1 60))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Gen.random_tree rng n in
      Wgraph.m g = n - 1 && Wgraph.is_connected g)

let suite =
  [
    Alcotest.test_case "create validation" `Quick create_rejects_bad_edges;
    Alcotest.test_case "adjacency" `Quick adjacency_symmetric;
    Alcotest.test_case "connectivity" `Quick connectivity;
    Alcotest.test_case "diameters" `Quick diameter;
    Alcotest.test_case "generator shapes" `Quick generators_shapes;
    Alcotest.test_case "balanced tree" `Quick balanced_tree_shape;
    Alcotest.test_case "random generators connected" `Quick random_generators_connected;
    Alcotest.test_case "map_weights" `Quick map_weights_rescale;
    Alcotest.test_case "with_edge_weight" `Quick with_edge_weight_patches_in_place;
    Alcotest.test_case "edge list round trip" `Quick edge_list_roundtrip;
    Alcotest.test_case "dot export" `Quick dot_output_contains_edges;
    Util.qtest qcheck_er_connected;
    Util.qtest qcheck_tree_edge_count;
  ]
