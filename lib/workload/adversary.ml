open Dmn_prelude
open Dmn_graph
module I = Dmn_core.Instance
module Stream = Dmn_dynamic.Stream
module Churn = Dmn_paths.Churn

(* Adversarial item streams: request patterns and topology churn chosen
   to stress a placement policy where it hurts — demand that moves,
   spikes, appears and disappears, and a network that fails underneath
   the copies. Every generator draws from its RNG as the sequence is
   forced, so each result is wrapped in {!Stream.one_shot} and valid
   for exactly one traversal.

   Generators that emit topology events track their own model of the
   network state (which nodes are down, which edges are surged) and
   only ever emit events that are valid against that state, so a
   generated stream always replays cleanly through {!Dmn_paths.Churn}. *)

let graph_of who inst =
  match I.graph inst with
  | Some g -> g
  | None ->
      Err.failf Err.Validation
        "Adversary.%s: the instance is metric-only; topology churn needs a graph-backed \
         instance (Instance.of_graph)"
        who

let req rng ~hot ~k ~write_fraction =
  {
    Stream.node = Rng.pick rng hot;
    x = Rng.int rng k;
    kind = (if Rng.float rng 1.0 < write_fraction then Stream.Write else Stream.Read);
  }

(* Daily cycle: daytime traffic concentrates on the "office" side of
   the network — the half of the nodes nearest node 0 by hop count, so
   the demand centroid actually moves across the network at dusk — while
   the core links congest (weight surge); at night demand moves to the
   far half and the links relax. The surge set is the heaviest quarter
   of the edges — the ones a daytime placement most wants to route
   around. *)
let diurnal rng inst ~days ~day_length ~write_fraction =
  if days < 0 then invalid_arg "Adversary.diurnal: negative day count";
  if day_length < 2 then invalid_arg "Adversary.diurnal: day_length must be >= 2";
  let g = graph_of "diurnal" inst in
  let n = I.n inst and k = I.objects inst in
  let edges = Array.of_list (Wgraph.edges g) in
  Array.sort (fun (_, _, w1) (_, _, w2) -> compare w2 w1) edges;
  let surged = Array.sub edges 0 (max 1 (Array.length edges / 4)) in
  let by_hops = Array.init n Fun.id in
  let hops = Wgraph.bfs_hops g 0 in
  Array.sort (fun a b -> compare (hops.(a), a) (hops.(b), b)) by_hops;
  let day_nodes = Array.sub by_hops 0 ((n + 1) / 2) in
  let night_nodes = Array.sub by_hops ((n + 1) / 2) (n / 2) in
  let night_nodes = if Array.length night_nodes = 0 then day_nodes else night_nodes in
  let half = day_length / 2 in
  let state = ref `Dawn and day = ref 0 and emitted = ref 0 in
  let pending = Queue.create () in
  let rec next () =
    if not (Queue.is_empty pending) then Seq.Cons (Stream.Topo (Queue.pop pending), next)
    else if !day >= days then Seq.Nil
    else
      match !state with
      | `Dawn ->
          Array.iter
            (fun (u, v, w) -> Queue.add (Churn.Edge_weight { u; v; w = w *. 4.0 }) pending)
            surged;
          state := `Day;
          emitted := 0;
          next ()
      | `Day ->
          if !emitted = half then begin
            Array.iter
              (fun (u, v, w) -> Queue.add (Churn.Edge_weight { u; v; w }) pending)
              surged;
            state := `Night;
            emitted := 0;
            next ()
          end
          else begin
            incr emitted;
            Seq.Cons (Stream.Req (req rng ~hot:day_nodes ~k ~write_fraction), next)
          end
      | `Night ->
          if !emitted = day_length - half then begin
            state := `Dawn;
            incr day;
            next ()
          end
          else begin
            incr emitted;
            Seq.Cons (Stream.Req (req rng ~hot:night_nodes ~k ~write_fraction), next)
          end
  in
  Stream.one_shot "adversary.diurnal" next

(* Flash crowd: stationary background traffic until [spike_at], then for
   [spike_length] requests one object drawn from one small region is
   [multiplier] times as likely as everything else combined being
   uniform — the 100x hotspot of the issue. Request-only. *)
let flash_crowd rng inst ~length ~spike_at ~spike_length ~multiplier ~write_fraction =
  if length < 0 then invalid_arg "Adversary.flash_crowd: negative length";
  if spike_at < 0 || spike_length < 0 || spike_at + spike_length > length then
    invalid_arg "Adversary.flash_crowd: spike window outside the trace";
  if multiplier < 1 then invalid_arg "Adversary.flash_crowd: multiplier must be >= 1";
  let n = I.n inst and k = I.objects inst in
  let all = Array.init n Fun.id in
  let hot_nodes = ref [||] and hot_x = ref 0 in
  let item i =
    if i = spike_at then begin
      hot_nodes := Rng.sample rng all (max 1 (n / 8));
      hot_x := Rng.int rng k
    end;
    if i >= spike_at && i < spike_at + spike_length
       && Rng.int rng (multiplier + 1) < multiplier
    then
      Stream.Req
        {
          Stream.node = Rng.pick rng !hot_nodes;
          x = !hot_x;
          kind = (if Rng.float rng 1.0 < write_fraction then Stream.Write else Stream.Read);
        }
    else Stream.Req (req rng ~hot:all ~k ~write_fraction)
  in
  Stream.one_shot "adversary.flash_crowd" (Seq.init length item)

(* Object birth and death: each object is requested only inside its own
   lifetime window. Object 0 lives for the whole trace so every position
   has someone to ask for; the rest get random windows covering about
   half the trace each, so the active set keeps changing and yesterday's
   placement keeps paying rent for objects nobody asks about. *)
let birth_death rng inst ~length ~write_fraction =
  if length < 0 then invalid_arg "Adversary.birth_death: negative length";
  let n = I.n inst and k = I.objects inst in
  let all = Array.init n Fun.id in
  let windows =
    Array.init k (fun x ->
        if x = 0 || length = 0 then (0, length)
        else begin
          let span = max 1 (length / 2) in
          let birth = Rng.int rng (max 1 (length - span + 1)) in
          (birth, min length (birth + span))
        end)
  in
  let item i =
    let alive = ref [] in
    for x = k - 1 downto 0 do
      let b, d = windows.(x) in
      if i >= b && i < d then alive := x :: !alive
    done;
    let alive = Array.of_list !alive in
    let x = if Array.length alive = 0 then 0 else Rng.pick rng alive in
    Stream.Req
      {
        Stream.node = Rng.pick rng all;
        x;
        kind = (if Rng.float rng 1.0 < write_fraction then Stream.Write else Stream.Read);
      }
  in
  Stream.one_shot "adversary.birth_death" (Seq.init length item)

(* Failure and repair: phased hotspot traffic (the demand moves every
   phase, like {!Stream.drifting}), and at each phase boundary one live
   node fails — preferentially a node of the {e previous} hotspot, where
   the copies just moved to — while the node failed two phases ago
   recovers. A static placement bleeds twice: requests near the corpse
   are dropped or served from far away, and an object whose whole copy
   set died is emergency-rehomed to a single node and never re-spread.
   A re-solving policy follows the demand and wins. *)
let failure_repair rng inst ~phases ~phase_length ~write_fraction =
  if phases < 0 then invalid_arg "Adversary.failure_repair: negative phase count";
  if phase_length < 1 then invalid_arg "Adversary.failure_repair: phase_length must be >= 1";
  let (_ : Wgraph.t) = graph_of "failure_repair" inst in
  let n = I.n inst and k = I.objects inst in
  if n < 4 then invalid_arg "Adversary.failure_repair: needs at least 4 nodes";
  let alive = Array.make n true in
  let downq = Queue.create () in
  let hot = ref (Rng.sample rng (Array.init n Fun.id) (max 1 (n / 4))) in
  let prev_hot = ref !hot in
  let live_nodes () =
    let l = ref [] in
    for v = n - 1 downto 0 do
      if alive.(v) then l := v :: !l
    done;
    Array.of_list !l
  in
  let phase = ref 0 and emitted = ref 0 in
  let pending = Queue.create () in
  let boundary () =
    (* revive the oldest corpse once two newer failures exist, so at
       most two nodes are down at any time *)
    if Queue.length downq >= 2 then begin
      let z = Queue.pop downq in
      alive.(z) <- true;
      Queue.add (Churn.Node_up z) pending
    end;
    (* fail a node from the previous hotspot if one is still alive,
       otherwise any live node — never the last ones standing *)
    let candidates = Array.of_list (List.filter (fun v -> alive.(v)) (Array.to_list !prev_hot)) in
    let pool = if Array.length candidates > 0 then candidates else live_nodes () in
    if Array.length (live_nodes ()) > 3 && Array.length pool > 0 then begin
      let z = pool.(Rng.int rng (Array.length pool)) in
      alive.(z) <- false;
      Queue.add z downq;
      Queue.add (Churn.Node_down z) pending
    end;
    prev_hot := !hot;
    let live = live_nodes () in
    hot := Rng.sample rng live (max 1 (Array.length live / 4));
    emitted := 0
  in
  let rec next () =
    if not (Queue.is_empty pending) then Seq.Cons (Stream.Topo (Queue.pop pending), next)
    else if !phase >= phases then Seq.Nil
    else begin
      incr emitted;
      (* draw from the current hotspot before the boundary resamples it *)
      let ev = req rng ~hot:!hot ~k ~write_fraction in
      if !emitted = phase_length then begin
        incr phase;
        if !phase < phases then boundary ()
      end;
      Seq.Cons (Stream.Req ev, next)
    end
  in
  Stream.one_shot "adversary.failure_repair" next
