(** Adversarial item streams: workloads and topology churn built to
    stress placement policies — demand that moves daily, spikes 100x,
    appears and disappears, and a network that fails underneath the
    copies.

    Every generator returns a {!Dmn_dynamic.Stream.one_shot} sequence:
    it draws from [rng] as it is forced and is valid for exactly one
    traversal (re-forcing raises a structured error naming the
    generator). Generators that emit topology items track their own
    model of the network state and only emit events that are valid
    against it, so their streams always replay cleanly through
    {!Dmn_paths.Churn} — and through the engine, which applies each
    event at the start of the epoch in which it is consumed. *)

open Dmn_prelude

(** [diurnal rng inst ~days ~day_length ~write_fraction] — a daily
    cycle, [day_length] requests per day: daytime traffic concentrates
    on the lower half of the nodes while the heaviest quarter of the
    edges surge to 4x their weight (congestion); at night demand moves
    to the upper half and the links relax. Requires a graph-backed
    instance.
    @raise Invalid_argument on negative [days] or [day_length < 2].
    @raise Err.Error (kind [Validation]) on a metric-only instance. *)
val diurnal :
  Rng.t ->
  Dmn_core.Instance.t ->
  days:int ->
  day_length:int ->
  write_fraction:float ->
  Dmn_dynamic.Stream.item Seq.t

(** [flash_crowd rng inst ~length ~spike_at ~spike_length ~multiplier
    ~write_fraction] — uniform background traffic, except that requests
    [spike_at, spike_at + spike_length) make one freshly drawn object,
    asked from one small region, [multiplier] times as likely as all
    background traffic combined. Request-only (works on metric-only
    instances).
    @raise Invalid_argument on a spike window outside the trace or
    [multiplier < 1]. *)
val flash_crowd :
  Rng.t ->
  Dmn_core.Instance.t ->
  length:int ->
  spike_at:int ->
  spike_length:int ->
  multiplier:int ->
  write_fraction:float ->
  Dmn_dynamic.Stream.item Seq.t

(** [birth_death rng inst ~length ~write_fraction] — each object is
    requested only inside its own lifetime window (object 0 lives for
    the whole trace; the rest get random windows of about half of it),
    so the active object set keeps shifting. Request-only. *)
val birth_death :
  Rng.t ->
  Dmn_core.Instance.t ->
  length:int ->
  write_fraction:float ->
  Dmn_dynamic.Stream.item Seq.t

(** [failure_repair rng inst ~phases ~phase_length ~write_fraction] —
    phased hotspot traffic; at each phase boundary one live node fails
    (preferring the previous hotspot, where the copies just moved), and
    the node failed two phases earlier recovers, so at most two nodes
    are down at once and never so many that fewer than four remain.
    The scenario the tournament's resolve-beats-static gate runs on.
    Requires a graph-backed instance with at least 4 nodes.
    @raise Invalid_argument on negative [phases], [phase_length < 1] or
    fewer than 4 nodes.
    @raise Err.Error (kind [Validation]) on a metric-only instance. *)
val failure_repair :
  Rng.t ->
  Dmn_core.Instance.t ->
  phases:int ->
  phase_length:int ->
  write_fraction:float ->
  Dmn_dynamic.Stream.item Seq.t
