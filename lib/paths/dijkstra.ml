open Dmn_graph

type result = { dist : float array; parent : int array; source : int array }

(* Relax straight off the flat CSR arrays: the all-pairs closure runs
   one of these loops per node, and the indirection-free row walk is
   what keeps it memory-bound rather than pointer-bound. *)
let run_core g ~dist ~parent ~source ~heap srcs =
  let n = Wgraph.n g in
  List.iter
    (fun s ->
      if s < 0 || s >= n then begin
        Idx_heap.clear heap;
        invalid_arg "Dijkstra.multi: source out of range"
      end;
      dist.(s) <- 0.0;
      source.(s) <- s;
      Idx_heap.insert_or_decrease heap s 0.0)
    srcs;
  let xadj, anodes, aw = Wgraph.csr g in
  while not (Idx_heap.is_empty heap) do
    let v, d = Idx_heap.pop_min heap in
    (* Entries are only popped at their final distance with an indexed heap. *)
    let hi = Array.unsafe_get xadj (v + 1) in
    for i = Array.unsafe_get xadj v to hi - 1 do
      let u = Array.unsafe_get anodes i in
      let nd = d +. Array.unsafe_get aw i in
      if nd < Array.unsafe_get dist u then begin
        Array.unsafe_set dist u nd;
        Array.unsafe_set parent u v;
        Array.unsafe_set source u (Array.unsafe_get source v);
        Idx_heap.insert_or_decrease heap u nd
      end
    done
  done

let multi g srcs =
  if srcs = [] then invalid_arg "Dijkstra.multi: no sources";
  let n = Wgraph.n g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let source = Array.make n (-1) in
  let heap = Idx_heap.create n in
  run_core g ~dist ~parent ~source ~heap srcs;
  { dist; parent; source }

(* Reusable per-domain workspace for batched closures: the arrays are
   reset in O(n) per run instead of reallocated, and the heap drains
   itself. *)
type scratch = {
  s_dist : float array;
  s_parent : int array;
  s_source : int array;
  s_heap : Idx_heap.t;
  s_n : int;
}

let scratch n =
  if n < 0 then invalid_arg "Dijkstra.scratch: negative size";
  {
    s_dist = Array.make (max 1 n) infinity;
    s_parent = Array.make (max 1 n) (-1);
    s_source = Array.make (max 1 n) (-1);
    s_heap = Idx_heap.create n;
    s_n = n;
  }

let run_scratch s g src =
  let n = Wgraph.n g in
  if n > s.s_n then invalid_arg "Dijkstra.run_scratch: scratch too small";
  Array.fill s.s_dist 0 n infinity;
  Array.fill s.s_parent 0 n (-1);
  Array.fill s.s_source 0 n (-1);
  Idx_heap.clear s.s_heap;
  run_core g ~dist:s.s_dist ~parent:s.s_parent ~source:s.s_source ~heap:s.s_heap [ src ];
  s.s_dist

let run g src = multi g [ src ]

let path r v =
  if r.source.(v) < 0 then invalid_arg "Dijkstra.path: unreachable node";
  let rec go v acc = if r.parent.(v) < 0 then v :: acc else go r.parent.(v) (v :: acc) in
  go v []

let distance g u v = (run g u).dist.(v)
