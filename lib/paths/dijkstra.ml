open Dmn_graph

type result = { dist : float array; parent : int array; source : int array }

let multi g srcs =
  if srcs = [] then invalid_arg "Dijkstra.multi: no sources";
  let n = Wgraph.n g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let source = Array.make n (-1) in
  let heap = Idx_heap.create n in
  List.iter
    (fun s ->
      if s < 0 || s >= n then invalid_arg "Dijkstra.multi: source out of range";
      dist.(s) <- 0.0;
      source.(s) <- s;
      Idx_heap.insert_or_decrease heap s 0.0)
    srcs;
  (* Relax straight off the flat CSR arrays: the all-pairs closure runs
     one of these loops per node, and the indirection-free row walk is
     what keeps it memory-bound rather than pointer-bound. *)
  let xadj, anodes, aw = Wgraph.csr g in
  while not (Idx_heap.is_empty heap) do
    let v, d = Idx_heap.pop_min heap in
    (* Entries are only popped at their final distance with an indexed heap. *)
    let hi = Array.unsafe_get xadj (v + 1) in
    for i = Array.unsafe_get xadj v to hi - 1 do
      let u = Array.unsafe_get anodes i in
      let nd = d +. Array.unsafe_get aw i in
      if nd < Array.unsafe_get dist u then begin
        Array.unsafe_set dist u nd;
        Array.unsafe_set parent u v;
        Array.unsafe_set source u (Array.unsafe_get source v);
        Idx_heap.insert_or_decrease heap u nd
      end
    done
  done;
  { dist; parent; source }

let run g src = multi g [ src ]

let path r v =
  if r.source.(v) < 0 then invalid_arg "Dijkstra.path: unreachable node";
  let rec go v acc = if r.parent.(v) < 0 then v :: acc else go r.parent.(v) (v :: acc) in
  go v []

let distance g u v = (run g u).dist.(v)
