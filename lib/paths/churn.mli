(** Topology churn: a mutable view of a network whose edges and nodes
    fail, recover, and change weight over time.

    The state is the pristine graph plus a set of edge overrides and a
    node-liveness vector; the {e current} graph is always derived from
    those (deterministically — edges sorted canonically so the CSR
    layout, and with it every Dijkstra tie-break, is independent of
    event order or hash-table internals). The metric is a private copy
    of the pristine closure repaired in place after each event with the
    cheapest sound update from {!Metric}'s repair primitives, so a
    single-edge event costs far less than a full
    {!Metric.of_graph} recompute. Pairs a partition disconnects are
    stored as [infinity]. *)

open Dmn_graph

(** One topology event. Endpoint pairs are unordered. *)
type event =
  | Edge_weight of { u : int; v : int; w : float }
      (** reweight an existing edge (up or down) *)
  | Edge_down of { u : int; v : int }  (** remove an existing edge *)
  | Edge_up of { u : int; v : int; w : float }
      (** add an edge that is currently absent (possibly one previously
          removed) *)
  | Node_down of int  (** fail a live node: all incident edges vanish *)
  | Node_up of int  (** revive a failed node: incident edges return *)

val event_to_string : event -> string

type t

(** [create g m] starts churn tracking from pristine graph [g] and its
    metric closure [m] (which is deep-copied — the caller's metric is
    never mutated). @raise Invalid_argument on a size mismatch. *)
val create : Wgraph.t -> Metric.t -> t

(** [apply t ev] applies one event: updates the override/liveness
    state, rebuilds the current graph, and repairs the metric in place
    (bumping {!Metric.version}).
    @raise Dmn_prelude.Err.Error (kind [Validation]) on an inconsistent
    event: out-of-range node, self-loop, bad weight, reweighting or
    removing an absent edge, adding a present edge, failing a dead node
    or reviving a live one. The state is unchanged on failure. *)
val apply : t -> event -> unit

(** [graph t] is the current graph: pristine edges with overrides
    applied, minus every edge incident to a down node. *)
val graph : t -> Wgraph.t

(** [metric t] is the repaired metric for the current graph. Distances
    involving a down node, or between nodes a partition separates, are
    [infinity]. The same value (physically) is returned across events —
    it is repaired in place, so consumers must key caches on
    {!Metric.version}. *)
val metric : t -> Metric.t

val alive : t -> int -> bool

(** [down_nodes t] lists currently-failed nodes in ascending order. *)
val down_nodes : t -> int list

val down_count : t -> int

(** [overrides t] lists the current edge overrides in canonical order:
    [((u, v), Some w)] for a reweighted or added edge, [((u, v), None)]
    for a removed one, with [u < v]. Used to serialize the topology
    delta into checkpoints. *)
val overrides : t -> ((int * int) * float option) list

(** [events_applied t] counts successfully applied events. *)
val events_applied : t -> int

(** [churned t] holds once any event has been applied. *)
val churned : t -> bool
