open Dmn_graph
open Dmn_prelude

type t = { n : int; mat : float array array }

let size m = m.n
let d m u v = m.mat.(u).(v)

(* One Dijkstra per source row; rows are independent, so fan out over
   the domain pool (bit-identical to the sequential closure). *)
let of_graph g =
  let n = Wgraph.n g in
  let row v =
    let r = Dijkstra.run g v in
    Array.iteri
      (fun u dist ->
        if dist = infinity then
          invalid_arg (Printf.sprintf "Metric.of_graph: node %d unreachable from %d" u v))
      r.Dijkstra.dist;
    r.Dijkstra.dist
  in
  { n; mat = Pool.parallel_init (Pool.default ()) n row }

let of_graph_floyd g =
  let n = Wgraph.n g in
  let mat = Array.make_matrix n n infinity in
  for v = 0 to n - 1 do
    mat.(v).(v) <- 0.0
  done;
  List.iter
    (fun (u, v, w) ->
      if w < mat.(u).(v) then begin
        mat.(u).(v) <- w;
        mat.(v).(u) <- w
      end)
    (Wgraph.edges g);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = mat.(i).(k) +. mat.(k).(j) in
        if via < mat.(i).(j) then mat.(i).(j) <- via
      done
    done
  done;
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j x ->
          if x = infinity then
            invalid_arg (Printf.sprintf "Metric.of_graph_floyd: %d unreachable from %d" j i))
        row)
    mat;
  { n; mat }

let is_metric mat =
  let n = Array.length mat in
  let bad fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.exists (fun row -> Array.length row <> n) mat then bad "matrix is not square"
  else
    let exception Found of string in
    try
      for i = 0 to n - 1 do
        if not (Floatx.approx mat.(i).(i) 0.0) then
          raise (Found (Printf.sprintf "non-zero diagonal at %d" i));
        for j = 0 to n - 1 do
          if mat.(i).(j) < 0.0 then raise (Found (Printf.sprintf "negative entry (%d,%d)" i j));
          if not (Floatx.approx mat.(i).(j) mat.(j).(i)) then
            raise (Found (Printf.sprintf "asymmetric at (%d,%d)" i j))
        done
      done;
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if not (Floatx.leq ~tol:1e-6 mat.(i).(j) (mat.(i).(k) +. mat.(k).(j))) then
              raise (Found (Printf.sprintf "triangle violation %d-%d via %d" i j k))
          done
        done
      done;
      Ok ()
    with Found s -> Error s

let of_matrix mat =
  (match is_metric mat with Ok () -> () | Error e -> invalid_arg ("Metric.of_matrix: " ^ e));
  let n = Array.length mat in
  { n; mat = Array.map Array.copy mat }

let of_points pts =
  let n = Array.length pts in
  let dist i j =
    let xi, yi = pts.(i) and xj, yj = pts.(j) in
    Float.hypot (xi -. xj) (yi -. yj)
  in
  { n; mat = Array.init n (fun i -> Array.init n (dist i)) }

let scale c m =
  if c < 0.0 then invalid_arg "Metric.scale: negative factor";
  { n = m.n; mat = Array.map (Array.map (fun x -> c *. x)) m.mat }

let to_matrix m = Array.map Array.copy m.mat

let nearest_dists m nodes =
  if nodes = [] then invalid_arg "Metric.nearest_dists: empty node list";
  Array.init m.n (fun v ->
      List.fold_left (fun acc u -> Float.min acc (d m v u)) infinity nodes)

let nearest m v nodes =
  match nodes with
  | [] -> invalid_arg "Metric.nearest: empty node list"
  | first :: rest ->
      List.fold_left
        (fun ((_, bd) as best) u ->
          let du = d m v u in
          if du < bd then (u, du) else best)
        (first, d m v first)
        rest
