open Dmn_graph
open Dmn_prelude

(* Row-major flat storage: d(u, v) lives at [u * n + v]. A single
   unboxed float array keeps every row contiguous — the nearest-copy
   scans and MST subset loops of the serve path walk rows without
   chasing a per-row pointer, and the whole metric is one allocation.

   [version] supports topology churn: every in-place repair
   ({!recompute_rows}, {!relax_edge}, {!relax_via}, {!touch}) bumps it,
   so consumers that memoize derived data (the per-placement serve
   caches) can key their state on (placement version × metric version)
   and can never serve a distance that predates a network change. *)
type t = { n : int; flat : float array; mutable version : int }

type row = { data : float array; off : int }

let size m = m.n
let version m = m.version
let touch m = m.version <- m.version + 1
let copy m = { n = m.n; flat = Array.copy m.flat; version = m.version }
let d m u v = m.flat.((u * m.n) + v)
let unsafe_d m u v = Array.unsafe_get m.flat ((u * m.n) + v)

let row m v =
  if v < 0 || v >= m.n then invalid_arg "Metric.row: node out of range";
  { data = m.flat; off = v * m.n }

let row_get r u = Array.unsafe_get r.data (r.off + u)

let of_rows n rows =
  let flat = Array.make (n * n) 0.0 in
  Array.iteri (fun v r -> Array.blit r 0 flat (v * n) n) rows;
  { n; flat; version = 1 }

(* One Dijkstra per source row; rows are independent, so fan out over
   the domain pool in chunked batches (bit-identical to the sequential
   closure). Each chunk reuses one Dijkstra scratch and writes its rows
   straight into the flat storage — no per-row intermediate arrays. *)
let of_graph ?pool ?chunks g =
  let n = Wgraph.n g in
  let flat = Array.make (n * n) 0.0 in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Pool.parallel_chunks pool ?chunks n (fun lo hi ->
      let s = Dijkstra.scratch n in
      for v = lo to hi - 1 do
        (* Same per-row injection point as [Pool.parallel_init]: fault
           outcomes stay independent of the chunking and domain count. *)
        Fault.check_at "pool.task" v;
        let dist = Dijkstra.run_scratch s g v in
        let base = v * n in
        for u = 0 to n - 1 do
          let d = Array.unsafe_get dist u in
          if d = infinity then
            invalid_arg (Printf.sprintf "Metric.of_graph: node %d unreachable from %d" u v);
          Array.unsafe_set flat (base + u) d
        done
      done);
  { n; flat; version = 1 }

let of_graph_floyd g =
  let n = Wgraph.n g in
  let mat = Array.make_matrix n n infinity in
  for v = 0 to n - 1 do
    mat.(v).(v) <- 0.0
  done;
  List.iter
    (fun (u, v, w) ->
      if w < mat.(u).(v) then begin
        mat.(u).(v) <- w;
        mat.(v).(u) <- w
      end)
    (Wgraph.edges g);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = mat.(i).(k) +. mat.(k).(j) in
        if via < mat.(i).(j) then mat.(i).(j) <- via
      done
    done
  done;
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j x ->
          if x = infinity then
            invalid_arg (Printf.sprintf "Metric.of_graph_floyd: %d unreachable from %d" j i))
        row)
    mat;
  of_rows n mat

let is_metric mat =
  let n = Array.length mat in
  let bad fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.exists (fun row -> Array.length row <> n) mat then bad "matrix is not square"
  else
    let exception Found of string in
    try
      for i = 0 to n - 1 do
        if not (Floatx.approx mat.(i).(i) 0.0) then
          raise (Found (Printf.sprintf "non-zero diagonal at %d" i));
        for j = 0 to n - 1 do
          if mat.(i).(j) < 0.0 then raise (Found (Printf.sprintf "negative entry (%d,%d)" i j));
          if not (Floatx.approx mat.(i).(j) mat.(j).(i)) then
            raise (Found (Printf.sprintf "asymmetric at (%d,%d)" i j))
        done
      done;
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if not (Floatx.leq ~tol:1e-6 mat.(i).(j) (mat.(i).(k) +. mat.(k).(j))) then
              raise (Found (Printf.sprintf "triangle violation %d-%d via %d" i j k))
          done
        done
      done;
      Ok ()
    with Found s -> Error s

let of_matrix mat =
  (match is_metric mat with Ok () -> () | Error e -> invalid_arg ("Metric.of_matrix: " ^ e));
  let n = Array.length mat in
  of_rows n mat

let of_points pts =
  let n = Array.length pts in
  Array.iteri
    (fun i (x, y) ->
      if not (Float.is_finite x && Float.is_finite y) then
        invalid_arg
          (Printf.sprintf "Metric.of_points: point %d has non-finite coordinates (%g, %g)" i x y))
    pts;
  let flat = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    let xi, yi = pts.(i) in
    for j = 0 to n - 1 do
      let xj, yj = pts.(j) in
      flat.((i * n) + j) <- Float.hypot (xi -. xj) (yi -. yj)
    done
  done;
  { n; flat; version = 1 }

let scale c m =
  if c < 0.0 then invalid_arg "Metric.scale: negative factor";
  { n = m.n; flat = Array.map (fun x -> c *. x) m.flat; version = 1 }

let to_matrix m = Array.init m.n (fun v -> Array.sub m.flat (v * m.n) m.n)

let nearest_dists_into m nodes out =
  if nodes = [] then invalid_arg "Metric.nearest_dists: empty node list";
  if Array.length out < m.n then invalid_arg "Metric.nearest_dists_into: buffer too small";
  for v = 0 to m.n - 1 do
    let base = v * m.n in
    out.(v) <- List.fold_left (fun acc u -> Float.min acc m.flat.(base + u)) infinity nodes
  done

let nearest_dists m nodes =
  let out = Array.make (max 1 m.n) 0.0 in
  nearest_dists_into m nodes out;
  if Array.length out = m.n then out else [||]

(* ----- incremental repair under topology churn -----

   A full [of_graph] recompute runs one Dijkstra per node. A single
   churn event invalidates far fewer rows: an edge-weight decrease (or
   a restored edge) is a pure all-pairs relaxation through that edge
   (O(n^2), no Dijkstra at all), and an increase/removal only touches
   sources whose shortest-path tree used the edge — the caller
   ({!Churn}) selects those rows and hands them here for targeted
   re-computation, reusing one {!Dijkstra.scratch} across the batch.
   Unlike [of_graph], repaired rows permit [infinity]: an unreachable
   pair is exactly what a partition looks like, and the serve layer
   treats a non-finite cost as "drop and count". Each repair writes
   both the row and (by symmetry) the column, so the matrix stays
   exactly symmetric, and bumps [version]. *)

let recompute_rows m g rows =
  if Wgraph.n g <> m.n then invalid_arg "Metric.recompute_rows: graph size mismatch";
  let n = m.n in
  let s = Dijkstra.scratch n in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Metric.recompute_rows: row out of range";
      let dist = Dijkstra.run_scratch s g v in
      Array.blit dist 0 m.flat (v * n) n;
      for u = 0 to n - 1 do
        m.flat.((u * n) + v) <- Array.unsafe_get dist u
      done)
    rows;
  touch m

let relax_edge m ~u ~v ~w =
  if u < 0 || u >= m.n || v < 0 || v >= m.n then invalid_arg "Metric.relax_edge: out of range";
  if not (Float.is_finite w) || w < 0.0 then
    invalid_arg "Metric.relax_edge: weight must be finite and non-negative";
  let n = m.n in
  (* distances to the endpoints after using the cheaper edge once *)
  let du = Array.make n 0.0 and dv = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let diu = m.flat.((i * n) + u) and div_ = m.flat.((i * n) + v) in
    du.(i) <- Float.min diu (div_ +. w);
    dv.(i) <- Float.min div_ (diu +. w)
  done;
  for i = 0 to n - 1 do
    let base = i * n in
    let diu = du.(i) and div_ = dv.(i) in
    for j = 0 to n - 1 do
      let cand = Float.min (diu +. w +. dv.(j)) (div_ +. w +. du.(j)) in
      if cand < Array.unsafe_get m.flat (base + j) then Array.unsafe_set m.flat (base + j) cand
    done
  done;
  touch m

let relax_via m z =
  if z < 0 || z >= m.n then invalid_arg "Metric.relax_via: node out of range";
  let n = m.n in
  let dz = Array.sub m.flat (z * n) n in
  for i = 0 to n - 1 do
    let base = i * n in
    let diz = dz.(i) in
    if Float.is_finite diz then
      for j = 0 to n - 1 do
        let cand = diz +. Array.unsafe_get dz j in
        if cand < Array.unsafe_get m.flat (base + j) then Array.unsafe_set m.flat (base + j) cand
      done
  done;
  touch m

let max_finite m =
  Array.fold_left (fun acc x -> if Float.is_finite x && x > acc then x else acc) 0.0 m.flat

let clamp_infinite m ~limit =
  if not (Float.is_finite limit && limit >= 0.0) then
    invalid_arg "Metric.clamp_infinite: limit must be finite and non-negative";
  {
    n = m.n;
    flat = Array.map (fun x -> if Float.is_finite x then x else limit) m.flat;
    version = 1;
  }

let hash64 m =
  let mix z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  Array.fold_left
    (fun h x -> mix (Int64.add (Int64.mul h 0x100000001b3L) (Int64.bits_of_float x)))
    (mix (Int64.of_int m.n)) m.flat

let nearest m v nodes =
  match nodes with
  | [] -> invalid_arg "Metric.nearest: empty node list"
  | first :: rest ->
      let base = v * m.n in
      List.fold_left
        (fun ((_, bd) as best) u ->
          let du = m.flat.(base + u) in
          if du < bd then (u, du) else best)
        (first, d m v first)
        rest
