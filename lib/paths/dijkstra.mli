(** Shortest paths over {!Dmn_graph.Wgraph} with non-negative weights. *)

open Dmn_graph

(** Result of a (multi-source) run: [dist.(v)] is the distance to the
    closest source ([infinity] when unreachable), [parent.(v)] the
    predecessor on such a shortest path ([-1] at sources and unreachable
    nodes), and [source.(v)] the source that serves [v] ([-1] when
    unreachable). *)
type result = { dist : float array; parent : int array; source : int array }

(** [run g src] computes single-source shortest paths from [src]. *)
val run : Wgraph.t -> int -> result

(** [multi g srcs] computes, for every node, the distance to the nearest
    of the given sources — exactly the "read request to nearest copy"
    primitive of the data management cost model.
    @raise Invalid_argument if [srcs] is empty. *)
val multi : Wgraph.t -> int list -> result

(** Reusable single-source workspace: one distance/parent/source triple
    plus an indexed heap, reset in O(n) per run instead of reallocated.
    One scratch serves one domain at a time — the chunked all-pairs
    closure allocates one per chunk. *)
type scratch

(** [scratch n] supports graphs with at most [n] nodes.
    @raise Invalid_argument if [n < 0]. *)
val scratch : int -> scratch

(** [run_scratch s g src] is [(run g src).dist], computed into [s]'s
    buffers. The returned array is {e borrowed} from [s]: it is
    overwritten by the next [run_scratch] on the same scratch, so
    callers must copy what they keep.
    @raise Invalid_argument if [g] has more nodes than [s] supports or
    [src] is out of range. *)
val run_scratch : scratch -> Wgraph.t -> int -> float array

(** [path r v] reconstructs the node sequence from the serving source to
    [v], inclusive. @raise Invalid_argument if [v] is unreachable. *)
val path : result -> int -> int list

(** [distance g u v] is the shortest-path distance between two nodes. *)
val distance : Wgraph.t -> int -> int -> float
