open Dmn_graph
module Err = Dmn_prelude.Err

type event =
  | Edge_weight of { u : int; v : int; w : float }
  | Edge_down of { u : int; v : int }
  | Edge_up of { u : int; v : int; w : float }
  | Node_down of int
  | Node_up of int

let event_to_string = function
  | Edge_weight { u; v; w } -> Printf.sprintf "edge-weight %d-%d %g" u v w
  | Edge_down { u; v } -> Printf.sprintf "edge-down %d-%d" u v
  | Edge_up { u; v; w } -> Printf.sprintf "edge-up %d-%d %g" u v w
  | Node_down z -> Printf.sprintf "node-down %d" z
  | Node_up z -> Printf.sprintf "node-up %d" z

type override = Removed | Weight of float

(* The network state is (pristine graph, edge overrides, node liveness):
   the current graph is derived, never drifted — the pristine edges with
   overrides applied, plus added edges, minus anything touching a dead
   node. The metric is a private copy of the pristine closure, repaired
   in place after each event with the cheapest sound update (see
   [Metric]'s repair primitives). *)
type t = {
  pristine : Wgraph.t;
  metric : Metric.t;
  alive : bool array;
  overrides : (int * int, override) Hashtbl.t;
  mutable graph : Wgraph.t;
  mutable events_applied : int;
}

let create g m =
  if Wgraph.n g <> Metric.size m then invalid_arg "Churn.create: graph and metric sizes differ";
  {
    pristine = g;
    metric = Metric.copy m;
    alive = Array.make (Wgraph.n g) true;
    overrides = Hashtbl.create 16;
    graph = g;
    events_applied = 0;
  }

let graph t = t.graph
let metric t = t.metric
let alive t z = t.alive.(z)
let events_applied t = t.events_applied
let churned t = t.events_applied > 0

let down_nodes t =
  let acc = ref [] in
  for z = Array.length t.alive - 1 downto 0 do
    if not t.alive.(z) then acc := z :: !acc
  done;
  !acc

let down_count t = List.length (down_nodes t)

let overrides t =
  Hashtbl.fold
    (fun (u, v) ov acc -> ((u, v), match ov with Removed -> None | Weight w -> Some w) :: acc)
    t.overrides []
  |> List.sort compare

let canon u v = if u < v then (u, v) else (v, u)

(* logical edge presence, ignoring node liveness: the pristine edge set
   with overrides applied *)
let present t u v =
  let key = canon u v in
  match Hashtbl.find_opt t.overrides key with
  | Some Removed -> false
  | Some (Weight _) -> true
  | None -> Wgraph.has_edge t.pristine u v

let logical_weight t u v =
  let key = canon u v in
  match Hashtbl.find_opt t.overrides key with
  | Some (Weight w) -> Some w
  | Some Removed -> None
  | None -> ( match Wgraph.edge_weight t.pristine u v with w -> Some w | exception Not_found -> None)

let rebuild t =
  let n = Wgraph.n t.pristine in
  let edges = ref [] in
  List.iter
    (fun (u, v, w0) ->
      match Hashtbl.find_opt t.overrides (u, v) with
      | Some Removed -> ()
      | Some (Weight w) -> edges := (u, v, w) :: !edges
      | None -> edges := (u, v, w0) :: !edges)
    (Wgraph.edges t.pristine);
  Hashtbl.iter
    (fun (u, v) ov ->
      match ov with
      | Weight w when not (Wgraph.has_edge t.pristine u v) -> edges := (u, v, w) :: !edges
      | _ -> ())
    t.overrides;
  let live = List.filter (fun (u, v, _) -> t.alive.(u) && t.alive.(v)) !edges in
  (* hash-order independence: a canonical edge order keeps the CSR
     layout — and with it every Dijkstra tie-break — deterministic.
     The monomorphic comparator matters: rebuild runs on every event,
     and polymorphic compare on edge triples dominates repair time. *)
  let edge_compare (u1, v1, (w1 : float)) (u2, v2, w2) =
    if (u1 : int) <> u2 then compare u1 u2
    else if (v1 : int) <> v2 then compare v1 v2
    else compare w1 w2
  in
  t.graph <- Wgraph.create n (List.sort edge_compare live)

(* A source row can only change when the edge (u, v) of old weight [w]
   sat on one of its shortest-path trees, which forces d(i,v) =
   d(i,u) + w (or symmetrically) up to float slack. The tolerance makes
   the test conservative: a row selected spuriously is recomputed to
   the same distances, a row skipped spuriously would go stale. *)
let edge_tight diu div_ w =
  Float.is_finite diu && diu +. w <= div_ +. (1e-9 *. (1.0 +. Float.abs div_))

let affected_by_edge t ~u ~v ~w_old =
  let m = t.metric in
  let n = Metric.size m in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    let diu = Metric.d m i u and div_ = Metric.d m i v in
    if edge_tight diu div_ w_old || edge_tight div_ diu w_old then acc := i :: !acc
  done;
  !acc

let affected_by_node t z =
  let m = t.metric in
  let n = Metric.size m in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if i = z then acc := i :: !acc
    else
      let diz = Metric.d m i z in
      if Float.is_finite diz then begin
        let hit = ref false in
        let j = ref 0 in
        while (not !hit) && !j < n do
          if !j <> z then begin
            let dij = Metric.d m i !j in
            if
              Float.is_finite dij
              && diz +. Metric.d m z !j <= dij +. (1e-9 *. (1.0 +. dij))
            then hit := true
          end;
          incr j
        done;
        if !hit then acc := i :: !acc
      end
  done;
  !acc

let fail_validation fmt = Err.failf Err.Validation fmt

let apply t ev =
  let n = Wgraph.n t.pristine in
  let check_node what z =
    if z < 0 || z >= n then fail_validation "churn: %s node %d out of range [0, %d)" what z n
  in
  let check_pair u v =
    check_node "edge" u;
    check_node "edge" v;
    if u = v then fail_validation "churn: self-loop %d-%d" u v
  in
  let check_weight w =
    if (not (Float.is_finite w)) || w < 0.0 then
      fail_validation "churn: edge weight %g must be finite and non-negative" w
  in
  (match ev with
  | Edge_weight { u; v; w } ->
      check_pair u v;
      check_weight w;
      (match logical_weight t u v with
      | None -> fail_validation "churn: edge-weight on absent edge %d-%d" u v
      | Some w_old ->
          Hashtbl.replace t.overrides (canon u v) (Weight w);
          if not (t.alive.(u) && t.alive.(v)) then
            (* the edge is absent from the live graph, so neither the
               graph nor the metric changes; the next structural
               rebuild re-derives the weight from the override *)
            Metric.touch t.metric
          else begin
            (* weight-only change: patch the CSR in place of a full
               rebuild — the edge set is unchanged, and rebuild's
               validation + sort would dominate the repair itself *)
            t.graph <- Wgraph.with_edge_weight t.graph u v w;
            if w < w_old then Metric.relax_edge t.metric ~u ~v ~w
            else if w > w_old then
              Metric.recompute_rows t.metric t.graph (affected_by_edge t ~u ~v ~w_old)
            else Metric.touch t.metric
          end)
  | Edge_down { u; v } ->
      check_pair u v;
      (match logical_weight t u v with
      | None -> fail_validation "churn: edge-down on absent edge %d-%d" u v
      | Some w_old ->
          let affected =
            if t.alive.(u) && t.alive.(v) then affected_by_edge t ~u ~v ~w_old else []
          in
          Hashtbl.replace t.overrides (canon u v) Removed;
          rebuild t;
          if affected = [] then Metric.touch t.metric
          else Metric.recompute_rows t.metric t.graph affected)
  | Edge_up { u; v; w } ->
      check_pair u v;
      check_weight w;
      if present t u v then fail_validation "churn: edge-up on already-present edge %d-%d" u v;
      Hashtbl.replace t.overrides (canon u v) (Weight w);
      rebuild t;
      if t.alive.(u) && t.alive.(v) then Metric.relax_edge t.metric ~u ~v ~w
      else Metric.touch t.metric
  | Node_down z ->
      check_node "down" z;
      if not t.alive.(z) then fail_validation "churn: node-down on already-down node %d" z;
      let affected = affected_by_node t z in
      t.alive.(z) <- false;
      rebuild t;
      Metric.recompute_rows t.metric t.graph affected
  | Node_up z ->
      check_node "up" z;
      if t.alive.(z) then fail_validation "churn: node-up on live node %d" z;
      t.alive.(z) <- true;
      rebuild t;
      Metric.recompute_rows t.metric t.graph [ z ];
      Metric.relax_via t.metric z);
  t.events_applied <- t.events_applied + 1
