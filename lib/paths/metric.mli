(** Finite metric spaces over node ids [0 .. n-1].

    The paper's cost function [ct] induces a metric as the shortest-path
    closure of the edge costs (Section 1.1); all placement algorithms
    are phrased against this abstraction so they also run on matrices
    and point sets. *)

open Dmn_graph

type t

(** A borrowed view of one source row of the flat distance storage (see
    {!row}); indexing through it is branch-free. *)
type row

val size : t -> int

(** [version m] is the metric's repair version: 1 at construction,
    bumped by every in-place repair ({!recompute_rows}, {!relax_edge},
    {!relax_via}, {!touch}). Consumers that memoize derived distance
    data key it on this counter so a topology change can never serve a
    stale table. *)
val version : t -> int

(** [touch m] bumps {!version} without changing any distance — for
    churn events that alter the network state but provably leave every
    shortest path intact. *)
val touch : t -> unit

(** [copy m] is a private deep copy (same distances and version);
    in-place repairs on the copy leave [m] untouched. *)
val copy : t -> t

(** [d m u v] is the distance; [d m v v = 0]. *)
val d : t -> int -> int -> float

(** [unsafe_d m u v] is [d m u v] without bounds checks. Both indices
    must be in [0, size m). *)
val unsafe_d : t -> int -> int -> float

(** [row m v] is the source row of [v]: distances are stored row-major
    in a single flat unboxed array, so a row is a contiguous slice.
    @raise Invalid_argument if [v] is out of range. *)
val row : t -> int -> row

(** [row_get r u] is [d m v u] for the row of [v] — unsafe-indexed: [u]
    must be in [0, size m). This is the serve path's inner read. *)
val row_get : row -> int -> float

(** [of_graph ?pool ?chunks g] is the shortest-path closure computed
    with one Dijkstra per node, fanned out in chunked batches over
    [?pool] (default {!Dmn_prelude.Pool.default}); each chunk reuses one
    Dijkstra scratch and writes its rows directly into the flat storage.
    [?chunks] tunes the batch count (see
    {!Dmn_prelude.Pool.parallel_chunks}). [g] must be connected. The
    result is bit-identical to the sequential closure at any domain or
    chunk count. *)
val of_graph : ?pool:Dmn_prelude.Pool.t -> ?chunks:int -> Wgraph.t -> t

(** [of_graph_floyd g] computes the same closure with Floyd–Warshall
    (used to cross-check the Dijkstra closure in tests). *)
val of_graph_floyd : Wgraph.t -> t

(** [of_matrix mat] wraps an explicit distance matrix.
    @raise Invalid_argument if it is not square, has a non-zero
    diagonal, negative entries, is asymmetric, or violates the triangle
    inequality beyond float slack. *)
val of_matrix : float array array -> t

(** [of_points pts] is the Euclidean metric over 2-d points.
    @raise Invalid_argument if any coordinate is NaN or infinite, naming
    the offending point index. *)
val of_points : (float * float) array -> t

(** [scale c m] multiplies every distance by [c >= 0]. *)
val scale : float -> t -> t

(** [to_matrix m] materializes the full matrix (row-major copy of the
    flat storage). *)
val to_matrix : t -> float array array

(** [nearest m v nodes] is [(u, d m v u)] minimizing the distance over
    [nodes]. @raise Invalid_argument on an empty list. *)
val nearest : t -> int -> int list -> int * float

(** [nearest_dists m nodes] is, for every node [v], the distance from
    [v] to the nearest element of [nodes] — the shared nearest-copy
    primitive of cost evaluation and phase 2.
    @raise Invalid_argument on an empty list. *)
val nearest_dists : t -> int list -> float array

(** [nearest_dists_into m nodes out] is {!nearest_dists} written into
    the first [size m] cells of a caller-owned buffer — the
    allocation-free variant for scratch-space reuse in chunked solves.
    @raise Invalid_argument on an empty list or a buffer shorter than
    [size m]. *)
val nearest_dists_into : t -> int list -> float array -> unit

(** [is_metric mat] checks the {!of_matrix} requirements and returns an
    explanation on failure. *)
val is_metric : float array array -> (unit, string) result

(** {2 Incremental repair under topology churn}

    In-place updates used by {!Churn} to keep a metric consistent with
    a changing graph without paying a full {!of_graph} recompute per
    event. All three write both the affected rows and (by symmetry) the
    matching columns, permit [infinity] for pairs a partition has
    disconnected, and bump {!version}. *)

(** [recompute_rows m g rows] re-runs one Dijkstra per listed source on
    the {e current} graph [g] and overwrites those rows and columns.
    One {!Dijkstra.scratch} is reused across the batch. Unreachable
    targets are stored as [infinity] (unlike {!of_graph}, which rejects
    them — a repaired metric is allowed to describe a partitioned
    network). @raise Invalid_argument on a size mismatch or an
    out-of-range row. *)
val recompute_rows : t -> Wgraph.t -> int list -> unit

(** [relax_edge m ~u ~v ~w] applies the decrease-only all-pairs
    relaxation through an edge [(u, v)] of weight [w] — the exact
    repair for a new or cheapened edge: [d'(i,j) = min(d(i,j),
    d'(i,u) + w + d'(v,j), d'(i,v) + w + d'(u,j))], O(n²) with no
    Dijkstra. @raise Invalid_argument on out-of-range endpoints or a
    non-finite or negative weight. *)
val relax_edge : t -> u:int -> v:int -> w:float -> unit

(** [relax_via m z] relaxes every pair through node [z], whose row must
    already hold current distances ([recompute_rows m g [z]] first) —
    the repair for a revived node: all new shortest paths pass through
    it. *)
val relax_via : t -> int -> unit

(** [max_finite m] is the largest finite distance (0 for an empty or
    fully disconnected metric). *)
val max_finite : t -> float

(** [clamp_infinite m ~limit] is a fresh metric with every non-finite
    distance replaced by [limit] — the finite stand-in handed to the
    placement solver when re-optimizing over a partitioned network
    (the solver's cost sums must not see [infinity], which poisons
    zero-frequency products into NaN). *)
val clamp_infinite : t -> limit:float -> t

(** [hash64 m] is an order-sensitive 64-bit digest of the exact float
    bits of the distance matrix — the integrity stamp checkpoints use
    to prove a resumed run reconstructed the churned metric
    byte-identically. *)
val hash64 : t -> int64
