(** Indexed min-heap over keys [0 .. n-1] with decrease-key, the
    classic Dijkstra workhorse. Each key appears at most once. *)

type t

(** [create n] supports keys [0 .. n-1]. *)
val create : int -> t

val is_empty : t -> bool
val size : t -> int
val mem : t -> int -> bool

(** [insert h k p] adds key [k] with priority [p].
    @raise Invalid_argument if [k] is already present. *)
val insert : t -> int -> float -> unit

(** [decrease h k p] lowers [k]'s priority to [p]; a no-op when [p] is
    not lower. @raise Invalid_argument if [k] is absent. *)
val decrease : t -> int -> float -> unit

(** [insert_or_decrease h k p] combines the two operations. *)
val insert_or_decrease : t -> int -> float -> unit

(** [pop_min h] removes the minimum [(key, priority)].
    @raise Not_found on an empty heap. *)
val pop_min : t -> int * float

(** [clear h] removes every key in O(size). A fully drained heap is
    already empty; this is the reset for reusing one heap across many
    Dijkstra runs even after an abandoned run. *)
val clear : t -> unit

(** [priority h k] is [k]'s current priority.
    @raise Invalid_argument if absent. *)
val priority : t -> int -> float
