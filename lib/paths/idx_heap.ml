type t = {
  heap : int array; (* positions -> keys *)
  pos : int array; (* keys -> positions, -1 when absent *)
  prio : float array; (* keys -> priorities *)
  mutable len : int;
}

let create n =
  { heap = Array.make (max 1 n) 0; pos = Array.make (max 1 n) (-1); prio = Array.make (max 1 n) 0.0; len = 0 }

let is_empty h = h.len = 0
let size h = h.len
let mem h k = h.pos.(k) >= 0

let swap h i j =
  let ki = h.heap.(i) and kj = h.heap.(j) in
  h.heap.(i) <- kj;
  h.heap.(j) <- ki;
  h.pos.(ki) <- j;
  h.pos.(kj) <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prio.(h.heap.(i)) < h.prio.(h.heap.(parent)) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.prio.(h.heap.(l)) < h.prio.(h.heap.(!smallest)) then smallest := l;
  if r < h.len && h.prio.(h.heap.(r)) < h.prio.(h.heap.(!smallest)) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let insert h k p =
  if mem h k then invalid_arg "Idx_heap.insert: key present";
  h.heap.(h.len) <- k;
  h.pos.(k) <- h.len;
  h.prio.(k) <- p;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let decrease h k p =
  if not (mem h k) then invalid_arg "Idx_heap.decrease: key absent";
  if p < h.prio.(k) then begin
    h.prio.(k) <- p;
    sift_up h h.pos.(k)
  end

let insert_or_decrease h k p = if mem h k then decrease h k p else insert h k p

let pop_min h =
  if h.len = 0 then raise Not_found;
  let k = h.heap.(0) in
  let p = h.prio.(k) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    let last = h.heap.(h.len) in
    h.heap.(0) <- last;
    h.pos.(last) <- 0
  end;
  h.pos.(k) <- -1;
  if h.len > 0 then sift_down h 0;
  (k, p)

let clear h =
  for i = 0 to h.len - 1 do
    h.pos.(h.heap.(i)) <- -1
  done;
  h.len <- 0

let priority h k =
  if not (mem h k) then invalid_arg "Idx_heap.priority: key absent";
  h.prio.(k)
