(** Weighted undirected graphs with non-negative edge costs.

    Nodes are integers [0 .. n-1]. The structure is immutable after
    construction; adjacency is stored as arrays for cache-friendly
    traversal in the shortest-path and spanning-tree substrates. *)

type t

(** An undirected edge [(u, v, w)] with [u <> v] and [w >= 0]. *)
type edge = int * int * float

(** [create n edges] builds a graph on [n] nodes. A duplicate edge
    (same unordered endpoint pair listed twice) is rejected with a
    structured {!Dmn_prelude.Err.Error} (kind [Validation]) naming the
    pair; self-loops, non-finite (NaN or infinite) or negative weights
    and out-of-range endpoints raise [Invalid_argument]. *)
val create : int -> edge list -> t

val n : t -> int
val m : t -> int

(** [edges g] lists each undirected edge once, with [u < v]. *)
val edges : t -> edge list

(** [neighbors g v] is the array of [(neighbor, weight)] pairs of [v].
    The returned array must not be mutated. *)
val neighbors : t -> int -> (int * float) array

(** [csr g] is the flat CSR adjacency [(xadj, nodes, weights)]: the
    neighbors of [v] are [nodes.(i)] with weight [weights.(i)] for
    [xadj.(v) <= i < xadj.(v + 1)], in {!iter_neighbors} order. The
    arrays are the graph's own storage — do not mutate. *)
val csr : t -> int array * int array * float array

(** [iter_neighbors g v f] calls [f u w] for every edge [(v, u, w)]. *)
val iter_neighbors : t -> int -> (int -> float -> unit) -> unit

val degree : t -> int -> int

(** [max_degree g] is 0 for an edgeless graph. *)
val max_degree : t -> int

(** [edge_weight g u v] is the weight of edge [(u, v)].
    @raise Not_found if absent. *)
val edge_weight : t -> int -> int -> float

val has_edge : t -> int -> int -> bool

(** [with_edge_weight g u v w] is [g] with the weight of the existing
    edge [(u, v)] replaced by [w] — a fresh graph sharing adjacency
    structure (and hence CSR layout and Dijkstra tie-breaks) with [g],
    built in O(m) without re-validating the edge set. The cheap path
    for weight-only topology churn.
    @raise Not_found if the edge is absent.
    @raise Invalid_argument on out-of-range endpoints, a self-loop, or
    a weight that is negative or not finite. *)
val with_edge_weight : t -> int -> int -> float -> t

(** [bfs_hops g src] is the hop distance from [src] to every node, [-1]
    for nodes unreachable from [src]. *)
val bfs_hops : t -> int -> int array

(** [is_connected g] holds when every node is reachable from node 0 (a
    graph with 0 nodes is connected). *)
val is_connected : t -> bool

(** [is_tree g] holds when [g] is connected with [n - 1] edges. *)
val is_tree : t -> bool

(** [map_weights f g] rebuilds the graph with [f u v w] as new weight of
    each edge. *)
val map_weights : (int -> int -> float -> float) -> t -> t

(** [total_weight g] sums all edge weights. *)
val total_weight : t -> float

(** [unweighted_diameter g] is the maximum over node pairs of the hop
    count of a shortest hop path; the graph must be connected. *)
val unweighted_diameter : t -> int
