module Err = Dmn_prelude.Err

type edge = int * int * float

(* Adjacency is CSR (compressed sparse rows): the neighbors of [v] are
   [anodes.(i)] with weight [aw.(i)] for [xadj.(v) <= i < xadj.(v+1)].
   Three flat arrays — no per-node pointer array and no boxed pairs —
   so the Dijkstra relaxation loop of the metric closure walks
   contiguous memory. *)
type t = {
  n : int;
  edges : edge array; (* canonical: u < v *)
  xadj : int array; (* length n + 1 *)
  anodes : int array;
  aw : float array;
}

let create n edge_list =
  if n < 0 then invalid_arg "Wgraph.create: negative node count";
  let seen = Hashtbl.create (List.length edge_list) in
  let canon =
    List.map
      (fun (u, v, w) ->
        if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Wgraph.create: endpoint out of range";
        if u = v then invalid_arg "Wgraph.create: self-loop";
        if w < 0.0 || not (Float.is_finite w) then
          invalid_arg "Wgraph.create: edge weight must be finite and non-negative";
        let u, v = if u < v then (u, v) else (v, u) in
        if Hashtbl.mem seen (u, v) then
          Err.failf Err.Validation "Wgraph.create: duplicate edge %d-%d" u v;
        Hashtbl.add seen (u, v) ();
        (u, v, w))
      edge_list
  in
  let edges = Array.of_list canon in
  let deg = Array.make (n + 1) 0 in
  Array.iter
    (fun (u, v, _) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let xadj = Array.make (n + 1) 0 in
  for v = 1 to n do
    xadj.(v) <- xadj.(v - 1) + deg.(v - 1)
  done;
  let half = 2 * Array.length edges in
  let anodes = Array.make half 0 and aw = Array.make half 0.0 in
  let fill = Array.sub xadj 0 n in
  Array.iter
    (fun (u, v, w) ->
      anodes.(fill.(u)) <- v;
      aw.(fill.(u)) <- w;
      fill.(u) <- fill.(u) + 1;
      anodes.(fill.(v)) <- u;
      aw.(fill.(v)) <- w;
      fill.(v) <- fill.(v) + 1)
    edges;
  { n; edges; xadj; anodes; aw }

let n g = g.n
let m g = Array.length g.edges
let edges g = Array.to_list g.edges
let csr g = (g.xadj, g.anodes, g.aw)

let neighbors g v =
  let lo = g.xadj.(v) in
  Array.init (g.xadj.(v + 1) - lo) (fun i -> (g.anodes.(lo + i), g.aw.(lo + i)))

let iter_neighbors g v f =
  for i = g.xadj.(v) to g.xadj.(v + 1) - 1 do
    f (Array.unsafe_get g.anodes i) (Array.unsafe_get g.aw i)
  done

let degree g v = g.xadj.(v + 1) - g.xadj.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let edge_weight g u v =
  let hi = g.xadj.(u + 1) in
  let rec find i =
    if i >= hi then raise Not_found
    else if g.anodes.(i) = v then g.aw.(i)
    else find (i + 1)
  in
  find g.xadj.(u)

let has_edge g u v = match edge_weight g u v with _ -> true | exception Not_found -> false

let with_edge_weight g u v w =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then
    invalid_arg "Wgraph.with_edge_weight: endpoint out of range";
  if u = v then invalid_arg "Wgraph.with_edge_weight: self-loop";
  if w < 0.0 || not (Float.is_finite w) then
    invalid_arg "Wgraph.with_edge_weight: edge weight must be finite and non-negative";
  let cu, cv = if u < v then (u, v) else (v, u) in
  let edges = Array.copy g.edges in
  let found = ref false in
  Array.iteri
    (fun i (a, b, _) ->
      if a = cu && b = cv then begin
        edges.(i) <- (cu, cv, w);
        found := true
      end)
    edges;
  if not !found then raise Not_found;
  let aw = Array.copy g.aw in
  for i = g.xadj.(cu) to g.xadj.(cu + 1) - 1 do
    if g.anodes.(i) = cv then aw.(i) <- w
  done;
  for i = g.xadj.(cv) to g.xadj.(cv + 1) - 1 do
    if g.anodes.(i) = cu then aw.(i) <- w
  done;
  { g with edges; aw }

let bfs_hops g src =
  let dist = Array.make g.n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    iter_neighbors g v (fun u _ ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u q
        end)
  done;
  dist

let is_connected g =
  if g.n = 0 then true
  else
    let dist = bfs_hops g 0 in
    Array.for_all (fun d -> d >= 0) dist

let is_tree g = m g = g.n - 1 && is_connected g

let map_weights f g =
  let edge_list = Array.to_list (Array.map (fun (u, v, w) -> (u, v, f u v w)) g.edges) in
  create g.n edge_list

let total_weight g = Array.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 g.edges

let unweighted_diameter g =
  if not (is_connected g) then invalid_arg "Wgraph.unweighted_diameter: disconnected graph";
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    let dist = bfs_hops g v in
    Array.iter (fun d -> if d > !best then best := d) dist
  done;
  !best
