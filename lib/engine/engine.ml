module I = Dmn_core.Instance
module P = Dmn_core.Placement
module A = Dmn_core.Approx
module Serial = Dmn_core.Serial
module Sg = Dmn_dynamic.Strategy
module Stream = Dmn_dynamic.Stream
module Pool = Dmn_prelude.Pool
module Metrics = Dmn_prelude.Metrics
module Stats = Dmn_prelude.Stats
module Err = Dmn_prelude.Err
open Dmn_paths

type policy = Static | Resolve | Cache

let policy_name = function Static -> "static" | Resolve -> "resolve" | Cache -> "cache"

let policy_of_string = function
  | "static" -> Some Static
  | "resolve" -> Some Resolve
  | "cache" -> Some Cache
  | _ -> None

type config = {
  policy : policy;
  epoch : int;
  storage_period : int option;
  solver : A.config;
  replicate_after : int;
  drop_after : int;
}

let default_config =
  {
    policy = Resolve;
    epoch = 1000;
    storage_period = None;
    solver = A.default_config;
    replicate_after = 4;
    drop_after = 8;
  }

type epoch_stats = {
  index : int;
  events : int;
  reads : int;
  writes : int;
  serving : float;
  storage : float;
  migration : float;
  resolves : int;
  copies : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

type totals = {
  events : int;
  reads : int;
  writes : int;
  serving : float;
  storage : float;
  migration : float;
  resolves : int;
  final_copies : int;
}

let total_cost t = t.serving +. t.storage +. t.migration

type result = {
  policy : policy;
  epoch_size : int;
  period : int;
  epochs : epoch_stats list;
  totals : totals;
  snapshots : (string * Metrics.value) list list;
  final : (string * Metrics.value) list;
}

let default_period inst ~who =
  let total = ref 0 in
  for x = 0 to I.objects inst - 1 do
    total := !total + I.total_requests inst ~x
  done;
  if !total = 0 then
    invalid_arg
      (Printf.sprintf
         "%s: the instance has zero request volume, so there is no default storage period; \
          pass ~storage_period explicitly"
         who);
  !total

(* All instruments of a run, registered once so snapshots share one
   stable field order. *)
type instruments = {
  reg : Metrics.t;
  c_events : Metrics.counter;
  c_reads : Metrics.counter;
  c_writes : Metrics.counter;
  c_resolves : Metrics.counter;
  g_epoch : Metrics.gauge;
  g_events : Metrics.gauge;
  g_reads : Metrics.gauge;
  g_writes : Metrics.gauge;
  g_serving : Metrics.gauge;
  g_storage : Metrics.gauge;
  g_migration : Metrics.gauge;
  g_resolves : Metrics.gauge;
  g_copies : Metrics.gauge;
  g_p50 : Metrics.gauge;
  g_p95 : Metrics.gauge;
  g_p99 : Metrics.gauge;
  h_cost : Metrics.histogram;
}

let make_instruments () =
  (* sequenced lets, not a record literal: field expressions evaluate
     right-to-left and would register the instruments in reverse *)
  let reg = Metrics.create () in
  let c_events = Metrics.counter reg "events_total" in
  let c_reads = Metrics.counter reg "reads_total" in
  let c_writes = Metrics.counter reg "writes_total" in
  let c_resolves = Metrics.counter reg "resolves_total" in
  let g_epoch = Metrics.gauge reg "epoch" in
  let g_events = Metrics.gauge reg "epoch_events" in
  let g_reads = Metrics.gauge reg "epoch_reads" in
  let g_writes = Metrics.gauge reg "epoch_writes" in
  let g_serving = Metrics.gauge reg "epoch_serving" in
  let g_storage = Metrics.gauge reg "epoch_storage" in
  let g_migration = Metrics.gauge reg "epoch_migration" in
  let g_resolves = Metrics.gauge reg "epoch_resolves" in
  let g_copies = Metrics.gauge reg "copies" in
  let g_p50 = Metrics.gauge reg "request_cost_p50" in
  let g_p95 = Metrics.gauge reg "request_cost_p95" in
  let g_p99 = Metrics.gauge reg "request_cost_p99" in
  let h_cost = Metrics.histogram reg "request_cost" in
  {
    reg;
    c_events;
    c_reads;
    c_writes;
    c_resolves;
    g_epoch;
    g_events;
    g_reads;
    g_writes;
    g_serving;
    g_storage;
    g_migration;
    g_resolves;
    g_copies;
    g_p50;
    g_p95;
    g_p99;
    h_cost;
  }

let run ?pool ?(config = default_config) inst placement events =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  if config.epoch <= 0 then invalid_arg "Engine.run: epoch must be positive";
  let period =
    match config.storage_period with
    | Some p ->
        if p <= 0 then invalid_arg "Engine.run: storage_period must be positive";
        p
    | None -> default_period inst ~who:"Engine.run"
  in
  (match P.validate inst placement with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.run: initial placement: " ^ msg));
  let n = I.n inst and k = I.objects inst in
  let metric = I.metric inst in
  let copies = Array.init k (fun x -> P.copies placement ~x) in
  (* The cache policy delegates per-event decisions to the threshold
     strategy; its state is per-object, so pool tasks sharded by object
     mutate disjoint slots. *)
  let cache_strategy =
    match config.policy with
    | Cache ->
        Some
          (Sg.threshold_caching ~initial:placement ~replicate_after:config.replicate_after
             ~drop_after:config.drop_after inst)
    | Static | Resolve -> None
  in
  let current_copies x =
    match cache_strategy with Some s -> s.Sg.copies ~x | None -> copies.(x)
  in
  let total_copies () =
    let acc = ref 0 in
    for x = 0 to k - 1 do
      acc := !acc + List.length (current_copies x)
    done;
    !acc
  in
  let ins = make_instruments () in
  (* epoch working state, reused across epochs *)
  let dummy = { Stream.node = 0; x = 0; kind = Stream.Read } in
  let buffer = Array.make config.epoch dummy in
  let counts = Array.make k 0 in
  let slot_of_x = Array.make k (-1) in
  let seen = ref 0 in
  let rec fill seq m =
    if m = config.epoch then (m, seq)
    else
      match Seq.uncons seq with
      | None -> (m, Seq.empty)
      | Some (({ Stream.node; x; _ } as e), rest) ->
          if node < 0 || node >= n then
            invalid_arg
              (Printf.sprintf "Engine.run: event %d: node %d out of range [0, %d)" !seen node n);
          if x < 0 || x >= k then
            invalid_arg
              (Printf.sprintf "Engine.run: event %d: object %d out of range [0, %d)" !seen x k);
          incr seen;
          buffer.(m) <- e;
          fill rest (m + 1)
  in
  let epochs = ref [] in
  let snapshots = ref [] in
  let t_events = ref 0
  and t_reads = ref 0
  and t_serving = ref 0.0
  and t_storage = ref 0.0
  and t_migration = ref 0.0
  and t_resolves = ref 0 in
  let rec loop seq index =
    let m, rest = fill seq 0 in
    if m = 0 then ()
    else begin
      (* shard the epoch's events by object id *)
      Array.fill counts 0 k 0;
      for i = 0 to m - 1 do
        counts.(buffer.(i).Stream.x) <- counts.(buffer.(i).Stream.x) + 1
      done;
      let active = ref [] in
      for x = k - 1 downto 0 do
        if counts.(x) > 0 then active := x :: !active
      done;
      let active = Array.of_list !active in
      let na = Array.length active in
      Array.iteri (fun i x -> slot_of_x.(x) <- i) active;
      let obj_events = Array.map (fun x -> Array.make counts.(x) dummy) active in
      let fill_pos = Array.make na 0 in
      for i = 0 to m - 1 do
        let s = slot_of_x.(buffer.(i).Stream.x) in
        obj_events.(s).(fill_pos.(s)) <- buffer.(i);
        fill_pos.(s) <- fill_pos.(s) + 1
      done;
      (* parallel serving: one task per active object, each writing its
         private cost array; objects are independent in the cost model,
         so the shard results do not depend on scheduling *)
      let costs_per_obj =
        Pool.parallel_init pool na (fun s ->
            let x = active.(s) in
            let evs = obj_events.(s) in
            match cache_strategy with
            | Some strat ->
                Array.map (fun e -> strat.Sg.serve ~x ~node:e.Stream.node e.Stream.kind) evs
            | None ->
                let cset = copies.(x) in
                Array.map (fun e -> Sg.serve_cost inst ~copies:cset ~node:e.Stream.node e.Stream.kind) evs)
      in
      (* sequential merge in object order: float sums, histogram
         observations and the percentile sample are all accumulated
         here, in a scheduling-independent order *)
      let epoch_costs = Array.make m 0.0 in
      let pos = ref 0 in
      let serving = ref 0.0 and reads = ref 0 in
      for s = 0 to na - 1 do
        let evs = obj_events.(s) and cs = costs_per_obj.(s) in
        for i = 0 to Array.length cs - 1 do
          let c = cs.(i) in
          serving := !serving +. c;
          epoch_costs.(!pos) <- c;
          incr pos;
          Metrics.observe ins.h_cost c;
          if evs.(i).Stream.kind = Stream.Read then incr reads
        done
      done;
      let writes = m - !reads in
      (* rent on the copy sets held after serving, pro-rated by the
         epoch's share of the storage period *)
      let frac = float_of_int m /. float_of_int period in
      let storage = ref 0.0 in
      for x = 0 to k - 1 do
        List.iter (fun c -> storage := !storage +. (I.cs inst c *. frac)) (current_copies x)
      done;
      (* epoch re-optimization: re-solve every object that saw traffic
         on the observed frequencies, with storage fees scaled to the
         epoch's share of the period so the solver faces the same
         storage-vs-communication tradeoff the engine charges *)
      let migration = ref 0.0 and resolves = ref 0 in
      (match config.policy with
      | Static | Cache -> ()
      | Resolve ->
          let fr = Array.make_matrix k n 0 and fw = Array.make_matrix k n 0 in
          for i = 0 to m - 1 do
            let { Stream.node; x; kind } = buffer.(i) in
            match kind with
            | Stream.Read -> fr.(x).(node) <- fr.(x).(node) + 1
            | Stream.Write -> fw.(x).(node) <- fw.(x).(node) + 1
          done;
          let scaled_cs = Array.init n (fun v -> I.cs inst v *. frac) in
          let einst = I.of_metric metric ~cs:scaled_cs ~fr ~fw in
          let solved =
            Pool.parallel_init pool na (fun s ->
                A.place_object ~config:config.solver einst ~x:active.(s))
          in
          resolves := na;
          for s = 0 to na - 1 do
            let x = active.(s) in
            let old = copies.(x) in
            List.iter
              (fun c ->
                if not (List.mem c old) then
                  let d =
                    List.fold_left (fun acc o -> Float.min acc (Metric.d metric c o)) infinity old
                  in
                  migration := !migration +. d)
              solved.(s);
            copies.(x) <- solved.(s)
          done);
      let copies_now = total_copies () in
      let p50 = Stats.percentile epoch_costs 50.0
      and p95 = Stats.percentile epoch_costs 95.0
      and p99 = Stats.percentile epoch_costs 99.0 in
      Metrics.add ins.c_events m;
      Metrics.add ins.c_reads !reads;
      Metrics.add ins.c_writes writes;
      Metrics.add ins.c_resolves !resolves;
      Metrics.set ins.g_epoch (float_of_int index);
      Metrics.set ins.g_events (float_of_int m);
      Metrics.set ins.g_reads (float_of_int !reads);
      Metrics.set ins.g_writes (float_of_int writes);
      Metrics.set ins.g_serving !serving;
      Metrics.set ins.g_storage !storage;
      Metrics.set ins.g_migration !migration;
      Metrics.set ins.g_resolves (float_of_int !resolves);
      Metrics.set ins.g_copies (float_of_int copies_now);
      Metrics.set ins.g_p50 p50;
      Metrics.set ins.g_p95 p95;
      Metrics.set ins.g_p99 p99;
      snapshots := Metrics.snapshot ins.reg :: !snapshots;
      epochs :=
        {
          index;
          events = m;
          reads = !reads;
          writes;
          serving = !serving;
          storage = !storage;
          migration = !migration;
          resolves = !resolves;
          copies = copies_now;
          p50;
          p95;
          p99;
        }
        :: !epochs;
      t_events := !t_events + m;
      t_reads := !t_reads + !reads;
      t_serving := !t_serving +. !serving;
      t_storage := !t_storage +. !storage;
      t_migration := !t_migration +. !migration;
      t_resolves := !t_resolves + !resolves;
      loop rest (index + 1)
    end
  in
  loop events 0;
  {
    policy = config.policy;
    epoch_size = config.epoch;
    period;
    epochs = List.rev !epochs;
    totals =
      {
        events = !t_events;
        reads = !t_reads;
        writes = !t_events - !t_reads;
        serving = !t_serving;
        storage = !t_storage;
        migration = !t_migration;
        resolves = !t_resolves;
        final_copies = total_copies ();
      };
    snapshots = List.rev !snapshots;
    final = Metrics.snapshot ins.reg;
  }

let of_trace_event { Serial.Trace.node; x; write } =
  { Stream.node; x; kind = (if write then Stream.Write else Stream.Read) }

let run_trace ?pool ?config inst placement path =
  Serial.Trace.with_reader path (fun header events ->
      if header.Serial.Trace.nodes <> I.n inst || header.Serial.Trace.objects <> I.objects inst
      then
        Err.failf ~file:path Err.Validation
          "trace header (%d nodes, %d objects) does not match the instance (%d nodes, %d objects)"
          header.Serial.Trace.nodes header.Serial.Trace.objects (I.n inst) (I.objects inst);
      run ?pool ?config inst placement (Seq.map of_trace_event events))

let metrics_json inst r =
  let buf = Buffer.create 4096 in
  let fl = Metrics.json_float in
  Buffer.add_string buf "{\"dmnet\":\"replay-metrics\",\"version\":1";
  Buffer.add_string buf (Printf.sprintf ",\"policy\":%S" (policy_name r.policy));
  Buffer.add_string buf (Printf.sprintf ",\"epoch_size\":%d" r.epoch_size);
  Buffer.add_string buf (Printf.sprintf ",\"storage_period\":%d" r.period);
  Buffer.add_string buf (Printf.sprintf ",\"nodes\":%d" (I.n inst));
  Buffer.add_string buf (Printf.sprintf ",\"objects\":%d" (I.objects inst));
  Buffer.add_string buf ",\"epochs\":[";
  List.iteri
    (fun i snap ->
      if i > 0 then Buffer.add_char buf ',';
      let scalar = List.filter (fun (_, v) -> match v with Metrics.Hist _ -> false | _ -> true) snap in
      Buffer.add_string buf (Metrics.snapshot_to_json scalar))
    r.snapshots;
  Buffer.add_char buf ']';
  let t = r.totals in
  Buffer.add_string buf
    (Printf.sprintf
       ",\"totals\":{\"events\":%d,\"reads\":%d,\"writes\":%d,\"serving\":%s,\"storage\":%s,\"migration\":%s,\"resolves\":%d,\"final_copies\":%d,\"total_cost\":%s}"
       t.events t.reads t.writes (fl t.serving) (fl t.storage) (fl t.migration) t.resolves
       t.final_copies
       (fl (total_cost t)));
  (match List.assoc_opt "request_cost" r.final with
  | Some (Metrics.Hist _ as h) ->
      Buffer.add_string buf ",\"request_cost\":";
      Buffer.add_string buf (Metrics.value_to_json h)
  | _ -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let write_metrics path inst r = Serial.write_file path (metrics_json inst r ^ "\n")
