module I = Dmn_core.Instance
module P = Dmn_core.Placement
module A = Dmn_core.Approx
module Serial = Dmn_core.Serial
module Ckpt = Dmn_core.Serial.Checkpoint
module Ckpt_store = Dmn_core.Ckpt_store
module Wgraph = Dmn_graph.Wgraph
module Sg = Dmn_dynamic.Strategy
module Sc = Dmn_dynamic.Serve_cache
module Stream = Dmn_dynamic.Stream
module Pool = Dmn_prelude.Pool
module Metrics = Dmn_prelude.Metrics
module Stats = Dmn_prelude.Stats
module Err = Dmn_prelude.Err
open Dmn_paths

type policy = Static | Resolve | Cache

let policy_name = function Static -> "static" | Resolve -> "resolve" | Cache -> "cache"

let policy_of_string = function
  | "static" -> Some Static
  | "resolve" -> Some Resolve
  | "cache" -> Some Cache
  | _ -> None

type config = {
  policy : policy;
  epoch : int;
  storage_period : int option;
  solver : A.config;
  replicate_after : int;
  drop_after : int;
  attempts : int;
  solve_deadline_s : float option;
  backoff_s : float;
  serve_cache : bool;
  dirty_eps : float;
  solve_cache : int;
}

let default_config =
  {
    policy = Resolve;
    epoch = 1000;
    storage_period = None;
    solver = A.default_config;
    replicate_after = 4;
    drop_after = 8;
    attempts = 3;
    solve_deadline_s = None;
    backoff_s = 0.0;
    serve_cache = true;
    dirty_eps = 0.0;
    solve_cache = 0;
  }

type checkpointing = { dir : string; every : int; keep : int }

type epoch_stats = {
  index : int;
  events : int;
  reads : int;
  writes : int;
  dropped : int;
  serving : float;
  storage : float;
  migration : float;
  resolves : int;
  solve_retries : int;
  solve_fallbacks : int;
  solve_skipped : int;
  dirty : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  emergency : int;
  topo : int;
  copies : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

type totals = {
  events : int;
  reads : int;
  writes : int;
  dropped : int;
  serving : float;
  storage : float;
  migration : float;
  resolves : int;
  solve_retries : int;
  solve_fallbacks : int;
  solve_skipped : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  emergency : int;
  topo : int;
  final_copies : int;
}

let total_cost t = t.serving +. t.storage +. t.migration

type result = {
  policy : policy;
  epoch_size : int;
  period : int;
  epochs : epoch_stats list;
  totals : totals;
  snapshots : (string * Metrics.value) list list;
  final : (string * Metrics.value) list;
  ops : (string * Metrics.value) list;
}

let default_period inst ~who =
  let total = ref 0 in
  for x = 0 to I.objects inst - 1 do
    total := !total + I.total_requests inst ~x
  done;
  if !total = 0 then
    invalid_arg
      (Printf.sprintf
         "%s: the instance has zero request volume, so there is no default storage period; \
          pass ~storage_period explicitly"
         who);
  !total

(* All instruments of a run, registered once so snapshots share one
   stable field order. *)
type instruments = {
  reg : Metrics.t;
  c_events : Metrics.counter;
  c_reads : Metrics.counter;
  c_writes : Metrics.counter;
  c_resolves : Metrics.counter;
  c_solve_retries : Metrics.counter;
  c_solve_fallbacks : Metrics.counter;
  c_solve_skipped : Metrics.counter;
  c_cache_hits : Metrics.counter;
  c_cache_misses : Metrics.counter;
  c_cache_evictions : Metrics.counter;
  c_dropped : Metrics.counter;
  c_emergency : Metrics.counter;
  c_topo : Metrics.counter;
  g_epoch : Metrics.gauge;
  g_events : Metrics.gauge;
  g_reads : Metrics.gauge;
  g_writes : Metrics.gauge;
  g_serving : Metrics.gauge;
  g_storage : Metrics.gauge;
  g_migration : Metrics.gauge;
  g_resolves : Metrics.gauge;
  g_solve_retries : Metrics.gauge;
  g_solve_fallbacks : Metrics.gauge;
  g_solve_skipped : Metrics.gauge;
  g_dirty : Metrics.gauge;
  g_cache_hits : Metrics.gauge;
  g_cache_misses : Metrics.gauge;
  g_cache_evictions : Metrics.gauge;
  g_dropped : Metrics.gauge;
  g_emergency : Metrics.gauge;
  g_topo : Metrics.gauge;
  g_copies : Metrics.gauge;
  g_p50 : Metrics.gauge;
  g_p95 : Metrics.gauge;
  g_p99 : Metrics.gauge;
  h_cost : Metrics.histogram;
  (* wall time, not workload: lives in the registry for live
     observability (the daemon's /metrics snapshot) but, being a
     histogram, is filtered out of every deterministic artifact by
     [scalar_snapshot] and [metrics_json] *)
  h_solve : Metrics.histogram;
}

let make_instruments () =
  (* sequenced lets, not a record literal: field expressions evaluate
     right-to-left and would register the instruments in reverse *)
  let reg = Metrics.create () in
  let c_events = Metrics.counter reg "events_total" in
  let c_reads = Metrics.counter reg "reads_total" in
  let c_writes = Metrics.counter reg "writes_total" in
  let c_resolves = Metrics.counter reg "resolves_total" in
  let c_solve_retries = Metrics.counter reg "solve_retries" in
  let c_solve_fallbacks = Metrics.counter reg "solve_fallbacks" in
  let c_solve_skipped = Metrics.counter reg "solve_skipped_total" in
  let c_cache_hits = Metrics.counter reg "solve_cache_hits_total" in
  let c_cache_misses = Metrics.counter reg "solve_cache_misses_total" in
  let c_cache_evictions = Metrics.counter reg "solve_cache_evictions_total" in
  let c_dropped = Metrics.counter reg "dropped_total" in
  let c_emergency = Metrics.counter reg "emergency_total" in
  let c_topo = Metrics.counter reg "topo_total" in
  let g_epoch = Metrics.gauge reg "epoch" in
  let g_events = Metrics.gauge reg "epoch_events" in
  let g_reads = Metrics.gauge reg "epoch_reads" in
  let g_writes = Metrics.gauge reg "epoch_writes" in
  let g_serving = Metrics.gauge reg "epoch_serving" in
  let g_storage = Metrics.gauge reg "epoch_storage" in
  let g_migration = Metrics.gauge reg "epoch_migration" in
  let g_resolves = Metrics.gauge reg "epoch_resolves" in
  let g_solve_retries = Metrics.gauge reg "epoch_solve_retries" in
  let g_solve_fallbacks = Metrics.gauge reg "epoch_solve_fallbacks" in
  let g_solve_skipped = Metrics.gauge reg "epoch_solve_skipped" in
  let g_dirty = Metrics.gauge reg "dirty_objects" in
  let g_cache_hits = Metrics.gauge reg "epoch_cache_hits" in
  let g_cache_misses = Metrics.gauge reg "epoch_cache_misses" in
  let g_cache_evictions = Metrics.gauge reg "epoch_cache_evictions" in
  let g_dropped = Metrics.gauge reg "epoch_dropped" in
  let g_emergency = Metrics.gauge reg "epoch_emergency" in
  let g_topo = Metrics.gauge reg "epoch_topo" in
  let g_copies = Metrics.gauge reg "copies" in
  let g_p50 = Metrics.gauge reg "request_cost_p50" in
  let g_p95 = Metrics.gauge reg "request_cost_p95" in
  let g_p99 = Metrics.gauge reg "request_cost_p99" in
  let h_cost = Metrics.histogram reg "request_cost" in
  let h_solve = Metrics.histogram ~lo:1e-6 ~base:2.0 ~buckets:48 reg "solve_epoch_s" in
  {
    reg;
    c_events;
    c_reads;
    c_writes;
    c_resolves;
    c_solve_retries;
    c_solve_fallbacks;
    c_solve_skipped;
    c_cache_hits;
    c_cache_misses;
    c_cache_evictions;
    c_dropped;
    c_emergency;
    c_topo;
    g_epoch;
    g_events;
    g_reads;
    g_writes;
    g_serving;
    g_storage;
    g_migration;
    g_resolves;
    g_solve_retries;
    g_solve_fallbacks;
    g_solve_skipped;
    g_dirty;
    g_cache_hits;
    g_cache_misses;
    g_cache_evictions;
    g_dropped;
    g_emergency;
    g_topo;
    g_copies;
    g_p50;
    g_p95;
    g_p99;
    h_cost;
    h_solve;
  }

(* Deterministic kill point for crash-and-resume testing: after epoch N
   completes (and its checkpoint, if due, is on disk) the process exits
   with the injected-failure code. *)
let crash_after_epoch =
  lazy
    (match Sys.getenv_opt "DMNET_CRASH_AFTER_EPOCH" with
    | Some s -> int_of_string_opt (String.trim s)
    | None -> None)

let stats_to_row (s : epoch_stats) : Ckpt.epoch_row =
  {
    index = s.index;
    events = s.events;
    reads = s.reads;
    writes = s.writes;
    resolves = s.resolves;
    solve_retries = s.solve_retries;
    solve_fallbacks = s.solve_fallbacks;
    solve_skipped = s.solve_skipped;
    dirty = s.dirty;
    cache_hits = s.cache_hits;
    cache_misses = s.cache_misses;
    cache_evictions = s.cache_evictions;
    copies = s.copies;
    dropped = s.dropped;
    emergency = s.emergency;
    topo_events = s.topo;
    serving = s.serving;
    storage = s.storage;
    migration = s.migration;
    p50 = s.p50;
    p95 = s.p95;
    p99 = s.p99;
  }

let row_to_stats (r : Ckpt.epoch_row) : epoch_stats =
  {
    index = r.index;
    events = r.events;
    reads = r.reads;
    writes = r.writes;
    dropped = r.dropped;
    serving = r.serving;
    storage = r.storage;
    migration = r.migration;
    resolves = r.resolves;
    solve_retries = r.solve_retries;
    solve_fallbacks = r.solve_fallbacks;
    solve_skipped = r.solve_skipped;
    dirty = r.dirty;
    cache_hits = r.cache_hits;
    cache_misses = r.cache_misses;
    cache_evictions = r.cache_evictions;
    emergency = r.emergency;
    topo = r.topo_events;
    copies = r.copies;
    p50 = r.p50;
    p95 = r.p95;
    p99 = r.p99;
  }

let fp_event fp (e : Stream.event) =
  Ckpt.fingerprint_event fp
    { Serial.Trace.node = e.Stream.node; x = e.Stream.x; write = e.Stream.kind = Stream.Write }

(* The engine's whole mutable run state. One [t] is one replay — the
   one-shot [run]/[run_items] drivers and the serving daemon both build
   a [t] and feed it epochs through [step], so there is exactly one
   code path and metrics stay byte-identical between replay and live
   serving. *)
type t = {
  pool : Pool.t;
  config : config;
  ckpt : checkpointing option;
  inst : I.t;
  n : int;
  k : int;
  period : int;
  metric : Metric.t;
  churn : Churn.t option;
  caches : Sc.t array;
  cache_strategy : Sg.t option;
  ins : instruments;
  ops_reg : Metrics.t;
  ops_ckpts : Metrics.counter;
  ops_resumes : Metrics.counter;
  ops_serve_retries : Metrics.counter;
  (* epoch working state, reused across epochs *)
  mutable buffer : Stream.event array;
  mutable len : int;  (** requests buffered for the epoch in flight *)
  counts : int array;
  slot_of_x : int array;
  (* frequency-tabulation scratch, k x n, allocated once; each resolve
     boundary zeroes and refills only the rows of active objects, so
     inactive rows may hold stale counts — never read, because only
     active objects are solved *)
  fr_scratch : int array array;
  fw_scratch : int array array;
  (* incremental re-solve state: the frequency vector each object last
     solved against (valid only where [last_valid]), and the hash of
     the metric it solved on *)
  last_fr : int array array;
  last_fw : int array array;
  last_valid : bool array;
  last_mhash : int64 array;
  (* [Metric.hash64] is O(n^2); memoize it against the metric version *)
  mutable mhash_memo : int * int64;
  solve_cache : Dmn_core.Solve_cache.t option;
  solver_fp : string;
  mutable seen : int;
  mutable fingerprint : int64;
  (* Topology items collected while ingesting wait here until the epoch
     boundary: an event takes effect at the start of the epoch in which
     it is consumed (the engine's time resolution is the epoch), so the
     queue is always drained before that epoch serves — at every
     checkpoint [topo_applied = topo_consumed]. *)
  pending_topo : Churn.event Queue.t;
  mutable topo_consumed : int;
  mutable topo_applied : int;
  mutable epochs : epoch_stats list;
  mutable snapshots : (string * Metrics.value) list list;
  mutable next_index : int;
  mutable t_events : int;
  mutable t_reads : int;
  mutable t_dropped : int;
  mutable t_serving : float;
  mutable t_storage : float;
  mutable t_migration : float;
  mutable t_resolves : int;
  mutable t_solve_retries : int;
  mutable t_solve_fallbacks : int;
  mutable t_solve_skipped : int;
  mutable t_cache_hits : int;
  mutable t_cache_misses : int;
  mutable t_cache_evictions : int;
  mutable t_emergency : int;
  mutable t_topo : int;
  (* a resumed engine must fast-forward its trace before stepping *)
  mutable pending_resume : Ckpt.t option;
}

let dummy_event = { Stream.node = 0; x = 0; kind = Stream.Read }

let current_copies t x =
  match t.cache_strategy with Some s -> s.Sg.copies ~x | None -> Sc.copies t.caches.(x)

let total_copies t =
  let acc = ref 0 in
  for x = 0 to t.k - 1 do
    acc :=
      !acc
      + (match t.cache_strategy with
        | Some s -> List.length (s.Sg.copies ~x)
        | None -> Sc.copy_count t.caches.(x))
  done;
  !acc

let scalar_snapshot t =
  List.filter (fun (_, v) -> match v with Metrics.Hist _ -> false | _ -> true)
    (Metrics.snapshot t.ins.reg)

(* Re-apply one restored epoch row exactly as the live path recorded
   it: counters, gauges, snapshot, totals — so every downstream
   artifact of the resumed run matches the uninterrupted one. *)
let record t (s : epoch_stats) =
  let ins = t.ins in
  Metrics.add ins.c_events s.events;
  Metrics.add ins.c_reads s.reads;
  Metrics.add ins.c_writes s.writes;
  Metrics.add ins.c_resolves s.resolves;
  Metrics.add ins.c_solve_retries s.solve_retries;
  Metrics.add ins.c_solve_fallbacks s.solve_fallbacks;
  Metrics.add ins.c_solve_skipped s.solve_skipped;
  Metrics.add ins.c_cache_hits s.cache_hits;
  Metrics.add ins.c_cache_misses s.cache_misses;
  Metrics.add ins.c_cache_evictions s.cache_evictions;
  Metrics.add ins.c_dropped s.dropped;
  Metrics.add ins.c_emergency s.emergency;
  Metrics.add ins.c_topo s.topo;
  Metrics.set ins.g_epoch (float_of_int s.index);
  Metrics.set ins.g_events (float_of_int s.events);
  Metrics.set ins.g_reads (float_of_int s.reads);
  Metrics.set ins.g_writes (float_of_int s.writes);
  Metrics.set ins.g_serving s.serving;
  Metrics.set ins.g_storage s.storage;
  Metrics.set ins.g_migration s.migration;
  Metrics.set ins.g_resolves (float_of_int s.resolves);
  Metrics.set ins.g_solve_retries (float_of_int s.solve_retries);
  Metrics.set ins.g_solve_fallbacks (float_of_int s.solve_fallbacks);
  Metrics.set ins.g_solve_skipped (float_of_int s.solve_skipped);
  Metrics.set ins.g_dirty (float_of_int s.dirty);
  Metrics.set ins.g_cache_hits (float_of_int s.cache_hits);
  Metrics.set ins.g_cache_misses (float_of_int s.cache_misses);
  Metrics.set ins.g_cache_evictions (float_of_int s.cache_evictions);
  Metrics.set ins.g_dropped (float_of_int s.dropped);
  Metrics.set ins.g_emergency (float_of_int s.emergency);
  Metrics.set ins.g_topo (float_of_int s.topo);
  Metrics.set ins.g_copies (float_of_int s.copies);
  Metrics.set ins.g_p50 s.p50;
  Metrics.set ins.g_p95 s.p95;
  Metrics.set ins.g_p99 s.p99;
  t.snapshots <- scalar_snapshot t :: t.snapshots;
  t.epochs <- s :: t.epochs;
  t.t_events <- t.t_events + s.events;
  t.t_reads <- t.t_reads + s.reads;
  t.t_serving <- t.t_serving +. s.serving;
  t.t_storage <- t.t_storage +. s.storage;
  t.t_migration <- t.t_migration +. s.migration;
  t.t_resolves <- t.t_resolves + s.resolves;
  t.t_solve_retries <- t.t_solve_retries + s.solve_retries;
  t.t_solve_fallbacks <- t.t_solve_fallbacks + s.solve_fallbacks;
  t.t_solve_skipped <- t.t_solve_skipped + s.solve_skipped;
  t.t_cache_hits <- t.t_cache_hits + s.cache_hits;
  t.t_cache_misses <- t.t_cache_misses + s.cache_misses;
  t.t_cache_evictions <- t.t_cache_evictions + s.cache_evictions;
  t.t_dropped <- t.t_dropped + s.dropped;
  t.t_emergency <- t.t_emergency + s.emergency;
  t.t_topo <- t.t_topo + s.topo

let sparse_of_row row =
  let acc = ref [] in
  for v = Array.length row - 1 downto 0 do
    if row.(v) > 0 then acc := (v, row.(v)) :: !acc
  done;
  !acc

let write_checkpoint t (c : checkpointing) ~next_epoch =
  Metrics.incr t.ops_ckpts;
  let lo, base, nbuckets = Metrics.hist_params t.ins.h_cost in
  let raw = Metrics.hist_buckets t.ins.h_cost in
  let h_counts = ref [] in
  for i = nbuckets - 1 downto 0 do
    if raw.(i) > 0 then h_counts := (i, raw.(i)) :: !h_counts
  done;
  ignore
    (Ckpt_store.save c.dir ~keep:c.keep
    {
      policy = policy_name t.config.policy;
      epoch_size = t.config.epoch;
      period = t.period;
      dirty_eps = t.config.dirty_eps;
      next_epoch;
      events_consumed = t.seen;
      topo_consumed = t.topo_consumed;
      topo_applied = t.topo_applied;
      fingerprint = t.fingerprint;
      nodes = t.n;
      objects = t.k;
      placements = Array.init t.k (fun x -> Sc.copies t.caches.(x));
      resolve_state =
        Array.init t.k (fun x ->
            if not t.last_valid.(x) then Ckpt.no_obj_state
            else
              {
                Ckpt.o_valid = true;
                o_mhash = t.last_mhash.(x);
                o_fr = sparse_of_row t.last_fr.(x);
                o_fw = sparse_of_row t.last_fw.(x);
              });
      epochs = List.rev_map stats_to_row t.epochs;
      hist =
        {
          h_lo = lo;
          h_base = base;
          h_buckets = nbuckets;
          h_sum = Metrics.hist_sum t.ins.h_cost;
          h_counts = !h_counts;
        };
      topo =
        (match t.churn with
        | Some ch when t.topo_applied > 0 ->
            let cm = Churn.metric ch in
            {
              Ckpt.metric_version = Metric.version cm;
              metric_hash = Metric.hash64 cm;
              down = Churn.down_nodes ch;
              edge_overrides = Churn.overrides ch;
            }
        | _ -> Ckpt.no_topo);
      checkpoints_written = Metrics.counter_value t.ops_ckpts;
      serve_retries = Metrics.counter_value t.ops_serve_retries;
    }
      : int)

let checkpoint_now t =
  match t.ckpt with None -> () | Some c -> write_checkpoint t c ~next_epoch:t.next_index

let create ?pool ?(config = default_config) ?ckpt ?resume inst placement =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  if config.epoch <= 0 then invalid_arg "Engine.run: epoch must be positive";
  if config.attempts < 1 then invalid_arg "Engine.run: attempts must be >= 1";
  if config.backoff_s < 0.0 || Float.is_nan config.backoff_s then
    invalid_arg "Engine.run: negative backoff";
  (match config.solve_deadline_s with
  | Some d when not (d > 0.0) -> invalid_arg "Engine.run: solve deadline must be positive"
  | _ -> ());
  if config.dirty_eps < 0.0 || Float.is_nan config.dirty_eps then
    invalid_arg "Engine.run: dirty_eps must be >= 0";
  if config.solve_cache < 0 then invalid_arg "Engine.run: solve_cache must be >= 0";
  (* Cached placements shortcut the supervised solve fan-out, so the
     sequence of fault coins a resumed run draws would depend on cache
     contents — which are not serialized. Refuse the combination rather
     than silently break the resume-identity contract. *)
  (match (config.solve_cache > 0, ckpt, resume) with
  | true, Some _, _ | true, _, Some _ ->
      Err.fail Err.Validation
        "checkpoint/resume is not supported with the solve cache (cache contents are not \
         serializable); disable --solve-cache or checkpointing"
  | _ -> ());
  (match ckpt with
  | Some c when c.every <= 0 -> invalid_arg "Engine.run: checkpoint interval must be positive"
  | Some c when c.keep < 1 -> invalid_arg "Engine.run: checkpoint keep must be >= 1"
  | _ -> ());
  let period =
    match config.storage_period with
    | Some p ->
        if p <= 0 then invalid_arg "Engine.run: storage_period must be positive";
        p
    | None -> default_period inst ~who:"Engine.run"
  in
  (match P.validate inst placement with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.run: initial placement: " ^ msg));
  (* The cache policy's per-event thresholds live in strategy closures
     and cannot be serialized, so it supports neither side of the
     checkpoint protocol. *)
  (match (config.policy, ckpt, resume) with
  | Cache, Some _, _ | Cache, _, Some _ ->
      Err.fail Err.Validation
        "checkpoint/resume is not supported for the cache policy (its per-event threshold \
         state is not serializable); use static or resolve"
  | _ -> ());
  let n = I.n inst and k = I.objects inst in
  let metric = I.metric inst in
  (* Topology churn state: a graph-backed instance gets a churn handle
     over a {e private copy} of its metric ([Churn.create] deep-copies),
     so [metric] itself stays pristine — resolve fallback distances and
     emergency-replica selection are measured against the network the
     placement was designed for. Until the first topology event the
     copy's distances are bit-identical to [metric], so churn-capable
     runs replay topology-free traces byte-identically to the old
     engine. Metric-only instances have no graph to repair, so any
     topology item is rejected at ingest. *)
  let churn = match I.graph inst with Some g -> Some (Churn.create g metric) | None -> None in
  let live_metric = match churn with Some ch -> Churn.metric ch | None -> metric in
  (* One versioned serve cache per object: nearest-copy tables and MST
     weights are memoized against the placement version, so the serving
     fan-out does O(1) reads per event instead of O(c) scans. With
     [serve_cache = false] the same structures recompute every query —
     the uncached baseline; costs are bit-identical either way. The
     caches read the churned metric: after a repair bumps
     {!Metric.version} the next query folds it into a placement-version
     bump, so no stale distance survives a topology event. *)
  let caches =
    Array.init k (fun x ->
        Sc.create ~cached:config.serve_cache live_metric ~x (P.copies placement ~x))
  in
  let cache_strategy =
    match config.policy with
    | Cache ->
        Some
          (Sg.threshold_caching ~initial:placement ~replicate_after:config.replicate_after
             ~drop_after:config.drop_after ~cached:config.serve_cache inst)
    | Static | Resolve -> None
  in
  let ins = make_instruments () in
  (* Operational counters live in a registry of their own: they describe
     this process's life (how many checkpoints it wrote, whether it was
     resumed), not the replayed workload, so they must never leak into
     the metrics JSON — a resumed run's JSON is byte-identical to an
     uninterrupted one. *)
  let ops_reg = Metrics.create () in
  let ops_ckpts = Metrics.counter ops_reg "checkpoints_written" in
  let ops_resumes = Metrics.counter ops_reg "resumes" in
  let ops_serve_retries = Metrics.counter ops_reg "serve_retries" in
  let t =
    {
      pool;
      config;
      ckpt;
      inst;
      n;
      k;
      period;
      metric;
      churn;
      caches;
      cache_strategy;
      ins;
      ops_reg;
      ops_ckpts;
      ops_resumes;
      ops_serve_retries;
      buffer = Array.make config.epoch dummy_event;
      len = 0;
      counts = Array.make k 0;
      slot_of_x = Array.make k (-1);
      fr_scratch = Array.make_matrix k n 0;
      fw_scratch = Array.make_matrix k n 0;
      last_fr = Array.make_matrix k n 0;
      last_fw = Array.make_matrix k n 0;
      last_valid = Array.make k false;
      last_mhash = Array.make k 0L;
      mhash_memo = (-1, 0L);
      solve_cache =
        (if config.solve_cache > 0 then
           Some (Dmn_core.Solve_cache.create ~capacity:config.solve_cache)
         else None);
      solver_fp = Dmn_core.Solve_cache.solver_fingerprint config.solver;
      seen = 0;
      fingerprint = Ckpt.fingerprint_init ~nodes:n ~objects:k;
      pending_topo = Queue.create ();
      topo_consumed = 0;
      topo_applied = 0;
      epochs = [];
      snapshots = [];
      next_index = 0;
      t_events = 0;
      t_reads = 0;
      t_dropped = 0;
      t_serving = 0.0;
      t_storage = 0.0;
      t_migration = 0.0;
      t_resolves = 0;
      t_solve_retries = 0;
      t_solve_fallbacks = 0;
      t_solve_skipped = 0;
      t_cache_hits = 0;
      t_cache_misses = 0;
      t_cache_evictions = 0;
      t_emergency = 0;
      t_topo = 0;
      pending_resume = resume;
    }
  in
  (* ----- resume: validate and restore state; the consumed trace
     prefix is fast-forwarded separately by {!fast_forward} ----- *)
  (match resume with
  | None -> ()
  | Some (c : Ckpt.t) ->
      if c.policy <> policy_name config.policy then
        Err.failf Err.Validation
          "resume: checkpoint was written by the %s policy but this run uses %s" c.policy
          (policy_name config.policy);
      if c.epoch_size <> config.epoch then
        Err.failf Err.Validation
          "resume: checkpoint epoch size %d does not match the configured %d" c.epoch_size
          config.epoch;
      if c.period <> period then
        Err.failf Err.Validation
          "resume: checkpoint storage period %d does not match the resolved %d" c.period period;
      if c.dirty_eps <> config.dirty_eps then
        Err.failf Err.Validation
          "resume: checkpoint dirty-eps %g does not match the configured %g — a different \
           threshold would re-solve a different object set than the run being continued"
          c.dirty_eps config.dirty_eps;
      if c.nodes <> n || c.objects <> k then
        Err.failf Err.Validation
          "resume: checkpoint shape (%d nodes, %d objects) does not match the instance (%d \
           nodes, %d objects)"
          c.nodes c.objects n k;
      let pl =
        try P.make (Array.copy c.placements)
        with Invalid_argument msg ->
          Err.fail Err.Validation ("resume: checkpoint placements: " ^ msg)
      in
      (match P.validate inst pl with
      | Ok () -> ()
      | Error msg ->
          Err.fail Err.Validation ("resume: checkpoint placements do not fit the instance: " ^ msg));
      for x = 0 to k - 1 do
        Sc.set_copies caches.(x) (P.copies pl ~x)
      done;
      if Array.length c.resolve_state <> k then
        Err.failf Err.Validation
          "resume: checkpoint resolve state covers %d objects but the instance has %d"
          (Array.length c.resolve_state) k;
      Array.iteri
        (fun x (o : Ckpt.obj_state) ->
          if o.o_valid then begin
            t.last_valid.(x) <- true;
            t.last_mhash.(x) <- o.o_mhash;
            List.iter (fun (v, cnt) -> t.last_fr.(x).(v) <- cnt) o.o_fr;
            List.iter (fun (v, cnt) -> t.last_fw.(x).(v) <- cnt) o.o_fw
          end)
        c.resolve_state;
      let lo, base, nbuckets = Metrics.hist_params ins.h_cost in
      if c.hist.h_lo <> lo || c.hist.h_base <> base || c.hist.h_buckets <> nbuckets then
        Err.failf Err.Validation
          "resume: checkpoint histogram geometry (lo %g, base %g, %d buckets) does not match \
           this build (lo %g, base %g, %d buckets)"
          c.hist.h_lo c.hist.h_base c.hist.h_buckets lo base nbuckets;
      List.iter (fun r -> record t (row_to_stats r)) c.epochs;
      let dense = Array.make nbuckets 0 in
      List.iter (fun (i, cnt) -> dense.(i) <- cnt) c.hist.h_counts;
      Metrics.hist_restore ins.h_cost ~counts:dense ~sum:c.hist.h_sum;
      Metrics.add ops_ckpts c.checkpoints_written;
      Metrics.add ops_serve_retries c.serve_retries;
      Metrics.incr ops_resumes;
      t.next_index <- c.next_epoch);
  t

let fast_forward t items =
  match t.pending_resume with
  | None -> items
  | Some (c : Ckpt.t) ->
      (* fast-forward: skip the consumed prefix (requests and topology
         items both) while recomputing the trace-identity hash, then
         refuse a trace that differs. Consumed topology items are
         collected in order so the churn state can be replayed and
         checked against the checkpoint's topology section. *)
      let rec forward seq nreq ntopo acc fp =
        if nreq = c.events_consumed && ntopo = c.topo_consumed then (seq, List.rev acc, fp)
        else
          match Seq.uncons seq with
          | None ->
              Err.failf Err.Validation
                "resume: the trace ends after %d request and %d topology items but the \
                 checkpoint consumed %d and %d — wrong or truncated trace?"
                nreq ntopo c.events_consumed c.topo_consumed
          | Some (Stream.Req e, rest) ->
              if nreq = c.events_consumed then
                Err.failf Err.Validation
                  "resume: item mix diverges from the checkpoint — a request event arrives \
                   after all %d checkpointed requests but before topology item %d of %d"
                  c.events_consumed (ntopo + 1) c.topo_consumed;
              forward rest (nreq + 1) ntopo acc (fp_event fp e)
          | Some (Stream.Topo tp, rest) ->
              if ntopo = c.topo_consumed then
                Err.failf Err.Validation
                  "resume: item mix diverges from the checkpoint — a topology item arrives \
                   after all %d checkpointed topology items but before request %d of %d"
                  c.topo_consumed (nreq + 1) c.events_consumed;
              forward rest nreq (ntopo + 1) (tp :: acc) (Ckpt.fingerprint_topo fp tp)
      in
      let rest, topo_prefix, fp = forward items 0 0 [] t.fingerprint in
      if fp <> c.fingerprint then
        Err.failf Err.Validation
          "resume: trace fingerprint %016Lx does not match the checkpoint's %016Lx — the \
           first %d events differ from the run that wrote it"
          fp c.fingerprint c.events_consumed;
      t.fingerprint <- fp;
      t.seen <- c.events_consumed;
      (* replay the consumed topology events and prove the rebuilt
         network matches the checkpoint's recorded state exactly —
         version counter, distance-matrix hash, down set, overrides *)
      (if topo_prefix <> [] then
         match t.churn with
         | None ->
             Err.fail Err.Validation
               "resume: the checkpoint consumed topology events but this instance has no \
                graph to replay them against (metric-only instance)"
         | Some ch ->
             List.iter (Churn.apply ch) topo_prefix;
             let cm = Churn.metric ch in
             if Metric.version cm <> c.topo.Ckpt.metric_version
                || Metric.hash64 cm <> c.topo.Ckpt.metric_hash
             then
               Err.failf Err.Validation
                 "resume: replayed topology state (metric version %d, hash %016Lx) does not \
                  match the checkpoint's (version %d, hash %016Lx)"
                 (Metric.version cm) (Metric.hash64 cm) c.topo.Ckpt.metric_version
                 c.topo.Ckpt.metric_hash;
             if Churn.down_nodes ch <> c.topo.Ckpt.down then
               Err.fail Err.Validation
                 "resume: replayed down-node set does not match the checkpoint's";
             if Churn.overrides ch <> c.topo.Ckpt.edge_overrides then
               Err.fail Err.Validation
                 "resume: replayed edge overrides do not match the checkpoint's");
      t.topo_consumed <- c.topo_consumed;
      t.topo_applied <- c.topo_applied;
      t.pending_resume <- None;
      rest

(* Resume against a journal whose oldest segments have been pruned: the
   surviving chain begins at absolute item [base] (requests and
   topology items combined), so the fingerprint of the full consumed
   prefix cannot be recomputed. The checkpoint vouches for the pruned
   part — pruning only ever removes segments a durable checkpoint
   covers — so the chain's already-consumed tail is skipped
   positionally and the churn state is rebuilt by synthesizing events
   that reproduce the checkpoint's recorded overrides and down set
   against the pristine graph. Repairs are exact, so a matching
   distance-matrix hash proves the rebuilt network is the one the
   original run was serving. [base = 0] is exactly {!fast_forward}. *)
let fast_forward_from t ~base items =
  if base < 0 then invalid_arg "Engine.fast_forward_from: negative base";
  if base = 0 then fast_forward t items
  else
    match t.pending_resume with
    | None ->
        Err.failf Err.Validation
          "resume: the journal begins at item %d (older segments pruned) but there is no \
           checkpoint covering the pruned prefix"
          base
    | Some (c : Ckpt.t) ->
        let covered = c.events_consumed + c.topo_consumed in
        if base > covered then
          Err.failf Err.Validation
            "resume: the journal begins at item %d but the checkpoint only covers %d items — \
             segments were pruned beyond the checkpoint"
            base covered;
        let rec skip seq remaining =
          if remaining = 0 then seq
          else
            match Seq.uncons seq with
            | None ->
                Err.failf Err.Validation
                  "resume: the journal chain ends %d items short of the checkpoint's coverage \
                   (%d consumed, chain base %d)"
                  remaining covered base
            | Some (_, rest) -> skip rest (remaining - 1)
        in
        let rest = skip items (covered - base) in
        t.fingerprint <- c.fingerprint;
        t.seen <- c.events_consumed;
        (match t.churn with
        | Some ch when c.topo <> Ckpt.no_topo ->
            let pristine =
              match I.graph t.inst with Some g -> g | None -> assert false (* churn implies graph *)
            in
            (* Edge events first, while every node is still alive, so
               each synthesized event passes [Churn.apply]'s liveness
               and presence validation; then fail the down set. *)
            List.iter
              (fun ((u, v), ov) ->
                match ov with
                | Some w ->
                    if Wgraph.has_edge pristine u v then
                      Churn.apply ch (Churn.Edge_weight { u; v; w })
                    else Churn.apply ch (Churn.Edge_up { u; v; w })
                | None ->
                    if Wgraph.has_edge pristine u v then Churn.apply ch (Churn.Edge_down { u; v })
                    else begin
                      (* an edge added then removed during the pruned
                         prefix: reproduce its Removed override *)
                      Churn.apply ch (Churn.Edge_up { u; v; w = 1.0 });
                      Churn.apply ch (Churn.Edge_down { u; v })
                    end)
              c.topo.Ckpt.edge_overrides;
            List.iter (fun z -> Churn.apply ch (Churn.Node_down z)) c.topo.Ckpt.down;
            let cm = Churn.metric ch in
            if Metric.hash64 cm <> c.topo.Ckpt.metric_hash then
              Err.failf Err.Validation
                "resume: rebuilt topology state (metric hash %016Lx) does not match the \
                 checkpoint's (%016Lx)"
                (Metric.hash64 cm) c.topo.Ckpt.metric_hash;
            if Churn.down_nodes ch <> c.topo.Ckpt.down then
              Err.fail Err.Validation "resume: rebuilt down-node set does not match the checkpoint's";
            if Churn.overrides ch <> c.topo.Ckpt.edge_overrides then
              Err.fail Err.Validation "resume: rebuilt edge overrides do not match the checkpoint's"
        | None when c.topo <> Ckpt.no_topo ->
            Err.fail Err.Validation
              "resume: the checkpoint records topology state but this instance has no graph to \
               rebuild it on (metric-only instance)"
        | _ -> ());
        t.topo_consumed <- c.topo_consumed;
        t.topo_applied <- c.topo_applied;
        t.pending_resume <- None;
        rest

let ensure_capacity t =
  if t.len = Array.length t.buffer then begin
    let bigger = Array.make (2 * Array.length t.buffer) dummy_event in
    Array.blit t.buffer 0 bigger 0 t.len;
    t.buffer <- bigger
  end

(* Ingest one item into the epoch in flight: a topology item queues for
   the next boundary, a request is validated, fingerprinted and
   buffered. Shared verbatim between the one-shot replay reader and the
   daemon's batcher, so both mark [seen] and the fingerprint in exactly
   the same order. *)
let ingest t = function
  | Stream.Topo tp ->
      (match (t.config.policy, t.churn) with
      | Cache, _ ->
          Err.failf Err.Validation
            "Engine.run: topology event (%s) under the cache policy: its per-event threshold \
             state cannot track a changing metric; use static or resolve"
            (Churn.event_to_string tp)
      | _, None ->
          Err.failf Err.Validation
            "Engine.run: topology event (%s) on a metric-only instance: there is no graph to \
             repair, so topology churn needs a graph-backed instance"
            (Churn.event_to_string tp)
      | _, Some _ -> ());
      t.fingerprint <- Ckpt.fingerprint_topo t.fingerprint tp;
      t.topo_consumed <- t.topo_consumed + 1;
      Queue.add tp t.pending_topo
  | Stream.Req ({ Stream.node; x; _ } as e) ->
      if node < 0 || node >= t.n then
        invalid_arg
          (Printf.sprintf "Engine.run: event %d: node %d out of range [0, %d)" t.seen node t.n);
      if x < 0 || x >= t.k then
        invalid_arg
          (Printf.sprintf "Engine.run: event %d: object %d out of range [0, %d)" t.seen x t.k);
      t.seen <- t.seen + 1;
      t.fingerprint <- fp_event t.fingerprint e;
      ensure_capacity t;
      t.buffer.(t.len) <- e;
      t.len <- t.len + 1

(* Drain the pending topology queue at the epoch boundary (after
   ingest, before serving): each event repairs the churned metric in
   place. Then scan for objects whose {e entire} copy set is now on
   dead nodes — they would be unreachable from everywhere — and
   emergency-re-replicate each onto the live node nearest its old
   copy set (by the pristine metric: the distances the data actually
   travels from wherever the copies physically were). The transfer is
   charged as migration. Replication runs under the same supervisor
   as serving, at its own fault point, so injected faults are retried
   and outcomes survive resume. Returns
   [(applied, emergencies, migration_charge)]. *)
let apply_pending t index =
  if Queue.is_empty t.pending_topo then (0, 0, 0.0)
  else
    match t.churn with
    | None -> Err.fail Err.Internal "Engine.run: pending topology events without churn state"
    | Some ch ->
        let applied = ref 0 in
        while not (Queue.is_empty t.pending_topo) do
          Churn.apply ch (Queue.pop t.pending_topo);
          incr applied;
          t.topo_applied <- t.topo_applied + 1
        done;
        let needy = ref [] in
        for x = t.k - 1 downto 0 do
          let cps = Sc.copies_array t.caches.(x) in
          if not (Array.exists (Churn.alive ch) cps) then needy := x :: !needy
        done;
        let needy = Array.of_list !needy in
        let nn = Array.length needy in
        if nn = 0 then (!applied, 0, 0.0)
        else begin
          let supervision =
            {
              Pool.attempts = t.config.attempts;
              deadline_s = None;
              backoff_s = t.config.backoff_s;
              point = "engine.replicate";
              salt = (fun s -> (index * 1_000_003) + needy.(s));
            }
          in
          let outcomes, _retries =
            Pool.supervised_init t.pool ~supervision nn (fun s ->
                let x = needy.(s) in
                let old = Sc.copies_array t.caches.(x) in
                let best = ref (-1) and bd = ref infinity in
                for v = 0 to t.n - 1 do
                  if Churn.alive ch v then begin
                    let d =
                      Array.fold_left
                        (fun acc o -> Float.min acc (Metric.d t.metric v o))
                        infinity old
                    in
                    if d < !bd then begin
                      best := v;
                      bd := d
                    end
                  end
                done;
                if !best < 0 then
                  Err.failf Err.Validation
                    "epoch %d: object %d lost every copy and no node is alive to host an \
                     emergency replica"
                    index x;
                (!best, !bd))
          in
          let charge = ref 0.0 in
          Array.iteri
            (fun s outcome ->
              match outcome with
              | Error (f : Pool.failure) ->
                  Err.failf f.error.Err.kind
                    "epoch %d: emergency re-replication of object %d failed after %d \
                     attempt%s: %s"
                    index needy.(s) f.attempts
                    (if f.attempts = 1 then "" else "s")
                    f.error.Err.msg
              | Ok (v, d) ->
                  Sc.set_copies t.caches.(needy.(s)) [ v ];
                  (* the placement changed outside the solver: treat the
                     object like a newborn so the next resolve boundary
                     is forced to re-solve it whatever its drift score *)
                  t.last_valid.(needy.(s)) <- false;
                  charge := !charge +. d)
            outcomes;
          (!applied, nn, !charge)
        end

(* Outcome of the dirty classification for one active object of a
   resolve boundary. *)
type obj_plan =
  | Plan_skip  (* clean: carry the previous placement without solving *)
  | Plan_hit of int list  (* solve-cache hit: apply the cached copy set *)
  | Plan_solve of int  (* re-solve: index into the pending solve list *)

(* One closed epoch between [step_begin] and [step_commit].
   [step_begin] does everything deterministic and state-mutating —
   topology, serving, rent, frequency tabulation, dirty classification,
   cache lookups — and resets the ingest buffer, so a driver may batch
   (and journal) the next epoch while [solve_pending] runs the
   supervised fan-out on a spare domain: the fan-out touches only this
   record, the pool, and the epoch instance built for it.
   [step_commit] applies the solutions in object order behind the
   barrier, so placements, metrics, checkpoints and crash points land
   exactly where the unpipelined engine puts them. *)
type pending = {
  p_index : int;
  p_m : int;
  p_applied : int;
  p_emergency : int;
  p_emg_migration : float;
  p_active : int array;
  p_reads : int;
  p_dropped : int;
  p_serving : float;
  p_storage : float;
  p_p50 : float;
  p_p95 : float;
  p_p99 : float;
  p_plan : obj_plan array;  (* per active slot; [||] for non-resolve *)
  p_dirty : int;
  p_skipped : int;
  p_hits : int;
  p_misses : int;
  p_solve_list : int array;  (* object ids to re-solve, ascending *)
  p_solve_keys : string option array;  (* cache key per solve-list slot *)
  p_einst : I.t option;  (* built only when the solve list is non-empty *)
  p_place_metric : Metric.t;
  p_churned : bool;
  p_mhash : int64;
  mutable p_solved : (int list, Pool.failure) Stdlib.result array;
  mutable p_solve_retries : int;
  mutable p_solve_s : float;
  mutable p_solved_done : bool;
}

(* Close the epoch in flight: apply pending topology, shard the
   buffered requests by object over the pool, merge sequentially,
   charge rent, tabulate frequencies and classify each active object
   as clean (carry), cache hit (apply) or dirty (re-solve). A call
   with no buffered requests but pending topology folds the network
   change straight into the run totals (there is no epoch to attribute
   it to). The supervised re-solve itself is deferred to
   {!solve_pending}/{!step_commit}. *)
let step_begin t items =
  List.iter (ingest t) items;
  if t.pending_resume <> None then
    Err.fail Err.Validation
      "Engine.step: this engine was created with ~resume; call fast_forward on the trace \
       before stepping";
  let index = t.next_index in
  let m = t.len in
  let applied, emergency, emg_migration = apply_pending t index in
  let base =
    {
      p_index = index;
      p_m = m;
      p_applied = applied;
      p_emergency = emergency;
      p_emg_migration = emg_migration;
      p_active = [||];
      p_reads = 0;
      p_dropped = 0;
      p_serving = 0.0;
      p_storage = 0.0;
      p_p50 = 0.0;
      p_p95 = 0.0;
      p_p99 = 0.0;
      p_plan = [||];
      p_dirty = 0;
      p_skipped = 0;
      p_hits = 0;
      p_misses = 0;
      p_solve_list = [||];
      p_solve_keys = [||];
      p_einst = None;
      p_place_metric = t.metric;
      p_churned = false;
      p_mhash = 0L;
      p_solved = [||];
      p_solve_retries = 0;
      p_solve_s = 0.0;
      p_solved_done = false;
    }
  in
  if m = 0 then begin
    (* topology events with no requests in the batch: the network
       change (and any emergency replication it forced) is real, but
       there is no epoch to attribute it to — fold it straight into
       the run totals *)
    if applied > 0 then begin
      Metrics.add t.ins.c_topo applied;
      Metrics.add t.ins.c_emergency emergency;
      t.t_topo <- t.t_topo + applied;
      t.t_emergency <- t.t_emergency + emergency;
      t.t_migration <- t.t_migration +. emg_migration
    end;
    base
  end
  else begin
    let buffer = t.buffer and counts = t.counts and slot_of_x = t.slot_of_x in
    let k = t.k in
    (* shard the epoch's events by object id *)
    Array.fill counts 0 k 0;
    for i = 0 to m - 1 do
      counts.(buffer.(i).Stream.x) <- counts.(buffer.(i).Stream.x) + 1
    done;
    let active = ref [] in
    for x = k - 1 downto 0 do
      if counts.(x) > 0 then active := x :: !active
    done;
    let active = Array.of_list !active in
    let na = Array.length active in
    Array.iteri (fun i x -> slot_of_x.(x) <- i) active;
    let obj_events = Array.map (fun x -> Array.make counts.(x) dummy_event) active in
    let fill_pos = Array.make na 0 in
    for i = 0 to m - 1 do
      let s = slot_of_x.(buffer.(i).Stream.x) in
      obj_events.(s).(fill_pos.(s)) <- buffer.(i);
      fill_pos.(s) <- fill_pos.(s) + 1
    done;
    (* parallel serving under supervision: one task per active object,
       each writing its private cost array. Attempt 0 draws the same
       "pool.task" fault coin an unsupervised run would, so outcomes
       stay independent of the domain count; injected faults are
       retried up to [attempts] times before aborting the run (there
       is no sound fallback for unserved requests). *)
    let serve_supervision =
      { Pool.default_supervision with attempts = t.config.attempts; backoff_s = t.config.backoff_s }
    in
    let serve_outcomes, serve_retries =
      Pool.supervised_init t.pool ~supervision:serve_supervision na (fun s ->
          let x = active.(s) in
          let evs = obj_events.(s) in
          match t.cache_strategy with
          | Some strat ->
              Array.map (fun e -> strat.Sg.serve ~x ~node:e.Stream.node e.Stream.kind) evs
          | None ->
              let tb = t.caches.(x) in
              (* drop sentinels, classified in the sequential merge: a
                 request from a dead node costs -1.0 (the requester is
                 gone); a request whose nearest copy is unreachable
                 costs infinity (the requester is partitioned away
                 from every copy) *)
              (match t.churn with
              | Some ch when Churn.churned ch ->
                  Array.map
                    (fun e ->
                      if not (Churn.alive ch e.Stream.node) then -1.0
                      else Sc.serve_cost tb ~node:e.Stream.node e.Stream.kind)
                    evs
              | _ ->
                  Array.map (fun e -> Sc.serve_cost tb ~node:e.Stream.node e.Stream.kind) evs))
    in
    Metrics.add t.ops_serve_retries serve_retries;
    let costs_per_obj =
      Array.mapi
        (fun s outcome ->
          match outcome with
          | Ok a -> a
          | Error (f : Pool.failure) ->
              Err.failf f.error.Err.kind
                "epoch %d: serving object %d failed after %d attempt%s: %s" index active.(s)
                f.attempts
                (if f.attempts = 1 then "" else "s")
                f.error.Err.msg)
        serve_outcomes
    in
    (* sequential merge in object order: served costs feed the sums, the
       histogram and the percentile sample, in a scheduling-independent
       order; dropped requests (dead requester -1.0, partitioned
       requester infinity) are counted and excluded from every cost
       aggregate. Reads/writes count all consumed requests either way —
       demand does not vanish because the network ate it. *)
    let epoch_costs = Array.make m 0.0 in
    let pos = ref 0 in
    let serving = ref 0.0 and reads = ref 0 and dropped = ref 0 in
    for s = 0 to na - 1 do
      let evs = obj_events.(s) and cs = costs_per_obj.(s) in
      for i = 0 to Array.length cs - 1 do
        let c = cs.(i) in
        if evs.(i).Stream.kind = Stream.Read then incr reads;
        if c < 0.0 || not (Float.is_finite c) then incr dropped
        else begin
          serving := !serving +. c;
          epoch_costs.(!pos) <- c;
          incr pos;
          Metrics.observe t.ins.h_cost c
        end
      done
    done;
    (* rent on the copy sets held after serving, pro-rated by the
       epoch's share of the storage period *)
    let frac = float_of_int m /. float_of_int t.period in
    let storage = ref 0.0 in
    for x = 0 to k - 1 do
      List.iter (fun c -> storage := !storage +. (I.cs t.inst c *. frac)) (current_copies t x)
    done;
    (* percentiles over served requests only; an epoch whose every
       request was dropped has no cost sample at all *)
    let served = if !pos = m then epoch_costs else Array.sub epoch_costs 0 !pos in
    let p50 = if !pos = 0 then 0.0 else Stats.percentile served 50.0 in
    let p95 = if !pos = 0 then 0.0 else Stats.percentile served 95.0 in
    let p99 = if !pos = 0 then 0.0 else Stats.percentile served 99.0 in
    (* epoch re-optimization, phase 1: tabulate the observed
       frequencies and classify every active object. An object is
       dirty — re-solved on this epoch's demand — when the threshold
       is zero (full re-solve, the byte-compatible default), when it
       has no valid solve history (birth, or an emergency
       re-replication rewrote its placement outside the solver), when
       the network changed under it (metric hash), or when the
       normalized L1 drift of its frequency vector since the last
       solve exceeds [dirty_eps]. Clean objects carry their placement;
       their reference vector is left alone so drift keeps
       accumulating across skipped epochs. The classification reads
       only the trace and prior solves, so the dirty set is identical
       at any domain count. *)
    let plan = ref [||]
    and dirty = ref 0
    and skipped = ref 0
    and hits = ref 0
    and misses = ref 0
    and solve_list = ref [||]
    and solve_keys = ref [||]
    and einst = ref None
    and place_metric_out = ref t.metric
    and churned_out = ref false
    and mh_out = ref 0L in
    (match t.config.policy with
    | Static | Cache -> ()
    | Resolve ->
        (* Under churn the re-solve sees the network as it now is: the
           churned metric (with unreachable pairs clamped to a finite
           penalty — 4x the largest finite distance — because the
           solver's cost sums must not meet infinity), storage
           forbidden on dead nodes via infinite cs, and dead
           requesters' demand excluded. Without churn every input
           below reduces to exactly the pristine path. *)
        let churned = match t.churn with Some ch -> Churn.churned ch | None -> false in
        let is_dead v = match t.churn with Some ch -> not (Churn.alive ch v) | None -> false in
        let fr = t.fr_scratch and fw = t.fw_scratch in
        (* persistent scratch: zero and refill only the active rows —
           stale rows of inactive objects are never read because only
           active objects are scored or solved *)
        for s = 0 to na - 1 do
          Array.fill fr.(active.(s)) 0 t.n 0;
          Array.fill fw.(active.(s)) 0 t.n 0
        done;
        for i = 0 to m - 1 do
          let { Stream.node; x; kind } = buffer.(i) in
          if not (churned && is_dead node) then
            match kind with
            | Stream.Read -> fr.(x).(node) <- fr.(x).(node) + 1
            | Stream.Write -> fw.(x).(node) <- fw.(x).(node) + 1
        done;
        let place_metric =
          match t.churn with
          | Some ch when Churn.churned ch ->
              let cm = Churn.metric ch in
              let sz = Metric.size cm in
              let has_inf = ref false in
              for i = 0 to sz - 1 do
                let r = Metric.row cm i in
                for j = 0 to sz - 1 do
                  if not (Float.is_finite (Metric.row_get r j)) then has_inf := true
                done
              done;
              if !has_inf then
                Metric.clamp_infinite cm ~limit:((4.0 *. Metric.max_finite cm) +. 1.0)
              else cm
          | _ -> t.metric
        in
        (* the un-clamped live metric identifies the network for dirty
           forcing and cache keys; resume paths validate its hash, so
           hash (not the version counter) is the durable identity *)
        let live = match t.churn with Some ch -> Churn.metric ch | None -> t.metric in
        let mh =
          let v = Metric.version live in
          let mv, mhm = t.mhash_memo in
          if mv = v then mhm
          else begin
            let h = Metric.hash64 live in
            t.mhash_memo <- (v, h);
            h
          end
        in
        let eps = t.config.dirty_eps in
        let pl = Array.make na Plan_skip in
        let sl = ref [] and sk = ref [] and nsolve = ref 0 in
        for s = 0 to na - 1 do
          let x = active.(s) in
          let is_dirty =
            eps <= 0.0
            || (not t.last_valid.(x))
            || t.last_mhash.(x) <> mh
            ||
            let num = ref 0 and cur = ref 0 and last = ref 0 in
            let frx = fr.(x) and fwx = fw.(x) in
            let lfr = t.last_fr.(x) and lfw = t.last_fw.(x) in
            for v = 0 to t.n - 1 do
              num := !num + abs (frx.(v) - lfr.(v)) + abs (fwx.(v) - lfw.(v));
              cur := !cur + frx.(v) + fwx.(v);
              last := !last + lfr.(v) + lfw.(v)
            done;
            float_of_int !num /. float_of_int (max 1 (!cur + !last)) > eps
          in
          if not is_dirty then incr skipped
          else begin
            incr dirty;
            match t.solve_cache with
            | None ->
                pl.(s) <- Plan_solve !nsolve;
                sl := x :: !sl;
                sk := None :: !sk;
                incr nsolve
            | Some cache -> (
                let key =
                  Dmn_core.Solve_cache.key ~mhash:mh ~solver:t.solver_fp ~epoch_events:m
                    ~period:t.period ~fr:fr.(x) ~fw:fw.(x)
                in
                match Dmn_core.Solve_cache.find cache key with
                | Some cps ->
                    incr hits;
                    pl.(s) <- Plan_hit cps
                | None ->
                    incr misses;
                    pl.(s) <- Plan_solve !nsolve;
                    sl := x :: !sl;
                    sk := Some key :: !sk;
                    incr nsolve)
          end
        done;
        let sl = Array.of_list (List.rev !sl) in
        let skeys = Array.of_list (List.rev !sk) in
        (* a boundary with nothing to solve skips the epoch-instance
           build (and its Profile_cache) entirely *)
        if Array.length sl > 0 then begin
          let scaled_cs =
            Array.init t.n (fun v ->
                if churned && is_dead v then infinity else I.cs t.inst v *. frac)
          in
          einst := Some (I.of_metric place_metric ~cs:scaled_cs ~fr ~fw)
        end;
        plan := pl;
        solve_list := sl;
        solve_keys := skeys;
        place_metric_out := place_metric;
        churned_out := churned;
        mh_out := mh);
    (* the buffer's epoch is fully extracted: free it for the next
       epoch's ingest so a pipelined driver can batch ahead *)
    t.len <- 0;
    {
      base with
      p_active = active;
      p_reads = !reads;
      p_dropped = !dropped;
      p_serving = !serving;
      p_storage = !storage;
      p_p50 = p50;
      p_p95 = p95;
      p_p99 = p99;
      p_plan = !plan;
      p_dirty = !dirty;
      p_skipped = !skipped;
      p_hits = !hits;
      p_misses = !misses;
      p_solve_list = !solve_list;
      p_solve_keys = !solve_keys;
      p_einst = !einst;
      p_place_metric = !place_metric_out;
      p_churned = !churned_out;
      p_mhash = !mh_out;
    }
  end

(* Epoch re-optimization, phase 2: the supervised solve fan-out over
   the dirty misses. Re-solves run at the "engine.resolve" fault point
   salted by (epoch, object), so outcomes are independent of both
   scheduling and the dirty filtering that selected them, and survive
   resume. Safe to call from a spawned domain while the driver batches
   the next epoch: it touches only [p], the pool, and the immutable
   epoch instance. Idempotent — [step_commit] calls it again
   harmlessly. *)
let solve_pending t p =
  if not p.p_solved_done then begin
    let nl = Array.length p.p_solve_list in
    (if nl > 0 then
       match p.p_einst with
       | None -> Err.fail Err.Internal "Engine.solve_pending: missing epoch instance"
       | Some einst ->
           let solve_supervision =
             {
               Pool.attempts = t.config.attempts;
               deadline_s = t.config.solve_deadline_s;
               backoff_s = t.config.backoff_s;
               point = "engine.resolve";
               salt = (fun s -> (p.p_index * 1_000_003) + p.p_solve_list.(s));
             }
           in
           let t0 = Unix.gettimeofday () in
           let solved, retries =
             Pool.supervised_init t.pool ~supervision:solve_supervision nl (fun s ->
                 A.place_object ~config:t.config.solver einst ~x:p.p_solve_list.(s))
           in
           p.p_solve_s <- Unix.gettimeofday () -. t0;
           p.p_solved <- solved;
           p.p_solve_retries <- retries);
    p.p_solved_done <- true
  end

(* Epoch re-optimization, phase 3: apply solutions in object order —
   clean objects carry, cache hits and fresh solves install their copy
   sets (refusing dead nodes), failures fall back to the previous
   placement — then record the epoch and checkpoint if due. Behind a
   pipelining barrier this runs at the same epoch boundary as the
   unpipelined engine, so every downstream artifact is byte-identical. *)
let step_commit t p =
  solve_pending t p;
  let index = p.p_index and m = p.p_m in
  if m > 0 then begin
    let active = p.p_active in
    let na = Array.length active in
    let migration = ref 0.0 and resolves = ref 0 and solve_fallbacks = ref 0 in
    let evictions0 =
      match t.solve_cache with
      | Some c -> (Dmn_core.Solve_cache.stats c).evictions
      | None -> 0
    in
    let is_dead v = match t.churn with Some ch -> not (Churn.alive ch v) | None -> false in
    (* install one solution: filter dead nodes (defense in depth — the
       infinite storage cost should already keep the solver off them,
       and cache keys change with the metric hash), charge migration
       from the nearest old copy, update the object's solve history,
       and memoize a fresh solve *)
    let apply_solution x ~key cps =
      let cps = if p.p_churned then List.filter (fun c -> not (is_dead c)) cps else cps in
      match cps with
      | [] -> incr solve_fallbacks
      | cps ->
          incr resolves;
          let tb = t.caches.(x) in
          let old = Sc.copies_array tb in
          List.iter
            (fun c ->
              if not (Sc.mem tb c) then
                let d =
                  Array.fold_left
                    (fun acc o -> Float.min acc (Metric.d p.p_place_metric c o))
                    infinity old
                in
                migration := !migration +. d)
            cps;
          Sc.set_copies tb cps;
          Array.blit t.fr_scratch.(x) 0 t.last_fr.(x) 0 t.n;
          Array.blit t.fw_scratch.(x) 0 t.last_fw.(x) 0 t.n;
          t.last_valid.(x) <- true;
          t.last_mhash.(x) <- p.p_mhash;
          (match (t.solve_cache, key) with
          | Some cache, Some k -> Dmn_core.Solve_cache.add cache k cps
          | _ -> ())
    in
    if Array.length p.p_plan > 0 then
      for s = 0 to na - 1 do
        let x = active.(s) in
        match p.p_plan.(s) with
        | Plan_skip -> ()
        | Plan_hit cps -> apply_solution x ~key:None cps
        | Plan_solve j -> (
            match p.p_solved.(j) with
            | Error _ ->
                (* graceful degradation: keep the previous epoch's
                   placement for this object *)
                incr solve_fallbacks
            | Ok cps -> apply_solution x ~key:p.p_solve_keys.(j) cps)
      done;
    let cache_evictions =
      match t.solve_cache with
      | Some c -> (Dmn_core.Solve_cache.stats c).evictions - evictions0
      | None -> 0
    in
    (match t.config.policy with
    | Resolve -> Metrics.observe t.ins.h_solve p.p_solve_s
    | Static | Cache -> ());
    let copies_now = total_copies t in
    record t
      {
        index;
        events = m;
        reads = p.p_reads;
        writes = m - p.p_reads;
        dropped = p.p_dropped;
        serving = p.p_serving;
        storage = p.p_storage;
        migration = !migration +. p.p_emg_migration;
        resolves = !resolves;
        solve_retries = p.p_solve_retries;
        solve_fallbacks = !solve_fallbacks;
        solve_skipped = p.p_skipped;
        dirty = p.p_dirty;
        cache_hits = p.p_hits;
        cache_misses = p.p_misses;
        cache_evictions;
        emergency = p.p_emergency;
        topo = p.p_applied;
        copies = copies_now;
        p50 = p.p_p50;
        p95 = p.p_p95;
        p99 = p.p_p99;
      };
    t.next_index <- index + 1;
    (match t.ckpt with
    | Some c when (index + 1) mod c.every = 0 -> write_checkpoint t c ~next_epoch:(index + 1)
    | _ -> ());
    match Lazy.force crash_after_epoch with
    | Some after when after = index ->
        Printf.eprintf "dmnet: injected crash after epoch %d (DMNET_CRASH_AFTER_EPOCH)\n%!"
          index;
        Stdlib.exit 70
    | _ -> ()
  end

let pending_solves p = Array.length p.p_solve_list

let step t items =
  let p = step_begin t items in
  solve_pending t p;
  step_commit t p

let epochs_done t = t.next_index
let events_consumed t = t.seen
let items_consumed t = t.seen + t.topo_consumed
let live_snapshot t = Metrics.snapshot t.ins.reg
let live_ops t = Metrics.snapshot t.ops_reg

let finish t : result =
  {
    policy = t.config.policy;
    epoch_size = t.config.epoch;
    period = t.period;
    epochs = List.rev t.epochs;
    totals =
      {
        events = t.t_events;
        reads = t.t_reads;
        writes = t.t_events - t.t_reads;
        dropped = t.t_dropped;
        serving = t.t_serving;
        storage = t.t_storage;
        migration = t.t_migration;
        resolves = t.t_resolves;
        solve_retries = t.t_solve_retries;
        solve_fallbacks = t.t_solve_fallbacks;
        solve_skipped = t.t_solve_skipped;
        cache_hits = t.t_cache_hits;
        cache_misses = t.t_cache_misses;
        cache_evictions = t.t_cache_evictions;
        emergency = t.t_emergency;
        topo = t.t_topo;
        final_copies = total_copies t;
      };
    snapshots = List.rev t.snapshots;
    final = Metrics.snapshot t.ins.reg;
    ops = Metrics.snapshot t.ops_reg;
  }

let run_items ?pool ?config ?ckpt ?resume ?(base = 0) inst placement items =
  let eng = create ?pool ?config ?ckpt ?resume inst placement in
  let items = fast_forward_from eng ~base items in
  let epoch = eng.config.epoch in
  (* Pull one epoch's worth of items — [epoch] requests plus any
     interleaved topology items — forcing the sequence no further than
     the old single-pass reader did. *)
  let rec pull seq m acc =
    if m = epoch then (List.rev acc, m, seq)
    else
      match Seq.uncons seq with
      | None -> (List.rev acc, m, Seq.empty)
      | Some ((Stream.Topo _ as it), rest) -> pull rest m (it :: acc)
      | Some ((Stream.Req _ as it), rest) -> pull rest (m + 1) (it :: acc)
  in
  let rec go seq =
    let chunk, m, rest = pull seq 0 [] in
    if chunk <> [] then begin
      step eng chunk;
      if m = epoch then go rest
    end
  in
  go items;
  finish eng

let run ?pool ?config ?ckpt ?resume inst placement events =
  run_items ?pool ?config ?ckpt ?resume inst placement (Stream.items_of_events events)

let of_trace_event { Serial.Trace.node; x; write } =
  { Stream.node; x; kind = (if write then Stream.Write else Stream.Read) }

let of_trace_item = function
  | Serial.Trace.Req e -> Stream.Req (of_trace_event e)
  | Serial.Trace.Topo t -> Stream.Topo t

let check_trace_header ~path header inst =
  if header.Serial.Trace.nodes <> I.n inst || header.Serial.Trace.objects <> I.objects inst then
    Err.failf ~file:path Err.Validation
      "trace header (%d nodes, %d objects) does not match the instance (%d nodes, %d objects)"
      header.Serial.Trace.nodes header.Serial.Trace.objects (I.n inst) (I.objects inst)

let run_trace ?pool ?config ?ckpt ?resume ?tolerate_truncation inst placement path =
  if Sys.file_exists path && Sys.is_directory path then begin
    (* a segmented journal directory: replay the surviving chain; its
       base can be > 0 when covered segments were pruned, in which case
       [resume] must carry a checkpoint covering the pruned prefix *)
    let chain = Serial.Trace.Journal.read_chain ?tolerate_truncation path in
    check_trace_header ~path chain.Serial.Trace.Journal.chain_header inst;
    run_items ?pool ?config ?ckpt ?resume ~base:chain.Serial.Trace.Journal.base inst placement
      (Seq.map of_trace_item (List.to_seq chain.Serial.Trace.Journal.chain_items))
  end
  else
    Serial.Trace.with_items ?tolerate_truncation path (fun header items ->
        check_trace_header ~path header inst;
        run_items ?pool ?config ?ckpt ?resume inst placement (Seq.map of_trace_item items))

let metrics_json inst r =
  let buf = Buffer.create 4096 in
  let fl = Metrics.json_float in
  Buffer.add_string buf "{\"dmnet\":\"replay-metrics\",\"version\":4";
  Buffer.add_string buf (Printf.sprintf ",\"policy\":%S" (policy_name r.policy));
  Buffer.add_string buf (Printf.sprintf ",\"epoch_size\":%d" r.epoch_size);
  Buffer.add_string buf (Printf.sprintf ",\"storage_period\":%d" r.period);
  Buffer.add_string buf (Printf.sprintf ",\"nodes\":%d" (I.n inst));
  Buffer.add_string buf (Printf.sprintf ",\"objects\":%d" (I.objects inst));
  Buffer.add_string buf ",\"epochs\":[";
  List.iteri
    (fun i snap ->
      if i > 0 then Buffer.add_char buf ',';
      let scalar = List.filter (fun (_, v) -> match v with Metrics.Hist _ -> false | _ -> true) snap in
      Buffer.add_string buf (Metrics.snapshot_to_json scalar))
    r.snapshots;
  Buffer.add_char buf ']';
  let t = r.totals in
  Buffer.add_string buf
    (Printf.sprintf
       ",\"totals\":{\"events\":%d,\"reads\":%d,\"writes\":%d,\"dropped\":%d,\"serving\":%s,\"storage\":%s,\"migration\":%s,\"resolves\":%d,\"solve_retries\":%d,\"solve_fallbacks\":%d,\"solve_skipped\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"cache_evictions\":%d,\"emergency\":%d,\"topo\":%d,\"final_copies\":%d,\"total_cost\":%s}"
       t.events t.reads t.writes t.dropped (fl t.serving) (fl t.storage) (fl t.migration)
       t.resolves t.solve_retries t.solve_fallbacks t.solve_skipped t.cache_hits
       t.cache_misses t.cache_evictions t.emergency t.topo t.final_copies
       (fl (total_cost t)));
  (match List.assoc_opt "request_cost" r.final with
  | Some (Metrics.Hist _ as h) ->
      Buffer.add_string buf ",\"request_cost\":";
      Buffer.add_string buf (Metrics.value_to_json h)
  | _ -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let write_metrics path inst r = Serial.write_file path (metrics_json inst r ^ "\n")
