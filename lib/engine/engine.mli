(** Streaming replay engine: serves a request trace against a live
    placement, incrementally, in parallel, and crash-safely.

    The paper's motivating applications (Section 1 — WWW content
    distribution, virtual shared memory, distributed file systems) are
    request-serving systems; this engine turns the repository's static
    constant-factor pipeline into an online serving loop:

    - {b Sharded serving.} Requests are consumed from a [Seq.t] in
      epochs of [epoch] events (the trace is never materialized:
      memory is O(epoch + n·k)). Within an epoch, per-object work is
      fanned out over a {!Dmn_prelude.Pool}; objects are independent in
      the paper's cost model, so sharding by object id is {e exact},
      and shard results are merged in object order — the engine's
      costs, states and metrics are bit-identical at every domain
      count.
    - {b Epoch re-optimization} ([Resolve] policy). At each epoch
      boundary the engine re-tabulates the epoch's observed
      frequencies, scales storage fees by the epoch's share of the
      storage period, re-solves each active object with the paper's
      3-phase algorithm ({!Dmn_core.Approx.place_object}) on the
      observed instance, and charges each added copy the object
      transfer distance from the nearest previous copy. Objects with no
      traffic in the epoch keep their copy sets.
    - {b Supervision.} Both the serving fan-out and the re-solve
      fan-out run under {!Dmn_prelude.Pool.supervised_init}: task
      crashes and injected faults are retried up to [attempts] times
      (attempt 0 draws the exact fault coin an unsupervised run would,
      so outcomes stay independent of the domain count). A re-solve
      that still fails — or overruns [solve_deadline_s] — {e degrades
      gracefully}: the object keeps its previous placement and the
      epoch records a [solve_fallbacks] tick instead of aborting.
      Serving failures have no sound fallback and abort with a
      structured error after the retries.
    - {b Checkpoint/resume.} With [?ckpt] the engine persists a
      {!Dmn_core.Serial.Checkpoint} (atomic write, per-section CRC)
      after every [every]-th epoch; [?resume] validates a loaded
      checkpoint against the configuration, the instance, and a
      trace-identity fingerprint recomputed while fast-forwarding the
      event stream, then continues where the checkpoint left off. A
      resumed run's {!metrics_json} is {e byte-identical} to an
      uninterrupted run's at any domain count. Supported for the
      [Static] and [Resolve] policies ([Cache] keeps per-event state
      inside strategy closures and refuses both sides with a
      structured error).
    - {b Topology churn and degraded serving.} Traces may interleave
      topology items (edge reweight/removal/addition, node
      failure/recovery — {!Dmn_paths.Churn.event}) with requests. On a
      graph-backed instance the engine keeps a {!Dmn_paths.Churn}
      handle over a private copy of the metric and repairs it
      incrementally; topology items collected while reading an epoch
      take effect {e at the start of that epoch} (the engine's time
      resolution), before any of its requests are served. Requests from
      dead nodes, and requests partitioned away from every copy, are
      {e dropped and counted} rather than served; an object whose whole
      copy set dies is emergency-re-replicated onto the nearest live
      node under supervision (charged as migration). The [Resolve]
      policy re-solves against the churned network — unreachable
      distances clamped to a finite penalty, storage forbidden on dead
      nodes — while [Cache] refuses topology items (its threshold state
      cannot track a changing metric), as do metric-only instances
      (nothing to repair). Checkpoints record the topology delta
      (overrides, down set, metric version and hash), and resume
      replays and verifies it, so kill-and-resume stays byte-identical
      under churn.
    - {b Telemetry.} A {!Dmn_prelude.Metrics} registry (cumulative
      counters, per-epoch gauges, a log-scale histogram of per-request
      serving cost) is snapshotted every epoch; {!metrics_json} renders
      the timeline as machine-readable JSON and {!write_metrics} stores
      it atomically via {!Dmn_core.Serial.write_file}. Operational
      counters that describe the process rather than the workload
      ([checkpoints_written], [resumes], [serve_retries]) live in the
      separate {!result.ops} snapshot and never enter the JSON.

    Accounting conventions: serving costs follow
    {!Dmn_dynamic.Strategy.serve_cost}; storage rent is charged per
    epoch on the copy sets held at the end of the epoch's serving pass
    (before any re-solve), scaled by [epoch events / storage_period];
    migration covers [Resolve] copy transfers (the [Cache] policy's
    replication transfers are embedded in its serving costs, as in
    {!Dmn_dynamic.Strategy.threshold_caching}). *)

type policy =
  | Static  (** never touch the initial placement *)
  | Resolve  (** re-solve from observed frequencies every epoch *)
  | Cache  (** per-event threshold caching seeded with the placement *)

val policy_name : policy -> string
val policy_of_string : string -> policy option

type config = {
  policy : policy;
  epoch : int;  (** events per epoch (> 0) *)
  storage_period : int option;
      (** events per full storage-rent charge; [None] = the instance's
          request volume, matching {!Dmn_dynamic.Sim.run} *)
  solver : Dmn_core.Approx.config;  (** pipeline used by [Resolve] *)
  replicate_after : int;  (** [Cache] promotion threshold *)
  drop_after : int;  (** [Cache] eviction threshold *)
  attempts : int;  (** max executions per supervised task (>= 1) *)
  solve_deadline_s : float option;
      (** cooperative per-attempt deadline for re-solves; an attempt
          that overruns counts as a failure (retried, then fallback).
          Wall-clock based, so unlike fault injection it is {e not}
          deterministic — leave [None] (the default) when byte-identical
          cross-run output matters. *)
  backoff_s : float;  (** base retry backoff, doubling per attempt *)
  serve_cache : bool;
      (** memoize nearest-copy tables and MST weights per placement
          version ({!Dmn_dynamic.Serve_cache}); [false] recomputes
          every query — the benchmark baseline. Either way the costs,
          states and metrics are bit-identical. *)
  dirty_eps : float;
      (** incremental re-solve threshold for the [Resolve] policy
          (>= 0). At each boundary an active object's change score is
          the normalized L1 distance between the epoch's frequency
          vector and the one it last solved against —
          [Σ|Δfr| + |Δfw| / max 1 (cur + last)], in [0, 1] — and only
          objects with score > [dirty_eps] are re-solved; the rest
          carry their placement ([solve_skipped]). Objects are forced
          dirty on their first active epoch, after an emergency
          re-replication, and when the network's
          {!Dmn_paths.Metric.hash64} changed since their last solve.
          [0.0] (the default) re-solves every active object — {e
          byte-identical} to the pre-incremental engine. The dirty set
          is a pure function of the trace: identical at any domain
          count and across kill-and-resume. *)
  solve_cache : int;
      (** capacity of the per-object solve cache ([Resolve] policy): a
          bounded LRU ({!Dmn_core.Solve_cache}) memoizing placements
          keyed by (metric hash, solver fingerprint, epoch geometry,
          log-quantized frequency vector), so recurring demand regimes
          skip the solver. [0] (the default) disables it.
          Deterministic at any domain count, but {e not} compatible
          with checkpoint/resume (cache contents are not serialized):
          the combination is refused with a [Validation] error. *)
}

(** [Resolve], epoch 1000, default solver and cache thresholds, 3
    supervised attempts, no deadline, no backoff, full re-solve
    ([dirty_eps = 0]), solve cache off. *)
val default_config : config

(** Periodic checkpointing: write the engine state into the generation
    directory [dir] ({!Dmn_core.Ckpt_store}, "dmnet-ckptdir v1": each
    generation an atomic file, the manifest updated last, the newest
    [keep] generations retained) after every [every]-th epoch (1-based:
    [every = 1] checkpoints after each epoch). *)
type checkpointing = { dir : string; every : int; keep : int }

(** Per-epoch record. Costs are per-epoch (not cumulative); [copies]
    is the total copy count over all objects at the end of the epoch
    (after any re-solve). [solve_retries] counts supervised re-solve
    retries, [solve_fallbacks] the objects that kept their previous
    placement after all attempts failed; [resolves] counts only
    {e successful} re-solves (cache hits included), so
    [resolves + solve_fallbacks + solve_skipped] is the epoch's
    active-object count under the [Resolve] policy. Percentiles are
    over the epoch's per-request serving costs
    ({!Dmn_prelude.Stats.percentile}). *)
type epoch_stats = {
  index : int;  (** 0-based epoch number *)
  events : int;
  reads : int;
  writes : int;  (** reads/writes count all consumed requests, dropped included *)
  dropped : int;
      (** requests not served: the requester was dead, or partitioned
          away from every copy of the object *)
  serving : float;  (** served requests only *)
  storage : float;
  migration : float;  (** re-solve transfers plus emergency replication *)
  resolves : int;  (** objects successfully re-solved at this boundary *)
  solve_retries : int;
  solve_fallbacks : int;
  solve_skipped : int;
      (** active objects carried without re-solving (change score within
          [dirty_eps]); [resolves + solve_fallbacks + solve_skipped] is
          the epoch's active-object count under [Resolve] *)
  dirty : int;
      (** objects classified dirty at this boundary
          ([= resolves + solve_fallbacks]) *)
  cache_hits : int;  (** dirty objects satisfied from the solve cache *)
  cache_misses : int;
  cache_evictions : int;
  emergency : int;  (** objects emergency-re-replicated at this boundary *)
  topo : int;  (** topology events applied at the start of this epoch *)
  copies : int;
  p50 : float;  (** percentiles over served requests; 0 if all dropped *)
  p95 : float;
  p99 : float;
}

type totals = {
  events : int;
  reads : int;
  writes : int;
  dropped : int;
  serving : float;
  storage : float;
  migration : float;
  resolves : int;
  solve_retries : int;
  solve_fallbacks : int;
  solve_skipped : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  emergency : int;
  topo : int;
      (** applied topology events, including any trailing ones consumed
          after the last served epoch *)
  final_copies : int;
}

(** [total_cost t] is serving + storage + migration. *)
val total_cost : totals -> float

type result = {
  policy : policy;
  epoch_size : int;
  period : int;  (** the resolved storage period *)
  epochs : epoch_stats list;  (** in order; empty for an empty trace *)
  totals : totals;
  snapshots : (string * Dmn_prelude.Metrics.value) list list;
      (** one scalar metrics snapshot per epoch, in epoch order (the
          request-cost histogram appears only in [final]) *)
  final : (string * Dmn_prelude.Metrics.value) list;
      (** final snapshot, including the request-cost histogram *)
  ops : (string * Dmn_prelude.Metrics.value) list;
      (** operational counters — [checkpoints_written], [resumes],
          [serve_retries] — kept out of {!metrics_json} so a resumed
          run's JSON stays byte-identical to an uninterrupted one *)
}

(** [run ?pool ?config ?ckpt ?resume inst placement events] replays
    [events] (a {e one-shot} sequence, forced exactly once) against
    [inst] starting from [placement]. Deterministic: equal inputs give
    equal results — including every float — at any [pool] size ([pool]
    defaults to {!Dmn_prelude.Pool.default}), whether or not the run
    was resumed, as long as [solve_deadline_s] is [None].

    With [?ckpt], a checkpoint is written after every [every]-th epoch
    (counted from epoch 0 of the whole replay, so a resumed run
    checkpoints at the same epochs as an uninterrupted one). With
    [?resume], [placement] supplies the instance-shape contract but the
    engine's state — placements, cumulative metrics, epoch index — is
    restored from the checkpoint, and [events] must be the {e same full
    trace} the original run consumed: the consumed prefix is
    fast-forwarded and verified by fingerprint.

    The environment variable [DMNET_CRASH_AFTER_EPOCH=N] installs a
    deterministic kill point: the process exits with code 70
    immediately after epoch [N] completes (and its checkpoint, when
    due, is durably on disk) — the hook CI uses to rehearse
    kill-and-resume.

    @raise Invalid_argument on a non-positive [epoch], [storage_period],
    [attempts] or checkpoint interval, on a placement that does not fit
    the instance, on an event whose node or object is out of range, or
    (matching {!Dmn_dynamic.Sim.run}) when [storage_period] is omitted
    on an instance with zero request volume.
    @raise Dmn_prelude.Err.Error (kind [Validation]) when
    checkpoint/resume is requested under the [Cache] policy, or when a
    resume checkpoint disagrees with the configuration, the instance,
    or the trace fingerprint; (kind [Fault]/[Internal]) when serving
    still fails after all supervised attempts. *)
val run :
  ?pool:Dmn_prelude.Pool.t ->
  ?config:config ->
  ?ckpt:checkpointing ->
  ?resume:Dmn_core.Serial.Checkpoint.t ->
  Dmn_core.Instance.t ->
  Dmn_core.Placement.t ->
  Dmn_dynamic.Stream.event Seq.t ->
  result

(** [run_items] is {!run} over a mixed stream of requests and topology
    items ({!Dmn_dynamic.Stream.item}); [run events] is
    [run_items (Stream.items_of_events events)]. Topology items do not
    count toward the epoch size — an epoch is [epoch] {e requests}.
    [?base] (default 0) is the absolute item index [items] starts at,
    for replaying a partially-pruned journal chain with [?resume] —
    see {!fast_forward_from}.
    @raise Dmn_prelude.Err.Error (kind [Validation]) additionally on a
    topology item under the [Cache] policy or on a metric-only
    instance, and on resume when the replayed topology state disagrees
    with the checkpoint's recorded delta. *)
val run_items :
  ?pool:Dmn_prelude.Pool.t ->
  ?config:config ->
  ?ckpt:checkpointing ->
  ?resume:Dmn_core.Serial.Checkpoint.t ->
  ?base:int ->
  Dmn_core.Instance.t ->
  Dmn_core.Placement.t ->
  Dmn_dynamic.Stream.item Seq.t ->
  result

(** {2 Incremental epoch API}

    The one-shot {!run}/{!run_items} drivers above are thin wrappers
    over this interface: build an engine with {!create}, feed it one
    epoch at a time with {!step}, and assemble the {!result} with
    {!finish}. The serving daemon ({!Dmn_server}) drives the same
    functions on live traffic, so replay and online serving share one
    code path — equal event batches produce byte-identical metrics
    whichever driver consumed them. *)

(** A live engine: one [t] is one (possibly resumed) replay in
    progress. Not thread-safe — drive it from a single thread; the
    parallelism lives inside {!step}'s pool fan-out. *)
type t

(** [create ?pool ?config ?ckpt ?resume inst placement] validates the
    configuration and the placement and builds an idle engine. With
    [?resume] the checkpoint is validated against the configuration and
    the instance and the engine state (placements, cumulative metrics,
    epoch index) is restored — but the trace prefix is {e not} yet
    fast-forwarded: call {!fast_forward} before the first {!step}.
    Raises exactly as {!run} does for configuration errors. *)
val create :
  ?pool:Dmn_prelude.Pool.t ->
  ?config:config ->
  ?ckpt:checkpointing ->
  ?resume:Dmn_core.Serial.Checkpoint.t ->
  Dmn_core.Instance.t ->
  Dmn_core.Placement.t ->
  t

(** [fast_forward t items] skips the checkpoint's consumed prefix of
    [items] — recomputing and verifying the trace fingerprint and
    replaying consumed topology events against the checkpoint's
    recorded network state — and returns the remainder. On an engine
    created without [?resume] it returns [items] unchanged. Must be
    called (once) before {!step} on a resumed engine.
    @raise Dmn_prelude.Err.Error (kind [Validation]) when the trace
    disagrees with the checkpoint. *)
val fast_forward :
  t -> Dmn_dynamic.Stream.item Seq.t -> Dmn_dynamic.Stream.item Seq.t

(** [fast_forward_from t ~base items] is {!fast_forward} for a journal
    chain whose oldest segments have been pruned: [items] begins at
    absolute item index [base] (requests and topology items combined,
    {!Dmn_core.Serial.Trace.Journal.read_chain}'s [base]). The
    checkpoint must cover at least [base] items; the chain's consumed
    tail is skipped positionally (the full-prefix fingerprint cannot be
    recomputed — pruning only removes what a durable checkpoint
    vouches for) and the network state is rebuilt from the checkpoint's
    topology section and verified against its distance-matrix hash.
    [base = 0] is exactly {!fast_forward}.
    @raise Dmn_prelude.Err.Error (kind [Validation]) when [base]
    exceeds the checkpoint's coverage, the chain is shorter than the
    coverage, or the rebuilt network disagrees with the checkpoint. *)
val fast_forward_from :
  t -> base:int -> Dmn_dynamic.Stream.item Seq.t -> Dmn_dynamic.Stream.item Seq.t

(** [step t items] consumes one epoch: topology items queue for the
    boundary, requests are validated, fingerprinted and buffered, then
    the whole batch is served as a single epoch — pending topology
    applied first, serving sharded over the pool, rent charged,
    [Resolve] re-solving, metrics recorded, a checkpoint written when
    due. The batch {e is} the epoch: callers control the epoch size by
    how many requests they pass (the one-shot wrapper passes exactly
    [config.epoch]; a wall-clock tick may pass fewer). A batch with
    topology items but no requests folds the network change into the
    run totals without creating an epoch; an empty batch is a no-op.
    Raises as {!run_items} does for malformed events.
    @raise Dmn_prelude.Err.Error (kind [Validation]) when the engine
    was created with [?resume] but {!fast_forward} has not run. *)
val step : t -> Dmn_dynamic.Stream.item list -> unit

(** {2 Split-phase stepping}

    [step] in three phases, for drivers that overlap the re-solve of a
    closed epoch with batching the next one (the serving daemon's
    [--pipeline] mode):

    {[
      let p = Engine.step_begin t items in   (* close the epoch       *)
      (* ... spare domain: Engine.solve_pending t p ... *)
      (* ... driver keeps batching/journaling the next epoch ... *)
      Engine.step_commit t p                 (* barrier: apply, record *)
    ]}

    [step t items] is exactly that sequence run inline, so the split
    changes {e when} the solve computes, never {e what} it computes:
    placements, metrics, checkpoints and crash points are
    byte-identical either way. *)

(** A closed epoch whose re-solve has not yet been applied. *)
type pending

(** [step_begin t items] ingests [items] and closes the epoch: pending
    topology applied, serving sharded over the pool and merged, rent
    charged, frequencies tabulated, each active object classified as
    clean / cache hit / dirty (see [config.dirty_eps]) — everything
    except the supervised solve fan-out and its application. The ingest
    buffer is reset, so the caller may batch (and journal) the next
    epoch's items immediately. The engine must not be stepped again
    until the returned epoch is committed. Raises as {!step}. *)
val step_begin : t -> Dmn_dynamic.Stream.item list -> pending

(** [solve_pending t p] runs the supervised re-solve of [p]'s dirty
    misses on the pool. Touches only [p], the pool, and the immutable
    epoch instance built by {!step_begin}, so it may run from a spawned
    domain while the driving thread batches the next epoch — but the
    pool must not be driven by anything else meanwhile (the engine's
    serving fan-out included). Idempotent; a no-op when [p] has nothing
    to solve or was already solved. *)
val solve_pending : t -> pending -> unit

(** [pending_solves p] is the number of objects {!solve_pending} will
    (or did) run the solver on — 0 means the epoch has nothing to
    overlap and can be committed inline. *)
val pending_solves : pending -> int

(** [step_commit t p] applies the epoch's solutions in object order —
    carries, cache hits, fresh solves, fallbacks — then records the
    epoch's metrics, writes a due checkpoint, and honors the
    [DMNET_CRASH_AFTER_EPOCH] kill point. Calls {!solve_pending}
    itself if the caller has not (so [step_begin |> step_commit] is a
    correct, unpipelined sequence). Must run on the driving thread,
    after any domain running {!solve_pending} has been joined. *)
val step_commit : t -> pending -> unit

(** [checkpoint_now t] writes a checkpoint at the current epoch
    boundary (a no-op without [?ckpt]). Sound only between {!step}
    calls — which is the only time a caller can run. The daemon uses
    it for the final checkpoint on graceful shutdown. *)
val checkpoint_now : t -> unit

(** Epochs served so far (equivalently: the index the next non-empty
    {!step} will record). After resume this starts at the checkpoint's
    [next_epoch]. *)
val epochs_done : t -> int

(** Requests consumed so far, including a resumed prefix. *)
val events_consumed : t -> int

(** Total items consumed so far — requests plus topology events — i.e.
    the absolute journal offset the engine has processed. At every
    checkpoint this is exactly what the checkpoint covers, so it is the
    [~covered] bound for {!Dmn_core.Serial.Trace.Journal.prune}. *)
val items_consumed : t -> int

(** Current workload metrics snapshot (counters, gauges, histogram) in
    registration order — the daemon's live [/metrics] source. *)
val live_snapshot : t -> (string * Dmn_prelude.Metrics.value) list

(** Current operational counters ([checkpoints_written], [resumes],
    [serve_retries]) — see {!result.ops}. *)
val live_ops : t -> (string * Dmn_prelude.Metrics.value) list

(** [finish t] assembles the {!result} from the state accumulated so
    far. Idempotent; reads the engine without disturbing it. *)
val finish : t -> result

(** [of_trace_event e] converts a stored trace event to a stream
    event. *)
val of_trace_event : Dmn_core.Serial.Trace.event -> Dmn_dynamic.Stream.event

(** [of_trace_item it] converts a stored trace item (request or
    topology event) to a stream item. *)
val of_trace_item : Dmn_core.Serial.Trace.item -> Dmn_dynamic.Stream.item

(** [run_trace ?pool ?config ?ckpt ?resume ?tolerate_truncation inst
    placement path] streams the trace at [path] — requests and
    topology events both — through {!run_items}, first checking the
    trace header against the instance shape. When [path] is a
    {e directory} it is read as a segmented journal chain
    ({!Dmn_core.Serial.Trace.Journal.read_chain}, which tolerates a
    torn final line by default) and its base is forwarded, so an
    offline replay of a daemon's partially-pruned journal works with
    the matching [?resume] checkpoint. For a plain file,
    [tolerate_truncation] is forwarded to
    {!Dmn_core.Serial.Trace.with_items}.
    @raise Dmn_prelude.Err.Error on a malformed trace, a header that
    does not match the instance, a checkpoint/resume violation, or I/O
    failure. *)
val run_trace :
  ?pool:Dmn_prelude.Pool.t ->
  ?config:config ->
  ?ckpt:checkpointing ->
  ?resume:Dmn_core.Serial.Checkpoint.t ->
  ?tolerate_truncation:bool ->
  Dmn_core.Instance.t ->
  Dmn_core.Placement.t ->
  string ->
  result

(** [metrics_json inst r] renders the run as one JSON document: header
    (policy, epoch size, period, instance shape), the per-epoch
    timeline, totals, and the final request-cost histogram. Field order
    and float rendering are fixed, so equal results give byte-identical
    JSON — across domain counts and across kill-and-resume. *)
val metrics_json : Dmn_core.Instance.t -> result -> string

(** [write_metrics path inst r] writes {!metrics_json} atomically.
    @raise Dmn_prelude.Err.Error on I/O failure. *)
val write_metrics : string -> Dmn_core.Instance.t -> result -> unit
