(** Streaming replay engine: serves a request trace against a live
    placement, incrementally and in parallel.

    The paper's motivating applications (Section 1 — WWW content
    distribution, virtual shared memory, distributed file systems) are
    request-serving systems; this engine turns the repository's static
    constant-factor pipeline into an online serving loop:

    - {b Sharded serving.} Requests are consumed from a [Seq.t] in
      epochs of [epoch] events (the trace is never materialized:
      memory is O(epoch + n·k)). Within an epoch, per-object work is
      fanned out over a {!Dmn_prelude.Pool}; objects are independent in
      the paper's cost model, so sharding by object id is {e exact},
      and shard results are merged in object order — the engine's
      costs, states and metrics are bit-identical at every domain
      count.
    - {b Epoch re-optimization} ([Resolve] policy). At each epoch
      boundary the engine re-tabulates the epoch's observed
      frequencies, scales storage fees by the epoch's share of the
      storage period, re-solves each active object with the paper's
      3-phase algorithm ({!Dmn_core.Approx.place_object}) on the
      observed instance, and charges each added copy the object
      transfer distance from the nearest previous copy. Objects with no
      traffic in the epoch keep their copy sets.
    - {b Telemetry.} A {!Dmn_prelude.Metrics} registry (cumulative
      counters, per-epoch gauges, a log-scale histogram of per-request
      serving cost) is snapshotted every epoch; {!metrics_json} renders
      the timeline as machine-readable JSON and {!write_metrics} stores
      it atomically via {!Dmn_core.Serial.write_file}.

    Accounting conventions: serving costs follow
    {!Dmn_dynamic.Strategy.serve_cost}; storage rent is charged per
    epoch on the copy sets held at the end of the epoch's serving pass
    (before any re-solve), scaled by [epoch events / storage_period];
    migration covers [Resolve] copy transfers (the [Cache] policy's
    replication transfers are embedded in its serving costs, as in
    {!Dmn_dynamic.Strategy.threshold_caching}). *)

type policy =
  | Static  (** never touch the initial placement *)
  | Resolve  (** re-solve from observed frequencies every epoch *)
  | Cache  (** per-event threshold caching seeded with the placement *)

val policy_name : policy -> string
val policy_of_string : string -> policy option

type config = {
  policy : policy;
  epoch : int;  (** events per epoch (> 0) *)
  storage_period : int option;
      (** events per full storage-rent charge; [None] = the instance's
          request volume, matching {!Dmn_dynamic.Sim.run} *)
  solver : Dmn_core.Approx.config;  (** pipeline used by [Resolve] *)
  replicate_after : int;  (** [Cache] promotion threshold *)
  drop_after : int;  (** [Cache] eviction threshold *)
}

(** [Resolve], epoch 1000, default solver and cache thresholds. *)
val default_config : config

(** Per-epoch record. Costs are per-epoch (not cumulative); [copies]
    is the total copy count over all objects at the end of the epoch
    (after any re-solve). Percentiles are over the epoch's per-request
    serving costs ({!Dmn_prelude.Stats.percentile}). *)
type epoch_stats = {
  index : int;  (** 0-based epoch number *)
  events : int;
  reads : int;
  writes : int;
  serving : float;
  storage : float;
  migration : float;
  resolves : int;  (** objects re-solved at this epoch's boundary *)
  copies : int;
  p50 : float;
  p95 : float;
  p99 : float;
}

type totals = {
  events : int;
  reads : int;
  writes : int;
  serving : float;
  storage : float;
  migration : float;
  resolves : int;
  final_copies : int;
}

(** [total_cost t] is serving + storage + migration. *)
val total_cost : totals -> float

type result = {
  policy : policy;
  epoch_size : int;
  period : int;  (** the resolved storage period *)
  epochs : epoch_stats list;  (** in order; empty for an empty trace *)
  totals : totals;
  snapshots : (string * Dmn_prelude.Metrics.value) list list;
      (** one metrics snapshot per epoch, in epoch order *)
  final : (string * Dmn_prelude.Metrics.value) list;
      (** final snapshot, including the request-cost histogram *)
}

(** [run ?pool ?config inst placement events] replays [events] (a
    {e one-shot} sequence, forced exactly once) against [inst] starting
    from [placement]. Deterministic: equal inputs give equal results —
    including every float — at any [pool] size ([pool] defaults to
    {!Dmn_prelude.Pool.default}).

    @raise Invalid_argument on a non-positive [epoch] or
    [storage_period], on a placement that does not fit the instance, on
    an event whose node or object is out of range, or (matching
    {!Dmn_dynamic.Sim.run}) when [storage_period] is omitted on an
    instance with zero request volume. *)
val run :
  ?pool:Dmn_prelude.Pool.t ->
  ?config:config ->
  Dmn_core.Instance.t ->
  Dmn_core.Placement.t ->
  Dmn_dynamic.Stream.event Seq.t ->
  result

(** [of_trace_event e] converts a stored trace event to a stream
    event. *)
val of_trace_event : Dmn_core.Serial.Trace.event -> Dmn_dynamic.Stream.event

(** [run_trace ?pool ?config inst placement path] streams the trace
    file at [path] through {!run}, first checking the trace header
    against the instance shape.
    @raise Dmn_prelude.Err.Error on a malformed trace, a header that
    does not match the instance, or I/O failure. *)
val run_trace :
  ?pool:Dmn_prelude.Pool.t ->
  ?config:config ->
  Dmn_core.Instance.t ->
  Dmn_core.Placement.t ->
  string ->
  result

(** [metrics_json inst r] renders the run as one JSON document: header
    (policy, epoch size, period, instance shape), the per-epoch
    timeline, totals, and the final request-cost histogram. Field order
    and float rendering are fixed, so equal results give byte-identical
    JSON. *)
val metrics_json : Dmn_core.Instance.t -> result -> string

(** [write_metrics path inst r] writes {!metrics_json} atomically.
    @raise Dmn_prelude.Err.Error on I/O failure. *)
val write_metrics : string -> Dmn_core.Instance.t -> result -> unit
