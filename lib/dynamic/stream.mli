(** Request streams for the dynamic-vs-static comparison (extension
    beyond the paper, which is static; cf. its discussion of the dynamic
    strategies of Awerbuch et al. and Maggs et al.).

    A stream is either a finite event list (the simulator's historical
    interface) or a lazily generated [Seq.t] of the same events for the
    streaming replay engine, which never materializes the trace. The
    [_seq] generators are {e one-shot}: they draw from the supplied
    {!Dmn_prelude.Rng.t} as the sequence is forced, so force each
    sequence at most once (re-create it from a fresh seed to replay). *)

open Dmn_prelude

type kind = Read | Write

type event = { node : int; x : int; kind : kind }

(** A topology-churn event, interleavable with requests in a trace. *)
type topo = Dmn_paths.Churn.event

(** One trace item: a data request or a topology event. The churn-aware
    replay engine consumes [item Seq.t]; pure request streams lift via
    {!items_of_events}. *)
type item = Req of event | Topo of topo

(** [items_of_events seq] lifts a request stream into an item stream
    (lazily — one-shot sequences stay one-shot, forced exactly once). *)
val items_of_events : event Seq.t -> item Seq.t

(** [one_shot name seq] guards a sequence against re-traversal: forcing
    any node a second time raises {!Dmn_prelude.Err.Error} (kind
    [Validation]) naming the generator [name] and the element index. The
    [_seq] generators below are wrapped with it, because they draw from
    the supplied RNG as they are forced — a second traversal would
    silently yield a different stream. *)
val one_shot : string -> 'a Seq.t -> 'a Seq.t

(** [stationary_seq rng inst ~length] samples events i.i.d. from the
    instance's frequency tables (all objects pooled proportionally).
    The tables are validated eagerly: an instance with zero request
    volume raises {!Dmn_prelude.Err.Error} (kind [Validation]) naming
    the instance shape, since there is no distribution to sample. *)
val stationary_seq : Rng.t -> Dmn_core.Instance.t -> length:int -> event Seq.t

(** [stationary rng inst ~length] is [stationary_seq] forced to a list.
    @raise Dmn_prelude.Err.Error on an instance with no requests. *)
val stationary : Rng.t -> Dmn_core.Instance.t -> length:int -> event list

(** [drifting_seq rng inst ~phases ~phase_length ~write_fraction]
    ignores the instance's tables and generates phase-local hotspots: in
    each phase a random quarter of the nodes issues all requests. This
    is the adversarial-for-static workload. *)
val drifting_seq :
  Rng.t ->
  Dmn_core.Instance.t ->
  phases:int ->
  phase_length:int ->
  write_fraction:float ->
  event Seq.t

(** [drifting rng inst ~phases ~phase_length ~write_fraction] is
    [drifting_seq] forced to a list. *)
val drifting :
  Rng.t -> Dmn_core.Instance.t -> phases:int -> phase_length:int -> write_fraction:float -> event list

(** [frequencies inst events] tabulates a stream back into [fr]/[fw]
    matrices (for handing a measured stream to the static
    algorithms). *)
val frequencies : Dmn_core.Instance.t -> event list -> int array array * int array array
