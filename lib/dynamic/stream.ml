open Dmn_prelude
module I = Dmn_core.Instance

type kind = Read | Write

type event = { node : int; x : int; kind : kind }

type topo = Dmn_paths.Churn.event

type item = Req of event | Topo of topo

let items_of_events seq = Seq.map (fun e -> Req e) seq

(* The [_seq] generators draw from the shared RNG as they are forced, so
   forcing a sequence twice silently yields a *different* stream the
   second time — a replay that looks plausible and is wrong. Wrap every
   node with a forced-flag so reuse fails loudly instead, naming the
   generator and the element where the second traversal diverged. *)
let one_shot name seq =
  let rec wrap idx node =
    let forced = ref false in
    fun () ->
      if !forced then
        Err.failf Err.Validation
          "Stream.%s: one-shot sequence re-forced at element %d; the generator draws from its \
           RNG as the sequence is forced, so a second traversal would silently produce a \
           different stream — rebuild the sequence from a fresh seed to replay"
          name idx;
      forced := true;
      match node () with
      | Seq.Nil -> Seq.Nil
      | Seq.Cons (x, rest) -> Seq.Cons (x, wrap (idx + 1) rest)
  in
  wrap 0 seq

let stationary_seq rng inst ~length =
  let n = I.n inst and k = I.objects inst in
  if length < 0 then invalid_arg "Stream.stationary: negative length";
  (* cumulative weights over (node, object, kind) triples *)
  let entries = ref [] in
  for x = 0 to k - 1 do
    for v = 0 to n - 1 do
      if I.reads inst ~x v > 0 then entries := (v, x, Read, I.reads inst ~x v) :: !entries;
      if I.writes inst ~x v > 0 then entries := (v, x, Write, I.writes inst ~x v) :: !entries
    done
  done;
  let entries = Array.of_list !entries in
  if Array.length entries = 0 then
    Err.failf Err.Validation
      "Stream.stationary: instance has no requests (n = %d, %d object%s, every fr/fw count is \
       zero), so there is no distribution to sample"
      n k
      (if k = 1 then "" else "s");
  let total = Array.fold_left (fun acc (_, _, _, c) -> acc + c) 0 entries in
  let draw () =
    let target = Rng.int rng total in
    let rec pick i acc =
      let v, x, kind, c = entries.(i) in
      if target < acc + c then { node = v; x; kind } else pick (i + 1) (acc + c)
    in
    pick 0 0
  in
  one_shot "stationary" (Seq.init length (fun _ -> draw ()))

let stationary rng inst ~length = List.of_seq (stationary_seq rng inst ~length)

let drifting_seq rng inst ~phases ~phase_length ~write_fraction =
  let n = I.n inst and k = I.objects inst in
  if phases < 0 then invalid_arg "Stream.drifting: negative phase count";
  if phase_length < 0 then invalid_arg "Stream.drifting: negative phase length";
  let nodes = Array.init n Fun.id in
  if phase_length = 0 then Seq.empty
  else begin
    (* one-shot state machine: entering a phase re-samples the hotspot *)
    let hot = ref [||] and phase = ref 0 and emitted = ref 0 in
    let rec next () =
      if !phase >= phases then Seq.Nil
      else begin
        if !emitted = 0 then hot := Rng.sample rng nodes (max 1 (n / 4));
        let ev =
          {
            node = Rng.pick rng !hot;
            x = Rng.int rng k;
            kind = (if Rng.float rng 1.0 < write_fraction then Write else Read);
          }
        in
        incr emitted;
        if !emitted = phase_length then begin
          emitted := 0;
          incr phase
        end;
        Seq.Cons (ev, next)
      end
    in
    one_shot "drifting" next
  end

let drifting rng inst ~phases ~phase_length ~write_fraction =
  List.of_seq (drifting_seq rng inst ~phases ~phase_length ~write_fraction)

let frequencies inst events =
  let n = I.n inst and k = I.objects inst in
  let fr = Array.init k (fun _ -> Array.make n 0) in
  let fw = Array.init k (fun _ -> Array.make n 0) in
  List.iter
    (fun { node; x; kind } ->
      match kind with
      | Read -> fr.(x).(node) <- fr.(x).(node) + 1
      | Write -> fw.(x).(node) <- fw.(x).(node) + 1)
    events;
  (fr, fw)
