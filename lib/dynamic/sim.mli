(** Stream simulator: folds a strategy over an event list, charging
    serving costs per event and storage rent once every
    [storage_period] events (so a stationary stream whose length equals
    the instance's request volume reproduces the static objective for
    the static strategy, storage included). *)

type result = {
  name : string;
  serving : float;  (** summed per-event costs *)
  storage : float;  (** summed storage rent *)
  total : float;
  final_copies : int;  (** copy count over all objects at the end *)
}

(** [run ?storage_period inst strategy events] — [storage_period]
    defaults to the instance's total request volume (one "period"); a
    trailing partial period is charged rent proportionally to its
    length.

    @raise Invalid_argument if [storage_period] is non-positive, or if
    it is omitted on an instance with zero request volume (there is no
    meaningful default period then — supply one explicitly). *)
val run :
  ?storage_period:int -> Dmn_core.Instance.t -> Strategy.t -> Stream.event list -> result

val pp : Format.formatter -> result -> unit

(** [competitive_ratio ?storage_period inst strategy events
    ~phase_length] compares the strategy's total against the {e offline
    clairvoyant} cost: the stream is cut into phases of [phase_length]
    events, each phase is re-tabulated into frequencies, solved
    statically with the greedy-add baseline, and charged its own
    serving cost plus storage rent scaled by the phase's {e actual}
    length over the storage period. The trailing partial phase (when
    [phase_length] does not divide the stream length) is charged the
    same way, scaled by its true length — it is never dropped, so the
    offline cost covers exactly the events the online strategy served.
    [storage_period] follows the {!run} default and is applied to both
    sides. The returned ratio [>= ~1] measures how far the online
    strategy is from a per-phase optimal static planner.

    @raise Invalid_argument under the same conditions as {!run}, or if
    [phase_length] is non-positive. *)
val competitive_ratio :
  ?storage_period:int ->
  Dmn_core.Instance.t ->
  Strategy.t ->
  Stream.event list ->
  phase_length:int ->
  float
