module I = Dmn_core.Instance

type result = {
  name : string;
  serving : float;
  storage : float;
  total : float;
  final_copies : int;
}

let storage_rent inst (strategy : Strategy.t) =
  let acc = ref 0.0 in
  for x = 0 to I.objects inst - 1 do
    List.iter (fun c -> acc := !acc +. I.cs inst c) (strategy.Strategy.copies ~x)
  done;
  !acc

(* The default storage period is the instance's request volume: that
   way a stream of exactly one table's worth of events pays exactly one
   round of rent. A zero-volume instance has no such period — silently
   substituting one (the seed used [max 1], i.e. rent on every event)
   distorts every total, so it is a structured precondition failure. *)
let default_period inst ~who =
  let total = ref 0 in
  for x = 0 to I.objects inst - 1 do
    total := !total + I.total_requests inst ~x
  done;
  if !total = 0 then
    invalid_arg
      (Printf.sprintf
         "%s: the instance has zero request volume, so there is no default storage period; \
          pass ~storage_period explicitly"
         who);
  !total

let run ?storage_period inst (strategy : Strategy.t) events =
  let period =
    match storage_period with
    | Some p ->
        if p <= 0 then invalid_arg "Sim.run: storage_period must be positive";
        p
    | None -> default_period inst ~who:"Sim.run"
  in
  let serving = ref 0.0 and storage = ref 0.0 and count = ref 0 in
  List.iter
    (fun { Stream.node; x; kind } ->
      serving := !serving +. strategy.Strategy.serve ~x ~node kind;
      incr count;
      if !count mod period = 0 then storage := !storage +. storage_rent inst strategy)
    events;
  (* charge the last partial period proportionally *)
  let remainder = !count mod period in
  if remainder > 0 then
    storage :=
      !storage +. (storage_rent inst strategy *. float_of_int remainder /. float_of_int period);
  let final_copies = ref 0 in
  for x = 0 to I.objects inst - 1 do
    final_copies := !final_copies + List.length (strategy.Strategy.copies ~x)
  done;
  {
    name = strategy.Strategy.name;
    serving = !serving;
    storage = !storage;
    total = !serving +. !storage;
    final_copies = !final_copies;
  }

let competitive_ratio ?storage_period inst strategy events ~phase_length =
  if phase_length <= 0 then invalid_arg "Sim.competitive_ratio: bad phase length";
  let period =
    match storage_period with
    | Some p ->
        if p <= 0 then invalid_arg "Sim.competitive_ratio: storage_period must be positive";
        p
    | None -> default_period inst ~who:"Sim.competitive_ratio"
  in
  let online = (run ~storage_period:period inst strategy events).total in
  (* offline: an optimal-ish static placement per phase, each phase —
     including the trailing partial one — charged serving on its own
     events plus storage rent scaled by its actual length over the
     storage period *)
  let rec phases acc current count = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | e :: rest ->
        if count = phase_length then phases (List.rev current :: acc) [ e ] 1 rest
        else phases acc (e :: current) (count + 1) rest
  in
  let offline_phase phase =
    let fr, fw = Stream.frequencies inst phase in
    let phase_inst =
      match I.graph inst with
      | Some g -> I.of_graph g ~cs:(Array.init (I.n inst) (fun v -> I.cs inst v)) ~fr ~fw
      | None -> invalid_arg "Sim.competitive_ratio: instance has no graph"
    in
    let placement =
      Dmn_core.Placement.make
        (Array.init (I.objects inst) (fun x ->
             if I.total_requests phase_inst ~x = 0 then [ 0 ]
             else Dmn_baselines.Greedy_place.add phase_inst ~x))
    in
    let strat = Strategy.static inst placement in
    let serving =
      List.fold_left
        (fun acc { Stream.node; x; kind } -> acc +. strat.Strategy.serve ~x ~node kind)
        0.0 phase
    in
    serving
    +. storage_rent inst strat *. float_of_int (List.length phase) /. float_of_int period
  in
  let offline = List.fold_left (fun acc phase -> acc +. offline_phase phase) 0.0 (phases [] [] 0 events) in
  if offline <= 0.0 then 1.0 else online /. offline

let pp ppf r =
  Format.fprintf ppf "%-18s serving %10.2f + storage %8.2f = %10.2f (%d copies)" r.name
    r.serving r.storage r.total r.final_copies
