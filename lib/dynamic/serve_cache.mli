(** Placement-versioned serve cache for one object.

    The replay engine charges every event through the same two
    primitives: the distance to the nearest copy (reads and writes) and
    the MST multicast weight over the copy set (writes). Both depend
    only on the copy set, which changes rarely — at epoch re-solves,
    replications, and drops — while events arrive by the thousand. This
    cache stores the copy set as a sorted int array with a version
    counter; the per-node nearest copy and the MST weight are memoized
    against the version they were computed at, turning the per-event
    cost from an O(c) scan (and an O(c² log c) MST per write) into an
    O(1) lookup. Every mutation bumps the version, which invalidates
    all derived state at once.

    Memoization is {e pure}: the first computation at a version runs
    exactly the float operations the uncached path runs (ascending-order
    scan with a strict [<] fold seeded at [(-1, infinity)];
    {!Dmn_span.Steiner.approx_weight_metric} on the sorted copy list),
    so cached and uncached runs produce bit-identical costs.

    The cache also watches {!Dmn_paths.Metric.version}: when the metric
    is repaired in place after a topology event, the next query folds
    the change into a placement-version bump, invalidating every memo —
    the effective cache key is (placement version × metric version), so
    a nearest-copy table computed before a network change can never be
    served after it. *)

type t

(** [create ?cached metric ~x copies] builds the cache for object [x]
    ([x] is used only in error messages) over [copies], which must be
    sorted ascending and duplicate-free — the invariant every caller in
    this repository already maintains. With [~cached:false] the
    structure keeps the same interface but recomputes every query — the
    honest uncached baseline the benchmarks compare against. *)
val create : ?cached:bool -> Dmn_paths.Metric.t -> x:int -> int list -> t

(** [copies t] is the sorted copy list (fresh list per call). *)
val copies : t -> int list

(** [copies_array t] is the cache's own sorted array — do not mutate. *)
val copies_array : t -> int array

val copy_count : t -> int

(** [mem t c] tests copy membership by binary search. *)
val mem : t -> int -> bool

(** [version t] is the current placement version (starts at 1; each
    mutation that actually changes the copy set increments it, as does
    the first query after an in-place metric repair). *)
val version : t -> int

(** [set_copies t copies] replaces the copy set ([copies] sorted
    ascending, duplicate-free). A no-op — version included — when the
    new set equals the current one, so an epoch re-solve that confirms
    the placement keeps the memoized state warm. *)
val set_copies : t -> int list -> unit

(** [add_copy t c] inserts [c] (not already present) in sorted position
    and bumps the version. *)
val add_copy : t -> int -> unit

(** [nearest t v] is [(copy, distance)] for the copy nearest to node
    [v], ties to the smallest node id.
    @raise Dmn_prelude.Err.Error (kind [Internal], naming the object)
    if the copy set is empty. *)
val nearest : t -> int -> int * float

(** [mst_weight t] is the MST multicast weight over the copy set
    ({!Dmn_span.Steiner.approx_weight_metric}), memoized per version. *)
val mst_weight : t -> float

(** [serve_cost t ~node kind] is the event cost against the current
    copy set: a read pays the nearest-copy distance, a write that
    distance plus {!mst_weight}. *)
val serve_cost : t -> node:int -> Stream.kind -> float
