open Dmn_paths
module I = Dmn_core.Instance
module Err = Dmn_prelude.Err

type t = {
  name : string;
  serve : x:int -> node:int -> Stream.kind -> float;
  copies : x:int -> int list;
}

let nearest m ~x copies v =
  match copies with
  | [] -> Err.failf Err.Internal "serve: object %d has an empty copy set" x
  | _ ->
      List.fold_left
        (fun ((_, bd) as best) c ->
          let d = Metric.d m v c in
          if d < bd then (c, d) else best)
        (-1, infinity) copies

let mst_weight m copies = Dmn_span.Steiner.approx_weight_metric m copies

let serve_cost inst ~x ~copies ~node kind =
  let m = I.metric inst in
  let _, d = nearest m ~x copies node in
  match kind with
  | Stream.Read -> d
  | Stream.Write -> d +. mst_weight m copies

let static inst p =
  let m = I.metric inst in
  let caches =
    Array.init (I.objects inst) (fun x ->
        Serve_cache.create m ~x (Dmn_core.Placement.copies p ~x))
  in
  let serve ~x ~node kind = Serve_cache.serve_cost caches.(x) ~node kind in
  { name = "static"; serve; copies = (fun ~x -> Serve_cache.copies caches.(x)) }

let migrating_owner ?(threshold = 8) inst =
  let m = I.metric inst in
  let k = I.objects inst in
  let n = I.n inst in
  (* initial owner: the cheapest storable node *)
  let initial =
    let best = ref 0 in
    for v = 1 to n - 1 do
      if I.cs inst v < I.cs inst !best then best := v
    done;
    !best
  in
  let owner = Array.make k initial in
  let counts = Array.init k (fun _ -> Array.make n 0) in
  let serve ~x ~node kind =
    let d = Metric.d m node owner.(x) in
    let base = match kind with Stream.Read | Stream.Write -> d in
    counts.(x).(node) <- counts.(x).(node) + 1;
    if counts.(x).(node) >= threshold && node <> owner.(x) && I.cs inst node < infinity then begin
      (* migrate: transfer the object to the hot requester *)
      let transfer = Metric.d m owner.(x) node in
      owner.(x) <- node;
      Array.fill counts.(x) 0 n 0;
      base +. transfer
    end
    else base
  in
  { name = "migrating-owner"; serve; copies = (fun ~x -> [ owner.(x) ]) }

let threshold_caching ?initial ?(replicate_after = 4) ?(drop_after = 8) ?(cached = true) inst =
  let m = I.metric inst in
  let k = I.objects inst in
  let n = I.n inst in
  let cheapest =
    let best = ref 0 in
    for v = 1 to n - 1 do
      if I.cs inst v < I.cs inst !best then best := v
    done;
    !best
  in
  let caches =
    Array.init k (fun x ->
        let cps =
          match initial with
          | Some p -> Dmn_core.Placement.copies p ~x
          | None -> [ cheapest ]
        in
        Serve_cache.create ~cached m ~x cps)
  in
  let read_counts = Array.init k (fun _ -> Array.make n 0) in
  (* per-copy writes seen since the copy last served a read; dropped
     copies reset to 0, matching the former Hashtbl's remove-is-absent *)
  let stale = Array.init k (fun _ -> Array.make n 0) in
  let serve ~x ~node kind =
    let t = caches.(x) in
    let s, d = Serve_cache.nearest t node in
    match kind with
    | Stream.Read ->
        stale.(x).(s) <- 0;
        read_counts.(x).(node) <- read_counts.(x).(node) + 1;
        if
          read_counts.(x).(node) >= replicate_after
          && (not (Serve_cache.mem t node))
          && I.cs inst node < infinity
        then begin
          (* replicate to the hot reader, paying the transfer *)
          Serve_cache.add_copy t node;
          read_counts.(x).(node) <- 0;
          d +. d
        end
        else d
    | Stream.Write ->
        let cost = d +. Serve_cache.mst_weight t in
        let cps = Serve_cache.copies_array t in
        let st = stale.(x) in
        Array.iter (fun c -> if c <> s then st.(c) <- st.(c) + 1) cps;
        (* drop copies that only absorb updates; keep the serving one *)
        let keep c = c = s || st.(c) < drop_after in
        let survivors = ref 0 in
        Array.iter (fun c -> if keep c then incr survivors) cps;
        if !survivors < Array.length cps then begin
          let out = ref [] in
          for i = Array.length cps - 1 downto 0 do
            let c = cps.(i) in
            if keep c then out := c :: !out else st.(c) <- 0
          done;
          Serve_cache.set_copies t !out
        end;
        cost
  in
  { name = "threshold-caching"; serve; copies = (fun ~x -> Serve_cache.copies caches.(x)) }
