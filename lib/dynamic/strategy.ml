open Dmn_paths
module I = Dmn_core.Instance

type t = {
  name : string;
  serve : x:int -> node:int -> Stream.kind -> float;
  copies : x:int -> int list;
}

let nearest m copies v =
  List.fold_left
    (fun ((_, bd) as best) c ->
      let d = Metric.d m v c in
      if d < bd then (c, d) else best)
    (-1, infinity) copies

let mst_weight m copies = Dmn_span.Steiner.approx_weight_metric m copies

let serve_cost inst ~copies ~node kind =
  let m = I.metric inst in
  let _, d = nearest m copies node in
  match kind with
  | Stream.Read -> d
  | Stream.Write -> d +. mst_weight m copies

let static inst p =
  let serve ~x ~node kind = serve_cost inst ~copies:(Dmn_core.Placement.copies p ~x) ~node kind in
  { name = "static"; serve; copies = (fun ~x -> Dmn_core.Placement.copies p ~x) }

let migrating_owner ?(threshold = 8) inst =
  let m = I.metric inst in
  let k = I.objects inst in
  let n = I.n inst in
  (* initial owner: the cheapest storable node *)
  let initial =
    let best = ref 0 in
    for v = 1 to n - 1 do
      if I.cs inst v < I.cs inst !best then best := v
    done;
    !best
  in
  let owner = Array.make k initial in
  let counts = Array.init k (fun _ -> Array.make n 0) in
  let serve ~x ~node kind =
    let d = Metric.d m node owner.(x) in
    let base = match kind with Stream.Read | Stream.Write -> d in
    counts.(x).(node) <- counts.(x).(node) + 1;
    if counts.(x).(node) >= threshold && node <> owner.(x) && I.cs inst node < infinity then begin
      (* migrate: transfer the object to the hot requester *)
      let transfer = Metric.d m owner.(x) node in
      owner.(x) <- node;
      Array.fill counts.(x) 0 n 0;
      base +. transfer
    end
    else base
  in
  { name = "migrating-owner"; serve; copies = (fun ~x -> [ owner.(x) ]) }

let threshold_caching ?initial ?(replicate_after = 4) ?(drop_after = 8) inst =
  let m = I.metric inst in
  let k = I.objects inst in
  let n = I.n inst in
  let cheapest =
    let best = ref 0 in
    for v = 1 to n - 1 do
      if I.cs inst v < I.cs inst !best then best := v
    done;
    !best
  in
  let copies =
    match initial with
    | Some p -> Array.init k (fun x -> Dmn_core.Placement.copies p ~x)
    | None -> Array.init k (fun _ -> [ cheapest ])
  in
  let read_counts = Array.init k (fun _ -> Array.make n 0) in
  (* per-copy writes seen since the copy last served a read *)
  let stale = Array.init k (fun _ -> Hashtbl.create 8) in
  let bump_stale x c = Hashtbl.replace stale.(x) c (1 + Option.value ~default:0 (Hashtbl.find_opt stale.(x) c)) in
  let serve ~x ~node kind =
    let s, d = nearest m copies.(x) node in
    match kind with
    | Stream.Read ->
        Hashtbl.replace stale.(x) s 0;
        read_counts.(x).(node) <- read_counts.(x).(node) + 1;
        if
          read_counts.(x).(node) >= replicate_after
          && (not (List.mem node copies.(x)))
          && I.cs inst node < infinity
        then begin
          (* replicate to the hot reader, paying the transfer *)
          copies.(x) <- List.sort compare (node :: copies.(x));
          read_counts.(x).(node) <- 0;
          d +. d
        end
        else d
    | Stream.Write ->
        let cost = d +. mst_weight m copies.(x) in
        List.iter (fun c -> if c <> s then bump_stale x c) copies.(x);
        (* drop copies that only absorb updates; keep the serving one *)
        let keep c =
          c = s || Option.value ~default:0 (Hashtbl.find_opt stale.(x) c) < drop_after
        in
        let survivors = List.filter keep copies.(x) in
        List.iter (fun c -> if not (keep c) then Hashtbl.remove stale.(x) c) copies.(x);
        copies.(x) <- survivors;
        cost
  in
  { name = "threshold-caching"; serve; copies = (fun ~x -> copies.(x)) }
