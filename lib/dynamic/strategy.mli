(** Online placement strategies (extension beyond the paper).

    All strategies charge the static cost model per event: a read pays
    the distance to the copy that serves it; a write pays the path to
    the nearest copy plus an MST multicast over the current copy set;
    replication and migration pay the object-transfer distance. Storage
    rent is charged by the simulator via {!copies}. *)

type t = {
  name : string;
  serve : x:int -> node:int -> Stream.kind -> float;
      (** cost of serving one event (mutates internal state) *)
  copies : x:int -> int list;  (** current copy set of object [x] *)
}

(** [serve_cost inst ~x ~copies ~node kind] is the stateless cost of
    one event against a fixed copy set: a read pays the distance to the
    nearest copy, a write that distance plus an MST multicast over
    [copies]. This is the reference cost kernel; the replay engine and
    {!static} charge the same model through the memoizing
    {!Serve_cache}. [x] labels errors only.
    @raise Dmn_prelude.Err.Error (kind [Internal], naming object [x])
    on an empty [copies]. *)
val serve_cost :
  Dmn_core.Instance.t -> x:int -> copies:int list -> node:int -> Stream.kind -> float

(** [static inst p] never changes the placement; with a stationary
    stream matching the instance tables this replays the static
    objective. *)
val static : Dmn_core.Instance.t -> Dmn_core.Placement.t -> t

(** [migrating_owner ?threshold inst] keeps exactly one copy per object
    and moves it to a requester after [threshold] (default 8) of its
    accesses since the last migration, paying the transfer distance. *)
val migrating_owner : ?threshold:int -> Dmn_core.Instance.t -> t

(** [threshold_caching ?initial ?replicate_after ?drop_after inst]
    maintains a copy set per object: a node that accumulates
    [replicate_after] (default 4) reads gets a copy (paying the
    transfer distance, charged exactly once at the promoting read); a
    copy that sees [drop_after] (default 8) writes without serving a
    read in between is dropped. The copy that serves a write always
    survives the drop scan, so the copy set never empties. Mirrors the
    count-based dynamic tree strategies in spirit.

    [initial] seeds the per-object copy sets from a placement (e.g. a
    solved static placement, as the replay engine does); by default
    every object starts with a single copy on the cheapest storable
    node.

    [cached] (default [true]) is forwarded to {!Serve_cache.create}:
    [~cached:false] recomputes every nearest-copy and MST query — the
    uncached baseline of the serve-path benchmark. Costs and copy-set
    evolution are bit-identical either way. *)
val threshold_caching :
  ?initial:Dmn_core.Placement.t ->
  ?replicate_after:int ->
  ?drop_after:int ->
  ?cached:bool ->
  Dmn_core.Instance.t ->
  t
