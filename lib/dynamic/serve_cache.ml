open Dmn_paths
module Err = Dmn_prelude.Err

(* Placement-versioned serve cache. The copy set is a sorted int array;
   every mutation bumps [version]. Derived data — the per-node nearest
   copy and the MST multicast weight — is memoized against the version
   it was computed at, so lookups after the first are O(1) and a
   placement change invalidates everything at the cost of one integer
   store. Stamps start below the initial version, so a fresh cache is
   fully cold without an O(n) fill.

   Under topology churn the metric itself mutates in place
   ({!Metric.recompute_rows} and friends bump {!Metric.version}); the
   cache records the metric version its memoized data was computed
   against and folds a mismatch into a placement-version bump, so the
   effective key is (placement version × metric version) at the cost of
   one extra int compare per query — a stale nearest-copy table can
   never survive a network change. *)
type t = {
  metric : Metric.t;
  x : int; (* object id, for error context only *)
  cached : bool;
  mutable copies : int array; (* sorted ascending, no duplicates *)
  mutable version : int;
  mutable metric_version : int; (* Metric.version the memos are valid at *)
  near_src : int array; (* valid at node v iff stamp.(v) = version *)
  near_d : float array;
  stamp : int array;
  mutable mst_version : int; (* version [mst] was computed at; 0 = never *)
  mutable mst : float;
}

let of_sorted_list copies = Array.of_list copies

let create ?(cached = true) metric ~x copies =
  let n = Metric.size metric in
  {
    metric;
    x;
    cached;
    copies = of_sorted_list copies;
    version = 1;
    metric_version = Metric.version metric;
    near_src = Array.make n (-1);
    near_d = Array.make n infinity;
    stamp = Array.make n 0;
    mst_version = 0;
    mst = 0.0;
  }

let copies t = Array.to_list t.copies
let copies_array t = t.copies
let copy_count t = Array.length t.copies
let version t = t.version

let mem t c =
  let lo = ref 0 and hi = ref (Array.length t.copies) in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if t.copies.(mid) < c then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length t.copies && t.copies.(!lo) = c

let arrays_equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
  go (Array.length a - 1)

let set_copies t copies =
  let arr = of_sorted_list copies in
  if not (arrays_equal arr t.copies) then begin
    t.copies <- arr;
    t.version <- t.version + 1
  end

let add_copy t c =
  let old = t.copies in
  let len = Array.length old in
  let arr = Array.make (len + 1) c in
  let i = ref 0 in
  while !i < len && old.(!i) < c do
    arr.(!i) <- old.(!i);
    incr i
  done;
  Array.blit old !i arr (!i + 1) (len - !i);
  t.copies <- arr;
  t.version <- t.version + 1

(* The scan replicates Strategy's historical fold: start at
   [(-1, infinity)], strict [<], copies in ascending order — so ties
   go to the smallest node id and the floats match bit for bit. *)
let scan t v =
  let cps = t.copies in
  let c = Array.length cps in
  if c = 0 then Err.failf Err.Internal "serve: object %d has an empty copy set" t.x;
  let r = Metric.row t.metric v in
  let bs = ref (-1) and bd = ref infinity in
  for i = 0 to c - 1 do
    let s = Array.unsafe_get cps i in
    let d = Metric.row_get r s in
    if d < !bd then begin
      bs := s;
      bd := d
    end
  done;
  (!bs, !bd)

(* fold a metric repair into a placement-version bump: one branch per
   query keeps the (placement × metric) keying free of a wider stamp *)
let sync_metric t =
  let mv = Metric.version t.metric in
  if mv <> t.metric_version then begin
    t.metric_version <- mv;
    t.version <- t.version + 1
  end

let nearest t v =
  sync_metric t;
  if not t.cached then scan t v
  else if t.stamp.(v) = t.version then (t.near_src.(v), t.near_d.(v))
  else begin
    let ((s, d) as res) = scan t v in
    t.near_src.(v) <- s;
    t.near_d.(v) <- d;
    t.stamp.(v) <- t.version;
    res
  end

let compute_mst t =
  Dmn_span.Steiner.approx_weight_metric t.metric (Array.to_list t.copies)

let mst_weight t =
  sync_metric t;
  if not t.cached then compute_mst t
  else if t.mst_version = t.version then t.mst
  else begin
    let w = compute_mst t in
    t.mst <- w;
    t.mst_version <- t.version;
    w
  end

let serve_cost t ~node kind =
  let _, d = nearest t node in
  match kind with Stream.Read -> d | Stream.Write -> d +. mst_weight t
