module I = Dmn_core.Instance
module P = Dmn_core.Placement
module Serial = Dmn_core.Serial
module Trace = Dmn_core.Serial.Trace
module Ckpt = Dmn_core.Serial.Checkpoint
module Ckpt_store = Dmn_core.Ckpt_store
module En = Dmn_engine.Engine
module Stream = Dmn_dynamic.Stream
module Metrics = Dmn_prelude.Metrics
module Err = Dmn_prelude.Err
module Pool = Dmn_prelude.Pool

type config = {
  engine : En.config;
  ckpt : En.checkpointing option;
  resume : string option;
  journal : string option;
  queue_cap : int;
  tick_s : float option;
  metrics_out : string option;
  max_events : int option;
  max_seconds : float option;
  pipeline : bool;
}

let default_config =
  {
    engine = En.default_config;
    ckpt = None;
    resume = None;
    journal = None;
    queue_cap = 16384;
    tick_s = None;
    metrics_out = None;
    max_events = None;
    max_seconds = None;
    pipeline = false;
  }

let rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> 0
            | line ->
                if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
                  let rest = String.sub line 6 (String.length line - 6) in
                  (* the field separator is a tab: "VmRSS:\t  123 kB" *)
                  let rest = String.map (fun c -> if c = '\t' then ' ' else c) rest in
                  match
                    String.split_on_char ' ' rest |> List.filter (fun s -> s <> "")
                  with
                  | num :: _ -> ( match int_of_string_opt num with Some v -> v | None -> 0)
                  | [] -> 0
                else scan ()
          in
          scan ())

module Core = struct
  type t = {
    cfg : config;
    inst : I.t;
    eng : En.t;
    journal : Trace.Journal.t option;
    queue : Stream.item Queue.t;
    mutable queued_reqs : int;
    reg : Metrics.t;
    c_accepted : Metrics.counter;
    c_shed : Metrics.counter;
    c_malformed : Metrics.counter;
    c_epochs : Metrics.counter;
    c_flushes : Metrics.counter;
    c_journal_syncs : Metrics.counter;
    c_ckpt_fallbacks : Metrics.counter;
    c_segments_pruned : Metrics.counter;
    g_queue : Metrics.gauge;
    g_uptime : Metrics.gauge;
    g_rss_kb : Metrics.gauge;
    g_journal_bytes : Metrics.gauge;
    g_journal_segments : Metrics.gauge;
    g_ckpt_gen : Metrics.gauge;
    header : Trace.header;
    started : float;
    mutable stopped : bool;
    (* pipelined re-solve in flight: the spare domain running
       [En.solve_pending] on the just-closed epoch, and that epoch's
       pending record awaiting [En.step_commit] *)
    mutable solving : (unit Domain.t * En.pending) option;
  }

  let instance t = t.inst
  let queue_depth t = t.queued_reqs
  let accepted t = Metrics.counter_value t.c_accepted
  let shed t = Metrics.counter_value t.c_shed
  let malformed t = Metrics.counter_value t.c_malformed
  let served t = En.events_consumed t.eng
  let epochs t = En.epochs_done t.eng
  let uptime_s t = Unix.gettimeofday () -. t.started
  let count_malformed t = Metrics.incr t.c_malformed
  let ckpt_fallbacks t = Metrics.counter_value t.c_ckpt_fallbacks
  let journal_bytes t = match t.journal with Some j -> Trace.Journal.bytes_on_disk j | None -> 0
  let journal_segments t = match t.journal with Some j -> Trace.Journal.segments j | None -> 0
  let durable_offset t = match t.journal with Some j -> Trace.Journal.durable j | None -> 0

  (* Newest generation in the checkpoint directory (-1 when not
     checkpointing or nothing written yet). Read from the manifest so
     it stays honest across resumes and external fsck. *)
  let ckpt_generation t =
    match t.cfg.ckpt with
    | None -> -1
    | Some c -> (
        match Ckpt_store.read_manifest_res c.En.dir with
        | Ok m -> m.Ckpt_store.latest
        | Error _ -> -1)

  let create ?pool cfg inst placement =
    if cfg.queue_cap <= 0 then
      Err.fail Err.Validation "serve: queue capacity must be positive";
    (match (cfg.resume, cfg.journal) with
    | Some _, None ->
        Err.fail Err.Validation
          "serve: --resume needs the ingest journal that fed the checkpointed run (--journal)"
    | _ -> ());
    let header = { Trace.nodes = I.n inst; objects = I.objects inst } in
    (* [resume] names a checkpoint {e directory}: the newest valid
       generation loads, corrupt newer ones are skipped and counted. *)
    let resume_loaded = Option.map Ckpt_store.load cfg.resume in
    let resume_ckpt = Option.map (fun l -> l.Ckpt_store.ckpt) resume_loaded in
    let eng = En.create ?pool ~config:cfg.engine ?ckpt:cfg.ckpt ?resume:resume_ckpt inst placement in
    let queue = Queue.create () in
    let queued_reqs = ref 0 in
    (* Resume: the journal chain holds every event the checkpointed run
       accepted that is not yet pruned. Fast-forward its consumed part
       (fingerprint-checked when the chain is complete, positionally
       skipped past pruned segments) and re-queue the unserved tail —
       it re-enters the batcher exactly where it would have, so the
       resumed run's epoch boundaries (and metrics) match the
       uninterrupted run's. *)
    (match resume_ckpt with
    | None -> ()
    | Some _ ->
        let dir = Option.get cfg.journal in
        let chain = Trace.Journal.read_chain ~tolerate_truncation:true dir in
        let h = chain.Trace.Journal.chain_header in
        if h <> header then
          Err.failf ~file:dir Err.Validation
            "journal header (%d nodes, %d objects) does not match the instance (%d nodes, %d \
             objects)"
            h.Trace.nodes h.Trace.objects header.Trace.nodes header.Trace.objects;
        let rest =
          En.fast_forward_from eng ~base:chain.Trace.Journal.base
            (Seq.map En.of_trace_item (List.to_seq chain.Trace.Journal.chain_items))
        in
        Seq.iter
          (fun item ->
            Queue.add item queue;
            match item with Stream.Req _ -> incr queued_reqs | Stream.Topo _ -> ())
          rest);
    let journal =
      match cfg.journal with
      | None -> None
      | Some dir ->
          (* a resumed run continues the existing chain; a fresh run
             starts a fresh one *)
          Some (Trace.Journal.create ~append:(cfg.resume <> None) dir header)
    in
    (* registration order is the dump's field order *)
    let reg = Metrics.create () in
    let c_accepted = Metrics.counter reg "accepted_total" in
    let c_shed = Metrics.counter reg "shed_total" in
    let c_malformed = Metrics.counter reg "malformed_total" in
    let c_epochs = Metrics.counter reg "epochs_total" in
    let c_flushes = Metrics.counter reg "flushes_total" in
    let c_journal_syncs = Metrics.counter reg "journal_syncs_total" in
    let c_ckpt_fallbacks = Metrics.counter reg "ckpt_fallbacks_total" in
    let c_segments_pruned = Metrics.counter reg "journal_segments_pruned_total" in
    let g_queue = Metrics.gauge reg "queue_depth" in
    let g_uptime = Metrics.gauge reg "uptime_s" in
    let g_rss_kb = Metrics.gauge reg "rss_kb" in
    let g_journal_bytes = Metrics.gauge reg "journal_bytes" in
    let g_journal_segments = Metrics.gauge reg "journal_segments" in
    let g_ckpt_gen = Metrics.gauge reg "ckpt_generation" in
    (match resume_loaded with
    | Some l when l.Ckpt_store.fallbacks > 0 ->
        Metrics.add c_ckpt_fallbacks l.Ckpt_store.fallbacks;
        Printf.eprintf
          "dmnet serve: checkpoint generation fallback: skipped %d corrupt newer generation(s), \
           resumed from gen %d\n%!"
          l.Ckpt_store.fallbacks l.Ckpt_store.generation
    | _ -> ());
    {
      cfg;
      inst;
      eng;
      journal;
      queue;
      queued_reqs = !queued_reqs;
      reg;
      c_accepted;
      c_shed;
      c_malformed;
      c_epochs;
      c_flushes;
      c_journal_syncs;
      c_ckpt_fallbacks;
      c_segments_pruned;
      g_queue;
      g_uptime;
      g_rss_kb;
      g_journal_bytes;
      g_journal_segments;
      g_ckpt_gen;
      header;
      started = Unix.gettimeofday ();
      stopped = false;
      solving = None;
    }

  let journal_sync t =
    match t.journal with
    | None -> ()
    | Some j ->
        Trace.Journal.sync j;
        Metrics.incr t.c_journal_syncs

  (* Sound only immediately after a checkpoint write: at that moment
     the engine's consumed item count {e is} the checkpoint's coverage,
     so every segment strictly below it is durably replaceable. *)
  let prune_covered t =
    match (t.cfg.ckpt, t.journal) with
    | Some _, Some j ->
        let removed = Trace.Journal.prune j ~covered:(En.items_consumed t.eng) in
        if removed > 0 then Metrics.add t.c_segments_pruned removed
    | _ -> ()

  let stream_to_trace_item = function
    | Stream.Req { Stream.node; x; kind } ->
        Trace.Req { Trace.node; x; write = kind = Stream.Write }
    | Stream.Topo tp -> Trace.Topo tp

  let push t item =
    match item with
    | Stream.Req _ when t.queued_reqs >= t.cfg.queue_cap ->
        Metrics.incr t.c_shed;
        `Shed
    | _ ->
        (* journal before queue: an event the engine can ever see is on
           its way to disk first *)
        (match t.journal with
        | None -> ()
        | Some j -> Trace.Journal.add j (stream_to_trace_item item));
        Queue.add item t.queue;
        (match item with Stream.Req _ -> t.queued_reqs <- t.queued_reqs + 1 | _ -> ());
        Metrics.incr t.c_accepted;
        `Accepted

  let push_line t line =
    match Trace.item_of_line_res ~header:t.header line with
    | Ok None -> `Ignored
    | Ok (Some item) -> (push t (En.of_trace_item item) :> [ `Accepted | `Shed | `Ignored | `Malformed of Err.t ])
    | Error e -> `Malformed e

  (* Dequeue one count-epoch: items in arrival order up to and
     including the [epoch]-th request; later items stay queued. This is
     the same chunking the one-shot replay wrapper does, so epoch
     boundaries — and therefore metrics — are byte-identical between a
     daemon and a replay fed the same stream. *)
  let pull_epoch t =
    let epoch = t.cfg.engine.En.epoch in
    let acc = ref [] in
    let reqs = ref 0 in
    while !reqs < epoch do
      match Queue.pop t.queue with
      | Stream.Req _ as it ->
          incr reqs;
          t.queued_reqs <- t.queued_reqs - 1;
          acc := it :: !acc
      | Stream.Topo _ as it -> acc := it :: !acc
    done;
    List.rev !acc

  let sync_if_ckpt_due t =
    match t.cfg.ckpt with
    | Some c when (En.epochs_done t.eng + 1) mod c.En.every = 0 -> journal_sync t
    | _ -> ()

  (* Commit one epoch on the driving thread and do the bookkeeping
     that must coincide with the commit: the epoch counter, and the
     prune that is only sound while consumed = checkpoint coverage. *)
  let commit_epoch t p =
    let before = En.epochs_done t.eng in
    En.step_commit t.eng p;
    Metrics.incr t.c_epochs;
    match t.cfg.ckpt with
    | Some c ->
        let after = En.epochs_done t.eng in
        if after > before && after mod c.En.every = 0 then prune_covered t
    | None -> ()

  (* Application barrier for the pipelined re-solve: join the spare
     domain running the just-closed epoch's solves (the join
     synchronizes memory, so the driving thread sees the finished
     results), then apply them. Everything order-sensitive — float
     accumulation, fault coins, checkpoint writes — happens in
     [commit_epoch] on the driving thread, so a pipelined run is
     byte-identical to an unpipelined one. *)
  let barrier t =
    match t.solving with
    | None -> ()
    | Some (d, p) ->
        Domain.join d;
        t.solving <- None;
        commit_epoch t p

  let step_batch t batch =
    barrier t;
    (* sound here even though with pipelining the checkpoint is written
       one [step_batch] later (at the next barrier): every item of the
       epoch we are about to begin was journaled on push, before
       [pull_epoch] handed it to us, so this sync already covers
       everything that checkpoint will claim as consumed *)
    sync_if_ckpt_due t;
    if t.cfg.pipeline then begin
      let p = En.step_begin t.eng batch in
      if En.pending_solves p > 0 then
        t.solving <- Some (Domain.spawn (fun () -> En.solve_pending t.eng p), p)
      else
        (* nothing to overlap: committing inline keeps latency flat and
           avoids a spawn per clean epoch *)
        commit_epoch t p
    end
    else begin
      let before = En.epochs_done t.eng in
      En.step t.eng batch;
      Metrics.incr t.c_epochs;
      (* the engine checkpoints inside [step] when the boundary is due;
         prune right there, while consumed = coverage *)
      match t.cfg.ckpt with
      | Some c ->
          let after = En.epochs_done t.eng in
          if after > before && after mod c.En.every = 0 then prune_covered t
      | None -> ()
    end

  let maybe_step t =
    while t.queued_reqs >= t.cfg.engine.En.epoch do
      step_batch t (pull_epoch t)
    done

  let flush t =
    if not (Queue.is_empty t.queue) then begin
      let acc = ref [] in
      while not (Queue.is_empty t.queue) do
        acc := Queue.pop t.queue :: !acc
      done;
      t.queued_reqs <- 0;
      Metrics.incr t.c_flushes;
      step_batch t (List.rev !acc)
    end

  let refresh_gauges t =
    Metrics.set t.g_queue (float_of_int t.queued_reqs);
    Metrics.set t.g_uptime (uptime_s t);
    Metrics.set t.g_rss_kb (float_of_int (rss_kb ()));
    Metrics.set t.g_journal_bytes (float_of_int (journal_bytes t));
    Metrics.set t.g_journal_segments (float_of_int (journal_segments t));
    Metrics.set t.g_ckpt_gen (float_of_int (ckpt_generation t))

  let metrics_dump t =
    refresh_gauges t;
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\"dmnet\":\"serve-metrics\",\"version\":1,\"server\":";
    Buffer.add_string buf (Metrics.snapshot_to_json (Metrics.snapshot t.reg));
    Buffer.add_string buf ",\"engine\":";
    Buffer.add_string buf (Metrics.snapshot_to_json (En.live_snapshot t.eng));
    Buffer.add_string buf ",\"ops\":";
    Buffer.add_string buf (Metrics.snapshot_to_json (En.live_ops t.eng));
    Buffer.add_char buf '}';
    Buffer.contents buf

  let health t =
    Printf.sprintf
      "ok uptime_s=%.1f epochs=%d served=%d queue=%d accepted=%d shed=%d rss_kb=%d \
       journal_bytes=%d segments=%d ckpt_gen=%d ckpt_fallbacks=%d"
      (uptime_s t) (epochs t) (served t) t.queued_reqs (accepted t) (shed t) (rss_kb ())
      (journal_bytes t) (journal_segments t) (ckpt_generation t) (ckpt_fallbacks t)

  let stats t =
    Printf.sprintf
      "{\"dmnet\":\"serve-stats\",\"version\":1,\"uptime_s\":%s,\"epochs\":%d,\"served\":%d,\"accepted\":%d,\"shed\":%d,\"malformed\":%d,\"queue_depth\":%d,\"rss_kb\":%d,\"journal_bytes\":%d,\"journal_segments\":%d,\"ckpt_generation\":%d,\"ckpt_fallbacks\":%d}"
      (Metrics.json_float (uptime_s t))
      (epochs t) (served t) (accepted t) (shed t) (malformed t) t.queued_reqs (rss_kb ())
      (journal_bytes t) (journal_segments t) (ckpt_generation t) (ckpt_fallbacks t)

  let result t =
    barrier t;
    En.finish t.eng

  let shutdown ?(drain = false) t =
    if not t.stopped then begin
      t.stopped <- true;
      maybe_step t;
      if drain then flush t;
      (* flush may itself have started a pipelined epoch; the final
         checkpoint and metrics must see every epoch committed *)
      barrier t;
      (* durability order: the journal must cover everything the final
         checkpoint claims was consumed; pruning comes last, after the
         manifest durably references the covering checkpoint *)
      journal_sync t;
      (match t.cfg.ckpt with
      | Some _ ->
          En.checkpoint_now t.eng;
          prune_covered t
      | None -> ());
      (match t.journal with None -> () | Some j -> Trace.Journal.close j);
      match t.cfg.metrics_out with
      | None -> ()
      | Some path -> En.write_metrics path t.inst (En.finish t.eng)
    end

  (* Model a crash landing between [En.step_begin] and [En.step_commit]
     of a pipelined epoch: the solve domain is joined (a process can't
     abandon a running domain) but its results are {e discarded} — no
     commit, no checkpoint, no final sync beyond what already happened.
     The journal was appended on push, so a subsequent resume replays
     the in-flight epoch from the last committed checkpoint and must
     land byte-identical to an uninterrupted run. *)
  let kill t =
    if not t.stopped then begin
      t.stopped <- true;
      (match t.solving with
      | Some (d, _) ->
          Domain.join d;
          t.solving <- None
      | None -> ());
      match t.journal with None -> () | Some j -> Trace.Journal.close j
    end
end

type summary = {
  served_events : int;
  accepted_events : int;
  shed_events : int;
  malformed_lines : int;
  epochs_served : int;
  queued_unserved : int;
  elapsed_s : float;
  peak_rss_kb : int;
}

let summary ?peak_rss_kb (t : Core.t) =
  {
    served_events = Core.served t;
    accepted_events = Core.accepted t;
    shed_events = Core.shed t;
    malformed_lines = Core.malformed t;
    epochs_served = Core.epochs t;
    queued_unserved = Core.queue_depth t;
    elapsed_s = Core.uptime_s t;
    peak_rss_kb = (match peak_rss_kb with Some v -> v | None -> rss_kb ());
  }

(* ---------- the select loop ---------- *)

type conn = { fd : Unix.file_descr; buf : Buffer.t; is_stdin : bool }

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd b !off (len - !off) with
    | 0 -> off := len (* give up silently; the peer is gone *)
    | w -> off := !off + w
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let run_daemon ?pool cfg inst placement ~socket ~use_stdin =
  if socket = None && not use_stdin then
    Err.fail Err.Validation "serve: need at least one ingest source (--socket and/or --stdin)";
  let core = Core.create ?pool cfg inst placement in
  let listen_fd =
    match socket with
    | None -> None
    | Some path ->
        (match Unix.lstat path with
        | { Unix.st_kind = Unix.S_SOCK; _ } -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | _ -> Err.failf ~file:path Err.Io "refusing to replace a non-socket file"
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.bind fd (Unix.ADDR_UNIX path);
           Unix.listen fd 16
         with Unix.Unix_error (err, op, _) ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           Err.failf ~file:path Err.Io "%s: %s" op (Unix.error_message err));
        Some (fd, path)
  in
  let stop_requested = ref false in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop_requested := true)) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop_requested := true)) in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let conns = ref [] in
  let stdin_open = ref use_stdin in
  let malformed_logged = ref 0 in
  let peak_rss = ref (rss_kb ()) in
  let last_rss_sample = ref (Unix.gettimeofday ()) in
  let last_tick = ref (Unix.gettimeofday ()) in
  let drain_on_stop = ref false in
  let finally () =
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigint prev_int;
    Sys.set_signal Sys.sigpipe prev_pipe;
    List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !conns;
    match listen_fd with
    | None -> ()
    | Some (fd, path) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (try Unix.unlink path with Unix.Unix_error _ -> ())
  in
  Fun.protect ~finally (fun () ->
      let reply conn line =
        let out = line ^ "\n" in
        if conn.is_stdin then begin
          print_string out;
          flush stdout
        end
        else
          try write_all conn.fd out
          with Unix.Unix_error _ -> () (* peer vanished; reader side will reap *)
      in
      let handle_line conn line =
        match String.trim line with
        | "" -> ()
        | "metrics" -> reply conn (Core.metrics_dump core)
        | "health" -> reply conn (Core.health core)
        | "stats" -> reply conn (Core.stats core)
        | "sync" ->
            Core.journal_sync core;
            reply conn (Printf.sprintf "ok offset=%d" (Core.durable_offset core))
        | "shutdown" ->
            reply conn "bye";
            stop_requested := true
        | data -> (
            match Core.push_line core data with
            | `Accepted | `Shed | `Ignored -> ()
            | `Malformed e ->
                Core.count_malformed core;
                let msg = "err: " ^ Err.to_string e in
                if not conn.is_stdin then reply conn msg;
                if !malformed_logged < 5 then begin
                  incr malformed_logged;
                  Printf.eprintf "dmnet serve: %s\n%!" msg
                end)
      in
      let drain_buffer conn =
        (* consume complete lines; the tail stays buffered *)
        let s = Buffer.contents conn.buf in
        let n = String.length s in
        let start = ref 0 in
        (try
           while true do
             let i = String.index_from s !start '\n' in
             handle_line conn (String.sub s !start (i - !start));
             start := i + 1
           done
         with Not_found -> ());
        if !start > 0 then begin
          Buffer.clear conn.buf;
          if !start < n then Buffer.add_substring conn.buf s !start (n - !start)
        end
      in
      let close_conn conn =
        if conn.is_stdin then stdin_open := false
        else begin
          (try Unix.close conn.fd with Unix.Unix_error _ -> ());
          conns := List.filter (fun c -> c.fd != conn.fd) !conns
        end;
        (* a torn final line at EOF is data loss we can still report *)
        if Buffer.length conn.buf > 0 then begin
          handle_line conn (Buffer.contents conn.buf);
          Buffer.clear conn.buf
        end
      in
      let chunk = Bytes.create 65536 in
      let read_conn conn =
        match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
        | 0 -> close_conn conn
        | r ->
            Buffer.add_subbytes conn.buf chunk 0 r;
            drain_buffer conn
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn conn
      in
      let stdin_conn = { fd = Unix.stdin; buf = Buffer.create 4096; is_stdin = true } in
      let started = Unix.gettimeofday () in
      let stopping = ref false in
      while not !stopping do
        let now = Unix.gettimeofday () in
        (* stop conditions, checked at the loop head so signal delivery
           during serving is honored promptly *)
        (match cfg.max_seconds with
        | Some limit when now -. started >= limit -> stop_requested := true
        | _ -> ());
        (match cfg.max_events with
        | Some limit when Core.served core >= limit -> stop_requested := true
        | _ -> ());
        if !stop_requested then stopping := true
        else if (not !stdin_open) && listen_fd = None && !conns = [] then begin
          (* pure-stdin mode at end of input: drain and leave *)
          drain_on_stop := true;
          stopping := true
        end
        else begin
          let fds =
            (match listen_fd with Some (fd, _) -> [ fd ] | None -> [])
            @ (if !stdin_open then [ Unix.stdin ] else [])
            @ List.map (fun c -> c.fd) !conns
          in
          let timeout =
            match cfg.tick_s with Some t -> Float.min 0.25 (Float.max 0.01 t) | None -> 0.25
          in
          (match Unix.select fds [] [] timeout with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | ready, _, _ ->
              List.iter
                (fun fd ->
                  match listen_fd with
                  | Some (lfd, _) when fd == lfd -> (
                      match Unix.accept lfd with
                      | cfd, _ ->
                          conns := { fd = cfd; buf = Buffer.create 4096; is_stdin = false } :: !conns
                      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
                  | _ ->
                      if fd == Unix.stdin && !stdin_open then read_conn stdin_conn
                      else
                        match List.find_opt (fun c -> c.fd == fd) !conns with
                        | Some conn -> read_conn conn
                        | None -> ())
                ready);
          Core.maybe_step core;
          (match cfg.tick_s with
          | Some tick when Unix.gettimeofday () -. !last_tick >= tick ->
              Core.flush core;
              last_tick := Unix.gettimeofday ()
          | _ -> ());
          let now = Unix.gettimeofday () in
          if now -. !last_rss_sample >= 0.5 then begin
            last_rss_sample := now;
            peak_rss := max !peak_rss (rss_kb ())
          end
        end
      done;
      Core.shutdown ~drain:!drain_on_stop core;
      peak_rss := max !peak_rss (rss_kb ());
      summary ~peak_rss_kb:!peak_rss core)
