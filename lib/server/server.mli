(** Online serving daemon over the replay engine.

    The paper's dynamic model (Section 4) is inherently online —
    requests arrive one at a time and the algorithm must serve and
    migrate without knowing the future. This module turns the
    repository's epoch replay engine into a long-running service:
    request and topology events arrive as lines of the
    {!Dmn_core.Serial.Trace} v1 grammar over a Unix-domain socket or a
    stdin pipe, are journaled, batched into epochs by count (or served
    early on a wall-clock tick), and run through the exact
    {!Dmn_engine.Engine.step} code path the offline replay uses — so a
    daemon fed a trace produces metrics byte-identical to [dmnet
    replay] over the same file.

    Layering: {!Core} is the sans-I/O heart — bounded ingest queue,
    shedding, epoch batcher, journal, checkpoints, metrics — driveable
    in-process by tests and benchmarks; {!run_daemon} wraps it in a
    [select] loop with socket/stdin ingest, a line-oriented control
    protocol, and signal-driven graceful shutdown.

    {2 Wire protocol}

    Data lines are v1 trace items ([r|w <node> <x>], [ew|eu <u> <v>
    <w>], [ed <u> <v>], [nd|nu <node>]); blank lines, [#] comments and
    (matching) trace headers are ignored, so [cat trace.v1 | dmnet
    serve --stdin] and repeated concatenations both work. Control
    lines — [metrics], [health], [stats], [sync], [shutdown] — answer
    with exactly one line on the same connection: [metrics] and
    [stats] reply with a JSON document, [health] with a space-separated
    [key=value] line, [sync] forces a journal fsync, [shutdown]
    initiates graceful shutdown. Anything else is counted as malformed
    (never silently dropped) and answered with [err: ...].

    {2 Overload}

    The ingest queue is bounded by [queue_cap] {e requests}: a request
    arriving while the queue is full is {e shed} — counted in
    [shed_total] and dropped before it reaches the journal or the
    engine. Topology events are never shed (they are state, not load).

    {2 Durability}

    Accepted items are appended to the journal (when configured)
    before they can reach the engine, and the journal is [fsync]ed
    before any checkpoint is written and again at shutdown — so a
    checkpoint never references an event the journal might lose, and
    kill-and-restart with [--resume] replays the journal tail through
    the same batcher, byte-identically.

    The journal is a segmented directory
    ({!Dmn_core.Serial.Trace.Journal}) and checkpoints live in a
    generation directory ({!Dmn_core.Ckpt_store}): after each
    checkpoint the segments it fully covers are pruned, so journal
    disk usage stays bounded over a soak; loading falls back past a
    corrupt newest generation, counted in [ckpt_fallbacks_total] and
    surfaced by [health]. The [sync] control line replies
    [ok offset=N] with the durable journal offset (items on disk). *)

module En := Dmn_engine.Engine

type config = {
  engine : En.config;
  ckpt : En.checkpointing option;
  resume : string option;
      (** checkpoint {e directory} to resume from (newest valid
          generation; corrupt newer ones are skipped and counted);
          requires [journal] (the consumed prefix is fast-forwarded
          out of the journal chain and the unserved tail re-queued) *)
  journal : string option;
      (** ingest journal {e directory} (segmented v1 trace,
          {!Dmn_core.Serial.Trace.Journal}), appended, fsynced, and
          pruned as checkpoints cover its segments *)
  queue_cap : int;  (** max queued unserved requests before shedding (> 0) *)
  tick_s : float option;
      (** wall-clock flush: serve a partial epoch when this much time
          passed since the last one. Trades byte-identical batching
          for bounded latency — leave [None] when determinism matters. *)
  metrics_out : string option;  (** write the final engine metrics JSON here on shutdown *)
  max_events : int option;  (** stop after this many served requests (tests, benches) *)
  max_seconds : float option;  (** stop after this much wall-clock time *)
  pipeline : bool;
      (** overlap the just-closed epoch's dirty-set solve
          ({!Dmn_engine.Engine.solve_pending} on a spawned domain) with
          journaling and batching of the next epoch. The solved
          placements are applied at a deterministic barrier — the start
          of the next epoch's serve (or shutdown/[result]) — on the
          driving thread, so metrics, checkpoints, and resume stay
          byte-identical to an unpipelined run. Requires spare cores
          beyond the engine pool to actually help. *)
}

(** [engine = En.default_config], no checkpointing/journal/resume,
    [queue_cap = 16384], no tick, no limits, no pipelining. *)
val default_config : config

(** Resident set size of this process in kB ([/proc/self/status]
    VmRSS; 0 where unavailable). *)
val rss_kb : unit -> int

module Core : sig
  (** A live serving core. Not thread-safe: drive from one thread
      (parallelism lives inside the engine's pool fan-out). *)
  type t

  (** Builds the engine (resuming from [config.resume] if set —
      loading the checkpoint, fast-forwarding the journal's consumed
      prefix and re-queueing its unserved tail), opens or continues
      the journal, and registers the server metrics.
      @raise Dmn_prelude.Err.Error as {!Dmn_engine.Engine.create} /
      checkpoint loading do, and (kind [Validation]) when [resume] is
      set without [journal]. *)
  val create : ?pool:Dmn_prelude.Pool.t -> config -> Dmn_core.Instance.t -> Dmn_core.Placement.t -> t

  (** [push t item] offers one item: journaled and queued, or shed
      when it is a request and the queue is full. Requests are
      validated by the engine at serve time; use {!push_line} for
      untrusted input. *)
  val push : t -> Dmn_dynamic.Stream.item -> [ `Accepted | `Shed ]

  (** [push_line t line] parses one wire line
      ({!Dmn_core.Serial.Trace.item_of_line_res}) and pushes the item;
      [`Ignored] for blank/comment/header lines, [`Malformed] (with
      the structured error) for garbage — counted, never raised. *)
  val push_line :
    t -> string -> [ `Accepted | `Shed | `Ignored | `Malformed of Dmn_prelude.Err.t ]

  (** Serve as many full count-epochs as are queued (zero or more
      {!Dmn_engine.Engine.step} calls). The journal is fsynced before
      any step whose checkpoint is due. *)
  val maybe_step : t -> unit

  (** Serve everything queued as one (partial) epoch — the wall-clock
      tick path and the end-of-stream drain. A no-op on an empty
      queue. *)
  val flush : t -> unit

  val queue_depth : t -> int  (** unserved queued requests *)

  val accepted : t -> int
  val shed : t -> int
  val malformed : t -> int

  (** Engine events consumed, resumed prefix included. *)
  val served : t -> int

  val epochs : t -> int
  val uptime_s : t -> float

  (** Checkpoint-generation fallbacks taken at resume (corrupt newer
      generations skipped, plus one for a missing/corrupt manifest). *)
  val ckpt_fallbacks : t -> int

  val journal_bytes : t -> int  (** journal bytes on disk (0 without a journal) *)

  val journal_segments : t -> int  (** live journal segment count *)

  (** Durable journal offset: items fsynced to disk — what a crash
      right now is guaranteed not to lose. *)
  val durable_offset : t -> int

  (** Newest checkpoint generation on disk, [-1] when not
      checkpointing (or nothing written yet). *)
  val ckpt_generation : t -> int

  (** Count a malformed line (the daemon loop calls this on
      [`Malformed] so overload and garbage are both observable). *)
  val count_malformed : t -> unit

  (** One-line JSON document: [{"dmnet":"serve-metrics","version":1,
      "server":{...},"engine":{...},"ops":{...}}] — the server
      registry (ingest counters, queue depth, uptime, RSS), the
      engine's live workload snapshot (histogram included) and its
      operational counters. Round-trips through
      {!Dmn_prelude.Jsonx.parse}. *)
  val metrics_dump : t -> string

  (** One-line [ok key=value ...] health summary. *)
  val health : t -> string

  (** One-line JSON ingest/progress summary (a cheap [stats] probe —
      no histogram). *)
  val stats : t -> string

  (** Force a journal fsync now (no-op without a journal). *)
  val journal_sync : t -> unit

  (** Graceful shutdown: serve remaining full epochs ([drain = true]
      also flushes the partial tail — the end-of-stream case; the
      default [false] leaves the tail journaled for a resume), commit
      any pipelined epoch still in flight, fsync and close the
      journal, write a final checkpoint and the final metrics file
      when configured. Idempotent. *)
  val shutdown : ?drain:bool -> t -> unit

  (** Abrupt stop for crash testing: when a pipelined epoch is in
      flight its solve domain is joined but the results are {e
      discarded} — no commit, no final checkpoint, no sync beyond
      what already happened — then the journal is closed. Models a
      crash landing between epoch begin and commit; a fresh core
      resuming from the same directories must replay to the same
      bytes as an uninterrupted run. Idempotent with {!shutdown}
      (whichever runs first wins). *)
  val kill : t -> unit

  (** The engine result so far; commits any pipelined epoch still in
      flight first (call after {!shutdown} for finals). *)
  val result : t -> En.result

  val instance : t -> Dmn_core.Instance.t
end

type summary = {
  served_events : int;
  accepted_events : int;
  shed_events : int;
  malformed_lines : int;
  epochs_served : int;
  queued_unserved : int;  (** journaled but unserved at shutdown (await resume) *)
  elapsed_s : float;
  peak_rss_kb : int;
}

val summary : ?peak_rss_kb:int -> Core.t -> summary

(** [run_daemon ?pool config inst placement ~socket ~use_stdin] runs
    the serving loop until SIGTERM/SIGINT, a [shutdown] control
    command, a configured limit, or — in pure-stdin mode — end of
    input (which drains the partial tail so a piped trace reproduces
    the replay totals). Opens a Unix-domain listener at [socket] when
    given (replacing a stale socket file), reads data and control
    lines from any connection, and answers on the same connection;
    with [use_stdin] data also flows from stdin (control replies to
    stdout). At least one ingest source is required. Installs
    SIGTERM/SIGINT/SIGPIPE handlers for the duration and restores the
    previous ones on exit. Returns the final {!summary}.
    @raise Dmn_prelude.Err.Error on setup or I/O failure (the CLI maps
    kinds to sysexits codes). *)
val run_daemon :
  ?pool:Dmn_prelude.Pool.t ->
  config ->
  Dmn_core.Instance.t ->
  Dmn_core.Placement.t ->
  socket:string option ->
  use_stdin:bool ->
  summary
