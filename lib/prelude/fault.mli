(** Deterministic fault injection for chaos testing.

    Production code is instrumented with named {e injection points}
    ([Pool] task execution, [Serial] file I/O). When injection is
    enabled, each point rolls a pseudo-random coin that is a {e pure
    function} of [(seed, point name, salt)] — no global ordering, no
    wall clock — so a given seed reproduces the exact same set of
    injected failures on every run, at any domain count.

    Injection is disabled by default and costs one atomic load per
    point when off. It is enabled either programmatically with
    {!configure} (tests) or by the environment ([DMNET_FAULT_RATE] > 0
    enables; [DMNET_FAULT_SEED] picks the seed, default 0;
    [DMNET_FAULT_POINTS] optionally restricts injection to a
    comma-separated list of point names, e.g.
    [DMNET_FAULT_POINTS=engine.resolve]).

    An injected failure raises [Err.Error] with kind {!Err.Fault} and a
    message naming the point, salt and seed. *)

type config = {
  seed : int;
  rate : float;  (** probability in [0, 1] that a point fires *)
  points : string list;  (** restrict to these points; [[]] = all *)
}

(** [configure ?seed ?rate ?points ()] enables injection (defaults:
    [seed 0], [rate 0.1], all points). @raise Invalid_argument if
    [rate] is not in [0, 1] or is NaN. *)
val configure : ?seed:int -> ?rate:float -> ?points:string list -> unit -> unit

(** [disable ()] turns injection off (also overriding the
    environment). *)
val disable : unit -> unit

(** [active ()] is the current configuration, if enabled. The initial
    state is read lazily from [DMNET_FAULT_RATE] / [DMNET_FAULT_SEED]. *)
val active : unit -> config option

(** [check_at point salt] raises [Err.Error] (kind [Fault]) iff
    injection is enabled, [point] is selected, and the deterministic
    coin for [(seed, point, salt)] falls below the rate. Use an
    externally meaningful salt (e.g. the task index) so the outcome is
    independent of scheduling. *)
val check_at : string -> int -> unit

(** [check point] is {!check_at} with a per-point monotonic counter as
    salt — deterministic for single-threaded call sites such as file
    I/O, where the k-th operation at a point always draws the same
    coin. *)
val check : string -> unit

(** [reset_counters ()] zeroes every per-point counter stream, so a
    chaos harness can replay the exact same fault schedule across
    repeated runs in one process (tests, benches). *)
val reset_counters : unit -> unit

(** [would_fail cfg point salt] is the pure coin used by {!check_at},
    exposed for tests. *)
val would_fail : config -> string -> int -> bool

(** [fires_at point salt] is [check_at] as a predicate: [true] iff the
    coin fires, instead of raising. For call sites that implement a
    custom failure behavior (short writes, [ENOSPC]) rather than the
    generic [Fault] error. *)
val fires_at : string -> int -> bool

(** [fires point] is {!fires_at} with the same per-point monotonic
    counter {!check} uses. Points checked via [fires] and via [check]
    share one counter stream per name — use distinct names. *)
val fires : string -> bool
