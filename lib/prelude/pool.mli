(** Fixed-size domain pool for deterministic data parallelism.

    The library's algorithms are embarrassingly parallel per object (and
    per source node for metric closures): every task writes one private
    result slot, so a pool run returns results {e bit-identical} to the
    sequential [Array.init] order no matter how tasks are scheduled.

    Execution is {e batched}: an index range is split into contiguous
    chunks (about [4 x domains] by default) claimed off a single atomic
    cursor, so each domain grabs whole batches and dispatch overhead is
    paid per chunk, not per element. All per-element entry points
    ({!parallel_init}, {!parallel_map}, {!parallel_iter},
    {!supervised_init}) are expressed on top of {!parallel_chunks};
    fault-injection coins and supervision salts stay indexed per
    {e element}, so fault outcomes are independent of the chunking and
    the domain count.

    Built directly on [Domain]/[Mutex]/[Condition] (OCaml >= 5.0); one
    job runs at a time and the submitting domain participates in the
    work. Pools are driven from one domain at a time; a chunk body that
    calls back into a pool (any pool) runs its sub-tasks sequentially
    rather than deadlocking. *)

type t

(** [create ~domains] spawns [domains - 1] worker domains (the caller is
    the last one). @raise Invalid_argument if [domains < 1]. *)
val create : domains:int -> t

(** Number of domains (including the submitting one). *)
val size : t -> int

(** [shutdown t] joins the workers. The pool must be idle; further jobs
    on it run nothing. Idempotent. *)
val shutdown : t -> unit

(** [parallel_chunks t ?chunks n body] splits [0, n) into [?chunks]
    (default about [4 x size t], clamped to [1, n]) contiguous chunks
    and runs [body lo hi] once per chunk over the pool, each chunk
    claimed by exactly one domain off an atomic cursor. Bodies must
    write disjoint state. Empty ranges return immediately; singleton
    ranges and single-domain pools run [body 0 n] directly on the
    submitting domain with no pool round-trip. The first exception
    raised by a chunk abandons unclaimed chunks and is re-raised in the
    submitter once in-flight chunks drain.

    [parallel_chunks] rolls no fault coins itself — bodies that need
    the ["pool.task"] injection point roll it per element (as
    {!parallel_init} does), keeping fault outcomes independent of the
    chunk count.
    @raise Invalid_argument if [n < 0] or [chunks < 1]. *)
val parallel_chunks : t -> ?chunks:int -> int -> (int -> int -> unit) -> unit

(** [chunk_plan t ?chunks n] is the [(chunks, chunk_size)] split that
    {!parallel_chunks} would use for a range of [n] elements: [(0, 0)]
    for an empty range, [(1, n)] when the range would run sequentially
    on the submitting domain. *)
val chunk_plan : t -> ?chunks:int -> int -> int * int

(** [parallel_init t n f] is [Array.init n f] with the calls distributed
    over the pool in chunks. The first exception raised by a task is
    re-raised after in-flight chunks drain; remaining unclaimed tasks
    are skipped.

    Task execution carries the {!Fault} injection point ["pool.task"],
    salted with the task index: under fault injection a given seed
    fails the same tasks regardless of scheduling, chunking, or domain
    count. *)
val parallel_init : t -> int -> (int -> 'a) -> 'a array

(** [parallel_map t f a] is [Array.map f a] over the pool. Empty and
    singleton arrays short-circuit on the submitting domain. *)
val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [parallel_iter t n f] runs [f 0 .. f (n-1)] for side effects. Tasks
    must write disjoint state. *)
val parallel_iter : t -> int -> (int -> unit) -> unit

(** {2 Utilization counters}

    Cumulative per-pool dispatch counters, updated once per executed
    chunk: [chunks_claimed] counts chunk claims (including sequential
    short-circuits, which count as one chunk) and [tasks_run] counts
    elements covered by those chunks. Their ratio is the realized batch
    size — the observable evidence that dispatch is amortized. Chunks
    abandoned by a failure are not counted. *)

type stats = { chunks_claimed : int; tasks_run : int }

val stats : t -> stats
val reset_stats : t -> unit

(** [with_pool ~domains f] runs [f] with a fresh pool and always shuts
    it down. *)
val with_pool : domains:int -> (t -> 'a) -> 'a

(** {2 Supervised execution}

    A supervisor layer that never lets a task abort the job: each task
    runs under a per-attempt fault coin, bounded retries with
    deterministic exponential backoff, and an optional cooperative
    deadline; crashes and injected faults are converted into structured
    {!Err.t} values carrying the task index instead of propagating. *)

(** A task that still failed after all attempts. [attempts] is the
    number of executions (>= 1); [timed_out] marks a deadline
    exceedance; [error] keeps the last attempt's structured error
    ([Err.Internal] for crashes and timeouts, the original kind for
    [Err.Error] — e.g. [Err.Fault] for injected faults). *)
type failure = { index : int; attempts : int; timed_out : bool; error : Err.t }

type supervision = {
  attempts : int;  (** max executions per task, >= 1 (default 3) *)
  deadline_s : float option;
      (** cooperative per-attempt deadline: checked {e after} the task
          returns (OCaml cannot preempt a running domain), so an
          attempt that overruns counts as a failure and is retried.
          Wall-clock based — unlike fault outcomes, timeouts are not
          deterministic. [None] (default) disables. *)
  backoff_s : float;
      (** sleep before retry [a] (1-based): [backoff_s * 2^(a-1)].
          Default 0 (no sleep). *)
  point : string;
      (** {!Fault} injection point rolled once per attempt
          (default ["pool.task"]) *)
  salt : int -> int;  (** base fault salt per task index (default [Fun.id]) *)
}

(** [{attempts = 3; deadline_s = None; backoff_s = 0.; point = "pool.task";
    salt = Fun.id}] *)
val default_supervision : supervision

(** [attempt_salt base a] is the fault-coin salt for attempt [a]
    (0-based) of a task whose base salt is [base]: attempt 0 draws the
    exact coin an unsupervised run would, retries draw fresh coins from
    a disjoint salt band. Exposed for tests. *)
val attempt_salt : int -> int -> int

(** [supervised_init t ?supervision n f] is {!parallel_init} under a
    supervisor: the result array holds [Ok (f i)] per task, or [Error
    failure] for tasks that failed every attempt. Also returns the
    total number of retries performed. Under fault injection, attempt 0
    of each task draws the same coin as {!parallel_init} would (same
    point, same salt), so a supervised run with [attempts = 1] fails
    exactly where an unsupervised one does — and with [attempts > 1]
    outcomes remain independent of scheduling and domain count.
    @raise Invalid_argument if [supervision.attempts < 1], [backoff_s]
    is negative, or [n < 0]. *)
val supervised_init :
  t -> ?supervision:supervision -> int -> (int -> 'a) -> ('a, failure) result array * int

(** Pool size used by {!default}: the [DMNET_DOMAINS] environment
    variable if set to a positive integer, else
    [Domain.recommended_domain_count ()], else an explicit
    {!set_default_domains}. *)
val default_domains : unit -> int

(** [set_default_domains n] overrides {!default_domains} (e.g. from a
    CLI flag) and recreates the default pool at the new size on next
    use. @raise Invalid_argument if [n < 1]. *)
val set_default_domains : int -> unit

(** The lazily-created process-wide pool sized by {!default_domains};
    shut down automatically at exit. *)
val default : unit -> t
