(** Fixed-size domain pool for deterministic data parallelism.

    The library's algorithms are embarrassingly parallel per object (and
    per source node for metric closures): every task writes one private
    result slot, so a pool run returns results {e bit-identical} to the
    sequential [Array.init] order no matter how tasks are scheduled.

    Built directly on [Domain]/[Mutex]/[Condition] (OCaml >= 5.0); one
    job runs at a time and the submitting domain participates in the
    work. Pools are driven from one domain at a time; a task that calls
    back into a pool (any pool) runs its sub-tasks sequentially rather
    than deadlocking. *)

type t

(** [create ~domains] spawns [domains - 1] worker domains (the caller is
    the last one). @raise Invalid_argument if [domains < 1]. *)
val create : domains:int -> t

(** Number of domains (including the submitting one). *)
val size : t -> int

(** [shutdown t] joins the workers. The pool must be idle; further jobs
    on it run nothing. Idempotent. *)
val shutdown : t -> unit

(** [parallel_init t n f] is [Array.init n f] with the calls distributed
    over the pool. The first exception raised by a task is re-raised
    after in-flight tasks drain; remaining unclaimed tasks are skipped.

    Task execution carries the {!Fault} injection point ["pool.task"],
    salted with the task index: under fault injection a given seed
    fails the same tasks regardless of scheduling or domain count. *)
val parallel_init : t -> int -> (int -> 'a) -> 'a array

(** [parallel_map t f a] is [Array.map f a] over the pool. *)
val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [parallel_iter t n f] runs [f 0 .. f (n-1)] for side effects. Tasks
    must write disjoint state. *)
val parallel_iter : t -> int -> (int -> unit) -> unit

(** [with_pool ~domains f] runs [f] with a fresh pool and always shuts
    it down. *)
val with_pool : domains:int -> (t -> 'a) -> 'a

(** Pool size used by {!default}: the [DMNET_DOMAINS] environment
    variable if set to a positive integer, else
    [Domain.recommended_domain_count ()], else an explicit
    {!set_default_domains}. *)
val default_domains : unit -> int

(** [set_default_domains n] overrides {!default_domains} (e.g. from a
    CLI flag) and recreates the default pool at the new size on next
    use. @raise Invalid_argument if [n < 1]. *)
val set_default_domains : int -> unit

(** The lazily-created process-wide pool sized by {!default_domains};
    shut down automatically at exit. *)
val default : unit -> t
