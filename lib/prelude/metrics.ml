(* Counters and gauges are Atomic-backed so concurrent updates from
   pool tasks (different domains) cannot lose increments. Histograms
   stay single-writer: the replay engine only observes samples in its
   sequential merge step. *)
type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  lo : float;
  base : float;
  counts : int array;
  mutable n : int;
  mutable sum : float;
}

type instrument = C of counter | G of gauge | H of histogram

type t = {
  mutable instruments : (string * instrument) list; (* reverse registration order *)
  names : (string, unit) Hashtbl.t;
}

let create () = { instruments = []; names = Hashtbl.create 16 }

let register t name i =
  if Hashtbl.mem t.names name then
    invalid_arg (Printf.sprintf "Metrics: duplicate instrument %S" name);
  Hashtbl.add t.names name ();
  t.instruments <- (name, i) :: t.instruments

let counter t name =
  let c = Atomic.make 0 in
  register t name (C c);
  c

let incr c = Atomic.incr c

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic (negative increment)";
  ignore (Atomic.fetch_and_add c n)

let counter_value c = Atomic.get c

let gauge t name =
  let g = Atomic.make 0.0 in
  register t name (G g);
  g

let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram ?(lo = 1e-6) ?(base = 2.0) ?(buckets = 64) t name =
  if not (lo > 0.0 && Float.is_finite lo) then
    invalid_arg "Metrics.histogram: lo must be positive and finite";
  if not (base > 1.0 && Float.is_finite base) then
    invalid_arg "Metrics.histogram: base must be > 1 and finite";
  if buckets < 2 then invalid_arg "Metrics.histogram: need at least 2 buckets";
  let h = { lo; base; counts = Array.make buckets 0; n = 0; sum = 0.0 } in
  register t name (H h);
  h

(* Bucket i >= 1 covers [lo * base^(i-1), lo * base^i); bucket 0 is the
   underflow bin and the last bucket absorbs overflow. The index is a
   pure function of the sample, so merging shard results in a fixed
   order reproduces identical bucket vectors at any domain count. *)
let bucket_index h v =
  if Float.is_nan v then invalid_arg "Metrics.observe: NaN sample";
  if v < h.lo then 0
  else
    let i = 1 + int_of_float (Float.floor (Float.log (v /. h.lo) /. Float.log h.base)) in
    min (Array.length h.counts - 1) (max 1 i)

let observe h v =
  let i = bucket_index h v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum +. v

let hist_count h = h.n
let hist_sum h = h.sum
let hist_params h = (h.lo, h.base, Array.length h.counts)
let hist_buckets h = Array.copy h.counts

(* Restore from a checkpoint: overwrite the bucket vector wholesale.
   [n] is recomputed from the counts so it can never disagree. *)
let hist_restore h ~counts ~sum =
  if Array.length counts <> Array.length h.counts then
    invalid_arg
      (Printf.sprintf "Metrics.hist_restore: %d buckets, expected %d" (Array.length counts)
         (Array.length h.counts));
  let n = ref 0 in
  Array.iter
    (fun c ->
      if c < 0 then invalid_arg "Metrics.hist_restore: negative bucket count";
      n := !n + c)
    counts;
  if Float.is_nan sum then invalid_arg "Metrics.hist_restore: NaN sum";
  Array.blit counts 0 h.counts 0 (Array.length counts);
  h.n <- !n;
  h.sum <- sum

let bucket_bounds h i =
  let k = Array.length h.counts in
  let lower = if i = 0 then 0.0 else h.lo *. (h.base ** float_of_int (i - 1)) in
  let upper = if i = k - 1 then infinity else h.lo *. (h.base ** float_of_int i) in
  (lower, upper)

let quantile h q =
  if q < 0.0 || q > 1.0 || Float.is_nan q then invalid_arg "Metrics.quantile: q not in [0, 1]";
  if h.n = 0 then 0.0
  else begin
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.n))) in
    let acc = ref 0 and idx = ref (Array.length h.counts - 1) in
    (try
       Array.iteri
         (fun i c ->
           acc := !acc + c;
           if !acc >= rank then begin
             idx := i;
             raise Exit
           end)
         h.counts
     with Exit -> ());
    snd (bucket_bounds h !idx)
  end

type value =
  | Counter of int
  | Gauge of float
  | Hist of hist_snapshot

and hist_snapshot = {
  count : int;
  sum : float;
  buckets : (float * float * int) list;
}

let snapshot_hist h =
  let buckets = ref [] in
  for i = Array.length h.counts - 1 downto 0 do
    if h.counts.(i) > 0 then begin
      let lower, upper = bucket_bounds h i in
      buckets := (lower, upper, h.counts.(i)) :: !buckets
    end
  done;
  { count = h.n; sum = h.sum; buckets = !buckets }

let snapshot t =
  List.rev_map
    (fun (name, i) ->
      ( name,
        match i with
        | C c -> Counter (Atomic.get c)
        | G g -> Gauge (Atomic.get g)
        | H h -> Hist (snapshot_hist h) ))
    t.instruments

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let value_to_json = function
  | Counter n -> string_of_int n
  | Gauge x -> json_float x
  | Hist { count; sum; buckets } ->
      Printf.sprintf "{\"count\": %d, \"sum\": %s, \"buckets\": [%s]}" count (json_float sum)
        (String.concat ", "
           (List.map
              (fun (lower, upper, n) ->
                Printf.sprintf "[%s, %s, %d]" (json_float lower)
                  (if upper = infinity then "\"inf\"" else json_float upper)
                  n)
              buckets))

let snapshot_to_json s =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k (value_to_json v)) s)
  ^ "}"

let to_json t = snapshot_to_json (snapshot t)
