(** A minimal canonical JSON reader/printer.

    The repository emits all of its JSON by hand with a fixed field
    order and {!Metrics.json_float} number rendering, precisely so that
    equal runs produce byte-identical documents. This module is the
    other direction: a small, dependency-free parser used by tests and
    tooling to check that every emitted document is well-formed JSON
    and survives a structural round-trip — and by the daemon's control
    clients to pick fields out of a metrics dump.

    The grammar is RFC 8259 JSON: objects, arrays, strings (with
    escapes, including [\uXXXX] decoded to UTF-8), numbers, booleans,
    null. Numbers are held as [float]; integers up to 2{^53} survive
    exactly, which covers every counter the registry can emit. *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list  (** fields in document order *)

(** [parse s] parses exactly one JSON document (trailing whitespace
    allowed, trailing garbage refused).
    @raise Dmn_prelude.Err.Error never — errors come back as [Error]. *)
val parse : string -> (value, Err.t) result

(** [parse_exn s] is {!parse} with {!Err.get_ok}. *)
val parse_exn : string -> value

(** [to_string v] prints compact JSON: no whitespace, fields in the
    order they were parsed, numbers via {!Metrics.json_float}-style
    rendering (integral values below 2{^53} print with no fraction).
    Parsing its output yields a value equal to [v] — the structural
    round-trip the serializer tests rely on. *)
val to_string : value -> string

(** [member name v] is field [name] of object [v], if both exist. *)
val member : string -> value -> value option

(** [member_exn name v] is {!member} or a raised [Invalid_argument]
    naming the missing field. *)
val member_exn : string -> value -> value

(** Coercions; [None] when the value has a different shape. *)

val to_float : value -> float option
val to_int : value -> int option

(** [equal a b] is structural equality with object fields compared
    {e in order} (canonical documents fix the order, so reordering is a
    real difference). *)
val equal : value -> value -> bool
