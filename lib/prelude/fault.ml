type config = { seed : int; rate : float; points : string list }

(* [state]: [None] = not yet initialised from the environment,
   [Some None] = disabled, [Some (Some c)] = enabled. Read by every
   injection point, possibly from several domains at once. *)
let state : config option option Atomic.t = Atomic.make None

let validate_rate rate =
  if Float.is_nan rate || rate < 0.0 || rate > 1.0 then
    invalid_arg "Fault.configure: rate must be in [0, 1]"

let from_env () =
  match Sys.getenv_opt "DMNET_FAULT_RATE" with
  | None -> None
  | Some r -> (
      match float_of_string_opt (String.trim r) with
      | Some rate when rate > 0.0 && rate <= 1.0 ->
          let seed =
            match Sys.getenv_opt "DMNET_FAULT_SEED" with
            | Some s -> ( match int_of_string_opt (String.trim s) with Some v -> v | None -> 0)
            | None -> 0
          in
          let points =
            match Sys.getenv_opt "DMNET_FAULT_POINTS" with
            | None -> []
            | Some s ->
                String.split_on_char ',' s |> List.map String.trim
                |> List.filter (fun p -> p <> "")
          in
          Some { seed; rate; points }
      | _ -> None)

let active () =
  match Atomic.get state with
  | Some c -> c
  | None ->
      let c = from_env () in
      (* A racing domain computes the same value from the same env. *)
      Atomic.set state (Some c);
      c

let configure ?(seed = 0) ?(rate = 0.1) ?(points = []) () =
  validate_rate rate;
  Atomic.set state (Some (Some { seed; rate; points }))

let disable () = Atomic.set state (Some None)

(* FNV-1a over the point name, then a SplitMix64 finalizer over
   (seed, point hash, salt): a stateless, platform-independent coin. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let coin cfg point salt =
  let z =
    mix64
      (Int64.logxor
         (mix64 (Int64.of_int cfg.seed))
         (Int64.add (fnv1a point) (Int64.mul (Int64.of_int salt) 0x9e3779b97f4a7c15L)))
  in
  (* top 53 bits -> uniform float in [0, 1) *)
  Int64.to_float (Int64.shift_right_logical z 11) *. (1.0 /. 9007199254740992.0)

let selected cfg point = cfg.points = [] || List.mem point cfg.points
let would_fail cfg point salt = selected cfg point && coin cfg point salt < cfg.rate

let check_at point salt =
  match active () with
  | Some cfg when would_fail cfg point salt ->
      Err.failf Err.Fault "injected fault at %s[%d] (seed %d, rate %g)" point salt cfg.seed
        cfg.rate
  | _ -> ()

(* Per-point counters so interleaved points draw independent streams. *)
let counters : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 8
let counters_lock = Mutex.create ()

let counter point =
  match Hashtbl.find_opt counters point with
  | Some c -> c
  | None ->
      Mutex.protect counters_lock (fun () ->
          match Hashtbl.find_opt counters point with
          | Some c -> c
          | None ->
              let c = Atomic.make 0 in
              Hashtbl.add counters point c;
              c)

let check point =
  match active () with
  | None -> ()
  | Some _ -> check_at point (Atomic.fetch_and_add (counter point) 1)

let reset_counters () =
  Mutex.protect counters_lock (fun () -> Hashtbl.iter (fun _ c -> Atomic.set c 0) counters)

(* Non-raising variants for call sites that implement a custom failure
   behavior (short writes, ENOSPC) instead of the generic Fault error. *)
let fires_at point salt =
  match active () with Some cfg -> would_fail cfg point salt | None -> false

let fires point =
  match active () with
  | None -> false
  | Some cfg -> would_fail cfg point (Atomic.fetch_and_add (counter point) 1)
