(** CRC-32 checksums (the zlib/PNG polynomial, reflected 0xEDB88320).

    A pure function of the input bytes — platform- and
    endianness-independent — used by [Serial.Checkpoint] to detect torn
    or corrupted sections. Reference value:
    [digest "123456789" = 0xCBF43926l]. *)

(** [digest s] is the CRC-32 of the whole string. *)
val digest : string -> int32

(** [update crc s] extends a running checksum: [update (digest a) b] is
    [digest (a ^ b)]. The empty digest is [0l]. *)
val update : int32 -> string -> int32

(** [to_hex c] is the checksum as 8 lowercase hex digits. *)
val to_hex : int32 -> string

(** [of_hex_opt s] parses exactly 8 hex digits; [None] otherwise. *)
val of_hex_opt : string -> int32 option
