type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun msg -> Err.failf Err.Parse "byte %d: %s" !pos msg) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> fail "expected '%c', found '%c'" c d
    | None -> fail "expected '%c', found end of input" c
  in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal (expected %s)" word
  in
  let utf8_add buf u =
    (* encode one Unicode scalar value *)
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> fail "bad hex digit '%c' in \\u escape" c
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec run () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
            advance ();
            Buffer.contents buf
        | '\\' ->
            advance ();
            (match peek () with
            | Some '"' -> Buffer.add_char buf '"'; advance ()
            | Some '\\' -> Buffer.add_char buf '\\'; advance ()
            | Some '/' -> Buffer.add_char buf '/'; advance ()
            | Some 'b' -> Buffer.add_char buf '\b'; advance ()
            | Some 'f' -> Buffer.add_char buf '\012'; advance ()
            | Some 'n' -> Buffer.add_char buf '\n'; advance ()
            | Some 'r' -> Buffer.add_char buf '\r'; advance ()
            | Some 't' -> Buffer.add_char buf '\t'; advance ()
            | Some 'u' ->
                advance ();
                let u = hex4 () in
                let u =
                  (* surrogate pair *)
                  if u >= 0xD800 && u <= 0xDBFF && !pos + 2 <= n && s.[!pos] = '\\'
                     && s.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo < 0xDC00 || lo > 0xDFFF then fail "invalid low surrogate";
                    0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
                  end
                  else u
                in
                utf8_add buf u
            | Some c -> fail "bad escape '\\%c'" c
            | None -> fail "truncated escape");
            run ()
        | c when Char.code c < 0x20 -> fail "unescaped control character in string"
        | c ->
            Buffer.add_char buf c;
            advance ();
            run ()
    in
    run ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected a digit in number"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let span = String.sub s start (!pos - start) in
    match float_of_string_opt span with
    | Some f -> Num f
    | None -> fail "unparseable number %S" span
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | Some c -> fail "expected ',' or '}' in object, found '%c'" c
            | None -> fail "unterminated object"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let elems = ref [] in
          let rec elems_loop () =
            let v = parse_value () in
            elems := v :: !elems;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems_loop ()
            | Some ']' -> advance ()
            | Some c -> fail "expected ',' or ']' in array, found '%c'" c
            | None -> fail "unterminated array"
          in
          elems_loop ();
          Arr (List.rev !elems)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character '%c'" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after the document";
    v
  with
  | v -> Ok v
  | exception Err.Error e -> Error e

let parse_exn s = Err.get_ok (parse s)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (Metrics.json_float f)
    | Str s -> escape_string buf s
    | Arr vs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          vs;
        Buffer.add_char buf ']'
    | Obj fs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_string buf k;
            Buffer.add_char buf ':';
            go v)
          fs;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let member name = function Obj fs -> List.assoc_opt name fs | _ -> None

let member_exn name v =
  match member name v with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Jsonx.member_exn: no field %S" name)

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 9.007199254740992e15 -> Some (int_of_float f)
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Str x, Str y -> String.equal x y
  | Arr x, Arr y -> ( try List.for_all2 equal x y with Invalid_argument _ -> false)
  | Obj x, Obj y -> (
      try List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
      with Invalid_argument _ -> false)
  | _ -> false
