type kind = Parse | Validation | Io | Fault | Internal

type t = {
  kind : kind;
  msg : string;
  file : string option;
  line : int option;
  token : string option;
}

exception Error of t

let v ?file ?line ?token kind msg = { kind; msg; file; line; token }
let fail ?file ?line ?token kind msg = raise (Error (v ?file ?line ?token kind msg))

let failf ?file ?line ?token kind fmt =
  Printf.ksprintf (fun msg -> fail ?file ?line ?token kind msg) fmt

let error ?file ?line ?token kind msg = Stdlib.Error (v ?file ?line ?token kind msg)

let errorf ?file ?line ?token kind fmt =
  Printf.ksprintf (fun msg -> error ?file ?line ?token kind msg) fmt

let with_file file e = match e.file with Some _ -> e | None -> { e with file = Some file }
let protect f = try Ok (f ()) with Error e -> Stdlib.Error e
let get_ok = function Ok v -> v | Stdlib.Error e -> raise (Error e)

let kind_name = function
  | Parse -> "parse"
  | Validation -> "validation"
  | Io -> "i/o"
  | Fault -> "injected-fault"
  | Internal -> "internal"

let exit_code e =
  match e.kind with Parse | Validation -> 65 | Fault | Internal -> 70 | Io -> 74

let to_string e =
  let b = Buffer.create 64 in
  (match (e.file, e.line) with
  | Some f, Some l -> Buffer.add_string b (Printf.sprintf "%s:%d: " f l)
  | Some f, None -> Buffer.add_string b (f ^ ": ")
  | None, Some l -> Buffer.add_string b (Printf.sprintf "line %d: " l)
  | None, None -> ());
  Buffer.add_string b e.msg;
  (match e.token with
  | Some tok -> Buffer.add_string b (Printf.sprintf " (token %S)" tok)
  | None -> ());
  Buffer.contents b

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* Uncaught [Error]s at top level should still be readable. *)
let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Err.Error (%s: %s)" (kind_name e.kind) (to_string e))
    | _ -> None)
