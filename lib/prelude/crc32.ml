(* CRC-32 (the zlib/PNG polynomial, reflected 0xEDB88320), table-driven.
   Used by [Serial.Checkpoint] to detect torn or bit-rotted sections; a
   pure function of the bytes, platform- and endianness-independent. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s =
  let t = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor t.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let digest s = update 0l s
let to_hex c = Printf.sprintf "%08lx" c

let of_hex_opt s =
  if String.length s <> 8 then None
  else
    let ok = String.for_all (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false) s in
    if not ok then None else Some (Int32.of_string ("0x" ^ s))
