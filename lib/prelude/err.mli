(** Structured errors for the ingestion and I/O surface.

    Every recoverable failure in parsing, validation and file I/O is
    described by a {!t}: an error class plus a human-readable message
    and optional file / line / token context. Modules expose both a
    [Result]-based API returning [('a, Err.t) result] and thin raising
    wrappers that raise {!Error} — never a bare stdlib [Failure] or
    [Invalid_argument] with the context lost. *)

(** Error taxonomy. [Parse] is a syntactically malformed input (bad
    token, truncated file, unknown header); [Validation] is well-formed
    input describing an invalid object (edge endpoint out of range,
    disconnected graph, count mismatch); [Io] is an operating-system
    file error; [Fault] is a deterministically injected failure from
    {!Fault}; [Internal] is an unexpected runtime failure surfaced with
    its context preserved (a crashed or timed-out pool task converted
    by the supervisor in {!Pool}). *)
type kind = Parse | Validation | Io | Fault | Internal

type t = {
  kind : kind;
  msg : string;
  file : string option;  (** originating file, when known *)
  line : int option;  (** 1-based line in [file] or in the input text *)
  token : string option;  (** offending token, when one exists *)
}

(** Carrier for the raising wrappers. *)
exception Error of t

(** [v kind msg] builds an error value with optional context. *)
val v : ?file:string -> ?line:int -> ?token:string -> kind -> string -> t

(** [fail kind msg] raises {!Error}. *)
val fail : ?file:string -> ?line:int -> ?token:string -> kind -> string -> 'a

(** [failf kind fmt ...] is [fail] with a format string. *)
val failf :
  ?file:string -> ?line:int -> ?token:string -> kind -> ('a, unit, string, 'b) format4 -> 'a

(** [error kind msg] is [Stdlib.Error (v kind msg)]. *)
val error : ?file:string -> ?line:int -> ?token:string -> kind -> string -> ('a, t) result

(** [errorf kind fmt ...] is [error] with a format string. *)
val errorf :
  ?file:string ->
  ?line:int ->
  ?token:string ->
  kind ->
  ('a, unit, string, ('b, t) result) format4 ->
  'a

(** [with_file file e] fills in [e.file] when absent (parsers work on
    strings; the file name is attached by the caller that read it). *)
val with_file : string -> t -> t

(** [protect f] runs [f ()] and catches {!Error}, returning it as a
    [result]. Other exceptions pass through. *)
val protect : (unit -> 'a) -> ('a, t) result

(** [get_ok r] unwraps [Ok] or raises {!Error} — the canonical raising
    wrapper over a [Result]-based parser. *)
val get_ok : ('a, t) result -> 'a

val kind_name : kind -> string

(** Suggested process exit code per class, following sysexits(3):
    [Parse]/[Validation] -> 65 (EX_DATAERR), [Fault]/[Internal] -> 70
    (EX_SOFTWARE), [Io] -> 74 (EX_IOERR). *)
val exit_code : t -> int

(** [to_string e] renders ["file:line: msg (token 'tok')"], omitting
    absent context. One line, no trailing newline. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
