(* Fixed-size domain pool, hand-rolled on Domain/Mutex/Condition.

   One job runs at a time. A job is an index range [0, n) split into
   contiguous chunks; workers (and the submitting domain) claim whole
   chunks off a single atomic cursor and run them with no lock held, so
   dispatch cost is paid per chunk, not per element. Each chunk is
   claimed by exactly one domain and chunk bodies write disjoint state,
   so results are bit-identical to a sequential loop regardless of
   scheduling. The first chunk exception marks the job aborted:
   unclaimed chunks are retired unrun and the exception is re-raised in
   the submitter once in-flight chunks drain. *)

type job = {
  run : int -> int -> unit; (* [run lo hi] processes the half-open range [lo, hi) *)
  n : int;
  chunk : int; (* elements per chunk (last one may be short) *)
  chunks : int;
  cursor : int Atomic.t; (* next unclaimed chunk index *)
  done_ : int Atomic.t; (* chunks retired: run, failed, or abandoned *)
  aborted : bool Atomic.t; (* set on first failure; later claims retire unrun *)
  mutable failed : exn option; (* first failure; protected by the pool lock *)
}

type t = {
  lock : Mutex.t;
  work : Condition.t; (* a job has unclaimed chunks, or the pool stops *)
  finished : Condition.t; (* all chunks retired, or the job slot freed *)
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  size : int;
  claimed_ctr : int Atomic.t; (* utilization counters, see [stats] *)
  tasks_ctr : int Atomic.t;
}

(* Set while a domain is executing a chunk (worker or submitter): bodies
   that themselves call into a pool fall back to sequential execution
   instead of deadlocking. *)
let inside_task = Domain.DLS.new_key (fun () -> false)

let note_exec t ~chunks ~tasks =
  ignore (Atomic.fetch_and_add t.claimed_ctr chunks);
  ignore (Atomic.fetch_and_add t.tasks_ctr tasks)

(* Claims and runs chunks until the cursor is exhausted. Lock held on
   entry and exit, released while chunk bodies run. *)
let drain t j =
  Mutex.unlock t.lock;
  let prev = Domain.DLS.get inside_task in
  Domain.DLS.set inside_task true;
  let claiming = ref true in
  while !claiming do
    let c = Atomic.fetch_and_add j.cursor 1 in
    if c >= j.chunks then claiming := false
    else if Atomic.get j.aborted then ignore (Atomic.fetch_and_add j.done_ 1)
    else begin
      let lo = c * j.chunk in
      let hi = min j.n (lo + j.chunk) in
      (match j.run lo hi with
      | () -> note_exec t ~chunks:1 ~tasks:(hi - lo)
      | exception e ->
          Atomic.set j.aborted true;
          Mutex.lock t.lock;
          if j.failed = None then j.failed <- Some e;
          Mutex.unlock t.lock);
      ignore (Atomic.fetch_and_add j.done_ 1)
    end
  done;
  Domain.DLS.set inside_task prev;
  Mutex.lock t.lock;
  if Atomic.get j.done_ = j.chunks then Condition.broadcast t.finished

let worker t =
  Mutex.lock t.lock;
  let running = ref true in
  while !running do
    match t.job with
    | Some j when Atomic.get j.cursor < j.chunks -> drain t j
    | _ -> if t.stop then running := false else Condition.wait t.work t.lock
  done;
  Mutex.unlock t.lock

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      stop = false;
      workers = [||];
      size = domains;
      claimed_ctr = Atomic.make 0;
      tasks_ctr = Atomic.make 0;
    }
  in
  t.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* ---------- utilization counters ---------- *)

type stats = { chunks_claimed : int; tasks_run : int }

let stats t =
  { chunks_claimed = Atomic.get t.claimed_ctr; tasks_run = Atomic.get t.tasks_ctr }

let reset_stats t =
  Atomic.set t.claimed_ctr 0;
  Atomic.set t.tasks_ctr 0

(* ---------- chunked execution ---------- *)

let default_chunks t = 4 * t.size

(* The (chunks, chunk_size) split [parallel_chunks] would use; (1, n)
   when the range runs sequentially on the submitting domain. *)
let chunk_plan t ?chunks n =
  if n <= 0 then (0, 0)
  else if t.size = 1 || n = 1 || Domain.DLS.get inside_task then (1, n)
  else begin
    let requested = match chunks with Some c -> c | None -> default_chunks t in
    let c = max 1 (min requested n) in
    let chunk = (n + c - 1) / c in
    let c = (n + chunk - 1) / chunk in
    (c, chunk)
  end

(* Parallel path: install the job, participate, wait for every chunk to
   retire, free the job slot, then surface the first failure. *)
let run_chunks t ~chunks ~chunk n run =
  Mutex.lock t.lock;
  while t.job <> None do
    Condition.wait t.finished t.lock
  done;
  let j =
    {
      run;
      n;
      chunk;
      chunks;
      cursor = Atomic.make 0;
      done_ = Atomic.make 0;
      aborted = Atomic.make false;
      failed = None;
    }
  in
  t.job <- Some j;
  Condition.broadcast t.work;
  drain t j;
  while Atomic.get j.done_ < j.chunks do
    Condition.wait t.finished t.lock
  done;
  t.job <- None;
  Condition.broadcast t.finished;
  Mutex.unlock t.lock;
  match j.failed with Some e -> raise e | None -> ()

let parallel_chunks t ?chunks n body =
  if n < 0 then invalid_arg "Pool.parallel_chunks: negative length";
  (match chunks with
  | Some c when c < 1 -> invalid_arg "Pool.parallel_chunks: chunks must be >= 1"
  | _ -> ());
  if n > 0 then begin
    let c, chunk = chunk_plan t ?chunks n in
    if c <= 1 then begin
      (* Empty/singleton/sequential short-circuit: no pool round-trip,
         the body runs directly on the submitting domain. *)
      note_exec t ~chunks:1 ~tasks:n;
      body 0 n
    end
    else run_chunks t ~chunks:c ~chunk n body
  end

(* Per-element tasks, expressed as chunk bodies. The fault coin stays
   salted with the *element* index: a seed that fails task [i] under any
   chunking, scheduling, or domain count fails the same task here. *)
let run_tasks_opt ~inject t n run =
  parallel_chunks t n (fun lo hi ->
      for i = lo to hi - 1 do
        if inject then Fault.check_at "pool.task" i;
        run i
      done)

let run_tasks t n run = run_tasks_opt ~inject:true t n run

let parallel_init t n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  if n = 0 then [||]
  else if n = 1 then begin
    (* Singleton short-circuit: same fault coin, no option slots. *)
    note_exec t ~chunks:1 ~tasks:1;
    Fault.check_at "pool.task" 0;
    [| f 0 |]
  end
  else begin
    let slots = Array.make n None in
    run_tasks t n (fun i -> slots.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) slots
  end

let parallel_map t f a = parallel_init t (Array.length a) (fun i -> f a.(i))
let parallel_iter t n f = run_tasks t n f

(* ---------- supervised execution ---------- *)

type failure = { index : int; attempts : int; timed_out : bool; error : Err.t }

type supervision = {
  attempts : int;
  deadline_s : float option;
  backoff_s : float;
  point : string;
  salt : int -> int;
}

let default_supervision =
  { attempts = 3; deadline_s = None; backoff_s = 0.0; point = "pool.task"; salt = Fun.id }

(* Retries draw fresh fault coins by shifting the salt into a band the
   base salts (task indices, epoch*object mixes) never reach: attempt 0
   keeps the base salt — identical to unsupervised behavior — and
   attempt [a] adds [a * 2^48]. Deterministic and independent of
   scheduling, so supervised outcomes do not depend on the domain
   count. *)
let attempt_salt base a = base + (a lsl 48)

let supervised_init t ?(supervision = default_supervision) n f =
  if supervision.attempts < 1 then invalid_arg "Pool.supervised_init: attempts must be >= 1";
  if supervision.backoff_s < 0.0 || Float.is_nan supervision.backoff_s then
    invalid_arg "Pool.supervised_init: negative backoff";
  if n < 0 then invalid_arg "Pool.supervised_init: negative length";
  let retries = Atomic.make 0 in
  let slots = Array.make (max n 1) None in
  (* [~inject:false]: supervision rolls its own coin per attempt (below)
     at [supervision.point]; the built-in per-task check would bypass
     the retry loop. Tasks here never raise — every outcome is captured
     in the slot — so the job cannot abort unclaimed work. *)
  run_tasks_opt ~inject:false t n (fun i ->
      let base = supervision.salt i in
      let rec attempt a =
        if a > 0 then begin
          Atomic.incr retries;
          let d = supervision.backoff_s *. float_of_int (1 lsl min (a - 1) 16) in
          if d > 0.0 then Unix.sleepf d
        end;
        let t0 = Unix.gettimeofday () in
        let outcome =
          match
            Fault.check_at supervision.point (attempt_salt base a);
            f i
          with
          | v -> (
              match supervision.deadline_s with
              | Some dl when Unix.gettimeofday () -. t0 > dl ->
                  Error
                    ( true,
                      Err.v Err.Internal
                        (Printf.sprintf "task %d exceeded its %gs deadline" i dl) )
              | _ -> Ok v)
          | exception Err.Error e -> Error (false, e)
          | exception e ->
              Error
                ( false,
                  Err.v Err.Internal
                    (Printf.sprintf "task %d crashed: %s" i (Printexc.to_string e)) )
        in
        match outcome with
        | Ok v -> Ok v
        | Error (timed_out, e) ->
            if a + 1 < supervision.attempts then attempt (a + 1)
            else Error { index = i; attempts = a + 1; timed_out; error = e }
      in
      slots.(i) <- Some (attempt 0));
  let results =
    Array.init n (fun i -> match slots.(i) with Some r -> r | None -> assert false)
  in
  (results, Atomic.get retries)

(* ---------- default pool ---------- *)

let env_domains () =
  match Sys.getenv_opt "DMNET_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> Some v
      | _ -> None)
  | None -> None

let chosen_domains = ref None
let default_pool = ref None

let default_domains () =
  match !chosen_domains with
  | Some n -> n
  | None ->
      let n =
        match env_domains () with
        | Some n -> n
        | None -> Domain.recommended_domain_count ()
      in
      chosen_domains := Some n;
      n

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create ~domains:(default_domains ()) in
      default_pool := Some p;
      at_exit (fun () -> shutdown p);
      p

let set_default_domains n =
  if n < 1 then invalid_arg "Pool.set_default_domains: need at least one domain";
  (match !default_pool with
  | Some p when p.size <> n ->
      shutdown p;
      default_pool := None
  | _ -> ());
  chosen_domains := Some n

let with_pool ~domains f =
  let p = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
