(* Fixed-size domain pool, hand-rolled on Domain/Mutex/Condition.

   One job runs at a time. A job is an indexed bag of tasks [0, n);
   workers (and the submitting domain) claim indices under the pool
   mutex and run them with the mutex released. Each index is claimed by
   exactly one domain and its result is written to a private slot, so
   results are bit-identical to a sequential [Array.init] regardless of
   scheduling. The first task exception abandons unclaimed work and is
   re-raised in the submitter once in-flight tasks drain. *)

type job = {
  run : int -> unit;
  n : int;
  inject : bool; (* roll the built-in "pool.task" fault coin per task *)
  mutable next : int; (* next unclaimed index; forced to [n] on failure *)
  mutable claimed : int;
  mutable completed : int;
  mutable failed : exn option;
}

type t = {
  lock : Mutex.t;
  work : Condition.t; (* a job has unclaimed tasks, or the pool stops *)
  finished : Condition.t; (* claimed = completed and nothing left to claim *)
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  size : int;
}

(* Set while a domain is executing a task (worker or submitter): tasks
   that themselves call into a pool fall back to sequential execution
   instead of deadlocking. *)
let inside_task = Domain.DLS.new_key (fun () -> false)

(* Claims and runs tasks until none are left. Lock held on entry/exit. *)
let drain t j =
  while j.next < j.n do
    let i = j.next in
    j.next <- i + 1;
    j.claimed <- j.claimed + 1;
    Mutex.unlock t.lock;
    let prev = Domain.DLS.get inside_task in
    Domain.DLS.set inside_task true;
    let err =
      try
        if j.inject then Fault.check_at "pool.task" i;
        j.run i;
        None
      with e -> Some e
    in
    Domain.DLS.set inside_task prev;
    Mutex.lock t.lock;
    (match err with
    | Some e ->
        if j.failed = None then j.failed <- Some e;
        j.next <- j.n
    | None -> ());
    j.completed <- j.completed + 1
  done;
  if j.completed = j.claimed then Condition.broadcast t.finished

let worker t =
  Mutex.lock t.lock;
  let running = ref true in
  while !running do
    match t.job with
    | Some j when j.next < j.n -> drain t j
    | _ -> if t.stop then running := false else Condition.wait t.work t.lock
  done;
  Mutex.unlock t.lock

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      stop = false;
      workers = [||];
      size = domains;
    }
  in
  t.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let run_tasks_opt ~inject t n run =
  if n > 0 then
    if t.size = 1 || n = 1 || Domain.DLS.get inside_task then
      for i = 0 to n - 1 do
        (* Same injection point as [drain]: a seed that fails a task in
           a parallel run fails the identical task here, so fault
           outcomes do not depend on the domain count. *)
        if inject then Fault.check_at "pool.task" i;
        run i
      done
    else begin
      Mutex.lock t.lock;
      while t.job <> None do
        Condition.wait t.finished t.lock
      done;
      let j = { run; n; inject; next = 0; claimed = 0; completed = 0; failed = None } in
      t.job <- Some j;
      Condition.broadcast t.work;
      drain t j;
      while not (j.next >= j.n && j.completed = j.claimed) do
        Condition.wait t.finished t.lock
      done;
      t.job <- None;
      Condition.broadcast t.finished;
      Mutex.unlock t.lock;
      match j.failed with Some e -> raise e | None -> ()
    end

let run_tasks t n run = run_tasks_opt ~inject:true t n run

let parallel_init t n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  if n = 0 then [||]
  else begin
    let slots = Array.make n None in
    run_tasks t n (fun i -> slots.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) slots
  end

let parallel_map t f a = parallel_init t (Array.length a) (fun i -> f a.(i))
let parallel_iter t n f = run_tasks t n f

(* ---------- supervised execution ---------- *)

type failure = { index : int; attempts : int; timed_out : bool; error : Err.t }

type supervision = {
  attempts : int;
  deadline_s : float option;
  backoff_s : float;
  point : string;
  salt : int -> int;
}

let default_supervision =
  { attempts = 3; deadline_s = None; backoff_s = 0.0; point = "pool.task"; salt = Fun.id }

(* Retries draw fresh fault coins by shifting the salt into a band the
   base salts (task indices, epoch*object mixes) never reach: attempt 0
   keeps the base salt — identical to unsupervised behavior — and
   attempt [a] adds [a * 2^48]. Deterministic and independent of
   scheduling, so supervised outcomes do not depend on the domain
   count. *)
let attempt_salt base a = base + (a lsl 48)

let supervised_init t ?(supervision = default_supervision) n f =
  if supervision.attempts < 1 then invalid_arg "Pool.supervised_init: attempts must be >= 1";
  if supervision.backoff_s < 0.0 || Float.is_nan supervision.backoff_s then
    invalid_arg "Pool.supervised_init: negative backoff";
  if n < 0 then invalid_arg "Pool.supervised_init: negative length";
  let retries = Atomic.make 0 in
  let slots = Array.make (max n 1) None in
  (* [~inject:false]: supervision rolls its own coin per attempt (below)
     at [supervision.point]; the built-in per-task check would bypass
     the retry loop. Tasks here never raise — every outcome is captured
     in the slot — so the job cannot abort unclaimed work. *)
  run_tasks_opt ~inject:false t n (fun i ->
      let base = supervision.salt i in
      let rec attempt a =
        if a > 0 then begin
          Atomic.incr retries;
          let d = supervision.backoff_s *. float_of_int (1 lsl min (a - 1) 16) in
          if d > 0.0 then Unix.sleepf d
        end;
        let t0 = Unix.gettimeofday () in
        let outcome =
          match
            Fault.check_at supervision.point (attempt_salt base a);
            f i
          with
          | v -> (
              match supervision.deadline_s with
              | Some dl when Unix.gettimeofday () -. t0 > dl ->
                  Error
                    ( true,
                      Err.v Err.Internal
                        (Printf.sprintf "task %d exceeded its %gs deadline" i dl) )
              | _ -> Ok v)
          | exception Err.Error e -> Error (false, e)
          | exception e ->
              Error
                ( false,
                  Err.v Err.Internal
                    (Printf.sprintf "task %d crashed: %s" i (Printexc.to_string e)) )
        in
        match outcome with
        | Ok v -> Ok v
        | Error (timed_out, e) ->
            if a + 1 < supervision.attempts then attempt (a + 1)
            else Error { index = i; attempts = a + 1; timed_out; error = e }
      in
      slots.(i) <- Some (attempt 0));
  let results =
    Array.init n (fun i -> match slots.(i) with Some r -> r | None -> assert false)
  in
  (results, Atomic.get retries)

(* ---------- default pool ---------- *)

let env_domains () =
  match Sys.getenv_opt "DMNET_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> Some v
      | _ -> None)
  | None -> None

let chosen_domains = ref None
let default_pool = ref None

let default_domains () =
  match !chosen_domains with
  | Some n -> n
  | None ->
      let n =
        match env_domains () with
        | Some n -> n
        | None -> Domain.recommended_domain_count ()
      in
      chosen_domains := Some n;
      n

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create ~domains:(default_domains ()) in
      default_pool := Some p;
      at_exit (fun () -> shutdown p);
      p

let set_default_domains n =
  if n < 1 then invalid_arg "Pool.set_default_domains: need at least one domain";
  (match !default_pool with
  | Some p when p.size <> n ->
      shutdown p;
      default_pool := None
  | _ -> ());
  chosen_domains := Some n

let with_pool ~domains f =
  let p = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
