(** Lightweight telemetry: named monotonic counters, gauges and
    fixed-bucket log-scale histograms, with deterministic snapshots and
    JSON rendering. Pure OCaml, no dependencies.

    A registry ({!t}) owns a set of named instruments in registration
    order; {!snapshot} reads them all at once and {!snapshot_to_json}
    renders a snapshot as one JSON object with a stable field order, so
    two runs that perform the same instrument operations emit
    byte-identical JSON (the replay engine's cross-domain determinism
    contract relies on this).

    Counters and gauges are Atomic-backed: increments from several
    domains at once are never lost (a counter hammered concurrently
    reports the exact total). Histograms remain single-writer — observe
    samples from one domain at a time (the replay engine updates its
    histogram only in the sequential merge step, never inside pool
    tasks). *)

type t
type counter
type gauge
type histogram

val create : unit -> t

(** {2 Instruments}

    Registration raises [Invalid_argument] on a duplicate name within
    the registry (one instrument per name, of one kind). *)

(** [counter t name] registers a monotonic counter starting at 0. *)
val counter : t -> string -> counter

val incr : counter -> unit

(** [add c n] bumps by [n]. @raise Invalid_argument if [n < 0]
    (counters are monotonic). *)
val add : counter -> int -> unit

val counter_value : counter -> int

(** [gauge t name] registers a gauge starting at 0. *)
val gauge : t -> string -> gauge

val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** [histogram ?lo ?base ?buckets t name] registers a log-scale
    histogram: bucket 0 catches values [< lo] (including 0), bucket [i]
    for [i >= 1] covers [[lo * base^(i-1), lo * base^i)], and the last
    bucket absorbs everything above. Defaults: [lo = 1e-6], [base = 2],
    [buckets = 64] — covering 1e-6 .. ~9e12 at factor-2 resolution.
    @raise Invalid_argument unless [lo > 0], [base > 1], [buckets >= 2]. *)
val histogram : ?lo:float -> ?base:float -> ?buckets:int -> t -> string -> histogram

(** [observe h v] records sample [v]. NaN raises [Invalid_argument]. *)
val observe : histogram -> float -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> float

(** [hist_params h] is [(lo, base, buckets)] as passed at registration. *)
val hist_params : histogram -> float * float * int

(** [hist_buckets h] is a copy of the raw bucket count vector (length =
    [buckets]), for checkpointing. *)
val hist_buckets : histogram -> int array

(** [hist_restore h ~counts ~sum] overwrites the histogram state from a
    checkpoint: bucket counts (length must equal the registered bucket
    count), total sample count (recomputed from [counts]) and sum.
    @raise Invalid_argument on length mismatch, a negative count, or a
    NaN sum. *)
val hist_restore : histogram -> counts:int array -> sum:float -> unit

(** [quantile h q] with [q] in [0, 1]: the upper boundary of the bucket
    holding the [q]-th sample — an upper estimate within one bucket
    factor. 0 when the histogram is empty. *)
val quantile : histogram -> float -> float

(** {2 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Hist of hist_snapshot

and hist_snapshot = {
  count : int;
  sum : float;
  buckets : (float * float * int) list;
      (** non-empty buckets only, ascending: lower bound (inclusive),
          upper bound (exclusive), sample count. Bucket 0 reports lower
          bound 0; the overflow bucket reports upper bound [infinity]. *)
}

(** [snapshot t] reads every instrument, in registration order. *)
val snapshot : t -> (string * value) list

(** [json_float x] renders a float the way all dmnet JSON emitters do:
    ["%.0f"] for exactly-integral magnitudes below 1e15, ["%.17g"]
    (round-trippable) otherwise. *)
val json_float : float -> string

val value_to_json : value -> string

(** [snapshot_to_json s] is one JSON object, fields in snapshot order. *)
val snapshot_to_json : (string * value) list -> string

(** [to_json t] is [snapshot_to_json (snapshot t)]. *)
val to_json : t -> string
