(** Write and storage radii (paper Section 2.1).

    For a node [v] and object [x], let [R^z_v] be the [z] requests
    (reads and writes both count) closest to [v] and
    [d(v, z) = avg_{r in R^z_v} ct(h(r), v)]. Then

    - the {b write radius} is [rw(v) = d(v, W)] with [W] the total
      number of writes;
    - the {b storage number} [zs(v)] and {b storage radius} [rs(v)]
      satisfy [(zs - 1) * rs <= cs(v) < zs * rs] and
      [d(v, zs - 1) <= rs <= d(v, zs)]. (The paper's upper bound is
      strict; with tied request distances [d(v, zs - 1) = d(v, zs)] no
      strict choice exists, and the analysis only uses
      [d(v, zs) >= rs], so we relax it.)

    Degenerate conventions (documented deviations for cases the paper
    leaves implicit): [d(v, 0) = 0]; [d(v, z) = infinity] when fewer
    than [z] requests exist; [rw = 0] when [W = 0]; [rs = 0] when
    [cs(v) = 0] (free storage always merits a copy); [rs = infinity]
    when [cs(v) = infinity] or the object has no requests at all (no
    request volume ever justifies a copy at [v], so phase 2 never adds
    one). *)

type node_radii = {
  rw : float;  (** write radius *)
  rs : float;  (** storage radius *)
  zs : int;  (** storage number; 0 in the degenerate [rs = 0 or infinity] cases *)
}

(** [avg_dist inst ~x v z] is [d(v, z)] as above. *)
val avg_dist : Instance.t -> x:int -> int -> int -> float

(** [prefix_sum inst ~x v z] is [z * d(v, z)], the summed distance of
    the [z] closest requests ([S(z)] in the analysis). *)
val prefix_sum : Instance.t -> x:int -> int -> int -> float

(** Reusable profile buffers for {!compute_ws}: four arrays sized for
    the instance, reset implicitly per node. One workspace serves one
    domain at a time. *)
type workspace

(** [workspace inst] allocates buffers sized for [inst]. *)
val workspace : Instance.t -> workspace

(** [compute inst ~x] evaluates radii for every node. [O(n^2)] per
    object: the per-node distance sort is shared across objects via the
    instance's {!Profile_cache}. *)
val compute : Instance.t -> x:int -> node_radii array

(** [compute_ws ws inst ~x] is {!compute} using caller-owned buffers,
    the allocation-free variant for chunked solves: bit-identical
    results, no per-node array churn.
    @raise Invalid_argument if [ws] is smaller than [inst]. *)
val compute_ws : workspace -> Instance.t -> x:int -> node_radii array

(** [compute_reference inst ~x] is the uncached [O(n^2 log n)] seed
    implementation (one full sort per node per object), kept as the
    ground truth for the cache's equality property tests and as the
    micro-benchmark baseline. *)
val compute_reference : Instance.t -> x:int -> node_radii array

(** [check inst ~x r] verifies the defining inequalities of all radii
    (used by tests); returns the first violation. *)
val check : Instance.t -> x:int -> node_radii array -> (unit, string) result
