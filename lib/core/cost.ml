open Dmn_paths
open Dmn_prelude

type breakdown = { storage : float; read : float; update : float }

let total b = b.storage +. b.read +. b.update
let zero = { storage = 0.0; read = 0.0; update = 0.0 }

let add a b =
  { storage = a.storage +. b.storage; read = a.read +. b.read; update = a.update +. b.update }

let pp ppf b =
  Format.fprintf ppf "storage=%.4g read=%.4g update=%.4g total=%.4g" b.storage b.read b.update
    (total b)

let nearest_dists inst copies =
  if copies = [] then invalid_arg "Cost.nearest_dists: empty copy set";
  match Instance.graph inst with
  | Some g ->
      let r = Dijkstra.multi g copies in
      r.Dijkstra.dist
  | None -> Metric.nearest_dists (Instance.metric inst) copies

let storage_cost inst copies =
  List.fold_left (fun acc v -> acc +. Instance.cs inst v) 0.0 (List.sort_uniq compare copies)

let eval_mst inst ~x copies =
  let copies = List.sort_uniq compare copies in
  let dist = nearest_dists inst copies in
  let n = Instance.n inst in
  let read =
    Floatx.sum_by (fun v -> float_of_int (Instance.requests inst ~x v) *. dist.(v)) n
  in
  let w = Instance.total_writes inst ~x in
  let update =
    if w = 0 then 0.0
    else
      float_of_int w *. Dmn_span.Steiner.approx_weight_metric (Instance.metric inst) copies
  in
  { storage = storage_cost inst copies; read; update }

let eval_exact inst ~x copies =
  let copies = List.sort_uniq compare copies in
  let dist = nearest_dists inst copies in
  let n = Instance.n inst in
  let read = Floatx.sum_by (fun v -> float_of_int (Instance.reads inst ~x v) *. dist.(v)) n in
  let update =
    if Instance.total_writes inst ~x = 0 then 0.0
    else begin
      let steiner = Dmn_span.Steiner.exact_all_roots (Instance.metric inst) copies in
      Floatx.sum_by (fun v -> float_of_int (Instance.writes inst ~x v) *. steiner.(v)) n
    end
  in
  { storage = storage_cost inst copies; read; update }

let total_mst inst ~x copies = total (eval_mst inst ~x copies)
let total_exact inst ~x copies = total (eval_exact inst ~x copies)

let placement_of eval inst p =
  let acc = ref zero in
  for x = 0 to Placement.objects p - 1 do
    acc := add !acc (eval inst ~x (Placement.copies p ~x))
  done;
  !acc

let placement_mst inst p = placement_of eval_mst inst p
let placement_exact inst p = placement_of eval_exact inst p
