open Dmn_prelude
open Dmn_graph

(* ---------- serialization ---------- *)

let instance_to_string inst =
  let g =
    match Instance.graph inst with
    | Some g -> g
    | None -> invalid_arg "Serial: only graph-backed instances serialize"
  in
  let b = Buffer.create 4096 in
  let n = Instance.n inst and k = Instance.objects inst in
  Buffer.add_string b "dmnet-instance v1\n";
  Buffer.add_string b (Printf.sprintf "%d %d %d\n" n k (Wgraph.m g));
  List.iter
    (fun (u, v, w) -> Buffer.add_string b (Printf.sprintf "%d %d %.17g\n" u v w))
    (Wgraph.edges g);
  Buffer.add_string b
    (String.concat " " (List.init n (fun v -> Printf.sprintf "%.17g" (Instance.cs inst v))));
  Buffer.add_char b '\n';
  for x = 0 to k - 1 do
    Buffer.add_string b
      (String.concat " " (List.init n (fun v -> string_of_int (Instance.reads inst ~x v))));
    Buffer.add_char b '\n'
  done;
  for x = 0 to k - 1 do
    Buffer.add_string b
      (String.concat " " (List.init n (fun v -> string_of_int (Instance.writes inst ~x v))));
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let placement_to_string p =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "dmnet-placement v1\n%d\n" (Placement.objects p));
  for x = 0 to Placement.objects p - 1 do
    Buffer.add_string b
      (String.concat " " (List.map string_of_int (Placement.copies p ~x)));
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

(* ---------- tokenizer with source positions ---------- *)

(* Physical lines that are blank or start with [#] are comments. Every
   surviving token carries its 1-based source line so parse and
   validation errors can point at the offending place. *)

let is_space c = c = ' ' || c = '\t' || c = '\r'

let split_tokens line =
  let toks = ref [] and start = ref (-1) in
  String.iteri
    (fun i c ->
      if is_space c then begin
        if !start >= 0 then toks := String.sub line !start (i - !start) :: !toks;
        start := -1
      end
      else if !start < 0 then start := i)
    line;
  if !start >= 0 then toks := String.sub line !start (String.length line - !start) :: !toks;
  List.rev !toks

let logical_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (ln, line) ->
         match split_tokens line with
         | [] -> None
         | first :: _ when first.[0] = '#' -> None
         | toks -> Some (ln, toks))

type cursor = {
  file : string option;
  toks : (string * int) array; (* token, 1-based source line *)
  mutable pos : int;
}

let cursor ?file s =
  let toks =
    logical_lines s
    |> List.concat_map (fun (ln, toks) -> List.map (fun t -> (t, ln)) toks)
    |> Array.of_list
  in
  { file; toks; pos = 0 }

let last_line c = if Array.length c.toks = 0 then None else Some (snd c.toks.(Array.length c.toks - 1))

let next c what =
  if c.pos >= Array.length c.toks then
    Err.failf ?file:c.file ?line:(last_line c) Err.Parse "truncated input: expected %s" what
  else begin
    let t = c.toks.(c.pos) in
    c.pos <- c.pos + 1;
    t
  end

let int_tok c what =
  let t, ln = next c what in
  match int_of_string_opt t with
  | Some v -> (v, ln)
  | None -> Err.failf ?file:c.file ~line:ln ~token:t Err.Parse "expected an integer for %s" what

let float_tok c what =
  let t, ln = next c what in
  match float_of_string_opt t with
  | Some v -> (v, ln, t)
  | None -> Err.failf ?file:c.file ~line:ln ~token:t Err.Parse "expected a number for %s" what

(* A declared count can never exceed the token count of its own file;
   checking this before allocating keeps a tampered header (say,
   "999999999 nodes") from blowing up memory. *)
let check_count c ln what v =
  if v < 0 then
    Err.failf ?file:c.file ~line:ln ~token:(string_of_int v) Err.Validation "%s must be non-negative"
      what;
  if v > Array.length c.toks then
    Err.failf ?file:c.file ~line:ln ~token:(string_of_int v) Err.Validation
      "declared %s (%d) exceeds the size of the input" what v

(* Backstop: constructor sanity checks ([Wgraph.create],
   [Instance.of_graph], [Placement.make]) become structured validation
   errors instead of escaping as [Invalid_argument]. *)
let constructed ?file f =
  match f () with
  | v -> v
  | exception Invalid_argument msg -> Err.fail ?file Err.Validation msg

(* ---------- instance parsing ---------- *)

let parse_instance c =
  let magic, ln = next c "format header" in
  if magic <> "dmnet-instance" then
    Err.failf ?file:c.file ~line:ln ~token:magic Err.Parse
      "bad header: expected \"dmnet-instance v1\"";
  let version, vln = next c "format version" in
  if version <> "v1" then
    Err.failf ?file:c.file ~line:vln ~token:version Err.Parse
      "unsupported dmnet-instance version %s (this build reads v1)" version;
  let n, nln = int_tok c "the node count" in
  check_count c nln "node count" n;
  if n = 0 then Err.fail ?file:c.file ~line:nln Err.Validation "instance must have at least one node";
  let k, kln = int_tok c "the object count" in
  check_count c kln "object count" k;
  if k = 0 then
    Err.fail ?file:c.file ~line:kln Err.Validation "instance must have at least one object";
  let m, mln = int_tok c "the edge count" in
  check_count c mln "edge count" m;
  let seen = Hashtbl.create (2 * m) in
  let edges =
    List.init m (fun _ ->
        let u, uln = int_tok c "an edge endpoint" in
        let v, vln = int_tok c "an edge endpoint" in
        let w, wln, wtok = float_tok c "an edge weight" in
        let endpoint e ln =
          if e < 0 || e >= n then
            Err.failf ?file:c.file ~line:ln ~token:(string_of_int e) Err.Validation
              "edge endpoint %d out of range [0, %d)" e n
        in
        endpoint u uln;
        endpoint v vln;
        if u = v then
          Err.failf ?file:c.file ~line:uln ~token:(string_of_int u) Err.Validation
            "self-loop on node %d" u;
        if w < 0.0 || not (Float.is_finite w) then
          Err.failf ?file:c.file ~line:wln ~token:wtok Err.Validation
            "edge weight must be finite and non-negative";
        let key = (min u v, max u v) in
        if Hashtbl.mem seen key then
          Err.failf ?file:c.file ~line:uln Err.Validation "duplicate edge %d-%d" u v;
        Hashtbl.add seen key ();
        (u, v, w))
  in
  let g = constructed ?file:c.file (fun () -> Wgraph.create n edges) in
  let cs =
    Array.init n (fun i ->
        let v, ln, tok = float_tok c (Printf.sprintf "storage cost %d of %d" (i + 1) n) in
        if Float.is_nan v || v < 0.0 then
          Err.failf ?file:c.file ~line:ln ~token:tok Err.Validation
            "storage cost must be non-negative";
        if v = infinity then
          Err.failf ?file:c.file ~line:ln ~token:tok Err.Validation
            "storage cost must be finite (non-finite costs do not round-trip)";
        v)
  in
  let counts what =
    Array.init k (fun x ->
        Array.init n (fun i ->
            let v, ln =
              int_tok c (Printf.sprintf "%s count %d of %d for object %d" what (i + 1) n x)
            in
            if v < 0 then
              Err.failf ?file:c.file ~line:ln ~token:(string_of_int v) Err.Validation
                "%s count must be non-negative" what;
            v))
  in
  let fr = counts "read" in
  let fw = counts "write" in
  if c.pos < Array.length c.toks then begin
    let tok, ln = c.toks.(c.pos) in
    Err.failf ?file:c.file ~line:ln ~token:tok Err.Parse
      "trailing input after a complete instance"
  end;
  constructed ?file:c.file (fun () -> Instance.of_graph g ~cs ~fr ~fw)

let instance_of_string_res ?file s = Err.protect (fun () -> parse_instance (cursor ?file s))
let instance_of_string s = Err.get_ok (instance_of_string_res s)

(* ---------- placement parsing ---------- *)

let parse_placement ?file s =
  match logical_lines s with
  | [] -> Err.fail ?file Err.Parse "empty input: expected \"dmnet-placement v1\""
  | (hln, header) :: rest ->
      (match header with
      | [ "dmnet-placement"; "v1" ] -> ()
      | "dmnet-placement" :: version :: _ ->
          Err.failf ?file ~line:hln ~token:version Err.Parse
            "unsupported dmnet-placement version %s (this build reads v1)" version
      | tok :: _ ->
          Err.failf ?file ~line:hln ~token:tok Err.Parse
            "bad header: expected \"dmnet-placement v1\""
      | [] -> assert false);
      (match rest with
      | [] -> Err.fail ?file ~line:hln Err.Parse "truncated input: expected the object count"
      | (cln, count_toks) :: rows ->
          let k =
            match count_toks with
            | [ tok ] -> (
                match int_of_string_opt tok with
                | Some k when k >= 0 -> k
                | Some _ ->
                    Err.failf ?file ~line:cln ~token:tok Err.Validation
                      "object count must be non-negative"
                | None ->
                    Err.failf ?file ~line:cln ~token:tok Err.Parse
                      "expected an integer object count")
            | tok :: _ ->
                Err.failf ?file ~line:cln ~token:tok Err.Parse
                  "the object count line must hold a single integer"
            | [] -> assert false
          in
          if List.length rows <> k then
            Err.failf ?file ~line:cln Err.Validation
              "declared %d objects but found %d copy rows" k (List.length rows);
          let copies =
            List.map
              (fun (rln, toks) ->
                List.map
                  (fun tok ->
                    match int_of_string_opt tok with
                    | Some v when v >= 0 -> v
                    | Some v ->
                        Err.failf ?file ~line:rln ~token:(string_of_int v) Err.Validation
                          "copy node must be non-negative"
                    | None ->
                        Err.failf ?file ~line:rln ~token:tok Err.Parse
                          "expected an integer copy node")
                  toks)
              rows
          in
          constructed ?file (fun () -> Placement.make (Array.of_list copies)))

let placement_of_string_res ?file s = Err.protect (fun () -> parse_placement ?file s)
let placement_of_string s = Err.get_ok (placement_of_string_res s)

(* ---------- crash-safe file I/O ---------- *)

let rec retry_eintr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let io_error path op err =
  Err.v ~file:path Err.Io (Printf.sprintf "%s: %s" op (Unix.error_message err))

let read_file_res path =
  match
    Fault.check "serial.read";
    let fd = retry_eintr (fun () -> Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0) in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let len = (Unix.fstat fd).Unix.st_size in
        let buf = Bytes.create len in
        let rec loop off =
          if off >= len then off
          else
            match retry_eintr (fun () -> Unix.read fd buf off (len - off)) with
            | 0 -> off
            | r -> loop (off + r)
        in
        let got = loop 0 in
        if got = len then Bytes.unsafe_to_string buf else Bytes.sub_string buf 0 got)
  with
  | s -> Ok s
  | exception Err.Error e -> Error (Err.with_file path e)
  | exception Unix.Unix_error (err, op, _) -> Error (io_error path op err)
  | exception Sys_error msg -> Error (Err.v ~file:path Err.Io msg)

let read_file path = Err.get_ok (read_file_res path)

(* Durable atomic replace: write a temp file in the same directory,
   flush it to disk, then [rename] over the destination. Readers only
   ever see the old contents or the complete new contents; any failure
   (including an injected one) before the rename leaves the destination
   untouched and removes the temp file. *)

let tmp_counter = Atomic.make 0

let write_file_res path contents =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d.%d" (Filename.basename path) (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1))
  in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  match
    Fault.check "serial.write.open";
    let fd =
      retry_eintr (fun () ->
          Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644)
    in
    (try
       Fault.check "serial.write.write";
       let len = String.length contents in
       let rec loop off =
         if off < len then
           loop (off + retry_eintr (fun () -> Unix.write_substring fd contents off (len - off)))
       in
       loop 0;
       Fault.check "serial.write.fsync";
       retry_eintr (fun () -> Unix.fsync fd);
       retry_eintr (fun () -> Unix.close fd)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ | Sys_error _ -> ());
       raise e);
    Fault.check "serial.write.rename";
    Sys.rename tmp path;
    (* Make the rename itself durable; best-effort, as not every
       platform lets a directory fd be fsync'd. *)
    match retry_eintr (fun () -> Unix.openfile dir [ Unix.O_RDONLY ] 0) with
    | dfd ->
        (try retry_eintr (fun () -> Unix.fsync dfd) with Unix.Unix_error _ -> ());
        (try Unix.close dfd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  with
  | () -> Ok ()
  | exception Err.Error e ->
      cleanup ();
      Error (Err.with_file path e)
  | exception Unix.Unix_error (err, op, _) ->
      cleanup ();
      Error (io_error path op err)
  | exception Sys_error msg ->
      cleanup ();
      Error (Err.v ~file:path Err.Io msg)

let write_file path contents = Err.get_ok (write_file_res path contents)

(* ---------- streaming request traces ---------- *)

module Trace = struct
  type header = { nodes : int; objects : int }
  type event = { node : int; x : int; write : bool }

  let int_field ?file ~line what t =
    match int_of_string_opt t with
    | Some v -> v
    | None -> Err.failf ?file ~line ~token:t Err.Parse "expected an integer %s" what

  let parse_event ?file ~header ln toks =
    match toks with
    | [ kind; node_tok; x_tok ] ->
        let write =
          match kind with
          | "r" -> false
          | "w" -> true
          | _ ->
              Err.failf ?file ~line:ln ~token:kind Err.Parse
                "expected event kind 'r' or 'w'"
        in
        let node = int_field ?file ~line:ln "event node" node_tok in
        let x = int_field ?file ~line:ln "event object" x_tok in
        if node < 0 || node >= header.nodes then
          Err.failf ?file ~line:ln ~token:node_tok Err.Validation
            "event node %d out of range [0, %d)" node header.nodes;
        if x < 0 || x >= header.objects then
          Err.failf ?file ~line:ln ~token:x_tok Err.Validation
            "event object %d out of range [0, %d)" x header.objects;
        { node; x; write }
    | tok :: _ ->
        Err.failf ?file ~line:ln ~token:tok Err.Parse
          "malformed event line: expected \"r|w <node> <object>\""
    | [] -> assert false

  (* One logical (non-blank, non-comment) line at a time, so a trace is
     never materialized: memory is one line regardless of length. *)
  let read_logical ic lineno =
    let rec loop () =
      match input_line ic with
      | exception End_of_file -> None
      | line -> (
          incr lineno;
          match split_tokens line with
          | [] -> loop ()
          | first :: _ when first.[0] = '#' -> loop ()
          | toks -> Some (!lineno, toks))
    in
    loop ()

  let parse_header ~file ic lineno =
    (match read_logical ic lineno with
    | None -> Err.fail ~file Err.Parse "empty input: expected \"dmnet-trace v1\""
    | Some (_, [ "dmnet-trace"; "v1" ]) -> ()
    | Some (ln, "dmnet-trace" :: version :: _) ->
        Err.failf ~file ~line:ln ~token:version Err.Parse
          "unsupported dmnet-trace version %s (this build reads v1)" version
    | Some (ln, tok :: _) ->
        Err.failf ~file ~line:ln ~token:tok Err.Parse
          "bad header: expected \"dmnet-trace v1\""
    | Some (_, []) -> assert false);
    match read_logical ic lineno with
    | None -> Err.fail ~file Err.Parse "truncated input: expected \"<nodes> <objects>\""
    | Some (ln, [ ntok; ktok ]) ->
        let nodes = int_field ~file ~line:ln "the node count" ntok in
        let objects = int_field ~file ~line:ln "the object count" ktok in
        if nodes <= 0 then
          Err.failf ~file ~line:ln ~token:ntok Err.Validation "trace must cover at least one node";
        if objects <= 0 then
          Err.failf ~file ~line:ln ~token:ktok Err.Validation
            "trace must cover at least one object";
        { nodes; objects }
    | Some (ln, tok :: _) ->
        Err.failf ~file ~line:ln ~token:tok Err.Parse
          "malformed count line: expected \"<nodes> <objects>\""
    | Some (_, []) -> assert false

  let with_reader_res path f =
    match
      Fault.check "trace.read";
      open_in path
    with
    | exception Err.Error e -> Error (Err.with_file path e)
    | exception Sys_error msg -> Error (Err.v ~file:path Err.Io msg)
    | ic ->
        Fun.protect
          ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
          (fun () ->
            match
              let lineno = ref 0 in
              let header = parse_header ~file:path ic lineno in
              let rec next () =
                Fault.check "trace.read.event";
                match read_logical ic lineno with
                | None -> Seq.Nil
                | Some (ln, toks) ->
                    Seq.Cons (parse_event ~file:path ~header ln toks, next)
              in
              f header next
            with
            | v -> Ok v
            | exception Err.Error e -> Error (Err.with_file path e)
            | exception Sys_error msg -> Error (Err.v ~file:path Err.Io msg))

  let with_reader path f = Err.get_ok (with_reader_res path f)

  let write_res path { nodes; objects } events =
    if nodes <= 0 then Err.error ~file:path Err.Validation "trace must cover at least one node"
    else if objects <= 0 then
      Err.error ~file:path Err.Validation "trace must cover at least one object"
    else begin
      let dir = Filename.dirname path in
      let tmp =
        Filename.concat dir
          (Printf.sprintf ".%s.tmp.%d.%d" (Filename.basename path) (Unix.getpid ())
             (Atomic.fetch_and_add tmp_counter 1))
      in
      let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
      match
        Fault.check "trace.write.open";
        let fd =
          retry_eintr (fun () ->
              Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644)
        in
        let oc = Unix.out_channel_of_descr fd in
        (try
           Printf.fprintf oc "dmnet-trace v1\n%d %d\n" nodes objects;
           let count = ref 0 in
           Seq.iter
             (fun { node; x; write } ->
               if node < 0 || node >= nodes then
                 Err.failf ~file:path Err.Validation "event node %d out of range [0, %d)" node
                   nodes;
               if x < 0 || x >= objects then
                 Err.failf ~file:path Err.Validation "event object %d out of range [0, %d)" x
                   objects;
               output_string oc (if write then "w " else "r ");
               output_string oc (string_of_int node);
               output_char oc ' ';
               output_string oc (string_of_int x);
               output_char oc '\n';
               incr count;
               (* a periodic fault point so chaos can hit a mid-stream
                  write without paying a coin per event *)
               if !count land 4095 = 0 then Fault.check "trace.write.write")
             events;
           flush oc;
           Fault.check "trace.write.fsync";
           retry_eintr (fun () -> Unix.fsync fd);
           close_out oc;
           Fault.check "trace.write.rename";
           Sys.rename tmp path;
           (match retry_eintr (fun () -> Unix.openfile dir [ Unix.O_RDONLY ] 0) with
           | dfd ->
               (try retry_eintr (fun () -> Unix.fsync dfd) with Unix.Unix_error _ -> ());
               (try Unix.close dfd with Unix.Unix_error _ -> ())
           | exception Unix.Unix_error _ -> ());
           !count
         with e ->
           close_out_noerr oc;
           raise e)
      with
      | count -> Ok count
      | exception Err.Error e ->
          cleanup ();
          Error (Err.with_file path e)
      | exception Unix.Unix_error (err, op, _) ->
          cleanup ();
          Error (io_error path op err)
      | exception Sys_error msg ->
          cleanup ();
          Error (Err.v ~file:path Err.Io msg)
    end

  let write path header events = Err.get_ok (write_res path header events)
end

(* ---------- file + parse conveniences ---------- *)

let ( let* ) = Result.bind

let load_instance path =
  let* s = read_file_res path in
  instance_of_string_res ~file:path s

let load_placement path =
  let* s = read_file_res path in
  placement_of_string_res ~file:path s
