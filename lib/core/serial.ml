open Dmn_prelude
open Dmn_graph
module Churn = Dmn_paths.Churn

(* ---------- serialization ---------- *)

let instance_to_string inst =
  let g =
    match Instance.graph inst with
    | Some g -> g
    | None -> invalid_arg "Serial: only graph-backed instances serialize"
  in
  let b = Buffer.create 4096 in
  let n = Instance.n inst and k = Instance.objects inst in
  Buffer.add_string b "dmnet-instance v1\n";
  Buffer.add_string b (Printf.sprintf "%d %d %d\n" n k (Wgraph.m g));
  List.iter
    (fun (u, v, w) -> Buffer.add_string b (Printf.sprintf "%d %d %.17g\n" u v w))
    (Wgraph.edges g);
  Buffer.add_string b
    (String.concat " " (List.init n (fun v -> Printf.sprintf "%.17g" (Instance.cs inst v))));
  Buffer.add_char b '\n';
  for x = 0 to k - 1 do
    Buffer.add_string b
      (String.concat " " (List.init n (fun v -> string_of_int (Instance.reads inst ~x v))));
    Buffer.add_char b '\n'
  done;
  for x = 0 to k - 1 do
    Buffer.add_string b
      (String.concat " " (List.init n (fun v -> string_of_int (Instance.writes inst ~x v))));
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let placement_to_string p =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "dmnet-placement v1\n%d\n" (Placement.objects p));
  for x = 0 to Placement.objects p - 1 do
    Buffer.add_string b
      (String.concat " " (List.map string_of_int (Placement.copies p ~x)));
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

(* ---------- tokenizer with source positions ---------- *)

(* Physical lines that are blank or start with [#] are comments. Every
   surviving token carries its 1-based source line so parse and
   validation errors can point at the offending place. *)

let is_space c = c = ' ' || c = '\t' || c = '\r'

let split_tokens line =
  let toks = ref [] and start = ref (-1) in
  String.iteri
    (fun i c ->
      if is_space c then begin
        if !start >= 0 then toks := String.sub line !start (i - !start) :: !toks;
        start := -1
      end
      else if !start < 0 then start := i)
    line;
  if !start >= 0 then toks := String.sub line !start (String.length line - !start) :: !toks;
  List.rev !toks

let logical_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (ln, line) ->
         match split_tokens line with
         | [] -> None
         | first :: _ when first.[0] = '#' -> None
         | toks -> Some (ln, toks))

type cursor = {
  file : string option;
  toks : (string * int) array; (* token, 1-based source line *)
  mutable pos : int;
}

let cursor ?file s =
  let toks =
    logical_lines s
    |> List.concat_map (fun (ln, toks) -> List.map (fun t -> (t, ln)) toks)
    |> Array.of_list
  in
  { file; toks; pos = 0 }

let last_line c = if Array.length c.toks = 0 then None else Some (snd c.toks.(Array.length c.toks - 1))

let next c what =
  if c.pos >= Array.length c.toks then
    Err.failf ?file:c.file ?line:(last_line c) Err.Parse "truncated input: expected %s" what
  else begin
    let t = c.toks.(c.pos) in
    c.pos <- c.pos + 1;
    t
  end

let int_tok c what =
  let t, ln = next c what in
  match int_of_string_opt t with
  | Some v -> (v, ln)
  | None -> Err.failf ?file:c.file ~line:ln ~token:t Err.Parse "expected an integer for %s" what

let float_tok c what =
  let t, ln = next c what in
  match float_of_string_opt t with
  | Some v -> (v, ln, t)
  | None -> Err.failf ?file:c.file ~line:ln ~token:t Err.Parse "expected a number for %s" what

(* A declared count can never exceed the token count of its own file;
   checking this before allocating keeps a tampered header (say,
   "999999999 nodes") from blowing up memory. *)
let check_count c ln what v =
  if v < 0 then
    Err.failf ?file:c.file ~line:ln ~token:(string_of_int v) Err.Validation "%s must be non-negative"
      what;
  if v > Array.length c.toks then
    Err.failf ?file:c.file ~line:ln ~token:(string_of_int v) Err.Validation
      "declared %s (%d) exceeds the size of the input" what v

(* Backstop: constructor sanity checks ([Wgraph.create],
   [Instance.of_graph], [Placement.make]) become structured validation
   errors instead of escaping as [Invalid_argument]. *)
let constructed ?file f =
  match f () with
  | v -> v
  | exception Invalid_argument msg -> Err.fail ?file Err.Validation msg

(* ---------- instance parsing ---------- *)

let parse_instance c =
  let magic, ln = next c "format header" in
  if magic <> "dmnet-instance" then
    Err.failf ?file:c.file ~line:ln ~token:magic Err.Parse
      "bad header: expected \"dmnet-instance v1\"";
  let version, vln = next c "format version" in
  if version <> "v1" then
    Err.failf ?file:c.file ~line:vln ~token:version Err.Parse
      "unsupported dmnet-instance version %s (this build reads v1)" version;
  let n, nln = int_tok c "the node count" in
  check_count c nln "node count" n;
  if n = 0 then Err.fail ?file:c.file ~line:nln Err.Validation "instance must have at least one node";
  let k, kln = int_tok c "the object count" in
  check_count c kln "object count" k;
  if k = 0 then
    Err.fail ?file:c.file ~line:kln Err.Validation "instance must have at least one object";
  let m, mln = int_tok c "the edge count" in
  check_count c mln "edge count" m;
  let seen = Hashtbl.create (2 * m) in
  let edges =
    List.init m (fun _ ->
        let u, uln = int_tok c "an edge endpoint" in
        let v, vln = int_tok c "an edge endpoint" in
        let w, wln, wtok = float_tok c "an edge weight" in
        let endpoint e ln =
          if e < 0 || e >= n then
            Err.failf ?file:c.file ~line:ln ~token:(string_of_int e) Err.Validation
              "edge endpoint %d out of range [0, %d)" e n
        in
        endpoint u uln;
        endpoint v vln;
        if u = v then
          Err.failf ?file:c.file ~line:uln ~token:(string_of_int u) Err.Validation
            "self-loop on node %d" u;
        if w < 0.0 || not (Float.is_finite w) then
          Err.failf ?file:c.file ~line:wln ~token:wtok Err.Validation
            "edge weight must be finite and non-negative";
        let key = (min u v, max u v) in
        if Hashtbl.mem seen key then
          Err.failf ?file:c.file ~line:uln Err.Validation "duplicate edge %d-%d" u v;
        Hashtbl.add seen key ();
        (u, v, w))
  in
  let g = constructed ?file:c.file (fun () -> Wgraph.create n edges) in
  let cs =
    Array.init n (fun i ->
        let v, ln, tok = float_tok c (Printf.sprintf "storage cost %d of %d" (i + 1) n) in
        if Float.is_nan v || v < 0.0 then
          Err.failf ?file:c.file ~line:ln ~token:tok Err.Validation
            "storage cost must be non-negative";
        if v = infinity then
          Err.failf ?file:c.file ~line:ln ~token:tok Err.Validation
            "storage cost must be finite (non-finite costs do not round-trip)";
        v)
  in
  let counts what =
    Array.init k (fun x ->
        Array.init n (fun i ->
            let v, ln =
              int_tok c (Printf.sprintf "%s count %d of %d for object %d" what (i + 1) n x)
            in
            if v < 0 then
              Err.failf ?file:c.file ~line:ln ~token:(string_of_int v) Err.Validation
                "%s count must be non-negative" what;
            v))
  in
  let fr = counts "read" in
  let fw = counts "write" in
  if c.pos < Array.length c.toks then begin
    let tok, ln = c.toks.(c.pos) in
    Err.failf ?file:c.file ~line:ln ~token:tok Err.Parse
      "trailing input after a complete instance"
  end;
  constructed ?file:c.file (fun () -> Instance.of_graph g ~cs ~fr ~fw)

let instance_of_string_res ?file s = Err.protect (fun () -> parse_instance (cursor ?file s))
let instance_of_string s = Err.get_ok (instance_of_string_res s)

(* ---------- placement parsing ---------- *)

let parse_placement ?file s =
  match logical_lines s with
  | [] -> Err.fail ?file Err.Parse "empty input: expected \"dmnet-placement v1\""
  | (hln, header) :: rest ->
      (match header with
      | [ "dmnet-placement"; "v1" ] -> ()
      | "dmnet-placement" :: version :: _ ->
          Err.failf ?file ~line:hln ~token:version Err.Parse
            "unsupported dmnet-placement version %s (this build reads v1)" version
      | tok :: _ ->
          Err.failf ?file ~line:hln ~token:tok Err.Parse
            "bad header: expected \"dmnet-placement v1\""
      | [] -> assert false);
      (match rest with
      | [] -> Err.fail ?file ~line:hln Err.Parse "truncated input: expected the object count"
      | (cln, count_toks) :: rows ->
          let k =
            match count_toks with
            | [ tok ] -> (
                match int_of_string_opt tok with
                | Some k when k >= 0 -> k
                | Some _ ->
                    Err.failf ?file ~line:cln ~token:tok Err.Validation
                      "object count must be non-negative"
                | None ->
                    Err.failf ?file ~line:cln ~token:tok Err.Parse
                      "expected an integer object count")
            | tok :: _ ->
                Err.failf ?file ~line:cln ~token:tok Err.Parse
                  "the object count line must hold a single integer"
            | [] -> assert false
          in
          if List.length rows <> k then
            Err.failf ?file ~line:cln Err.Validation
              "declared %d objects but found %d copy rows" k (List.length rows);
          let copies =
            List.map
              (fun (rln, toks) ->
                List.map
                  (fun tok ->
                    match int_of_string_opt tok with
                    | Some v when v >= 0 -> v
                    | Some v ->
                        Err.failf ?file ~line:rln ~token:(string_of_int v) Err.Validation
                          "copy node must be non-negative"
                    | None ->
                        Err.failf ?file ~line:rln ~token:tok Err.Parse
                          "expected an integer copy node")
                  toks)
              rows
          in
          constructed ?file (fun () -> Placement.make (Array.of_list copies)))

let placement_of_string_res ?file s = Err.protect (fun () -> parse_placement ?file s)
let placement_of_string s = Err.get_ok (placement_of_string_res s)

(* ---------- crash-safe file I/O ---------- *)

let rec retry_eintr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let io_error path op err =
  Err.v ~file:path Err.Io (Printf.sprintf "%s: %s" op (Unix.error_message err))

let read_file_res path =
  match
    Fault.check "serial.read";
    let fd = retry_eintr (fun () -> Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0) in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let len = (Unix.fstat fd).Unix.st_size in
        let buf = Bytes.create len in
        let rec loop off =
          if off >= len then off
          else
            match retry_eintr (fun () -> Unix.read fd buf off (len - off)) with
            | 0 -> off
            | r -> loop (off + r)
        in
        let got = loop 0 in
        if got = len then Bytes.unsafe_to_string buf else Bytes.sub_string buf 0 got)
  with
  | s -> Ok s
  | exception Err.Error e -> Error (Err.with_file path e)
  | exception Unix.Unix_error (err, op, _) -> Error (io_error path op err)
  | exception Sys_error msg -> Error (Err.v ~file:path Err.Io msg)

let read_file path = Err.get_ok (read_file_res path)

(* Durable atomic replace: write a temp file in the same directory,
   flush it to disk, then [rename] over the destination. Readers only
   ever see the old contents or the complete new contents; any failure
   (including an injected one) before the rename leaves the destination
   untouched and removes the temp file. *)

let tmp_counter = Atomic.make 0

let write_file_res path contents =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d.%d" (Filename.basename path) (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1))
  in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  match
    Fault.check "serial.write.open";
    let fd =
      retry_eintr (fun () ->
          Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644)
    in
    (try
       Fault.check "serial.write.write";
       if Fault.fires "serial.write.enospc" then
         raise (Unix.Unix_error (Unix.ENOSPC, "write", tmp));
       let len = String.length contents in
       let short =
         (* injected short write: a prefix lands on disk, then the
            write fails — the torn tmp file must not survive *)
         if Fault.fires "serial.write.short" then Some (len / 2) else None
       in
       let stop = match short with Some s -> s | None -> len in
       let rec loop off =
         if off < stop then
           loop (off + retry_eintr (fun () -> Unix.write_substring fd contents off (stop - off)))
       in
       loop 0;
       (match short with
       | Some s -> Err.failf Err.Fault "injected short write (%d of %d bytes)" s len
       | None -> ());
       Fault.check "serial.write.fsync";
       retry_eintr (fun () -> Unix.fsync fd);
       retry_eintr (fun () -> Unix.close fd)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ | Sys_error _ -> ());
       raise e);
    Fault.check "serial.write.rename";
    Sys.rename tmp path;
    (* Make the rename itself durable; best-effort, as not every
       platform lets a directory fd be fsync'd. *)
    match retry_eintr (fun () -> Unix.openfile dir [ Unix.O_RDONLY ] 0) with
    | dfd ->
        (try retry_eintr (fun () -> Unix.fsync dfd) with Unix.Unix_error _ -> ());
        (try Unix.close dfd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  with
  | () -> Ok ()
  | exception Err.Error e ->
      cleanup ();
      Error (Err.with_file path e)
  | exception Unix.Unix_error (err, op, _) ->
      cleanup ();
      Error (io_error path op err)
  | exception Sys_error msg ->
      cleanup ();
      Error (Err.v ~file:path Err.Io msg)
  | exception e ->
      (* any other exception class still unlinks the tmp file *)
      cleanup ();
      raise e

let write_file path contents = Err.get_ok (write_file_res path contents)

(* ---------- streaming request traces ---------- *)

module Trace = struct
  type header = { nodes : int; objects : int }
  type event = { node : int; x : int; write : bool }
  type topo = Churn.event
  type item = Req of event | Topo of topo

  let int_field ?file ~line what t =
    match int_of_string_opt t with
    | Some v -> v
    | None -> Err.failf ?file ~line ~token:t Err.Parse "expected an integer %s" what

  (* topology-event line kinds; request kinds stay 'r'/'w' *)
  let is_topo_kind = function "ew" | "ed" | "eu" | "nd" | "nu" -> true | _ -> false

  let parse_event ?file ~header ln toks =
    match toks with
    | kind :: _ when is_topo_kind kind ->
        Err.failf ?file ~line:ln ~token:kind Err.Validation
          "topology event '%s' in a request-only trace reader: this consumer replays requests \
           only — read the trace through the items interface to replay churn"
          kind
    | [ kind; node_tok; x_tok ] ->
        let write =
          match kind with
          | "r" -> false
          | "w" -> true
          | _ ->
              Err.failf ?file ~line:ln ~token:kind Err.Parse
                "expected event kind 'r' or 'w'"
        in
        let node = int_field ?file ~line:ln "event node" node_tok in
        let x = int_field ?file ~line:ln "event object" x_tok in
        if node < 0 || node >= header.nodes then
          Err.failf ?file ~line:ln ~token:node_tok Err.Validation
            "event node %d out of range [0, %d)" node header.nodes;
        if x < 0 || x >= header.objects then
          Err.failf ?file ~line:ln ~token:x_tok Err.Validation
            "event object %d out of range [0, %d)" x header.objects;
        { node; x; write }
    | tok :: _ ->
        Err.failf ?file ~line:ln ~token:tok Err.Parse
          "malformed event line: expected \"r|w <node> <object>\""
    | [] -> assert false

  let parse_topo ?file ~header ln kind toks =
    let node what tok =
      let v = int_field ?file ~line:ln what tok in
      if v < 0 || v >= header.nodes then
        Err.failf ?file ~line:ln ~token:tok Err.Validation "%s %d out of range [0, %d)" what v
          header.nodes;
      v
    in
    let weight tok =
      match float_of_string_opt tok with
      | Some w when Float.is_finite w && w >= 0.0 -> w
      | Some _ ->
          Err.failf ?file ~line:ln ~token:tok Err.Validation
            "edge weight must be finite and non-negative"
      | None -> Err.failf ?file ~line:ln ~token:tok Err.Parse "expected a number for an edge weight"
    in
    match (kind, toks) with
    | "ew", [ u; v; w ] ->
        Churn.Edge_weight { u = node "edge endpoint" u; v = node "edge endpoint" v; w = weight w }
    | "ed", [ u; v ] -> Churn.Edge_down { u = node "edge endpoint" u; v = node "edge endpoint" v }
    | "eu", [ u; v; w ] ->
        Churn.Edge_up { u = node "edge endpoint" u; v = node "edge endpoint" v; w = weight w }
    | "nd", [ z ] -> Churn.Node_down (node "event node" z)
    | "nu", [ z ] -> Churn.Node_up (node "event node" z)
    | _ ->
        Err.failf ?file ~line:ln ~token:kind Err.Parse
          "malformed topology line: expected \"ew|eu <u> <v> <w>\", \"ed <u> <v>\" or \"nd|nu \
           <node>\""

  let parse_item ?file ~header ln toks =
    match toks with
    | kind :: rest when is_topo_kind kind -> Topo (parse_topo ?file ~header ln kind rest)
    | _ -> Req (parse_event ?file ~header ln toks)

  (* One logical (non-blank, non-comment) line at a time, so a trace is
     never materialized: memory is one line regardless of length.

     A final line not terminated by '\n' is the signature of a partial
     write (a crash mid-append): with [tolerate = false] it is reported
     as a structured parse error carrying the line number and its byte
     offset; with [tolerate = true] the reader stops cleanly just
     before it, as if the stream ended at the last complete line. *)
  let read_logical ~file ~tolerate ~size ~final_newline ic lineno =
    let rec loop () =
      let off = pos_in ic in
      match input_line ic with
      | exception End_of_file -> None
      | line ->
          incr lineno;
          if (not final_newline) && pos_in ic >= size then
            if tolerate then None
            else
              Err.failf ~file ~line:!lineno Err.Parse
                "truncated final line at byte offset %d (no trailing newline — a partial \
                 write?); re-read tolerating truncation to stop at the last complete event"
                off
          else (
            match split_tokens line with
            | [] -> loop ()
            | first :: _ when first.[0] = '#' -> loop ()
            | toks -> Some (!lineno, toks))
    in
    loop ()

  let parse_header ~file ~read =
    (match read () with
    | None -> Err.fail ~file Err.Parse "empty input: expected \"dmnet-trace v1\""
    | Some (_, [ "dmnet-trace"; "v1" ]) -> ()
    | Some (ln, "dmnet-trace" :: version :: _) ->
        Err.failf ~file ~line:ln ~token:version Err.Parse
          "unsupported dmnet-trace version %s (this build reads v1)" version
    | Some (ln, tok :: _) ->
        Err.failf ~file ~line:ln ~token:tok Err.Parse
          "bad header: expected \"dmnet-trace v1\""
    | Some (_, []) -> assert false);
    match read () with
    | None -> Err.fail ~file Err.Parse "truncated input: expected \"<nodes> <objects>\""
    | Some (ln, [ ntok; ktok ]) ->
        let nodes = int_field ~file ~line:ln "the node count" ntok in
        let objects = int_field ~file ~line:ln "the object count" ktok in
        if nodes <= 0 then
          Err.failf ~file ~line:ln ~token:ntok Err.Validation "trace must cover at least one node";
        if objects <= 0 then
          Err.failf ~file ~line:ln ~token:ktok Err.Validation
            "trace must cover at least one object";
        { nodes; objects }
    | Some (ln, tok :: _) ->
        Err.failf ~file ~line:ln ~token:tok Err.Parse
          "malformed count line: expected \"<nodes> <objects>\""
    | Some (_, []) -> assert false

  let reader_gen ~parse ?(tolerate_truncation = false) path f =
    match
      Fault.check "trace.read";
      open_in_bin path
    with
    | exception Err.Error e -> Error (Err.with_file path e)
    | exception Sys_error msg -> Error (Err.v ~file:path Err.Io msg)
    | ic ->
        Fun.protect
          ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
          (fun () ->
            match
              let size = in_channel_length ic in
              let final_newline =
                size = 0
                ||
                (seek_in ic (size - 1);
                 let c = input_char ic in
                 seek_in ic 0;
                 c = '\n')
              in
              let lineno = ref 0 in
              let read ~tolerate () =
                read_logical ~file:path ~tolerate ~size ~final_newline ic lineno
              in
              (* Header truncation is never tolerated: there is no
                 complete prefix worth resuming from. *)
              let header = parse_header ~file:path ~read:(read ~tolerate:false) in
              let rec next () =
                Fault.check "trace.read.event";
                match read ~tolerate:tolerate_truncation () with
                | None -> Seq.Nil
                | Some (ln, toks) -> Seq.Cons (parse path header ln toks, next)
              in
              f header next
            with
            | v -> Ok v
            | exception Err.Error e -> Error (Err.with_file path e)
            | exception Sys_error msg -> Error (Err.v ~file:path Err.Io msg))

  let with_reader_res ?tolerate_truncation path f =
    reader_gen ~parse:(fun file header ln toks -> parse_event ~file ~header ln toks)
      ?tolerate_truncation path f

  let with_reader ?tolerate_truncation path f =
    Err.get_ok (with_reader_res ?tolerate_truncation path f)

  let with_items_res ?tolerate_truncation path f =
    reader_gen ~parse:(fun file header ln toks -> parse_item ~file ~header ln toks)
      ?tolerate_truncation path f

  let with_items ?tolerate_truncation path f =
    Err.get_ok (with_items_res ?tolerate_truncation path f)

  let output_event oc ~path ~nodes ~objects { node; x; write } =
    if node < 0 || node >= nodes then
      Err.failf ~file:path Err.Validation "event node %d out of range [0, %d)" node nodes;
    if x < 0 || x >= objects then
      Err.failf ~file:path Err.Validation "event object %d out of range [0, %d)" x objects;
    output_string oc (if write then "w " else "r ");
    output_string oc (string_of_int node);
    output_char oc ' ';
    output_string oc (string_of_int x);
    output_char oc '\n'

  let output_topo oc ~path ~nodes topo =
    let node z =
      if z < 0 || z >= nodes then
        Err.failf ~file:path Err.Validation "topology event node %d out of range [0, %d)" z nodes
    in
    let weight w =
      if (not (Float.is_finite w)) || w < 0.0 then
        Err.failf ~file:path Err.Validation
          "topology edge weight must be finite and non-negative"
    in
    match (topo : topo) with
    | Churn.Edge_weight { u; v; w } ->
        node u;
        node v;
        weight w;
        Printf.fprintf oc "ew %d %d %.17g\n" u v w
    | Churn.Edge_down { u; v } ->
        node u;
        node v;
        Printf.fprintf oc "ed %d %d\n" u v
    | Churn.Edge_up { u; v; w } ->
        node u;
        node v;
        weight w;
        Printf.fprintf oc "eu %d %d %.17g\n" u v w
    | Churn.Node_down z ->
        node z;
        Printf.fprintf oc "nd %d\n" z
    | Churn.Node_up z ->
        node z;
        Printf.fprintf oc "nu %d\n" z

  let write_items_res path { nodes; objects } items =
    if nodes <= 0 then Err.error ~file:path Err.Validation "trace must cover at least one node"
    else if objects <= 0 then
      Err.error ~file:path Err.Validation "trace must cover at least one object"
    else begin
      let dir = Filename.dirname path in
      let tmp =
        Filename.concat dir
          (Printf.sprintf ".%s.tmp.%d.%d" (Filename.basename path) (Unix.getpid ())
             (Atomic.fetch_and_add tmp_counter 1))
      in
      let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
      match
        Fault.check "trace.write.open";
        let fd =
          retry_eintr (fun () ->
              Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644)
        in
        let oc = Unix.out_channel_of_descr fd in
        (try
           Printf.fprintf oc "dmnet-trace v1\n%d %d\n" nodes objects;
           let count = ref 0 in
           Seq.iter
             (fun item ->
               (match item with
               | Req e -> output_event oc ~path ~nodes ~objects e
               | Topo t -> output_topo oc ~path ~nodes t);
               incr count;
               (* a periodic fault point so chaos can hit a mid-stream
                  write without paying a coin per event *)
               if !count land 4095 = 0 then Fault.check "trace.write.write")
             items;
           flush oc;
           Fault.check "trace.write.fsync";
           retry_eintr (fun () -> Unix.fsync fd);
           close_out oc;
           Fault.check "trace.write.rename";
           Sys.rename tmp path;
           (match retry_eintr (fun () -> Unix.openfile dir [ Unix.O_RDONLY ] 0) with
           | dfd ->
               (try retry_eintr (fun () -> Unix.fsync dfd) with Unix.Unix_error _ -> ());
               (try Unix.close dfd with Unix.Unix_error _ -> ())
           | exception Unix.Unix_error _ -> ());
           !count
         with e ->
           close_out_noerr oc;
           raise e)
      with
      | count -> Ok count
      | exception Err.Error e ->
          cleanup ();
          Error (Err.with_file path e)
      | exception Unix.Unix_error (err, op, _) ->
          cleanup ();
          Error (io_error path op err)
      | exception Sys_error msg ->
          cleanup ();
          Error (Err.v ~file:path Err.Io msg)
    end

  let write_items path header items = Err.get_ok (write_items_res path header items)

  let write_res path header events = write_items_res path header (Seq.map (fun e -> Req e) events)
  let write path header events = Err.get_ok (write_res path header events)

  (* One wire line of the live ingest protocol. Blank lines, comments,
     and (matching) header lines are non-items so whole trace files can
     be streamed in concatenated. *)
  let item_of_line_res ?file ?(line = 0) ~header s =
    match
      match split_tokens s with
      | [] -> None
      | first :: _ when first.[0] = '#' -> None
      | [ "dmnet-trace"; "v1" ] -> None
      | "dmnet-trace" :: version :: _ ->
          Err.failf ?file ~line ~token:version Err.Parse
            "unsupported dmnet-trace version %s (this build reads v1)" version
      | [ a; b ]
        when (match (int_of_string_opt a, int_of_string_opt b) with
             | Some _, Some _ -> true
             | _ -> false) ->
          (* a bare "<nodes> <objects>" count line: the header of a
             concatenated trace — verify it matches the session *)
          let nodes = int_of_string a and objects = int_of_string b in
          if nodes <> header.nodes || objects <> header.objects then
            Err.failf ?file ~line ~token:a Err.Validation
              "stream header (%d nodes, %d objects) does not match the session's (%d nodes, \
               %d objects)"
              nodes objects header.nodes header.objects;
          None
      | toks -> Some (parse_item ?file ~header line toks)
    with
    | v -> Ok v
    | exception Err.Error e -> Error e

  module Appender = struct
    type t = {
      path : string;
      header : header;
      fd : Unix.file_descr;
      oc : out_channel;
      mutable items : int;
      mutable closed : bool;
    }

    let path t = t.path
    let header t = t.header
    let appended t = t.items

    let really_read fd buf len =
      let off = ref 0 in
      while !off < len do
        match retry_eintr (fun () -> Unix.read fd buf !off (len - !off)) with
        | 0 -> raise End_of_file
        | r -> off := !off + r
      done

    (* Truncate a torn final line (bytes after the last '\n') so the
       file ends at its last complete item; returns the kept size. *)
    let repair_tail fd =
      let size = (Unix.fstat fd).Unix.st_size in
      if size = 0 then 0
      else begin
        let chunk = Bytes.create 4096 in
        let rec last_newline pos =
          if pos <= 0 then -1
          else begin
            let len = min 4096 pos in
            let off = pos - len in
            ignore (Unix.lseek fd off Unix.SEEK_SET);
            really_read fd chunk len;
            let found = ref (-1) in
            for i = len - 1 downto 0 do
              if !found < 0 && Bytes.get chunk i = '\n' then found := off + i
            done;
            if !found >= 0 then !found else last_newline off
          end
        in
        let keep = last_newline size + 1 in
        if keep < size then retry_eintr (fun () -> Unix.ftruncate fd keep);
        keep
      end

    let create_res ?(append = false) path header =
      if header.nodes <= 0 then
        Err.error ~file:path Err.Validation "trace must cover at least one node"
      else if header.objects <= 0 then
        Err.error ~file:path Err.Validation "trace must cover at least one object"
      else begin
        match
          Fault.check "trace.append.open";
          let fresh = (not append) || not (Sys.file_exists path) in
          (if not fresh then
             (* validate the existing header before touching the file *)
             match with_items_res ~tolerate_truncation:true path (fun h _ -> h) with
             | Error e -> raise (Err.Error e)
             | Ok h ->
                 if h <> header then
                   Err.failf ~file:path Err.Validation
                     "append: existing trace header (%d nodes, %d objects) does not match (%d \
                      nodes, %d objects)"
                     h.nodes h.objects header.nodes header.objects);
          let flags =
            if fresh then [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
            else [ Unix.O_RDWR; Unix.O_CLOEXEC ]
          in
          let fd = retry_eintr (fun () -> Unix.openfile path flags 0o644) in
          let pos = if fresh then 0 else repair_tail fd in
          ignore (Unix.lseek fd pos Unix.SEEK_SET);
          let oc = Unix.out_channel_of_descr fd in
          let t = { path; header; fd; oc; items = 0; closed = false } in
          if fresh then begin
            Printf.fprintf oc "dmnet-trace v1\n%d %d\n" header.nodes header.objects;
            flush oc;
            retry_eintr (fun () -> Unix.fsync fd)
          end;
          t
        with
        | t -> Ok t
        | exception Err.Error e -> Error (Err.with_file path e)
        | exception Unix.Unix_error (err, op, _) -> Error (io_error path op err)
        | exception Sys_error msg -> Error (Err.v ~file:path Err.Io msg)
        | exception End_of_file ->
            Error (Err.v ~file:path Err.Io "unexpected end of file while repairing the tail")
      end

    let create ?append path header = Err.get_ok (create_res ?append path header)

    let guard t f =
      if t.closed then Err.error ~file:t.path Err.Io "trace appender is closed"
      else
        match f () with
        | v -> Ok v
        | exception Err.Error e -> Error (Err.with_file t.path e)
        | exception Unix.Unix_error (err, op, _) -> Error (io_error t.path op err)
        | exception Sys_error msg -> Error (Err.v ~file:t.path Err.Io msg)

    let add_res t item =
      guard t (fun () ->
          if Fault.fires "trace.append.enospc" then
            raise (Unix.Unix_error (Unix.ENOSPC, "write", t.path));
          (if Fault.fires "trace.append.short" then begin
             (* injected torn append: a partial line reaches the disk and
                the write fails — dropped by [repair_tail] on reopen *)
             flush t.oc;
             let torn = "r 0" in
             let _ : int =
               retry_eintr (fun () -> Unix.write_substring t.fd torn 0 (String.length torn))
             in
             Err.failf Err.Fault "injected torn append (partial line on disk)"
           end);
          (match item with
          | Req e ->
              output_event t.oc ~path:t.path ~nodes:t.header.nodes ~objects:t.header.objects e
          | Topo tp -> output_topo t.oc ~path:t.path ~nodes:t.header.nodes tp);
          t.items <- t.items + 1;
          (* a periodic fault point so chaos can hit a mid-stream
             append without paying a coin per event *)
          if t.items land 4095 = 0 then Fault.check "trace.append.write")

    let add t item = Err.get_ok (add_res t item)

    let sync_res t =
      guard t (fun () ->
          flush t.oc;
          Fault.check "trace.append.sync";
          retry_eintr (fun () -> Unix.fsync t.fd))

    let sync t = Err.get_ok (sync_res t)

    let close_res t =
      if t.closed then Ok ()
      else
        match
          flush t.oc;
          Fault.check "trace.append.sync";
          retry_eintr (fun () -> Unix.fsync t.fd);
          t.closed <- true;
          close_out t.oc
        with
        | () -> Ok ()
        | exception Err.Error e ->
            t.closed <- true;
            close_out_noerr t.oc;
            Error (Err.with_file t.path e)
        | exception Unix.Unix_error (err, op, _) ->
            t.closed <- true;
            close_out_noerr t.oc;
            Error (io_error t.path op err)
        | exception Sys_error msg ->
            t.closed <- true;
            close_out_noerr t.oc;
            Error (Err.v ~file:t.path Err.Io msg)

    let close t = Err.get_ok (close_res t)
  end

  (* A rotating, prunable chain of appender segments: the daemon's
     ingest journal with bounded disk. Segment [seg-<start>.trace]
     holds the items whose absolute indices begin at [start]; the chain
     is contiguous by construction, so any segment's item count is the
     next segment's start minus its own. *)
  module Journal = struct
    let ( let* ) = Result.bind

    let segment_name start = Printf.sprintf "seg-%016d.trace" start

    let parse_segment_name name =
      if
        String.length name = 26
        && String.sub name 0 4 = "seg-"
        && Filename.check_suffix name ".trace"
      then int_of_string_opt (String.sub name 4 16)
      else None

    let list_segments_res dir =
      match Sys.readdir dir with
      | entries ->
          Ok
            (Array.to_list entries
            |> List.filter_map (fun name ->
                   match parse_segment_name name with
                   | Some start -> Some (start, Filename.concat dir name)
                   | None -> None)
            |> List.sort compare)
      | exception Sys_error msg -> Err.error ~file:dir Err.Io msg

    let ensure_dir_res dir =
      match (Unix.stat dir).Unix.st_kind with
      | Unix.S_DIR -> Ok ()
      | _ -> Err.error ~file:dir Err.Io "journal path exists and is not a directory"
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> (
          match Unix.mkdir dir 0o755 with
          | () -> Ok ()
          | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
          | exception Unix.Unix_error (err, op, _) -> Error (io_error dir op err))
      | exception Unix.Unix_error (err, op, _) -> Error (io_error dir op err)

    let count_items_res ?(tolerate_truncation = true) path =
      with_items_res ~tolerate_truncation path (fun h items ->
          (h, Seq.fold_left (fun acc _ -> acc + 1) 0 items))

    type t = {
      dir : string;
      header : header;
      rotate_items : int;
      mutable seg_start : int;  (** absolute index of the active segment's first item *)
      mutable seg_items : int;  (** items in the active segment, pre-existing included *)
      mutable appender : Appender.t;
      mutable durable : int;  (** absolute item count covered by the last sync *)
      mutable closed : bool;
    }

    let dir t = t.dir
    let header t = t.header
    let items_total t = t.seg_start + t.seg_items
    let durable t = t.durable

    let segments_res t =
      let* segs = list_segments_res t.dir in
      Ok (List.length segs)

    let segments t = Err.get_ok (segments_res t)

    let bytes_on_disk_res t =
      let* segs = list_segments_res t.dir in
      match
        List.fold_left (fun acc (_, path) -> acc + (Unix.stat path).Unix.st_size) 0 segs
      with
      | bytes -> Ok bytes
      | exception Unix.Unix_error (err, op, _) -> Error (io_error t.dir op err)

    let bytes_on_disk t = Err.get_ok (bytes_on_disk_res t)

    let create_res ?(append = false) ?(rotate_items = 65536) dir header =
      if rotate_items <= 0 then
        Err.error ~file:dir Err.Validation "journal rotation threshold must be positive"
      else
        let* () = ensure_dir_res dir in
        let* segs = list_segments_res dir in
        let* segs =
          if append || segs = [] then Ok segs
          else
            (* a fresh journal replaces whatever chain was there, the
               way [Appender.create ~append:false] truncates a file *)
            match List.iter (fun (_, path) -> Sys.remove path) segs with
            | () -> Ok []
            | exception Sys_error msg -> Error (Err.v ~file:dir Err.Io msg)
        in
        match List.rev segs with
        | [] ->
            let path = Filename.concat dir (segment_name 0) in
            let* appender = Appender.create_res path header in
            Ok
              {
                dir;
                header;
                rotate_items;
                seg_start = 0;
                seg_items = 0;
                appender;
                durable = 0;
                closed = false;
              }
        | (start, path) :: _ ->
            (* continue the chain: reopen the last segment (repairing a
               torn tail) and count what survives in it *)
            let* appender = Appender.create_res ~append:true path header in
            let* _, existing = count_items_res ~tolerate_truncation:false path in
            Ok
              {
                dir;
                header;
                rotate_items;
                seg_start = start;
                seg_items = existing;
                appender;
                durable = start + existing;
                closed = false;
              }

    let create ?append ?rotate_items dir header =
      Err.get_ok (create_res ?append ?rotate_items dir header)

    let rotate_res t =
      let* () = Appender.close_res t.appender in
      let start = items_total t in
      let path = Filename.concat t.dir (segment_name start) in
      let* appender = Appender.create_res path t.header in
      t.appender <- appender;
      t.seg_start <- start;
      t.seg_items <- 0;
      (* the closed segment was synced by [close]; its items are durable *)
      if t.durable < start then t.durable <- start;
      Ok ()

    let add_res t item =
      if t.closed then Err.error ~file:t.dir Err.Io "journal is closed"
      else
        let* () = if t.seg_items >= t.rotate_items then rotate_res t else Ok () in
        let* () = Appender.add_res t.appender item in
        t.seg_items <- t.seg_items + 1;
        Ok ()

    let add t item = Err.get_ok (add_res t item)

    let sync_res t =
      if t.closed then Err.error ~file:t.dir Err.Io "journal is closed"
      else
        let* () = Appender.sync_res t.appender in
        t.durable <- items_total t;
        Ok ()

    let sync t = Err.get_ok (sync_res t)

    let close_res t =
      if t.closed then Ok ()
      else begin
        t.closed <- true;
        let* () = Appender.close_res t.appender in
        t.durable <- items_total t;
        Ok ()
      end

    let close t = Err.get_ok (close_res t)

    (* Drop every segment whose entire item range a durable checkpoint
       covers: segment i may go iff segment i+1 starts at or before
       [covered]. The active (last) segment has no successor and is
       never pruned. Returns the number of segments removed. *)
    let prune_res t ~covered =
      if t.closed then Err.error ~file:t.dir Err.Io "journal is closed"
      else
        let* segs = list_segments_res t.dir in
        let rec go removed = function
          | (_, path) :: ((next_start, _) :: _ as rest) when next_start <= covered -> (
              match Sys.remove path with
              | () -> go (removed + 1) rest
              | exception Sys_error msg -> Error (Err.v ~file:path Err.Io msg))
          | _ -> Ok removed
        in
        go 0 segs

    let prune t ~covered = Err.get_ok (prune_res t ~covered)

    (* ---------- offline chain reading ---------- *)

    type chain = { chain_header : header; base : int; chain_items : item list }

    (* Eager read of the whole surviving chain, in order. Strictness is
       positional: only the final segment may carry a torn tail (and
       only under [tolerate_truncation]) — torn bytes mid-chain are
       lost items and always an error, as is a gap or an overlap
       between consecutive segments. *)
    let read_chain_res ?(tolerate_truncation = true) dir =
      let* segs = list_segments_res dir in
      match segs with
      | [] -> Err.error ~file:dir Err.Io "journal directory holds no segments"
      | (base, _) :: _ ->
          let rec go acc header_opt expected = function
            | [] ->
                let items = List.concat (List.rev acc) in
                Ok { chain_header = Option.get header_opt; base; chain_items = items }
            | (start, path) :: rest ->
                if start <> expected then
                  Err.errorf ~file:path Err.Validation
                    "journal chain gap: segment starts at item %d but the previous segment \
                     ends at %d"
                    start expected
                else
                  let last = rest = [] in
                  let* h, items =
                    with_items_res ~tolerate_truncation:(last && tolerate_truncation) path
                      (fun h items -> (h, List.of_seq items))
                  in
                  let* () =
                    match header_opt with
                    | Some h0 when h <> h0 ->
                        Err.error ~file:path Err.Validation
                          "journal chain header mismatch between segments"
                    | _ -> Ok ()
                  in
                  go (items :: acc) (Some h) (start + List.length items) rest
          in
          go [] None base segs

    let read_chain ?tolerate_truncation dir = Err.get_ok (read_chain_res ?tolerate_truncation dir)

    (* ---------- offline validation ---------- *)

    type fsck_report = {
      f_segments : int;
      f_items : int;  (** complete items across the chain *)
      f_bytes : int;
      f_torn_tail : bool;  (** final segment ends mid-line *)
      f_repaired : bool;
    }

    let ends_with_newline path =
      match Unix.openfile path [ Unix.O_RDONLY ] 0 with
      | fd ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let size = (Unix.fstat fd).Unix.st_size in
              if size = 0 then true
              else begin
                ignore (Unix.lseek fd (size - 1) Unix.SEEK_SET);
                let b = Bytes.create 1 in
                retry_eintr (fun () -> Unix.read fd b 0 1) = 1 && Bytes.get b 0 = '\n'
              end)
      | exception Unix.Unix_error (err, op, _) -> raise (Err.Error (io_error path op err))

    let fsck_res ?(repair = false) dir =
      let* segs = list_segments_res dir in
      match segs with
      | [] -> Err.error ~file:dir Err.Io "journal directory holds no segments"
      | _ ->
          let last_path = snd (List.nth segs (List.length segs - 1)) in
          let* torn =
            match ends_with_newline last_path with
            | complete -> Ok (not complete)
            | exception Err.Error e -> Error e
          in
          let* repaired =
            if torn && repair then
              (* reopening for append truncates the torn tail *)
              let* h, _ =
                with_items_res ~tolerate_truncation:true last_path (fun h items ->
                    (h, Seq.fold_left (fun acc _ -> acc + 1) 0 items))
              in
              let* a = Appender.create_res ~append:true last_path h in
              let* () = Appender.close_res a in
              Ok true
            else Ok false
          in
          (* strict-read everything except a still-unrepaired torn
             tail, and prove the chain contiguous *)
          let* chain = read_chain_res ~tolerate_truncation:(torn && not repaired) dir in
          let* bytes =
            match
              List.fold_left (fun acc (_, path) -> acc + (Unix.stat path).Unix.st_size) 0 segs
            with
            | bytes -> Ok bytes
            | exception Unix.Unix_error (err, op, _) -> Error (io_error dir op err)
          in
          Ok
            {
              f_segments = List.length segs;
              f_items = List.length chain.chain_items;
              f_bytes = bytes;
              f_torn_tail = torn;
              f_repaired = repaired;
            }
  end
end

(* ---------- file + parse conveniences ---------- *)

let ( let* ) = Result.bind

let load_instance path =
  let* s = read_file_res path in
  instance_of_string_res ~file:path s

let load_placement path =
  let* s = read_file_res path in
  placement_of_string_res ~file:path s

(* ---------- replay checkpoints ---------- *)

module Checkpoint = struct
  type epoch_row = {
    index : int;
    events : int;
    reads : int;
    writes : int;
    resolves : int;
    solve_retries : int;
    solve_fallbacks : int;
    solve_skipped : int;
    dirty : int;
    cache_hits : int;
    cache_misses : int;
    cache_evictions : int;
    copies : int;
    dropped : int;
    emergency : int;
    topo_events : int;
    serving : float;
    storage : float;
    migration : float;
    p50 : float;
    p95 : float;
    p99 : float;
  }

  type hist_state = {
    h_lo : float;
    h_base : float;
    h_buckets : int;
    h_sum : float;
    h_counts : (int * int) list;
  }

  (* The topology delta: everything a resumed run needs to rebuild the
     churn state without replaying distances — plus the metric hash, so
     a reconstruction that diverges anywhere in the matrix is refused
     rather than silently resumed. *)
  type topo_state = {
    metric_version : int;
    metric_hash : int64;
    down : int list; (* ascending *)
    edge_overrides : ((int * int) * float option) list; (* canonical u < v *)
  }

  let no_topo = { metric_version = 1; metric_hash = 0L; down = []; edge_overrides = [] }

  (* Per-object incremental-resolve state: the frequency vector the
     object last solved against (sparse, ascending node index) and the
     distance-matrix hash of the network it solved on. A resumed run
     needs these to reproduce the dirty-set decisions of the original
     run exactly; an object that never solved carries [o_valid = false]
     (forced dirty at its next active epoch — "object birth"). *)
  type obj_state = {
    o_valid : bool;
    o_mhash : int64;
    o_fr : (int * int) list;
    o_fw : (int * int) list;
  }

  let no_obj_state = { o_valid = false; o_mhash = 0L; o_fr = []; o_fw = [] }

  type t = {
    policy : string;
    epoch_size : int;
    period : int;
    dirty_eps : float;
    next_epoch : int;
    events_consumed : int;
    topo_consumed : int;
    topo_applied : int;
    fingerprint : int64;
    nodes : int;
    objects : int;
    placements : int list array;
    resolve_state : obj_state array;
    epochs : epoch_row list;
    hist : hist_state;
    topo : topo_state;
    checkpoints_written : int;
    serve_retries : int;
  }

  (* ----- trace-identity fingerprint -----

     A SplitMix64-finalized (same constants as [Fault]) order-sensitive
     fold over the header and every consumed event: resuming against a
     different trace — or the same trace reordered or edited anywhere in
     the consumed prefix — is detected before any work happens. *)

  let mix64 z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let fingerprint_init ~nodes ~objects =
    mix64
      (Int64.logxor
         (mix64 (Int64.of_int nodes))
         (Int64.add (Int64.of_int objects) 0x9e3779b97f4a7c15L))

  let fingerprint_event h (e : Trace.event) =
    let tag = (e.node lsl 22) lxor (e.x lsl 1) lxor Bool.to_int e.write in
    mix64 (Int64.add (Int64.mul h 0x100000001b3L) (Int64.of_int tag))

  (* Topology events fold with per-constructor codes shifted past bit
     40 — far above any request tag (node lsl 22) — so a topo item can
     never collide with a request, and an edited weight changes the hash
     through its exact float bits. *)
  let fingerprint_topo h (t : Trace.topo) =
    let fold h tag =
      mix64 (Int64.add (Int64.mul h 0x100000001b3L) tag)
    in
    let code c a b = Int64.logor (Int64.shift_left (Int64.of_int c) 40) (Int64.of_int ((a lsl 20) lxor b)) in
    match t with
    | Churn.Edge_weight { u; v; w } -> fold (fold h (code 1 u v)) (Int64.bits_of_float w)
    | Churn.Edge_down { u; v } -> fold h (code 2 u v)
    | Churn.Edge_up { u; v; w } -> fold (fold h (code 3 u v)) (Int64.bits_of_float w)
    | Churn.Node_down z -> fold h (code 4 z 0)
    | Churn.Node_up z -> fold h (code 5 z 0)

  let fingerprint_item h (it : Trace.item) =
    match it with Trace.Req e -> fingerprint_event h e | Trace.Topo t -> fingerprint_topo h t

  (* ----- rendering -----

     Line-oriented text; each section header carries its body line
     count and the CRC-32 of the exact body bytes, so torn writes and
     bit rot are caught per section with a structured error. Floats are
     "%.17g" (round-trippable). *)

  let fl = Printf.sprintf "%.17g"

  let row_to_line r =
    String.concat " "
      [
        string_of_int r.index;
        string_of_int r.events;
        string_of_int r.reads;
        string_of_int r.writes;
        string_of_int r.resolves;
        string_of_int r.solve_retries;
        string_of_int r.solve_fallbacks;
        string_of_int r.copies;
        string_of_int r.dropped;
        string_of_int r.emergency;
        string_of_int r.topo_events;
        fl r.serving;
        fl r.storage;
        fl r.migration;
        fl r.p50;
        fl r.p95;
        fl r.p99;
        string_of_int r.solve_skipped;
        string_of_int r.dirty;
        string_of_int r.cache_hits;
        string_of_int r.cache_misses;
        string_of_int r.cache_evictions;
      ]

  let obj_state_to_line o =
    let buf = Buffer.create 64 in
    Buffer.add_string buf (if o.o_valid then "1" else "0");
    Buffer.add_char buf ' ';
    Buffer.add_string buf (Printf.sprintf "%016Lx" o.o_mhash);
    let sparse tag l =
      Buffer.add_string buf (Printf.sprintf " %s %d" tag (List.length l));
      List.iter (fun (v, c) -> Buffer.add_string buf (Printf.sprintf " %d %d" v c)) l
    in
    sparse "r" o.o_fr;
    sparse "w" o.o_fw;
    Buffer.contents buf

  (* Serialization is a single pass into one buffer: each section body
     is rendered once into a scratch buffer (to CRC the exact bytes),
     then appended — the whole snapshot is materialized in memory
     before any disk I/O happens, so the write path is a plain
     blob-store operation (snapshot-then-write). *)
  let add_section buf scratch name lines =
    Buffer.clear scratch;
    let count = ref 0 in
    List.iter
      (fun l ->
        incr count;
        Buffer.add_string scratch l;
        Buffer.add_char scratch '\n')
      lines;
    let body = Buffer.contents scratch in
    Buffer.add_string buf
      (Printf.sprintf "section %s %d %s\n" name !count (Crc32.to_hex (Crc32.digest body)));
    Buffer.add_string buf body

  let to_string t =
    let buf = Buffer.create 4096 and scratch = Buffer.create 1024 in
    Buffer.add_string buf "dmnet-ckpt v3\n";
    add_section buf scratch "meta"
      [
        "policy " ^ t.policy;
        Printf.sprintf "epoch_size %d" t.epoch_size;
        Printf.sprintf "period %d" t.period;
        Printf.sprintf "dirty_eps %h" t.dirty_eps;
        Printf.sprintf "next_epoch %d" t.next_epoch;
        Printf.sprintf "events %d" t.events_consumed;
        Printf.sprintf "topo_consumed %d" t.topo_consumed;
        Printf.sprintf "topo_applied %d" t.topo_applied;
        Printf.sprintf "fingerprint %016Lx" t.fingerprint;
        Printf.sprintf "nodes %d" t.nodes;
        Printf.sprintf "objects %d" t.objects;
      ];
    add_section buf scratch "placements"
      (string_of_int (Array.length t.placements)
      :: (Array.to_list t.placements
         |> List.map (fun cs -> String.concat " " (List.map string_of_int cs))));
    add_section buf scratch "resolve"
      (Printf.sprintf "count %d" (Array.length t.resolve_state)
      :: List.map obj_state_to_line (Array.to_list t.resolve_state));
    add_section buf scratch "epochs"
      (string_of_int (List.length t.epochs) :: List.map row_to_line t.epochs);
    add_section buf scratch "histogram"
      (Printf.sprintf "%s %s %d %s" (fl t.hist.h_lo) (fl t.hist.h_base) t.hist.h_buckets
         (fl t.hist.h_sum)
      :: List.map (fun (i, c) -> Printf.sprintf "%d %d" i c) t.hist.h_counts);
    add_section buf scratch "topology"
      ([
         Printf.sprintf "metric_version %d" t.topo.metric_version;
         Printf.sprintf "metric_hash %016Lx" t.topo.metric_hash;
         String.concat " " ("down" :: List.map string_of_int t.topo.down);
         Printf.sprintf "overrides %d" (List.length t.topo.edge_overrides);
       ]
      @ List.map
          (fun ((u, v), ov) ->
            match ov with
            | Some w -> Printf.sprintf "ow %d %d %s" u v (fl w)
            | None -> Printf.sprintf "od %d %d" u v)
          t.topo.edge_overrides);
    add_section buf scratch "ops"
      [
        Printf.sprintf "checkpoints_written %d" t.checkpoints_written;
        Printf.sprintf "serve_retries %d" t.serve_retries;
      ];
    Buffer.contents buf

  (* ----- parsing ----- *)

  let parse ?file s =
    let lines = Array.of_list (String.split_on_char '\n' s) in
    let n = Array.length lines in
    (* a well-formed file ends in '\n', leaving one empty trailing cell *)
    let limit = if n > 0 && lines.(n - 1) = "" then n - 1 else n in
    let pos = ref 0 in
    let next what =
      if !pos >= limit then
        Err.failf ?file ~line:limit Err.Parse "truncated checkpoint: expected %s" what
      else begin
        let l = lines.(!pos) in
        incr pos;
        (!pos, l)
      end
    in
    (let ln, l = next "the format header" in
     match split_tokens l with
     | [ "dmnet-ckpt"; "v3" ] -> ()
     | "dmnet-ckpt" :: version :: _ ->
         Err.failf ?file ~line:ln ~token:version Err.Parse
           "unsupported dmnet-ckpt version %s (this build reads v3)" version
     | tok :: _ ->
         Err.failf ?file ~line:ln ~token:tok Err.Parse "bad header: expected \"dmnet-ckpt v3\""
     | [] -> Err.failf ?file ~line:ln Err.Parse "bad header: expected \"dmnet-ckpt v3\"");
    let sections = Hashtbl.create 8 in
    while !pos < limit do
      let ln, l = next "a section header" in
      match split_tokens l with
      | [ "section"; name; count_tok; crc_tok ] ->
          let count =
            match int_of_string_opt count_tok with
            | Some c when c >= 0 -> c
            | _ ->
                Err.failf ?file ~line:ln ~token:count_tok Err.Parse
                  "expected a non-negative section line count"
          in
          if !pos + count > limit then
            Err.failf ?file ~line:ln Err.Parse
              "truncated checkpoint: section %s declares %d lines but only %d remain" name count
              (limit - !pos);
          let body_lines = Array.to_list (Array.sub lines !pos count) in
          let body_ln = !pos + 1 in
          pos := !pos + count;
          let stored =
            match Crc32.of_hex_opt crc_tok with
            | Some c -> c
            | None ->
                Err.failf ?file ~line:ln ~token:crc_tok Err.Parse
                  "expected an 8-hex-digit section CRC"
          in
          let body = String.concat "" (List.map (fun l -> l ^ "\n") body_lines) in
          let computed = Crc32.digest body in
          if stored <> computed then
            Err.failf ?file ~line:ln Err.Validation
              "checkpoint section %s is corrupt: CRC mismatch (stored %s, computed %s)" name
              (Crc32.to_hex stored) (Crc32.to_hex computed);
          if Hashtbl.mem sections name then
            Err.failf ?file ~line:ln ~token:name Err.Parse "duplicate checkpoint section %s" name;
          Hashtbl.add sections name (body_ln, body_lines)
      | tok :: _ ->
          Err.failf ?file ~line:ln ~token:tok Err.Parse
            "expected \"section <name> <lines> <crc>\""
      | [] -> Err.failf ?file ~line:ln Err.Parse "unexpected blank line between sections"
    done;
    let get name =
      match Hashtbl.find_opt sections name with
      | Some v -> v
      | None -> Err.failf ?file Err.Parse "checkpoint is missing the %s section" name
    in
    let int_of ln what tok =
      match int_of_string_opt tok with
      | Some v -> v
      | None -> Err.failf ?file ~line:ln ~token:tok Err.Parse "expected an integer %s" what
    in
    let float_of ln what tok =
      match float_of_string_opt tok with
      | Some v when not (Float.is_nan v) -> v
      | _ -> Err.failf ?file ~line:ln ~token:tok Err.Parse "expected a number for %s" what
    in
    (* meta *)
    let meta_ln, meta_lines = get "meta" in
    let meta = Hashtbl.create 8 in
    List.iteri
      (fun i l ->
        let ln = meta_ln + i in
        match split_tokens l with
        | [ key; value ] -> Hashtbl.replace meta key (ln, value)
        | tok :: _ ->
            Err.failf ?file ~line:ln ~token:tok Err.Parse
              "malformed meta line: expected \"<key> <value>\""
        | [] -> Err.failf ?file ~line:ln Err.Parse "blank meta line")
      meta_lines;
    let meta_field key =
      match Hashtbl.find_opt meta key with
      | Some v -> v
      | None -> Err.failf ?file ~line:meta_ln Err.Parse "meta section is missing %s" key
    in
    let meta_int key =
      let ln, tok = meta_field key in
      (ln, int_of ln key tok)
    in
    let policy = snd (meta_field "policy") in
    let esz_ln, epoch_size = meta_int "epoch_size" in
    let per_ln, period = meta_int "period" in
    let dirty_eps =
      let ln, tok = meta_field "dirty_eps" in
      let v = float_of ln "dirty_eps" tok in
      if v < 0.0 then
        Err.failf ?file ~line:ln ~token:tok Err.Validation "dirty_eps must be non-negative";
      v
    in
    let ne_ln, next_epoch = meta_int "next_epoch" in
    let ev_ln, events_consumed = meta_int "events" in
    let tc_ln, topo_consumed = meta_int "topo_consumed" in
    let ta_ln, topo_applied = meta_int "topo_applied" in
    let fingerprint =
      let ln, tok = meta_field "fingerprint" in
      if String.length tok <> 16 || not (String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) tok)
      then Err.failf ?file ~line:ln ~token:tok Err.Parse "expected a 16-hex-digit fingerprint";
      Int64.of_string ("0x" ^ tok)
    in
    let nd_ln, nodes = meta_int "nodes" in
    let ob_ln, objects = meta_int "objects" in
    if epoch_size < 1 then
      Err.fail ?file ~line:esz_ln Err.Validation "epoch_size must be positive";
    if period < 1 then Err.fail ?file ~line:per_ln Err.Validation "period must be positive";
    if next_epoch < 0 then
      Err.fail ?file ~line:ne_ln Err.Validation "next_epoch must be non-negative";
    if events_consumed < 0 then
      Err.fail ?file ~line:ev_ln Err.Validation "events must be non-negative";
    if topo_consumed < 0 then
      Err.fail ?file ~line:tc_ln Err.Validation "topo_consumed must be non-negative";
    if topo_applied < 0 || topo_applied > topo_consumed then
      Err.failf ?file ~line:ta_ln Err.Validation
        "topo_applied must lie in [0, topo_consumed = %d]" topo_consumed;
    if nodes < 1 then Err.fail ?file ~line:nd_ln Err.Validation "nodes must be positive";
    if objects < 1 then Err.fail ?file ~line:ob_ln Err.Validation "objects must be positive";
    (* placements *)
    let pl_ln, pl_lines = get "placements" in
    let placements =
      match pl_lines with
      | [] -> Err.failf ?file ~line:pl_ln Err.Parse "placements section is empty"
      | count_line :: rows ->
          let k =
            match split_tokens count_line with
            | [ tok ] -> int_of pl_ln "object count" tok
            | _ ->
                Err.failf ?file ~line:pl_ln Err.Parse
                  "the placements count line must hold a single integer"
          in
          if k <> objects then
            Err.failf ?file ~line:pl_ln Err.Validation
              "placements section declares %d objects but meta says %d" k objects;
          if List.length rows <> k then
            Err.failf ?file ~line:pl_ln Err.Validation
              "placements section declares %d objects but holds %d rows" k (List.length rows);
          Array.of_list
            (List.mapi
               (fun i row ->
                 let ln = pl_ln + 1 + i in
                 match split_tokens row with
                 | [] ->
                     Err.failf ?file ~line:ln Err.Validation
                       "object %d has no copies (every object keeps at least one)" i
                 | toks ->
                     List.map
                       (fun tok ->
                         let v = int_of ln "copy node" tok in
                         if v < 0 || v >= nodes then
                           Err.failf ?file ~line:ln ~token:tok Err.Validation
                             "copy node %d out of range [0, %d)" v nodes;
                         v)
                       toks)
               rows)
    in
    (* per-object incremental-resolve state *)
    let rs_ln, rs_lines = get "resolve" in
    let resolve_state =
      match rs_lines with
      | [] -> Err.failf ?file ~line:rs_ln Err.Parse "resolve section is empty"
      | count_line :: rows ->
          let k =
            match split_tokens count_line with
            | [ "count"; tok ] -> int_of rs_ln "resolve-state object count" tok
            | _ -> Err.failf ?file ~line:rs_ln Err.Parse "expected \"count <objects>\""
          in
          if k <> objects then
            Err.failf ?file ~line:rs_ln Err.Validation
              "resolve section declares %d objects but meta says %d" k objects;
          if List.length rows <> k then
            Err.failf ?file ~line:rs_ln Err.Validation
              "resolve section declares %d objects but holds %d rows" k (List.length rows);
          let parse_sparse ln tag toks =
            match toks with
            | t :: ctok :: rest when t = tag ->
                let count = int_of ln "sparse entry count" ctok in
                if count < 0 then
                  Err.failf ?file ~line:ln ~token:ctok Err.Validation
                    "sparse entry count must be non-negative";
                let last = ref (-1) in
                let rec take acc n toks =
                  if n = 0 then (List.rev acc, toks)
                  else
                    match toks with
                    | vtok :: ctok :: rest ->
                        let v = int_of ln "node index" vtok in
                        let c = int_of ln "frequency count" ctok in
                        if v < 0 || v >= nodes then
                          Err.failf ?file ~line:ln ~token:vtok Err.Validation
                            "node index %d out of range [0, %d)" v nodes;
                        if v <= !last then
                          Err.failf ?file ~line:ln ~token:vtok Err.Validation
                            "sparse node indices must be strictly ascending";
                        if c <= 0 then
                          Err.failf ?file ~line:ln ~token:ctok Err.Validation
                            "stored frequency counts must be positive";
                        last := v;
                        take ((v, c) :: acc) (n - 1) rest
                    | _ ->
                        Err.failf ?file ~line:ln Err.Parse
                          "truncated sparse vector: %d entries declared" count
                in
                take [] count rest
            | _ -> Err.failf ?file ~line:ln Err.Parse "expected sparse vector tagged %S" tag
          in
          Array.of_list
            (List.mapi
               (fun i row ->
                 let ln = rs_ln + 1 + i in
                 match split_tokens row with
                 | valid_tok :: mhash_tok :: rest ->
                     let o_valid =
                       match valid_tok with
                       | "0" -> false
                       | "1" -> true
                       | _ ->
                           Err.failf ?file ~line:ln ~token:valid_tok Err.Parse
                             "expected 0 or 1 for the solved flag"
                     in
                     let o_mhash =
                       if
                         String.length mhash_tok = 16
                         && String.for_all
                              (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
                              mhash_tok
                       then Int64.of_string ("0x" ^ mhash_tok)
                       else
                         Err.failf ?file ~line:ln ~token:mhash_tok Err.Parse
                           "expected a 16-hex-digit metric hash"
                     in
                     let o_fr, rest = parse_sparse ln "r" rest in
                     let o_fw, rest = parse_sparse ln "w" rest in
                     if rest <> [] then
                       Err.failf ?file ~line:ln Err.Parse
                         "trailing tokens after the write vector";
                     { o_valid; o_mhash; o_fr; o_fw }
                 | _ ->
                     Err.failf ?file ~line:ln Err.Parse
                       "malformed resolve-state row: expected \"<solved> <hash> r ... w ...\"")
               rows)
    in
    (* epochs *)
    let ep_ln, ep_lines = get "epochs" in
    let epochs =
      match ep_lines with
      | [] -> Err.failf ?file ~line:ep_ln Err.Parse "epochs section is empty"
      | count_line :: rows ->
          let c =
            match split_tokens count_line with
            | [ tok ] -> int_of ep_ln "epoch count" tok
            | _ ->
                Err.failf ?file ~line:ep_ln Err.Parse
                  "the epochs count line must hold a single integer"
          in
          if List.length rows <> c then
            Err.failf ?file ~line:ep_ln Err.Validation
              "epochs section declares %d rows but holds %d" c (List.length rows);
          if c <> next_epoch then
            Err.failf ?file ~line:ep_ln Err.Validation
              "epochs section holds %d rows but next_epoch is %d (one row per completed epoch)"
              c next_epoch;
          List.mapi
            (fun i row ->
              let ln = ep_ln + 1 + i in
              match split_tokens row with
              | [ idx; ev; rd; wr; rs; sr; sf; cp; dp; em; tp; sv; st; mg; a; b; c'; sk; dt;
                  chh; chm; che ] ->
                  let ii = int_of ln "epoch index" idx in
                  if ii <> i then
                    Err.failf ?file ~line:ln ~token:idx Err.Validation
                      "epoch row %d carries index %d" i ii;
                  let nonneg what v =
                    if v < 0 then
                      Err.failf ?file ~line:ln Err.Validation "%s must be non-negative" what;
                    v
                  in
                  {
                    index = ii;
                    events = nonneg "events" (int_of ln "events" ev);
                    reads = nonneg "reads" (int_of ln "reads" rd);
                    writes = nonneg "writes" (int_of ln "writes" wr);
                    resolves = nonneg "resolves" (int_of ln "resolves" rs);
                    solve_retries = nonneg "solve_retries" (int_of ln "solve_retries" sr);
                    solve_fallbacks = nonneg "solve_fallbacks" (int_of ln "solve_fallbacks" sf);
                    solve_skipped = nonneg "solve_skipped" (int_of ln "solve_skipped" sk);
                    dirty = nonneg "dirty" (int_of ln "dirty" dt);
                    cache_hits = nonneg "cache_hits" (int_of ln "cache_hits" chh);
                    cache_misses = nonneg "cache_misses" (int_of ln "cache_misses" chm);
                    cache_evictions = nonneg "cache_evictions" (int_of ln "cache_evictions" che);
                    copies = nonneg "copies" (int_of ln "copies" cp);
                    dropped = nonneg "dropped" (int_of ln "dropped" dp);
                    emergency = nonneg "emergency" (int_of ln "emergency" em);
                    topo_events = nonneg "topo_events" (int_of ln "topo_events" tp);
                    serving = float_of ln "serving" sv;
                    storage = float_of ln "storage" st;
                    migration = float_of ln "migration" mg;
                    p50 = float_of ln "p50" a;
                    p95 = float_of ln "p95" b;
                    p99 = float_of ln "p99" c';
                  }
              | _ ->
                  Err.failf ?file ~line:ln Err.Parse
                    "malformed epoch row: expected 22 whitespace-separated fields")
            rows
    in
    let consumed = List.fold_left (fun a r -> a + r.events) 0 epochs in
    if consumed <> events_consumed then
      Err.failf ?file ~line:ep_ln Err.Validation
        "epoch rows account for %d events but meta says %d were consumed" consumed
        events_consumed;
    let applied = List.fold_left (fun a r -> a + r.topo_events) 0 epochs in
    if applied <> topo_applied then
      Err.failf ?file ~line:ep_ln Err.Validation
        "epoch rows account for %d topology events but meta says %d were applied" applied
        topo_applied;
    (* histogram *)
    let h_ln, h_lines = get "histogram" in
    let hist =
      match h_lines with
      | [] -> Err.failf ?file ~line:h_ln Err.Parse "histogram section is empty"
      | params :: buckets ->
          let h_lo, h_base, h_buckets, h_sum =
            match split_tokens params with
            | [ lo; base; nb; sum ] ->
                ( float_of h_ln "histogram lo" lo,
                  float_of h_ln "histogram base" base,
                  int_of h_ln "histogram bucket count" nb,
                  float_of h_ln "histogram sum" sum )
            | _ ->
                Err.failf ?file ~line:h_ln Err.Parse
                  "malformed histogram params: expected \"<lo> <base> <buckets> <sum>\""
          in
          if not (h_lo > 0.0 && Float.is_finite h_lo) then
            Err.fail ?file ~line:h_ln Err.Validation "histogram lo must be positive and finite";
          if not (h_base > 1.0 && Float.is_finite h_base) then
            Err.fail ?file ~line:h_ln Err.Validation "histogram base must be > 1 and finite";
          if h_buckets < 2 then
            Err.fail ?file ~line:h_ln Err.Validation "histogram needs at least 2 buckets";
          let last = ref (-1) in
          let h_counts =
            List.mapi
              (fun i row ->
                let ln = h_ln + 1 + i in
                match split_tokens row with
                | [ itok; ctok ] ->
                    let idx = int_of ln "bucket index" itok in
                    let c = int_of ln "bucket count" ctok in
                    if idx < 0 || idx >= h_buckets then
                      Err.failf ?file ~line:ln ~token:itok Err.Validation
                        "bucket index %d out of range [0, %d)" idx h_buckets;
                    if idx <= !last then
                      Err.failf ?file ~line:ln ~token:itok Err.Validation
                        "bucket indices must be strictly ascending";
                    if c <= 0 then
                      Err.failf ?file ~line:ln ~token:ctok Err.Validation
                        "stored bucket counts must be positive";
                    last := idx;
                    (idx, c)
                | _ ->
                    Err.failf ?file ~line:ln Err.Parse
                      "malformed bucket line: expected \"<index> <count>\"")
              buckets
          in
          { h_lo; h_base; h_buckets; h_sum; h_counts }
    in
    (* topology *)
    let t_ln, t_lines = get "topology" in
    let topo =
      match t_lines with
      | mv_line :: mh_line :: down_line :: ocount_line :: orows ->
          let metric_version =
            match split_tokens mv_line with
            | [ "metric_version"; tok ] ->
                let v = int_of t_ln "metric_version" tok in
                if v < 1 then
                  Err.failf ?file ~line:t_ln ~token:tok Err.Validation
                    "metric_version must be positive";
                v
            | _ ->
                Err.failf ?file ~line:t_ln Err.Parse "expected \"metric_version <int>\""
          in
          let metric_hash =
            match split_tokens mh_line with
            | [ "metric_hash"; tok ]
              when String.length tok = 16
                   && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) tok
              ->
                Int64.of_string ("0x" ^ tok)
            | _ ->
                Err.failf ?file ~line:(t_ln + 1) Err.Parse
                  "expected \"metric_hash <16 hex digits>\""
          in
          let down =
            match split_tokens down_line with
            | "down" :: toks ->
                let last = ref (-1) in
                List.map
                  (fun tok ->
                    let z = int_of (t_ln + 2) "down node" tok in
                    if z < 0 || z >= nodes then
                      Err.failf ?file ~line:(t_ln + 2) ~token:tok Err.Validation
                        "down node %d out of range [0, %d)" z nodes;
                    if z <= !last then
                      Err.failf ?file ~line:(t_ln + 2) ~token:tok Err.Validation
                        "down nodes must be strictly ascending";
                    last := z;
                    z)
                  toks
            | _ -> Err.failf ?file ~line:(t_ln + 2) Err.Parse "expected \"down [<node>...]\""
          in
          let ocount =
            match split_tokens ocount_line with
            | [ "overrides"; tok ] ->
                let v = int_of (t_ln + 3) "override count" tok in
                if v < 0 then
                  Err.failf ?file ~line:(t_ln + 3) ~token:tok Err.Validation
                    "override count must be non-negative";
                v
            | _ -> Err.failf ?file ~line:(t_ln + 3) Err.Parse "expected \"overrides <count>\""
          in
          if List.length orows <> ocount then
            Err.failf ?file ~line:(t_ln + 3) Err.Validation
              "topology section declares %d overrides but holds %d rows" ocount
              (List.length orows);
          let edge_overrides =
            List.mapi
              (fun i row ->
                let ln = t_ln + 4 + i in
                let pair utok vtok =
                  let u = int_of ln "override endpoint" utok in
                  let v = int_of ln "override endpoint" vtok in
                  if u < 0 || u >= nodes || v < 0 || v >= nodes then
                    Err.failf ?file ~line:ln Err.Validation
                      "override endpoints %d-%d out of range [0, %d)" u v nodes;
                  if u >= v then
                    Err.failf ?file ~line:ln Err.Validation
                      "override endpoints must be canonical (u < v), got %d-%d" u v;
                  (u, v)
                in
                match split_tokens row with
                | [ "ow"; utok; vtok; wtok ] ->
                    let w = float_of ln "override weight" wtok in
                    if (not (Float.is_finite w)) || w < 0.0 then
                      Err.failf ?file ~line:ln ~token:wtok Err.Validation
                        "override weight must be finite and non-negative";
                    (pair utok vtok, Some w)
                | [ "od"; utok; vtok ] -> (pair utok vtok, None)
                | _ ->
                    Err.failf ?file ~line:ln Err.Parse
                      "malformed override row: expected \"ow <u> <v> <w>\" or \"od <u> <v>\"")
              orows
          in
          { metric_version; metric_hash; down; edge_overrides }
      | _ ->
          Err.failf ?file ~line:t_ln Err.Parse
            "malformed topology section: expected metric_version, metric_hash, down and \
             overrides lines"
    in
    (* ops *)
    let o_ln, o_lines = get "ops" in
    let ops = Hashtbl.create 4 in
    List.iteri
      (fun i l ->
        let ln = o_ln + i in
        match split_tokens l with
        | [ key; value ] ->
            let v = int_of ln key value in
            if v < 0 then
              Err.failf ?file ~line:ln ~token:value Err.Validation "%s must be non-negative" key;
            Hashtbl.replace ops key v
        | _ ->
            Err.failf ?file ~line:ln Err.Parse "malformed ops line: expected \"<key> <value>\"")
      o_lines;
    let ops_field key =
      match Hashtbl.find_opt ops key with
      | Some v -> v
      | None -> Err.failf ?file ~line:o_ln Err.Parse "ops section is missing %s" key
    in
    {
      policy;
      epoch_size;
      period;
      dirty_eps;
      next_epoch;
      events_consumed;
      topo_consumed;
      topo_applied;
      fingerprint;
      nodes;
      objects;
      placements;
      resolve_state;
      epochs;
      hist;
      topo;
      checkpoints_written = ops_field "checkpoints_written";
      serve_retries = ops_field "serve_retries";
    }

  let of_string_res ?file s = Err.protect (fun () -> parse ?file s)
  let of_string s = Err.get_ok (of_string_res s)
  let save_res path t = write_file_res path (to_string t)
  let save path t = Err.get_ok (save_res path t)

  let load_res path =
    let* s = read_file_res path in
    of_string_res ~file:path s

  let load path = Err.get_ok (load_res path)
end
