(** Bounded LRU memo for per-object placement solves.

    Keys capture everything an [Approx.place_object] call depends on:
    the distance-matrix hash, a solver-configuration fingerprint, the
    epoch geometry (events per epoch and storage period), and the
    object's frequency vector quantized on a logarithmic scale so
    near-identical demand regimes share an entry.

    The cache is deterministic by construction: recency is a monotone
    counter (no clocks), eviction removes the unique least-recently
    used entry, and all operations run sequentially on the engine's
    driving thread — hit/miss/eviction counts are a pure function of
    the lookup sequence, independent of domain count. *)

type t

type stats = { hits : int; misses : int; evictions : int }

val create : capacity:int -> t
(** [create ~capacity] makes an empty cache holding at most [capacity]
    entries. Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : t -> int

val length : t -> int
(** Current number of entries (≤ capacity). *)

val stats : t -> stats
(** Cumulative hit/miss/eviction counts since [create]. *)

val quantize : int -> int
(** [quantize c] buckets a frequency count on a log scale:
    [round (8 · log1p c)]. Zero maps to zero (sparsity survives);
    counts within ~13% of each other share a bucket. Monotone
    non-decreasing in [c]. *)

val solver_fingerprint : Approx.config -> string
(** Canonical string identifying a solver configuration; distinct
    configurations that could produce different placements have
    distinct fingerprints. *)

val key :
  mhash:int64 ->
  solver:string ->
  epoch_events:int ->
  period:int ->
  fr:int array ->
  fw:int array ->
  string
(** [key ~mhash ~solver ~epoch_events ~period ~fr ~fw] builds the
    lookup key for one object's solve: [mhash] is [Metric.hash64] of
    the live metric, [solver] a {!solver_fingerprint}, and [fr]/[fw]
    the object's per-node read/write counts for the closing epoch
    (dense, length [n]; quantized internally). Raises
    [Invalid_argument] if [fr] and [fw] differ in length. *)

val find : t -> string -> int list option
(** Lookup; counts a hit (and refreshes recency) or a miss. *)

val add : t -> string -> int list -> unit
(** Insert a solved placement, evicting the least-recently-used entry
    if the cache is full. Re-adding an existing key refreshes it
    without eviction. *)
