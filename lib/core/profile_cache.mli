(** Shared distance-profile cache.

    The ascending order of [d(v, ·)] is object-independent, so the sort
    behind every request-distance profile (radii, storage numbers) is
    hoisted here and computed once per node at instance build —
    [O(n^2 log n)] total, fanned out over {!Dmn_prelude.Pool.default}.
    Per-object profile construction then becomes a linear scan, dropping
    {!Radii.compute} from [O(n^2 log n)] to [O(n^2)] per object.

    Ties are broken by node id, so the order is deterministic and
    independent of the pool schedule. *)

open Dmn_paths

type t

(** [build m] sorts, for every node [v], all nodes by [(d m v u, u)]
    ascending. *)
val build : Metric.t -> t

(** [order t v] is the shared sorted row for [v] — do not mutate. *)
val order : t -> int -> int array

val size : t -> int
