open Dmn_graph
open Dmn_paths

type t = {
  graph : Wgraph.t option;
  metric : Metric.t;
  porder : Profile_cache.t;
  cs : float array;
  fr : int array array;
  fw : int array array;
}

let check metric ~cs ~fr ~fw =
  let n = Metric.size metric in
  if Array.length cs <> n then invalid_arg "Instance: cs length mismatch";
  Array.iter
    (fun c -> if c < 0.0 || Float.is_nan c then invalid_arg "Instance: negative storage cost")
    cs;
  if Array.length fr = 0 then invalid_arg "Instance: no objects";
  if Array.length fr <> Array.length fw then invalid_arg "Instance: fr/fw object count mismatch";
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Instance: fr row length") fr;
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Instance: fw row length") fw;
  let non_neg row = Array.iter (fun c -> if c < 0 then invalid_arg "Instance: negative count") row in
  Array.iter non_neg fr;
  Array.iter non_neg fw

let of_metric metric ~cs ~fr ~fw =
  check metric ~cs ~fr ~fw;
  { graph = None; metric; porder = Profile_cache.build metric; cs = Array.copy cs;
    fr = Array.map Array.copy fr; fw = Array.map Array.copy fw }

let of_graph ?(require_connected = true) g ~cs ~fr ~fw =
  if require_connected && Wgraph.n g > 0 then begin
    let hops = Wgraph.bfs_hops g 0 in
    Array.iteri
      (fun v d ->
        if d < 0 then
          invalid_arg
            (Printf.sprintf
               "Instance.of_graph: graph is disconnected (node %d unreachable from node 0)" v))
      hops
  end;
  let metric = Metric.of_graph g in
  check metric ~cs ~fr ~fw;
  { graph = Some g; metric; porder = Profile_cache.build metric; cs = Array.copy cs;
    fr = Array.map Array.copy fr; fw = Array.map Array.copy fw }

let n t = Metric.size t.metric
let objects t = Array.length t.fr
let metric t = t.metric
let profile_order t v = Profile_cache.order t.porder v
let graph t = t.graph
let cs t v = t.cs.(v)
let reads t ~x v = t.fr.(x).(v)
let writes t ~x v = t.fw.(x).(v)
let requests t ~x v = t.fr.(x).(v) + t.fw.(x).(v)

let total_writes t ~x = Array.fold_left ( + ) 0 t.fw.(x)
let total_reads t ~x = Array.fold_left ( + ) 0 t.fr.(x)
let total_requests t ~x = total_reads t ~x + total_writes t ~x
let read_only t ~x = total_writes t ~x = 0

let related_flp t ~x =
  let demand = Array.init (n t) (fun v -> float_of_int (requests t ~x v)) in
  Dmn_facility.Flp.create t.metric ~opening:t.cs ~demand

let restrict_object t ~x =
  { t with fr = [| Array.copy t.fr.(x) |]; fw = [| Array.copy t.fw.(x) |] }

let scale_object t ~x ~storage ~transmission =
  if storage <= 0.0 || transmission <= 0.0 then
    invalid_arg "Instance.scale_object: factors must be positive";
  let cs = Array.map (fun c -> storage *. c) t.cs in
  let fr = [| Array.copy t.fr.(x) |] and fw = [| Array.copy t.fw.(x) |] in
  match t.graph with
  | Some g ->
      let g = Wgraph.map_weights (fun _ _ w -> transmission *. w) g in
      of_graph g ~cs ~fr ~fw
  | None -> of_metric (Metric.scale transmission t.metric) ~cs ~fr ~fw
