(** A static data management instance (paper Section 1.1).

    Nodes are [0 .. n-1]. For each of the [k] shared objects, every node
    has integer read and write request counts; storage cost is per node
    (uniform object size, as in the paper — the non-uniform extension
    multiplies [cs]/[ct] per object and changes nothing structurally,
    because objects are placed independently). *)

open Dmn_graph
open Dmn_paths

type t

(** [of_metric m ~cs ~fr ~fw] builds an instance over an explicit
    metric. [fr] and [fw] are indexed [fr.(x).(v)]; all counts must be
    non-negative, [cs] non-negative (allowing [infinity] to forbid
    storage on a node). @raise Invalid_argument on shape or value
    errors. *)
val of_metric : Metric.t -> cs:float array -> fr:int array array -> fw:int array array -> t

(** [of_graph g ~cs ~fr ~fw] derives the metric as the shortest-path
    closure of [g] (the paper's [ct]); [g] must be connected. The graph
    is retained for graph-level primitives (exact nearest-copy reads via
    multi-source Dijkstra, Steiner expansion).

    By default the graph is checked for connectivity up front and a
    disconnected graph raises [Invalid_argument] naming an unreachable
    node — rather than letting [infinity] distances poison radii and
    costs downstream. Pass [~require_connected:false] only when the
    caller has already established connectivity; the metric closure
    still rejects unreachable pairs as a backstop. *)
val of_graph :
  ?require_connected:bool ->
  Wgraph.t ->
  cs:float array ->
  fr:int array array ->
  fw:int array array ->
  t

val n : t -> int

(** [objects t] is the number of shared objects. *)
val objects : t -> int

val metric : t -> Metric.t

(** [profile_order t v] is all nodes sorted by [(d(v, u), u)] ascending
    — the shared distance-profile cache built once at instance
    construction (see {!Profile_cache}). The array is shared: do not
    mutate. *)
val profile_order : t -> int -> int array

(** [graph t] is the underlying graph when built with {!of_graph}. *)
val graph : t -> Wgraph.t option

val cs : t -> int -> float
val reads : t -> x:int -> int -> int
val writes : t -> x:int -> int -> int

(** [requests t ~x v] is [reads + writes] — both request kinds count
    toward the paper's [R^z_v] multiset. *)
val requests : t -> x:int -> int -> int

(** [total_writes t ~x] is the paper's [W] for object [x]. *)
val total_writes : t -> x:int -> int

val total_reads : t -> x:int -> int

(** [total_requests t ~x] is the number of requests for [x]. *)
val total_requests : t -> x:int -> int

(** [read_only t ~x] holds when object [x] has no writes. *)
val read_only : t -> x:int -> bool

(** [related_flp t ~x] is the facility location instance of phase 1:
    writes recast as reads (demand [fr + fw]), opening costs [cs]. *)
val related_flp : t -> x:int -> Dmn_facility.Flp.instance

(** [restrict_object t ~x] is a single-object copy of the instance. *)
val restrict_object : t -> x:int -> t

(** [scale_object t ~x ~storage ~transmission] is the single-object
    instance of [x] with storage fees multiplied by [storage] and link
    fees by [transmission] — the paper's non-uniform cost model
    (Section 1.1 claims all results carry over): objects are placed
    independently, so an instance with per-object cost functions
    decomposes into one scaled instance per object. Both factors must be
    positive. Graph-backed instances stay graph-backed. *)
val scale_object : t -> x:int -> storage:float -> transmission:float -> t
