(** Plain-text serialization of instances and placements, for the CLI
    and for archiving experiment inputs — with validated ingestion and
    crash-safe file I/O.

    Instance format (whitespace-separated, [#] comments allowed):
    {v
    dmnet-instance v1
    <n> <objects> <m>
    u v w          (m edge lines)
    cs_0 .. cs_{n-1}
    fr_x0 .. fr_x{n-1}   (one line per object)
    fw_x0 .. fw_x{n-1}   (one line per object)
    v}

    {2 Error model}

    Every parser exists in two forms: a [Result]-based [_res] variant
    returning [('a, Err.t) result], and a thin raising wrapper (the
    historical API) that raises [Err.Error]. No input — however
    mangled — escapes as a bare stdlib [Failure] or [Invalid_argument]:
    syntactic damage is reported as {!Dmn_prelude.Err.Parse} and
    well-formed-but-invalid data (endpoint out of range, duplicate
    edge, non-finite weight or storage cost, negative count,
    disconnected graph, object-count mismatch) as
    {!Dmn_prelude.Err.Validation}, each carrying the source line and
    offending token where one exists. Declared counts are bounded
    against the input size before anything is allocated, so a tampered
    header cannot trigger a huge allocation. *)

val instance_to_string : Instance.t -> string

(** [instance_of_string_res ?file s] parses and fully validates [s].
    [file] is attached to errors for reporting. Only graph-backed,
    connected instances with finite storage costs round-trip. *)
val instance_of_string_res : ?file:string -> string -> (Instance.t, Dmn_prelude.Err.t) result

(** Raising wrapper over {!instance_of_string_res}.
    @raise Dmn_prelude.Err.Error on malformed or invalid input. *)
val instance_of_string : string -> Instance.t

val placement_to_string : Placement.t -> string

(** [placement_of_string_res ?file s] parses a placement and checks the
    declared object count against the number of copy rows. *)
val placement_of_string_res : ?file:string -> string -> (Placement.t, Dmn_prelude.Err.t) result

(** Raising wrapper over {!placement_of_string_res}.
    @raise Dmn_prelude.Err.Error on malformed or invalid input. *)
val placement_of_string : string -> Placement.t

(** {2 Crash-safe file I/O}

    [write_file] is atomic and durable: contents go to a temp file in
    the destination directory, are [fsync]'d, and are renamed over the
    destination (the directory is then fsync'd best-effort). A crash or
    injected fault at any point leaves either the complete old contents
    or the complete new contents — never a truncated file — and no temp
    file behind. Interrupted system calls ([EINTR]) are retried.

    Both operations carry {!Dmn_prelude.Fault} injection points:
    ["serial.read"], ["serial.write.open"], ["serial.write.write"],
    ["serial.write.fsync"], ["serial.write.rename"]. *)

val write_file_res : string -> string -> (unit, Dmn_prelude.Err.t) result

(** @raise Dmn_prelude.Err.Error with kind [Io] (or [Fault] under
    injection) on failure. *)
val write_file : string -> string -> unit

val read_file_res : string -> (string, Dmn_prelude.Err.t) result

(** @raise Dmn_prelude.Err.Error with kind [Io] on failure. *)
val read_file : string -> string

(** [load_instance path] reads and parses in one step, attaching [path]
    to any error. *)
val load_instance : string -> (Instance.t, Dmn_prelude.Err.t) result

val load_placement : string -> (Placement.t, Dmn_prelude.Err.t) result

(** {2 Streaming request traces}

    Text trace format (whitespace-separated, [#] comments allowed):
    {v
    dmnet-trace v1
    <nodes> <objects>
    r <node> <object>     (one line per item, in arrival order)
    w <node> <object>
    ew <u> <v> <w>        (topology: edge reweight)
    ed <u> <v>            (topology: edge down)
    eu <u> <v> <w>        (topology: edge up)
    nd <node>             (topology: node down)
    nu <node>             (topology: node up)
    v}

    Request lines and topology lines interleave freely; the topology
    kinds are only structurally validated here (endpoint ranges, weight
    finiteness) — consistency against the evolving network state is
    {!Dmn_paths.Churn.apply}'s job at replay time.

    Unlike the instance parser, traces are processed {e streamingly}:
    the reader hands back a lazy [Seq.t] that holds one line in memory
    at a time, and the writer drains a [Seq.t] to disk event by event —
    a million-event trace costs O(1) memory on both sides. The same
    error model applies: syntactic damage is {!Dmn_prelude.Err.Parse},
    out-of-range nodes/objects are {!Dmn_prelude.Err.Validation}, both
    carrying file and line. Fault points: ["trace.read"] at open,
    ["trace.read.event"] per event, ["trace.write.open"],
    ["trace.write.write"] (every 4096 events), ["trace.write.fsync"],
    ["trace.write.rename"]. *)

module Trace : sig
  type header = { nodes : int; objects : int }

  type event = { node : int; x : int; write : bool }

  (** A topology event embedded in a trace. *)
  type topo = Dmn_paths.Churn.event

  (** One trace item: a request or a topology event. *)
  type item = Req of event | Topo of topo

  (** [with_reader_res ?tolerate_truncation path f] opens [path],
      parses and validates the header, and runs [f header events].
      [events] is a {e one-shot, ephemeral} sequence: it reads from the
      file as it is forced and is only valid inside [f] (the file is
      closed when [f] returns). A malformed event encountered
      mid-stream raises [Err.Error] at the offending element; that
      error (and any raised by [f]) is returned as [Error]. A topology
      line raises {!Dmn_prelude.Err.Validation} naming the kind — this
      reader replays requests only; use {!with_items_res} for traces
      with churn.

      A final line with no terminating newline is the signature of a
      partial write (a crash mid-append). By default it is reported as
      a {!Dmn_prelude.Err.Parse} error naming the line and its byte
      offset; with [~tolerate_truncation:true] the stream stops cleanly
      at the last complete event instead (resume scenarios). Header
      truncation is never tolerated. *)
  val with_reader_res :
    ?tolerate_truncation:bool ->
    string ->
    (header -> event Seq.t -> 'a) ->
    ('a, Dmn_prelude.Err.t) result

  (** Raising wrapper over {!with_reader_res}.
      @raise Dmn_prelude.Err.Error on malformed input or I/O failure. *)
  val with_reader : ?tolerate_truncation:bool -> string -> (header -> event Seq.t -> 'a) -> 'a

  (** [with_items_res ?tolerate_truncation path f] is {!with_reader_res}
      over the full item grammar: request lines become [Req], topology
      lines become [Topo], both structurally validated against the
      header. The churn-aware replay engine reads traces through this
      interface. *)
  val with_items_res :
    ?tolerate_truncation:bool ->
    string ->
    (header -> item Seq.t -> 'a) ->
    ('a, Dmn_prelude.Err.t) result

  (** Raising wrapper over {!with_items_res}.
      @raise Dmn_prelude.Err.Error on malformed input or I/O failure. *)
  val with_items : ?tolerate_truncation:bool -> string -> (header -> item Seq.t -> 'a) -> 'a

  (** [write_res path header events] drains [events] to [path] with the
      same atomic, durable protocol as {!write_file} (temp file +
      [fsync] + rename), validating every event against [header].
      Returns the number of events written. The sequence is forced
      exactly once. *)
  val write_res : string -> header -> event Seq.t -> (int, Dmn_prelude.Err.t) result

  (** Raising wrapper over {!write_res}.
      @raise Dmn_prelude.Err.Error on invalid events or I/O failure. *)
  val write : string -> header -> event Seq.t -> int

  (** [write_items_res path header items] is {!write_res} over the full
      item grammar, emitting topology lines in place. Returns the
      number of items written. *)
  val write_items_res : string -> header -> item Seq.t -> (int, Dmn_prelude.Err.t) result

  (** Raising wrapper over {!write_items_res}.
      @raise Dmn_prelude.Err.Error on invalid items or I/O failure. *)
  val write_items : string -> header -> item Seq.t -> int

  (** [item_of_line_res ~header ?file ?line s] parses one wire line of
      the v1 trace grammar — the daemon's ingest protocol. Returns
      [Ok None] for non-items that may legitimately appear on a live
      stream: blank lines, [#] comments, a ["dmnet-trace v1"] banner,
      and a bare ["<nodes> <objects>"] count line matching [header]
      (so concatenated trace files can be piped in whole). A banner
      with a different version, a count line that contradicts the
      session's shape, or a malformed/out-of-range item is an error. *)
  val item_of_line_res :
    ?file:string ->
    ?line:int ->
    header:header ->
    string ->
    (item option, Dmn_prelude.Err.t) result

  (** Durable streaming trace writer — the serving daemon's ingest
      journal. Unlike {!write_items_res} (which buffers the whole
      stream into a temp file and atomically renames it at the end),
      an appender writes items as they arrive and makes them durable
      on demand: {!sync} flushes application buffers and [fsync]s, so
      after a crash the file is intact up to the last sync, plus at
      most one torn final line — exactly the damage the
      [?tolerate_truncation] reader shrugs off.

      Reopening with [~append:true] validates the existing header
      against the new one and {e repairs} a torn final line by
      truncating to the last complete one, so a journal survives any
      kill-and-restart cycle. *)
  module Appender : sig
    type t

    (** [create_res ?append path header] opens [path] for streaming
        item writes. Fresh files (and [append = false], the default)
        are truncated and given a v1 header, which is synced before
        returning — a journal that exists on disk always has a
        complete header. With [append = true] on an existing non-empty
        file, the header is read back and must equal [header], and a
        torn final line is truncated away. *)
    val create_res : ?append:bool -> string -> header -> (t, Dmn_prelude.Err.t) result

    (** Raising wrapper over {!create_res}. *)
    val create : ?append:bool -> string -> header -> t

    (** [add_res t item] validates [item] against the header and
        appends its line to the OS buffer (durable only after
        {!sync_res}). *)
    val add_res : t -> item -> (unit, Dmn_prelude.Err.t) result

    (** Raising wrapper over {!add_res}. *)
    val add : t -> item -> unit

    (** [sync_res t] flushes and [fsync]s: every item added so far is
        durable. *)
    val sync_res : t -> (unit, Dmn_prelude.Err.t) result

    (** Raising wrapper over {!sync_res}. *)
    val sync : t -> unit

    (** [close_res t] syncs and closes; idempotent. *)
    val close_res : t -> (unit, Dmn_prelude.Err.t) result

    (** Raising wrapper over {!close_res}. *)
    val close : t -> unit

    (** Items appended through this handle (pre-existing items of an
        [append]ed file not included). *)
    val appended : t -> int

    val path : t -> string
    val header : t -> header
  end

  (** Rotating, prunable journal: a directory of appender segments
      ([seg-<start>.trace], [start] = the absolute index of the
      segment's first item, zero-padded so lexicographic order is
      chain order). The writer rotates to a fresh segment every
      [rotate_items] items; once a durable checkpoint covers a whole
      segment, {!prune_res} deletes it — so a soak's disk usage is
      bounded by [rotate_items × live segments], not by uptime. Resume
      and offline replay walk the surviving chain with
      {!read_chain_res}, which repairs nothing but tolerates (only) a
      torn tail on the {e final} segment — mid-chain damage is lost
      data and always an error.

      Fault points: the underlying {!Appender} points
      (["trace.append.open"/"write"/"sync"/"short"/"enospc"]) fire per
      segment operation. *)
  module Journal : sig
    type t

    (** [create_res ?append ?rotate_items dir header] opens (creating
        [dir] if needed) a journal. Fresh journals ([append = false],
        the default) remove any existing segments and start a
        [seg-0...] segment; with [append = true] the last existing
        segment is reopened — its header validated, a torn tail
        truncated away — and the chain continues where it stopped. *)
    val create_res :
      ?append:bool -> ?rotate_items:int -> string -> header -> (t, Dmn_prelude.Err.t) result

    (** Raising wrapper over {!create_res}. *)
    val create : ?append:bool -> ?rotate_items:int -> string -> header -> t

    (** [add_res t item] appends one item, rotating to a new segment
        first when the active one is full. *)
    val add_res : t -> item -> (unit, Dmn_prelude.Err.t) result

    (** Raising wrapper over {!add_res}. *)
    val add : t -> item -> unit

    (** [sync_res t] makes every appended item durable; {!durable}
        then equals {!items_total}. *)
    val sync_res : t -> (unit, Dmn_prelude.Err.t) result

    (** Raising wrapper over {!sync_res}. *)
    val sync : t -> unit

    (** [close_res t] syncs and closes the active segment; idempotent. *)
    val close_res : t -> (unit, Dmn_prelude.Err.t) result

    (** Raising wrapper over {!close_res}. *)
    val close : t -> unit

    (** [prune_res t ~covered] removes every segment whose entire item
        range lies below absolute index [covered] (a segment may go iff
        its successor starts at or before [covered]); the active
        segment is never removed. Returns the number of segments
        deleted. Call only with [covered] taken from a checkpoint that
        is itself durable — the pruned items' only other copy. *)
    val prune_res : t -> covered:int -> (int, Dmn_prelude.Err.t) result

    (** Raising wrapper over {!prune_res}. *)
    val prune : t -> covered:int -> int

    (** Total items in the chain: the active segment's start plus its
        item count (pre-existing items of an appended journal
        included). Absolute — pruning does not change it. *)
    val items_total : t -> int

    (** Absolute item count covered by the last sync (or already on
        disk at open). *)
    val durable : t -> int

    val segments_res : t -> (int, Dmn_prelude.Err.t) result

    (** Segments currently on disk. *)
    val segments : t -> int

    val bytes_on_disk_res : t -> (int, Dmn_prelude.Err.t) result

    (** Bytes across all surviving segments. *)
    val bytes_on_disk : t -> int

    val dir : t -> string
    val header : t -> header

    (** The surviving chain, read eagerly: the common header, [base]
        (the absolute index of the first surviving item — 0 unless
        segments were pruned) and the items in order. *)
    type chain = { chain_header : header; base : int; chain_items : item list }

    (** [read_chain_res ?tolerate_truncation dir] validates contiguity
        (each segment starts where its predecessor ended) and header
        agreement while reading. [tolerate_truncation] (default
        [true]) applies to the final segment only. *)
    val read_chain_res : ?tolerate_truncation:bool -> string -> (chain, Dmn_prelude.Err.t) result

    (** Raising wrapper over {!read_chain_res}. *)
    val read_chain : ?tolerate_truncation:bool -> string -> chain

    (** [list_segments_res dir] is the chain's [(start, path)] list in
        chain order. *)
    val list_segments_res : string -> ((int * string) list, Dmn_prelude.Err.t) result

    type fsck_report = {
      f_segments : int;
      f_items : int;  (** complete items across the chain *)
      f_bytes : int;
      f_torn_tail : bool;  (** final segment ends mid-line *)
      f_repaired : bool;
    }

    (** [fsck_res ?repair dir] validates the chain offline: segment
        headers agree, the chain is contiguous, every line parses, and
        torn bytes appear (if anywhere) only at the final segment's
        tail. With [repair = true] a torn tail is truncated to the
        last complete item. Without [repair], a torn tail is reported
        in the (successful) report — it is exactly the damage resume
        handles — while any other inconsistency is an [Error]. *)
    val fsck_res : ?repair:bool -> string -> (fsck_report, Dmn_prelude.Err.t) result
  end
end

(** {2 Replay checkpoints}

    Versioned crash-safe snapshots of the replay engine's state, written
    with the same atomic temp-file + [fsync] + rename protocol as
    {!write_file}. Line-oriented text format:
    {v
    dmnet-ckpt v2
    section <name> <lines> <crc32>
    ...body lines...
    v}
    with six sections — [meta] (policy, epoch geometry, progress, trace
    fingerprint, instance shape), [placements] (current copy set per
    object), [epochs] (one accounting row per completed epoch, from
    which cumulative metrics are reconstructed), [histogram] (request
    cost distribution), [topology] (the churn delta: metric version and
    hash, down nodes, edge overrides — what a resumed run needs to
    rebuild the network state and prove it did so byte-identically) and
    [ops] (operational counters). Each section
    header carries the CRC-32 of the exact body bytes: corruption
    anywhere yields a structured {!Dmn_prelude.Err.Validation} error
    naming the section (exit code 65 at the CLI), never a silently
    wrong resume.

    The {e fingerprint} is an order-sensitive hash over the trace header
    and every consumed event; [dmnet replay --resume] recomputes it
    while fast-forwarding the trace reader and refuses to resume
    against a trace that differs anywhere in the consumed prefix. *)

module Checkpoint : sig
  (** One completed epoch's accounting, exactly the scalar fields of
      the engine's per-epoch metrics snapshot. *)
  type epoch_row = {
    index : int;
    events : int;
    reads : int;
    writes : int;
    resolves : int;
    solve_retries : int;
    solve_fallbacks : int;
    solve_skipped : int;  (** active objects carried without re-solving *)
    dirty : int;  (** objects whose change score exceeded the threshold *)
    cache_hits : int;  (** dirty objects satisfied from the solve cache *)
    cache_misses : int;
    cache_evictions : int;
    copies : int;
    dropped : int;  (** requests dropped (dead requester or partition) *)
    emergency : int;  (** emergency re-replications triggered *)
    topo_events : int;  (** topology events applied in this epoch *)
    serving : float;
    storage : float;
    migration : float;
    p50 : float;
    p95 : float;
    p99 : float;
  }

  (** Request-cost histogram state: parameters, sample sum, and the
      non-zero buckets as [(index, count)] in ascending index order. *)
  type hist_state = {
    h_lo : float;
    h_base : float;
    h_buckets : int;
    h_sum : float;
    h_counts : (int * int) list;
  }

  (** The topology delta at checkpoint time: applied-churn network
      state plus an integrity hash of the repaired metric, so a resume
      that reconstructs a different matrix is refused. *)
  type topo_state = {
    metric_version : int;  (** {!Dmn_paths.Metric.version} of the churned metric *)
    metric_hash : int64;  (** {!Dmn_paths.Metric.hash64} of the churned metric *)
    down : int list;  (** failed nodes, strictly ascending *)
    edge_overrides : ((int * int) * float option) list;
        (** canonical [u < v]; [Some w] reweighted/added, [None] removed *)
  }

  (** The pristine-network topology state (version 1, no deltas) for
      runs without churn; its [metric_hash] of [0L] is a sentinel that
      resume does not check against a real metric. *)
  val no_topo : topo_state

  (** Per-object incremental-resolve state: the frequency vector the
      object last solved against (sparse [(node, count)] pairs, strictly
      ascending) and the {!Dmn_paths.Metric.hash64} of the network it
      solved on. Resume restores these so the dirty-set decisions of the
      continued run reproduce the original's exactly. An object that
      never solved carries [o_valid = false] and is forced dirty at its
      next active epoch. *)
  type obj_state = {
    o_valid : bool;
    o_mhash : int64;
    o_fr : (int * int) list;
    o_fw : (int * int) list;
  }

  (** The never-solved state ([o_valid = false], empty vectors). *)
  val no_obj_state : obj_state

  type t = {
    policy : string;  (** engine policy name, e.g. ["resolve"] *)
    epoch_size : int;
    period : int;  (** storage accounting period *)
    dirty_eps : float;  (** the dirty-score threshold the run solved under *)
    next_epoch : int;  (** first epoch index the resumed run executes *)
    events_consumed : int;  (** trace request events consumed so far *)
    topo_consumed : int;  (** topology items consumed from the trace *)
    topo_applied : int;
        (** topology items already applied to the network ([<=
            topo_consumed]; the difference is the pending queue waiting
            for the next epoch boundary) *)
    fingerprint : int64;  (** trace-identity hash over the consumed prefix *)
    nodes : int;
    objects : int;
    placements : int list array;  (** current copy nodes per object *)
    resolve_state : obj_state array;  (** one per object, index-aligned *)
    epochs : epoch_row list;  (** chronological, one per completed epoch *)
    hist : hist_state;
    topo : topo_state;  (** network state after [topo_applied] events *)
    checkpoints_written : int;  (** operational counter carried across resumes *)
    serve_retries : int;  (** operational counter carried across resumes *)
  }

  (** [fingerprint_init ~nodes ~objects] seeds the trace fingerprint
      from the header. *)
  val fingerprint_init : nodes:int -> objects:int -> int64

  (** [fingerprint_event h e] folds one consumed event into the hash.
      Order-sensitive. *)
  val fingerprint_event : int64 -> Trace.event -> int64

  (** [fingerprint_topo h t] folds one consumed topology item into the
      hash. Constructor codes live above bit 40 — disjoint from every
      request tag — and weights fold their exact float bits, so no
      request/topology confusion or weight edit can collide. *)
  val fingerprint_topo : int64 -> Trace.topo -> int64

  (** [fingerprint_item h it] dispatches to {!fingerprint_event} or
      {!fingerprint_topo}. *)
  val fingerprint_item : int64 -> Trace.item -> int64

  val to_string : t -> string

  (** [of_string_res ?file s] parses and fully validates a checkpoint:
      section CRCs, count/range checks, per-epoch row consistency
      (indices, event totals), placement and histogram sanity. *)
  val of_string_res : ?file:string -> string -> (t, Dmn_prelude.Err.t) result

  (** @raise Dmn_prelude.Err.Error on malformed or corrupt input. *)
  val of_string : string -> t

  (** [save_res path t] writes atomically and durably via
      {!write_file_res} (same fault points). *)
  val save_res : string -> t -> (unit, Dmn_prelude.Err.t) result

  (** @raise Dmn_prelude.Err.Error on I/O failure. *)
  val save : string -> t -> unit

  val load_res : string -> (t, Dmn_prelude.Err.t) result

  (** @raise Dmn_prelude.Err.Error on read or parse failure. *)
  val load : string -> t
end
