(** Plain-text serialization of instances and placements, for the CLI
    and for archiving experiment inputs — with validated ingestion and
    crash-safe file I/O.

    Instance format (whitespace-separated, [#] comments allowed):
    {v
    dmnet-instance v1
    <n> <objects> <m>
    u v w          (m edge lines)
    cs_0 .. cs_{n-1}
    fr_x0 .. fr_x{n-1}   (one line per object)
    fw_x0 .. fw_x{n-1}   (one line per object)
    v}

    {2 Error model}

    Every parser exists in two forms: a [Result]-based [_res] variant
    returning [('a, Err.t) result], and a thin raising wrapper (the
    historical API) that raises [Err.Error]. No input — however
    mangled — escapes as a bare stdlib [Failure] or [Invalid_argument]:
    syntactic damage is reported as {!Dmn_prelude.Err.Parse} and
    well-formed-but-invalid data (endpoint out of range, duplicate
    edge, non-finite weight or storage cost, negative count,
    disconnected graph, object-count mismatch) as
    {!Dmn_prelude.Err.Validation}, each carrying the source line and
    offending token where one exists. Declared counts are bounded
    against the input size before anything is allocated, so a tampered
    header cannot trigger a huge allocation. *)

val instance_to_string : Instance.t -> string

(** [instance_of_string_res ?file s] parses and fully validates [s].
    [file] is attached to errors for reporting. Only graph-backed,
    connected instances with finite storage costs round-trip. *)
val instance_of_string_res : ?file:string -> string -> (Instance.t, Dmn_prelude.Err.t) result

(** Raising wrapper over {!instance_of_string_res}.
    @raise Dmn_prelude.Err.Error on malformed or invalid input. *)
val instance_of_string : string -> Instance.t

val placement_to_string : Placement.t -> string

(** [placement_of_string_res ?file s] parses a placement and checks the
    declared object count against the number of copy rows. *)
val placement_of_string_res : ?file:string -> string -> (Placement.t, Dmn_prelude.Err.t) result

(** Raising wrapper over {!placement_of_string_res}.
    @raise Dmn_prelude.Err.Error on malformed or invalid input. *)
val placement_of_string : string -> Placement.t

(** {2 Crash-safe file I/O}

    [write_file] is atomic and durable: contents go to a temp file in
    the destination directory, are [fsync]'d, and are renamed over the
    destination (the directory is then fsync'd best-effort). A crash or
    injected fault at any point leaves either the complete old contents
    or the complete new contents — never a truncated file — and no temp
    file behind. Interrupted system calls ([EINTR]) are retried.

    Both operations carry {!Dmn_prelude.Fault} injection points:
    ["serial.read"], ["serial.write.open"], ["serial.write.write"],
    ["serial.write.fsync"], ["serial.write.rename"]. *)

val write_file_res : string -> string -> (unit, Dmn_prelude.Err.t) result

(** @raise Dmn_prelude.Err.Error with kind [Io] (or [Fault] under
    injection) on failure. *)
val write_file : string -> string -> unit

val read_file_res : string -> (string, Dmn_prelude.Err.t) result

(** @raise Dmn_prelude.Err.Error with kind [Io] on failure. *)
val read_file : string -> string

(** [load_instance path] reads and parses in one step, attaching [path]
    to any error. *)
val load_instance : string -> (Instance.t, Dmn_prelude.Err.t) result

val load_placement : string -> (Placement.t, Dmn_prelude.Err.t) result

(** {2 Streaming request traces}

    Text trace format (whitespace-separated, [#] comments allowed):
    {v
    dmnet-trace v1
    <nodes> <objects>
    r <node> <object>     (one line per event, in arrival order)
    w <node> <object>
    v}

    Unlike the instance parser, traces are processed {e streamingly}:
    the reader hands back a lazy [Seq.t] that holds one line in memory
    at a time, and the writer drains a [Seq.t] to disk event by event —
    a million-event trace costs O(1) memory on both sides. The same
    error model applies: syntactic damage is {!Dmn_prelude.Err.Parse},
    out-of-range nodes/objects are {!Dmn_prelude.Err.Validation}, both
    carrying file and line. Fault points: ["trace.read"] at open,
    ["trace.read.event"] per event, ["trace.write.open"],
    ["trace.write.write"] (every 4096 events), ["trace.write.fsync"],
    ["trace.write.rename"]. *)

module Trace : sig
  type header = { nodes : int; objects : int }

  type event = { node : int; x : int; write : bool }

  (** [with_reader_res path f] opens [path], parses and validates the
      header, and runs [f header events]. [events] is a {e one-shot,
      ephemeral} sequence: it reads from the file as it is forced and
      is only valid inside [f] (the file is closed when [f] returns).
      A malformed event encountered mid-stream raises [Err.Error] at
      the offending element; that error (and any raised by [f]) is
      returned as [Error]. *)
  val with_reader_res :
    string -> (header -> event Seq.t -> 'a) -> ('a, Dmn_prelude.Err.t) result

  (** Raising wrapper over {!with_reader_res}.
      @raise Dmn_prelude.Err.Error on malformed input or I/O failure. *)
  val with_reader : string -> (header -> event Seq.t -> 'a) -> 'a

  (** [write_res path header events] drains [events] to [path] with the
      same atomic, durable protocol as {!write_file} (temp file +
      [fsync] + rename), validating every event against [header].
      Returns the number of events written. The sequence is forced
      exactly once. *)
  val write_res : string -> header -> event Seq.t -> (int, Dmn_prelude.Err.t) result

  (** Raising wrapper over {!write_res}.
      @raise Dmn_prelude.Err.Error on invalid events or I/O failure. *)
  val write : string -> header -> event Seq.t -> int
end
