(** Generational checkpoint directory ("dmnet-ckptdir v1").

    A checkpoint {e directory} holds the last K checkpoint generations
    plus an atomic [MANIFEST] naming them:

    {v
    dmnet-ckptdir v1
    keep 3
    latest 42
    gens 40 41 42
    crc 1a2b3c4d
    v}

    The crc line is a CRC-32 over the body lines (everything between
    the magic and the crc line), so a torn manifest is detected rather
    than trusted. Each generation [gen-NNNNNN.ckpt] is a self-guarded
    [dmnet-ckpt v2] file ({!Serial.Checkpoint}).

    Write ordering on {!save_res}: new generation file (atomic tmp +
    rename) {e then} manifest rewrite (atomic) {e then} pruning of
    dropped generations. A crash between any two steps leaves a
    loadable directory; stray generation files from a crashed save are
    collected by the next save or {!fsck_res}[ ~repair].

    {!load_res} walks the manifest's generations newest-first and
    returns the first that passes CRC/parse, counting skipped
    generations (and a missing/corrupt manifest, which falls back to a
    directory scan) in [fallbacks] — a corrupt latest generation
    degrades to the previous one instead of failing. *)

val magic : string
(** First line of the manifest: ["dmnet-ckptdir v1"]. *)

val manifest_name : string
(** Manifest filename inside the directory: ["MANIFEST"]. *)

val gen_name : int -> string
(** [gen_name g] is the filename of generation [g], e.g.
    ["gen-000042.ckpt"]. *)

val parse_gen_name : string -> int option
(** Inverse of {!gen_name} on filenames ([None] for foreign files). *)

type manifest = {
  keep : int;  (** retention bound requested at the last save *)
  latest : int;  (** newest generation number *)
  gens : int list;  (** referenced generations, ascending; never empty *)
}

val manifest_to_string : manifest -> string

val manifest_of_string_res :
  ?file:string -> string -> (manifest, Dmn_prelude.Err.t) result
(** Parses and CRC-checks a manifest. Errors with kind [Parse] on any
    mismatch (bad magic, torn file, crc mismatch, non-ascending gens,
    [latest] not the last entry). *)

val read_manifest_res : string -> (manifest, Dmn_prelude.Err.t) result
(** [read_manifest_res dir] reads and validates [dir/MANIFEST]. *)

val save_res :
  string -> keep:int -> Serial.Checkpoint.t -> (int, Dmn_prelude.Err.t) result
(** [save_res dir ~keep ckpt] writes the next generation into [dir]
    (creating it if needed), updates the manifest, prunes generations
    beyond the newest [keep], and returns the new generation number.
    @raise Invalid_argument if [keep < 1]. *)

val save : string -> keep:int -> Serial.Checkpoint.t -> int
(** {!save_res}, raising [Err.Error]. *)

type loaded = {
  ckpt : Serial.Checkpoint.t;
  generation : int;  (** the generation that loaded cleanly *)
  fallbacks : int;
      (** corrupt/unreadable newer generations skipped to get here,
          plus 1 if the manifest itself was missing or corrupt *)
}

val load_res : string -> (loaded, Dmn_prelude.Err.t) result
(** [load_res dir] loads the newest valid generation, newest-first.
    Errors only when no generation in [dir] passes validation. *)

val load : string -> loaded
(** {!load_res}, raising [Err.Error]. *)

type fsck_report = {
  f_generations : int;  (** referenced generations that load cleanly *)
  f_latest : int;  (** newest valid generation *)
  f_corrupt : int;  (** referenced generations failing CRC/parse *)
  f_unreferenced : int;  (** gen files on disk the manifest omits *)
  f_manifest_ok : bool;
  f_repaired : bool;  (** true iff [~repair] rewrote the directory *)
}

val fsck_res : ?repair:bool -> string -> (fsck_report, Dmn_prelude.Err.t) result
(** Offline validation of a checkpoint directory. Reports corrupt and
    unreferenced generations; with [~repair:true] rewrites the manifest
    over the valid set and deletes corrupt/unreferenced files. Errors
    when no valid generation exists at all. A healthy directory yields
    [f_corrupt = 0], [f_unreferenced = 0], [f_manifest_ok = true]. *)
