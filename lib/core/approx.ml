open Dmn_paths

type flp_solver = Local_search | Jain_vazirani | Mettu_plaxton | Greedy | Trivial | Sta_lp

let solver_name = function
  | Local_search -> "local-search"
  | Jain_vazirani -> "jain-vazirani"
  | Mettu_plaxton -> "mettu-plaxton"
  | Greedy -> "greedy"
  | Trivial -> "trivial"
  | Sta_lp -> "sta-lp"

type config = {
  solver : flp_solver;
  phase2_factor : float;
  phase3_factor : float;
  run_phase2 : bool;
  run_phase3 : bool;
}

let default_config =
  { solver = Mettu_plaxton; phase2_factor = 5.0; phase3_factor = 4.0; run_phase2 = true; run_phase3 = true }

let phase1 ~config inst ~x =
  let flp = Instance.related_flp inst ~x in
  match config.solver with
  | Local_search -> Dmn_facility.Local_search.solve flp
  | Jain_vazirani -> Dmn_facility.Jain_vazirani.solve flp
  | Mettu_plaxton -> Dmn_facility.Mettu_plaxton.solve flp
  | Greedy -> Dmn_facility.Greedy.solve flp
  | Sta_lp -> Dmn_facility.Sta.solve flp
  | Trivial ->
      let n = Instance.n inst in
      let best = ref (-1) in
      for v = 0 to n - 1 do
        if Instance.cs inst v < infinity && (!best < 0 || Instance.cs inst v < Instance.cs inst !best)
        then best := v
      done;
      if !best < 0 then
        invalid_arg "Approx.phase1: every node has infinite storage cost, no copy can be placed";
      [ !best ]

(* Reusable per-object buffers: radii profile workspace plus the
   nearest-copy distance array of phase 2. One scratch serves one
   domain at a time; chunked solves allocate one per chunk. *)
type scratch = { ws : Radii.workspace; near : float array }

let scratch inst = { ws = Radii.workspace inst; near = Array.make (max 1 (Instance.n inst)) 0.0 }

let phase2_into ~config inst radii copies dist =
  let m = Instance.metric inst in
  let n = Instance.n inst in
  Metric.nearest_dists_into m copies dist;
  let result = ref (List.rev copies) in
  for v = 0 to n - 1 do
    let bound = config.phase2_factor *. radii.(v).Radii.rs in
    if dist.(v) > bound && Instance.cs inst v < infinity then begin
      result := v :: !result;
      (* a new copy on v can only shrink nearest-copy distances *)
      for u = 0 to n - 1 do
        let duv = Metric.d m u v in
        if duv < dist.(u) then dist.(u) <- duv
      done
    end
  done;
  List.rev !result

let phase2 ~config inst ~x radii copies =
  ignore x;
  phase2_into ~config inst radii copies (Array.make (max 1 (Instance.n inst)) 0.0)

let phase3 ~config inst radii copies =
  let m = Instance.metric inst in
  let holders = Array.of_list (List.sort_uniq compare copies) in
  (* ascending write radii; ties broken by node id for determinism *)
  Array.sort
    (fun u v -> compare (radii.(u).Radii.rw, u) (radii.(v).Radii.rw, v))
    holders;
  let alive = Hashtbl.create (Array.length holders) in
  Array.iter (fun v -> Hashtbl.replace alive v ()) holders;
  Array.iter
    (fun v ->
      if Hashtbl.mem alive v then
        Array.iter
          (fun u ->
            if u <> v && Hashtbl.mem alive u
               && Metric.d m u v <= config.phase3_factor *. radii.(u).Radii.rw
            then Hashtbl.remove alive u)
          holders)
    holders;
  Array.to_list holders |> List.filter (Hashtbl.mem alive) |> List.sort compare

let place_object ?(config = default_config) ?scratch:s inst ~x =
  let s = match s with Some s -> s | None -> scratch inst in
  let copies = phase1 ~config inst ~x in
  let radii = Radii.compute_ws s.ws inst ~x in
  let copies = if config.run_phase2 then phase2_into ~config inst radii copies s.near else copies in
  let copies = if config.run_phase3 then phase3 ~config inst radii copies else copies in
  List.sort_uniq compare copies

(* Objects are independent, so the pipeline runs contiguous chunks of
   objects per pool claim, one scratch per chunk. Each object writes a
   private result slot and rolls the per-object "pool.task" fault coin,
   so the placement — and any injected failure — is bit-identical to
   the sequential map for any pool size or chunking. *)
let solve ?(config = default_config) ?pool ?chunks inst =
  let pool = match pool with Some p -> p | None -> Dmn_prelude.Pool.default () in
  let k = Instance.objects inst in
  let slots = Array.make k [] in
  Dmn_prelude.Pool.parallel_chunks pool ?chunks k (fun lo hi ->
      let s = scratch inst in
      for x = lo to hi - 1 do
        Dmn_prelude.Fault.check_at "pool.task" x;
        slots.(x) <- place_object ~config ~scratch:s inst ~x
      done);
  Placement.make slots
