open Dmn_paths
open Dmn_prelude

(* order.(v) lists all nodes sorted by (d(v, u), u) ascending. *)
type t = { order : int array array }

let build m =
  let n = Metric.size m in
  let sorted_row v =
    let idx = Array.init n (fun u -> u) in
    Array.sort
      (fun a b ->
        let c = compare (Metric.d m v a) (Metric.d m v b) in
        if c <> 0 then c else compare a b)
      idx;
    idx
  in
  { order = Pool.parallel_init (Pool.default ()) n sorted_row }

let order t v = t.order.(v)
let size t = Array.length t.order
