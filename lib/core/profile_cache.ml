open Dmn_paths
open Dmn_prelude

(* order.(v) lists all nodes sorted by (d(v, u), u) ascending. *)
type t = { order : int array array }

let sorted_row m v =
  let n = Metric.size m in
  let idx = Array.init n (fun u -> u) in
  Array.sort
    (fun a b ->
      let c = compare (Metric.d m v a) (Metric.d m v b) in
      if c <> 0 then c else compare a b)
    idx;
  idx

(* Chunked fill straight into the order array; the per-row fault coin
   keeps injection outcomes independent of the chunking. *)
let build m =
  let n = Metric.size m in
  let order = Array.make n [||] in
  Pool.parallel_chunks (Pool.default ()) n (fun lo hi ->
      for v = lo to hi - 1 do
        Fault.check_at "pool.task" v;
        order.(v) <- sorted_row m v
      done);
  { order }

let order t v = t.order.(v)
let size t = Array.length t.order
