open Dmn_paths

type node_radii = { rw : float; rs : float; zs : int }

(* Sorted request-distance profile of node v: distances ascending with
   multiplicities, plus prefix sums.  S z = sum of the z smallest
   request distances; infinity once z exceeds the request count.
   Only the first [k] entries (k + 1 for the prefix sums) are
   meaningful: the arrays may be oversized workspace buffers. *)
type profile = {
  k : int;
  counts : int array;
  cum_count : int array;
  cum_dist : float array;
  dists : float array;
}

(* Reusable profile buffers, sized for [n] nodes. One workspace serves
   one domain at a time; chunked solves allocate one per chunk instead
   of four arrays per node per object. *)
type workspace = {
  w_counts : int array;
  w_cum_count : int array;
  w_cum_dist : float array;
  w_dists : float array;
}

let workspace_n n =
  {
    w_counts = Array.make (max 1 n) 0;
    w_cum_count = Array.make (n + 1) 0;
    w_cum_dist = Array.make (n + 1) 0.0;
    w_dists = Array.make (max 1 n) 0.0;
  }

let workspace inst = workspace_n (Instance.n inst)

(* The ascending order of d(v, .) is object-independent, so the sort is
   hoisted into the instance's Profile_cache and building a per-object
   profile is a single linear scan over the cached order into the
   workspace. *)
let profile_ws ws inst ~x v =
  let m = Instance.metric inst in
  let n = Instance.n inst in
  if Array.length ws.w_cum_count < n + 1 then invalid_arg "Radii.profile_ws: workspace too small";
  let order = Instance.profile_order inst v in
  let counts = ws.w_counts and dists = ws.w_dists in
  let cum_count = ws.w_cum_count and cum_dist = ws.w_cum_dist in
  cum_count.(0) <- 0;
  cum_dist.(0) <- 0.0;
  let j = ref 0 in
  for i = 0 to n - 1 do
    let u = order.(i) in
    let c = Instance.requests inst ~x u in
    if c > 0 then begin
      let d = Metric.d m v u in
      let idx = !j in
      dists.(idx) <- d;
      counts.(idx) <- c;
      cum_count.(idx + 1) <- cum_count.(idx) + c;
      cum_dist.(idx + 1) <- cum_dist.(idx) +. (float_of_int c *. d);
      incr j
    end
  done;
  { k = !j; counts; cum_count; cum_dist; dists }

let profile inst ~x v = profile_ws (workspace inst) inst ~x v

(* Uncached per-call sort, kept as the validation/bench reference. *)
let reference_profile inst ~x v =
  let m = Instance.metric inst in
  let n = Instance.n inst in
  let entries = ref [] in
  for u = 0 to n - 1 do
    let c = Instance.requests inst ~x u in
    if c > 0 then entries := (Metric.d m v u, c) :: !entries
  done;
  let arr = Array.of_list !entries in
  Array.sort (fun (a, _) (b, _) -> compare a b) arr;
  let k = Array.length arr in
  let counts = Array.make k 0 and dists = Array.make k 0.0 in
  let cum_count = Array.make (k + 1) 0 and cum_dist = Array.make (k + 1) 0.0 in
  Array.iteri
    (fun i (d, c) ->
      dists.(i) <- d;
      counts.(i) <- c;
      cum_count.(i + 1) <- cum_count.(i) + c;
      cum_dist.(i + 1) <- cum_dist.(i) +. (float_of_int c *. d))
    arr;
  { k; counts; cum_count; cum_dist; dists }

let s_of_profile p z =
  if z <= 0 then 0.0
  else begin
    let k = p.k in
    let total = p.cum_count.(k) in
    if z > total then infinity
    else begin
      (* binary search for the segment holding the z-th request *)
      let lo = ref 0 and hi = ref k in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if p.cum_count.(mid) < z then lo := mid else hi := mid
      done;
      (* after the loop, cum_count lo < z <= cum_count hi, hi = lo+1 *)
      let seg = !lo in
      p.cum_dist.(seg) +. (float_of_int (z - p.cum_count.(seg)) *. p.dists.(seg))
    end
  end

let avg_of_profile p z = if z <= 0 then 0.0 else s_of_profile p z /. float_of_int z

let prefix_sum inst ~x v z = s_of_profile (profile inst ~x v) z
let avg_dist inst ~x v z = avg_of_profile (profile inst ~x v) z

(* Choose (zs, rs) satisfying the paper's two chained inequalities.
   With zs = min { z : S(z) > cs }, the value
   rs = min(cs / (zs - 1), d(v, zs)) always satisfies
     (zs-1) * rs <= cs < zs * rs  and  d(v, zs-1) <= rs <= d(v, zs).
   The second chain's upper bound is non-strict here (the paper uses a
   strict one); strictness is impossible when d(v, zs-1) = d(v, zs)
   (tied request distances), and every use of the bound in the analysis
   only needs d(v, zs) >= rs. Assumes 0 < cs < infinity and at least
   one request. *)
let storage_radius p cs total =
  (* zs = min { z >= 1 : S(z) > cs }, possibly total + 1 *)
  let zs =
    let rec search lo hi =
      (* invariant: S(lo) <= cs < S(hi) with hi possibly total+1 *)
      if hi - lo <= 1 then hi
      else
        let mid = (lo + hi) / 2 in
        if s_of_profile p mid > cs then search lo mid else search mid hi
    in
    if s_of_profile p total > cs then search 0 total else total + 1
  in
  let d_hi = if zs > total then infinity else avg_of_profile p zs in
  let upper_closed = if zs = 1 then infinity else cs /. float_of_int (zs - 1) in
  (zs, Float.min upper_closed d_hi)

let compute_with profile inst ~x =
  let n = Instance.n inst in
  let w = Instance.total_writes inst ~x in
  let total = Instance.total_requests inst ~x in
  Array.init n (fun v ->
      let p = profile inst ~x v in
      let rw = if w = 0 then 0.0 else avg_of_profile p w in
      let cs = Instance.cs inst v in
      if cs = 0.0 then { rw; rs = 0.0; zs = 0 }
      else if cs = infinity || total = 0 then { rw; rs = infinity; zs = 0 }
      else begin
        let zs, rs = storage_radius p cs total in
        { rw; rs; zs }
      end)

let compute_ws ws inst ~x = compute_with (profile_ws ws) inst ~x
let compute inst ~x = compute_ws (workspace inst) inst ~x
let compute_reference inst ~x = compute_with reference_profile inst ~x

let check inst ~x r =
  let n = Instance.n inst in
  let w = Instance.total_writes inst ~x in
  let total = Instance.total_requests inst ~x in
  let ws = workspace inst in
  let exception Bad of string in
  try
    for v = 0 to n - 1 do
      let p = profile_ws ws inst ~x v in
      let rw_expect = if w = 0 then 0.0 else avg_of_profile p w in
      if not (Dmn_prelude.Floatx.approx r.(v).rw rw_expect) then
        raise (Bad (Printf.sprintf "node %d: rw mismatch" v));
      let cs = Instance.cs inst v in
      if cs > 0.0 && cs < infinity && total > 0 then begin
        let zs = r.(v).zs and rs = r.(v).rs in
        if zs < 1 then raise (Bad (Printf.sprintf "node %d: zs < 1" v));
        let zf = float_of_int zs in
        if not ((zf -. 1.0) *. rs <= cs +. 1e-9) then
          raise (Bad (Printf.sprintf "node %d: (zs-1)rs <= cs fails" v));
        if not (cs < zf *. rs) then raise (Bad (Printf.sprintf "node %d: cs < zs*rs fails" v));
        let d_lo = avg_of_profile p (zs - 1) in
        let d_hi = if zs > total then infinity else avg_of_profile p zs in
        if not (d_lo <= rs +. 1e-9) then
          raise (Bad (Printf.sprintf "node %d: d(zs-1) <= rs fails" v));
        (* non-strict upper bound; see storage_radius *)
        if not (rs <= d_hi +. 1e-9) then
          raise (Bad (Printf.sprintf "node %d: rs <= d(zs) fails" v))
      end
    done;
    Ok ()
  with Bad s -> Error s
