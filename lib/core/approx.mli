(** The constant-factor approximation algorithm for arbitrary networks
    (paper Section 2.2).

    Per object: phase 1 solves the related facility location problem;
    phase 2 adds a copy on any node [v] whose nearest copy is farther
    than [5 * rs(v)]; phase 3 scans copy holders by ascending write
    radius and deletes any other copy [u] with [ct(u, v) <= 4 * rw(u)].
    The result is a (29, 2)-proper placement (Lemma 8) whose total cost
    is a constant-factor approximation (Theorem 7). *)

type flp_solver =
  | Local_search
  | Jain_vazirani
  | Mettu_plaxton
  | Greedy
  | Trivial
      (** opens only the cheapest node — deliberately bad; phase 2 must
          then repair property 1, which E8 measures *)
  | Sta_lp
      (** Shmoys–Tardos–Aardal LP rounding (the paper's cited phase-1
          algorithm); needs the dense LP, so instances must have
          [n <= 40] *)

val solver_name : flp_solver -> string

type config = {
  solver : flp_solver;  (** phase-1 algorithm; default [Mettu_plaxton] *)
  phase2_factor : float;  (** the paper's [5] *)
  phase3_factor : float;  (** the paper's [4] *)
  run_phase2 : bool;  (** ablation switch *)
  run_phase3 : bool;  (** ablation switch *)
}

val default_config : config

(** [phase1 ~config inst ~x] is the initial FLP placement. *)
val phase1 : config:config -> Instance.t -> x:int -> int list

(** [phase2 ~config inst ~x radii copies] adds copies until every node
    [v] has one within [phase2_factor * rs v]. One pass suffices since
    distances only shrink. *)
val phase2 : config:config -> Instance.t -> x:int -> Radii.node_radii array -> int list -> int list

(** [phase3 ~config inst radii copies] performs the ascending-write-
    radius deletion scan; never empties the copy set. *)
val phase3 : config:config -> Instance.t -> Radii.node_radii array -> int list -> int list

(** Reusable per-object buffers (radii profile workspace + phase-2
    nearest-copy distances). One scratch serves one domain at a time. *)
type scratch

(** [scratch inst] allocates buffers sized for [inst]. *)
val scratch : Instance.t -> scratch

(** [place_object ?config ?scratch inst ~x] runs all three phases.
    Passing [?scratch] reuses caller-owned buffers across objects
    (bit-identical results); omitting it allocates a fresh scratch. *)
val place_object : ?config:config -> ?scratch:scratch -> Instance.t -> x:int -> int list

(** [solve ?config ?pool ?chunks inst] places every object
    independently, processed in contiguous chunks over the pool
    ([pool] defaults to {!Dmn_prelude.Pool.default}; [chunks] tunes the
    batch count, see {!Dmn_prelude.Pool.parallel_chunks}). Each chunk
    reuses one scratch and each object writes a disjoint result slot
    and rolls the per-object ["pool.task"] fault coin, so the placement
    — and any injected failure — is bit-identical to the sequential
    per-object map for every pool size and chunking. *)
val solve :
  ?config:config -> ?pool:Dmn_prelude.Pool.t -> ?chunks:int -> Instance.t -> Placement.t
