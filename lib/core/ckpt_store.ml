open Dmn_prelude

(* Generational checkpoint directory ("dmnet-ckptdir v1").

   Layout:
     <dir>/MANIFEST          atomic pointer to the live generations
     <dir>/gen-000042.ckpt   one dmnet-ckpt v2 file per generation

   The manifest is the only mutable name; generations are written once
   (atomically, via {!Serial.write_file_res}) and then only ever
   deleted. Write ordering on save: generation file first, manifest
   second, pruning of old generations last — so a crash between any two
   steps leaves either the previous manifest (pointing at intact older
   generations) or the new one (whose generations are all durable).
   Unreferenced generation files left by such a crash are benign and
   are collected by the next save or by [fsck ~repair]. *)

let magic = "dmnet-ckptdir v1"
let manifest_name = "MANIFEST"
let gen_name g = Printf.sprintf "gen-%06d.ckpt" g
let gen_path dir g = Filename.concat dir (gen_name g)

(* Inverse of [gen_name]; wider counters still parse ("gen-1000000"),
   shorter ones do not exist because [gen_name] zero-pads. *)
let parse_gen_name name =
  let pre = "gen-" and suf = ".ckpt" in
  let lp = String.length pre and ls = String.length suf in
  let l = String.length name in
  if l > lp + ls && String.sub name 0 lp = pre && String.sub name (l - ls) ls = suf
  then
    let digits = String.sub name lp (l - lp - ls) in
    if String.for_all (fun c -> c >= '0' && c <= '9') digits then int_of_string_opt digits
    else None
  else None

type manifest = {
  keep : int;  (** retention bound requested at the last save *)
  latest : int;  (** newest generation number *)
  gens : int list;  (** referenced generations, ascending *)
}

let manifest_body m =
  Printf.sprintf "keep %d\nlatest %d\ngens%s\n" m.keep m.latest
    (String.concat "" (List.map (Printf.sprintf " %d") m.gens))

let manifest_to_string m =
  let body = manifest_body m in
  Printf.sprintf "%s\n%scrc %s\n" magic body (Crc32.to_hex (Crc32.digest body))

let manifest_of_string_res ?file s =
  let fail fmt = Err.errorf ?file Err.Parse fmt in
  let lines = String.split_on_char '\n' s in
  match lines with
  | hd :: rest when hd = magic -> (
      (* body = everything between the magic line and the crc line *)
      let rec split acc = function
        | [ crc; "" ] | [ crc ] -> Some (List.rev acc, crc)
        | l :: tl -> split (l :: acc) tl
        | [] -> None
      in
      match split [] rest with
      | None -> fail "manifest truncated: missing crc line"
      | Some (body_lines, crc_line) -> (
          let body = String.concat "" (List.map (fun l -> l ^ "\n") body_lines) in
          match String.split_on_char ' ' crc_line with
          | [ "crc"; hex ] -> (
              match Crc32.of_hex_opt hex with
              | None -> fail "manifest crc line is not 8 hex digits: %S" crc_line
              | Some want ->
                  let got = Crc32.digest body in
                  if got <> want then
                    fail "manifest crc mismatch: stored %s, computed %s" (Crc32.to_hex want)
                      (Crc32.to_hex got)
                  else
                    let keep = ref None and latest = ref None and gens = ref None in
                    let parse_line l =
                      match String.split_on_char ' ' l with
                      | "keep" :: [ v ] -> (
                          match int_of_string_opt v with
                          | Some k when k >= 1 -> Ok (keep := Some k)
                          | _ -> fail "manifest: bad keep %S" v)
                      | "latest" :: [ v ] -> (
                          match int_of_string_opt v with
                          | Some g when g >= 0 -> Ok (latest := Some g)
                          | _ -> fail "manifest: bad latest %S" v)
                      | "gens" :: vs -> (
                          let rec ints acc = function
                            | [] -> Some (List.rev acc)
                            | v :: tl -> (
                                match int_of_string_opt v with
                                | Some g when g >= 0 -> ints (g :: acc) tl
                                | _ -> None)
                          in
                          match ints [] vs with
                          | Some l -> Ok (gens := Some l)
                          | None -> fail "manifest: bad gens line %S" l)
                      | _ -> fail "manifest: unknown line %S" l
                    in
                    let rec go = function
                      | [] -> Ok ()
                      | l :: tl -> ( match parse_line l with Ok () -> go tl | Error e -> Error e)
                    in
                    Result.bind (go body_lines) (fun () ->
                        match (!keep, !latest, !gens) with
                        | Some keep, Some latest, Some gens ->
                            let sorted = List.sort_uniq compare gens in
                            if sorted <> gens then fail "manifest: gens not ascending"
                            else if gens = [] then fail "manifest: empty gens list"
                            else if List.nth gens (List.length gens - 1) <> latest then
                              fail "manifest: latest %d is not the last generation" latest
                            else Ok { keep; latest; gens }
                        | _ -> fail "manifest: missing keep/latest/gens line"))
          | _ -> fail "manifest: last line is not a crc line: %S" crc_line))
  | hd :: _ -> fail "bad manifest magic: %S (want %S)" hd magic
  | [] -> fail "empty manifest"

let manifest_path dir = Filename.concat dir manifest_name

let read_manifest_res dir =
  let path = manifest_path dir in
  Result.bind (Serial.read_file_res path) (manifest_of_string_res ~file:path)

let write_manifest_res dir m = Serial.write_file_res (manifest_path dir) (manifest_to_string m)

let ensure_dir_res dir =
  match Unix.stat dir with
  | { Unix.st_kind = Unix.S_DIR; _ } -> Ok ()
  | _ -> Err.errorf ~file:dir Err.Io "checkpoint directory path exists but is not a directory"
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> (
      match Unix.mkdir dir 0o755 with
      | () -> Ok ()
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
          Err.errorf ~file:dir Err.Io "cannot create checkpoint directory: %s" (Unix.error_message e))
  | exception Unix.Unix_error (e, _, _) ->
      Err.errorf ~file:dir Err.Io "cannot stat checkpoint directory: %s" (Unix.error_message e)

(* All gen-*.ckpt files on disk, ascending. *)
let scan_gens_res dir =
  match Sys.readdir dir with
  | names ->
      Array.to_list names
      |> List.filter_map parse_gen_name
      |> List.sort_uniq compare |> Result.ok
  | exception Sys_error msg -> Err.errorf ~file:dir Err.Io "cannot list checkpoint directory: %s" msg

type loaded = { ckpt : Serial.Checkpoint.t; generation : int; fallbacks : int }

let load_res dir =
  (* Candidates newest-first: the manifest's list when it is intact, a
     directory scan when it is missing or corrupt (that too is a
     fallback worth surviving). *)
  let from_manifest = Result.map (fun m -> m.gens) (read_manifest_res dir) in
  let manifest_penalty, candidates =
    match from_manifest with
    | Ok gens -> (0, List.rev gens)
    | Error _ -> (1, Result.fold ~ok:List.rev ~error:(fun _ -> []) (scan_gens_res dir))
  in
  if candidates = [] then
    Err.errorf ~file:dir Err.Io "no checkpoint generations found%s"
      (if manifest_penalty > 0 then " (manifest missing or corrupt)" else "")
  else
    let rec try_gens skipped = function
      | [] ->
          Err.errorf ~file:dir Err.Parse
            "all %d checkpoint generations are corrupt or unreadable" (List.length candidates)
      | g :: rest -> (
          match Serial.Checkpoint.load_res (gen_path dir g) with
          | Ok ckpt -> Ok { ckpt; generation = g; fallbacks = manifest_penalty + skipped }
          | Error _ -> try_gens (skipped + 1) rest)
    in
    try_gens 0 candidates

let remove_gen dir g = try Sys.remove (gen_path dir g) with Sys_error _ -> ()

let save_res dir ~keep ckpt =
  if keep < 1 then invalid_arg "Ckpt_store.save: keep must be >= 1";
  Result.bind (ensure_dir_res dir) @@ fun () ->
  (* Previous state: intact manifest if we have one, otherwise whatever
     generations survive on disk (never trust a corrupt manifest to
     name the retention set). *)
  let prev_gens =
    match read_manifest_res dir with
    | Ok m -> m.gens
    | Error _ -> Result.fold ~ok:Fun.id ~error:(fun _ -> []) (scan_gens_res dir)
  in
  let next = match List.rev prev_gens with g :: _ -> g + 1 | [] -> 0 in
  Result.bind (Serial.Checkpoint.save_res (gen_path dir next) ckpt) @@ fun () ->
  let all = prev_gens @ [ next ] in
  let drop = max 0 (List.length all - keep) in
  let kept = List.filteri (fun i _ -> i >= drop) all in
  let dropped = List.filteri (fun i _ -> i < drop) all in
  Result.bind (write_manifest_res dir { keep; latest = next; gens = kept }) @@ fun () ->
  (* Only after the manifest durably stopped referencing them. Also
     collect stray files from earlier crashed saves. *)
  List.iter (remove_gen dir) dropped;
  (match scan_gens_res dir with
  | Ok on_disk -> List.iter (fun g -> if not (List.mem g kept) then remove_gen dir g) on_disk
  | Error _ -> ());
  Ok next

type fsck_report = {
  f_generations : int;  (** referenced generations that load cleanly *)
  f_latest : int;  (** newest valid generation *)
  f_corrupt : int;  (** referenced generations that fail CRC/parse *)
  f_unreferenced : int;  (** gen files on disk the manifest does not list *)
  f_manifest_ok : bool;
  f_repaired : bool;
}

let fsck_res ?(repair = false) dir =
  Result.bind (scan_gens_res dir) @@ fun on_disk ->
  let manifest = read_manifest_res dir in
  let manifest_ok = Result.is_ok manifest in
  let referenced = match manifest with Ok m -> m.gens | Error _ -> on_disk in
  let keep = match manifest with Ok m -> m.keep | Error _ -> max 1 (List.length on_disk) in
  let valid, corrupt =
    List.partition (fun g -> Result.is_ok (Serial.Checkpoint.load_res (gen_path dir g))) referenced
  in
  let unreferenced = List.filter (fun g -> not (List.mem g referenced)) on_disk in
  match List.rev valid with
  | [] ->
      if manifest_ok || on_disk <> [] then
        Err.errorf ~file:dir Err.Parse "no valid checkpoint generation (%d corrupt, %d on disk)"
          (List.length corrupt) (List.length on_disk)
      else Err.errorf ~file:dir Err.Io "not a checkpoint directory: no manifest, no generations"
  | latest :: _ ->
      let needs_repair = (not manifest_ok) || corrupt <> [] || unreferenced <> [] in
      let repaired = repair && needs_repair in
      if repaired then (
        (* Rewrite the manifest over the valid set first, then drop the
           no-longer-referenced files. *)
        match write_manifest_res dir { keep; latest; gens = valid } with
        | Error e -> Error e
        | Ok () ->
            List.iter (remove_gen dir) corrupt;
            List.iter (remove_gen dir) unreferenced;
            Ok
              {
                f_generations = List.length valid;
                f_latest = latest;
                f_corrupt = List.length corrupt;
                f_unreferenced = List.length unreferenced;
                f_manifest_ok = manifest_ok;
                f_repaired = true;
              })
      else
        Ok
          {
            f_generations = List.length valid;
            f_latest = latest;
            f_corrupt = List.length corrupt;
            f_unreferenced = List.length unreferenced;
            f_manifest_ok = manifest_ok;
            f_repaired = false;
          }

let save dir ~keep ckpt = Err.get_ok (save_res dir ~keep ckpt)
let load dir = Err.get_ok (load_res dir)
