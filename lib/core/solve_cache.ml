(* Bounded LRU memo for per-object placement solves.

   The engine's incremental re-solve keys each [Approx.place_object]
   call on everything the solve depends on — the network (distance
   matrix hash), the solver configuration, the epoch's storage-fee
   scale (epoch size and period), and the object's observed frequency
   vector, quantized so near-identical demand regimes share an entry.
   Recurring regimes (diurnal phases, drift that revisits a hotspot)
   then hit instead of re-running the 3-phase pipeline.

   Everything here is deterministic: lookups and insertions happen
   sequentially on the engine's driving thread, the use-stamp is a
   monotone counter (no clocks), and eviction removes the unique
   least-recently-used entry — so hit/miss/eviction counts are a pure
   function of the call sequence, independent of domain count. *)

type entry = { mutable stamp : int; value : int list }

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Solve_cache.create: capacity must be >= 1";
  {
    capacity;
    tbl = Hashtbl.create (min capacity 64);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl
let stats (t : t) = { hits = t.hits; misses = t.misses; evictions = t.evictions }

(* Logarithmic demand quantization: two counts land in the same bucket
   when they agree to within ~1/8 nat in log(1+c) — about a 13%
   relative difference. Zero stays zero, so the sparsity pattern of a
   vector survives quantization. *)
let quantize c =
  if c <= 0 then 0
  else int_of_float (Float.round (8.0 *. Float.log1p (float_of_int c)))

let solver_fingerprint (c : Approx.config) =
  Printf.sprintf "%s:%h:%h:%b:%b"
    (Approx.solver_name c.Approx.solver)
    c.Approx.phase2_factor c.Approx.phase3_factor c.Approx.run_phase2 c.Approx.run_phase3

let key ~mhash ~solver ~epoch_events ~period ~fr ~fw =
  let n = Array.length fr in
  if Array.length fw <> n then invalid_arg "Solve_cache.key: fr/fw length mismatch";
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "%016Lx|%s|%d/%d" mhash solver epoch_events period);
  for v = 0 to n - 1 do
    let qr = quantize fr.(v) and qw = quantize fw.(v) in
    if qr <> 0 || qw <> 0 then Buffer.add_string buf (Printf.sprintf "|%d:%d:%d" v qr qw)
  done;
  Buffer.contents buf

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some e ->
      t.tick <- t.tick + 1;
      e.stamp <- t.tick;
      t.hits <- t.hits + 1;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

let add t k value =
  t.tick <- t.tick + 1;
  if Hashtbl.mem t.tbl k then Hashtbl.replace t.tbl k { stamp = t.tick; value }
  else begin
    if Hashtbl.length t.tbl >= t.capacity then begin
      (* evict the unique least-recently-used entry; stamps are
         distinct by construction so the choice is deterministic *)
      let victim = ref None in
      Hashtbl.iter
        (fun k' e' ->
          match !victim with
          | Some (_, s) when s <= e'.stamp -> ()
          | _ -> victim := Some (k', e'.stamp))
        t.tbl;
      match !victim with
      | Some (k', _) ->
          Hashtbl.remove t.tbl k';
          t.evictions <- t.evictions + 1
      | None -> ()
    end;
    Hashtbl.replace t.tbl k { stamp = t.tick; value }
  end
