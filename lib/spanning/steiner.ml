open Dmn_graph
open Dmn_paths

let approx g terminals =
  let terminals = List.sort_uniq compare terminals in
  match terminals with
  | [] | [ _ ] -> ([], 0.0)
  | _ ->
      (* 1. Shortest-path trees from every terminal give the closure
         distances and let us expand closure edges to graph paths. *)
      let runs =
        List.map (fun t -> (t, Dijkstra.run g t)) terminals |> List.to_seq |> Hashtbl.of_seq
      in
      let arr = Array.of_list terminals in
      let k = Array.length arr in
      let closure = ref [] in
      for i = 0 to k - 1 do
        let r = Hashtbl.find runs arr.(i) in
        for j = i + 1 to k - 1 do
          closure := (i, j, r.Dijkstra.dist.(arr.(j))) :: !closure
        done
      done;
      (* 2. MST of the closure. *)
      let sorted = List.stable_sort (fun (_, _, a) (_, _, b) -> compare a b) !closure in
      let dsu = Dmn_dsu.Dsu.create k in
      let mst_edges =
        List.filter (fun (i, j, _) -> Dmn_dsu.Dsu.union dsu i j) sorted
      in
      (* 3. Expand each closure edge to its path; collect distinct graph
         edges. *)
      let picked = Hashtbl.create 64 in
      List.iter
        (fun (i, j, _) ->
          let r = Hashtbl.find runs arr.(i) in
          let nodes = Dijkstra.path r arr.(j) in
          let rec walk = function
            | a :: (b :: _ as rest) ->
                let key = (min a b, max a b) in
                if not (Hashtbl.mem picked key) then
                  Hashtbl.add picked key (Wgraph.edge_weight g a b);
                walk rest
            | _ -> ()
          in
          walk nodes)
        mst_edges;
      (* 4. MST of the expanded subgraph, then prune non-terminal leaves. *)
      let sub_edges = Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) picked [] in
      let nodes = Hashtbl.create 64 in
      List.iter
        (fun (u, v, _) ->
          Hashtbl.replace nodes u ();
          Hashtbl.replace nodes v ())
        sub_edges;
      let sorted_sub = List.stable_sort (fun (_, _, a) (_, _, b) -> compare a b) sub_edges in
      let dsu2 = Dmn_dsu.Dsu.create (Wgraph.n g) in
      let tree = List.filter (fun (u, v, _) -> Dmn_dsu.Dsu.union dsu2 u v) sorted_sub in
      let is_terminal = Array.make (Wgraph.n g) false in
      List.iter (fun t -> is_terminal.(t) <- true) terminals;
      (* Peel non-terminal leaves round by round on persistent degree
         counters. Each round decides against its starting degrees (two
         edges meeting at a degree-2 non-terminal both survive the
         round, exactly like a filter against a frozen degree table) and
         only then applies the decrements, so removing one edge can only
         expose a new leaf in the next round. *)
      let prune tree =
        let arr = Array.of_list tree in
        let ne = Array.length arr in
        let alive = Array.make ne true in
        let deg = Array.make (Wgraph.n g) 0 in
        Array.iter
          (fun (u, v, _) ->
            deg.(u) <- deg.(u) + 1;
            deg.(v) <- deg.(v) + 1)
          arr;
        let removed = ref 1 in
        while !removed > 0 do
          removed := 0;
          let round = ref [] in
          for i = 0 to ne - 1 do
            if alive.(i) then begin
              let u, v, _ = arr.(i) in
              let leafy x = deg.(x) = 1 && not is_terminal.(x) in
              if leafy u || leafy v then begin
                alive.(i) <- false;
                round := i :: !round;
                incr removed
              end
            end
          done;
          List.iter
            (fun i ->
              let u, v, _ = arr.(i) in
              deg.(u) <- deg.(u) - 1;
              deg.(v) <- deg.(v) - 1)
            !round
        done;
        let out = ref [] in
        for i = ne - 1 downto 0 do
          if alive.(i) then out := arr.(i) :: !out
        done;
        !out
      in
      let tree = prune tree in
      let weight = List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 tree in
      (tree, weight)

let approx_weight_metric m terminals = snd (Kruskal.mst_of_subset m terminals)

(* Dreyfus–Wagner over all terminals: dw m terminals returns the table
   row for the full terminal mask, i.e. for every v the minimum weight
   of a tree spanning terminals ∪ {v}. Singleton masks are already
   tight in a metric (shortest path = direct edge), and for composite
   masks one merge pass followed by one one-hop relaxation pass
   suffices for the same reason. *)
let dw m terminals =
  let n = Metric.size m in
  let term = Array.of_list terminals in
  let k = Array.length term in
  if k > 20 then invalid_arg "Steiner.exact: too many terminals";
  let full = (1 lsl k) - 1 in
  let f = Array.make_matrix (full + 1) n infinity in
  for i = 0 to k - 1 do
    for v = 0 to n - 1 do
      f.(1 lsl i).(v) <- Metric.d m term.(i) v
    done
  done;
  for s = 1 to full do
    if s land (s - 1) <> 0 then begin
      (* merge step: best partition of s meeting at v *)
      for v = 0 to n - 1 do
        let sub = ref ((s - 1) land s) in
        let best = ref infinity in
        while !sub > 0 do
          let cand = f.(!sub).(v) +. f.(s lxor !sub).(v) in
          if cand < !best then best := cand;
          sub := (!sub - 1) land s
        done;
        if !best < f.(s).(v) then f.(s).(v) <- !best
      done;
      (* relaxation step: in the metric closure one hop suffices *)
      for v = 0 to n - 1 do
        let best = ref f.(s).(v) in
        for u = 0 to n - 1 do
          let cand = f.(s).(u) +. Metric.d m u v in
          if cand < !best then best := cand
        done;
        f.(s).(v) <- !best
      done
    end
  done;
  f.(full)

let exact_all_roots m terminals =
  let terminals = List.sort_uniq compare terminals in
  if terminals = [] then invalid_arg "Steiner.exact_all_roots: no terminals";
  dw m terminals

let exact_weight m terminals =
  let terminals = List.sort_uniq compare terminals in
  match terminals with
  | [] | [ _ ] -> 0.0
  | t0 :: rest -> (dw m rest).(t0)
