(* Experiment harness.

   The paper (SPAA 2001) is purely theoretical -- it has no tables or
   figures. DESIGN.md therefore defines the empirical validation suite
   E1..E14, one experiment per theorem/lemma plus the system-level
   comparisons; this binary regenerates all of them. EXPERIMENTS.md
   records expected-vs-measured for each run.

     dune exec bench/main.exe            -- run all experiments
     dune exec bench/main.exe -- e3 e5   -- run a subset
     dune exec bench/main.exe -- micro   -- Bechamel micro-benchmarks *)

open Dmn_prelude
module I = Dmn_core.Instance
module C = Dmn_core.Cost
module A = Dmn_core.Approx
module E = Dmn_core.Exact

let section title =
  Printf.printf "\n=== %s ===\n\n" title

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* a fresh directory path; the code under test creates it *)
let temp_dir =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter)

(* ------------------------------------------------------------------ *)
(* E1: Theorem 7 -- constant-factor approximation on general networks  *)
(* ------------------------------------------------------------------ *)

let topologies rng n =
  [
    ("tree", Dmn_graph.Gen.random_tree rng n);
    ("ring", Dmn_graph.Gen.ring n);
    ("grid", Dmn_graph.Gen.grid 2 (n / 2));
    ("er", Dmn_graph.Gen.erdos_renyi rng n 0.35);
    ("geometric", Dmn_graph.Gen.random_geometric rng n 0.4);
    ("clustered", Dmn_graph.Gen.clustered rng ~clusters:2 ~per_cluster:(n / 2));
  ]

let e1 () =
  section "E1  approximation quality vs exhaustive optimum (Theorem 7)";
  print_endline
    "Ratio of the 3-phase algorithm's cost (its own MST-update policy)\n\
     to the exhaustive optimum; 12 seeds per topology, n = 10, mixed\n\
     read/write workload. The proven bound is a (large) constant; the\n\
     empirical ratios should sit far below it and never under 1.";
  let n = 10 in
  let tbl =
    Tbl.create [ "topology"; "ratio vs OPT(mst)"; "max"; "ratio vs OPT(steiner)"; "max " ]
  in
  List.iter
    (fun topo_name ->
      (* each seed draws a fresh rng, so the exhaustive-optimum loop fans
         out over the pool with unchanged results *)
      let per_seed =
        Pool.parallel_init (Pool.default ()) 12 (fun i ->
            let seed = i + 1 in
            let rng = Rng.create (seed * 7919) in
            let g = List.assoc topo_name (topologies rng n) in
            let nn = Dmn_graph.Wgraph.n g in
            let cs = Array.init nn (fun _ -> Rng.float_in rng 2.0 20.0) in
            let { Dmn_workload.Freq.fr; fw } =
              Dmn_workload.Freq.mix rng ~objects:1 ~n:nn ~total:(5 * nn) ~write_fraction:0.25
            in
            let inst = I.of_graph g ~cs ~fr ~fw in
            if I.total_requests inst ~x:0 > 0 then begin
              let copies = A.place_object inst ~x:0 in
              let cost = C.total_mst inst ~x:0 copies in
              let _, opt_mst = E.opt_mst inst ~x:0 in
              let _, opt_exact = E.opt_exact inst ~x:0 in
              Some (cost /. opt_mst, cost /. opt_exact)
            end
            else None)
      in
      let pairs = Array.to_list per_seed |> List.filter_map Fun.id in
      let a = Array.of_list (List.map fst pairs) and b = Array.of_list (List.map snd pairs) in
      Tbl.add_row tbl
        [
          topo_name; Tbl.fl2 (Stats.mean a); Tbl.fl2 (Stats.max a); Tbl.fl2 (Stats.mean b);
          Tbl.fl2 (Stats.max b);
        ])
    [ "tree"; "ring"; "grid"; "er"; "geometric"; "clustered" ];
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E2: Theorem 13 -- tree DP optimality and running-time scaling       *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2  tree DP: optimality and running time (Theorem 13)";
  print_endline
    "Part A: the DP must equal the exhaustive tree optimum (100 random\n\
     instances, n <= 12). Part B: running time against the paper's\n\
     O(|V| * diam * log deg) prediction; the normalized column should\n\
     stay roughly flat within a topology family.";
  (* part A *)
  let matches = ref 0 and total = ref 0 in
  let rng = Rng.create 1009 in
  for _ = 1 to 100 do
    let n = 2 + Rng.int rng 11 in
    let g = Dmn_graph.Gen.random_tree rng n in
    let cs = Array.init n (fun _ -> Rng.float_in rng 0.5 25.0) in
    let { Dmn_workload.Freq.fr; fw } =
      Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(4 * n) ~write_fraction:0.3
    in
    let inst = I.of_graph g ~cs ~fr ~fw in
    if I.total_requests inst ~x:0 > 0 then begin
      incr total;
      let _, dp = Dmn_tree.Tree_solver.place_object inst ~x:0 in
      let _, opt = Dmn_tree.Tree_exact.opt inst ~x:0 ~root:0 in
      if Floatx.approx ~tol:1e-6 dp opt then incr matches
    end
  done;
  Printf.printf "optimality: %d / %d instances match the brute force exactly\n\n" !matches !total;
  (* part B *)
  let tbl = Tbl.create [ "family"; "n"; "diam"; "deg"; "time ms"; "ms / (n diam log deg)" ] in
  let sizes = [ 64; 128; 256; 512 ] in
  let families =
    [
      ("random", (fun rng n -> Dmn_graph.Gen.random_tree rng n), sizes);
      ("caterpillar", (fun rng n -> Dmn_graph.Gen.caterpillar rng n), sizes);
      ( "8ary-tree",
        (fun _ depth -> Dmn_graph.Gen.balanced_tree ~arity:8 ~depth),
        [ 1; 2; 3 ] );
    ]
  in
  List.iter
    (fun (fam, build, sizes) ->
      List.iter
        (fun n ->
          let rng = Rng.create (n + 17) in
          let g = build rng n in
          let nn = Dmn_graph.Wgraph.n g in
          let cs = Array.init nn (fun _ -> Rng.float_in rng 1.0 20.0) in
          let { Dmn_workload.Freq.fr; fw } =
            Dmn_workload.Freq.mix rng ~objects:1 ~n:nn ~total:(4 * nn) ~write_fraction:0.3
          in
          let inst = I.of_graph g ~cs ~fr ~fw in
          let _, dt = time_it (fun () -> Dmn_tree.Tree_solver.place_object inst ~x:0) in
          let diam = Dmn_graph.Wgraph.unweighted_diameter g in
          let deg = Dmn_graph.Wgraph.max_degree g in
          let norm =
            1000.0 *. dt
            /. (float_of_int nn *. float_of_int diam *. Float.log (float_of_int (max 2 deg)))
          in
          Tbl.add_row tbl
            [
              fam; string_of_int nn; string_of_int diam; string_of_int deg;
              Tbl.fl2 (1000.0 *. dt); Printf.sprintf "%.5f" norm;
            ])
        sizes)
    families;
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E3: cost vs read/write mix -- strategy crossover                    *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3  strategy crossover over the read/write mix";
  print_endline
    "5x5 mesh, 200 requests, write share swept 0 -> 1. Full replication\n\
     must win for read-only, a single copy for write-only, with the\n\
     paper's algorithm tracking the best of both (cf. Section 1).";
  let rows = 5 and cols = 5 in
  let g = Dmn_graph.Gen.grid rows cols in
  let n = rows * cols in
  let tbl =
    Tbl.create [ "write frac"; "single"; "full"; "greedy-add"; "krw"; "krw copies"; "winner" ]
  in
  List.iter
    (fun wf ->
      let rng = Rng.create 4242 in
      let cs = Array.make n 3.0 in
      let { Dmn_workload.Freq.fr; fw } =
        Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(8 * n) ~write_fraction:wf
      in
      let inst = I.of_graph g ~cs ~fr ~fw in
      let eval copies = C.total_mst inst ~x:0 copies in
      let single = eval (Dmn_baselines.Naive.best_single inst ~x:0) in
      let full = eval (Dmn_baselines.Naive.full_replication inst ~x:0) in
      let greedy = eval (Dmn_baselines.Greedy_place.add inst ~x:0) in
      let krw_copies = A.place_object inst ~x:0 in
      let krw = eval krw_copies in
      let winner =
        List.sort compare
          [ (single, "single"); (full, "full"); (greedy, "greedy"); (krw, "krw") ]
        |> List.hd |> snd
      in
      Tbl.add_row tbl
        [
          Printf.sprintf "%.2f" wf; Tbl.fl2 single; Tbl.fl2 full; Tbl.fl2 greedy; Tbl.fl2 krw;
          string_of_int (List.length krw_copies); winner;
        ])
    [ 0.0; 0.05; 0.1; 0.2; 0.35; 0.5; 0.75; 1.0 ];
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E4: replication degree vs storage price                             *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4  replication degree vs storage fee scale";
  print_endline
    "Same workload, storage fees scaled by powers of two. Replicas must\n\
     decrease monotonically (modulo algorithm constants) as memory gets\n\
     more expensive; the trade-off the storage radius captures.";
  let n = 30 in
  let rng0 = Rng.create 31337 in
  let g = Dmn_graph.Gen.random_geometric rng0 n 0.35 in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.mix rng0 ~objects:1 ~n ~total:(10 * n) ~write_fraction:0.1
  in
  let tbl = Tbl.create [ "storage scale"; "krw replicas"; "storage"; "read"; "update"; "total" ] in
  List.iter
    (fun scale ->
      let cs = Array.make n (0.25 *. scale) in
      let inst = I.of_graph g ~cs ~fr ~fw in
      let copies = A.place_object inst ~x:0 in
      let b = C.eval_mst inst ~x:0 copies in
      Tbl.add_row tbl
        [
          Tbl.fl scale; string_of_int (List.length copies); Tbl.fl2 b.C.storage;
          Tbl.fl2 b.C.read; Tbl.fl2 b.C.update; Tbl.fl2 (C.total b);
        ])
    [ 0.25; 1.0; 4.0; 16.0; 64.0; 256.0 ];
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E5: phase-1 facility-location solver comparison (Lemma 9)           *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5  phase-1 FLP solver comparison (Lemma 9: factor f is parametric)";
  print_endline
    "Final pipeline cost and time per phase-1 solver on a 48-node\n\
     clustered network (8 objects, Zipf reads). Also each solver's raw\n\
     FLP quality vs the exhaustive FLP optimum on n = 12 instances.";
  let rng = Rng.create 999 in
  let inst = Dmn_workload.Scenario.web_cdn rng ~clusters:6 ~per_cluster:8 ~objects:8 in
  let tbl = Tbl.create [ "solver"; "pipeline cost"; "time ms"; "flp quality (n=12)" ] in
  let flp_quality solver =
    let ratios = ref [] in
    for seed = 1 to 10 do
      let rng = Rng.create (seed * 31) in
      let g = Dmn_graph.Gen.erdos_renyi rng 12 0.3 in
      let m = Dmn_paths.Metric.of_graph g in
      let opening = Array.init 12 (fun _ -> Rng.float_in rng 1.0 15.0) in
      let demand = Array.init 12 (fun _ -> float_of_int (Rng.int rng 6)) in
      let flp = Dmn_facility.Flp.create m ~opening ~demand in
      let opens =
        match solver with
        | A.Local_search -> Dmn_facility.Local_search.solve flp
        | A.Jain_vazirani -> Dmn_facility.Jain_vazirani.solve flp
        | A.Mettu_plaxton -> Dmn_facility.Mettu_plaxton.solve flp
        | A.Greedy -> Dmn_facility.Greedy.solve flp
        | A.Trivial -> [ 0 ]
        | A.Sta_lp -> Dmn_facility.Sta.solve flp
      in
      let opt = Dmn_facility.Exact.opt_cost flp in
      if opt > 0.0 then ratios := (Dmn_facility.Flp.cost flp opens /. opt) :: !ratios
    done;
    Stats.mean (Array.of_list !ratios)
  in
  List.iter
    (fun solver ->
      let config = { A.default_config with A.solver } in
      (* the dense LP of the STA solver is capped at n = 40; report its
         pipeline on the 48-node instance as n/a *)
      let cost, time =
        match time_it (fun () -> A.solve ~config inst) with
        | p, dt -> (Tbl.fl2 (C.total (C.placement_mst inst p)), Tbl.fl2 (1000.0 *. dt))
        | exception Invalid_argument _ -> ("n/a", "n/a")
      in
      Tbl.add_row tbl [ A.solver_name solver; cost; time; Tbl.fl2 (flp_quality solver) ])
    [ A.Mettu_plaxton; A.Jain_vazirani; A.Local_search; A.Greedy; A.Sta_lp ];
  Tbl.print tbl;
  (* STA's pipeline on an instance within its LP cap *)
  let small = Dmn_workload.Scenario.web_cdn (Rng.create 999) ~clusters:4 ~per_cluster:6 ~objects:4 in
  let tbl2 = Tbl.create [ "solver (n=24 pipeline)"; "cost"; "time ms" ] in
  List.iter
    (fun solver ->
      let config = { A.default_config with A.solver } in
      let p, dt = time_it (fun () -> A.solve ~config small) in
      Tbl.add_row tbl2
        [ A.solver_name solver; Tbl.fl2 (C.total (C.placement_mst small p)); Tbl.fl2 (1000.0 *. dt) ])
    [ A.Mettu_plaxton; A.Sta_lp ];
  Tbl.print tbl2

(* ------------------------------------------------------------------ *)
(* E6: Lemma 1 -- restricted placements lose at most a factor 4        *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6  restricted-placement gap (Lemma 1: C^OPT_W <= 4 C^OPT)";
  print_endline
    "Exhaustive restricted optimum (shared MST multicast, every copy\n\
     serves >= W requests) vs exhaustive unrestricted optimum (per-write\n\
     Steiner trees), 40 random instances, n in 5..8.";
  let ratios = ref [] in
  let rng = Rng.create 313 in
  for _ = 1 to 40 do
    let n = 5 + Rng.int rng 4 in
    let g = Dmn_graph.Gen.erdos_renyi rng n 0.4 in
    let cs = Array.init n (fun _ -> Rng.float_in rng 1.0 15.0) in
    let { Dmn_workload.Freq.fr; fw } =
      Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(4 * n) ~write_fraction:0.35
    in
    let inst = I.of_graph g ~cs ~fr ~fw in
    if I.total_requests inst ~x:0 > 0 then begin
      let _, opt = E.opt_exact inst ~x:0 in
      let _, opt_w = E.opt_restricted inst ~x:0 in
      if opt > 0.0 then ratios := (opt_w /. opt) :: !ratios
    end
  done;
  let a = Array.of_list !ratios in
  let tbl = Tbl.create [ "instances"; "mean ratio"; "p95"; "max"; "bound" ] in
  Tbl.add_row tbl
    [
      string_of_int (Array.length a); Tbl.fl2 (Stats.mean a); Tbl.fl2 (Stats.percentile a 95.0);
      Tbl.fl2 (Stats.max a); "4.00";
    ];
  Tbl.print tbl;
  if Stats.max a > 4.0 +. 1e-6 then print_endline "!! LEMMA 1 BOUND VIOLATED"

(* ------------------------------------------------------------------ *)
(* E7: polynomial running time of the full pipeline                    *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7  pipeline running time vs network size";
  print_endline
    "Wall-clock per object on clustered networks (Mettu-Plaxton phase\n\
     1). Doubling n should scale time polynomially (the metric closure\n\
     is the n^2 log n floor; radii are n^2 log n as well).";
  let tbl = Tbl.create [ "n"; "closure ms"; "place ms"; "total ms"; "copies" ] in
  List.iter
    (fun n ->
      let rng = Rng.create (n * 13) in
      let g = Dmn_graph.Gen.clustered rng ~clusters:(n / 10) ~per_cluster:10 in
      let nn = Dmn_graph.Wgraph.n g in
      let cs = Array.init nn (fun _ -> Rng.float_in rng 3.0 20.0) in
      let { Dmn_workload.Freq.fr; fw } =
        Dmn_workload.Freq.mix rng ~objects:1 ~n:nn ~total:(5 * nn) ~write_fraction:0.2
      in
      let (inst, closure_ms), _ =
        time_it (fun () ->
            let (i, dt) = time_it (fun () -> I.of_graph g ~cs ~fr ~fw) in
            (i, 1000.0 *. dt))
      in
      let copies, dt = time_it (fun () -> A.place_object inst ~x:0) in
      Tbl.add_row tbl
        [
          string_of_int nn; Tbl.fl2 closure_ms; Tbl.fl2 (1000.0 *. dt);
          Tbl.fl2 (closure_ms +. (1000.0 *. dt)); string_of_int (List.length copies);
        ])
    [ 50; 100; 200; 400; 800 ];
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E8: ablation of phases 2 and 3 (Lemma 8)                            *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8  phase ablation (Lemma 8: phases 2/3 establish properness)";
  print_endline
    "Dropping phase 3 must break property 2 (copies too close); phase 2\n\
     guards property 1 against weak phase-1 solutions in the worst\n\
     case. 30 random 14-node instances; violations counted with the\n\
     paper's constants k1 = 29, k2 = 2.";
  let base solver = { A.default_config with A.solver } in
  let variants =
    [
      ("full pipeline (mp)", base A.Mettu_plaxton);
      ("no phase 2 (mp)", { (base A.Mettu_plaxton) with A.run_phase2 = false });
      ("no phase 3 (mp)", { (base A.Mettu_plaxton) with A.run_phase3 = false });
      ("phase 1 only (mp)", { (base A.Mettu_plaxton) with A.run_phase2 = false; run_phase3 = false });
      ("full pipeline (greedy)", base A.Greedy);
      ("phase 1 only (greedy)", { (base A.Greedy) with A.run_phase2 = false; run_phase3 = false });
      ("full pipeline (trivial)", base A.Trivial);
      ("no phase 2 (trivial)", { (base A.Trivial) with A.run_phase2 = false });
    ]
  in
  let tbl =
    Tbl.create
      [ "variant"; "mean cost"; "prop-1 viols"; "prop-2 viols"; "mean copies"; "p2 added"; "p3 removed" ]
  in
  List.iter
    (fun (name, config) ->
      let costs = ref [] and v1 = ref 0 and v2 = ref 0 and copies_n = ref [] in
      let p2_added = ref 0 and p3_removed = ref 0 in
      for seed = 1 to 30 do
        let rng = Rng.create (seed * 101) in
        let n = 14 in
        let g = Dmn_graph.Gen.erdos_renyi rng n 0.3 in
        let cs = Array.init n (fun _ -> Rng.float_in rng 2.0 20.0) in
        let { Dmn_workload.Freq.fr; fw } =
          Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(5 * n) ~write_fraction:0.25
        in
        let inst = I.of_graph g ~cs ~fr ~fw in
        if I.total_requests inst ~x:0 > 0 then begin
          let radii = Dmn_core.Radii.compute inst ~x:0 in
          let after1 = A.phase1 ~config inst ~x:0 in
          let after2 =
            if config.A.run_phase2 then A.phase2 ~config inst ~x:0 radii after1 else after1
          in
          let copies =
            if config.A.run_phase3 then A.phase3 ~config inst radii after2 else after2
          in
          let copies = List.sort_uniq compare copies in
          p2_added := !p2_added + (List.length after2 - List.length after1);
          p3_removed := !p3_removed + (List.length after2 - List.length copies);
          costs := C.total_mst inst ~x:0 copies :: !costs;
          copies_n := float_of_int (List.length copies) :: !copies_n;
          List.iter
            (function
              | Dmn_core.Proper.Too_far _ -> incr v1
              | Dmn_core.Proper.Too_close _ -> incr v2)
            (Dmn_core.Proper.violations inst ~x:0 ~k1:29.0 ~k2:2.0 radii copies)
        end
      done;
      Tbl.add_row tbl
        [
          name;
          Tbl.fl2 (Stats.mean (Array.of_list !costs));
          string_of_int !v1;
          string_of_int !v2;
          Tbl.fl2 (Stats.mean (Array.of_list !copies_n));
          string_of_int !p2_added;
          string_of_int !p3_removed;
        ])
    variants;
  Tbl.print tbl;
  print_endline
    "\nWith a constant-factor phase-1 solver property 1 already holds\n\
     after phase 1 on random instances -- phase 2 is the worst-case\n\
     safety net Lemma 8 needs, not the common path. Phase 3 is what\n\
     carries the cost reduction (it prunes redundant replicas whose\n\
     updates would dominate)."

(* ------------------------------------------------------------------ *)
(* E9: the total-communication-load model as a special case            *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9  total-load model (cs = 0, ct = 1/bandwidth) as special case";
  print_endline
    "With free storage the cost model reduces to the total\n\
     communication load (Section 1). On trees we compare against the\n\
     exact tree optimum; on general networks against the exhaustive\n\
     MST-policy optimum (n = 10).";
  let tbl = Tbl.create [ "network"; "krw"; "optimum"; "ratio" ] in
  (* trees: Maggs et al. claim optimal total load on trees; our tree DP
     provides the reference *)
  let rng = Rng.create 777 in
  for i = 1 to 4 do
    let n = 16 in
    let g = Dmn_graph.Gen.random_tree rng n in
    let g = Dmn_graph.Wgraph.map_weights (fun _ _ _ -> 1.0 /. Rng.float_in rng 1.0 10.0) g in
    let cs = Array.make n 0.0 in
    let { Dmn_workload.Freq.fr; fw } =
      Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(5 * n) ~write_fraction:0.2
    in
    let inst = I.of_graph g ~cs ~fr ~fw in
    let copies = A.place_object inst ~x:0 in
    let krw = C.total (C.eval_exact inst ~x:0 copies) in
    let _, opt = Dmn_tree.Tree_solver.place_object inst ~x:0 in
    Tbl.add_row tbl
      [
        Printf.sprintf "tree-%d (n=%d)" i n; Tbl.fl2 krw; Tbl.fl2 opt;
        Tbl.fl2 (if opt > 0.0 then krw /. opt else 1.0);
      ]
  done;
  for i = 1 to 4 do
    let n = 10 in
    let inst = Dmn_workload.Scenario.total_load rng ~n ~objects:1 in
    let copies = A.place_object inst ~x:0 in
    let krw = C.total_mst inst ~x:0 copies in
    let _, opt = E.opt_mst inst ~x:0 in
    Tbl.add_row tbl
      [
        Printf.sprintf "general-%d (n=%d)" i n; Tbl.fl2 krw; Tbl.fl2 opt;
        Tbl.fl2 (if opt > 0.0 then krw /. opt else 1.0);
      ]
  done;
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E10: the non-uniform cost model (per-object storage/link scales)    *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10  non-uniform object costs (Section 1.1's non-uniform claim)";
  print_endline
    "One workload, object cost profiles scaled per object via\n\
     Instance.scale_object. Uniform scaling must not move the optimum\n\
     (costs rescale linearly); skewing storage against transmission\n\
     must move the replica count the right way. n = 12, exhaustive\n\
     optima.";
  let rng = Rng.create 2025 in
  let n = 12 in
  let g = Dmn_graph.Gen.erdos_renyi rng n 0.35 in
  let cs = Array.init n (fun _ -> Rng.float_in rng 2.0 8.0) in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(6 * n) ~write_fraction:0.15
  in
  let inst = I.of_graph g ~cs ~fr ~fw in
  let tbl =
    Tbl.create [ "storage x"; "transmission x"; "opt replicas"; "opt cost"; "krw replicas"; "krw cost" ]
  in
  List.iter
    (fun (s, t) ->
      let scaled = I.scale_object inst ~x:0 ~storage:s ~transmission:t in
      let copies_opt, opt = E.opt_mst scaled ~x:0 in
      let copies_krw = A.place_object scaled ~x:0 in
      let krw = C.total_mst scaled ~x:0 copies_krw in
      Tbl.add_row tbl
        [
          Tbl.fl s; Tbl.fl t; string_of_int (List.length copies_opt); Tbl.fl2 opt;
          string_of_int (List.length copies_krw); Tbl.fl2 krw;
        ])
    [ (1.0, 1.0); (5.0, 5.0); (0.1, 1.0); (10.0, 1.0); (1.0, 0.1); (1.0, 10.0) ];
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E11: edge-load and congestion profile of the placements             *)
(* ------------------------------------------------------------------ *)

let e11 () =
  section "E11  load profile: total weighted load and congestion analogue";
  print_endline
    "Per-edge routed loads of each strategy on a 40-node clustered\n\
     network (4 objects). Total weighted load equals the communication\n\
     part of the cost (identity tested in the suite); max weighted load\n\
     is the congestion analogue of Maggs et al.";
  let rng = Rng.create 404 in
  let inst = Dmn_workload.Scenario.web_cdn rng ~clusters:5 ~per_cluster:8 ~objects:4 in
  let tbl = Tbl.create [ "strategy"; "total weighted load"; "max edge load"; "storage"; "total cost" ] in
  let show name p =
    let profile = Dmn_loadmodel.Net_load.of_placement inst p in
    let b = C.placement_mst inst p in
    Tbl.add_row tbl
      [
        name;
        Tbl.fl2 profile.Dmn_loadmodel.Net_load.total_weighted;
        Tbl.fl2 profile.Dmn_loadmodel.Net_load.max_weighted;
        Tbl.fl2 b.C.storage;
        Tbl.fl2 (C.total b);
      ]
  in
  show "krw" (A.solve inst);
  show "single" (Dmn_baselines.Naive.solve Dmn_baselines.Naive.best_single inst);
  show "full" (Dmn_baselines.Naive.solve Dmn_baselines.Naive.full_replication inst);
  show "greedy-add" (Dmn_baselines.Naive.solve (fun i ~x -> Dmn_baselines.Greedy_place.add i ~x) inst);
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E12: static placement vs online adaptation                          *)
(* ------------------------------------------------------------------ *)

let e12 () =
  section "E12  static vs dynamic strategies (extension)";
  print_endline
    "Mean total cost over 8 seeded runs on 20-node geometric networks.\n\
     Stationary streams are drawn from the same frequencies the static\n\
     planner used; drifting streams move a hotspot the planner never\n\
     saw. Static must win the former and lose the latter.";
  let tbl =
    Tbl.create
      [ "stream"; "static (krw)"; "migrating owner"; "threshold caching"; "winner"; "caching vs clairvoyant" ]
  in
  List.iter
    (fun drift ->
      let totals = Array.make 3 0.0 in
      let ratios = ref [] in
      for seed = 1 to 8 do
        let rng = Dmn_prelude.Rng.create (seed * 37) in
        let n = 20 in
        let g = Dmn_graph.Gen.random_geometric rng n 0.4 in
        let cs = Array.make n 2.5 in
        let { Dmn_workload.Freq.fr; fw } =
          Dmn_workload.Freq.zipf rng ~objects:1 ~n ~requests:(10 * n) ~s:1.0 ~write_ratio:0.15
        in
        let inst = I.of_graph g ~cs ~fr ~fw in
        let placement = A.solve inst in
        let volume = 60 * n in
        let events =
          if drift then
            Dmn_dynamic.Stream.drifting (Dmn_prelude.Rng.create seed) inst ~phases:8
              ~phase_length:(volume / 8) ~write_fraction:0.15
          else Dmn_dynamic.Stream.stationary (Dmn_prelude.Rng.create seed) inst ~length:volume
        in
        List.iteri
          (fun i strat ->
            let r = Dmn_dynamic.Sim.run inst strat events in
            totals.(i) <- totals.(i) +. r.Dmn_dynamic.Sim.total)
          [
            Dmn_dynamic.Strategy.static inst placement;
            Dmn_dynamic.Strategy.migrating_owner inst;
            Dmn_dynamic.Strategy.threshold_caching inst;
          ];
        ratios :=
          Dmn_dynamic.Sim.competitive_ratio inst
            (Dmn_dynamic.Strategy.threshold_caching inst)
            events ~phase_length:(volume / 8)
          :: !ratios
      done;
      let names = [| "static"; "owner"; "caching" |] in
      let winner = ref 0 in
      for i = 1 to 2 do
        if totals.(i) < totals.(!winner) then winner := i
      done;
      Tbl.add_row tbl
        [
          (if drift then "drifting" else "stationary");
          Tbl.fl2 (totals.(0) /. 8.0); Tbl.fl2 (totals.(1) /. 8.0); Tbl.fl2 (totals.(2) /. 8.0);
          names.(!winner);
          Tbl.fl2 (Stats.mean (Array.of_list !ratios));
        ])
    [ false; true ];
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E13: capacitated placement (Baev-Rajaraman comparator model)        *)
(* ------------------------------------------------------------------ *)

let e13 () =
  section "E13  capacitated placement (Baev-Rajaraman related-work model)";
  print_endline
    "Read-only objects competing for per-node memory slots. As capacity\n\
     shrinks, objects can no longer all sit at their preferred nodes:\n\
     cost rises monotonically toward the feasibility limit. The local\n\
     search is sandwiched between the LP lower bound and greedy.";
  let rng = Rng.create 606 in
  let n = 10 and objects = 5 in
  let g = Dmn_graph.Gen.erdos_renyi rng n 0.35 in
  let cs = Array.init n (fun _ -> Rng.float_in rng 0.5 4.0) in
  let fr = Array.init objects (fun _ -> Array.init n (fun _ -> Rng.int rng 5)) in
  let fw = Array.init objects (fun _ -> Array.make n 0) in
  let inst = I.of_graph g ~cs ~fr ~fw in
  let tbl = Tbl.create [ "capacity/node"; "LP bound"; "local search"; "greedy"; "replicas" ] in
  List.iter
    (fun cap ->
      let t = Dmn_cap.Capplace.create inst ~capacity:(Array.make n cap) in
      let lp = Dmn_cap.Capplace.lp_bound t in
      let local = Dmn_cap.Capplace.local_search t in
      let greedy = Dmn_cap.Capplace.greedy t in
      let replicas = ref 0 in
      for x = 0 to objects - 1 do
        replicas := !replicas + Dmn_core.Placement.copy_count local ~x
      done;
      Tbl.add_row tbl
        [
          string_of_int cap;
          Tbl.fl2 lp;
          Tbl.fl2 (Dmn_cap.Capplace.cost t local);
          Tbl.fl2 (Dmn_cap.Capplace.cost t greedy);
          string_of_int !replicas;
        ])
    [ 5; 3; 2; 1 ];
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E14: sensitivity to the paper's phase constants (5 and 4)           *)
(* ------------------------------------------------------------------ *)

let e14 () =
  section "E14  sensitivity to the phase constants (paper: 5 and 4)";
  print_endline
    "The paper fixes phase 2's storage-radius factor at 5 and phase 3's\n\
     write-radius factor at 4 (giving k1 = 29, k2 = 2). Sweeping them\n\
     shows the trade-off the proof balances: small phase-3 factors keep\n\
     too many replicas (update-heavy), large ones over-prune\n\
     (read-heavy). Mean cost over 25 instances (n = 12), normalized by\n\
     the exhaustive MST-policy optimum.";
  let tbl = Tbl.create [ "phase2 factor"; "phase3 factor"; "mean ratio"; "max ratio"; "mean copies" ] in
  List.iter
    (fun (p2, p3) ->
      (* fresh rng per seed: exhaustive loop parallelizes unchanged *)
      let per_seed =
        Pool.parallel_init (Pool.default ()) 25 (fun i ->
            let seed = i + 1 in
            let rng = Rng.create (seed * 211) in
            let n = 12 in
            let g = Dmn_graph.Gen.erdos_renyi rng n 0.3 in
            let cs = Array.init n (fun _ -> Rng.float_in rng 2.0 20.0) in
            let { Dmn_workload.Freq.fr; fw } =
              Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(5 * n) ~write_fraction:0.25
            in
            let inst = I.of_graph g ~cs ~fr ~fw in
            if I.total_requests inst ~x:0 > 0 then begin
              let config = { A.default_config with A.phase2_factor = p2; phase3_factor = p3 } in
              let copies = A.place_object ~config inst ~x:0 in
              let _, opt = E.opt_mst inst ~x:0 in
              let ratio = if opt > 0.0 then Some (C.total_mst inst ~x:0 copies /. opt) else None in
              Some (ratio, float_of_int (List.length copies))
            end
            else None)
      in
      let rows = Array.to_list per_seed |> List.filter_map Fun.id in
      let ratios = ref (List.filter_map fst rows |> List.rev)
      and copies_n = ref (List.map snd rows |> List.rev) in
      let a = Array.of_list !ratios in
      Tbl.add_row tbl
        [
          Tbl.fl p2; Tbl.fl p3; Tbl.fl2 (Stats.mean a); Tbl.fl2 (Stats.max a);
          Tbl.fl2 (Stats.mean (Array.of_list !copies_n));
        ])
    [
      (5.0, 4.0); (5.0, 1.0); (5.0, 2.0); (5.0, 8.0); (5.0, 16.0);
      (1.0, 4.0); (2.0, 4.0); (10.0, 4.0); (20.0, 4.0);
    ];
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* E15: certified ratio bounds beyond exhaustive reach                 *)
(* ------------------------------------------------------------------ *)

let e15 () =
  section "E15  certified approximation bounds at n = 40 (LP lower bound)";
  print_endline
    "The LP relaxation of the related facility location problem lower-\n\
     bounds the data-management optimum (update cost is a nonnegative\n\
     extra), so cost / LP certifies an upper bound on the true ratio at\n\
     sizes exhaustive search cannot reach. 8 seeds, n = 40 geometric\n\
     networks (4 seeds). The certified bound is loose exactly when updates\n\
     dominate, so both a read-heavy and a balanced mix are shown.";
  let tbl = Tbl.create [ "write frac"; "mean certified ratio"; "max"; "mean copies" ] in
  List.iter
    (fun wf ->
      let ratios = ref [] and copies_n = ref [] in
      for seed = 1 to 4 do
        let rng = Rng.create (seed * 47) in
        let n = 40 in
        let g = Dmn_graph.Gen.random_geometric rng n 0.3 in
        let cs = Array.init n (fun _ -> Rng.float_in rng 2.0 12.0) in
        let { Dmn_workload.Freq.fr; fw } =
          Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(5 * n) ~write_fraction:wf
        in
        let inst = I.of_graph g ~cs ~fr ~fw in
        if I.total_requests inst ~x:0 > 0 then begin
          let copies = A.place_object inst ~x:0 in
          let cost = C.total_mst inst ~x:0 copies in
          let lb = Dmn_facility.Sta.lp_value (I.related_flp inst ~x:0) in
          if lb > 0.0 then ratios := (cost /. lb) :: !ratios;
          copies_n := float_of_int (List.length copies) :: !copies_n
        end
      done;
      let a = Array.of_list !ratios in
      Tbl.add_row tbl
        [
          Printf.sprintf "%.2f" wf; Tbl.fl2 (Stats.mean a); Tbl.fl2 (Stats.max a);
          Tbl.fl2 (Stats.mean (Array.of_list !copies_n));
        ])
    [ 0.05; 0.25 ];
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* scale: multicore speedup + profile-cache micro-benchmark            *)
(* ------------------------------------------------------------------ *)

(* Machine-readable perf trajectory: every run rewrites
   BENCH_<name>.json so later PRs can diff wall times. *)
let json_number x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x

let json_field (k, v) =
  Printf.sprintf "\"%s\": %s" k
    (match v with
    | `S s -> Printf.sprintf "\"%s\"" s
    | `F x -> json_number x
    | `I i -> string_of_int i
    | `B b -> string_of_bool b)

let write_bench_json ~bench file experiments =
  let obj fields = "    {" ^ String.concat ", " (List.map json_field fields) ^ "}" in
  let body = String.concat ",\n" (List.map obj experiments) in
  let oc = open_out file in
  Printf.fprintf oc
    "{\n  \"bench\": \"%s\",\n  \"cores_available\": %d,\n  \"experiments\": [\n%s\n  ]\n}\n"
    bench
    (Domain.recommended_domain_count ()) body;
  close_out oc;
  Printf.printf "\nwrote %s\n" file

let scale () =
  section "scale  batched pool: multicore speedup at production shape (tentpole PR 6)";
  print_endline
    "Part A: chunked per-object solve (trivial phase 1, so radii +\n\
     phase 2/3 dominate) at production shape; wall time per pool size,\n\
     placements asserted identical to the serial per-object map.\n\
     Part B: chunked metric closure (one Dijkstra per row) under the\n\
     same pool sizes. Part C: cached-profile radii vs the seed's\n\
     uncached O(n^2 log n) compute. DMNET_SCALE=smoke skips the\n\
     n = 2048 configurations (CI smoke); the speedup gate applies to\n\
     the largest configuration run and hard-fails only when\n\
     cores_available >= 4.";
  let records = ref [] in
  let record r = records := r :: !records in
  let cores = Domain.recommended_domain_count () in
  let smoke = Sys.getenv_opt "DMNET_SCALE" = Some "smoke" in
  (* Trivial phase 1: Mettu-Plaxton is O(n^2 log n) per object, which
     at n = 2048 x 1024 objects would dominate the bench by hours; the
     trivial solver keeps per-object cost radii-bound (O(n^2)) and the
     parallel structure identical. Recorded in the JSON as "solver". *)
  let config = { A.default_config with A.solver = A.Trivial } in
  let domain_counts = [ 1; 2; 4 ] in
  let build_instance ~topo ~n ~objects ~seed =
    let rng = Rng.create seed in
    let g =
      match topo with
      | "geometric" ->
          (* radius ~ 2x the connectivity threshold sqrt(ln n / (pi n)) *)
          Dmn_graph.Gen.random_geometric rng n (if n >= 2048 then 0.05 else 0.09)
      | "grid" ->
          let rows = int_of_float (sqrt (float_of_int n /. 2.0)) in
          Dmn_graph.Gen.grid rows (n / rows)
      | _ -> assert false
    in
    let nn = Dmn_graph.Wgraph.n g in
    let cs = Array.init nn (fun _ -> Rng.float_in rng 2.0 20.0) in
    let { Dmn_workload.Freq.fr; fw } =
      Dmn_workload.Freq.mix rng ~objects ~n:nn ~total:(4 * nn) ~write_fraction:0.2
    in
    (g, I.of_graph g ~cs ~fr ~fw)
  in
  (* --- A: per-object placement scaling --- *)
  let solve_configs =
    [ ("geometric", 512, 256, 90210); ("grid", 512, 256, 90211) ]
    @ (if smoke then [] else [ ("geometric", 2048, 1024, 90212) ])
  in
  let gate_times = ref None in
  List.iter
    (fun (topo, n, objects, seed) ->
      Printf.printf "building %s n=%d instance (%d objects)...\n%!" topo n objects;
      let _, inst = build_instance ~topo ~n ~objects ~seed in
      let nn = I.n inst in
      let serial, t_serial =
        time_it (fun () ->
            Dmn_core.Placement.make
              (Array.init (I.objects inst) (fun x -> A.place_object ~config inst ~x)))
      in
      let tbl = Tbl.create [ "domains"; "chunks"; "solve s"; "speedup"; "= serial" ] in
      let t1 = ref 0.0 in
      let times =
        List.map
          (fun domains ->
            Pool.with_pool ~domains (fun pool ->
                Pool.reset_stats pool;
                let chunks, chunk_size = Pool.chunk_plan pool (I.objects inst) in
                let p, dt = time_it (fun () -> A.solve ~config ~pool inst) in
                let stats = Pool.stats pool in
                if domains = 1 then t1 := dt;
                let same =
                  List.init (I.objects inst) (fun x ->
                      Dmn_core.Placement.copies p ~x = Dmn_core.Placement.copies serial ~x)
                  |> List.for_all Fun.id
                in
                if not same then failwith "scale: parallel placement diverged from serial";
                let speedup = !t1 /. dt in
                Tbl.add_row tbl
                  [ string_of_int domains; string_of_int chunks; Printf.sprintf "%.4f" dt;
                    Tbl.fl2 speedup; string_of_bool same ];
                record
                  [
                    ("name", `S "solve-scaling"); ("topology", `S topo); ("n", `I nn);
                    ("objects", `I objects); ("solver", `S (A.solver_name config.A.solver));
                    ("domains", `I domains); ("chunks", `I chunks);
                    ("chunk_size", `I chunk_size); ("cores_available", `I cores);
                    ("serial_wall_s", `F t_serial); ("wall_s", `F dt);
                    ("speedup_vs_1_domain", `F speedup); ("matches_serial", `B same);
                    ("pool_chunks_claimed", `I stats.Pool.chunks_claimed);
                    ("pool_tasks_run", `I stats.Pool.tasks_run);
                  ];
                dt))
          domain_counts
      in
      (* every config overwrites: the last (largest) one feeds the gate *)
      (match times with
      | [ a; b; c ] -> gate_times := Some (topo, nn, objects, a, b, c)
      | _ -> assert false);
      Tbl.print tbl)
    solve_configs;
  (* --- speedup gate on the largest configuration run --- *)
  (match !gate_times with
  | None -> ()
  | Some (topo, n, objects, t1, t2, t4) ->
      let s2 = t1 /. t2 and s4 = t1 /. t4 in
      let enforced = cores >= 4 in
      let pass = s2 >= 1.2 && s4 >= 2.0 in
      record
        [
          ("name", `S "gate"); ("experiment", `S "solve-scaling"); ("topology", `S topo);
          ("n", `I n); ("objects", `I objects); ("cores_available", `I cores);
          ("speedup_2_domains", `F s2); ("threshold_2_domains", `F 1.2);
          ("speedup_4_domains", `F s4); ("threshold_4_domains", `F 2.0);
          ("enforced", `B enforced); ("pass", `B pass);
        ];
      Printf.printf "gate (%s n=%d, %d objects): 2 domains %.2fx (>= 1.2), 4 domains %.2fx (>= 2.0): %s%s\n"
        topo n objects s2 s4
        (if pass then "PASS" else "FAIL")
        (if enforced then "" else Printf.sprintf " (advisory: only %d core(s) available)" cores);
      if enforced && not pass then
        failwith
          (Printf.sprintf
             "scale gate: speedup below threshold with %d cores (2 domains %.2fx, 4 domains %.2fx)"
             cores s2 s4));
  (* --- B: metric-closure scaling --- *)
  let closure_configs =
    [ ("grid", 512) ] @ (if smoke then [] else [ ("geometric", 2048) ])
  in
  List.iter
    (fun (topo, cn) ->
      let rng = Rng.create (cn + 777) in
      let cg =
        match topo with
        | "geometric" -> Dmn_graph.Gen.random_geometric rng cn (if cn >= 2048 then 0.05 else 0.09)
        | _ ->
            let rows = int_of_float (sqrt (float_of_int cn /. 2.0)) in
            Dmn_graph.Gen.grid rows (cn / rows)
      in
      let nn = Dmn_graph.Wgraph.n cg in
      let reference = ref [||] in
      let tbl = Tbl.create [ "domains"; "chunks"; "closure s"; "speedup"; "= serial" ] in
      let t1 = ref 0.0 in
      List.iter
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              Pool.reset_stats pool;
              let chunks, chunk_size = Pool.chunk_plan pool nn in
              let m, dt = time_it (fun () -> Dmn_paths.Metric.of_graph ~pool cg) in
              let stats = Pool.stats pool in
              let flat = Dmn_paths.Metric.to_matrix m in
              if domains = 1 then begin
                t1 := dt;
                reference := flat
              end;
              let same = flat = !reference in
              if not same then failwith "scale: parallel closure diverged from serial";
              let speedup = !t1 /. dt in
              Tbl.add_row tbl
                [ string_of_int domains; string_of_int chunks; Printf.sprintf "%.4f" dt;
                  Tbl.fl2 speedup; string_of_bool same ];
              record
                [
                  ("name", `S "metric-closure-scaling"); ("topology", `S topo); ("n", `I nn);
                  ("domains", `I domains); ("chunks", `I chunks); ("chunk_size", `I chunk_size);
                  ("cores_available", `I cores); ("wall_s", `F dt);
                  ("speedup_vs_1_domain", `F speedup); ("matches_serial", `B same);
                  ("pool_chunks_claimed", `I stats.Pool.chunks_claimed);
                  ("pool_tasks_run", `I stats.Pool.tasks_run);
                ]))
        domain_counts;
      Tbl.print tbl)
    closure_configs;
  (* --- C: radii with shared profile cache vs uncached seed compute --- *)
  let n = 64 and objects = 16 in
  let _, inst = build_instance ~topo:"geometric" ~n ~objects ~seed:90210 in
  let nn = I.n inst in
  let reps = 3 in
  let time_radii compute =
    let _, dt =
      time_it (fun () ->
          for _ = 1 to reps do
            for x = 0 to I.objects inst - 1 do
              ignore (compute inst ~x)
            done
          done)
    in
    dt
  in
  let t_seed = time_radii Dmn_core.Radii.compute_reference in
  let t_cached = time_radii Dmn_core.Radii.compute in
  let tbl = Tbl.create [ "radii path"; "wall s"; "per object ms"; "speedup" ] in
  let calls = float_of_int (reps * I.objects inst) in
  Tbl.add_row tbl
    [ "seed (sort per object)"; Printf.sprintf "%.4f" t_seed;
      Printf.sprintf "%.3f" (1000.0 *. t_seed /. calls); "1.00" ];
  Tbl.add_row tbl
    [ "cached profile"; Printf.sprintf "%.4f" t_cached;
      Printf.sprintf "%.3f" (1000.0 *. t_cached /. calls); Tbl.fl2 (t_seed /. t_cached) ];
  Tbl.print tbl;
  record
    [
      ("name", `S "radii-profile-cache"); ("n", `I nn); ("objects", `I objects);
      ("calls", `I (reps * I.objects inst)); ("reference_wall_s", `F t_seed);
      ("cached_wall_s", `F t_cached); ("speedup", `F (t_seed /. t_cached));
    ];
  write_bench_json ~bench:"placement" "BENCH_placement.json" (List.rev !records)

(* ------------------------------------------------------------------ *)
(* replay: streaming engine policies + cross-domain determinism        *)
(* ------------------------------------------------------------------ *)

(* The replay and tournament experiments both land in BENCH_replay.json;
   their records accumulate here so running both (the default) keeps
   both sets, while running either alone still writes a valid file. *)
let replay_records = ref []

let flush_replay_json () =
  write_bench_json ~bench:"replay" "BENCH_replay.json" (List.rev !replay_records)

let replay () =
  section "replay  streaming engine: policies on a drifting workload (tentpole PR 3)";
  print_endline
    "Every policy replays the *same* drifting stream (hotspots the\n\
     static planner never saw) through the epoch engine. The static\n\
     placement is the paper's 3-phase solution for the instance tables;\n\
     resolve re-solves from observed frequencies at every epoch\n\
     boundary, paying migration; cache is per-event threshold caching.\n\
     Resolve must beat static here -- the margin lands in\n\
     BENCH_replay.json, as does a byte-identity check of the metrics\n\
     JSON across 1/2/4 domains.";
  let module En = Dmn_engine.Engine in
  let record r = replay_records := r :: !replay_records in
  let rng = Rng.create 24601 in
  let n = 32 in
  let g = Dmn_graph.Gen.random_geometric rng n 0.35 in
  let nn = Dmn_graph.Wgraph.n g in
  let objects = 6 in
  let cs = Array.init nn (fun _ -> Rng.float_in rng 2.0 10.0) in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.zipf rng ~objects ~n:nn ~requests:(20 * nn) ~s:1.0 ~write_ratio:0.15
  in
  let inst = I.of_graph g ~cs ~fr ~fw in
  let placement = A.solve inst in
  let events = 40_000 and phases = 20 and epoch = 1000 in
  (* the _seq generators are one-shot: recreate from the same seed so
     every policy consumes the identical stream *)
  let stream () =
    Dmn_dynamic.Stream.drifting_seq (Rng.create 7) inst ~phases
      ~phase_length:(events / phases) ~write_fraction:0.15
  in
  let config policy = { En.default_config with En.policy; epoch } in
  let tbl =
    Tbl.create
      [ "policy"; "serving"; "storage"; "migration"; "total"; "copies"; "wall s" ]
  in
  let totals = ref [] in
  List.iter
    (fun policy ->
      let r, dt = time_it (fun () -> En.run ~config:(config policy) inst placement (stream ())) in
      let t = r.En.totals in
      let total = En.total_cost t in
      totals := (policy, total) :: !totals;
      Tbl.add_row tbl
        [
          En.policy_name policy; Tbl.fl2 t.En.serving; Tbl.fl2 t.En.storage;
          Tbl.fl2 t.En.migration; Tbl.fl2 total; string_of_int t.En.final_copies;
          Printf.sprintf "%.4f" dt;
        ];
      record
        [
          ("name", `S "replay-policy"); ("policy", `S (En.policy_name policy));
          ("n", `I nn); ("objects", `I objects); ("events", `I t.En.events);
          ("epochs", `I (List.length r.En.epochs)); ("epoch_size", `I epoch);
          ("serving", `F t.En.serving); ("storage", `F t.En.storage);
          ("migration", `F t.En.migration); ("total_cost", `F total);
          ("final_copies", `I t.En.final_copies); ("wall_s", `F dt);
        ])
    [ En.Static; En.Resolve; En.Cache ];
  Tbl.print tbl;
  let static_total = List.assoc En.Static !totals
  and resolve_total = List.assoc En.Resolve !totals in
  let margin = static_total /. resolve_total in
  Printf.printf "\nresolve vs static on the drifting stream: %.2fx cheaper (%.2f -> %.2f)\n"
    margin static_total resolve_total;
  if resolve_total >= static_total then
    failwith "replay: epoch re-solve failed to beat the static placement on a drifting stream";
  record
    [
      ("name", `S "replay-resolve-vs-static"); ("static_total", `F static_total);
      ("resolve_total", `F resolve_total); ("margin", `F margin);
      ("resolve_beats_static", `B (resolve_total < static_total));
    ];
  (* cross-domain determinism: the metrics JSON must be byte-identical *)
  let json_at domains =
    Pool.with_pool ~domains (fun pool ->
        En.metrics_json inst (En.run ~pool ~config:(config En.Resolve) inst placement (stream ())))
  in
  let j1 = json_at 1 in
  let identical = List.for_all (fun d -> json_at d = j1) [ 2; 4 ] in
  Printf.printf "metrics JSON identical across 1/2/4 domains: %b\n" identical;
  if not identical then failwith "replay: metrics JSON diverged across domain counts";
  record
    [
      ("name", `S "replay-domain-identity"); ("domains", `S "1,2,4");
      ("json_bytes", `I (String.length j1)); ("identical_metrics_json", `B identical);
    ];
  (* checkpoint overhead: the crash-safety tentpole (PR 4) must be
     nearly free even at the maximal cadence (--ckpt-every 1: one
     atomic write + fsync of a ~1 KB snapshot per epoch). An fsync
     costs ~1 ms on ext4 and its latency is volatile, so the
     measurement uses operationally sized epochs (20k events — a
     checkpoint per 2 ms epoch would be absurd cadence, not overhead)
     and interleaves the two arms, taking the best of 6 paired reps so
     a background-I/O burst cannot land on one arm only. The resulting
     metrics must also be byte-identical: checkpointing is pure
     overhead. *)
  let ovh_epoch = 20_000 in
  let ovh_events = 160_000 in
  let ovh_stream () =
    Dmn_dynamic.Stream.drifting_seq (Rng.create 7) inst ~phases
      ~phase_length:(ovh_events / phases) ~write_fraction:0.15
  in
  let ovh_config = { En.default_config with En.policy = En.Resolve; epoch = ovh_epoch } in
  let ckpt_dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dmnet_bench_ckpt-%d" (Unix.getpid ())) in
  let run_plain () = En.run ~config:ovh_config inst placement (ovh_stream ()) in
  let run_ckpt () =
    En.run ~config:ovh_config ~ckpt:{ En.dir = ckpt_dir; every = 1; keep = 3 } inst placement
      (ovh_stream ())
  in
  let t_plain = ref infinity and t_ckpt = ref infinity in
  let r_plain = ref None and r_ckpt = ref None in
  for _ = 1 to 6 do
    let r, dt = time_it run_plain in
    if dt < !t_plain then t_plain := dt;
    r_plain := Some r;
    let r, dt = time_it run_ckpt in
    if dt < !t_ckpt then t_ckpt := dt;
    r_ckpt := Some r
  done;
  let r_plain = Option.get !r_plain and r_ckpt = Option.get !r_ckpt in
  let t_plain = !t_plain and t_ckpt = !t_ckpt in
  rm_rf ckpt_dir;
  let overhead = (t_ckpt -. t_plain) /. t_plain in
  let epochs = List.length r_plain.En.epochs in
  Printf.printf
    "checkpoint overhead (--ckpt-every 1, %d checkpoints): %.4fs -> %.4fs (%+.1f%%)\n" epochs
    t_plain t_ckpt (100.0 *. overhead);
  if En.metrics_json inst r_ckpt <> En.metrics_json inst r_plain then
    failwith "replay: checkpointing changed the metrics JSON";
  if overhead > 0.08 then
    failwith
      (Printf.sprintf "replay: checkpoint overhead %.1f%% exceeds the 8%% budget"
         (100.0 *. overhead));
  record
    [
      ("name", `S "replay-checkpoint-overhead"); ("ckpt_every", `I 1);
      ("checkpoints", `I epochs); ("wall_s_plain", `F t_plain); ("wall_s_ckpt", `F t_ckpt);
      ("overhead_frac", `F overhead); ("within_budget", `B (overhead <= 0.08));
    ];
  (* serve-path: versioned serve caches vs recompute-everything (PR 5
     tentpole). Cheap storage rent makes the solver replicate widely, so
     the copy sets are large; the stream is write-heavy, so the uncached
     arm pays a fresh O(c² log c) MST per write while the cached arm
     reads one memoized weight per placement version. The static policy
     isolates the serve path (no re-solves, no placement churn); both
     arms must produce byte-identical metrics JSON — the cache is pure
     memoization — and the cached arm must be faster, full stop. The
     two arms are interleaved, best-of-4, like the checkpoint probe. *)
  let sp_rng = Rng.create 31415 in
  let sp_g = Dmn_graph.Gen.random_geometric sp_rng 48 0.35 in
  let sp_nn = Dmn_graph.Wgraph.n sp_g in
  let sp_objects = 8 in
  let sp_cs = Array.init sp_nn (fun _ -> Rng.float_in sp_rng 0.2 1.0) in
  let { Dmn_workload.Freq.fr = sp_fr; fw = sp_fw } =
    Dmn_workload.Freq.zipf sp_rng ~objects:sp_objects ~n:sp_nn ~requests:(40 * sp_nn) ~s:0.8
      ~write_ratio:0.02
  in
  let sp_inst = I.of_graph sp_g ~cs:sp_cs ~fr:sp_fr ~fw:sp_fw in
  let sp_placement = A.solve sp_inst in
  let sp_copies =
    let acc = ref 0 in
    for x = 0 to sp_objects - 1 do
      acc := !acc + List.length (Dmn_core.Placement.copies sp_placement ~x)
    done;
    !acc
  in
  let sp_events = 60_000 in
  let sp_stream () =
    Dmn_dynamic.Stream.drifting_seq (Rng.create 99) sp_inst ~phases:10
      ~phase_length:(sp_events / 10) ~write_fraction:0.6
  in
  let sp_run serve_cache () =
    En.run
      ~config:{ En.default_config with En.policy = En.Static; epoch = 2000; serve_cache }
      sp_inst sp_placement (sp_stream ())
  in
  let t_cached = ref infinity and t_uncached = ref infinity in
  let r_cached = ref None and r_uncached = ref None in
  for _ = 1 to 4 do
    let r, dt = time_it (sp_run false) in
    if dt < !t_uncached then t_uncached := dt;
    r_uncached := Some r;
    let r, dt = time_it (sp_run true) in
    if dt < !t_cached then t_cached := dt;
    r_cached := Some r
  done;
  let t_cached = !t_cached and t_uncached = !t_uncached in
  let sp_identical =
    En.metrics_json sp_inst (Option.get !r_cached)
    = En.metrics_json sp_inst (Option.get !r_uncached)
  in
  let eps t = float_of_int sp_events /. t in
  let sp_speedup = t_uncached /. t_cached in
  Printf.printf
    "\nserve-path (write-heavy, %d copies over %d objects): uncached %.0f ev/s -> cached %.0f \
     ev/s (%.1fx), metrics identical: %b\n"
    sp_copies sp_objects (eps t_uncached) (eps t_cached) sp_speedup sp_identical;
  if not sp_identical then
    failwith "replay: serve caches changed the metrics JSON (memoization must be pure)";
  if t_cached >= t_uncached then
    failwith "replay: cached serve path is not faster than the uncached baseline";
  record
    [
      ("name", `S "replay-serve-path"); ("n", `I sp_nn); ("objects", `I sp_objects);
      ("placed_copies", `I sp_copies); ("events", `I sp_events); ("write_fraction", `F 0.6);
      ("wall_s_uncached", `F t_uncached); ("wall_s_cached", `F t_cached);
      ("events_per_s_uncached", `F (eps t_uncached)); ("events_per_s_cached", `F (eps t_cached));
      ("speedup", `F sp_speedup); ("identical_metrics_json", `B sp_identical);
      ("cached_faster", `B (t_cached < t_uncached));
    ];
  flush_replay_json ()

(* ------------------------------------------------------------------ *)
(* resolve: incremental re-solve -- dirty filtering and solve cache    *)
(* ------------------------------------------------------------------ *)

let resolve () =
  section "resolve  incremental re-solve: dirty filtering and the solve cache (tentpole PR 6)";
  print_endline
    "The drifting stream dwells in each phase for several epochs, so\n\
     most epoch boundaries see only sampling noise. The full arm\n\
     (--dirty-eps 0) re-solves every active object at every boundary;\n\
     the incremental arm (the CLI default --dirty-eps 0.3) re-solves\n\
     only objects whose normalized frequency drift exceeds the\n\
     threshold. Gates: >=3x fewer solver calls, >=1.5x wall speedup on\n\
     the re-solve policy, total cost within 2% of the full re-solve,\n\
     and byte-identical metrics JSON across 1/2/4 domains in both\n\
     arms. A recurring stream then exercises the per-object solve\n\
     cache: hits replace solver calls without moving a single cost\n\
     float.";
  let module En = Dmn_engine.Engine in
  let record r = replay_records := r :: !replay_records in
  let rng = Rng.create 4242 in
  (* a large sparse network: place_object is superlinear in n while
     serving an event is nearly flat, so at n=128 the re-solve is the
     bottleneck the dirty filter exists to remove *)
  let g = Dmn_graph.Gen.random_geometric rng 128 0.15 in
  let nn = Dmn_graph.Wgraph.n g in
  let objects = 4 in
  let cs = Array.init nn (fun _ -> Rng.float_in rng 2.0 10.0) in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.zipf rng ~objects ~n:nn ~requests:(20 * nn) ~s:1.0 ~write_ratio:0.15
  in
  let inst = I.of_graph g ~cs ~fr ~fw in
  let placement = A.solve inst in
  (* phase boundaries align with epoch boundaries: each phase dwells
     for exactly 6 epochs. The epoch is sized so a dwelling epoch's
     per-hot-node counts average ~50 samples: the normalized L1 drift
     between successive epochs of the same phase is then ~0.1, well
     inside the 0.3 threshold, so 5 of every 6 boundaries are pure
     sampling noise for the dirty filter to absorb *)
  let epoch = 1600 and phases = 8 and epochs_per_phase = 6 in
  let events = phases * epochs_per_phase * epoch in
  let stream () =
    Dmn_dynamic.Stream.drifting_seq (Rng.create 11) inst ~phases
      ~phase_length:(events / phases) ~write_fraction:0.15
  in
  let default_eps = 0.3 (* the CLI default for --dirty-eps *) in
  let config eps = { En.default_config with En.policy = En.Resolve; epoch; dirty_eps = eps } in
  (* actual place_object invocations: successful re-solves (minus the
     ones a cache answered), supervised retries, and exhausted-attempt
     fallbacks all paid for solver calls *)
  let solver_calls (t : En.totals) =
    t.En.resolves + t.En.solve_retries + t.En.solve_fallbacks - t.En.cache_hits
  in
  let t_full = ref infinity and t_incr = ref infinity in
  let r_full = ref None and r_incr = ref None in
  for _ = 1 to 4 do
    let r, dt = time_it (fun () -> En.run ~config:(config 0.0) inst placement (stream ())) in
    if dt < !t_full then t_full := dt;
    r_full := Some r;
    let r, dt =
      time_it (fun () -> En.run ~config:(config default_eps) inst placement (stream ()))
    in
    if dt < !t_incr then t_incr := dt;
    r_incr := Some r
  done;
  let r_full = Option.get !r_full and r_incr = Option.get !r_incr in
  let t_full = !t_full and t_incr = !t_incr in
  let calls_full = solver_calls r_full.En.totals
  and calls_incr = solver_calls r_incr.En.totals in
  let call_ratio = float_of_int calls_full /. float_of_int (max 1 calls_incr) in
  let speedup = t_full /. t_incr in
  let cost_full = En.total_cost r_full.En.totals
  and cost_incr = En.total_cost r_incr.En.totals in
  let cost_margin = (cost_incr -. cost_full) /. cost_full in
  let tbl =
    Tbl.create [ "arm"; "dirty-eps"; "solver calls"; "skipped"; "total cost"; "wall s" ]
  in
  List.iter
    (fun (arm, eps, r, dt) ->
      let t = (r : En.result).En.totals in
      Tbl.add_row tbl
        [
          arm; Printf.sprintf "%g" eps;
          string_of_int (solver_calls t); string_of_int t.En.solve_skipped;
          Tbl.fl2 (En.total_cost t); Printf.sprintf "%.4f" dt;
        ])
    [ ("full", 0.0, r_full, t_full); ("incremental", default_eps, r_incr, t_incr) ];
  Tbl.print tbl;
  Printf.printf
    "\ndirty filter: %.2fx fewer solver calls (%d -> %d), %.2fx wall speedup, cost margin \
     %+.3f%%\n"
    call_ratio calls_full calls_incr speedup (100.0 *. cost_margin);
  if r_incr.En.totals.En.solve_skipped = 0 then
    failwith "resolve: the dirty filter never skipped an object on a dwelling stream";
  if call_ratio < 3.0 then
    failwith
      (Printf.sprintf "resolve: only %.2fx fewer solver calls (gate: >= 3x)" call_ratio);
  if speedup < 1.5 then
    failwith (Printf.sprintf "resolve: wall speedup %.2fx below the 1.5x gate" speedup);
  if cost_margin > 0.02 then
    failwith
      (Printf.sprintf "resolve: incremental cost %.3f%% over the full re-solve (gate: 2%%)"
         (100.0 *. cost_margin));
  record
    [
      ("name", `S "resolve-dirty-filter"); ("n", `I nn); ("objects", `I objects);
      ("events", `I events); ("epoch_size", `I epoch); ("phases", `I phases);
      ("epochs_per_phase", `I epochs_per_phase); ("dirty_eps", `F default_eps);
      ("solver_calls_full", `I calls_full); ("solver_calls_incremental", `I calls_incr);
      ("call_ratio", `F call_ratio); ("skipped", `I r_incr.En.totals.En.solve_skipped);
      ("wall_s_full", `F t_full); ("wall_s_incremental", `F t_incr);
      ("speedup", `F speedup); ("total_cost_full", `F cost_full);
      ("total_cost_incremental", `F cost_incr); ("cost_margin_frac", `F cost_margin);
      ("call_gate_3x", `B (call_ratio >= 3.0)); ("wall_gate_1_5x", `B (speedup >= 1.5));
      ("cost_gate_2pct", `B (cost_margin <= 0.02));
    ];
  (* the dirty set is a pure function of the trace: metrics JSON must
     be byte-identical across domain counts in both arms *)
  let json_at eps domains =
    Pool.with_pool ~domains (fun pool ->
        En.metrics_json inst (En.run ~pool ~config:(config eps) inst placement (stream ())))
  in
  List.iter
    (fun (arm, eps) ->
      let j1 = json_at eps 1 in
      let identical = List.for_all (fun d -> json_at eps d = j1) [ 2; 4 ] in
      Printf.printf "%s arm metrics JSON identical across 1/2/4 domains: %b\n" arm identical;
      if not identical then
        failwith (Printf.sprintf "resolve: %s-arm metrics diverged across domain counts" arm);
      record
        [
          ("name", `S "resolve-domain-identity"); ("arm", `S arm); ("dirty_eps", `F eps);
          ("domains", `S "1,2,4"); ("json_bytes", `I (String.length j1));
          ("identical_metrics_json", `B identical);
        ])
    [ ("full", 0.0); ("incremental", default_eps) ];
  (* solve cache on a recurring regime: the same stationary block
     repeats, so after the first epoch every dirty object's quantized
     frequency row is a cache hit. eps 0 keeps every object dirty --
     the cache, not the filter, must absorb the work -- and the cost
     floats must not move: a hit replays the exact placement the
     solver would recompute *)
  let block = Dmn_dynamic.Stream.stationary (Rng.create 17) inst ~length:epoch in
  let repeats = 8 in
  let recurring () = List.to_seq (List.concat (List.init repeats (fun _ -> block))) in
  let cache_config sc =
    { En.default_config with En.policy = En.Resolve; epoch; dirty_eps = 0.0; solve_cache = sc }
  in
  let t_nocache = ref infinity and t_cache = ref infinity in
  let r_nocache = ref None and r_cache = ref None in
  for _ = 1 to 4 do
    let r, dt = time_it (fun () -> En.run ~config:(cache_config 0) inst placement (recurring ())) in
    if dt < !t_nocache then t_nocache := dt;
    r_nocache := Some r;
    let r, dt = time_it (fun () -> En.run ~config:(cache_config 64) inst placement (recurring ())) in
    if dt < !t_cache then t_cache := dt;
    r_cache := Some r
  done;
  let tn = (Option.get !r_nocache).En.totals and tc = (Option.get !r_cache).En.totals in
  let pure =
    tc.En.serving = tn.En.serving && tc.En.storage = tn.En.storage
    && tc.En.migration = tn.En.migration
  in
  Printf.printf
    "solve cache on a recurring stream: %d hits / %d misses over %d dirty epochs, costs \
     identical: %b (%.4fs -> %.4fs)\n"
    tc.En.cache_hits tc.En.cache_misses repeats pure !t_nocache !t_cache;
  if tc.En.cache_hits = 0 then
    failwith "resolve: the solve cache never hit on a recurring stream";
  if tc.En.cache_hits + tc.En.cache_misses <> tn.En.resolves + tn.En.solve_fallbacks then
    failwith "resolve: cache traffic does not account for the uncached arm's dirty set";
  if not pure then
    failwith "resolve: the solve cache moved a cost float (memoization must be pure)";
  record
    [
      ("name", `S "resolve-solve-cache"); ("repeats", `I repeats); ("epoch_size", `I epoch);
      ("cache_capacity", `I 64); ("cache_hits", `I tc.En.cache_hits);
      ("cache_misses", `I tc.En.cache_misses); ("cache_evictions", `I tc.En.cache_evictions);
      ("solver_calls_uncached", `I (solver_calls tn));
      ("solver_calls_cached", `I (solver_calls tc));
      ("wall_s_uncached", `F !t_nocache); ("wall_s_cached", `F !t_cache);
      ("costs_identical", `B pure);
    ];
  flush_replay_json ()

(* ------------------------------------------------------------------ *)
(* tournament: adversarial scenarios x policies under topology churn   *)
(* ------------------------------------------------------------------ *)

let tournament () =
  section "tournament  adversarial scenarios x policies under topology churn (tentpole PR 7)";
  print_endline
    "Every policy replays the *same* adversarial stream per scenario:\n\
     diurnal (demand cycles between node halves while the heaviest\n\
     links congest), flash (one object spikes 100x), birthdeath (the\n\
     active object set rotates), failures (nodes fail and recover\n\
     under a moving hotspot — requests from dead nodes are dropped,\n\
     objects whose whole copy set dies are emergency-re-replicated).\n\
     Hard gates: resolve beats static on the churn scenarios, and a\n\
     single-edge incremental metric repair beats a full of_graph\n\
     recompute by >= 5x.";
  let module En = Dmn_engine.Engine in
  let module Ad = Dmn_workload.Adversary in
  let record r = replay_records := r :: !replay_records in
  let rng = Rng.create 8128 in
  let n = 28 in
  let g = Dmn_graph.Gen.random_geometric rng n 0.4 in
  let nn = Dmn_graph.Wgraph.n g in
  let objects = 5 in
  let cs = Array.init nn (fun _ -> Rng.float_in rng 2.0 10.0) in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.zipf rng ~objects ~n:nn ~requests:(20 * nn) ~s:1.0 ~write_ratio:0.15
  in
  let inst = I.of_graph g ~cs ~fr ~fw in
  let placement = A.solve inst in
  let events = 6000 and epoch = 250 in
  (* epoch (250) deliberately divides each scenario's phase length
     (1000-1500): the re-solving policy adapts within a phase instead
     of always optimizing for yesterday's demand *)
  let wf = 0.15 in
  let scenarios =
    [
      ( "diurnal",
        true,
        fun () -> Ad.diurnal (Rng.create 7) inst ~days:2 ~day_length:3000 ~write_fraction:wf );
      ( "flash",
        false,
        fun () ->
          Ad.flash_crowd (Rng.create 7) inst ~length:events ~spike_at:(events / 4)
            ~spike_length:(events / 2) ~multiplier:100 ~write_fraction:wf );
      ( "birthdeath",
        false,
        fun () -> Ad.birth_death (Rng.create 7) inst ~length:events ~write_fraction:wf );
      ( "failures",
        true,
        fun () ->
          Ad.failure_repair (Rng.create 7) inst ~phases:6 ~phase_length:1000 ~write_fraction:wf
      );
    ]
  in
  let tbl =
    Tbl.create
      [ "scenario"; "policy"; "serving"; "total"; "dropped"; "emerg"; "topo"; "wall s" ]
  in
  let totals = ref [] in
  List.iter
    (fun (sname, churny, stream) ->
      List.iter
        (fun policy ->
          (* the cache policy keeps per-event state in closures and
             refuses topology items — score it only where it can run *)
          if not (churny && policy = En.Cache) then begin
            let config = { En.default_config with En.policy; epoch } in
            let r, dt = time_it (fun () -> En.run_items ~config inst placement (stream ())) in
            let t = r.En.totals in
            let total = En.total_cost t in
            totals := ((sname, policy), total) :: !totals;
            Tbl.add_row tbl
              [
                sname; En.policy_name policy; Tbl.fl2 t.En.serving; Tbl.fl2 total;
                string_of_int t.En.dropped; string_of_int t.En.emergency;
                string_of_int t.En.topo; Printf.sprintf "%.4f" dt;
              ];
            record
              [
                ("name", `S "tournament"); ("scenario", `S sname);
                ("policy", `S (En.policy_name policy)); ("n", `I nn);
                ("objects", `I objects); ("events", `I t.En.events);
                ("epoch_size", `I epoch); ("serving", `F t.En.serving);
                ("storage", `F t.En.storage); ("migration", `F t.En.migration);
                ("total_cost", `F total); ("dropped", `I t.En.dropped);
                ("emergency", `I t.En.emergency); ("topo_events", `I t.En.topo);
                ("final_copies", `I t.En.final_copies); ("wall_s", `F dt);
              ]
          end)
        [ En.Static; En.Resolve; En.Cache ])
    scenarios;
  Tbl.print tbl;
  (* gate 1: on every scenario that churns the topology, the re-solving
     policy must beat the static placement *)
  List.iter
    (fun (sname, churny, _) ->
      if churny then begin
        let st = List.assoc (sname, En.Static) !totals
        and rs = List.assoc (sname, En.Resolve) !totals in
        let margin = st /. rs in
        Printf.printf "%s: resolve vs static under churn: %.2fx cheaper (%.2f -> %.2f)\n" sname
          margin st rs;
        if rs >= st then
          failwith
            (Printf.sprintf
               "tournament: resolve (%.2f) failed to beat static (%.2f) on the %s churn \
                scenario"
               rs st sname);
        record
          [
            ("name", `S "tournament-resolve-vs-static"); ("scenario", `S sname);
            ("static_total", `F st); ("resolve_total", `F rs); ("margin", `F margin);
            ("resolve_beats_static", `B (rs < st));
          ]
      end)
    scenarios;
  (* cross-domain determinism under churn: the metrics JSON of the
     failures scenario must be byte-identical at 1 and 4 domains *)
  let _, _, failures_stream = List.nth scenarios 3 in
  let json_at domains =
    Pool.with_pool ~domains (fun pool ->
        En.metrics_json inst
          (En.run_items ~pool
             ~config:{ En.default_config with En.policy = En.Resolve; epoch }
             inst placement (failures_stream ())))
  in
  let j1 = json_at 1 in
  let identical = json_at 4 = j1 in
  Printf.printf "churn metrics JSON identical across 1/4 domains: %b\n" identical;
  if not identical then failwith "tournament: churned metrics JSON diverged across domains";
  record
    [
      ("name", `S "tournament-churn-domain-identity"); ("domains", `S "1,4");
      ("json_bytes", `I (String.length j1)); ("identical_metrics_json", `B identical);
    ];
  (* gate 2: incremental metric repair vs full recompute. A single-edge
     event must repair the closure >= 5x faster (on average over a
     representative spread of edges — a maximally central edge can
     invalidate half the rows and legitimately approach a rebuild) than
     Metric.of_graph rebuilds it. Each sampled edge contributes a surge
     (tight-row recompute) and a restore (decrease relaxation); per-event
     average, best of 5 sequences; the full rebuild is best of 5. *)
  let module Mt = Dmn_paths.Metric in
  let module Ch = Dmn_paths.Churn in
  let rg = Dmn_graph.Gen.random_geometric (Rng.create 4242) 96 0.3 in
  let rm = Mt.of_graph rg in
  let all_edges = Array.of_list (Dmn_graph.Wgraph.edges rg) in
  if Array.length all_edges = 0 then failwith "tournament: repair graph has no edges";
  let picks = 8 in
  let sampled =
    Array.init picks (fun i -> all_edges.(i * Array.length all_edges / picks))
  in
  let reps = 2 * picks in
  let t_inc = ref infinity in
  for _ = 1 to 5 do
    let ch = Ch.create rg rm in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun (u, v, w0) ->
        Ch.apply ch (Ch.Edge_weight { u; v; w = w0 *. 3.0 });
        Ch.apply ch (Ch.Edge_weight { u; v; w = w0 }))
      sampled;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
    if dt < !t_inc then t_inc := dt
  done;
  let t_full = ref infinity in
  for _ = 1 to 5 do
    let _, dt = time_it (fun () -> Mt.of_graph rg) in
    if dt < !t_full then t_full := dt
  done;
  let speedup = !t_full /. !t_inc in
  Printf.printf
    "incremental repair on a single-edge event (n = %d): %.3f ms vs full of_graph %.3f ms \
     (%.1fx)\n"
    (Dmn_graph.Wgraph.n rg) (1000.0 *. !t_inc) (1000.0 *. !t_full) speedup;
  if speedup < 5.0 then
    failwith
      (Printf.sprintf
         "tournament: incremental repair is only %.1fx faster than a full recompute (gate: \
          5x)"
         speedup);
  record
    [
      ("name", `S "tournament-incremental-repair"); ("n", `I (Dmn_graph.Wgraph.n rg));
      ("repair_s", `F !t_inc); ("full_recompute_s", `F !t_full); ("speedup", `F speedup);
      ("gate_5x", `B (speedup >= 5.0));
    ];
  flush_replay_json ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "micro  Bechamel benchmarks of the substrates";
  let open Bechamel in
  let rng = Rng.create 5555 in
  let grid = Dmn_graph.Gen.grid 20 20 in
  let er200 = Dmn_graph.Gen.erdos_renyi rng 200 0.05 in
  let metric120 = Dmn_paths.Metric.of_graph (Dmn_graph.Gen.erdos_renyi rng 120 0.1) in
  let tree_inst =
    let n = 200 in
    let g = Dmn_graph.Gen.random_tree rng n in
    let cs = Array.init n (fun _ -> Rng.float_in rng 1.0 20.0) in
    let { Dmn_workload.Freq.fr; fw } =
      Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(4 * n) ~write_fraction:0.3
    in
    I.of_graph g ~cs ~fr ~fw
  in
  let place_inst =
    let n = 60 in
    let g = Dmn_graph.Gen.erdos_renyi rng n 0.15 in
    let cs = Array.init n (fun _ -> Rng.float_in rng 2.0 20.0) in
    let { Dmn_workload.Freq.fr; fw } =
      Dmn_workload.Freq.mix rng ~objects:1 ~n ~total:(5 * n) ~write_fraction:0.25
    in
    I.of_graph g ~cs ~fr ~fw
  in
  let flp =
    let m = Dmn_paths.Metric.of_graph (Dmn_graph.Gen.erdos_renyi rng 100 0.1) in
    Dmn_facility.Flp.create m
      ~opening:(Array.init 100 (fun _ -> Rng.float_in rng 1.0 15.0))
      ~demand:(Array.init 100 (fun _ -> float_of_int (Rng.int rng 5)))
  in
  let terminals = Array.to_list (Rng.sample rng (Array.init 400 (fun i -> i)) 12) in
  let tests =
    Test.make_grouped ~name:"dmnet"
      [
        Test.make ~name:"dijkstra grid-400" (Staged.stage (fun () -> Dmn_paths.Dijkstra.run grid 0));
        Test.make ~name:"metric-closure er-200"
          (Staged.stage (fun () -> Dmn_paths.Metric.of_graph er200));
        Test.make ~name:"mst kruskal er-200" (Staged.stage (fun () -> Dmn_span.Kruskal.mst er200));
        Test.make ~name:"steiner 2-approx grid-400 k=12"
          (Staged.stage (fun () -> Dmn_span.Steiner.approx grid terminals));
        Test.make ~name:"flp mettu-plaxton n=100"
          (Staged.stage (fun () -> Dmn_facility.Mettu_plaxton.solve flp));
        Test.make ~name:"radii n=120"
          (Staged.stage (fun () ->
               Dmn_core.Radii.compute
                 (I.of_metric metric120
                    ~cs:(Array.make 120 5.0)
                    ~fr:[| Array.make 120 1 |]
                    ~fw:[| Array.make 120 1 |])
                 ~x:0));
        Test.make ~name:"krw place n=60" (Staged.stage (fun () -> A.place_object place_inst ~x:0));
        Test.make ~name:"tree dp n=200"
          (Staged.stage (fun () -> Dmn_tree.Tree_solver.place_object tree_inst ~x:0));
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols (List.hd instances) raw in
  let tbl = Tbl.create [ "benchmark"; "time per run" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Tbl.add_row tbl [ name; pretty ])
    (List.sort compare !rows);
  Tbl.print tbl

(* ------------------------------------------------------------------ *)
(* soak: the serving daemon under sustained load                       *)
(* ------------------------------------------------------------------ *)

let soak () =
  let module En = Dmn_engine.Engine in
  let module St = Dmn_dynamic.Stream in
  let module Srv = Dmn_server.Server in
  section "soak  online serving daemon: sustained throughput, RSS, shedding (tentpole PR 8)";
  print_endline
    "The daemon's batcher (Dmn_server.Core) serves an endless stationary\n\
     stream for DMNET_SOAK_SECONDS wall-clock seconds (default 6; the CI\n\
     soak job sets 60), half without and half with journaling +\n\
     checkpointing, and must sustain >= 0.5x the offline replay's\n\
     throughput on the same engine configuration (advisory bar: 0.8x).\n\
     RSS must stay bounded (no unbounded growth across the run), the\n\
     batcher must reproduce the replay byte-for-byte before any timing\n\
     counts, and overload must shed exactly the overflow — counted,\n\
     never silent.";
  let record r = replay_records := r :: !replay_records in
  let soak_s =
    match Sys.getenv_opt "DMNET_SOAK_SECONDS" with
    | Some s -> ( match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> 6.0)
    | None -> 6.0
  in
  let rng = Rng.create 4242 in
  let g = Dmn_graph.Gen.random_geometric rng 100 0.3 in
  let nn = Dmn_graph.Wgraph.n g in
  let cs = Array.init nn (fun _ -> Rng.float_in rng 2.0 12.0) in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.zipf rng ~objects:12 ~n:nn ~requests:(30 * nn) ~s:0.9 ~write_ratio:0.15
  in
  let inst = I.of_graph g ~cs ~fr ~fw in
  let placement = A.solve inst in
  let config =
    { En.default_config with En.policy = En.Resolve; epoch = 2000; serve_cache = true }
  in
  (* byte-identity first: timing a diverging path would be meaningless *)
  let small =
    List.of_seq (St.items_of_events (St.stationary_seq (Rng.create 9) inst ~length:6000))
  in
  let reference = En.metrics_json inst (En.run_items ~config inst placement (List.to_seq small)) in
  let core = Srv.Core.create { Srv.default_config with Srv.engine = config } inst placement in
  List.iter (fun it -> ignore (Srv.Core.push core it)) small;
  Srv.Core.maybe_step core;
  Srv.Core.flush core;
  if reference <> En.metrics_json inst (Srv.Core.result core) then
    failwith "soak: the daemon batcher diverged from the replay engine";
  (* offline baseline: the cached replay serve path, same configuration *)
  let base_events = 30_000 in
  let base_items () =
    St.items_of_events (St.stationary_seq (Rng.create 7) inst ~length:base_events)
  in
  let _, t_base = time_it (fun () -> En.run_items ~config inst placement (base_items ())) in
  let eps_base = float_of_int base_events /. t_base in
  (* sustained serving through the daemon core *)
  let run_core ~durable seconds =
    let journal = temp_dir "dmnet-soak-journal" in
    let ckpt = temp_dir "dmnet-soak-ckpt" in
    Fun.protect
      ~finally:(fun () -> List.iter rm_rf [ journal; ckpt ])
      (fun () ->
        let cfg =
          {
            Srv.default_config with
            Srv.engine = config;
            journal = (if durable then Some journal else None);
            ckpt = (if durable then Some { En.dir = ckpt; every = 4; keep = 3 } else None);
            queue_cap = 65536;
          }
        in
        let core = Srv.Core.create cfg inst placement in
        let src =
          ref (St.items_of_events (St.stationary_seq (Rng.create 11) inst ~length:max_int))
        in
        let t0 = Unix.gettimeofday () in
        let early_rss = ref 0 in
        let peak = ref (Srv.rss_kb ()) in
        let early_jbytes = ref 0 in
        let peak_jbytes = ref 0 in
        while Unix.gettimeofday () -. t0 < seconds do
          for _ = 1 to config.En.epoch do
            match Seq.uncons !src with
            | Some (it, rest) ->
                src := rest;
                ignore (Srv.Core.push core it)
            | None -> ()
          done;
          Srv.Core.maybe_step core;
          let r = Srv.rss_kb () in
          if r > !peak then peak := r;
          let jb = Srv.Core.journal_bytes core in
          if jb > !peak_jbytes then peak_jbytes := jb;
          if !early_rss = 0 && Unix.gettimeofday () -. t0 > seconds /. 4.0 then begin
            early_rss := r;
            early_jbytes := jb
          end
        done;
        let dt = Unix.gettimeofday () -. t0 in
        let served = Srv.Core.served core in
        let epochs = Srv.Core.epochs core in
        let segments = Srv.Core.journal_segments core in
        Srv.Core.shutdown core;
        ( served, epochs, dt, !peak,
          (if !early_rss = 0 then !peak else !early_rss),
          !peak_jbytes, !early_jbytes, segments ))
  in
  let served_plain, _, t_plain, _, _, _, _, _ = run_core ~durable:false (soak_s /. 2.0) in
  let served_durable, epochs_durable, t_durable, peak_kb, early_kb, peak_jbytes, early_jbytes,
      segments_durable =
    run_core ~durable:true (soak_s /. 2.0)
  in
  let eps_plain = float_of_int served_plain /. t_plain in
  let eps_durable = float_of_int served_durable /. t_durable in
  let ckpt_overhead = Float.max 0.0 (1.0 -. (eps_durable /. eps_plain)) in
  (* overload: push far past the bound without serving; the overflow is
     shed and counted, the accepted prefix still serves *)
  let shed_cap = 256 in
  let burst = 5000 in
  let shed_core =
    Srv.Core.create
      { Srv.default_config with Srv.engine = config; queue_cap = shed_cap }
      inst placement
  in
  List.iter (fun it -> ignore (Srv.Core.push shed_core it))
    (List.of_seq (St.items_of_events (St.stationary_seq (Rng.create 13) inst ~length:burst)));
  let shed_count = Srv.Core.shed shed_core in
  Srv.Core.flush shed_core;
  let shed_served = Srv.Core.served shed_core in
  Srv.Core.shutdown shed_core;
  if shed_count <> burst - shed_cap || shed_served <> shed_cap then
    failwith
      (Printf.sprintf "soak: shedding accounting broken (shed %d of %d, served %d, cap %d)"
         shed_count burst shed_served shed_cap);
  Printf.printf
    "\nbaseline replay %.0f ev/s; daemon %.0f ev/s plain, %.0f ev/s with journal+ckpt \
     (overhead %.1f%%, %d epochs); RSS early %d kB -> peak %d kB; journal %d B early -> %d B \
     peak across %d live segment(s); shed %d of a %d burst at cap %d\n"
    eps_base eps_plain eps_durable (100.0 *. ckpt_overhead) epochs_durable early_kb peak_kb
    early_jbytes peak_jbytes segments_durable shed_count burst shed_cap;
  let ratio = eps_durable /. eps_base in
  if ratio < 0.5 then
    failwith
      (Printf.sprintf "soak: daemon throughput %.0f ev/s is under 0.5x the replay baseline %.0f"
         eps_durable eps_base);
  if ratio < 0.8 then
    Printf.printf "soak: WARNING: daemon at %.2fx the replay baseline (advisory bar 0.8x)\n" ratio;
  if float_of_int peak_kb > (1.5 *. float_of_int early_kb) +. 50_000.0 then
    failwith
      (Printf.sprintf "soak: RSS grew from %d kB to %d kB over the run (unbounded growth)"
         early_kb peak_kb);
  (* segment pruning keeps journal disk usage bounded: the peak may not
     run away from the quarter-time mark (rotation granularity slack) *)
  if
    early_jbytes > 0
    && float_of_int peak_jbytes > (2.0 *. float_of_int early_jbytes) +. 8_000_000.0
  then
    failwith
      (Printf.sprintf "soak: journal grew from %d B to %d B over the run (pruning broken)"
         early_jbytes peak_jbytes);
  record
    [
      ("name", `S "serve-soak"); ("n", `I nn); ("objects", `I 12);
      ("soak_s", `F soak_s); ("epoch", `I config.En.epoch);
      ("events_per_s_replay", `F eps_base); ("events_per_s_daemon", `F eps_plain);
      ("events_per_s_daemon_durable", `F eps_durable); ("throughput_ratio", `F ratio);
      ("checkpoint_overhead_frac", `F ckpt_overhead); ("epochs_durable", `I epochs_durable);
      ("early_rss_kb", `I early_kb); ("peak_rss_kb", `I peak_kb);
      ("early_journal_bytes", `I early_jbytes); ("peak_journal_bytes", `I peak_jbytes);
      ("journal_segments", `I segments_durable);
      ("journal_bytes_bounded", `B true);
      ("shed_events", `I shed_count); ("shed_burst", `I burst); ("shed_cap", `I shed_cap);
      ("identical_metrics_json", `B true);
    ];
  flush_replay_json ()

(* ------------------------------------------------------------------ *)
(* chaos: disk-fault soak — kill at an injected fault, resume, compare *)
(* ------------------------------------------------------------------ *)

let chaos () =
  let module En = Dmn_engine.Engine in
  let module St = Dmn_dynamic.Stream in
  let module Srv = Dmn_server.Server in
  let module Cs = Dmn_core.Ckpt_store in
  let module J = Dmn_core.Serial.Trace.Journal in
  section "chaos  disk faults: kill mid-soak, resume byte-identically (tentpole PR 9)";
  print_endline
    "The daemon core ingests a stream with deterministic disk-fault\n\
     injection armed on the journal and checkpoint write paths. The\n\
     first injected failure \"kills\" the process (the core is abandoned\n\
     without shutdown — only fsynced state survives). The surviving\n\
     journal chain + newest valid checkpoint generation must then\n\
     produce byte-identical metrics two independent ways — offline\n\
     replay of the journal directory, and a resumed daemon core — at 1\n\
     and 4 domains, and fsck must pass over the surviving state.";
  let record r = replay_records := r :: !replay_records in
  let rng = Rng.create 515 in
  let g = Dmn_graph.Gen.random_geometric rng 60 0.35 in
  let nn = Dmn_graph.Wgraph.n g in
  let cs = Array.init nn (fun _ -> Rng.float_in rng 1.0 8.0) in
  let { Dmn_workload.Freq.fr; fw } =
    Dmn_workload.Freq.zipf rng ~objects:6 ~n:nn ~requests:(20 * nn) ~s:0.9 ~write_ratio:0.2
  in
  let inst = I.of_graph g ~cs ~fr ~fw in
  let placement = A.solve inst in
  let config =
    { En.default_config with En.policy = En.Resolve; epoch = 200; serve_cache = true }
  in
  let items =
    List.of_seq (St.items_of_events (St.stationary_seq (Rng.create 21) inst ~length:20_000))
  in
  let clean_prefix = 4_000 in
  let fault_points =
    [
      "trace.append.write"; "trace.append.sync"; "trace.append.short"; "serial.write.write";
      "serial.write.fsync"; "serial.write.rename";
    ]
  in
  let run_at domains =
    let journal = temp_dir "dmnet-chaos-journal" in
    let ckpt = temp_dir "dmnet-chaos-ckpt" in
    Fun.protect
      ~finally:(fun () ->
        Fault.disable ();
        List.iter rm_rf [ journal; ckpt ])
      (fun () ->
        Pool.with_pool ~domains (fun pool ->
            let cfg =
              {
                Srv.default_config with
                Srv.engine = config;
                journal = Some journal;
                ckpt = Some { En.dir = ckpt; every = 2; keep = 3 };
                queue_cap = 65536;
              }
            in
            let core = Srv.Core.create ~pool cfg inst placement in
            let fed = ref 0 in
            let crashed = ref false in
            (try
               List.iter
                 (fun it ->
                   incr fed;
                   (* arm the faults only past a clean prefix, so at
                      least one durable checkpoint exists at the kill *)
                   if !fed = clean_prefix then begin
                     Fault.configure ~seed:99 ~rate:0.002 ~points:fault_points ();
                     Fault.reset_counters ()
                   end;
                   ignore (Srv.Core.push core it);
                   if !fed mod 1000 = 0 then Srv.Core.maybe_step core)
                 items;
               Srv.Core.maybe_step core
             with Err.Error _ -> crashed := true);
            Fault.disable ();
            if not !crashed then
              failwith "chaos: no disk fault fired during the soak (raise the rate)";
            (* kill: abandon the core; only fsynced state survives *)
            let loaded = Cs.load ckpt in
            let offline =
              En.metrics_json inst
                (En.run_trace ~pool ~config ~resume:loaded.Cs.ckpt inst placement journal)
            in
            let resumed_core =
              Srv.Core.create ~pool { cfg with Srv.resume = Some ckpt } inst placement
            in
            Srv.Core.maybe_step resumed_core;
            Srv.Core.flush resumed_core;
            let resumed = En.metrics_json inst (Srv.Core.result resumed_core) in
            let fallbacks = Srv.Core.ckpt_fallbacks resumed_core in
            Srv.Core.shutdown resumed_core;
            if resumed <> offline then
              failwith
                (Printf.sprintf
                   "chaos: resumed daemon diverged from offline replay at %d domains" domains);
            (* the surviving state must pass fsck (torn tails and
               unreferenced generations are benign kill artifacts) *)
            (match Cs.fsck_res ckpt with
            | Ok _ -> ()
            | Error e -> failwith ("chaos: checkpoint fsck failed: " ^ Err.to_string e));
            (match J.fsck_res journal with
            | Ok _ -> ()
            | Error e -> failwith ("chaos: journal fsck failed: " ^ Err.to_string e));
            Printf.printf
              "  %d domain(s): killed after %d pushed items, resumed from gen %d \
               (%d fallback(s)); resumed == offline replay: true\n"
              domains !fed loaded.Cs.generation fallbacks;
            (!fed, loaded.Cs.generation, fallbacks, resumed)))
  in
  let fed1, gen1, fb1, json1 = run_at 1 in
  let fed4, _, _, json4 = run_at 4 in
  if fed1 <> fed4 then
    failwith
      (Printf.sprintf "chaos: fault schedule diverged across domain counts (%d vs %d items)"
         fed1 fed4);
  if json1 <> json4 then failwith "chaos: resumed metrics diverged across 1 vs 4 domains";
  record
    [
      ("name", `S "disk-chaos"); ("n", `I nn); ("objects", `I 6);
      ("items_at_kill", `I fed1); ("resume_generation", `I gen1);
      ("ckpt_fallbacks", `I fb1); ("resumed_equals_offline", `B true);
      ("identical_across_domains", `B (json1 = json4)); ("fault_rate", `F 0.002);
      ("fault_seed", `I 99);
    ];
  flush_replay_json ()

(* ------------------------------------------------------------------ *)

let all =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6); ("e7", e7);
    ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("scale", scale); ("replay", replay); ("resolve", resolve); ("tournament", tournament); ("soak", soak); ("chaos", chaos); ("micro", micro);
  ]

let () =
  let requested = match Array.to_list Sys.argv with _ :: rest when rest <> [] -> rest | _ -> List.map fst all in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (have: %s)\n" name
            (String.concat " " (List.map fst all));
          exit 2)
    requested
