lib/lp/simplex.mli:
