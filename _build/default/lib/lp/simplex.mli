(** A dense two-phase primal simplex solver.

    Built as a substrate for the LP-rounding facility-location
    algorithms the paper cites for its phase 1 (Shmoys–Tardos–Aardal;
    no LP solver is available offline). Designed for the small dense
    relaxations that arise there — hundreds of variables and
    constraints — not for sparse industrial LPs.

    Problems are over variables [x >= 0]. Bland's anti-cycling rule is
    used throughout, with a small numeric tolerance. *)

type sense = Le | Ge | Eq

type problem = {
  minimize : bool;
  objective : float array;  (** length = number of variables *)
  constraints : (float array * sense * float) list;
      (** each [(row, sense, rhs)]; rows must match the variable count *)
}

type outcome =
  | Optimal of { value : float; x : float array }
  | Infeasible
  | Unbounded

(** [solve p] runs two-phase simplex. @raise Invalid_argument on shape
    errors. *)
val solve : problem -> outcome

(** Convenience: [minimize ~objective ~constraints] /
    [maximize ~objective ~constraints]. *)
val minimize : objective:float array -> constraints:(float array * sense * float) list -> outcome

val maximize : objective:float array -> constraints:(float array * sense * float) list -> outcome
