type sense = Le | Ge | Eq

type problem = {
  minimize : bool;
  objective : float array;
  constraints : (float array * sense * float) list;
}

type outcome =
  | Optimal of { value : float; x : float array }
  | Infeasible
  | Unbounded

let tol = 1e-9

(* Dense tableau:
     t.(i).(j)   for i < m: constraint rows (coefficients, rhs last)
     t.(m)       objective row (reduced costs, -value last)
   basis.(i) = column basic in row i. *)
type tableau = {
  t : float array array;
  basis : int array;
  m : int;  (* rows *)
  cols : int;  (* columns excluding rhs *)
}

let pivot tab ~row ~col =
  let { t; basis; m; cols } = tab in
  let p = t.(row).(col) in
  for j = 0 to cols do
    t.(row).(j) <- t.(row).(j) /. p
  done;
  for i = 0 to m do
    if i <> row then begin
      let f = t.(i).(col) in
      if Float.abs f > 0.0 then
        for j = 0 to cols do
          t.(i).(j) <- t.(i).(j) -. (f *. t.(row).(j))
        done
    end
  done;
  basis.(row) <- col

(* Bland's rule: entering = lowest-index column with negative reduced
   cost; leaving = lexicographic min ratio (ties to the lowest basis
   index). [allowed] filters candidate entering columns. *)
let rec iterate tab allowed =
  let { t; basis; m; cols } = tab in
  let entering = ref (-1) in
  (try
     for j = 0 to cols - 1 do
       if allowed j && t.(m).(j) < -.tol then begin
         entering := j;
         raise Exit
       end
     done
   with Exit -> ());
  if !entering < 0 then `Optimal
  else begin
    let col = !entering in
    let row = ref (-1) and best = ref infinity in
    for i = 0 to m - 1 do
      if t.(i).(col) > tol then begin
        let ratio = t.(i).(cols) /. t.(i).(col) in
        if
          ratio < !best -. tol
          || (Float.abs (ratio -. !best) <= tol && (!row < 0 || basis.(i) < basis.(!row)))
        then begin
          best := ratio;
          row := i
        end
      end
    done;
    if !row < 0 then `Unbounded
    else begin
      pivot tab ~row:!row ~col;
      iterate tab allowed
    end
  end

let solve p =
  let nvars = Array.length p.objective in
  List.iter
    (fun (row, _, _) ->
      if Array.length row <> nvars then invalid_arg "Simplex.solve: row length mismatch")
    p.constraints;
  let cons = Array.of_list p.constraints in
  let m = Array.length cons in
  (* normalize rhs >= 0 *)
  let cons =
    Array.map
      (fun (row, sense, rhs) ->
        if rhs < 0.0 then
          ( Array.map (fun x -> -.x) row,
            (match sense with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.rhs )
        else (Array.copy row, sense, rhs))
      cons
  in
  (* column layout: [0, nvars) structural; then one slack/surplus per
     inequality; then artificials where needed *)
  let n_slack = Array.fold_left (fun acc (_, s, _) -> acc + match s with Eq -> 0 | _ -> 1) 0 cons in
  let needs_artificial = Array.map (fun (_, s, _) -> s <> Le) cons in
  let n_art = Array.fold_left (fun acc b -> acc + if b then 1 else 0) 0 needs_artificial in
  let cols = nvars + n_slack + n_art in
  let t = Array.make_matrix (m + 1) (cols + 1) 0.0 in
  let basis = Array.make m (-1) in
  let slack_idx = ref nvars and art_idx = ref (nvars + n_slack) in
  let artificial_cols = ref [] in
  Array.iteri
    (fun i (row, sense, rhs) ->
      Array.blit row 0 t.(i) 0 nvars;
      t.(i).(cols) <- rhs;
      (match sense with
      | Le ->
          t.(i).(!slack_idx) <- 1.0;
          basis.(i) <- !slack_idx;
          incr slack_idx
      | Ge ->
          t.(i).(!slack_idx) <- -1.0;
          incr slack_idx
      | Eq -> ());
      if needs_artificial.(i) then begin
        t.(i).(!art_idx) <- 1.0;
        basis.(i) <- !art_idx;
        artificial_cols := !art_idx :: !artificial_cols;
        incr art_idx
      end)
    cons;
  let tab = { t; basis; m; cols } in
  let is_artificial = Array.make cols false in
  List.iter (fun j -> is_artificial.(j) <- true) !artificial_cols;
  (* ---- phase 1 ---- *)
  if n_art > 0 then begin
    (* objective: sum of artificials; canonicalize over basic rows *)
    for j = 0 to cols do
      t.(m).(j) <- 0.0
    done;
    List.iter (fun j -> t.(m).(j) <- 1.0) !artificial_cols;
    for i = 0 to m - 1 do
      if is_artificial.(basis.(i)) then
        for j = 0 to cols do
          t.(m).(j) <- t.(m).(j) -. t.(i).(j)
        done
    done;
    (match iterate tab (fun _ -> true) with
    | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
    | `Optimal -> ());
    if Float.abs t.(m).(cols) > 1e-7 then raise Exit
  end;
  (* drive any residual zero-level artificials out of the basis *)
  for i = 0 to m - 1 do
    if basis.(i) >= 0 && is_artificial.(basis.(i)) then begin
      let found = ref false in
      for j = 0 to cols - 1 do
        if (not !found) && (not is_artificial.(j)) && Float.abs t.(i).(j) > 1e-7 then begin
          pivot tab ~row:i ~col:j;
          found := true
        end
      done
      (* a fully-zero row is redundant; leaving the artificial basic at
         level 0 is harmless as long as it can never re-enter *)
    end
  done;
  (* ---- phase 2 ---- *)
  let sign = if p.minimize then 1.0 else -1.0 in
  for j = 0 to cols do
    t.(m).(j) <- 0.0
  done;
  for j = 0 to nvars - 1 do
    t.(m).(j) <- sign *. p.objective.(j)
  done;
  for i = 0 to m - 1 do
    let b = basis.(i) in
    if b >= 0 && Float.abs t.(m).(b) > 0.0 then begin
      let f = t.(m).(b) in
      for j = 0 to cols do
        t.(m).(j) <- t.(m).(j) -. (f *. t.(i).(j))
      done
    end
  done;
  match iterate tab (fun j -> not is_artificial.(j)) with
  | `Unbounded -> Unbounded
  | `Optimal ->
      let x = Array.make nvars 0.0 in
      for i = 0 to m - 1 do
        if basis.(i) >= 0 && basis.(i) < nvars then x.(basis.(i)) <- t.(i).(cols)
      done;
      let value = ref 0.0 in
      for j = 0 to nvars - 1 do
        value := !value +. (p.objective.(j) *. x.(j))
      done;
      Optimal { value = !value; x }

let solve p = try solve p with Exit -> Infeasible

let minimize ~objective ~constraints = solve { minimize = true; objective; constraints }
let maximize ~objective ~constraints = solve { minimize = false; objective; constraints }
