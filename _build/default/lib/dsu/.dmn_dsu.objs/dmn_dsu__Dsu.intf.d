lib/dsu/dsu.mli:
