lib/dsu/dsu.ml: Array
