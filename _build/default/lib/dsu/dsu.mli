(** Disjoint-set union (union-find) with union by rank and path
    compression; near-constant amortized operations. *)

type t

(** [create n] makes [n] singleton sets [0 .. n-1]. *)
val create : int -> t

(** [find t x] is the canonical representative of [x]'s set. *)
val find : t -> int -> int

(** [union t x y] merges the two sets; returns [false] when [x] and [y]
    were already joined. *)
val union : t -> int -> int -> bool

(** [same t x y] tests membership in one set. *)
val same : t -> int -> int -> bool

(** [count t] is the current number of disjoint sets. *)
val count : t -> int

(** [size t x] is the cardinality of [x]'s set. *)
val size : t -> int -> int
