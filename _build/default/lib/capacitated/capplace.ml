open Dmn_paths
module I = Dmn_core.Instance
module P = Dmn_core.Placement

type t = { inst : I.t; capacity : int array; include_writes : bool }

let create ?(include_writes = false) inst ~capacity =
  let n = I.n inst in
  if Array.length capacity <> n then invalid_arg "Capplace.create: capacity length mismatch";
  Array.iter (fun c -> if c < 0 then invalid_arg "Capplace.create: negative capacity") capacity;
  let total = Array.fold_left ( + ) 0 capacity in
  if total < 1 then invalid_arg "Capplace.create: no capacity at all";
  (* each object needs one slot somewhere; single-slot nodes can host
     only one object each *)
  if I.objects inst > total then invalid_arg "Capplace.create: infeasible (objects > capacity)";
  { inst; capacity; include_writes }

let usage t p =
  let use = Array.make (I.n t.inst) 0 in
  for x = 0 to P.objects p - 1 do
    List.iter (fun v -> use.(v) <- use.(v) + 1) (P.copies p ~x)
  done;
  use

let validate t p =
  if P.objects p <> I.objects t.inst then Error "object count mismatch"
  else begin
    let use = usage t p in
    let bad = ref None in
    Array.iteri
      (fun v u ->
        if u > t.capacity.(v) then
          bad := Some (Printf.sprintf "node %d holds %d > capacity %d" v u t.capacity.(v)))
      use;
    match !bad with Some e -> Error e | None -> Ok ()
  end

let object_cost t ~x copies =
  if t.include_writes then Dmn_core.Cost.total_mst t.inst ~x copies
  else begin
    let m = I.metric t.inst in
    let storage = List.fold_left (fun acc v -> acc +. I.cs t.inst v) 0.0 copies in
    let read = ref storage in
    for v = 0 to I.n t.inst - 1 do
      let c = I.reads t.inst ~x v in
      if c > 0 then begin
        let _, d = Metric.nearest m v copies in
        read := !read +. (float_of_int c *. d)
      end
    done;
    !read
  end

let cost t p =
  let acc = ref 0.0 in
  for x = 0 to P.objects p - 1 do
    acc := !acc +. object_cost t ~x (P.copies p ~x)
  done;
  !acc

(* Greedy: each object first claims its best feasible node (by demand-
   weighted cost), in order of decreasing demand; then free slots are
   filled by the best (object, node) marginal improvement. *)
let greedy t =
  let n = I.n t.inst and k = I.objects t.inst in
  let use = Array.make n 0 in
  let copies = Array.make k [] in
  let free v = use.(v) < t.capacity.(v) in
  let order =
    List.init k Fun.id
    |> List.sort (fun a b -> compare (I.total_reads t.inst ~x:b, a) (I.total_reads t.inst ~x:a, b))
  in
  List.iter
    (fun x ->
      let best = ref (-1) and best_cost = ref infinity in
      for v = 0 to n - 1 do
        if free v then begin
          let c = object_cost t ~x [ v ] in
          if c < !best_cost then begin
            best_cost := c;
            best := v
          end
        end
      done;
      if !best < 0 then invalid_arg "Capplace.greedy: ran out of capacity";
      copies.(x) <- [ !best ];
      use.(!best) <- use.(!best) + 1)
    order;
  let improved = ref true in
  while !improved do
    improved := false;
    let best_gain = ref 1e-9 and best_x = ref (-1) and best_v = ref (-1) in
    for x = 0 to k - 1 do
      let current = object_cost t ~x copies.(x) in
      for v = 0 to n - 1 do
        if free v && not (List.mem v copies.(x)) then begin
          let gain = current -. object_cost t ~x (v :: copies.(x)) in
          if gain > !best_gain then begin
            best_gain := gain;
            best_x := x;
            best_v := v
          end
        end
      done
    done;
    if !best_x >= 0 then begin
      copies.(!best_x) <- List.sort compare (!best_v :: copies.(!best_x));
      use.(!best_v) <- use.(!best_v) + 1;
      improved := true
    end
  done;
  P.make copies

let local_search ?(max_iters = 500) t =
  let n = I.n t.inst and k = I.objects t.inst in
  let p = greedy t in
  let copies = Array.init k (fun x -> P.copies p ~x) in
  let use = Array.make n 0 in
  Array.iter (List.iter (fun v -> use.(v) <- use.(v) + 1)) copies;
  let free v = use.(v) < t.capacity.(v) in
  let improved = ref true and iters = ref 0 in
  while !improved && !iters < max_iters do
    improved := false;
    incr iters;
    (* drop a redundant copy *)
    for x = 0 to k - 1 do
      if List.length copies.(x) > 1 then
        List.iter
          (fun v ->
            let rest = List.filter (fun u -> u <> v) copies.(x) in
            if rest <> [] && object_cost t ~x rest < object_cost t ~x copies.(x) -. 1e-12 then begin
              copies.(x) <- rest;
              use.(v) <- use.(v) - 1;
              improved := true
            end)
          copies.(x)
    done;
    (* relocate a copy to a free slot *)
    for x = 0 to k - 1 do
      List.iter
        (fun v ->
          if List.mem v copies.(x) then begin
          let rest = List.filter (fun u -> u <> v) copies.(x) in
          let current = object_cost t ~x copies.(x) in
          for u = 0 to n - 1 do
            if free u && (not (List.mem u copies.(x)))
               && object_cost t ~x (u :: rest) < current -. 1e-12
            then begin
              copies.(x) <- List.sort compare (u :: rest);
              use.(v) <- use.(v) - 1;
              use.(u) <- use.(u) + 1;
              improved := true
            end
          done
          end)
        copies.(x)
    done;
    (* swap copies of two objects across two full nodes *)
    for x1 = 0 to k - 1 do
      for x2 = x1 + 1 to k - 1 do
        List.iter
          (fun v1 ->
            List.iter
              (fun v2 ->
                if v1 <> v2 && List.mem v1 copies.(x1) && List.mem v2 copies.(x2)
                   && (not (List.mem v2 copies.(x1)))
                   && not (List.mem v1 copies.(x2))
                then begin
                  let c1 = object_cost t ~x:x1 copies.(x1)
                  and c2 = object_cost t ~x:x2 copies.(x2) in
                  let n1 = v2 :: List.filter (fun u -> u <> v1) copies.(x1) in
                  let n2 = v1 :: List.filter (fun u -> u <> v2) copies.(x2) in
                  let c1' = object_cost t ~x:x1 n1 and c2' = object_cost t ~x:x2 n2 in
                  if c1' +. c2' < c1 +. c2 -. 1e-12 then begin
                    copies.(x1) <- List.sort compare n1;
                    copies.(x2) <- List.sort compare n2;
                    improved := true
                  end
                end)
              copies.(x2))
          copies.(x1)
      done
    done
  done;
  P.make copies

let exact t =
  let n = I.n t.inst and k = I.objects t.inst in
  if k * n > 18 then invalid_arg "Capplace.exact: too many placement slots";
  (* DFS over objects; each object picks a non-empty subset of nodes
     respecting residual capacities *)
  let use = Array.make n 0 in
  let best = ref None and best_cost = ref infinity in
  let chosen = Array.make k [] in
  let rec subsets x v acc =
    if v = n then begin
      if acc <> [] then begin
        chosen.(x) <- List.rev acc;
        place (x + 1)
      end
    end
    else begin
      subsets x (v + 1) acc;
      if use.(v) < t.capacity.(v) then begin
        use.(v) <- use.(v) + 1;
        subsets x (v + 1) (v :: acc);
        use.(v) <- use.(v) - 1
      end
    end
  and place x =
    if x = k then begin
      let total = ref 0.0 in
      for x = 0 to k - 1 do
        total := !total +. object_cost t ~x chosen.(x)
      done;
      if !total < !best_cost then begin
        best_cost := !total;
        best := Some (Array.copy chosen)
      end
    end
    else subsets x 0 []
  in
  place 0;
  match !best with
  | Some arr -> (P.make arr, !best_cost)
  | None -> invalid_arg "Capplace.exact: infeasible"

let lp_bound t =
  if t.include_writes then invalid_arg "Capplace.lp_bound: read-only model only";
  let n = I.n t.inst and k = I.objects t.inst in
  if k * n > 120 then invalid_arg "Capplace.lp_bound: LP too large";
  (* variables: y_xi at [x*n + i]; x_xij at [k*n + x*n*n + i*n + j] *)
  let m = I.metric t.inst in
  let nv = (k * n) + (k * n * n) in
  let y x i = (x * n) + i in
  let xi x i j = (k * n) + (x * n * n) + (i * n) + j in
  let objective = Array.make nv 0.0 in
  for x = 0 to k - 1 do
    for i = 0 to n - 1 do
      objective.(y x i) <- (if I.cs t.inst i = infinity then 1e12 else I.cs t.inst i);
      for j = 0 to n - 1 do
        objective.(xi x i j) <- float_of_int (I.reads t.inst ~x j) *. Metric.d m i j
      done
    done
  done;
  let constraints = ref [] in
  for x = 0 to k - 1 do
    (* each object fully assigned from each reading client *)
    for j = 0 to n - 1 do
      if I.reads t.inst ~x j > 0 then begin
        let row = Array.make nv 0.0 in
        for i = 0 to n - 1 do
          row.(xi x i j) <- 1.0
        done;
        constraints := (row, Dmn_lp.Simplex.Eq, 1.0) :: !constraints;
        for i = 0 to n - 1 do
          let row = Array.make nv 0.0 in
          row.(xi x i j) <- 1.0;
          row.(y x i) <- -1.0;
          constraints := (row, Dmn_lp.Simplex.Le, 0.0) :: !constraints
        done
      end
    done;
    (* at least one (fractional) copy per object *)
    let row = Array.make nv 0.0 in
    for i = 0 to n - 1 do
      row.(y x i) <- 1.0
    done;
    constraints := (row, Dmn_lp.Simplex.Ge, 1.0) :: !constraints
  done;
  (* capacities couple the objects *)
  for i = 0 to n - 1 do
    let row = Array.make nv 0.0 in
    for x = 0 to k - 1 do
      row.(y x i) <- 1.0
    done;
    constraints := (row, Dmn_lp.Simplex.Le, float_of_int t.capacity.(i)) :: !constraints
  done;
  match Dmn_lp.Simplex.minimize ~objective ~constraints:(List.rev !constraints) with
  | Dmn_lp.Simplex.Optimal { value; _ } -> value
  | Dmn_lp.Simplex.Infeasible -> invalid_arg "Capplace.lp_bound: LP infeasible"
  | Dmn_lp.Simplex.Unbounded -> invalid_arg "Capplace.lp_bound: LP unbounded"
