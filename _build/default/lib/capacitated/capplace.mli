(** Capacitated data placement — the model of Baev–Rajaraman (SODA
    2001), which the paper's related-work section positions against its
    own: read requests only, and each node can hold at most
    [capacity v] copies across {e all} objects, so objects are no
    longer independent.

    Costs follow the same metric: a copy on [v] pays [cs v] and reads
    travel to the nearest copy of their object. Every object needs at
    least one copy and every node at most [capacity v] copies, so an
    instance is feasible iff [sum capacity >= 1] per object... i.e.
    [objects <= sum_v capacity v].

    Provided: feasibility/validation, a greedy marginal-gain solver, a
    swap/move local search, an exhaustive optimum for tiny instances,
    and an LP lower bound on the in-repo simplex. *)

type t = {
  inst : Dmn_core.Instance.t;
  capacity : int array;
  include_writes : bool;
}

(** [create ?include_writes inst ~capacity] validates shapes,
    non-negative capacities and global feasibility. By default writes
    are ignored (Baev–Rajaraman's read-only model); with
    [~include_writes:true] the full MST-policy cost is charged — the
    paper's cost model under capacity constraints (the direction Meyer
    auf der Heide et al. explore for dynamic strategies). *)
val create : ?include_writes:bool -> Dmn_core.Instance.t -> capacity:int array -> t

(** [validate t p] checks per-node capacities and per-object
    non-emptiness. *)
val validate : t -> Dmn_core.Placement.t -> (unit, string) result

(** [cost t p] is the placement's cost under the configured model. *)
val cost : t -> Dmn_core.Placement.t -> float

(** [greedy t] seeds every object at its best feasible node, then
    repeatedly fills remaining capacity with the copy of best marginal
    gain; stops when no copy helps. *)
val greedy : t -> Dmn_core.Placement.t

(** [local_search ?max_iters t] improves {!greedy} with copy moves
    (relocate a copy to a free slot) and inter-object swaps on full
    nodes. *)
val local_search : ?max_iters:int -> t -> Dmn_core.Placement.t

(** [exact t] exhaustive optimum; practical only for
    [objects * n <= ~18] slots. @raise Invalid_argument beyond that. *)
val exact : t -> Dmn_core.Placement.t * float

(** [lp_bound t] is the LP-relaxation lower bound
    (variables [y_xi], [x_xij], capacity rows [sum_x y_xi <= cap_i]).
    Same dense-LP practicality caveat as the facility LPs. *)
val lp_bound : t -> float
