lib/capacitated/capplace.mli: Dmn_core
