lib/capacitated/capplace.ml: Array Dmn_core Dmn_lp Dmn_paths Fun List Metric Printf
