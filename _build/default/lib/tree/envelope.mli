(** Lower envelopes of cost lines [y = c + r * d] over [d in [0, inf)].

    The tree DP's export placements form piecewise-linear value
    functions of the distance [D] to the nearest outside copy: each
    candidate placement is a line with intercept [c] (its internal cost)
    and slope [r] (its outgoing request count). The optimal export for
    every [D] is the lower envelope, which is exactly the paper's sorted
    sequence of export tuples with optimality intervals. *)

type 'a line = { c : float; r : float; info : 'a }

type 'a t

(** [build lines] computes the envelope; lines with infinite intercept
    are discarded. @raise Invalid_argument if no finite line remains. *)
val build : 'a line list -> 'a t

(** [at env d] is the optimal line at distance [d >= 0]. *)
val at : 'a t -> float -> 'a line

(** [value env d] is [c + r * d] of {!at}. *)
val value : 'a t -> float -> float

(** [breakpoints env] lists the interval left endpoints, ascending,
    starting with [0.]. *)
val breakpoints : 'a t -> float list

(** [pieces env] lists [(lo, line)] pairs, ascending in [lo]. *)
val pieces : 'a t -> (float * 'a line) list

(** [size env] is the number of pieces. *)
val size : 'a t -> int
