lib/tree/tdata.mli: Binarize Dmn_core
