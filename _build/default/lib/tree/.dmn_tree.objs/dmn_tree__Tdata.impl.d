lib/tree/tdata.ml: Array Binarize Dmn_core List Rtree
