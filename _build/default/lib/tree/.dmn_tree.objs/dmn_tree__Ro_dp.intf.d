lib/tree/ro_dp.mli: Tdata
