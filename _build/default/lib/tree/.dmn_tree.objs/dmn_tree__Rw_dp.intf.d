lib/tree/rw_dp.mli: Tdata
