lib/tree/ro_dp.ml: Array Binarize Envelope Float List Rtree Tdata
