lib/tree/tree_solver.mli: Dmn_core
