lib/tree/rtree.ml: Array Dmn_graph Queue Wgraph
