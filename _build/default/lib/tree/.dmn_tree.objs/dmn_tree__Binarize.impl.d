lib/tree/binarize.ml: Array List Rtree
