lib/tree/rtree.mli: Dmn_graph Wgraph
