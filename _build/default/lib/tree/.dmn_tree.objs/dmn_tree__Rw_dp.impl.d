lib/tree/rw_dp.ml: Array Binarize Envelope Float List Rtree Tdata
