lib/tree/tree_exact.mli: Dmn_core
