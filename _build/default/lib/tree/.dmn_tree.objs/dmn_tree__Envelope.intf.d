lib/tree/envelope.mli:
