lib/tree/ro_dp_literal.ml: Array Binarize Float List Rtree Tdata
