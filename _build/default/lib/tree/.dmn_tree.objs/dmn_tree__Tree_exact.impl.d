lib/tree/tree_exact.ml: Array Dmn_core Dmn_paths List Metric Rtree
