lib/tree/binarize.mli: Rtree
