lib/tree/tree_solver.ml: Array Dmn_core Ro_dp Rw_dp Tdata
