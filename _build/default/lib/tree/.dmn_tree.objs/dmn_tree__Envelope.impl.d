lib/tree/envelope.ml: Array Float List
