lib/tree/ro_dp_literal.mli: Tdata
