(** A literal transcription of the paper's read-only tree algorithm
    (Section 3.1, Claims 15 and 16), kept alongside the envelope-based
    {!Ro_dp} as an independent cross-check.

    Where {!Ro_dp} computes export optimality intervals as a lower
    envelope of cost lines, this module follows the paper's text
    operation by operation: sorted sequences of import tuples
    [(cost, copy distance, site)] and export tuples
    [(cost, outgoing requests, optimality interval)], constructed
    bottom-up with linear merges — import sequences traversed in
    increasing copy distance against export sequences in increasing
    interval order (Claim 15), export sequences combined by shifting
    intervals by the edge weights and intersecting (Claim 16), followed
    by the [D_E] cutoff step against [E^infinity].

    Only costs are computed (no placement reconstruction); the test
    suite checks exact agreement with {!Ro_dp} and the brute force. *)

(** [solve_cost td] is the optimal total cost for a read-only object.
    @raise Invalid_argument if the object has writes. *)
val solve_cost : Tdata.t -> float

(** [tuple_counts td] is, per binary node, [(imports, exports)] —
    Lemma 12 bounds these by [|Tv|] and [|Tv| + 1]. *)
val tuple_counts : Tdata.t -> (int * int) array
