(** Per-object data of a tree DP run: the binarized tree together with
    node attributes mapped onto binary nodes (dummies get no requests
    and infinite storage cost) and subtree write totals. *)

type t = {
  bin : Binarize.t;
  cs : float array;  (** binary-node storage costs *)
  fr : float array;  (** binary-node read counts *)
  fw : float array;  (** binary-node write counts *)
  wsub : float array;  (** total writes within each binary subtree *)
  wtotal : float;
}

(** [of_instance inst ~x ~root] prepares the data; the instance's graph
    must be a tree. @raise Invalid_argument otherwise. *)
val of_instance : Dmn_core.Instance.t -> x:int -> root:int -> t

(** [to_original t copies] maps binary-node copies back to original
    node ids (asserting no dummy was selected), sorted. *)
val to_original : t -> int list -> int list
