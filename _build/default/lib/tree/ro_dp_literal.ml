(* Direct transcription of paper Section 3.1; see the interface comment.
   Costs only — no placement reconstruction. *)

type imp = { ic : float; id : float }

(* export tuple: optimal for outside-copy distances in [lo, hi) *)
type exp = { ec : float; er : float; lo : float; hi : float }

type state = { imports : imp list; exports : exp list }

(* value of the export sequence at distance d: C + R * d of the tuple
   whose optimality interval contains d *)
let export_value exports d =
  let rec find = function
    | [] -> invalid_arg "Ro_dp_literal: export intervals do not cover d"
    | t :: rest -> if d >= t.lo && (d < t.hi || t.hi = infinity) then t.ec +. (t.er *. d) else find rest
  in
  find exports

let leaf_state cs fr =
  let imports = if cs < infinity then [ { ic = cs; id = 0.0 } ] else [] in
  let exports =
    if fr <= 0.0 then [ { ec = 0.0; er = 0.0; lo = 0.0; hi = infinity } ]
    else begin
      let threshold = cs /. fr in
      if threshold <= 0.0 then [ { ec = cs; er = 0.0; lo = 0.0; hi = infinity } ]
      else if threshold = infinity then [ { ec = 0.0; er = fr; lo = 0.0; hi = infinity } ]
      else
        [
          { ec = 0.0; er = fr; lo = 0.0; hi = threshold };
          { ec = cs; er = 0.0; lo = threshold; hi = infinity };
        ]
    end
  in
  { imports; exports }

(* shift an export sequence across an edge of weight c: the tuple
   optimal for child-distance D' serves v-distances D = D' - c; crossing
   requests pay the edge *)
let shift_exports c exports =
  List.filter_map
    (fun t ->
      let lo = Float.max 0.0 (t.lo -. c) and hi = t.hi -. c in
      if hi <= lo then None else Some { ec = t.ec +. (t.er *. c); er = t.er; lo; hi })
    exports

(* intersect two interval partitions of [0, inf), summing costs and
   outgoing requests (Claim 16's traversal) *)
let combine_exports fr a b =
  let rec go a b acc =
    match (a, b) with
    | [], [] -> List.rev acc
    | ta :: ra, tb :: rb ->
        let lo = Float.max ta.lo tb.lo and hi = Float.min ta.hi tb.hi in
        let acc =
          if hi > lo then
            { ec = ta.ec +. tb.ec; er = ta.er +. tb.er +. fr; lo; hi } :: acc
          else acc
        in
        if ta.hi < tb.hi then go ra b acc
        else if tb.hi < ta.hi then go a rb acc
        else go ra rb acc
    | _ -> invalid_arg "Ro_dp_literal: partitions out of sync"
  in
  go a b []

(* the D_E cutoff step: compare open tuples with E^infinity and keep
   each only on the sub-interval where it beats it. The open value
   function is nondecreasing in D, so once E^infinity wins it wins for
   good. Flat tuples (er = 0, e.g. request-free subtrees) that are
   cheaper than E^infinity are kept outright. *)
let cutoff e_inf_cost opens =
  let rec go acc = function
    | [] -> (List.rev acc, None)
    | t :: rest ->
        if t.ec = infinity then (List.rev acc, Some t.lo)
        else if t.er <= 0.0 then
          if t.ec <= e_inf_cost then go (t :: acc) rest else (List.rev acc, Some t.lo)
        else begin
          let d_e = (e_inf_cost -. t.ec) /. t.er in
          if d_e <= t.lo then (List.rev acc, Some t.lo)
          else if d_e < t.hi then (List.rev ({ t with hi = d_e } :: acc), Some d_e)
          else go (t :: acc) rest
        end
  in
  match go [] opens with
  | kept, Some start -> kept @ [ { ec = e_inf_cost; er = 0.0; lo = start; hi = infinity } ]
  | kept, None -> kept

let combine cs fr children =
  match children with
  | [] -> leaf_state cs fr
  | _ ->
      (* ---- imports (Claim 15) ---- *)
      let site_v =
        if cs = infinity then []
        else begin
          let cost =
            List.fold_left
              (fun acc (st, c) -> acc +. export_value st.exports c)
              cs children
          in
          [ { ic = cost; id = 0.0 } ]
        end
      in
      let from_child (st, c) =
        List.map
          (fun t ->
            let dist = t.id +. c in
            let cost = ref (t.ic +. (fr *. dist)) in
            List.iter
              (fun (st2, c2) ->
                if st2 != st then cost := !cost +. export_value st2.exports (dist +. c2))
              children;
            { ic = !cost; id = dist })
          st.imports
      in
      let merge = List.merge (fun a b -> compare (a.id, a.ic) (b.id, b.ic)) in
      let imports =
        List.fold_left
          (fun acc ch -> merge acc (List.sort (fun a b -> compare (a.id, a.ic) (b.id, b.ic)) (from_child ch)))
          site_v children
      in
      (* ---- exports (Claim 16) ---- *)
      let e_inf_cost =
        List.fold_left (fun acc t -> Float.min acc t.ic) infinity imports
      in
      let opens =
        match children with
        | [ (st, c) ] ->
            List.map
              (fun t -> { t with er = t.er +. fr })
              (shift_exports c st.exports)
        | [ (st1, c1); (st2, c2) ] ->
            combine_exports fr (shift_exports c1 st1.exports) (shift_exports c2 st2.exports)
        | _ -> invalid_arg "Ro_dp_literal: node with more than two children"
      in
      { imports; exports = cutoff e_inf_cost opens }

let states td =
  if td.Tdata.wtotal > 0.0 then invalid_arg "Ro_dp_literal: instance has writes";
  let bt = td.Tdata.bin.Binarize.tree in
  let state = Array.make bt.Rtree.n None in
  Array.iter
    (fun v ->
      let children =
        Array.to_list bt.Rtree.children.(v)
        |> List.map (fun c ->
               match state.(c) with
               | Some s -> (s, bt.Rtree.up_weight.(c))
               | None -> assert false)
      in
      state.(v) <- Some (combine td.Tdata.cs.(v) td.Tdata.fr.(v) children))
    bt.Rtree.post_order;
  state

let solve_cost td =
  let bt = td.Tdata.bin.Binarize.tree in
  match (states td).(bt.Rtree.root) with
  | Some st -> List.fold_left (fun acc t -> Float.min acc t.ic) infinity st.imports
  | None -> assert false

let tuple_counts td =
  Array.map
    (function
      | Some st -> (List.length st.imports, List.length st.exports)
      | None -> (0, 0))
    (states td)
