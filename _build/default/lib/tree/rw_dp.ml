type imp = { icost : float; idist : float; ibuild : unit -> int list }
type einfo = { ebuild : unit -> int list }

type state = {
  imports0 : imp list;  (* I^R: no copy outside the subtree *)
  imports1 : imp list;  (* J^R: at least one copy outside *)
  ev_cost : float;  (* Ev: no copy inside; internal cost *)
  ev_rout : float;  (* Ev: all reads of the subtree flow out *)
  exports : einfo Envelope.t;  (* E^D pieces, all with a copy inside *)
}

let nil = fun () -> []
let join a b = fun () -> a () @ b ()

let prune_imports imports =
  let sorted = List.sort (fun a b -> compare (a.idist, a.icost) (b.idist, b.icost)) imports in
  let rec sweep best acc = function
    | [] -> List.rev acc
    | t :: rest -> if t.icost < best then sweep t.icost (t :: acc) rest else sweep best acc rest
  in
  sweep infinity [] sorted

let min_import imports =
  List.fold_left
    (fun b t -> if t.icost < b.icost then t else b)
    { icost = infinity; idist = 0.0; ibuild = nil }
    imports

(* A child as seen from its parent: state, edge weight, subtree writes. *)
type child = { st : state; w : float; wsub : float }

let leaf_state cs fr v =
  let self = { icost = cs; idist = 0.0; ibuild = (fun () -> [ v ]) } in
  {
    imports0 = [ self ];
    imports1 = [ self ];
    ev_cost = 0.0;
    ev_rout = fr;
    exports = Envelope.build [ { Envelope.c = cs; r = 0.0; info = { ebuild = (fun () -> [ v ]) } } ];
  }

(* Child contribution when the serving copy for its outgoing reads lies
   at distance [target] from the child root and the child has a copy
   inside; [wload] is the write load on the connecting edge times its
   weight, already decided by the caller's context. *)
let closed_with_copy ch target =
  let p = Envelope.at ch.st.exports target in
  (p.Envelope.c +. (p.Envelope.r *. target), p.Envelope.info.ebuild)

(* Same when the child holds no copy (its Ev placement). *)
let closed_no_copy ch target = (ch.st.ev_cost +. (ch.st.ev_rout *. target), nil)

let combine ~wtotal cs fr v children =
  match children with
  | [] -> leaf_state cs fr v
  | _ ->
      let edge_load_all ch = ch.w *. wtotal in
      let edge_load_nocopy ch = ch.w *. ch.wsub in
      (* ---- Ev ---- *)
      let ev_cost =
        List.fold_left
          (fun acc ch -> acc +. ch.st.ev_cost +. (ch.st.ev_rout *. ch.w) +. edge_load_nocopy ch)
          0.0 children
      in
      let ev_rout = List.fold_left (fun acc ch -> acc +. ch.st.ev_rout) fr children in
      (* ---- copy at v (shared by I and J; children see a copy outside
         their subtrees either way) ---- *)
      let site_v =
        let cost = ref cs and build = ref (fun () -> [ v ]) in
        List.iter
          (fun ch ->
            (* child may keep copies (export piece at D = edge weight)
               or hold none (Ev); edge write load differs accordingly *)
            let with_c, bw = closed_with_copy ch ch.w in
            let with_cost = with_c +. edge_load_all ch in
            let no_c, _ = closed_no_copy ch ch.w in
            let no_cost = no_c +. edge_load_nocopy ch in
            if with_cost <= no_cost then begin
              cost := !cost +. with_cost;
              build := join !build bw
            end
            else cost := !cost +. no_cost)
          children;
        { icost = !cost; idist = 0.0; ibuild = !build }
      in
      (* ---- imports from a site inside child [ch]; [outside] says
         whether a copy exists outside the whole subtree T_v (I vs J).
         Every combination of sibling keep/empty choices is enumerated,
         since it determines the child's own context (I vs J family). ---- *)
      let sibling_options ch dist =
        (* each option: (cost, build, some_sibling_has_copy) *)
        List.fold_left
          (fun acc ch2 ->
            if ch2 == ch then acc
            else begin
              let target = dist +. ch2.w in
              let with_c, bw = closed_with_copy ch2 target in
              let keep = (with_c +. edge_load_all ch2, bw, true) in
              let no_c, _ = closed_no_copy ch2 target in
              let drop = (no_c +. edge_load_nocopy ch2, nil, false) in
              List.concat_map
                (fun (c, b, has) ->
                  let kc, kb, _ = keep and dc, _, _ = drop in
                  [ (c +. kc, join b kb, true); (c +. dc, b, has) ])
                acc
            end)
          [ (0.0, nil, false) ]
          children
      in
      let imports_of ~outside =
        let from_children =
          List.concat_map
            (fun ch ->
              List.concat_map
                (fun (fam, t) ->
                  let dist = t.idist +. ch.w in
                  List.filter_map
                    (fun (sib_cost, sib_build, sib_has_copy) ->
                      let copy_outside_child = outside || sib_has_copy in
                      (* the tuple family must match the realized context *)
                      if (fam = `J) <> copy_outside_child then None
                      else begin
                        let edge =
                          if copy_outside_child then edge_load_all ch
                          else ch.w *. (wtotal -. ch.wsub)
                        in
                        let cost = t.icost +. edge +. (fr *. dist) +. sib_cost in
                        Some { icost = cost; idist = dist; ibuild = join t.ibuild sib_build }
                      end)
                    (sibling_options ch dist))
                (List.map (fun t -> (`J, t)) ch.st.imports1
                @ List.map (fun t -> (`I, t)) ch.st.imports0))
            children
        in
        prune_imports (site_v :: from_children)
      in
      let imports0 = imports_of ~outside:false in
      let imports1 = imports_of ~outside:true in
      (* ---- exports (copy inside T_v, nearest outside copy at D) ---- *)
      let closed_line =
        let best = min_import imports1 in
        { Envelope.c = best.icost; r = 0.0; info = { ebuild = best.ibuild } }
      in
      let open_lines =
        (* v holds no copy; each child independently keeps copies (export
           piece at D + w) or is empty (Ev); at least one must keep. *)
        let bps =
          List.concat_map
            (fun ch ->
              List.map (fun b -> Float.max 0.0 (b -. ch.w)) (Envelope.breakpoints ch.st.exports))
            children
          |> List.cons 0.0 |> List.sort_uniq compare
        in
        List.concat_map
          (fun d ->
            (* candidate per subset of children keeping copies; with at
               most two children enumerate the <= 3 non-empty subsets *)
            let options =
              List.map
                (fun ch ->
                  let p = Envelope.at ch.st.exports (d +. ch.w) in
                  let keep_cost = p.Envelope.c +. (p.Envelope.r *. ch.w) +. edge_load_all ch in
                  let keep_rout = p.Envelope.r in
                  let keep_build = p.Envelope.info.ebuild in
                  let drop_cost =
                    ch.st.ev_cost +. (ch.st.ev_rout *. ch.w) +. edge_load_nocopy ch
                  in
                  let drop_rout = ch.st.ev_rout in
                  (keep_cost, keep_rout, keep_build, drop_cost, drop_rout))
                children
            in
            let rec subsets = function
              | [] -> [ (0.0, fr, nil, false) ]
              | (kc, kr, kb, dc, dr) :: rest ->
                  List.concat_map
                    (fun (c, r, b, has) ->
                      [
                        (c +. kc, r +. kr, join b kb, true); (c +. dc, r +. dr, b, has);
                      ])
                    (subsets rest)
            in
            List.filter_map
              (fun (c, r, b, has) ->
                if has then Some { Envelope.c; r; info = { ebuild = b } } else None)
              (subsets options))
          bps
      in
      {
        imports0;
        imports1;
        ev_cost;
        ev_rout;
        exports = Envelope.build (closed_line :: open_lines);
      }

let states td =
  let bt = td.Tdata.bin.Binarize.tree in
  let state = Array.make bt.Rtree.n None in
  Array.iter
    (fun v ->
      let children =
        Array.to_list bt.Rtree.children.(v)
        |> List.map (fun c ->
               match state.(c) with
               | Some st -> { st; w = bt.Rtree.up_weight.(c); wsub = td.Tdata.wsub.(c) }
               | None -> assert false)
      in
      state.(v) <-
        Some (combine ~wtotal:td.Tdata.wtotal td.Tdata.cs.(v) td.Tdata.fr.(v) v children))
    bt.Rtree.post_order;
  state

let solve td =
  let bt = td.Tdata.bin.Binarize.tree in
  let state = states td in
  match state.(bt.Rtree.root) with
  | None -> assert false
  | Some st ->
      let best = min_import st.imports0 in
      (Tdata.to_original td (best.ibuild ()), best.icost)

let tuple_counts td =
  let state = states td in
  Array.map
    (function
      | Some st -> (List.length st.imports0, List.length st.imports1, Envelope.size st.exports)
      | None -> (0, 0, 0))
    state
