(** Rooted trees with weighted edges, derived from tree-shaped graphs.

    Nodes keep their graph ids. The structure is the substrate of the
    Section-3 dynamic programs. *)

open Dmn_graph

type t = {
  n : int;
  root : int;
  parent : int array;  (** [-1] at the root *)
  up_weight : float array;  (** weight of the edge to the parent; [0.] at the root *)
  children : int array array;
  post_order : int array;  (** children before parents *)
}

(** [of_graph g ~root] roots the tree graph [g].
    @raise Invalid_argument if [g] is not a tree. *)
val of_graph : Wgraph.t -> root:int -> t

(** [of_arrays ~root ~parent ~up_weight] builds a rooted tree directly
    (used by binarization). Validates acyclicity and reachability. *)
val of_arrays : root:int -> parent:int array -> up_weight:float array -> t

(** [subtree_size t] gives [|T_v|] for every [v]. *)
val subtree_size : t -> int array

(** [depth t v] is the hop distance from the root. *)
val depth : t -> int -> int

(** [height t] is the maximum depth. *)
val height : t -> int

(** [dist_to_root t] gives weighted distances from the root. *)
val dist_to_root : t -> float array

(** [in_subtree t ~v u] tests whether [u] lies in [T_v]. O(depth). *)
val in_subtree : t -> v:int -> int -> bool
