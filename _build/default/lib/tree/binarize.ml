type t = { tree : Rtree.t; orig_of : int array; repr : int array }

let run (rt : Rtree.t) =
  let parent = ref [] (* (binary node, parent, weight) accumulated in id order *) in
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let orig = ref [] in
  let repr = Array.make rt.Rtree.n (-1) in
  (* Allocate binary ids in a DFS; for each original node, attach its
     children under a balanced gadget of dummies. *)
  let rec place v bparent bweight =
    let bv = fresh () in
    orig := (bv, v) :: !orig;
    repr.(v) <- bv;
    parent := (bv, bparent, bweight) :: !parent;
    let kids = rt.Rtree.children.(v) in
    attach bv (Array.to_list kids)
  and attach banchor = function
    | [] -> ()
    | [ c ] -> place c banchor rt.Rtree.up_weight.(c)
    | [ c1; c2 ] ->
        place c1 banchor rt.Rtree.up_weight.(c1);
        place c2 banchor rt.Rtree.up_weight.(c2)
    | kids ->
        (* split into two halves below zero-weight dummies *)
        let rec split i acc = function
          | [] -> (List.rev acc, [])
          | l when i = 0 -> (List.rev acc, l)
          | x :: rest -> split (i - 1) (x :: acc) rest
        in
        let half = List.length kids / 2 in
        let left, right = split half [] kids in
        let d1 = fresh () in
        orig := (d1, -1) :: !orig;
        parent := (d1, banchor, 0.0) :: !parent;
        let d2 = fresh () in
        orig := (d2, -1) :: !orig;
        parent := (d2, banchor, 0.0) :: !parent;
        attach d1 left;
        attach d2 right
  in
  place rt.Rtree.root (-1) 0.0;
  let n = !next in
  let parent_arr = Array.make n (-1) in
  let weight_arr = Array.make n 0.0 in
  List.iter
    (fun (b, p, w) ->
      parent_arr.(b) <- p;
      weight_arr.(b) <- w)
    !parent;
  let orig_of = Array.make n (-1) in
  List.iter (fun (b, v) -> orig_of.(b) <- v) !orig;
  let tree = Rtree.of_arrays ~root:repr.(rt.Rtree.root) ~parent:parent_arr ~up_weight:weight_arr in
  { tree; orig_of; repr }

let max_children t =
  Array.fold_left (fun acc kids -> max acc (Array.length kids)) 0 t.tree.Rtree.children
