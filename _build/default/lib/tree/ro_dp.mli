(** Optimal placement on trees, read-only case (paper Section 3.1).

    Bottom-up sufficient sets: per subtree a list of {e import}
    placements [(cost, copy-distance)] — a copy inside serving
    everything that reaches the subtree root — and the lower envelope of
    {e export} placements [(cost, outgoing-requests)] parameterized by
    the distance [D] to the nearest outside copy. The envelope {!pieces}
    are exactly the paper's export tuples with optimality intervals.

    Runs on the binarized tree in
    [O(|V| * diam(T) * log(deg(T)))] amortized tuple work. *)

(** [solve td] returns [(copies, optimal_cost)] over binary node ids of
    [td]; use {!Tdata.to_original} to map back. The object must be
    read-only ([td.fw] all zero). @raise Invalid_argument otherwise. *)
val solve : Tdata.t -> int list * float

(** [tuple_counts td] returns, per binary node, the import and export
    tuple counts of its sufficient set (for testing Lemma 12's
    [|S_Tv| <= 2|Tv| + 1] bound). *)
val tuple_counts : Tdata.t -> (int * int) array
