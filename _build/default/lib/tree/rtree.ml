open Dmn_graph

type t = {
  n : int;
  root : int;
  parent : int array;
  up_weight : float array;
  children : int array array;
  post_order : int array;
}

let build ~n ~root ~parent ~up_weight =
  let child_count = Array.make n 0 in
  Array.iter (fun p -> if p >= 0 then child_count.(p) <- child_count.(p) + 1) parent;
  let children = Array.init n (fun v -> Array.make child_count.(v) 0) in
  let fill = Array.make n 0 in
  for v = 0 to n - 1 do
    let p = parent.(v) in
    if p >= 0 then begin
      children.(p).(fill.(p)) <- v;
      fill.(p) <- fill.(p) + 1
    end
  done;
  (* iterative post-order *)
  let post_order = Array.make n 0 in
  let idx = ref 0 in
  let rec dfs v =
    Array.iter dfs children.(v);
    post_order.(!idx) <- v;
    incr idx
  in
  dfs root;
  if !idx <> n then invalid_arg "Rtree: not all nodes reachable from root";
  { n; root; parent; up_weight; children; post_order }

let of_graph g ~root =
  if not (Wgraph.is_tree g) then invalid_arg "Rtree.of_graph: not a tree";
  let n = Wgraph.n g in
  let parent = Array.make n (-1) in
  let up_weight = Array.make n 0.0 in
  let visited = Array.make n false in
  let q = Queue.create () in
  visited.(root) <- true;
  Queue.add root q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Wgraph.iter_neighbors g v (fun u w ->
        if not visited.(u) then begin
          visited.(u) <- true;
          parent.(u) <- v;
          up_weight.(u) <- w;
          Queue.add u q
        end)
  done;
  build ~n ~root ~parent ~up_weight

let of_arrays ~root ~parent ~up_weight =
  let n = Array.length parent in
  if Array.length up_weight <> n then invalid_arg "Rtree.of_arrays: length mismatch";
  if root < 0 || root >= n || parent.(root) <> -1 then invalid_arg "Rtree.of_arrays: bad root";
  build ~n ~root ~parent:(Array.copy parent) ~up_weight:(Array.copy up_weight)

let subtree_size t =
  let size = Array.make t.n 1 in
  Array.iter
    (fun v -> Array.iter (fun c -> size.(v) <- size.(v) + size.(c)) t.children.(v))
    t.post_order;
  size

let depth t v =
  let rec go v acc = if t.parent.(v) < 0 then acc else go t.parent.(v) (acc + 1) in
  go v 0

let height t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    let d = depth t v in
    if d > !best then best := d
  done;
  !best

let dist_to_root t =
  let dist = Array.make t.n 0.0 in
  (* parents appear after children in post_order, so walk it backwards *)
  for i = t.n - 1 downto 0 do
    let v = t.post_order.(i) in
    if t.parent.(v) >= 0 then dist.(v) <- dist.(t.parent.(v)) +. t.up_weight.(v)
  done;
  dist

let in_subtree t ~v u =
  let rec go u = u = v || (t.parent.(u) >= 0 && go t.parent.(u)) in
  go u
