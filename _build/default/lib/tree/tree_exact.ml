open Dmn_paths

let tree_of inst ~root =
  match Dmn_core.Instance.graph inst with
  | Some g -> Rtree.of_graph g ~root
  | None -> invalid_arg "Tree_exact: instance has no graph"

let cost_rt inst ~x (rt : Rtree.t) copies =
  let n = Dmn_core.Instance.n inst in
  let m = Dmn_core.Instance.metric inst in
  let copies = List.sort_uniq compare copies in
  if copies = [] then invalid_arg "Tree_exact.cost: empty copy set";
  let holds = Array.make n false in
  List.iter (fun c -> holds.(c) <- true) copies;
  (* copies and writes inside every subtree *)
  let copies_in = Array.make n 0 and w_in = Array.make n 0 in
  Array.iter
    (fun v ->
      copies_in.(v) <- (if holds.(v) then 1 else 0);
      w_in.(v) <- Dmn_core.Instance.writes inst ~x v;
      Array.iter
        (fun c ->
          copies_in.(v) <- copies_in.(v) + copies_in.(c);
          w_in.(v) <- w_in.(v) + w_in.(c))
        rt.Rtree.children.(v))
    rt.Rtree.post_order;
  let total_copies = copies_in.(rt.Rtree.root) in
  let w_total = Dmn_core.Instance.total_writes inst ~x in
  let storage = List.fold_left (fun acc c -> acc +. Dmn_core.Instance.cs inst c) 0.0 copies in
  let read = ref 0.0 in
  for v = 0 to n - 1 do
    let c = Dmn_core.Instance.reads inst ~x v in
    if c > 0 then begin
      let _, d = Metric.nearest m v copies in
      read := !read +. (float_of_int c *. d)
    end
  done;
  let update = ref 0.0 in
  for v = 0 to n - 1 do
    if rt.Rtree.parent.(v) >= 0 then begin
      let inside = copies_in.(v) > 0 and outside = total_copies - copies_in.(v) > 0 in
      let load =
        (if outside then w_in.(v) else 0) + if inside then w_total - w_in.(v) else 0
      in
      update := !update +. (float_of_int load *. rt.Rtree.up_weight.(v))
    end
  done;
  storage +. !read +. !update

let cost inst ~x ~root copies = cost_rt inst ~x (tree_of inst ~root) copies

let opt inst ~x ~root =
  let n = Dmn_core.Instance.n inst in
  if n > 22 then invalid_arg "Tree_exact.opt: instance too large";
  let rt = tree_of inst ~root in
  let sites = ref [] in
  for v = n - 1 downto 0 do
    if Dmn_core.Instance.cs inst v < infinity then sites := v :: !sites
  done;
  let sites = Array.of_list !sites in
  let k = Array.length sites in
  let best_cost = ref infinity and best = ref [] in
  for mask = 1 to (1 lsl k) - 1 do
    let copies = ref [] in
    for i = k - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then copies := sites.(i) :: !copies
    done;
    let c = cost_rt inst ~x rt !copies in
    if c < !best_cost then begin
      best_cost := c;
      best := !copies
    end
  done;
  (!best, !best_cost)
