type 'a line = { c : float; r : float; info : 'a }

type 'a t = { lo : float array; lines : 'a line array }

let build lines =
  let finite = List.filter (fun l -> l.c < infinity) lines in
  if finite = [] then invalid_arg "Envelope.build: no finite line";
  (* A line is dominated when another has both smaller-or-equal slope
     and intercept. Sweep in ascending slope keeping the running minimum
     intercept; survivors then have ascending slope and strictly
     descending intercept. The hull pass below wants slopes descending,
     so the collected (reversed) list is already in the right order. *)
  let arr = Array.of_list finite in
  Array.sort (fun a b -> compare (a.r, a.c) (b.r, b.c)) arr;
  let surviving = ref [] in
  let best_c = ref infinity in
  Array.iter
    (fun l ->
      if l.c < !best_c then begin
        surviving := l :: !surviving;
        best_c := l.c
      end)
    arr;
  let survivors = Array.of_list !surviving in
  (* Monotone hull over x >= 0. *)
  let k = Array.length survivors in
  let stack_lo = Array.make k 0.0 and stack_line = Array.make k survivors.(0) in
  let top = ref (-1) in
  Array.iter
    (fun l ->
      let continue = ref true in
      while !continue && !top >= 0 do
        let t = stack_line.(!top) in
        (* intersection of l with t; t.r > l.r *)
        let x = (l.c -. t.c) /. (t.r -. l.r) in
        if x <= stack_lo.(!top) then decr top else continue := false
      done;
      let start =
        if !top < 0 then 0.0
        else
          let t = stack_line.(!top) in
          (l.c -. t.c) /. (t.r -. l.r)
      in
      incr top;
      stack_lo.(!top) <- Float.max 0.0 start;
      stack_line.(!top) <- l)
    survivors;
  let m = !top + 1 in
  { lo = Array.sub stack_lo 0 m; lines = Array.sub stack_line 0 m }

let index env d =
  (* last piece with lo <= d *)
  let lo = ref 0 and hi = ref (Array.length env.lo - 1) in
  while !hi > !lo do
    let mid = (!lo + !hi + 1) / 2 in
    if env.lo.(mid) <= d then lo := mid else hi := mid - 1
  done;
  !lo

let at env d = env.lines.(index env d)
let value env d =
  let l = at env d in
  l.c +. (l.r *. d)

let breakpoints env = Array.to_list env.lo
let pieces env = List.combine (Array.to_list env.lo) (Array.to_list env.lines)
let size env = Array.length env.lo
