(** Exhaustive tree optimum with the polynomial per-subset write-cost
    oracle: on a tree, the minimum Steiner tree spanning [{h} ∪ S] is
    the unique spanned subtree, so the write cost of a placement
    decomposes per edge [(v, parent v)] as
    [ct(e) * (W_v * [copy outside T_v] + (W - W_v) * [copy inside T_v])].

    This is the validation oracle for both tree DPs, usable up to
    [n ~ 20] (vs. the Dreyfus–Wagner-based {!Dmn_core.Exact.opt_exact}
    which is practical only to [n ~ 14]). *)

(** [cost inst ~x ~root copies] is the exact total cost of the copy set
    on the tree instance. *)
val cost : Dmn_core.Instance.t -> x:int -> root:int -> int list -> float

(** [opt inst ~x ~root] enumerates all non-empty copy sets
    ([n <= 22]). Returns [(copies, cost)]. *)
val opt : Dmn_core.Instance.t -> x:int -> root:int -> int list * float
