(** Optimal placement on trees, general read/write case (paper Section
    3.2).

    Write cost decomposes per edge [(c, parent c)] as
    [ct(e) * (W_c * [copy outside T_c] + (W - W_c) * [copy inside T_c])]
    (the spanned-subtree characterization of tree Steiner trees), so the
    DP tracks the paper's four placement families per subtree:

    - [I^R] — copies inside, {e no} copy outside ([cost⁰_W] variant);
    - [J^R] — copies inside {e and} outside ([cost¹_W] variant);
    - [E^D] — copies inside, nearest outside copy at distance [D],
      requests flow out (lower envelope over [D]);
    - [Ev]  — no copy inside at all (a single placement).

    The root answer is the cheapest [I] placement with no entering
    requests. *)

(** [solve td] returns [(copies, optimal_cost)] over binary node ids;
    map back with {!Tdata.to_original}. Also correct for read-only
    objects (it degenerates to {!Ro_dp}). *)
val solve : Tdata.t -> int list * float

(** [tuple_counts td] is, per binary node,
    [(|I|, |J|, |E| pieces)] — for the Section-3.2 sufficient-set bound
    [|S_Tv| <= 3 |Tv| + 2]. *)
val tuple_counts : Tdata.t -> (int * int * int) array
