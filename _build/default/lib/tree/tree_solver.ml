let place_object ?(root = 0) inst ~x =
  let td = Tdata.of_instance inst ~x ~root in
  if Dmn_core.Instance.read_only inst ~x then Ro_dp.solve td else Rw_dp.solve td

let solve ?(root = 0) inst =
  let results = Array.init (Dmn_core.Instance.objects inst) (fun x -> place_object ~root inst ~x) in
  let placement = Dmn_core.Placement.make (Array.map fst results) in
  let cost = Array.fold_left (fun acc (_, c) -> acc +. c) 0.0 results in
  (placement, cost)
