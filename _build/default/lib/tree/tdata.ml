type t = {
  bin : Binarize.t;
  cs : float array;
  fr : float array;
  fw : float array;
  wsub : float array;
  wtotal : float;
}

let of_instance inst ~x ~root =
  let g =
    match Dmn_core.Instance.graph inst with
    | Some g -> g
    | None -> invalid_arg "Tdata.of_instance: instance has no graph"
  in
  let rt = Rtree.of_graph g ~root in
  let bin = Binarize.run rt in
  let bt = bin.Binarize.tree in
  let n = bt.Rtree.n in
  let attr default f =
    Array.init n (fun b ->
        let v = bin.Binarize.orig_of.(b) in
        if v < 0 then default else f v)
  in
  let cs = attr infinity (fun v -> Dmn_core.Instance.cs inst v) in
  let fr = attr 0.0 (fun v -> float_of_int (Dmn_core.Instance.reads inst ~x v)) in
  let fw = attr 0.0 (fun v -> float_of_int (Dmn_core.Instance.writes inst ~x v)) in
  let wsub = Array.copy fw in
  Array.iter
    (fun v ->
      Array.iter (fun c -> wsub.(v) <- wsub.(v) +. wsub.(c)) bt.Rtree.children.(v))
    bt.Rtree.post_order;
  { bin; cs; fr; fw; wsub; wtotal = wsub.(bt.Rtree.root) }

let to_original t copies =
  List.map
    (fun b ->
      let v = t.bin.Binarize.orig_of.(b) in
      assert (v >= 0);
      v)
    copies
  |> List.sort_uniq compare
