(** Binary-tree simulation of arbitrary rooted trees (paper Section 3.1,
    final paragraph).

    A node with [k > 2] children is expanded into a balanced binary
    gadget of dummy nodes joined by zero-weight edges, preserving all
    pairwise distances and multiplying the depth by at most
    [O(log deg)]. Dummy nodes carry no requests and infinite storage
    cost, so no optimal placement ever stores on them. *)

type t = {
  tree : Rtree.t;  (** the binary tree; every node has at most 2 children *)
  orig_of : int array;  (** binary node -> original node, [-1] for dummies *)
  repr : int array;  (** original node -> its binary node *)
}

(** [run rt] expands [rt]. *)
val run : Rtree.t -> t

(** [max_children t] is the maximum child count of [t.tree] (for
    assertions: always [<= 2]). *)
val max_children : t -> int
