type imp = { icost : float; idist : float; ibuild : unit -> int list }
type einfo = { ebuild : unit -> int list }

type state = { imports : imp list; exports : einfo Envelope.t }

let nil = fun () -> []
let join a b = fun () -> a () @ b ()

(* Contribution of a child export evaluated when the serving copy lies
   at distance [target] from the child root: internal cost plus the
   outgoing requests walking the whole way. *)
let child_closed (env : einfo Envelope.t) target =
  let p = Envelope.at env target in
  (p.Envelope.c +. (p.Envelope.r *. target), p.Envelope.info.ebuild)

let leaf_state cs fr v =
  let imports = [ { icost = cs; idist = 0.0; ibuild = (fun () -> [ v ]) } ] in
  let lines =
    [
      { Envelope.c = 0.0; r = fr; info = { ebuild = nil } };
      { Envelope.c = cs; r = 0.0; info = { ebuild = (fun () -> [ v ]) } };
    ]
  in
  { imports; exports = Envelope.build lines }

(* Remove import tuples that are dominated (another tuple with both
   smaller-or-equal distance and cost). All downstream uses are monotone
   in (cost, dist), so this is lossless. *)
let prune_imports imports =
  let sorted = List.sort (fun a b -> compare (a.idist, a.icost) (b.idist, b.icost)) imports in
  let rec sweep best acc = function
    | [] -> List.rev acc
    | t :: rest -> if t.icost < best then sweep t.icost (t :: acc) rest else sweep best acc rest
  in
  sweep infinity [] sorted

let combine cs fr v children =
  (* children: (state, edge_weight) list, length 1 or 2 *)
  match children with
  | [] -> leaf_state cs fr v
  | _ ->
      let copy_at_v_cost =
        List.fold_left
          (fun acc (st, w) ->
            let p = Envelope.at st.exports w in
            acc +. p.Envelope.c +. (p.Envelope.r *. w))
          cs children
      in
      let copy_at_v_build =
        List.fold_left
          (fun acc (st, w) -> join acc (Envelope.at st.exports w).Envelope.info.ebuild)
          (fun () -> [ v ])
          children
      in
      let import_of_site (st, w) others t =
        let dist = t.idist +. w in
        let cost = ref (t.icost +. (fr *. dist)) in
        let build = ref t.ibuild in
        List.iter
          (fun (st2, w2) ->
            if st2 != st then begin
              let c2, b2 = child_closed st2.exports (dist +. w2) in
              cost := !cost +. c2;
              build := join !build b2
            end)
          others;
        { icost = !cost; idist = dist; ibuild = !build }
      in
      let imports =
        ({ icost = copy_at_v_cost; idist = 0.0; ibuild = copy_at_v_build }
        :: List.concat_map
             (fun (st, w) -> List.map (import_of_site (st, w) children) st.imports)
             children)
        |> prune_imports
      in
      (* export lines *)
      let closed =
        match imports with
        | [] -> assert false
        | best :: _ ->
            (* after pruning, the first import has the minimum cost only
               if it also has minimal distance; scan for the true min *)
            let best =
              List.fold_left (fun b t -> if t.icost < b.icost then t else b) best imports
            in
            { Envelope.c = best.icost; r = 0.0; info = { ebuild = best.ibuild } }
      in
      let open_lines =
        match children with
        | [ (st, w) ] ->
            List.map
              (fun (_, p) ->
                {
                  Envelope.c = p.Envelope.c +. (p.Envelope.r *. w);
                  r = p.Envelope.r +. fr;
                  info = { ebuild = p.Envelope.info.ebuild };
                })
              (Envelope.pieces st.exports)
        | [ (st1, w1); (st2, w2) ] ->
            let bps =
              List.sort_uniq compare
                (List.map (fun b -> Float.max 0.0 (b -. w1)) (Envelope.breakpoints st1.exports)
                @ List.map (fun b -> Float.max 0.0 (b -. w2)) (Envelope.breakpoints st2.exports))
            in
            List.map
              (fun d ->
                let p1 = Envelope.at st1.exports (d +. w1) in
                let p2 = Envelope.at st2.exports (d +. w2) in
                {
                  Envelope.c =
                    p1.Envelope.c +. (p1.Envelope.r *. w1) +. p2.Envelope.c
                    +. (p2.Envelope.r *. w2);
                  r = p1.Envelope.r +. p2.Envelope.r +. fr;
                  info = { ebuild = join p1.Envelope.info.ebuild p2.Envelope.info.ebuild };
                })
              bps
        | _ -> invalid_arg "Ro_dp: node with more than two children (binarize first)"
      in
      { imports; exports = Envelope.build (closed :: open_lines) }

let states td =
  let bt = td.Tdata.bin.Binarize.tree in
  let state = Array.make bt.Rtree.n None in
  Array.iter
    (fun v ->
      let children =
        Array.to_list bt.Rtree.children.(v)
        |> List.map (fun c ->
               match state.(c) with
               | Some s -> (s, bt.Rtree.up_weight.(c))
               | None -> assert false)
      in
      state.(v) <- Some (combine td.Tdata.cs.(v) td.Tdata.fr.(v) v children))
    bt.Rtree.post_order;
  state

let solve td =
  if td.Tdata.wtotal > 0.0 then invalid_arg "Ro_dp.solve: instance has writes";
  let bt = td.Tdata.bin.Binarize.tree in
  let state = states td in
  match state.(bt.Rtree.root) with
  | None -> assert false
  | Some st ->
      let best =
        List.fold_left
          (fun b t -> if t.icost < b.icost then t else b)
          { icost = infinity; idist = 0.0; ibuild = nil }
          st.imports
      in
      (Tdata.to_original td (best.ibuild ()), best.icost)

let tuple_counts td =
  let state = states td in
  Array.map
    (function
      | Some st -> (List.length st.imports, Envelope.size st.exports)
      | None -> (0, 0))
    state
