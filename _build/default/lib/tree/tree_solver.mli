(** Facade: optimal data management on tree networks (paper Theorem 13,
    generalized to reads and writes by Section 3.2).

    Complexity per object:
    [O(|V| * diam(T) * log(deg(T)))] tuple operations after binarizing. *)

(** [place_object ?root inst ~x] computes an optimal copy set for object
    [x] on a tree instance, with the exact (Steiner) write model.
    Returns [(copies, cost)]. @raise Invalid_argument if the instance's
    graph is absent or not a tree. *)
val place_object : ?root:int -> Dmn_core.Instance.t -> x:int -> int list * float

(** [solve ?root inst] places all objects; also returns the summed
    optimal cost. *)
val solve : ?root:int -> Dmn_core.Instance.t -> Dmn_core.Placement.t * float
