(** Shmoys–Tardos–Aardal LP-rounding for UFL (STOC 1997) — the
    algorithm the paper cites for its phase 1, built on the in-repo
    simplex solver.

    The LP relaxation has variables [y_i] (open) and [x_ij]
    (assignment):
    {v
      min  sum_i f_i y_i + sum_{ij} d_j c_ij x_ij
      s.t. sum_i x_ij  = 1      for all j with d_j > 0
           x_ij       <= y_i    for all i, j
           x, y       >= 0
    v}

    Rounding: filtering with parameter [alpha] (default 1/4, giving the
    deterministic factor 4 = max(1/alpha, 3/(1-alpha))): each client's
    alpha-point radius [r_j] is the smallest radius holding an [alpha]
    fraction of its assignment mass; clients are processed by ascending
    [r_j], each opening the cheapest facility in its ball and absorbing
    every client whose ball intersects it.

    The LP size is [n^2 + n] variables — practical to [n ~ 25]. *)

(** [solve ?alpha inst] returns the rounded open set.
    @raise Invalid_argument when [alpha] is outside (0, 1) or the
    instance is too large ([n > 40]). *)
val solve : ?alpha:float -> Flp.instance -> int list

(** [lp_value inst] is the optimal LP-relaxation value — a lower bound
    on the integral optimum, exposed for the tests. *)
val lp_value : Flp.instance -> float

(** [solve_lp_raw inst] exposes the raw LP solution
    [(value, variables)] with layout [y_i] at [i] and [x_ij] at
    [n + i*n + j] — shared with {!Chudak_shmoys}. *)
val solve_lp_raw : Flp.instance -> float * float array
