lib/facility/chudak_shmoys.ml: Array Dmn_paths Dmn_prelude Flp Fun List Metric Rng Sta
