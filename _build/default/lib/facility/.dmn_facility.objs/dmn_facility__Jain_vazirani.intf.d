lib/facility/jain_vazirani.mli: Flp
