lib/facility/local_search.ml: Array Flp List
