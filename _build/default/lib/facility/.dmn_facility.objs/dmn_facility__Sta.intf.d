lib/facility/sta.mli: Flp
