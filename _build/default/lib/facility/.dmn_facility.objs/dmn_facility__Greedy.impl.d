lib/facility/greedy.ml: Array Dmn_paths Flp List Metric
