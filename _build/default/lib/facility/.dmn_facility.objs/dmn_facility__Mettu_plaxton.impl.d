lib/facility/mettu_plaxton.ml: Array Dmn_paths Flp List Metric
