lib/facility/mettu_plaxton.mli: Flp
