lib/facility/local_search.mli: Flp
