lib/facility/jain_vazirani.ml: Array Dmn_paths Flp List Metric
