lib/facility/exact.ml: Array Dmn_paths Flp Metric
