lib/facility/flp.ml: Array Dmn_paths Dmn_prelude Float Floatx List Metric
