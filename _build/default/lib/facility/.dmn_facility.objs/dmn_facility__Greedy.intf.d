lib/facility/greedy.mli: Flp
