lib/facility/chudak_shmoys.mli: Dmn_prelude Flp Rng
