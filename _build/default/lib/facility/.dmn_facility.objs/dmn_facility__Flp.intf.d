lib/facility/flp.mli: Dmn_paths Metric
