lib/facility/exact.mli: Flp
