lib/facility/sta.ml: Array Dmn_lp Dmn_paths Flp Fun List Metric
