type config = { eps : float; max_iters : int }

let default_config = { eps = 1e-3; max_iters = 10_000 }

let cheapest_site inst =
  let n = Flp.size inst in
  let best = ref 0 in
  for i = 1 to n - 1 do
    if inst.Flp.opening.(i) < inst.Flp.opening.(!best) then best := i
  done;
  !best

let solve ?(config = default_config) ?init inst =
  let n = Flp.size inst in
  let open_set = Array.make n false in
  (match init with
  | Some l when l <> [] -> List.iter (fun i -> open_set.(i) <- true) l
  | _ -> open_set.(cheapest_site inst) <- true);
  let current () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if open_set.(i) then acc := i :: !acc
    done;
    !acc
  in
  let cost_of () = Flp.cost inst (current ()) in
  let cost = ref (cost_of ()) in
  (* The (5 + eps) analysis requires moves that improve by at least an
     eps/p(n) fraction; we use eps / (8 n) which keeps the iteration
     count polynomial. *)
  let threshold () = !cost *. config.eps /. float_of_int (8 * max 1 n) in
  let try_move apply undo =
    apply ();
    if current () = [] then begin
      undo ();
      false
    end
    else begin
      let c = cost_of () in
      if c < !cost -. threshold () then begin
        cost := c;
        true
      end
      else begin
        undo ();
        false
      end
    end
  in
  let improved = ref true in
  let iters = ref 0 in
  while !improved && !iters < config.max_iters do
    improved := false;
    incr iters;
    (* add moves *)
    for i = 0 to n - 1 do
      if (not open_set.(i)) && inst.Flp.opening.(i) < infinity then
        if try_move (fun () -> open_set.(i) <- true) (fun () -> open_set.(i) <- false) then
          improved := true
    done;
    (* drop moves *)
    for i = 0 to n - 1 do
      if open_set.(i) then
        if try_move (fun () -> open_set.(i) <- false) (fun () -> open_set.(i) <- true) then
          improved := true
    done;
    (* swap moves *)
    for i = 0 to n - 1 do
      if open_set.(i) then
        for j = 0 to n - 1 do
          if open_set.(i) && (not open_set.(j)) && inst.Flp.opening.(j) < infinity then begin
            let apply () =
              open_set.(i) <- false;
              open_set.(j) <- true
            in
            let undo () =
              open_set.(i) <- true;
              open_set.(j) <- false
            in
            if try_move apply undo then improved := true
          end
        done
    done
  done;
  current ()
