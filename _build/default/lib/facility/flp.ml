open Dmn_paths
open Dmn_prelude

type instance = { metric : Metric.t; opening : float array; demand : float array }

let create metric ~opening ~demand =
  let n = Metric.size metric in
  if Array.length opening <> n then invalid_arg "Flp.create: opening length mismatch";
  if Array.length demand <> n then invalid_arg "Flp.create: demand length mismatch";
  Array.iter
    (fun c -> if c < 0.0 || Float.is_nan c then invalid_arg "Flp.create: bad opening cost")
    opening;
  Array.iter
    (fun d ->
      if d < 0.0 || Float.is_nan d || d = infinity then invalid_arg "Flp.create: bad demand")
    demand;
  { metric; opening; demand }

let size inst = Metric.size inst.metric

let total_demand inst = Floatx.sum inst.demand

let nearest_dist inst opens j =
  List.fold_left (fun acc i -> Float.min acc (Metric.d inst.metric j i)) infinity opens

let connection_cost inst opens =
  if opens = [] then invalid_arg "Flp.connection_cost: empty open set";
  Floatx.sum_by
    (fun j -> if inst.demand.(j) = 0.0 then 0.0 else inst.demand.(j) *. nearest_dist inst opens j)
    (size inst)

let opening_cost inst opens =
  List.sort_uniq compare opens |> List.fold_left (fun acc i -> acc +. inst.opening.(i)) 0.0

let cost inst opens = opening_cost inst opens +. connection_cost inst opens

let assignment inst opens =
  if opens = [] then invalid_arg "Flp.assignment: empty open set";
  Array.init (size inst) (fun j -> fst (Metric.nearest inst.metric j opens))

let validate inst opens =
  let n = size inst in
  if opens = [] then Error "empty open set"
  else if List.exists (fun i -> i < 0 || i >= n) opens then Error "site out of range"
  else if List.exists (fun i -> inst.opening.(i) = infinity) opens then Error "forbidden site opened"
  else Ok ()
