(** Mettu–Plaxton radius-based UFL algorithm (3-approximation).

    For each site [v], the charge radius [r_v] solves
    [sum_j demand_j * max(0, r_v - d(v, j)) = opening_v]; sites are then
    scanned in non-decreasing [r] and selected greedily subject to a
    [2 r] separation. Purely combinatorial and extremely fast, which
    makes it the default phase-1 solver for large instances. *)

(** [radii inst] computes all charge radii. A site with zero total
    demand reachable gets radius [infinity] only when its opening cost
    is positive and total demand is zero. *)
val radii : Flp.instance -> float array

val solve : Flp.instance -> int list
