open Dmn_paths

let solve inst =
  let n = Flp.size inst in
  if n > 22 then invalid_arg "Facility.Exact.solve: instance too large";
  let d i j = Metric.d inst.Flp.metric i j in
  let best_cost = ref infinity and best_mask = ref 0 in
  for mask = 1 to (1 lsl n) - 1 do
    let opening = ref 0.0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then opening := !opening +. inst.Flp.opening.(i)
    done;
    if !opening < !best_cost then begin
      let total = ref !opening in
      (try
         for j = 0 to n - 1 do
           if inst.Flp.demand.(j) > 0.0 then begin
             let nearest = ref infinity in
             for i = 0 to n - 1 do
               if mask land (1 lsl i) <> 0 then begin
                 let dij = d i j in
                 if dij < !nearest then nearest := dij
               end
             done;
             total := !total +. (inst.Flp.demand.(j) *. !nearest);
             if !total >= !best_cost then raise Exit
           end
         done;
         best_cost := !total;
         best_mask := mask
       with Exit -> ())
    end
  done;
  let result = ref [] in
  for i = n - 1 downto 0 do
    if !best_mask land (1 lsl i) <> 0 then result := i :: !result
  done;
  !result

let opt_cost inst = Flp.cost inst (solve inst)
