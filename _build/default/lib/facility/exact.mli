(** Exhaustive UFL optimum by subset enumeration; for validating the
    approximation factors of the other solvers.

    Complexity [O(2^n * n^2)]; guarded to [n <= 22]. *)

(** [solve inst] returns an optimal open set. *)
val solve : Flp.instance -> int list

(** [opt_cost inst] is the optimal objective value. *)
val opt_cost : Flp.instance -> float
