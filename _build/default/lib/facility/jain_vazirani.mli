(** Jain–Vazirani primal-dual UFL algorithm (3-approximation).

    Phase 1 grows all client duals uniformly; a facility opens
    temporarily once the contributions [max(0, alpha_j - d_ij)] cover
    its fee, and a client freezes when it can reach an open facility.
    Phase 2 keeps a maximal independent set of temporarily open
    facilities in opening order, where two facilities conflict when a
    client contributes positively to both. *)

(** [solve inst] returns the open set. Event-driven simulation,
    [O(n^3)] worst case. *)
val solve : Flp.instance -> int list

(** [duals inst] additionally exposes the final alpha values for
    inspection and the LP weak-duality test
    [sum_j alpha_j <= 3 * OPT] used by tests. Returns
    [(open_set, alpha)]. *)
val duals : Flp.instance -> int list * float array
