(** Chudak–Shmoys randomized LP rounding for UFL (IPCO 1998) — cited by
    the paper as the best-known factor (1 + 2/e ≈ 1.736).

    Implementation of the clustered randomized rounding: solve the LP
    relaxation (in-repo simplex), cluster clients greedily by ascending
    fractional cost around their alpha-points, open each cluster
    center's cheapest nearby facility, and open every other facility
    independently with probability [y*_i] (seeded for determinism).
    Each client is guaranteed a copy in its cluster, so solutions are
    always feasible; the expected cost matches the 1 + 2/e analysis and
    the tests check the realized factor against exhaustive optima. *)

open Dmn_prelude

(** [solve rng inst] returns the rounded open set. Same [n <= 40] dense
    LP cap as {!Sta}. *)
val solve : Rng.t -> Flp.instance -> int list
