open Dmn_paths

(* Event-driven simulation of the dual-growth process.

   State at global time t:
   - active clients: alpha_j = t (still growing); frozen: alpha_j fixed.
   - for each unopened facility i, payment(t) =
       sum over frozen j of max(0, alpha_j - d_ij) * w_j
     + sum over active j with t >= d_ij of (t - d_ij) * w_j,
     a piecewise-linear function whose slope only changes at events.

   Events:
   - an active client reaches an open facility (t = d_ij): freeze it;
   - an active client reaches an unopened facility (t = d_ij): payment
     slope of i increases;
   - a facility's payment reaches its fee: open it, freeze all active
     clients with d_ij <= t.

   Between events everything is linear, so the next event time is
   computable in O(n^2). There are O(n) freezes and O(n) openings and
   O(n^2) slope changes, giving O(n^3 / events) ~ O(n^3) overall for the
   modest instance sizes used here. *)

let solve_internal inst =
  let n = Flp.size inst in
  let d i j = Metric.d inst.Flp.metric i j in
  let w = inst.Flp.demand in
  let alpha = Array.make n 0.0 in
  let frozen = Array.make n false in
  (* Clients with zero demand never pay and never need connection; they
     are born frozen. *)
  for j = 0 to n - 1 do
    if w.(j) = 0.0 then frozen.(j) <- true
  done;
  let opened = Array.make n false in
  let open_time = Array.make n infinity in
  let eligible i = inst.Flp.opening.(i) < infinity in
  let payment = Array.make n 0.0 in
  let t = ref 0.0 in
  let active_exists () =
    let rec go j = j < n && ((not frozen.(j)) || go (j + 1)) in
    go 0
  in
  let order = ref [] in
  (* Opening at t=0: free facilities are open immediately. *)
  for i = 0 to n - 1 do
    if eligible i && inst.Flp.opening.(i) = 0.0 then begin
      opened.(i) <- true;
      open_time.(i) <- 0.0;
      order := i :: !order
    end
  done;
  for j = 0 to n - 1 do
    if not frozen.(j) then
      for i = 0 to n - 1 do
        if opened.(i) && d i j <= 0.0 then frozen.(j) <- true
      done
  done;
  while active_exists () do
    (* slope of facility i's payment at current time *)
    let slope i =
      let s = ref 0.0 in
      for j = 0 to n - 1 do
        if (not frozen.(j)) && d i j <= !t then s := !s +. w.(j)
      done;
      !s
    in
    (* Candidate event times strictly after !t. *)
    let next = ref infinity in
    (* (a) active client touches some facility (slope change or freeze) *)
    for j = 0 to n - 1 do
      if not frozen.(j) then
        for i = 0 to n - 1 do
          if eligible i then begin
            let dij = d i j in
            if dij > !t && dij < !next then next := dij
          end
        done
    done;
    (* (b) an unopened facility fills up *)
    for i = 0 to n - 1 do
      if eligible i && not opened.(i) then begin
        let s = slope i in
        if s > 0.0 then begin
          let eta = !t +. ((inst.Flp.opening.(i) -. payment.(i)) /. s) in
          if eta < !next then next := eta
        end
      end
    done;
    if !next = infinity then begin
      (* Remaining active clients can never trigger an event: this can
         only happen if no eligible facility exists, which create rules
         out; guard anyway. *)
      for j = 0 to n - 1 do
        if not frozen.(j) then begin
          alpha.(j) <- !t;
          frozen.(j) <- true
        end
      done
    end
    else begin
      let dt = !next -. !t in
      (* advance payments *)
      for i = 0 to n - 1 do
        if eligible i && not opened.(i) then payment.(i) <- payment.(i) +. (slope i *. dt)
      done;
      t := !next;
      (* open facilities that are full *)
      for i = 0 to n - 1 do
        if eligible i && (not opened.(i)) && payment.(i) >= inst.Flp.opening.(i) -. 1e-12 then begin
          opened.(i) <- true;
          open_time.(i) <- !t;
          order := i :: !order
        end
      done;
      (* freeze active clients that can reach an open facility *)
      for j = 0 to n - 1 do
        if not frozen.(j) then begin
          let reached = ref false in
          for i = 0 to n - 1 do
            if opened.(i) && d i j <= !t +. 1e-12 then reached := true
          done;
          if !reached then begin
            alpha.(j) <- !t;
            frozen.(j) <- true
          end
        end
      done
    end
  done;
  (* Phase 2: maximal independent set in opening order. Conflict: some
     client contributes positively to both facilities. *)
  let temp_open = List.rev !order in
  let contributes j i = w.(j) > 0.0 && alpha.(j) -. d i j > 1e-12 in
  let conflict i1 i2 =
    let rec go j = j < n && (contributes j i1 && contributes j i2 || go (j + 1)) in
    go 0
  in
  let selected = ref [] in
  List.iter
    (fun i -> if not (List.exists (fun u -> conflict u i) !selected) then selected := i :: !selected)
    temp_open;
  let result = List.rev !selected in
  let result =
    if result <> [] then result
    else begin
      (* all-zero-demand degenerate case *)
      let best = ref 0 in
      for i = 1 to n - 1 do
        if inst.Flp.opening.(i) < inst.Flp.opening.(!best) then best := i
      done;
      [ !best ]
    end
  in
  (result, alpha)

let solve inst = fst (solve_internal inst)
let duals inst = solve_internal inst
