open Dmn_paths

(* r_v solves sum_j w_j * max(0, r - d_vj) = f_v: sort clients by
   distance; between consecutive distances the left side is linear with
   slope = covered demand. *)
let radius inst v =
  let n = Flp.size inst in
  let pairs =
    Array.init n (fun j -> (Metric.d inst.Flp.metric v j, inst.Flp.demand.(j)))
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) pairs;
  let f = inst.Flp.opening.(v) in
  if f = 0.0 then 0.0
  else begin
    let rec go idx paid slope last_d =
      if idx >= n then if slope > 0.0 then last_d +. ((f -. paid) /. slope) else infinity
      else begin
        let d, w = pairs.(idx) in
        let paid' = paid +. (slope *. (d -. last_d)) in
        if paid' >= f && slope > 0.0 then last_d +. ((f -. paid) /. slope)
        else go (idx + 1) paid' (slope +. w) d
      end
    in
    go 0 0.0 0.0 0.0
  end

let radii inst = Array.init (Flp.size inst) (fun v -> radius inst v)

let solve inst =
  let n = Flp.size inst in
  let r = radii inst in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare (r.(a), a) (r.(b), b)) order;
  let chosen = ref [] in
  Array.iter
    (fun v ->
      if inst.Flp.opening.(v) < infinity && r.(v) < infinity then begin
        let blocked =
          List.exists (fun u -> Metric.d inst.Flp.metric u v <= 2.0 *. r.(v)) !chosen
        in
        if not blocked then chosen := v :: !chosen
      end)
    order;
  if !chosen = [] then begin
    (* zero-demand degenerate instance: cheapest site *)
    let best = ref 0 in
    for i = 1 to n - 1 do
      if inst.Flp.opening.(i) < inst.Flp.opening.(!best) then best := i
    done;
    chosen := [ !best ]
  end;
  List.rev !chosen
