(** Greedy UFL (Hochbaum): repeatedly open the facility–client-set pair
    of best cost-effectiveness until all clients are covered. An
    [O(log n)]-approximation; kept as the weakest baseline for phase-1
    ablations (E5). *)

val solve : Flp.instance -> int list
