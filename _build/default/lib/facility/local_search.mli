(** Local search for UFL with add / drop / swap moves
    (Korupolu–Plaxton–Rajaraman analysis: (5 + eps)-approximation when
    moves are accepted only above a relative improvement threshold). *)

type config = {
  eps : float;  (** accept a move only if it improves cost by a factor [> eps / poly]; default 1e-3 *)
  max_iters : int;  (** hard safety cap on accepted moves; default 10_000 *)
}

val default_config : config

(** [solve ?config ?init inst] runs local search from [init] (default:
    the cheapest single facility) and returns the locally optimal open
    set. *)
val solve : ?config:config -> ?init:int list -> Flp.instance -> int list
