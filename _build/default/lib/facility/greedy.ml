open Dmn_paths

(* For a candidate facility i, the best client set to grab is a prefix of
   clients sorted by distance. Cost-effectiveness of taking the k nearest
   uncovered clients: (opening_if_new + sum of their connection costs) /
   (their total demand). *)

let solve inst =
  let n = Flp.size inst in
  let covered = Array.make n false in
  Array.iteri (fun j d -> if d = 0.0 then covered.(j) <- true) inst.Flp.demand;
  let opened = Array.make n false in
  let result = ref [] in
  let sorted_clients =
    Array.init n (fun i ->
        let order = Array.init n (fun j -> j) in
        Array.sort
          (fun a b -> compare (Metric.d inst.Flp.metric i a) (Metric.d inst.Flp.metric i b))
          order;
        order)
  in
  let uncovered_left () =
    let rec go j = j < n && (if covered.(j) then go (j + 1) else true) in
    go 0
  in
  while uncovered_left () do
    let best = ref (infinity, -1, 0.0) in
    for i = 0 to n - 1 do
      if inst.Flp.opening.(i) < infinity then begin
        let fee = if opened.(i) then 0.0 else inst.Flp.opening.(i) in
        let acc_cost = ref fee and acc_dem = ref 0.0 in
        Array.iter
          (fun j ->
            if not covered.(j) then begin
              acc_cost := !acc_cost +. (inst.Flp.demand.(j) *. Metric.d inst.Flp.metric i j);
              acc_dem := !acc_dem +. inst.Flp.demand.(j);
              let eff = !acc_cost /. !acc_dem in
              let beff, _, _ = !best in
              (* Record the facility together with the distance radius
                 that achieved this effectiveness. *)
              if eff < beff then best := (eff, i, Metric.d inst.Flp.metric i j)
            end)
          sorted_clients.(i)
      end
    done;
    let _, i, radius = !best in
    if i < 0 then
      (* All remaining demand is zero-able only if every site is
         forbidden, which [create] cannot produce for finite instances. *)
      invalid_arg "Greedy.solve: no eligible facility";
    if not opened.(i) then begin
      opened.(i) <- true;
      result := i :: !result
    end;
    for j = 0 to n - 1 do
      if (not covered.(j)) && Metric.d inst.Flp.metric i j <= radius then covered.(j) <- true
    done
  done;
  (* Degenerate instances with all-zero demand still need one facility:
     open the cheapest. *)
  if !result = [] then begin
    let best = ref 0 in
    for i = 1 to n - 1 do
      if inst.Flp.opening.(i) < inst.Flp.opening.(!best) then best := i
    done;
    result := [ !best ]
  end;
  List.rev !result
