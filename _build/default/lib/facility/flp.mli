(** Uncapacitated facility location (UFL).

    The paper's phase 1 solves the "related facility location problem":
    every node is both a potential facility (opening cost [cs(v)]) and a
    client (demand [fr(v) + fw(v)]), with connection costs given by the
    [ct] metric. This module fixes the instance/solution vocabulary for
    all solvers. *)

open Dmn_paths

type instance = {
  metric : Metric.t;
  opening : float array;  (** per-site opening cost; [infinity] forbids a site *)
  demand : float array;  (** per-client demand weight, [>= 0] *)
}

(** [create metric ~opening ~demand] validates the arrays' lengths
    against the metric size and value sanity. *)
val create : Metric.t -> opening:float array -> demand:float array -> instance

val size : instance -> int

(** [total_demand inst] sums all demands. *)
val total_demand : instance -> float

(** [connection_cost inst opens] is the demand-weighted sum of distances
    from each client to its nearest open facility.
    @raise Invalid_argument if [opens] is empty. *)
val connection_cost : instance -> int list -> float

(** [opening_cost inst opens] sums opening fees (duplicates ignored). *)
val opening_cost : instance -> int list -> float

(** [cost inst opens] is the total UFL objective. *)
val cost : instance -> int list -> float

(** [assignment inst opens] maps each client to its nearest open
    facility. *)
val assignment : instance -> int list -> int array

(** [validate inst opens] checks the solution: non-empty, in-range,
    no forbidden site. *)
val validate : instance -> int list -> (unit, string) result
