open Dmn_paths

(* variable layout: y_i at [i], x_ij at [n + i*n + j] *)
let build_lp inst =
  let n = Flp.size inst in
  let nv = n + (n * n) in
  let y i = i in
  let x i j = n + (i * n) + j in
  let objective = Array.make nv 0.0 in
  for i = 0 to n - 1 do
    objective.(y i) <- (if inst.Flp.opening.(i) = infinity then 1e12 else inst.Flp.opening.(i));
    for j = 0 to n - 1 do
      objective.(x i j) <- inst.Flp.demand.(j) *. Metric.d inst.Flp.metric i j
    done
  done;
  let constraints = ref [] in
  for j = 0 to n - 1 do
    if inst.Flp.demand.(j) > 0.0 then begin
      let row = Array.make nv 0.0 in
      for i = 0 to n - 1 do
        row.(x i j) <- 1.0
      done;
      constraints := (row, Dmn_lp.Simplex.Eq, 1.0) :: !constraints;
      for i = 0 to n - 1 do
        let row = Array.make nv 0.0 in
        row.(x i j) <- 1.0;
        row.(y i) <- -1.0;
        constraints := (row, Dmn_lp.Simplex.Le, 0.0) :: !constraints
      done
    end
  done;
  (objective, List.rev !constraints)

let solve_lp inst =
  if Flp.size inst > 40 then invalid_arg "Sta: instance too large for the dense LP";
  let objective, constraints = build_lp inst in
  match Dmn_lp.Simplex.minimize ~objective ~constraints with
  | Dmn_lp.Simplex.Optimal { value; x } -> (value, x)
  | Dmn_lp.Simplex.Infeasible -> invalid_arg "Sta: LP infeasible (internal error)"
  | Dmn_lp.Simplex.Unbounded -> invalid_arg "Sta: LP unbounded (internal error)"

let lp_value inst = fst (solve_lp inst)
let solve_lp_raw inst = solve_lp inst

let solve ?(alpha = 0.25) inst =
  if alpha <= 0.0 || alpha >= 1.0 then invalid_arg "Sta.solve: alpha must be in (0, 1)";
  let n = Flp.size inst in
  let _, sol = solve_lp inst in
  let xv i j = sol.(n + (i * n) + j) in
  let d i j = Metric.d inst.Flp.metric i j in
  (* alpha-point radius per client with demand *)
  let clients = List.filter (fun j -> inst.Flp.demand.(j) > 0.0) (List.init n Fun.id) in
  let radius j =
    let facs = List.init n Fun.id |> List.sort (fun a b -> compare (d a j) (d b j)) in
    let rec go mass = function
      | [] -> infinity
      | i :: rest ->
          let mass = mass +. xv i j in
          if mass >= alpha -. 1e-9 then d i j else go mass rest
    in
    go 0.0 facs
  in
  let r = Array.make n infinity in
  List.iter (fun j -> r.(j) <- radius j) clients;
  (* process clients by ascending radius *)
  let order = List.sort (fun a b -> compare (r.(a), a) (r.(b), b)) clients in
  let served = Array.make n false in
  let opened = ref [] in
  List.iter
    (fun j ->
      if not served.(j) then begin
        (* cheapest facility within j's ball *)
        let best = ref (-1) in
        for i = 0 to n - 1 do
          if d i j <= r.(j) +. 1e-9 && inst.Flp.opening.(i) < infinity then
            if !best < 0 || inst.Flp.opening.(i) < inst.Flp.opening.(!best) then best := i
        done;
        let i =
          if !best >= 0 then !best
          else begin
            (* all in-ball facilities forbidden: take the nearest allowed *)
            let alt = ref (-1) in
            for c = 0 to n - 1 do
              if inst.Flp.opening.(c) < infinity && (!alt < 0 || d c j < d !alt j) then alt := c
            done;
            !alt
          end
        in
        opened := i :: !opened;
        served.(j) <- true;
        (* absorb every client whose ball intersects j's ball *)
        List.iter
          (fun k ->
            if not served.(k) then begin
              let intersects =
                let rec scan c =
                  c < n && ((d c j <= r.(j) +. 1e-9 && d c k <= r.(k) +. 1e-9) || scan (c + 1))
                in
                scan 0
              in
              if intersects then served.(k) <- true
            end)
          clients
      end)
    order;
  if !opened = [] then begin
    (* no demand at all: cheapest site *)
    let best = ref 0 in
    for i = 1 to n - 1 do
      if inst.Flp.opening.(i) < inst.Flp.opening.(!best) then best := i
    done;
    opened := [ !best ]
  end;
  List.sort_uniq compare !opened
