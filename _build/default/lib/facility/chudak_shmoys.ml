open Dmn_prelude
open Dmn_paths

(* Reuses Sta's LP construction through its public hook. *)

let solve rng inst =
  let n = Flp.size inst in
  let _, sol = Sta.solve_lp_raw inst in
  let y i = sol.(i) in
  let xv i j = sol.(n + (i * n) + j) in
  let d i j = Metric.d inst.Flp.metric i j in
  let clients = List.filter (fun j -> inst.Flp.demand.(j) > 0.0) (List.init n Fun.id) in
  (* fractional connection cost per client *)
  let frac_cost j =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (xv i j *. d i j)
    done;
    !acc
  in
  (* greedy clustering by ascending fractional cost: the center grabs
     all facilities serving it fractionally; other clients sharing one
     of those facilities join the cluster *)
  let order = List.sort (fun a b -> compare (frac_cost a, a) (frac_cost b, b)) clients in
  let clustered = Array.make n false in
  let opened = ref [] in
  let facility_taken = Array.make n false in
  List.iter
    (fun j ->
      if not clustered.(j) then begin
        clustered.(j) <- true;
        let mine = List.filter (fun i -> xv i j > 1e-9 && not facility_taken.(i)) (List.init n Fun.id) in
        if mine <> [] then begin
          (* open the cheapest facility fractionally serving the center *)
          let cheapest =
            List.fold_left
              (fun best i ->
                if inst.Flp.opening.(i) < inst.Flp.opening.(best) then i else best)
              (List.hd mine) mine
          in
          if inst.Flp.opening.(cheapest) < infinity then opened := cheapest :: !opened;
          List.iter (fun i -> facility_taken.(i) <- true) mine;
          (* absorb clients sharing a facility with the center *)
          List.iter
            (fun k ->
              if not clustered.(k) then
                if List.exists (fun i -> xv i k > 1e-9) mine then clustered.(k) <- true)
            clients
        end
      end)
    order;
  (* independent rounding of the remaining facilities *)
  for i = 0 to n - 1 do
    if (not facility_taken.(i)) && inst.Flp.opening.(i) < infinity then
      if Rng.float rng 1.0 < y i then opened := i :: !opened
  done;
  if !opened = [] then begin
    let best = ref 0 in
    for i = 1 to n - 1 do
      if inst.Flp.opening.(i) < inst.Flp.opening.(!best) then best := i
    done;
    opened := [ !best ]
  end;
  List.sort_uniq compare !opened
