module I = Dmn_core.Instance
module R = Dmn_tree.Rtree

let tree_of inst ~root =
  match I.graph inst with
  | Some g -> R.of_graph g ~root
  | None -> invalid_arg "Tree_load: instance has no graph"

(* request volumes (reads + writes, and writes alone) inside each
   subtree *)
let volumes inst ~x (rt : R.t) =
  let n = I.n inst in
  let req = Array.make n 0 and wr = Array.make n 0 in
  Array.iter
    (fun v ->
      req.(v) <- I.requests inst ~x v;
      wr.(v) <- I.writes inst ~x v;
      Array.iter
        (fun c ->
          req.(v) <- req.(v) + req.(c);
          wr.(v) <- wr.(v) + wr.(c))
        rt.R.children.(v))
    rt.R.post_order;
  (req, wr)

let per_edge_lower_bound inst ~x ~root =
  let rt = tree_of inst ~root in
  let req, _ = volumes inst ~x rt in
  let total_req = I.total_requests inst ~x in
  let w = I.total_writes inst ~x in
  let rows = ref [] and total = ref 0.0 in
  for v = 0 to I.n inst - 1 do
    if rt.R.parent.(v) >= 0 then begin
      let inside = req.(v) in
      let outside = total_req - inside in
      let bound = min w (min inside outside) in
      let weighted = float_of_int bound *. rt.R.up_weight.(v) in
      rows := (v, weighted) :: !rows;
      total := !total +. weighted
    end
  done;
  (List.rev !rows, !total)

let edge_loads inst ~x ~root copies =
  let rt = tree_of inst ~root in
  let n = I.n inst in
  let copies = List.sort_uniq compare copies in
  if copies = [] then invalid_arg "Tree_load.edge_loads: empty copy set";
  let m = I.metric inst in
  (* copies and writes inside each subtree *)
  let holds = Array.make n false in
  List.iter (fun c -> holds.(c) <- true) copies;
  let copies_in = Array.make n 0 and w_in = Array.make n 0 in
  Array.iter
    (fun v ->
      copies_in.(v) <- (if holds.(v) then 1 else 0);
      w_in.(v) <- I.writes inst ~x v;
      Array.iter
        (fun c ->
          copies_in.(v) <- copies_in.(v) + copies_in.(c);
          w_in.(v) <- w_in.(v) + w_in.(c))
        rt.R.children.(v))
    rt.R.post_order;
  let total_copies = copies_in.(rt.R.root) in
  let w_total = I.total_writes inst ~x in
  (* read crossings: a read at u crosses edge (v, parent v) iff exactly
     one of u and its serving copy lies in T_v. Serving copy = nearest,
     ties to the smaller node id. *)
  let serving = Array.make n (-1) in
  for u = 0 to n - 1 do
    if I.reads inst ~x u > 0 then begin
      let best = ref (-1) and bd = ref infinity in
      List.iter
        (fun c ->
          let d = Dmn_paths.Metric.d m u c in
          if d < !bd -. 1e-12 then begin
            bd := d;
            best := c
          end)
        copies;
      serving.(u) <- !best
    end
  done;
  let rows = ref [] and total = ref 0.0 in
  for v = 0 to n - 1 do
    if rt.R.parent.(v) >= 0 then begin
      (* a read crosses the top edge of T_v iff it is issued inside T_v
         xor served inside T_v (tree paths cross each edge at most
         once) *)
      let crossing = ref 0 in
      for u = 0 to n - 1 do
        if serving.(u) >= 0 then begin
          let ui = R.in_subtree rt ~v u and si = R.in_subtree rt ~v serving.(u) in
          if ui <> si then crossing := !crossing + I.reads inst ~x u
        end
      done;
      let inside = copies_in.(v) > 0 and outside = total_copies - copies_in.(v) > 0 in
      let wload =
        (if outside then w_in.(v) else 0) + if inside then w_total - w_in.(v) else 0
      in
      let load = float_of_int (!crossing + wload) *. rt.R.up_weight.(v) in
      rows := (v, load) :: !rows;
      total := !total +. load
    end
  done;
  (List.rev !rows, !total)
