open Dmn_graph
module I = Dmn_core.Instance

(* Extract the cycle order starting at node 0, plus arc lengths. *)
let cycle_order g =
  let n = Wgraph.n g in
  if n < 3 then invalid_arg "Ring_ro: need n >= 3";
  for v = 0 to n - 1 do
    if Wgraph.degree g v <> 2 then invalid_arg "Ring_ro: graph is not a ring"
  done;
  if not (Wgraph.is_connected g) then invalid_arg "Ring_ro: graph is not a ring";
  let order = Array.make n 0 in
  let weight = Array.make n 0.0 in
  (* weight.(i) = length of the arc order.(i) -> order.(i+1 mod n) *)
  let prev = ref (-1) and cur = ref 0 in
  for i = 0 to n - 1 do
    order.(i) <- !cur;
    let nbrs = Wgraph.neighbors g !cur in
    let next, w =
      if fst nbrs.(0) <> !prev then nbrs.(0)
      else nbrs.(1)
    in
    weight.(i) <- w;
    prev := !cur;
    cur := next
  done;
  if !cur <> 0 then invalid_arg "Ring_ro: graph is not a single cycle";
  (order, weight)

let opt inst ~x =
  if I.total_writes inst ~x > 0 then invalid_arg "Ring_ro.opt: object has writes";
  let g = match I.graph inst with Some g -> g | None -> invalid_arg "Ring_ro.opt: no graph" in
  let order, weight = cycle_order g in
  let n = Array.length order in
  (* cum.(i) = distance from order.(0) to order.(i) going forward;
     extended to 2n for wrap-around arithmetic *)
  let cum = Array.make ((2 * n) + 1) 0.0 in
  for i = 0 to (2 * n) - 1 do
    cum.(i + 1) <- cum.(i) +. weight.(i mod n)
  done;
  let fr i = float_of_int (I.reads inst ~x order.(i mod n)) in
  let cs i = I.cs inst order.(i mod n) in
  (* between a b (indices with a < b <= a + n): reads strictly inside
     the arc served by the nearer endpoint along the arc *)
  let between a b =
    let acc = ref 0.0 in
    for i = a + 1 to b - 1 do
      let to_a = cum.(i) -. cum.(a) and to_b = cum.(b) -. cum.(i) in
      acc := !acc +. (fr i *. Float.min to_a to_b)
    done;
    !acc
  in
  let best_cost = ref infinity and best = ref [] in
  for f = 0 to n - 1 do
    if cs f < infinity then begin
      (* dp.(i) for i in [f, f + n): min cost of copies in (f..i] with a
         copy exactly at i and at f, covering all readers in (f, i];
         parent pointers reconstruct the set *)
      let dp = Array.make (f + n) infinity in
      let parent = Array.make (f + n) (-1) in
      let get i = if i = f then cs f else dp.(i) in
      for i = f + 1 to f + n - 1 do
        if cs i < infinity then begin
          let best_j = ref (-1) and best_v = ref infinity in
          for j = f to i - 1 do
            let v = get j +. between j i in
            if v < !best_v && v < infinity then begin
              best_v := v;
              best_j := j
            end
          done;
          if !best_j >= 0 then begin
            dp.(i) <- !best_v +. cs i;
            parent.(i) <- !best_j
          end
        end
      done;
      (* close the ring: last copy l wraps to f + n *)
      for l = f to f + n - 1 do
        let base = get l in
        if base < infinity then begin
          let total = base +. between l (f + n) in
          if total < !best_cost then begin
            best_cost := total;
            let rec collect i acc =
              if i = f then f :: acc else collect parent.(i) (i :: acc)
            in
            best := collect l []
          end
        end
      done
    end
  done;
  if !best = [] then invalid_arg "Ring_ro.opt: no storable node";
  let copies = List.map (fun i -> order.(i mod n)) !best |> List.sort_uniq compare in
  (copies, !best_cost)
