(** Optimal placement in uniform completely-connected networks in the
    total-load model ([d(u,v) = 1], [cs = 0]) — the closed form of
    Wolfson–Milo (TODS 1991), which the paper cites as the
    complete-network special case.

    With copy set [S] of size [k]:
    - a read at [u] costs [0] if [u in S] else [1];
    - a write at [u] spans [S ∪ {u}], i.e. costs [k - 1] if [u in S]
      else [k].

    Total = [W * (k - 1) + sum_{u not in S} (r_u + w_u)], so for fixed
    [k] the optimum keeps the [k] busiest nodes ([r + w]); scanning [k]
    gives the optimum in [O(n log n)]. *)

(** [solve inst ~x] returns [(copies, total_cost)] for a single object.
    The instance is interpreted in the uniform complete model: graph
    structure, edge weights and storage costs are ignored — only the
    request counts matter. *)
val solve : Dmn_core.Instance.t -> x:int -> int list * float

(** [cost inst ~x copies] evaluates a copy set in the same model. *)
val cost : Dmn_core.Instance.t -> x:int -> int list -> float
