(** Per-edge load profiles of placements on general graphs, connecting
    the cost model back to the congestion/total-load literature the
    paper generalizes (Section 1: with [ct = 1/bandwidth] and [cs = 0],
    total weighted load {e is} the total communication cost; max
    weighted load is the congestion of Maggs et al.).

    Traffic is routed the way the paper's strategy pays for it: reads
    (and the write [h -> s(r)] legs) follow shortest paths to the
    nearest copy (one multi-source Dijkstra tree per object), and each
    write's multicast follows the metric MST over the copy set with
    every MST edge expanded to a shortest graph path. *)

type profile = {
  load : (int * int * float) list;
      (** per-edge absolute load (objects transmitted), [(u, v, load)] with [u < v]; all graph edges listed *)
  total_weighted : float;  (** sum of load * fee — the communication part of the total cost *)
  max_weighted : float;  (** the congestion analogue: max over edges of load * fee *)
}

(** [of_placement inst p] profiles all objects of a placement. The
    instance must be graph-backed. *)
val of_placement : Dmn_core.Instance.t -> Dmn_core.Placement.t -> profile

(** [of_copies inst ~x copies] profiles a single object. *)
val of_copies : Dmn_core.Instance.t -> x:int -> int list -> profile
