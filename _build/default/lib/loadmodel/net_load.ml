open Dmn_graph
open Dmn_paths
module I = Dmn_core.Instance

type profile = {
  load : (int * int * float) list;
  total_weighted : float;
  max_weighted : float;
}

(* edge key with canonical orientation *)
let key u v = if u < v then (u, v) else (v, u)

let add_load tbl u v amount =
  let k = key u v in
  Hashtbl.replace tbl k (amount +. Option.value ~default:0.0 (Hashtbl.find_opt tbl k))

(* walk the Dijkstra parent chain from [v] to its serving source *)
let rec charge_path tbl (r : Dijkstra.result) v amount =
  let p = r.Dijkstra.parent.(v) in
  if p >= 0 then begin
    add_load tbl v p amount;
    charge_path tbl r p amount
  end

let charge_object inst ~x copies tbl g =
  let copies = List.sort_uniq compare copies in
  let r = Dijkstra.multi g copies in
  (* reads and write request legs to the nearest copy *)
  for v = 0 to I.n inst - 1 do
    let c = I.requests inst ~x v in
    if c > 0 then charge_path tbl r v (float_of_int c)
  done;
  (* one MST multicast per write: metric MST edges expanded to paths *)
  let w = I.total_writes inst ~x in
  if w > 0 then begin
    let mst, _ = Dmn_span.Kruskal.mst_of_subset (I.metric inst) copies in
    List.iter
      (fun (a, b, _) ->
        let ra = Dijkstra.run g a in
        charge_path tbl ra b (float_of_int w))
      mst
  end

let finish inst tbl =
  let g = match I.graph inst with Some g -> g | None -> assert false in
  let rows =
    List.map
      (fun (u, v, fee) ->
        let amount = Option.value ~default:0.0 (Hashtbl.find_opt tbl (key u v)) in
        (u, v, amount, fee))
      (Wgraph.edges g)
  in
  let total = List.fold_left (fun acc (_, _, a, fee) -> acc +. (a *. fee)) 0.0 rows in
  let worst = List.fold_left (fun acc (_, _, a, fee) -> Float.max acc (a *. fee)) 0.0 rows in
  {
    load = List.map (fun (u, v, a, _) -> (u, v, a)) rows;
    total_weighted = total;
    max_weighted = worst;
  }

let graph_of inst =
  match I.graph inst with
  | Some g -> g
  | None -> invalid_arg "Net_load: instance has no graph"

let of_copies inst ~x copies =
  let g = graph_of inst in
  let tbl = Hashtbl.create 64 in
  charge_object inst ~x copies tbl g;
  finish inst tbl

let of_placement inst p =
  let g = graph_of inst in
  let tbl = Hashtbl.create 64 in
  for x = 0 to Dmn_core.Placement.objects p - 1 do
    charge_object inst ~x (Dmn_core.Placement.copies p ~x) tbl g
  done;
  finish inst tbl
