(** Optimal read-only placement on ring networks in [O(n^3)] — the
    cost-model analogue of the Milo–Wolfson polynomial ring algorithm
    the paper cites (their result is for the total-load model; for
    read-only objects the two models coincide up to storage fees).

    With no writes, the objective on a cycle decomposes between
    consecutive copies: fixing the first copy position, a DP over the
    remaining arc chooses the other copies optimally. Writes would
    couple the copies through the spanning-arc structure, so this module
    rejects objects with writes. *)

(** [opt inst ~x] returns [(copies, cost)] for a read-only object on a
    ring instance. The instance's graph must be a single cycle (every
    node of degree 2, connected).
    @raise Invalid_argument otherwise or if the object has writes. *)
val opt : Dmn_core.Instance.t -> x:int -> int list * float
