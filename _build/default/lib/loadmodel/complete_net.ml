module I = Dmn_core.Instance

let cost inst ~x copies =
  let copies = List.sort_uniq compare copies in
  if copies = [] then invalid_arg "Complete_net.cost: empty copy set";
  let k = List.length copies in
  let holds = Array.make (I.n inst) false in
  List.iter (fun c -> holds.(c) <- true) copies;
  let w_total = float_of_int (I.total_writes inst ~x) in
  let missed = ref 0.0 in
  for u = 0 to I.n inst - 1 do
    if not holds.(u) then
      missed := !missed +. float_of_int (I.reads inst ~x u + I.writes inst ~x u)
  done;
  (w_total *. float_of_int (k - 1)) +. !missed

let solve inst ~x =
  let n = I.n inst in
  let order = Array.init n (fun v -> v) in
  let busy v = I.requests inst ~x v in
  Array.sort (fun a b -> compare (busy b, a) (busy a, b)) order;
  (* prefix of the busiest nodes for every k; track the best *)
  let w_total = float_of_int (I.total_writes inst ~x) in
  let total_busy = float_of_int (I.total_requests inst ~x) in
  let best_k = ref 1 and best_cost = ref infinity in
  let prefix = ref 0.0 in
  for k = 1 to n do
    prefix := !prefix +. float_of_int (busy order.(k - 1));
    let c = (w_total *. float_of_int (k - 1)) +. (total_busy -. !prefix) in
    if c < !best_cost then begin
      best_cost := c;
      best_k := k
    end
  done;
  let copies = List.sort compare (Array.to_list (Array.sub order 0 !best_k)) in
  (copies, !best_cost)
