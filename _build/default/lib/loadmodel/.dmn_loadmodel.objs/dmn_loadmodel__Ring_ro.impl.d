lib/loadmodel/ring_ro.ml: Array Dmn_core Dmn_graph Float List Wgraph
