lib/loadmodel/net_load.ml: Array Dijkstra Dmn_core Dmn_graph Dmn_paths Dmn_span Float Hashtbl List Option Wgraph
