lib/loadmodel/ring_ro.mli: Dmn_core
