lib/loadmodel/complete_net.mli: Dmn_core
