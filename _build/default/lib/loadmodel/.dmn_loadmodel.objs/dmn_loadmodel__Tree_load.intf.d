lib/loadmodel/tree_load.mli: Dmn_core
