lib/loadmodel/tree_load.ml: Array Dmn_core Dmn_paths Dmn_tree List
