lib/loadmodel/complete_net.ml: Array Dmn_core List
