lib/loadmodel/net_load.mli: Dmn_core
