(** The total-communication-load model on trees (the special case
    [cs = 0], [ct = 1/bandwidth] the paper generalizes; cf. Maggs,
    Meyer auf der Heide, Vöcking, Westermann, FOCS 1997, who show a
    placement minimizing the load of {e every} edge simultaneously).

    An edge [e] of a tree splits it into sides [A] and [B] with request
    volumes [(R_A, W_A)], [(R_B, W_B)]. Whatever the copy set:

    - copies only in [A]: the load of [e] is exactly [R_B + W_B],
    - copies only in [B]: exactly [R_A + W_A],
    - copies on both sides: at least [W] (every write crosses).

    Hence [min(R_A + W_A, R_B + W_B, W)] lower-bounds every placement's
    load on [e], and the sum over edges lower-bounds the total load.
    The simultaneous-optimality theorem says the optimum attains every
    per-edge minimum; the tests and experiment E9 verify this against
    the exact tree DP. *)

(** [per_edge_lower_bound inst ~x ~root] is the list of
    [(child, bound_on_edge_to_parent)] pairs (weighted by the edge fee)
    together with their total. The instance must be a tree; storage
    costs are ignored (pure communication bound). *)
val per_edge_lower_bound : Dmn_core.Instance.t -> x:int -> root:int -> (int * float) list * float

(** [edge_loads inst ~x ~root copies] is the realized weighted load of
    each tree edge under nearest-copy reads and spanned-subtree writes,
    as [(child, load)] pairs plus their total. *)
val edge_loads : Dmn_core.Instance.t -> x:int -> root:int -> int list -> (int * float) list * float

(** Note: no standalone constructive placement is exposed. Under the
    cost model's fixed nearest-copy read assignment, realizing the
    per-edge minima requires global coordination that the exact tree DP
    ({!Dmn_tree.Tree_solver}) already provides; the tests verify that
    the DP's optimum attains {e every} per-edge minimum, which is the
    simultaneous-optimality theorem. *)
