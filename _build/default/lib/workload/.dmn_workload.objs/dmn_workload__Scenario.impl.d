lib/workload/scenario.ml: Array Dmn_core Dmn_graph Dmn_prelude Freq Gen Rng Wgraph
