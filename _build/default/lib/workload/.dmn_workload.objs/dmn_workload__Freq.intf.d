lib/workload/freq.mli: Dmn_prelude Rng
