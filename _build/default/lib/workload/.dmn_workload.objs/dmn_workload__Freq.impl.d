lib/workload/freq.ml: Array Dmn_prelude Float Rng
