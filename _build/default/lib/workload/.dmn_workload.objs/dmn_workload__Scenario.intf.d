lib/workload/scenario.mli: Dmn_core Dmn_prelude Rng
