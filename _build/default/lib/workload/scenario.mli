(** End-to-end named scenarios: topology + storage fees + workload in
    one call. These are the workloads of the example programs and the
    benchmark suite, modelled on the paper's motivating applications
    (Section 1): WWW content distribution, virtual shared memory, and
    distributed file systems. *)

open Dmn_prelude

(** [web_cdn rng ~clusters ~per_cluster ~objects] — a content provider
    on an Internet-like clustered network: Zipf-popular pages, few
    writers (page updates), cheap storage in big clusters, expensive
    storage at the periphery. *)
val web_cdn : Rng.t -> clusters:int -> per_cluster:int -> objects:int -> Dmn_core.Instance.t

(** [vsm_mesh rng ~rows ~cols ~objects] — cache lines of a virtual
    shared memory system on a mesh-connected multiprocessor: uniform
    access with write-heavy sharing, uniform storage fees. *)
val vsm_mesh : Rng.t -> rows:int -> cols:int -> objects:int -> Dmn_core.Instance.t

(** [distributed_fs rng ~n ~objects] — files on an Ethernet-like random
    tree of workstations: hotspot readers, a single writing owner per
    file. *)
val distributed_fs : Rng.t -> n:int -> objects:int -> Dmn_core.Instance.t

(** [total_load rng ~n ~objects] — the total-communication-load model as
    a special case of the cost model (Section 1): storage is free and
    each link's fee is the reciprocal of a random bandwidth. *)
val total_load : Rng.t -> n:int -> objects:int -> Dmn_core.Instance.t
