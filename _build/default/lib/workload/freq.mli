(** Request-frequency generators for the experiment suite.

    Each generator produces the [fr]/[fw] matrices for a given node
    count and object count, threading a deterministic
    {!Dmn_prelude.Rng.t}. *)

open Dmn_prelude

type matrices = { fr : int array array; fw : int array array }

(** [uniform rng ~objects ~n ~max_count] draws every count uniformly in
    [0, max_count]. *)
val uniform : Rng.t -> objects:int -> n:int -> max_count:int -> matrices

(** [zipf rng ~objects ~n ~requests ~s] spreads [requests] read requests
    per object over nodes by sampling a Zipf([s]) distribution over a
    random node ranking, and the same number of writes scaled by
    [write_ratio]. *)
val zipf :
  Rng.t -> objects:int -> n:int -> requests:int -> s:float -> write_ratio:float -> matrices

(** [hotspot rng ~objects ~n ~readers ~writers ~volume] gives [volume]
    reads to [readers] random nodes and [volume] writes to [writers]
    random nodes per object (clients elsewhere are silent). *)
val hotspot : Rng.t -> objects:int -> n:int -> readers:int -> writers:int -> volume:int -> matrices

(** [mix rng ~objects ~n ~total ~write_fraction] distributes [total]
    requests per object uniformly at random over nodes, each request
    being a write with probability [write_fraction]. The workhorse of
    the read/write-ratio sweeps (E3). *)
val mix : Rng.t -> objects:int -> n:int -> total:int -> write_fraction:float -> matrices

(** [scale_writes f m] multiplies every write count by [f >= 0]
    (rounding); used for ablations. *)
val scale_writes : float -> matrices -> matrices
