open Dmn_prelude

type matrices = { fr : int array array; fw : int array array }

let uniform rng ~objects ~n ~max_count =
  let mk () = Array.init objects (fun _ -> Array.init n (fun _ -> Rng.int rng (max_count + 1))) in
  { fr = mk (); fw = mk () }

let zipf rng ~objects ~n ~requests ~s ~write_ratio =
  let fr = Array.init objects (fun _ -> Array.make n 0) in
  let fw = Array.init objects (fun _ -> Array.make n 0) in
  for x = 0 to objects - 1 do
    (* a per-object random popularity ranking of the nodes *)
    let ranking = Array.init n (fun i -> i) in
    Rng.shuffle rng ranking;
    for _ = 1 to requests do
      let v = ranking.(Rng.zipf rng ~n ~s - 1) in
      fr.(x).(v) <- fr.(x).(v) + 1
    done;
    let writes = int_of_float (Float.round (float_of_int requests *. write_ratio)) in
    for _ = 1 to writes do
      let v = ranking.(Rng.zipf rng ~n ~s - 1) in
      fw.(x).(v) <- fw.(x).(v) + 1
    done
  done;
  { fr; fw }

let hotspot rng ~objects ~n ~readers ~writers ~volume =
  if readers > n || writers > n then invalid_arg "Freq.hotspot: more hot nodes than nodes";
  let fr = Array.init objects (fun _ -> Array.make n 0) in
  let fw = Array.init objects (fun _ -> Array.make n 0) in
  let nodes = Array.init n (fun i -> i) in
  for x = 0 to objects - 1 do
    Array.iter (fun v -> fr.(x).(v) <- volume) (Rng.sample rng nodes readers);
    Array.iter (fun v -> fw.(x).(v) <- volume) (Rng.sample rng nodes writers)
  done;
  { fr; fw }

let mix rng ~objects ~n ~total ~write_fraction =
  if write_fraction < 0.0 || write_fraction > 1.0 then invalid_arg "Freq.mix: bad fraction";
  let fr = Array.init objects (fun _ -> Array.make n 0) in
  let fw = Array.init objects (fun _ -> Array.make n 0) in
  for x = 0 to objects - 1 do
    for _ = 1 to total do
      let v = Rng.int rng n in
      if Rng.float rng 1.0 < write_fraction then fw.(x).(v) <- fw.(x).(v) + 1
      else fr.(x).(v) <- fr.(x).(v) + 1
    done
  done;
  { fr; fw }

let scale_writes f m =
  if f < 0.0 then invalid_arg "Freq.scale_writes: negative factor";
  {
    fr = Array.map Array.copy m.fr;
    fw = Array.map (Array.map (fun c -> int_of_float (Float.round (float_of_int c *. f)))) m.fw;
  }
