open Dmn_prelude
open Dmn_graph

let web_cdn rng ~clusters ~per_cluster ~objects =
  let g = Gen.clustered rng ~clusters ~per_cluster in
  let n = Wgraph.n g in
  (* storage is cheap at cluster gateways (node 0 of each cluster),
     pricier at the periphery *)
  let cs =
    Array.init n (fun v ->
        if v mod per_cluster = 0 then Rng.float_in rng 2.0 6.0 else Rng.float_in rng 8.0 20.0)
  in
  let { Freq.fr; fw } =
    Freq.zipf rng ~objects ~n ~requests:(8 * n) ~s:0.9 ~write_ratio:0.05
  in
  Dmn_core.Instance.of_graph g ~cs ~fr ~fw

let vsm_mesh rng ~rows ~cols ~objects =
  let g = Gen.grid rows cols in
  let n = Wgraph.n g in
  let cs = Array.make n 4.0 in
  let { Freq.fr; fw } = Freq.mix rng ~objects ~n ~total:(6 * n) ~write_fraction:0.4 in
  Dmn_core.Instance.of_graph g ~cs ~fr ~fw

let distributed_fs rng ~n ~objects =
  let g = Gen.random_tree rng n in
  let cs = Array.init n (fun _ -> Rng.float_in rng 3.0 12.0) in
  let readers = max 1 (n / 4) in
  let { Freq.fr; fw } = Freq.hotspot rng ~objects ~n ~readers ~writers:1 ~volume:10 in
  Dmn_core.Instance.of_graph g ~cs ~fr ~fw

let total_load rng ~n ~objects =
  let g = Gen.erdos_renyi rng n 0.3 in
  (* fee = 1 / bandwidth, storage free: exactly the total-load model *)
  let g = Wgraph.map_weights (fun _ _ _ -> 1.0 /. Rng.float_in rng 1.0 10.0) g in
  let cs = Array.make n 0.0 in
  let { Freq.fr; fw } = Freq.mix rng ~objects ~n ~total:(5 * n) ~write_fraction:0.2 in
  Dmn_core.Instance.of_graph g ~cs ~fr ~fw
