(** Steiner trees.

    The update multicast for a write request at node [h] with copy set
    [S] costs, in the unrestricted model of the paper (Section 1.1), the
    weight of a minimum Steiner tree over [{h} ∪ S]. We provide the
    classic 2-approximation (metric-closure MST, path expansion,
    pruning) and an exact Dreyfus–Wagner solver for validation at small
    terminal counts. *)

open Dmn_graph
open Dmn_paths

(** [approx g terminals] returns [(edges, weight)] of a Steiner tree of
    [g] spanning [terminals], within factor [2 - 2/|terminals|] of the
    optimum. Edges are actual graph edges, each listed once. Duplicate
    terminals are ignored; fewer than two terminals yield [([], 0.)]. *)
val approx : Wgraph.t -> int list -> Wgraph.edge list * float

(** [approx_weight_metric m terminals] is the MST weight over the
    terminals in the metric [m] — the same 2-approximation bound without
    edge recovery; used for cost accounting when only a metric is
    available. *)
val approx_weight_metric : Metric.t -> int list -> float

(** [exact_weight m terminals] is the exact minimum Steiner tree weight
    in metric [m] by Dreyfus–Wagner dynamic programming,
    [O(3^k n + 2^k n^2)] for [k] terminals. Intended for [k <= 12] on
    small node counts. *)
val exact_weight : Metric.t -> int list -> float

(** [exact_all_roots m terminals] returns an array [w] with [w.(v)] the
    exact minimum Steiner tree weight over [terminals ∪ {v}], for every
    node [v], from a single Dreyfus–Wagner table. This is the write-cost
    oracle of the exhaustive data-management optimum: with copy set
    [terminals], a write at [v] costs [w.(v)] in the unrestricted model.
    [terminals] must be non-empty. *)
val exact_all_roots : Metric.t -> int list -> float array
