open Dmn_graph
open Dmn_paths

let mst g =
  let n = Wgraph.n g in
  if n = 0 then ([], 0.0)
  else begin
    let in_tree = Array.make n false in
    let best_edge = Array.make n (-1) in
    let heap = Idx_heap.create n in
    Idx_heap.insert heap 0 0.0;
    let picked = ref [] and weight = ref 0.0 and count = ref 0 in
    while not (Idx_heap.is_empty heap) do
      let v, w = Idx_heap.pop_min heap in
      in_tree.(v) <- true;
      incr count;
      if best_edge.(v) >= 0 then begin
        let u = best_edge.(v) in
        picked := (min u v, max u v, w) :: !picked;
        weight := !weight +. w
      end;
      Wgraph.iter_neighbors g v (fun u wu ->
          if (not in_tree.(u)) && (not (Idx_heap.mem heap u) || wu < Idx_heap.priority heap u)
          then begin
            best_edge.(u) <- v;
            Idx_heap.insert_or_decrease heap u wu
          end)
    done;
    if !count <> n then invalid_arg "Prim.mst: disconnected graph";
    (List.rev !picked, !weight)
  end

let weight g = snd (mst g)
