(** Minimum spanning trees / forests by Kruskal's algorithm. *)

open Dmn_graph
open Dmn_paths

(** [mst g] is [(edges, total_weight)] of a minimum spanning forest of
    [g]; for connected graphs this is the MST. Edges are returned as
    [(u, v, w)] with [u < v]. *)
val mst : Wgraph.t -> Wgraph.edge list * float

(** [mst_of_subset m nodes] computes the MST of the complete graph over
    [nodes] with metric distances — the paper's update multicast tree
    over a copy set. Returns [(tree_edges, weight)] where endpoints are
    node ids of the original space. Duplicates in [nodes] are ignored.
    The empty and singleton cases return [([], 0.)]. *)
val mst_of_subset : Metric.t -> int list -> (int * int * float) list * float
