(** Minimum spanning tree by Prim's algorithm (lazy indexed heap). *)

open Dmn_graph

(** [mst g] is [(edges, total_weight)]; [g] must be connected.
    @raise Invalid_argument on a disconnected graph. *)
val mst : Wgraph.t -> Wgraph.edge list * float

(** [weight g] is only the total weight. *)
val weight : Wgraph.t -> float
