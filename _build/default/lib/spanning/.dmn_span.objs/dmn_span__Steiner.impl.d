lib/spanning/steiner.ml: Array Dijkstra Dmn_dsu Dmn_graph Dmn_paths Hashtbl Kruskal List Metric Option Wgraph
