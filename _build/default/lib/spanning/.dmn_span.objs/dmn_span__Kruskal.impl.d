lib/spanning/kruskal.ml: Array Dmn_dsu Dmn_graph Dmn_paths List Metric Wgraph
