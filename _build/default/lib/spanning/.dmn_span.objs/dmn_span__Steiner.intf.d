lib/spanning/steiner.mli: Dmn_graph Dmn_paths Metric Wgraph
