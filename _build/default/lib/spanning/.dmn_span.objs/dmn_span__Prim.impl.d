lib/spanning/prim.ml: Array Dmn_graph Dmn_paths Idx_heap List Wgraph
