lib/spanning/prim.mli: Dmn_graph Wgraph
