lib/spanning/kruskal.mli: Dmn_graph Dmn_paths Metric Wgraph
