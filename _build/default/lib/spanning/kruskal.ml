open Dmn_graph
open Dmn_paths

let forest n edges =
  let sorted = List.stable_sort (fun (_, _, w1) (_, _, w2) -> compare w1 w2) edges in
  let dsu = Dmn_dsu.Dsu.create n in
  let picked = ref [] and weight = ref 0.0 in
  List.iter
    (fun (u, v, w) ->
      if Dmn_dsu.Dsu.union dsu u v then begin
        picked := (u, v, w) :: !picked;
        weight := !weight +. w
      end)
    sorted;
  (List.rev !picked, !weight)

let mst g = forest (Wgraph.n g) (Wgraph.edges g)

let mst_of_subset m nodes =
  let nodes = List.sort_uniq compare nodes in
  match nodes with
  | [] | [ _ ] -> ([], 0.0)
  | _ ->
      let arr = Array.of_list nodes in
      let k = Array.length arr in
      let edges = ref [] in
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          edges := (i, j, Metric.d m arr.(i) arr.(j)) :: !edges
        done
      done;
      let tree, weight = forest k !edges in
      (List.map (fun (i, j, w) -> (arr.(i), arr.(j), w)) tree, weight)
