(** Topology generators for the experiment suite.

    All generators produce connected graphs and take deterministic
    parameters; randomized ones thread an explicit {!Dmn_prelude.Rng.t}.
    Edge weights default to 1.0 unless stated otherwise. *)

open Dmn_prelude

(** [path n] is the path 0 - 1 - ... - (n-1). *)
val path : int -> Wgraph.t

(** [ring n] is the cycle on [n >= 3] nodes. *)
val ring : int -> Wgraph.t

(** [star n] joins node 0 to all others. *)
val star : int -> Wgraph.t

(** [complete n] is K_n. *)
val complete : int -> Wgraph.t

(** [grid rows cols] is the 2-dimensional mesh. *)
val grid : int -> int -> Wgraph.t

(** [torus rows cols] wraps the mesh in both dimensions
    ([rows, cols >= 3]). *)
val torus : int -> int -> Wgraph.t

(** [hypercube d] is the d-dimensional hypercube on [2^d] nodes. *)
val hypercube : int -> Wgraph.t

(** [balanced_tree ~arity ~depth] is the complete [arity]-ary tree. *)
val balanced_tree : arity:int -> depth:int -> Wgraph.t

(** [random_tree rng n] attaches node [i] to a uniform node in
    [0, i-1]; weights uniform in [1, 10). *)
val random_tree : Rng.t -> int -> Wgraph.t

(** [caterpillar rng n] is a random tree with a long spine; stresses
    diameter-sensitive algorithms. *)
val caterpillar : Rng.t -> int -> Wgraph.t

(** [erdos_renyi rng n p] samples G(n, p) and then adds a random
    spanning tree's missing edges so the result is connected. Weights
    uniform in [1, 10). *)
val erdos_renyi : Rng.t -> int -> float -> Wgraph.t

(** [random_geometric rng n radius] places [n] points uniformly in the
    unit square, connects pairs within [radius] with their Euclidean
    distance as weight, and adds nearest-neighbour links to connect
    stranded components. *)
val random_geometric : Rng.t -> int -> float -> Wgraph.t

(** [clustered rng ~clusters ~per_cluster] builds an Internet-like
    topology: dense cheap intra-cluster links, a sparse expensive
    inter-cluster backbone (cf. the clustered networks of Maggs et
    al.). *)
val clustered : Rng.t -> clusters:int -> per_cluster:int -> Wgraph.t
