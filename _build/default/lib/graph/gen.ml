open Dmn_prelude

let path n =
  Wgraph.create n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1, 1.0)))

let ring n =
  if n < 3 then invalid_arg "Gen.ring: need n >= 3";
  Wgraph.create n (List.init n (fun i -> (i, (i + 1) mod n, 1.0)))

let star n =
  if n < 1 then invalid_arg "Gen.star: need n >= 1";
  Wgraph.create n (List.init (n - 1) (fun i -> (0, i + 1, 1.0)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v, 1.0) :: !edges
    done
  done;
  Wgraph.create n !edges

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid: empty";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1), 1.0) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c, 1.0) :: !edges
    done
  done;
  Wgraph.create (rows * cols) !edges

let torus rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Gen.torus: need rows, cols >= 3";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (id r c, id r ((c + 1) mod cols), 1.0) :: !edges;
      edges := (id r c, id ((r + 1) mod rows) c, 1.0) :: !edges
    done
  done;
  Wgraph.create (rows * cols) !edges

let hypercube d =
  if d < 0 then invalid_arg "Gen.hypercube: negative dimension";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to d - 1 do
      let u = v lxor (1 lsl b) in
      if v < u then edges := (v, u, 1.0) :: !edges
    done
  done;
  Wgraph.create n !edges

let balanced_tree ~arity ~depth =
  if arity < 1 || depth < 0 then invalid_arg "Gen.balanced_tree: bad parameters";
  let edges = ref [] in
  let next = ref 1 in
  (* Breadth-first allocation of node ids, level by level. *)
  let rec expand parents level =
    if level < depth then begin
      let children = ref [] in
      List.iter
        (fun p ->
          for _ = 1 to arity do
            let c = !next in
            incr next;
            edges := (p, c, 1.0) :: !edges;
            children := c :: !children
          done)
        parents;
      expand (List.rev !children) (level + 1)
    end
  in
  expand [ 0 ] 0;
  Wgraph.create !next !edges

let random_weight rng = Rng.float_in rng 1.0 10.0

let random_tree rng n =
  if n < 1 then invalid_arg "Gen.random_tree: need n >= 1";
  let edges = List.init (n - 1) (fun i ->
      let v = i + 1 in
      (Rng.int rng v, v, random_weight rng))
  in
  Wgraph.create n edges

let caterpillar rng n =
  if n < 2 then invalid_arg "Gen.caterpillar: need n >= 2";
  let spine = max 2 (n / 2) in
  let edges = ref [] in
  for i = 0 to spine - 2 do
    edges := (i, i + 1, random_weight rng) :: !edges
  done;
  for v = spine to n - 1 do
    edges := (Rng.int rng spine, v, random_weight rng) :: !edges
  done;
  Wgraph.create n !edges

let erdos_renyi rng n p =
  if n < 1 then invalid_arg "Gen.erdos_renyi: need n >= 1";
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  let add u v w =
    let key = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edges := (u, v, w) :: !edges
    end
  in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.float rng 1.0 < p then add u v (random_weight rng)
    done
  done;
  (* Random spanning tree on a shuffled order guarantees connectivity. *)
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  for i = 1 to n - 1 do
    add order.(Rng.int rng i) order.(i) (random_weight rng)
  done;
  Wgraph.create n !edges

let random_geometric rng n radius =
  if n < 1 then invalid_arg "Gen.random_geometric: need n >= 1";
  let pts = Array.init n (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0)) in
  let dist i j =
    let xi, yi = pts.(i) and xj, yj = pts.(j) in
    Float.hypot (xi -. xj) (yi -. yj)
  in
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  let add u v =
    let key = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edges := (u, v, dist u v) :: !edges
    end
  in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if dist u v <= radius then add u v
    done
  done;
  (* Connect components by repeatedly linking the closest cross pair,
     tracked with a simple component label array. *)
  let comp = Array.init n (fun i -> i) in
  let rec find i = if comp.(i) = i then i else find comp.(i) in
  let union i j = comp.(find i) <- find j in
  List.iter (fun (u, v, _) -> union u v) !edges;
  let connected () =
    let c0 = find 0 in
    Array.for_all (fun i -> find i = c0) (Array.init n (fun i -> i))
  in
  while not (connected ()) do
    let best = ref (-1, -1, infinity) in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if find u <> find v then begin
          let d = dist u v in
          let _, _, bd = !best in
          if d < bd then best := (u, v, d)
        end
      done
    done;
    let u, v, _ = !best in
    add u v;
    union u v
  done;
  Wgraph.create n !edges

let clustered rng ~clusters ~per_cluster =
  if clusters < 1 || per_cluster < 1 then invalid_arg "Gen.clustered: bad parameters";
  let n = clusters * per_cluster in
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  let add u v w =
    let key = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edges := (u, v, w) :: !edges
    end
  in
  for c = 0 to clusters - 1 do
    let base = c * per_cluster in
    (* Cheap dense intra-cluster mesh: ring plus random chords. *)
    for i = 0 to per_cluster - 1 do
      add (base + i) (base + ((i + 1) mod per_cluster)) (Rng.float_in rng 1.0 2.0)
    done;
    for _ = 1 to per_cluster do
      let u = base + Rng.int rng per_cluster and v = base + Rng.int rng per_cluster in
      if u <> v then add u v (Rng.float_in rng 1.0 2.0)
    done
  done;
  (* Expensive sparse backbone: ring over cluster gateways plus chords. *)
  for c = 0 to clusters - 1 do
    let u = c * per_cluster and v = (c + 1) mod clusters * per_cluster in
    if clusters > 1 then add u v (Rng.float_in rng 10.0 30.0)
  done;
  for _ = 1 to clusters do
    let cu = Rng.int rng clusters and cv = Rng.int rng clusters in
    if cu <> cv then add (cu * per_cluster) (cv * per_cluster) (Rng.float_in rng 10.0 30.0)
  done;
  Wgraph.create n !edges
