let to_dot ?(label = string_of_int) g =
  let b = Buffer.create 1024 in
  Buffer.add_string b "graph g {\n";
  for v = 0 to Wgraph.n g - 1 do
    Buffer.add_string b (Printf.sprintf "  %d [label=\"%s\"];\n" v (label v))
  done;
  List.iter
    (fun (u, v, w) -> Buffer.add_string b (Printf.sprintf "  %d -- %d [label=\"%.3g\"];\n" u v w))
    (Wgraph.edges g);
  Buffer.add_string b "}\n";
  Buffer.contents b

let to_edge_list g =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "%d %d\n" (Wgraph.n g) (Wgraph.m g));
  List.iter
    (fun (u, v, w) -> Buffer.add_string b (Printf.sprintf "%d %d %.17g\n" u v w))
    (Wgraph.edges g);
  Buffer.contents b

let of_edge_list s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> failwith "Dot.of_edge_list: empty input"
  | header :: rest -> (
      match String.split_on_char ' ' header with
      | [ sn; sm ] ->
          let n = int_of_string sn and m = int_of_string sm in
          if List.length rest <> m then failwith "Dot.of_edge_list: edge count mismatch";
          let parse line =
            match String.split_on_char ' ' line with
            | [ su; sv; sw ] -> (int_of_string su, int_of_string sv, float_of_string sw)
            | _ -> failwith ("Dot.of_edge_list: bad edge line: " ^ line)
          in
          Wgraph.create n (List.map parse rest)
      | _ -> failwith "Dot.of_edge_list: bad header")
