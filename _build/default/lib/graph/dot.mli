(** Serialization of graphs: Graphviz dot and a plain edge-list format.

    Edge-list format: first line ["n m"], then [m] lines ["u v w"].
    It round-trips through {!to_edge_list}/{!of_edge_list}. *)

(** [to_dot ?label g] renders an undirected Graphviz graph; [label v]
    customizes node captions (default: the node id). *)
val to_dot : ?label:(int -> string) -> Wgraph.t -> string

(** [to_edge_list g] serializes to the plain format above. *)
val to_edge_list : Wgraph.t -> string

(** [of_edge_list s] parses the plain format.
    @raise Failure on malformed input. *)
val of_edge_list : string -> Wgraph.t
