lib/graph/wgraph.ml: Array Float Hashtbl List Queue
