lib/graph/wgraph.mli:
