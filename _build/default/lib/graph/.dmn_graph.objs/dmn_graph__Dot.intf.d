lib/graph/dot.mli: Wgraph
