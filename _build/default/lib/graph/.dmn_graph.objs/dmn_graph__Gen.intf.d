lib/graph/gen.mli: Dmn_prelude Rng Wgraph
