lib/graph/gen.ml: Array Dmn_prelude Float Hashtbl List Rng Wgraph
