lib/graph/dot.ml: Buffer List Printf String Wgraph
