(** Request streams for the dynamic-vs-static comparison (extension
    beyond the paper, which is static; cf. its discussion of the dynamic
    strategies of Awerbuch et al. and Maggs et al.).

    A stream is a finite event list; strategies are charged per event
    plus periodic storage rent, so a stationary stream of length equal
    to the instance's request volume is directly comparable to the
    static objective. *)

open Dmn_prelude

type kind = Read | Write

type event = { node : int; x : int; kind : kind }

(** [stationary rng inst ~length] samples events i.i.d. from the
    instance's frequency tables (all objects pooled proportionally).
    The instance must have at least one request. *)
val stationary : Rng.t -> Dmn_core.Instance.t -> length:int -> event list

(** [drifting rng inst ~phases ~phase_length ~write_fraction] ignores
    the instance's tables and generates phase-local hotspots: in each
    phase a random quarter of the nodes issues all requests. This is the
    adversarial-for-static workload. *)
val drifting :
  Rng.t -> Dmn_core.Instance.t -> phases:int -> phase_length:int -> write_fraction:float -> event list

(** [frequencies inst events] tabulates a stream back into [fr]/[fw]
    matrices (for handing a measured stream to the static
    algorithms). *)
val frequencies : Dmn_core.Instance.t -> event list -> int array array * int array array
