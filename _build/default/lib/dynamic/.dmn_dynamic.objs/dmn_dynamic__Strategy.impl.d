lib/dynamic/strategy.ml: Array Dmn_core Dmn_paths Dmn_span Hashtbl List Metric Option Stream
