lib/dynamic/sim.mli: Dmn_core Format Strategy Stream
