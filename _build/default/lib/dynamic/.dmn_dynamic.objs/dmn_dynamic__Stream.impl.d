lib/dynamic/stream.ml: Array Dmn_core Dmn_prelude Fun List Rng
