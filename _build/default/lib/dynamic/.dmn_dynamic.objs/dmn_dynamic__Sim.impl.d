lib/dynamic/sim.ml: Array Dmn_baselines Dmn_core Format List Strategy Stream
