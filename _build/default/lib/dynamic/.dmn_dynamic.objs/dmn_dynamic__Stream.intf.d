lib/dynamic/stream.mli: Dmn_core Dmn_prelude Rng
