lib/dynamic/strategy.mli: Dmn_core Stream
