open Dmn_prelude
module I = Dmn_core.Instance

type kind = Read | Write

type event = { node : int; x : int; kind : kind }

let stationary rng inst ~length =
  let n = I.n inst and k = I.objects inst in
  (* cumulative weights over (node, object, kind) triples *)
  let entries = ref [] in
  for x = 0 to k - 1 do
    for v = 0 to n - 1 do
      if I.reads inst ~x v > 0 then entries := (v, x, Read, I.reads inst ~x v) :: !entries;
      if I.writes inst ~x v > 0 then entries := (v, x, Write, I.writes inst ~x v) :: !entries
    done
  done;
  let entries = Array.of_list !entries in
  if Array.length entries = 0 then invalid_arg "Stream.stationary: no requests";
  let total = Array.fold_left (fun acc (_, _, _, c) -> acc + c) 0 entries in
  List.init length (fun _ ->
      let target = Rng.int rng total in
      let rec pick i acc =
        let v, x, kind, c = entries.(i) in
        if target < acc + c then { node = v; x; kind } else pick (i + 1) (acc + c)
      in
      pick 0 0)

let drifting rng inst ~phases ~phase_length ~write_fraction =
  let n = I.n inst and k = I.objects inst in
  let nodes = Array.init n Fun.id in
  List.concat
    (List.init phases (fun _ ->
         let hot = Rng.sample rng nodes (max 1 (n / 4)) in
         List.init phase_length (fun _ ->
             {
               node = Rng.pick rng hot;
               x = Rng.int rng k;
               kind = (if Rng.float rng 1.0 < write_fraction then Write else Read);
             })))

let frequencies inst events =
  let n = I.n inst and k = I.objects inst in
  let fr = Array.init k (fun _ -> Array.make n 0) in
  let fw = Array.init k (fun _ -> Array.make n 0) in
  List.iter
    (fun { node; x; kind } ->
      match kind with
      | Read -> fr.(x).(node) <- fr.(x).(node) + 1
      | Write -> fw.(x).(node) <- fw.(x).(node) + 1)
    events;
  (fr, fw)
