(** Online placement strategies (extension beyond the paper).

    All strategies charge the static cost model per event: a read pays
    the distance to the copy that serves it; a write pays the path to
    the nearest copy plus an MST multicast over the current copy set;
    replication and migration pay the object-transfer distance. Storage
    rent is charged by the simulator via {!copies}. *)

type t = {
  name : string;
  serve : x:int -> node:int -> Stream.kind -> float;
      (** cost of serving one event (mutates internal state) *)
  copies : x:int -> int list;  (** current copy set of object [x] *)
}

(** [static inst p] never changes the placement; with a stationary
    stream matching the instance tables this replays the static
    objective. *)
val static : Dmn_core.Instance.t -> Dmn_core.Placement.t -> t

(** [migrating_owner ?threshold inst] keeps exactly one copy per object
    and moves it to a requester after [threshold] (default 8) of its
    accesses since the last migration, paying the transfer distance. *)
val migrating_owner : ?threshold:int -> Dmn_core.Instance.t -> t

(** [threshold_caching ?replicate_after ?drop_after inst] maintains a
    copy set per object: a node that accumulates [replicate_after]
    (default 4) reads gets a copy (paying the transfer); a copy that
    sees [drop_after] (default 8) writes without serving a read in
    between is dropped (the writer's copy survives). Mirrors the
    count-based dynamic tree strategies in spirit. *)
val threshold_caching : ?replicate_after:int -> ?drop_after:int -> Dmn_core.Instance.t -> t
