(** Stream simulator: folds a strategy over an event list, charging
    serving costs per event and storage rent once every
    [storage_period] events (so a stationary stream whose length equals
    the instance's request volume reproduces the static objective for
    the static strategy, storage included). *)

type result = {
  name : string;
  serving : float;  (** summed per-event costs *)
  storage : float;  (** summed storage rent *)
  total : float;
  final_copies : int;  (** copy count over all objects at the end *)
}

(** [run ?storage_period inst strategy events] — [storage_period]
    defaults to the instance's total request volume (one "period"). *)
val run :
  ?storage_period:int -> Dmn_core.Instance.t -> Strategy.t -> Stream.event list -> result

val pp : Format.formatter -> result -> unit

(** [competitive_ratio inst strategy events ~phase_length] compares the
    strategy's total against the {e offline clairvoyant} cost: the
    stream is cut into phases of [phase_length] events, each phase is
    re-tabulated into frequencies, solved statically with the greedy-add
    baseline, and charged its own static objective (scaled to the phase
    length). The returned ratio [>= ~1] measures how far the online
    strategy is from a per-phase optimal static planner. *)
val competitive_ratio :
  Dmn_core.Instance.t -> Strategy.t -> Stream.event list -> phase_length:int -> float
