(** Descriptive statistics over float samples. All functions raise
    [Invalid_argument] on empty input unless noted. *)

val mean : float array -> float
val variance : float array -> float

(** Population standard deviation. *)
val stddev : float array -> float

val min : float array -> float
val max : float array -> float

(** [median a] does not modify [a]. *)
val median : float array -> float

(** [percentile a p] with [p] in [0, 100], linear interpolation between
    order statistics. Does not modify [a]. *)
val percentile : float array -> float -> float

(** [geo_mean a] requires strictly positive samples. *)
val geo_mean : float array -> float

(** [summary a] is [(mean, stddev, min, median, max)]. *)
val summary : float array -> float * float * float * float * float
