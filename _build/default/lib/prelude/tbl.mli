(** ASCII table rendering for experiment reports.

    Columns are sized to fit their widest cell; numeric-looking cells are
    right-aligned, everything else left-aligned. *)

type t

(** [create header] starts a table with the given column names. *)
val create : string list -> t

(** [add_row t cells] appends a row. Raises [Invalid_argument] if the
    arity differs from the header. *)
val add_row : t -> string list -> unit

(** [add_sep t] appends a horizontal separator at the current position. *)
val add_sep : t -> unit

(** [render t] produces the final multi-line string (no trailing
    newline). *)
val render : t -> string

(** [print t] renders to stdout followed by a newline. *)
val print : t -> unit

(** [fl x] formats a float with 4 significant decimals, trimming
    trailing zeros ("12.5", "0.0417", "3"). *)
val fl : float -> string

(** [fl2 x] formats with exactly 2 decimals. *)
val fl2 : float -> string
