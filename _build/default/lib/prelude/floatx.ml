let eps = 1e-9

let approx ?(tol = eps) a b =
  let d = Float.abs (a -. b) in
  d <= tol || d <= tol *. Float.max (Float.abs a) (Float.abs b)

let leq ?(tol = eps) a b = a <= b || approx ~tol a b

let sum a =
  let s = ref 0.0 and c = ref 0.0 in
  Array.iter
    (fun x ->
      let t = !s +. x in
      if Float.abs !s >= Float.abs x then c := !c +. (!s -. t +. x)
      else c := !c +. (x -. t +. !s);
      s := t)
    a;
  !s +. !c

let sum_by f n =
  let s = ref 0.0 and c = ref 0.0 in
  for i = 0 to n - 1 do
    let x = f i in
    let t = !s +. x in
    if Float.abs !s >= Float.abs x then c := !c +. (!s -. t +. x)
    else c := !c +. (x -. t +. !s);
    s := t
  done;
  !s +. !c
