(** Deterministic pseudo-random number generator (SplitMix64).

    Every randomized component of the library threads an explicit [Rng.t]
    so that instances, workloads and algorithms are reproducible from a
    single integer seed. *)

type t

(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] duplicates the generator state; the copy evolves
    independently. *)
val copy : t -> t

(** [split t] derives a statistically independent generator and advances
    [t]. Use to hand sub-streams to sub-components. *)
val split : t -> t

(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)
val int_in : t -> int -> int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** [float_in t lo hi] is uniform in [lo, hi). *)
val float_in : t -> float -> float -> float

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [bits64 t] is the raw next 64-bit output. *)
val bits64 : t -> int64

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [pick t a] is a uniformly random element of [a]. Raises
    [Invalid_argument] on an empty array. *)
val pick : t -> 'a array -> 'a

(** [sample t a k] is [k] distinct positions of [a] chosen uniformly,
    as values. Raises [Invalid_argument] if [k > Array.length a]. *)
val sample : t -> 'a array -> int -> 'a array

(** [exponential t ~mean] samples an exponential variate. *)
val exponential : t -> mean:float -> float

(** [zipf t ~n ~s] samples a rank in [1, n] with probability
    proportional to [1 / rank^s], by inverse transform over the exact
    normalization. *)
val zipf : t -> n:int -> s:float -> int
