lib/prelude/rng.mli:
