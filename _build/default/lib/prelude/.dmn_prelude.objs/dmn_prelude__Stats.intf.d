lib/prelude/stats.mli:
