lib/prelude/tbl.mli:
