lib/prelude/floatx.ml: Array Float
