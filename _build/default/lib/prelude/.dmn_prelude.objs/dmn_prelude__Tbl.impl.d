lib/prelude/tbl.ml: Array Float List Printf String
