lib/prelude/floatx.mli:
