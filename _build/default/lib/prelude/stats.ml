let check a name = if Array.length a = 0 then invalid_arg ("Stats." ^ name ^ ": empty sample")

let mean a =
  check a "mean";
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  check a "variance";
  let m = mean a in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
  acc /. float_of_int (Array.length a)

let stddev a = sqrt (variance a)

let min a =
  check a "min";
  Array.fold_left Float.min a.(0) a

let max a =
  check a "max";
  Array.fold_left Float.max a.(0) a

let sorted a =
  let b = Array.copy a in
  Array.sort compare b;
  b

let percentile a p =
  check a "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let b = sorted a in
  let n = Array.length b in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then b.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. b.(lo)) +. (w *. b.(hi))

let median a = percentile a 50.0

let geo_mean a =
  check a "geo_mean";
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geo_mean: nonpositive sample";
        acc +. log x)
      0.0 a
  in
  exp (acc /. float_of_int (Array.length a))

let summary a = (mean a, stddev a, min a, median a, max a)
