type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: 62-bit modulo bias is negligible for
     the bounds used in this library (all well below 2^40). The shift by 2
     keeps the value within OCaml's non-negative int range. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let sample t a k =
  let n = Array.length a in
  if k < 0 || k > n then invalid_arg "Rng.sample: bad k";
  let idx = Array.init n (fun i -> i) in
  (* Partial Fisher-Yates: only the first k slots need to be finalized. *)
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.init k (fun i -> a.(idx.(i)))

let exponential t ~mean =
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let target = float t total in
  let rec go i acc =
    if i = n - 1 then n
    else
      let acc = acc +. weights.(i) in
      if target < acc then i + 1 else go (i + 1) acc
  in
  go 0 0.0
