(** Float comparison helpers used throughout cost computations. *)

(** Default comparison slack for cost equalities: [1e-9] relative. *)
val eps : float

(** [approx ?tol a b] holds when [a] and [b] agree up to [tol] absolute
    or relative slack (default [eps]). *)
val approx : ?tol:float -> float -> float -> bool

(** [leq ?tol a b] is [a <= b] up to slack. *)
val leq : ?tol:float -> float -> float -> bool

(** [sum a] is a Neumaier compensated sum, stable for long cost
    accumulations. *)
val sum : float array -> float

(** [sum_by f n] is the compensated sum of [f 0 .. f (n-1)]. *)
val sum_by : (int -> float) -> int -> float
