type row = Cells of string list | Sep

type t = { header : string list; arity : int; mutable rows : row list }

let create header = { header; arity = List.length header; rows = [] }

let add_row t cells =
  if List.length cells <> t.arity then invalid_arg "Tbl.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let numeric s =
  s <> ""
  && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = 'x') s

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.header) in
  let update cells =
    List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
  in
  List.iter (function Cells c -> update c | Sep -> ()) rows;
  let pad i c =
    let w = widths.(i) in
    let n = w - String.length c in
    if numeric c then String.make n ' ' ^ c else c ^ String.make n ' '
  in
  let line cells = "| " ^ String.concat " | " (List.mapi pad cells) ^ " |" in
  let sep =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  let body =
    List.map (function Cells c -> line c | Sep -> sep) rows
  in
  String.concat "\n" ((sep :: line t.header :: sep :: body) @ [ sep ])

let print t =
  print_string (render t);
  print_newline ()

let fl x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else
    let s = Printf.sprintf "%.4g" x in
    s

let fl2 x = Printf.sprintf "%.2f" x
