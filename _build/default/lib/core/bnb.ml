open Dmn_paths

let explored = ref 0
let pruned = ref 0

let stats () = (!explored, !pruned)

(* dense Prim over a node list in the metric; O(k^2) *)
let mst_weight m nodes =
  match nodes with
  | [] | [ _ ] -> 0.0
  | first :: _ ->
      let arr = Array.of_list nodes in
      let k = Array.length arr in
      let in_tree = Array.make k false in
      let best = Array.make k infinity in
      let total = ref 0.0 in
      let current = ref 0 in
      ignore first;
      in_tree.(0) <- true;
      for i = 1 to k - 1 do
        best.(i) <- Metric.d m arr.(0) arr.(i)
      done;
      for _ = 1 to k - 1 do
        let next = ref (-1) in
        for i = 0 to k - 1 do
          if (not in_tree.(i)) && (!next < 0 || best.(i) < best.(!next)) then next := i
        done;
        total := !total +. best.(!next);
        in_tree.(!next) <- true;
        current := !next;
        for i = 0 to k - 1 do
          if not in_tree.(i) then best.(i) <- Float.min best.(i) (Metric.d m arr.(!current) arr.(i))
        done
      done;
      !total

let opt_mst ?(node_limit = 5_000_000) inst ~x =
  explored := 0;
  pruned := 0;
  let n = Instance.n inst in
  let m = Instance.metric inst in
  let w_total = float_of_int (Instance.total_writes inst ~x) in
  let req = Array.init n (fun v -> float_of_int (Instance.requests inst ~x v)) in
  let sites =
    List.init n Fun.id
    |> List.filter (fun v -> Instance.cs inst v < infinity)
    |> List.sort (fun a b -> compare (req.(b), a) (req.(a), b))
    |> Array.of_list
  in
  let k = Array.length sites in
  if k = 0 then invalid_arg "Bnb.opt_mst: no storable node";
  let exact_cost copies =
    let storage = List.fold_left (fun acc v -> acc +. Instance.cs inst v) 0.0 copies in
    let read = ref 0.0 in
    for v = 0 to n - 1 do
      if req.(v) > 0.0 then begin
        let d = List.fold_left (fun acc c -> Float.min acc (Metric.d m v c)) infinity copies in
        read := !read +. (req.(v) *. d)
      end
    done;
    storage +. !read +. (w_total *. mst_weight m copies)
  in
  (* incumbent: greedy add from the best single copy *)
  let incumbent = ref [ sites.(0) ] and incumbent_cost = ref infinity in
  Array.iter
    (fun v ->
      let c = exact_cost [ v ] in
      if c < !incumbent_cost then begin
        incumbent_cost := c;
        incumbent := [ v ]
      end)
    sites;
  let improved = ref true in
  while !improved do
    improved := false;
    Array.iter
      (fun v ->
        if not (List.mem v !incumbent) then begin
          let c = exact_cost (v :: !incumbent) in
          if c < !incumbent_cost then begin
            incumbent_cost := c;
            incumbent := v :: !incumbent;
            improved := true
          end
        end)
      sites
  done;
  (* lower bound for partial assignment: S open (list), sites.(i..) undecided *)
  let lower_bound s_open storage i =
    let read = ref 0.0 in
    for v = 0 to n - 1 do
      if req.(v) > 0.0 then begin
        let d = ref infinity in
        List.iter (fun c -> d := Float.min !d (Metric.d m v c)) s_open;
        for j = i to k - 1 do
          d := Float.min !d (Metric.d m v sites.(j))
        done;
        read := !read +. (req.(v) *. !d)
      end
    done;
    let update = if s_open = [] then 0.0 else w_total *. mst_weight m s_open /. 2.0 in
    storage +. !read +. update
  in
  let rec branch s_open storage i =
    incr explored;
    if !explored > node_limit then failwith "Bnb.opt_mst: node limit exceeded";
    if s_open <> [] then begin
      (* closing all remaining sites is itself a candidate solution *)
      let c = exact_cost s_open in
      if c < !incumbent_cost then begin
        incumbent_cost := c;
        incumbent := s_open
      end
    end;
    if i < k then begin
      let lb = lower_bound s_open storage i in
      if lb >= !incumbent_cost -. 1e-9 then incr pruned
      else begin
        let v = sites.(i) in
        branch (v :: s_open) (storage +. Instance.cs inst v) (i + 1);
        (* the "v closed" branch is only viable if something can still open *)
        if s_open <> [] || i + 1 < k then branch s_open storage (i + 1)
      end
    end
  in
  branch [] 0.0 0;
  (List.sort compare !incumbent, !incumbent_cost)
