let storable inst =
  let acc = ref [] in
  for v = Instance.n inst - 1 downto 0 do
    if Instance.cs inst v < infinity then acc := v :: !acc
  done;
  Array.of_list !acc

let enumerate inst ~x ~limit eval constraint_ok =
  let sites = storable inst in
  let k = Array.length sites in
  if k = 0 then invalid_arg "Exact: no storable node";
  if k > limit then invalid_arg "Exact: instance too large for exhaustive search";
  let best_cost = ref infinity and best = ref [] in
  for mask = 1 to (1 lsl k) - 1 do
    (* cheap storage-only lower bound before full evaluation *)
    let storage = ref 0.0 in
    for i = 0 to k - 1 do
      if mask land (1 lsl i) <> 0 then storage := !storage +. Instance.cs inst sites.(i)
    done;
    if !storage < !best_cost then begin
      let copies = ref [] in
      for i = k - 1 downto 0 do
        if mask land (1 lsl i) <> 0 then copies := sites.(i) :: !copies
      done;
      if constraint_ok inst ~x !copies then begin
        let c = eval inst ~x !copies in
        if c < !best_cost then begin
          best_cost := c;
          best := !copies
        end
      end
    end
  done;
  (!best, !best_cost)

let no_constraint _ ~x:_ _ = true

let opt_mst inst ~x = enumerate inst ~x ~limit:20 Cost.total_mst no_constraint

let opt_exact inst ~x = enumerate inst ~x ~limit:14 Cost.total_exact no_constraint

let opt_restricted inst ~x =
  enumerate inst ~x ~limit:20 Cost.total_mst (fun inst ~x copies ->
      Restricted.is_restricted inst ~x copies)

let solve_of opt inst =
  let results = Array.init (Instance.objects inst) (fun x -> opt inst ~x) in
  let placement = Placement.make (Array.map fst results) in
  let cost = Array.fold_left (fun acc (_, c) -> acc +. c) 0.0 results in
  (placement, cost)

let solve_mst inst = solve_of opt_mst inst
let solve_exact inst = solve_of opt_exact inst
