(** Placements: one non-empty copy set per object. *)

type t

(** [make copies] with [copies.(x)] the copy list of object [x];
    lists are deduplicated and sorted. @raise Invalid_argument if any
    list is empty. *)
val make : int list array -> t

(** [uniform ~objects nodes] places the same copy set for every
    object. *)
val uniform : objects:int -> int list -> t

val objects : t -> int

(** [copies t ~x] is the sorted copy list of object [x]. *)
val copies : t -> x:int -> int list

(** [holds t ~x v] tests whether [v] holds a copy of [x]. *)
val holds : t -> x:int -> int -> bool

(** [copy_count t ~x] is the replication degree of [x]. *)
val copy_count : t -> x:int -> int

(** [validate inst t] checks object count, node ranges, and that no
    copy sits on a forbidden ([cs = infinity]) node. *)
val validate : Instance.t -> t -> (unit, string) result

(** [map f t] rewrites each object's copy list. *)
val map : (int -> int list -> int list) -> t -> t

val pp : Format.formatter -> t -> unit
