open Dmn_prelude

type object_report = {
  x : int;
  copies : int list;
  breakdown : Cost.breakdown;
  proper : bool;
  violations : Proper.violation list;
  restricted : bool;
  max_service_share : float;
}

type t = { objects : object_report list; total : Cost.breakdown; replicas : int }

let build inst p =
  let objects =
    List.init (Placement.objects p) (fun x ->
        let copies = Placement.copies p ~x in
        let breakdown = Cost.eval_mst inst ~x copies in
        let radii = Radii.compute inst ~x in
        let violations = Proper.violations inst ~x ~k1:29.0 ~k2:2.0 radii copies in
        let counts = Restricted.serving_counts inst ~x copies in
        let total_requests = Instance.total_requests inst ~x in
        let max_service_share =
          if total_requests = 0 then 0.0
          else
            List.fold_left (fun acc (_, c) -> Float.max acc (float_of_int c)) 0.0 counts
            /. float_of_int total_requests
        in
        {
          x;
          copies;
          breakdown;
          proper = violations = [];
          violations;
          restricted = Restricted.is_restricted inst ~x copies;
          max_service_share;
        })
  in
  let total = List.fold_left (fun acc r -> Cost.add acc r.breakdown) Cost.zero objects in
  let replicas = List.fold_left (fun acc r -> acc + List.length r.copies) 0 objects in
  { objects; total; replicas }

let render report =
  let buf = Buffer.create 1024 in
  let tbl =
    Tbl.create
      [ "object"; "replicas"; "storage"; "read"; "update"; "total"; "proper"; "restricted"; "max share" ]
  in
  List.iter
    (fun r ->
      Tbl.add_row tbl
        [
          string_of_int r.x;
          string_of_int (List.length r.copies);
          Tbl.fl2 r.breakdown.Cost.storage;
          Tbl.fl2 r.breakdown.Cost.read;
          Tbl.fl2 r.breakdown.Cost.update;
          Tbl.fl2 (Cost.total r.breakdown);
          (if r.proper then "yes" else "NO");
          (if r.restricted then "yes" else "no");
          Printf.sprintf "%.0f%%" (100.0 *. r.max_service_share);
        ])
    report.objects;
  Buffer.add_string buf (Tbl.render tbl);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "total: storage %.2f + read %.2f + update %.2f = %.2f (%d replicas)\n"
       report.total.Cost.storage report.total.Cost.read report.total.Cost.update
       (Cost.total report.total) report.replicas);
  List.iter
    (fun r ->
      List.iter
        (fun v ->
          Buffer.add_string buf
            (Format.asprintf "object %d: %a\n" r.x Proper.pp_violation v))
        r.violations)
    report.objects;
  Buffer.contents buf
