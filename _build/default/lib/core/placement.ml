type t = int list array

let make copies =
  Array.map
    (fun l ->
      let l = List.sort_uniq compare l in
      if l = [] then invalid_arg "Placement.make: empty copy set";
      l)
    copies

let uniform ~objects nodes =
  if objects <= 0 then invalid_arg "Placement.uniform: need objects >= 1";
  make (Array.make objects nodes)

let objects t = Array.length t
let copies t ~x = t.(x)
let holds t ~x v = List.mem v t.(x)
let copy_count t ~x = List.length t.(x)

let validate inst t =
  if Array.length t <> Instance.objects inst then Error "object count mismatch"
  else begin
    let n = Instance.n inst in
    let problem = ref None in
    Array.iteri
      (fun x l ->
        List.iter
          (fun v ->
            if v < 0 || v >= n then problem := Some (Printf.sprintf "object %d: node %d out of range" x v)
            else if Instance.cs inst v = infinity then
              problem := Some (Printf.sprintf "object %d: copy on forbidden node %d" x v))
          l)
      t;
    match !problem with None -> Ok () | Some e -> Error e
  end

let map f t = make (Array.mapi f t)

let pp ppf t =
  Array.iteri
    (fun x l ->
      Format.fprintf ppf "object %d: {%s}@." x (String.concat ", " (List.map string_of_int l)))
    t
