open Dmn_graph

let instance_to_string inst =
  let g =
    match Instance.graph inst with
    | Some g -> g
    | None -> invalid_arg "Serial: only graph-backed instances serialize"
  in
  let b = Buffer.create 4096 in
  let n = Instance.n inst and k = Instance.objects inst in
  Buffer.add_string b "dmnet-instance v1\n";
  Buffer.add_string b (Printf.sprintf "%d %d %d\n" n k (Wgraph.m g));
  List.iter
    (fun (u, v, w) -> Buffer.add_string b (Printf.sprintf "%d %d %.17g\n" u v w))
    (Wgraph.edges g);
  Buffer.add_string b
    (String.concat " " (List.init n (fun v -> Printf.sprintf "%.17g" (Instance.cs inst v))));
  Buffer.add_char b '\n';
  for x = 0 to k - 1 do
    Buffer.add_string b
      (String.concat " " (List.init n (fun v -> string_of_int (Instance.reads inst ~x v))));
    Buffer.add_char b '\n'
  done;
  for x = 0 to k - 1 do
    Buffer.add_string b
      (String.concat " " (List.init n (fun v -> string_of_int (Instance.writes inst ~x v))));
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let tokens_of s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "" && (String.trim l).[0] <> '#')
  |> List.concat_map (fun l -> String.split_on_char ' ' l |> List.filter (( <> ) ""))

let instance_of_string s =
  match tokens_of s with
  | "dmnet-instance" :: "v1" :: rest ->
      let next toks = match toks with [] -> failwith "Serial: truncated input" | t :: r -> (t, r) in
      let int toks =
        let t, r = next toks in
        (int_of_string t, r)
      in
      let fl toks =
        let t, r = next toks in
        (float_of_string t, r)
      in
      let n, rest = int rest in
      let k, rest = int rest in
      let m, rest = int rest in
      let rec edges acc i toks =
        if i = m then (List.rev acc, toks)
        else begin
          let u, toks = int toks in
          let v, toks = int toks in
          let w, toks = fl toks in
          edges ((u, v, w) :: acc) (i + 1) toks
        end
      in
      let edge_list, rest = edges [] 0 rest in
      let g = Wgraph.create n edge_list in
      let rec floats acc i toks =
        if i = n then (Array.of_list (List.rev acc), toks)
        else begin
          let v, toks = fl toks in
          floats (v :: acc) (i + 1) toks
        end
      in
      let cs, rest = floats [] 0 rest in
      let rec ints acc i toks =
        if i = n then (Array.of_list (List.rev acc), toks)
        else begin
          let v, toks = int toks in
          ints (v :: acc) (i + 1) toks
        end
      in
      let rec matrix acc x toks =
        if x = k then (Array.of_list (List.rev acc), toks)
        else begin
          let row, toks = ints [] 0 toks in
          matrix (row :: acc) (x + 1) toks
        end
      in
      let fr, rest = matrix [] 0 rest in
      let fw, rest = matrix [] 0 rest in
      if rest <> [] then failwith "Serial: trailing tokens";
      Instance.of_graph g ~cs ~fr ~fw
  | _ -> failwith "Serial: bad header (want dmnet-instance v1)"

let placement_to_string p =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "dmnet-placement v1\n%d\n" (Placement.objects p));
  for x = 0 to Placement.objects p - 1 do
    Buffer.add_string b
      (String.concat " " (List.map string_of_int (Placement.copies p ~x)));
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let placement_of_string s =
  match tokens_of s with
  | "dmnet-placement" :: "v1" :: count :: rest ->
      let k = int_of_string count in
      ignore k;
      (* copy lists have variable length, so reparse by lines *)
      let lines =
        String.split_on_char '\n' s
        |> List.map String.trim
        |> List.filter (fun l -> l <> "" && l.[0] <> '#')
      in
      (match lines with
      | _header :: _count :: rows ->
          let copies =
            List.map
              (fun row ->
                String.split_on_char ' ' row |> List.filter (( <> ) "") |> List.map int_of_string)
              rows
          in
          ignore rest;
          Placement.make (Array.of_list copies)
      | _ -> failwith "Serial: bad placement")
  | _ -> failwith "Serial: bad placement header"

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
