(** Branch-and-bound exact optimum under the MST write policy.

    Pushes the exhaustive search well past {!Exact.opt_mst}'s subset
    enumeration (to [n ~ 25-35] depending on structure) by branching on
    "node holds / does not hold a copy" with an admissible lower bound:

    - storage of the nodes already fixed open,
    - every request's distance to the nearest {e possibly-open} node,
    - for the update cost, [W * w(MST(S)) / 2] over the fixed-open set
      [S] (admissible because [w(MST(S))/2 <= w(SteinerTree(S)) <=
      w(SteinerTree(S'))] for any [S' ⊇ S], and the final MST multicast
      costs at least its Steiner tree).

    Nodes are branched in decreasing request volume, trying "open"
    first, with an incumbent initialized from the greedy-add baseline
    heuristic. *)

(** [opt_mst ?node_limit inst ~x] returns [(copies, cost)] with cost
    identical to {!Exact.opt_mst}. [node_limit] caps the search-tree
    size (default [5_000_000]); @raise Failure if exceeded. *)
val opt_mst : ?node_limit:int -> Instance.t -> x:int -> int list * float

(** [stats ()] returns [(explored, pruned)] counters of the last run
    (for the test suite and benchmarks). *)
val stats : unit -> int * int
