(** The cost model of Section 1.1, with the two write policies used in
    the paper:

    - {b MST policy} (the algorithm's concrete strategy, Section 2): a
      write at [h] sends a message to the nearest copy [s(r)] and then
      updates all copies along a minimum spanning tree of the copy set
      in the [ct] metric. Following the paper's restricted-placement
      decomposition, the [h -> s(r)] legs of writes are accounted as
      read cost, so the update cost is exactly [W * mst_weight(S)].
    - {b exact policy} (the unrestricted model used for optimum
      baselines): a write at [h] pays a minimum Steiner tree over
      [{h} ∪ S] (Dreyfus–Wagner; only feasible for small copy sets). *)

type breakdown = {
  storage : float;
  read : float;  (** nearest-copy legs; under the MST policy this includes write [h -> s(r)] legs *)
  update : float;  (** multicast part of writes *)
}

val total : breakdown -> float
val zero : breakdown
val add : breakdown -> breakdown -> breakdown
val pp : Format.formatter -> breakdown -> unit

(** [nearest_dists inst copies] gives each node's distance to the
    nearest copy (multi-source Dijkstra when a graph is available,
    metric scan otherwise). *)
val nearest_dists : Instance.t -> int list -> float array

(** [eval_mst inst ~x copies] evaluates object [x] under the MST
    policy. *)
val eval_mst : Instance.t -> x:int -> int list -> breakdown

(** [eval_exact inst ~x copies] evaluates object [x] under the exact
    Steiner policy. Exponential in [|copies|]; intended for small
    validation instances. *)
val eval_exact : Instance.t -> x:int -> int list -> breakdown

(** [total_mst inst ~x copies] is [total (eval_mst ...)]. *)
val total_mst : Instance.t -> x:int -> int list -> float

val total_exact : Instance.t -> x:int -> int list -> float

(** [placement_mst inst p] sums {!eval_mst} over all objects. *)
val placement_mst : Instance.t -> Placement.t -> breakdown

val placement_exact : Instance.t -> Placement.t -> breakdown
