(** Plain-text serialization of instances and placements, for the CLI
    and for archiving experiment inputs.

    Instance format (whitespace-separated, [#] comments allowed):
    {v
    dmnet-instance v1
    <n> <objects> <m>
    u v w          (m edge lines)
    cs_0 .. cs_{n-1}
    fr_x0 .. fr_x{n-1}   (one line per object)
    fw_x0 .. fw_x{n-1}   (one line per object)
    v} *)

val instance_to_string : Instance.t -> string

(** @raise Failure on malformed input. Instances always round-trip
    through a graph, so only graph-backed instances serialize. *)
val instance_of_string : string -> Instance.t

val placement_to_string : Placement.t -> string
val placement_of_string : string -> Placement.t

val write_file : string -> string -> unit
val read_file : string -> string
