lib/core/bnb.ml: Array Dmn_paths Float Fun Instance List Metric
