lib/core/exact.ml: Array Cost Instance Placement Restricted
