lib/core/exact.mli: Instance Placement
