lib/core/restricted.mli: Instance
