lib/core/instance.mli: Dmn_facility Dmn_graph Dmn_paths Metric Wgraph
