lib/core/cost.mli: Format Instance Placement
