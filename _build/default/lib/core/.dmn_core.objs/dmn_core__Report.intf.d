lib/core/report.mli: Cost Instance Placement Proper
