lib/core/restricted.ml: Dmn_paths Dmn_span Hashtbl Instance List Metric Option
