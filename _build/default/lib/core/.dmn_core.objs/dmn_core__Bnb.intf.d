lib/core/bnb.mli: Instance
