lib/core/approx.ml: Array Cost Dmn_facility Dmn_paths Hashtbl Instance List Metric Placement Radii
