lib/core/placement.ml: Array Format Instance List Printf String
