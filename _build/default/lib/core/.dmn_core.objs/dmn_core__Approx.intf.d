lib/core/approx.mli: Instance Placement Radii
