lib/core/proper.ml: Array Cost Dmn_paths Float Format Instance List Metric Radii
