lib/core/serial.ml: Array Buffer Dmn_graph Fun Instance List Placement Printf String Wgraph
