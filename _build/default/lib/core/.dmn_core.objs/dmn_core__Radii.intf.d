lib/core/radii.mli: Instance
