lib/core/placement.mli: Format Instance
