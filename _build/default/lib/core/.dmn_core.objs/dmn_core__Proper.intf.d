lib/core/proper.mli: Format Instance Radii
