lib/core/radii.ml: Array Dmn_paths Dmn_prelude Float Instance Metric Printf
