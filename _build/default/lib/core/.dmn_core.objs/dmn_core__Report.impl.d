lib/core/report.ml: Buffer Cost Dmn_prelude Float Format Instance List Placement Printf Proper Radii Restricted Tbl
