lib/core/cost.ml: Array Dijkstra Dmn_paths Dmn_prelude Dmn_span Float Floatx Format Instance List Metric Placement
