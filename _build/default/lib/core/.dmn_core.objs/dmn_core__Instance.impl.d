lib/core/instance.ml: Array Dmn_facility Dmn_graph Dmn_paths Float Metric Wgraph
