lib/core/serial.mli: Instance Placement
