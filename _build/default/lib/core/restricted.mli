(** Restricted placements (paper Lemma 1).

    A placement is {e restricted} when (1) every write uses the same
    multicast tree — here the MST over the copy set — and (2) every copy
    serves at least [W] requests under nearest-copy assignment. Lemma 1
    proves that restricting costs at most a factor 4.

    This module implements the constructive transformation from the
    lemma's proof: root the copy MST, and while a copy serves fewer than
    [W] requests, delete the offender farthest from the root (in MST
    tree distance) and reassign its requests. *)

(** [serving_counts inst ~x copies] gives, for each copy (keyed by copy
    node), the number of requests it serves under nearest-copy
    assignment (read and write requests both; ties go to the
    smaller-id copy — the convention used throughout). *)
val serving_counts : Instance.t -> x:int -> int list -> (int * int) list

(** [transform inst ~x copies] applies Lemma 1's deletion process and
    returns the restricted copy set (never empty). *)
val transform : Instance.t -> x:int -> int list -> int list

(** [is_restricted inst ~x copies] checks property (2). *)
val is_restricted : Instance.t -> x:int -> int list -> bool
