(** Proper placements (paper Section 2.1).

    A copy set [S] for object [x] is [(k1, k2)]-proper when
    + every node [v] has a copy within [k1 * max(rw v, rs v)], and
    + any two copy holders [u <> v] are at distance at least
      [2 * k2 * max(rw u, rw v)].

    Lemma 8 shows the three-phase algorithm attains [k1 = 29],
    [k2 = 2]. *)

type violation =
  | Too_far of { node : int; dist : float; bound : float }
      (** property 1 fails at [node] *)
  | Too_close of { u : int; v : int; dist : float; bound : float }
      (** property 2 fails for copies [u], [v] *)

val pp_violation : Format.formatter -> violation -> unit

(** [violations inst ~x ~k1 ~k2 radii copies] lists all violations
    (empty means proper). *)
val violations :
  Instance.t -> x:int -> k1:float -> k2:float -> Radii.node_radii array -> int list -> violation list

(** [is_proper inst ~x ~k1 ~k2 radii copies] is [violations ... = []]. *)
val is_proper :
  Instance.t -> x:int -> k1:float -> k2:float -> Radii.node_radii array -> int list -> bool
